// Reproduces Fig. 5: latency (a) and energy (b) of the 6th S-VGG11 layer over
// 500 timesteps, for our three variants and the four SoA neuromorphic
// accelerators. SPIKESTREAM_TIMESTEPS overrides the timestep count (the
// official figure uses 500; the default here is 100 to keep the binary quick —
// results scale linearly and both settings are recorded in EXPERIMENTS.md).
#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "soa/comparison.hpp"

namespace sc = spikestream::common;
namespace soa = spikestream::soa;

int main() {
  int timesteps = 100;
  if (const char* e = std::getenv("SPIKESTREAM_TIMESTEPS")) {
    const int v = std::atoi(e);
    if (v > 0) timesteps = v;
  }
  const double in_rate = 0.094;  // layer-6 ifmap activity (Fig. 3a profile)
  spikestream::arch::EnergyParams energy;
  const auto rows = soa::layer6_comparison(timesteps, in_rate, energy);
  const double scale = 500.0 / timesteps;  // report at the paper's 500 ts

  sc::Table t("Fig. 5 — S-VGG11 layer 6, scaled to 500 timesteps (simulated " +
              std::to_string(timesteps) + ")");
  t.set_header({"platform", "latency [ms]", "energy [mJ]", "peak GSOP",
                "tech [nm]"});
  for (const auto& r : rows) {
    t.add_row({r.name, sc::Table::num(r.latency_ms * scale, 2),
               sc::Table::num(r.energy_mj * scale, 2),
               r.peak_gsop > 0 ? sc::Table::num(r.peak_gsop, 1) : "64 (FP8)",
               sc::Table::num(r.tech_nm, 0)});
  }
  t.print();

  auto find = [&](const std::string& n) {
    for (const auto& r : rows) {
      if (r.name.find(n) != std::string::npos) return r;
    }
    std::fprintf(stderr, "missing row %s\n", n.c_str());
    std::exit(1);
  };
  const auto fp16 = find("spikestream FP16");
  const auto fp8 = find("spikestream FP8");
  const auto base = find("baseline");
  const auto lsm = find("LSMCore");
  const auto loihi = find("Loihi");
  std::printf("\nlatency: base FP16 %.1f ms (paper 2516.7), SS FP8 %.1f ms "
              "(paper 217.1), LSMCore %.1f ms (paper 46.1)\n",
              base.latency_ms * scale, fp8.latency_ms * scale,
              lsm.latency_ms * scale);
  std::printf("ours vs Loihi: FP16 %.2fx (paper 1.31x), FP8 %.2fx (paper 2.38x)\n",
              loihi.latency_ms / fp16.latency_ms,
              loihi.latency_ms / fp8.latency_ms);
  std::printf("energy vs LSMCore: FP16 %.2fx less (paper 2.37x), FP8 %.2fx "
              "less (paper 3.46x)\n",
              lsm.energy_mj / fp16.energy_mj, lsm.energy_mj / fp8.energy_mj);
  return 0;
}
