// Tail-latency profile of the inference-as-a-service runtime: drives the
// InferenceServer with open-loop (Poisson arrivals at a swept fraction of
// saturation) and closed-loop (fixed client fleet) load generators over the
// calibrated S-VGG11, and reports the user-facing SLO story per offered
// load — p50/p95/p99 latency, achieved throughput, reject rate, mean wave
// occupancy and the SLO controller's wave-size trace — plus the offline
// BatchRunner baseline the served numbers are judged against:
//
//   * saturation throughput (closed loop) should sit within ~15% of the
//     offline segment-major samples/s — the serving layer must not tax the
//     engine it schedules;
//   * light-load p95 should sit far below one full-wave offline batch time —
//     the SLO controller shrinks waves when lanes cannot be filled, so a
//     lone request is not taxed the full wave it does not need.
//
// Everything lands in BENCH_serve.json (shared bench/json_writer.hpp
// emitter) for CI's --p99-threshold / --serve-saturation-floor guards.
//
//   SPIKESTREAM_SERVE_LANES  max wave width = segment_major_lanes (default 8)
//   SPIKESTREAM_SERVE_REQS   requests per closed-loop run and cap per
//                            open-loop point (default 120)
//   SPIKESTREAM_REPS         timed offline-baseline batch reps (default 3)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench/json_writer.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "runtime/batch.hpp"
#include "runtime/server.hpp"

namespace {

namespace rt = spikestream::runtime;
namespace k = spikestream::kernels;
namespace snn = spikestream::snn;
namespace bench = spikestream::bench;
namespace sc = spikestream::common;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int env_int(const char* name, int def) {
  if (const char* e = std::getenv(name)) {
    const int v = std::atoi(e);
    if (v > 0) return v;
  }
  return def;
}

struct LoadRow {
  std::string mode;  ///< "open" (Poisson) or "closed" (fixed fleet)
  double offered_load = 0;  ///< fraction of saturation (open) / 0 (closed)
  int clients = 0;          ///< closed-loop fleet size
  int requests = 0;
  double offered_sps = 0;
  double achieved_sps = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  double queue_p95_ms = 0;
  double reject_rate = 0;
  double mean_wave_lanes = 0;
  double mean_wave_occupancy = 0;
  double mean_target_lanes = 0;
  int final_target_lanes = 0;
  double deadline_wave_fraction = 0;
  int wave_grows = 0, wave_shrinks = 0;
};

void fill_from_stats(LoadRow& row, const rt::ServerStats& st,
                     double wall_s) {
  row.achieved_sps =
      wall_s > 0 ? static_cast<double>(st.completed) / wall_s : 0.0;
  row.p50_ms = st.latency_us.percentile(50) * 1e-3;
  row.p95_ms = st.latency_us.percentile(95) * 1e-3;
  row.p99_ms = st.latency_us.percentile(99) * 1e-3;
  row.queue_p95_ms = st.queue_us.percentile(95) * 1e-3;
  const double offered = static_cast<double>(st.admitted + st.rejected);
  row.reject_rate =
      offered > 0 ? static_cast<double>(st.rejected) / offered : 0.0;
  row.mean_wave_lanes = st.wave_lanes.mean();
  row.mean_wave_occupancy = st.wave_occupancy.mean();
  row.mean_target_lanes = st.target_trace.mean();
  row.final_target_lanes = st.target_lanes;
  row.deadline_wave_fraction =
      st.waves > 0
          ? static_cast<double>(st.deadline_waves) /
                static_cast<double>(st.waves)
          : 0.0;
  row.wave_grows = st.wave_grows;
  row.wave_shrinks = st.wave_shrinks;
}

/// Closed loop: `clients` threads each submit-wait-repeat until the fleet
/// has issued `requests` total. Saturation = completed / wall.
LoadRow run_closed_loop(const snn::Network& net, const k::RunOptions& opt,
                        const rt::ServerConfig& scfg,
                        const std::vector<snn::Tensor>& images, int clients,
                        int requests) {
  rt::InferenceServer server(net, opt, {}, scfg);
  std::atomic<int> next{0};
  // Warmup: one full-fleet round outside the timed window (first waves pay
  // arena growth + cold weight DMA, exactly like host_profile's warm run).
  {
    std::vector<rt::ServeRequest> warm(static_cast<std::size_t>(clients));
    std::vector<std::thread> fleet;
    for (int c = 0; c < clients; ++c) {
      fleet.emplace_back([&, c] {
        warm[static_cast<std::size_t>(c)].image =
            &images[static_cast<std::size_t>(c) % images.size()];
        if (server.submit(warm[static_cast<std::size_t>(c)])) {
          warm[static_cast<std::size_t>(c)].wait();
        }
      });
    }
    for (auto& t : fleet) t.join();
  }
  const rt::ServerStats warm_stats = server.stats();

  const double t0 = now_s();
  std::vector<std::thread> fleet;
  for (int c = 0; c < clients; ++c) {
    fleet.emplace_back([&, c] {
      rt::ServeRequest slot;  // recycled across this client's requests
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= requests) break;
        slot.image = &images[static_cast<std::size_t>(i) % images.size()];
        if (server.submit(slot)) slot.wait();
      }
    });
  }
  for (auto& t : fleet) t.join();
  const double wall = now_s() - t0;

  rt::ServerStats st = server.stats();
  // Subtract the warmup round (counts only; the histograms then still carry
  // the warm samples, which only thickens the tail we are guarding).
  st.completed -= warm_stats.completed;
  LoadRow row;
  row.mode = "closed";
  row.clients = clients;
  row.requests = requests;
  row.offered_sps = static_cast<double>(requests) / wall;
  fill_from_stats(row, st, wall);
  server.stop();
  return row;
}

/// Open loop: one producer emits Poisson arrivals (exponential gaps) at
/// `lambda` req/s from a pre-allocated slot pool; a reaper thread recycles
/// completed slots. Latency percentiles come from the server's histograms.
LoadRow run_open_loop(const snn::Network& net, const k::RunOptions& opt,
                      const rt::ServerConfig& scfg,
                      const std::vector<snn::Tensor>& images, double load,
                      double lambda, int requests, std::uint64_t seed) {
  rt::InferenceServer server(net, opt, {}, scfg);
  // Warmup wave so the first timed request does not pay arena growth.
  {
    rt::ServeRequest warm;
    warm.image = &images[0];
    if (server.submit(warm)) warm.wait();
  }

  // Slot pool sized for the transient in-flight population at 0.9 load; a
  // producer finding no free slot counts a client-side drop (shed load),
  // keeping the arrival process open-loop instead of stalling it.
  const std::size_t pool_size =
      std::max<std::size_t>(64, static_cast<std::size_t>(
                                    server.max_wave_lanes() * 8));
  std::vector<rt::ServeRequest> slots(pool_size);
  std::vector<std::size_t> free_slots(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) free_slots[i] = i;
  std::vector<std::size_t> in_flight;
  in_flight.reserve(pool_size);

  sc::Rng rng(seed);
  std::uint64_t drops = 0;
  const double t0 = now_s();
  double next_at = t0;
  for (int i = 0; i < requests; ++i) {
    // Reap finished slots (non-blocking) to keep the pool supplied.
    for (std::size_t j = 0; j < in_flight.size();) {
      auto& s = slots[in_flight[j]];
      if (s.state.load(std::memory_order_acquire) != rt::ServeRequest::kQueued) {
        free_slots.push_back(in_flight[j]);
        in_flight[j] = in_flight.back();
        in_flight.pop_back();
      } else {
        ++j;
      }
    }
    const double now = now_s();
    if (next_at > now) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(next_at - now));
    }
    double u = rng.uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    next_at += -std::log(u) / lambda;  // exponential inter-arrival gap
    if (free_slots.empty()) {
      ++drops;
      continue;
    }
    const std::size_t si = free_slots.back();
    free_slots.pop_back();
    slots[si].image = &images[static_cast<std::size_t>(i) % images.size()];
    if (server.submit(slots[si])) {
      in_flight.push_back(si);
    } else {
      free_slots.push_back(si);  // server-side reject (counted by stats)
    }
  }
  for (const std::size_t si : in_flight) slots[si].wait();
  const double wall = now_s() - t0;

  rt::ServerStats st = server.stats();
  st.completed = st.completed > 0 ? st.completed - 1 : 0;  // warmup request
  LoadRow row;
  row.mode = "open";
  row.offered_load = load;
  row.requests = requests;
  row.offered_sps = lambda;
  fill_from_stats(row, st, wall);
  if (drops > 0) {
    std::printf("  (open %.2f: %zu client-side drops — slot pool exhausted)\n",
                load, static_cast<std::size_t>(drops));
  }
  server.stop();
  return row;
}

}  // namespace

int main() {
  const int lanes = env_int("SPIKESTREAM_SERVE_LANES", 8);
  const int requests = env_int("SPIKESTREAM_SERVE_REQS", 120);
  const int reps = env_int("SPIKESTREAM_REPS", 3);

  const snn::Network net = bench::make_calibrated_svgg11();
  const auto images = snn::make_batch(static_cast<std::size_t>(lanes), 77);

  // The serving engine configuration: segment-major waves + batch-level
  // weight-tile reuse — the fastest offline path, now fronted by a queue.
  k::RunOptions opt;
  opt.batch_weight_reuse = true;
  opt.segment_major_lanes = lanes;

  // --- offline baseline: BatchRunner lockstep over one full wave ------------
  double offline_sps = 0;
  {
    const rt::BatchRunner runner(net, opt, {}, {}, /*workers=*/1);
    runner.run_single_step(images);  // warm
    const double t0 = now_s();
    for (int r = 0; r < reps; ++r) runner.run_single_step(images);
    const double dt = now_s() - t0;
    offline_sps = static_cast<double>(reps) * static_cast<double>(lanes) / dt;
  }
  const double full_wave_ms = 1e3 * static_cast<double>(lanes) / offline_sps;
  std::printf("offline baseline: %.1f samples/s, full %d-lane wave %.1f ms\n",
              offline_sps, lanes, full_wave_ms);

  rt::ServerConfig scfg;
  scfg.max_queue_delay_us = 2000;
  scfg.timesteps = 1;
  scfg.controller_streak = 3;

  // --- closed loop: saturation throughput -----------------------------------
  const int clients = 2 * lanes;
  LoadRow closed = run_closed_loop(net, opt, scfg, images, clients,
                                   std::max(requests, 2 * clients));
  const double saturation_sps = closed.achieved_sps;
  std::printf("closed loop (%d clients): %.1f samples/s saturation "
              "(%.1f%% of offline), p99 %.1f ms\n",
              clients, saturation_sps, 1e2 * saturation_sps / offline_sps,
              closed.p99_ms);

  // --- open loop: Poisson sweep over offered load ---------------------------
  const double loads[] = {0.10, 0.30, 0.60, 0.90};
  std::vector<LoadRow> rows;
  for (const double load : loads) {
    const double lambda = load * saturation_sps;
    // Light points need fewer requests to resolve their (short) tail; cap
    // the wall clock instead of fixing one count for every load.
    const int n = std::clamp(static_cast<int>(load * 2 *
                                              static_cast<double>(requests)),
                             32, requests);
    rows.push_back(run_open_loop(net, opt, scfg, images, load, lambda, n,
                                 /*seed=*/1000 + static_cast<std::uint64_t>(
                                              load * 100)));
    const LoadRow& r = rows.back();
    std::printf("open %.2f load (%.1f req/s, %d reqs): p50 %.1f  p95 %.1f  "
                "p99 %.1f ms  waves %.1f lanes (target %.1f -> %d)  "
                "deadline-fired %.0f%%  rejects %.2f%%\n",
                load, lambda, n, r.p50_ms, r.p95_ms, r.p99_ms,
                r.mean_wave_lanes, r.mean_target_lanes, r.final_target_lanes,
                1e2 * r.deadline_wave_fraction, 1e2 * r.reject_rate);
  }
  rows.push_back(closed);

  // --- BENCH_serve.json -----------------------------------------------------
  const unsigned hw_threads =
      std::max(1u, std::thread::hardware_concurrency());
  if (std::FILE* f = std::fopen("BENCH_serve.json", "w")) {
    bench::JsonWriter w(f, /*compact_depth=*/2);
    w.begin_object();
    w.field("bench", "serve_profile");
    w.field("network", "svgg11");
    w.field("host_concurrency", hw_threads);
    w.field("lanes", lanes);
    w.field("max_queue_delay_us",
            static_cast<int>(scfg.max_queue_delay_us));
    w.field("offline_samples_per_sec", offline_sps, 2);
    w.field("full_wave_ms", full_wave_ms, 3);
    w.field("saturation_samples_per_sec", saturation_sps, 2);
    w.field("saturation_vs_offline", saturation_sps / offline_sps, 4);
    w.key("rows");
    w.begin_array();
    for (const LoadRow& r : rows) {
      w.begin_object();
      w.field("mode", r.mode);
      w.field("offered_load", r.offered_load, 2);
      w.field("clients", r.clients);
      w.field("requests", r.requests);
      w.field("offered_sps", r.offered_sps, 2);
      w.field("achieved_sps", r.achieved_sps, 2);
      w.field("p50_ms", r.p50_ms, 3);
      w.field("p95_ms", r.p95_ms, 3);
      w.field("p99_ms", r.p99_ms, 3);
      w.field("queue_p95_ms", r.queue_p95_ms, 3);
      w.field("reject_rate", r.reject_rate, 4);
      w.field("mean_wave_lanes", r.mean_wave_lanes, 2);
      w.field("mean_wave_occupancy", r.mean_wave_occupancy, 4);
      w.field("mean_target_lanes", r.mean_target_lanes, 2);
      w.field("final_target_lanes", r.final_target_lanes);
      w.field("deadline_wave_fraction", r.deadline_wave_fraction, 4);
      w.field("wave_grows", r.wave_grows);
      w.field("wave_shrinks", r.wave_shrinks);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_serve.json\n");
  }
  return 0;
}
