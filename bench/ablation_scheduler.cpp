// Ablation: workload stealing vs. static RF partition (Section III-B), as a
// function of spatial sparsity skew. Dynamic sparsity concentrates work in a
// few receptive fields; static round-robin then starves most cores.
#include <cstdio>

#include "bench_common.hpp"
#include "compress/csr_ifmap.hpp"
#include "kernels/layer_kernels.hpp"

namespace sb = spikestream::bench;
namespace sc = spikestream::common;
namespace k = spikestream::kernels;
namespace snn = spikestream::snn;

namespace {

/// Spikes concentrated in a corner block covering `hot_frac` of the area,
/// with `rate_hot` inside and `rate_cold` outside.
snn::SpikeMap skewed_map(int hw, int c, double hot_frac, double rate_hot,
                         double rate_cold, std::uint64_t seed) {
  sc::Rng rng(seed);
  snn::SpikeMap s(hw, hw, c);
  const int hot = std::max(2, static_cast<int>(hw * hot_frac));
  for (int y = 1; y < hw - 1; ++y) {
    for (int x = 1; x < hw - 1; ++x) {
      const double r = (y < hot && x < hot) ? rate_hot : rate_cold;
      for (int ch = 0; ch < c; ++ch) s.at(y, x, ch) = rng.bernoulli(r);
    }
  }
  return s;
}

}  // namespace

int main() {
  snn::LayerSpec spec;
  spec.kind = snn::LayerKind::kConv;
  spec.name = "conv";
  spec.in_h = spec.in_w = 18;
  spec.in_c = 128;
  spec.k = 3;
  spec.out_c = 256;
  spec.lif.v_th = 0.8f;
  spec.lif.v_rst = 0.8f;
  sc::Rng rng(5);
  snn::LayerWeights w;
  w.k = 3;
  w.in_c = spec.in_c;
  w.out_c = spec.out_c;
  w.v.resize(9u * 128 * 256);
  for (auto& x : w.v) x = static_cast<float>(rng.normal(0.0, 0.05));

  sc::Table t("Ablation — workload stealing vs. static RF partition "
              "(18x18x128 conv layer)");
  t.set_header({"skew (hot fraction)", "steal [kcyc]", "static [kcyc]",
                "gain", "static imbalance"});
  for (double hot : {1.0, 0.6, 0.4, 0.25}) {
    sc::RunningStats g_dyn, g_sta, imb;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      const auto in = skewed_map(18, 128, hot, 0.45, 0.02, seed);
      const auto csr = spikestream::compress::CsrIfmap::encode(in);
      k::RunOptions dyn, sta;
      dyn.variant = sta.variant = k::Variant::kSpikeStream;
      sta.workload_stealing = false;
      snn::Tensor m1(spec.out_h(), spec.out_w(), spec.out_c);
      snn::Tensor m2 = m1;
      const auto rd = k::run_conv_layer(spec, w, csr, m1, dyn);
      const auto rs = k::run_conv_layer(spec, w, csr, m2, sta);
      g_dyn.add(rd.stats.compute_cycles);
      g_sta.add(rs.stats.compute_cycles);
      double lo = 1e300, hi = 0;
      for (double c : rs.stats.core_cycles) {
        lo = std::min(lo, c);
        hi = std::max(hi, c);
      }
      imb.add(hi > 0 ? (hi - lo) / hi : 0.0);
    }
    t.add_row({sc::Table::num(hot, 2),
               sc::Table::num(g_dyn.mean() / 1e3, 1),
               sc::Table::num(g_sta.mean() / 1e3, 1),
               sc::Table::num(g_sta.mean() / g_dyn.mean(), 2) + "x",
               sc::Table::pct(imb.mean())});
  }
  t.print();
  std::printf("\nWorkload stealing recovers the imbalance introduced by the "
              "compressed representation (Section III-B).\n");
  return 0;
}
