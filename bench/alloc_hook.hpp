// Global allocation-counting operator new/delete hook, shared by the
// host-performance bench and the scratch-reuse tests so both binaries agree
// on what "zero steady-state allocations" means. Include from exactly ONE
// translation unit per executable — it *defines* the replacement operators.
//
// Counts every global allocation (including the aligned overloads) in
// `spikestream::allocs()` / `spikestream::alloc_bytes()`; snapshot the
// counters around the region of interest.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace spikestream::alloc_hook {

inline std::atomic<std::size_t> g_allocs{0};
inline std::atomic<std::size_t> g_alloc_bytes{0};

inline std::size_t allocs() {
  return g_allocs.load(std::memory_order_relaxed);
}
inline std::size_t alloc_bytes() {
  return g_alloc_bytes.load(std::memory_order_relaxed);
}

inline void* counted_alloc(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (n + align - 1) / align * align)
                : std::malloc(n ? n : 1);
  if (!p) throw std::bad_alloc();
  return p;
}

}  // namespace spikestream::alloc_hook

void* operator new(std::size_t n) {
  return spikestream::alloc_hook::counted_alloc(n, 0);
}
void* operator new[](std::size_t n) {
  return spikestream::alloc_hook::counted_alloc(n, 0);
}
void* operator new(std::size_t n, std::align_val_t a) {
  return spikestream::alloc_hook::counted_alloc(n,
                                                static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return spikestream::alloc_hook::counted_alloc(n,
                                                static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
