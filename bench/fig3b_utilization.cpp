// Reproduces Fig. 3b: average FPU utilization and per-core IPC for the
// baseline and SpikeStream variants in FP16, across S-VGG11 layers.
#include <cstdio>

#include "bench_common.hpp"

namespace sb = spikestream::bench;
namespace sc = spikestream::common;
namespace k = spikestream::kernels;

int main() {
  const int batch = sb::batch_size_from_env();
  const auto net = sb::make_calibrated_svgg11();
  const auto images =
      spikestream::snn::make_batch(static_cast<std::size_t>(batch), 2024);

  k::RunOptions base, ss;
  base.variant = k::Variant::kBaseline;
  base.fmt = sc::FpFormat::FP16;
  ss.variant = k::Variant::kSpikeStream;
  ss.fmt = sc::FpFormat::FP16;
  const sb::BatchRun rb = sb::run_batch(net, base, images);
  const sb::BatchRun rs = sb::run_batch(net, ss, images);

  sc::Table t("Fig. 3b — FPU utilization and per-core IPC (FP16), batch=" +
              std::to_string(batch));
  t.set_header({"layer", "util base", "util spikestream", "ipc base",
                "ipc spikestream"});
  double ub = 0, us = 0;
  for (std::size_t l = 0; l < rb.layers.size(); ++l) {
    t.add_row({rb.layers[l].name,
               sc::Table::pct(rb.layers[l].util.mean()),
               sc::Table::pct(rs.layers[l].util.mean()),
               sc::Table::num(rb.layers[l].ipc.mean(), 2),
               sc::Table::num(rs.layers[l].ipc.mean(), 2)});
    ub += rb.layers[l].util.mean();
    us += rs.layers[l].util.mean();
  }
  t.print();
  const auto n = static_cast<double>(rb.layers.size());
  std::printf("\nlayer-average FPU utilization: baseline %.2f%%, SpikeStream "
              "%.2f%% (paper: 9.28%% -> 52.3%%)\n",
              100.0 * ub / n, 100.0 * us / n);
  return 0;
}
