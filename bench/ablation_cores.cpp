// Ablation: strong scaling with worker-core count (1..8) for both variants
// on a mid-network conv layer — shows where the TP optimization's speedup
// comes from and how close workload stealing gets to linear scaling.
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "compress/csr_ifmap.hpp"
#include "kernels/layer_kernels.hpp"

namespace sc = spikestream::common;
namespace k = spikestream::kernels;
namespace snn = spikestream::snn;

int main() {
  snn::LayerSpec spec;
  spec.kind = snn::LayerKind::kConv;
  spec.name = "conv4-like";
  spec.in_h = spec.in_w = 18;
  spec.in_c = 256;
  spec.k = 3;
  spec.out_c = 256;
  spec.lif.v_th = 0.8f;
  spec.lif.v_rst = 0.8f;
  sc::Rng rng(11);
  snn::LayerWeights w;
  w.k = 3;
  w.in_c = spec.in_c;
  w.out_c = spec.out_c;
  w.v.resize(9u * 256 * 256);
  for (auto& x : w.v) x = static_cast<float>(rng.normal(0.0, 0.04));
  snn::SpikeMap in(18, 18, 256);
  for (int y = 1; y < 17; ++y) {
    for (int x = 1; x < 17; ++x) {
      for (int c = 0; c < 256; ++c) in.at(y, x, c) = rng.bernoulli(0.2);
    }
  }
  const auto csr = spikestream::compress::CsrIfmap::encode(in);

  sc::Table t("Ablation — strong scaling over worker cores (18x18x256 -> "
              "256 conv, rate 20%, FP16)");
  t.set_header({"cores", "baseline [kcyc]", "speedup", "spikestream [kcyc]",
                "speedup", "SS imbalance"});
  double base1 = 0, ss1 = 0;
  for (int cores : {1, 2, 4, 8}) {
    k::RunOptions ob, os;
    ob.variant = k::Variant::kBaseline;
    os.variant = k::Variant::kSpikeStream;
    ob.cores = os.cores = cores;
    snn::Tensor m1(spec.out_h(), spec.out_w(), spec.out_c), m2 = m1;
    const auto rb = k::run_conv_layer(spec, w, csr, m1, ob);
    const auto rs = k::run_conv_layer(spec, w, csr, m2, os);
    if (cores == 1) {
      base1 = rb.stats.compute_cycles;
      ss1 = rs.stats.compute_cycles;
    }
    double lo = 1e300, hi = 0;
    for (double c : rs.stats.core_cycles) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    t.add_row({std::to_string(cores),
               sc::Table::num(rb.stats.compute_cycles / 1e3, 1),
               sc::Table::num(base1 / rb.stats.compute_cycles, 2) + "x",
               sc::Table::num(rs.stats.compute_cycles / 1e3, 1),
               sc::Table::num(ss1 / rs.stats.compute_cycles, 2) + "x",
               sc::Table::pct(hi > 0 ? (hi - lo) / hi : 0.0)});
  }
  t.print();
  std::printf("\nBoth variants scale near-linearly (256 RFs over <=8 cores "
              "keep the steal\nqueue busy); the SpikeStream advantage is "
              "per-core, so TP and SA compose.\n");
  return 0;
}
