// Ablation: the paper's Section-VI future-work proposal — strided indirect
// SSR execution — on FC layers, where the base ISA needs an index
// pre-scaling pass (one multiply/shift/store per spike) before the gather
// streams can run. The effect lives on the *compute* critical path; at the
// end-to-end level the S-VGG11 FC layers are DMA-bound (weights stream from
// global memory), which this bench also demonstrates.
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "compress/csr_ifmap.hpp"
#include "kernels/layer_kernels.hpp"

namespace sc = spikestream::common;
namespace k = spikestream::kernels;
namespace snn = spikestream::snn;

int main() {
  sc::Table t("Ablation — strided indirect SSR (Section VI) on an FC layer "
              "4096 -> 512, FP16");
  t.set_header({"input rate", "compute base [kcyc]", "compute ext [kcyc]",
                "compute gain", "int instrs saved", "end-to-end gain"});

  snn::LayerSpec spec;
  spec.kind = snn::LayerKind::kFc;
  spec.name = "fc";
  spec.in_c = 4096;
  spec.out_c = 512;
  spec.lif.v_th = 0.5f;
  spec.lif.v_rst = 0.5f;
  sc::Rng wrng(3);
  snn::LayerWeights w;
  w.k = 1;
  w.in_c = spec.in_c;
  w.out_c = spec.out_c;
  w.v.resize(static_cast<std::size_t>(spec.in_c) * spec.out_c);
  for (auto& x : w.v) x = static_cast<float>(wrng.normal(0.0, 0.02));

  for (double rate : {0.05, 0.1, 0.2, 0.4}) {
    sc::Rng rng(static_cast<std::uint64_t>(rate * 1000));
    snn::SpikeMap in(1, 1, spec.in_c);
    for (auto& b : in.v) b = rng.bernoulli(rate) ? 1 : 0;
    const auto csr = spikestream::compress::CsrIfmap::encode(in);

    k::RunOptions base, ext;
    base.variant = ext.variant = k::Variant::kSpikeStream;
    ext.strided_indirect_ext = true;
    snn::Tensor m1(1, 1, spec.out_c), m2(1, 1, spec.out_c);
    const auto r0 = k::run_fc_layer(spec, w, csr, m1, base);
    const auto r1 = k::run_fc_layer(spec, w, csr, m2, ext);

    t.add_row({sc::Table::pct(rate, 0),
               sc::Table::num(r0.stats.compute_cycles / 1e3, 1),
               sc::Table::num(r1.stats.compute_cycles / 1e3, 1),
               sc::Table::num(r0.stats.compute_cycles / r1.stats.compute_cycles,
                              2) + "x",
               sc::Table::num(r0.stats.int_instrs - r1.stats.int_instrs, 0),
               sc::Table::num(r0.stats.cycles / r1.stats.cycles, 2) + "x"});
  }
  t.print();
  std::printf("\nThe extension removes the per-spike index scaling from the "
              "compute path\n(gain grows with input activity). End-to-end the "
              "FC layer stays DMA-bound\n(weight streaming dominates), so the "
              "paper proposes it for 'extremely sparse\nifmaps' where compute "
              "overlap, not bandwidth, is the limiter.\n");
  return 0;
}
