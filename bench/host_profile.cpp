// Host-performance profile of the simulator itself: how fast does the
// functional + cost pipeline execute on the machine running it? Times
// end-to-end batch inference on the calibrated S-VGG11 for every backend and
// reports samples/sec, ns per layer execution, and steady-state heap
// allocations per layer (counted by a global operator-new hook), then emits
// everything as BENCH_host.json so CI can archive a perf trajectory per PR.
//
//   SPIKESTREAM_BATCH  batch size (default 8)
//   SPIKESTREAM_REPS   timed repetitions of the batch (default 5)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

#include "arch/dram/dram.hpp"
#include "bench/alloc_hook.hpp"
#include "bench/bench_common.hpp"
#include "bench/json_writer.hpp"
#include "runtime/backend.hpp"
#include "runtime/batch.hpp"
#include "runtime/engine.hpp"
#include "runtime/pipeline.hpp"

namespace {

namespace rt = spikestream::runtime;
namespace k = spikestream::kernels;
namespace snn = spikestream::snn;
namespace bench = spikestream::bench;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct BackendProfile {
  std::string name;
  double samples_per_sec = 0;
  double ns_per_layer = 0;
  double steady_allocs_per_layer = 0;
  /// Modeled whole-network DMA per sample at steady state (batch mean).
  double dma_mb_per_sample = 0;
  /// Batch-DMA savings (weight-tile reuse + segment-major), split by lane
  /// temperature — this is the resolution of the historical
  /// analytical+batchreuse (2.046) vs pipelined+batchreuse (2.338)
  /// discrepancy: pipelined lanes stay warm across run() calls, so its
  /// steady-state batches skip one more cold sample per lane than the very
  /// first batch does, while BatchRunner rebuilds its states every call and
  /// therefore reports cold-start numbers forever. `cold` is the first
  /// batch on freshly built lanes; `steady` is a batch after the lanes have
  /// history (tests/test_pipeline.cpp pins cold*B == steady*(B-1) for a
  /// depth-1 pipeline).
  double dma_saved_mb_cold = 0;
  double dma_saved_mb_steady = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// Which workload this row ran (svgg11 or widefc).
  std::string network = "svgg11";
  /// Banked-DRAM row-buffer outcomes, whole network (0 in flat-legacy mode).
  double row_hit_rate = 0;
  /// Spill/fill cycles hidden under the band weight stream by the
  /// double-buffered segment-major schedule, per sample (Mcycles).
  double hidden_mcycles_per_sample = 0;
  /// Modeled whole-network cycles per sample at steady state (Mcycles) —
  /// what the memory model actually prices, so DRAM-timing regressions are
  /// visible even when host throughput is unchanged.
  double modeled_mcycles_per_sample = 0;
};

/// Shared profiling body over any runner with run_single_step() + engine():
/// BatchRunner (sample fan-out) and PipelinedBatchRunner (stage overlap).
template <typename Runner>
BackendProfile profile_runner(const std::string& label, const Runner& runner,
                              const std::vector<snn::Tensor>& images,
                              int reps) {
  BackendProfile prof;
  prof.name = label;
  const std::size_t layers = runner.engine().network().num_layers();
  const double n = static_cast<double>(images.size());

  auto batch_saved = [](const std::vector<rt::InferenceResult>& results) {
    double saved = 0;
    for (const rt::InferenceResult& res : results) {
      for (const auto& m : res.layers) saved += m.stats.dma_saved_bytes;
    }
    return saved;
  };

  // Cold-start savings: the very first batch this runner executes, before
  // any lane has weight-residency history.
  prof.dma_saved_mb_cold = batch_saved(runner.run_single_step(images)) /
                           (1e6 * n);

  // Throughput: timed batch repetitions (the cold run doubled as warmup).
  const double t0 = now_s();
  for (int r = 0; r < reps; ++r) runner.run_single_step(images);
  const double dt = now_s() - t0;
  const double sample_runs = static_cast<double>(reps) * images.size();
  prof.samples_per_sec = sample_runs / dt;
  prof.ns_per_layer = dt * 1e9 / (sample_runs * static_cast<double>(layers));

  // Steady-state savings + whole-network modeled DMA per sample.
  {
    const auto results = runner.run_single_step(images);
    prof.dma_saved_mb_steady = batch_saved(results) / (1e6 * n);
    double dma = 0, hits = 0, misses = 0, hidden = 0, cycles = 0;
    for (const rt::InferenceResult& res : results) {
      for (const auto& m : res.layers) {
        dma += m.stats.dma_bytes;
        hits += m.stats.dma_row_hits;
        misses += m.stats.dma_row_misses;
        hidden += m.stats.dma_cycles_hidden;
        cycles += m.stats.cycles;
      }
    }
    prof.dma_mb_per_sample = dma / (1e6 * n);
    prof.row_hit_rate = hits + misses > 0 ? hits / (hits + misses) : 0.0;
    prof.hidden_mcycles_per_sample = hidden / (1e6 * n);
    prof.modeled_mcycles_per_sample = cycles / (1e6 * n);
  }

  // Steady-state allocations: one engine, one state, one reused result —
  // this measures the shared per-layer hot path (backend + kernels +
  // scratch arenas), which is identical for every runner wrapping the same
  // engine. Runner-level orchestration (batch fan-out, pipeline ticks) is
  // excluded here because the by-value result marshalling both runners
  // return would drown the signal; its steady-state behavior is pinned by
  // tests/test_scratch_reuse.cpp instead.
  {
    const rt::InferenceEngine& engine = runner.engine();
    snn::NetworkState state = engine.make_state();
    rt::InferenceResult out;
    // Warm until occupancy (and with it every arena capacity) settles:
    // membranes keep integrating the constant input for a few timesteps.
    for (int r = 0; r < 6; ++r) engine.run(images[0], state, out);
    const std::size_t before = spikestream::alloc_hook::allocs();
    const int alloc_runs = 10;
    for (int r = 0; r < alloc_runs; ++r) engine.run(images[0], state, out);
    const std::size_t after = spikestream::alloc_hook::allocs();
    prof.steady_allocs_per_layer =
        static_cast<double>(after - before) /
        (static_cast<double>(alloc_runs) * static_cast<double>(layers));
  }

  if (const auto* a = dynamic_cast<const rt::AnalyticalBackend*>(
          &runner.engine().backend())) {
    prof.cache_hits = a->cost_cache_hits();
    prof.cache_misses = a->cost_cache_misses();
  }
  return prof;
}

BackendProfile profile_backend(const std::string& label,
                               const snn::Network& net,
                               const k::RunOptions& opt,
                               const rt::BackendConfig& cfg,
                               const std::vector<snn::Tensor>& images,
                               int reps, int workers = 0) {
  const rt::BatchRunner runner(net, opt, cfg, {}, workers);
  return profile_runner(label, runner, images, reps);
}

BackendProfile profile_pipelined(const std::string& label,
                                 const snn::Network& net,
                                 const k::RunOptions& opt,
                                 const rt::BackendConfig& cfg, int depth,
                                 const std::vector<snn::Tensor>& images,
                                 int reps) {
  const rt::PipelinedBatchRunner runner(net, opt, cfg, {}, depth);
  return profile_runner(label, runner, images, reps);
}

}  // namespace

int main() {
  const int batch = bench::batch_size_from_env(8);
  int reps = 5;
  if (const char* e = std::getenv("SPIKESTREAM_REPS")) {
    if (std::atoi(e) > 0) reps = std::atoi(e);
  }

  const snn::Network net = bench::make_calibrated_svgg11();
  const k::RunOptions opt;
  const auto images =
      snn::make_batch(static_cast<std::size_t>(batch), 77);

  std::vector<BackendProfile> profiles;
  {
    rt::BackendConfig cfg;  // analytical, exact timing
    profiles.push_back(
        profile_backend("analytical", net, opt, cfg, images, reps));
  }
  {
    rt::BackendConfig cfg;
    cfg.memoize_cost = true;
    profiles.push_back(
        profile_backend("analytical+memo", net, opt, cfg, images, reps));
  }
  {
    rt::BackendConfig cfg;
    cfg.kind = rt::BackendKind::kCycleAccurate;
    profiles.push_back(
        profile_backend("cycle-accurate", net, opt, cfg, images, reps));
  }
  {
    rt::BackendConfig cfg;
    cfg.kind = rt::BackendKind::kSharded;
    cfg.clusters = 4;
    profiles.push_back(
        profile_backend("sharded-4", net, opt, cfg, images, reps));
  }
  {
    // Stage-overlapped pipeline: layer L of sample i concurrent with layer
    // L+1 of sample i-1, depth-4 lane rotation.
    rt::BackendConfig cfg;
    profiles.push_back(profile_pipelined("analytical+pipelined", net, opt,
                                         cfg, /*depth=*/4, images, reps));
  }
  {
    // Batch-level weight-tile reuse: SPM-resident weight tiles survive
    // between samples, skipping the weight DMA on warm samples. The
    // BatchRunner row runs single-worker so which samples are cold is
    // deterministic (multithreaded slots are assigned by a racing claim
    // order — see RunOptions::batch_weight_reuse); the pipelined row's
    // lane rotation is deterministic at any width.
    k::RunOptions reuse_opt = opt;
    reuse_opt.batch_weight_reuse = true;
    rt::BackendConfig cfg;
    profiles.push_back(profile_backend("analytical+batchreuse", net,
                                       reuse_opt, cfg, images, reps,
                                       /*workers=*/1));
    profiles.push_back(profile_pipelined("pipelined+batchreuse", net,
                                         reuse_opt, cfg, /*depth=*/4, images,
                                         reps));
  }
  {
    // Segment-major batched FC execution: the batch loop inverts for
    // segmented FC layers (fc7 holds 73% of the cold whole-batch DMA), so
    // each fan-in weight band streams once per lockstep wave. Stacked on
    // batch_weight_reuse so convs keep their pinned tiles too.
    k::RunOptions sm_opt = opt;
    sm_opt.batch_weight_reuse = true;
    sm_opt.segment_major_lanes = batch;
    rt::BackendConfig cfg;
    profiles.push_back(profile_backend("analytical+segmajor", net, sm_opt,
                                       cfg, images, reps, /*workers=*/1));
    profiles.push_back(profile_pipelined("pipelined+segmajor", net, sm_opt,
                                         cfg, /*depth=*/batch, images, reps));
  }

  {
    // Banked-DRAM row on the segment-major schedule: same workload, the
    // row-buffer timing model priced in. Spikes are bit-identical to the
    // flat rows (tests/test_dram.cpp); what changes is the modeled
    // cycle/row-hit profile below.
    k::RunOptions banked_opt = opt;
    banked_opt.batch_weight_reuse = true;
    banked_opt.segment_major_lanes = batch;
    banked_opt.cost.dram = spikestream::arch::DramConfig::banked();
    rt::BackendConfig cfg;
    profiles.push_back(profile_backend("analytical+banked+segmajor", net,
                                       banked_opt, cfg, images, reps,
                                       /*workers=*/1));
  }

  // Wide-FC spill vehicle: S-VGG11 at batch 8 spills zero partial-sum
  // bytes, so the double-buffered spill/fill needs its own workload — an
  // FC-heavy net whose wide layer parks batch lanes (see
  // snn::Network::make_wide_fc). Three rows: flat pricing, banked with the
  // double-buffered spill/fill, banked with serial spills — the last two
  // isolate the modeled-cycle reduction from spill hiding. The rows run
  // single-buffered (cycles = dma + compute) so the memory timeline is
  // exposed 1:1 in wall-clock — with compute/DMA overlap on, fc2's wave
  // compute would swallow the DMA delta — and at batch >= 32 so lanes still
  // park next to the (smaller) single-buffered streaming set.
  const int wide_batch = std::max(batch, 32);
  const snn::Network wide_net = bench::make_calibrated_wide_fc();
  const auto wide_images =
      snn::make_batch(static_cast<std::size_t>(wide_batch), 78);
  {
    k::RunOptions wopt = opt;
    wopt.batch_weight_reuse = true;
    wopt.segment_major_lanes = wide_batch;
    wopt.double_buffer = false;
    rt::BackendConfig cfg;
    profiles.push_back(profile_backend("widefc+segmajor", wide_net, wopt, cfg,
                                       wide_images, reps, /*workers=*/1));
    wopt.cost.dram = spikestream::arch::DramConfig::banked();
    wopt.cost.dram.spill_double_buffer = false;
    profiles.push_back(profile_backend("widefc+banked+serialspill", wide_net,
                                       wopt, cfg, wide_images, reps,
                                       /*workers=*/1));
    wopt.cost.dram.spill_double_buffer = true;
    profiles.push_back(profile_backend("widefc+banked+segmajor", wide_net,
                                       wopt, cfg, wide_images, reps,
                                       /*workers=*/1));
    for (std::size_t i = profiles.size() - 3; i < profiles.size(); ++i) {
      profiles[i].network = "widefc";
    }
  }

  std::printf("host profile: S-VGG11 batch %d + wide-FC batch %d, %d reps, "
              "%u hw threads\n",
              batch, wide_batch, reps,
              std::max(1u, std::thread::hardware_concurrency()));
  std::printf("%-26s %11s %11s %13s %11s %11s %11s %8s %8s %10s\n", "backend",
              "samples/s", "ns/layer", "allocs/layer", "dma MB/s.",
              "saved stdy", "Mcyc/s.", "rowhit", "hidden", "memo h/m");
  for (const auto& p : profiles) {
    std::printf(
        "%-26s %11.1f %11.0f %13.3f %11.3f %11.3f %11.3f %8.3f %8.3f "
        "%6zu/%zu\n",
        p.name.c_str(), p.samples_per_sec, p.ns_per_layer,
        p.steady_allocs_per_layer, p.dma_mb_per_sample, p.dma_saved_mb_steady,
        p.modeled_mcycles_per_sample, p.row_hit_rate,
        p.hidden_mcycles_per_sample, p.cache_hits, p.cache_misses);
  }

  // BENCH_host.json: one flat record per backend, easy to diff across PRs.
  // dma_saved_mb_per_sample stays as an alias of the steady-state column so
  // older regression baselines keep comparing.
  // Host identity: throughput numbers are only comparable between runs on
  // similar machines, so the regression script refuses the samples/sec
  // compare when the recorded concurrency differs (modeled-cycle and
  // allocation columns stay comparable regardless — they are host-invariant).
  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());
  std::string host_os = "unknown", host_machine = "unknown";
#if defined(__linux__) || defined(__APPLE__)
  {
    utsname uts{};
    if (uname(&uts) == 0) {
      host_os = uts.sysname;
      host_machine = uts.machine;
    }
  }
#endif

  if (std::FILE* f = std::fopen("BENCH_host.json", "w")) {
    spikestream::bench::JsonWriter w(f, /*compact_depth=*/2);
    w.begin_object();
    w.field("bench", "host_profile");
    w.field("network", "svgg11");
    w.field("batch", batch);
    w.field("host_concurrency", hw_threads);
    w.field("host_os", host_os);
    w.field("host_machine", host_machine);
    w.field("reps", reps);
    w.key("backends");
    w.begin_array();
    for (const auto& p : profiles) {
      w.begin_object();
      w.field("name", p.name);
      w.field("network", p.network);
      w.field("samples_per_sec", p.samples_per_sec, 2);
      w.field("ns_per_layer", p.ns_per_layer, 1);
      w.field("steady_allocs_per_layer", p.steady_allocs_per_layer, 4);
      w.field("dma_mb_per_sample", p.dma_mb_per_sample, 4);
      w.field("dma_saved_mb_cold", p.dma_saved_mb_cold, 4);
      w.field("dma_saved_mb_steady", p.dma_saved_mb_steady, 4);
      // Alias of the steady column so older regression baselines compare.
      w.field("dma_saved_mb_per_sample", p.dma_saved_mb_steady, 4);
      w.field("modeled_mcycles_per_sample", p.modeled_mcycles_per_sample, 4);
      w.field("row_hit_rate", p.row_hit_rate, 4);
      w.field("hidden_mcycles_per_sample", p.hidden_mcycles_per_sample, 4);
      w.field("cost_cache_hits", p.cache_hits);
      w.field("cost_cache_misses", p.cache_misses);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_host.json\n");
  }
  return 0;
}
