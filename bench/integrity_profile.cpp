// Data-integrity bench: injects silent-data-corruption faults (weight /
// spike-payload / membrane bit flips) under serving load and reports the
// detection story per protection mode, plus the modeled overhead of turning
// the defenses on:
//
//   * sealed paths detect everything: with spike + weight checksums armed,
//     every flip that lands inside a sealed domain (weight slices, inter-layer
//     spike handoffs) is caught before results publish — detection_rate 1.0,
//     zero silent escapes, completed spikes bit-identical to healthy;
//   * the unprotected baseline serves corruption silently: the same schedule
//     with checksums off completes with divergent spikes and zero detections
//     (the "why bother" row);
//   * checksums have a threat-model gap the bench demonstrates rather than
//     hides: membrane state and the final layer's output live past the last
//     sealed boundary, so only the redundant-lane mode (execute twice on
//     disjoint clusters, compare output seals) catches those flips;
//   * protection is cheap: on the calibrated S-VGG11 serving row, modeled
//     checker cycles (CRC engine at crc_bytes_per_cycle) plus the SEC-DED ECC
//     overlay stay within a 10% ceiling over the unprotected cycles; the
//     redundant mode's ~2x is reported for context, not gated.
//
// All gated numbers are modeled (cycles, counters) — host-invariant, so the
// CI guard (--integrity over BENCH_integrity.json) holds on any runner.
//
//   SPIKESTREAM_INTEGRITY_LANES   wave width = burst size (default 4)
//   SPIKESTREAM_INTEGRITY_WAVES   S-VGG11 overhead bursts (default 8)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench/json_writer.hpp"
#include "common/rng.hpp"
#include "runtime/faults.hpp"
#include "runtime/multistep.hpp"
#include "runtime/server.hpp"
#include "snn/calibrate.hpp"
#include "snn/input_gen.hpp"

namespace {

namespace rt = spikestream::runtime;
namespace k = spikestream::kernels;
namespace snn = spikestream::snn;
namespace sb = spikestream::bench;
namespace sc = spikestream::common;

constexpr int kClusters = 4;

int env_int(const char* name, int def) {
  if (const char* e = std::getenv(name)) {
    const int v = std::atoi(e);
    if (v > 0) return v;
  }
  return def;
}

/// Small 3-layer net for the detection matrix — every fault site (layer,
/// lane) is cheap to sweep and the output layer's calibrated threshold is
/// low enough that exponent flips corrupt served spikes visibly.
snn::Network tiny_net() {
  snn::Network net = snn::Network::make_tiny(18, 3, 32, 10);
  sc::Rng rng(42);
  net.init_weights(rng);
  const auto calib = snn::make_batch(4, 7, 16, 16, 3);
  const std::vector<double> targets = {0.20, 0.15, 0.30};
  snn::calibrate_thresholds(net, calib, targets);
  return net;
}

rt::BackendConfig backend_cfg() {
  rt::BackendConfig b;
  b.kind = rt::BackendKind::kSharded;
  b.clusters = kClusters;
  b.shard_threads = false;  // 1-CPU CI runner: modeled timing is the metric
  return b;
}

struct ModeResult {
  rt::ServerStats stats;
  std::uint64_t silent_escapes = 0;  ///< completed with spikes != healthy
  double cycles_sum = 0;             ///< over completed requests
  std::uint64_t cycles_n = 0;
};

/// Drive one burst-per-wave load through a server with `integ` protection and
/// `faults` injected, comparing every completed request against the healthy
/// per-image baseline. With adaptive sizing off each burst is exactly one
/// wave, so fault wave indices line up with bursts.
ModeResult run_mode(const snn::Network& net, const k::RunOptions& opt,
                    const rt::IntegrityConfig& integ,
                    const rt::FaultPlan& faults,
                    const std::vector<snn::Tensor>& images, int waves,
                    const std::vector<std::vector<std::uint32_t>>* baseline) {
  rt::ServerConfig scfg;
  scfg.adaptive_wave = false;
  scfg.max_queue_delay_us = 200000;  // bursts always form full waves
  scfg.retry_backoff_us = 10;
  scfg.faults = faults;
  scfg.integrity = integ;
  rt::InferenceServer server(net, opt, backend_cfg(), scfg);

  ModeResult out;
  std::vector<rt::ServeRequest> reqs(images.size());
  for (int w = 0; w < waves; ++w) {
    for (std::size_t i = 0; i < images.size(); ++i) {
      reqs[i].image = &images[i];
      if (!server.submit(reqs[i])) continue;
    }
    for (std::size_t i = 0; i < images.size(); ++i) {
      if (!reqs[i].wait()) continue;
      out.cycles_sum += reqs[i].result.total_cycles;
      ++out.cycles_n;
      if (baseline != nullptr &&
          reqs[i].result.spike_counts != (*baseline)[i]) {
        ++out.silent_escapes;
      }
    }
  }
  server.stop();
  out.stats = server.stats();
  return out;
}

rt::IntegrityConfig mode_unprotected() { return rt::IntegrityConfig{}; }

rt::IntegrityConfig mode_checksum() {
  rt::IntegrityConfig c;
  c.checksum_spikes = true;
  c.checksum_weights = true;
  return c;
}

rt::IntegrityConfig mode_redundant() {
  rt::IntegrityConfig c = mode_checksum();
  c.redundant_lanes = true;
  return c;
}

void emit_mode(sb::JsonWriter& w, const char* mode, const ModeResult& r,
               std::uint64_t injected_events) {
  const rt::ServerStats& st = r.stats;
  // One detection per scheduled event: failures=1 flips apply on attempt 0,
  // get caught once, and the retry runs clean — so mismatches count events.
  const std::uint64_t detected =
      st.integrity_mismatches < injected_events ? st.integrity_mismatches
                                                : injected_events;
  w.begin_object();
  w.field("mode", mode);
  w.field("injected_events", injected_events);
  w.field("data_faults_injected", st.data_faults_injected);
  w.field("detected", detected);
  w.field("detection_rate",
          injected_events > 0
              ? static_cast<double>(detected) / injected_events
              : 1.0,
          4);
  w.field("silent_escapes", r.silent_escapes);
  w.field("integrity_checks", st.integrity_checks);
  w.field("integrity_mismatches", st.integrity_mismatches);
  w.field("integrity_faults", st.integrity_faults);
  w.field("redundant_waves", st.redundant_waves);
  w.field("admitted", st.admitted);
  w.field("completed", st.completed);
  w.field("errored", st.errored);
  w.field("corrupted", st.corrupted);
  w.field("crc_sealed_bytes", st.crc_sealed_bytes);
  w.field("crc_cycles", st.crc_cycles, 2);
  w.end_object();
}

}  // namespace

int main() {
  const int lanes = env_int("SPIKESTREAM_INTEGRITY_LANES", 4);
  const int svgg_waves = env_int("SPIKESTREAM_INTEGRITY_WAVES", 8);

  const snn::Network net = tiny_net();
  const auto images =
      snn::make_batch(static_cast<std::size_t>(lanes), 37, 16, 16, 3);
  k::RunOptions opt;
  opt.segment_major_lanes = lanes;

  // Healthy per-image baselines from the offline path (server waves are
  // independent, so one clean pass per image is the reference for every run).
  std::vector<std::vector<std::uint32_t>> healthy;
  {
    rt::InferenceEngine ref(net, opt, backend_cfg());
    snn::NetworkState st = ref.make_state();
    for (const auto& img : images) {
      healthy.push_back(rt::run_timesteps(ref, st, img, 1).spike_counts);
    }
  }

  // --- sealed-path roster: every flip lands inside a checksummed domain ----
  // Weight slices (verified against golden seals each wave) and spike
  // payloads at non-final layers (re-sealed at the next cluster handoff).
  // Bits include sign/exponent (functionally loud) and low mantissa bits
  // (functionally quiet) — checksums must catch both.
  rt::FaultPlan sealed;
  sealed.flip_weight(/*layer=*/0, /*bit=*/31, /*wave=*/0);       // sign
  sealed.flip_weight(/*layer=*/1, /*bit=*/16 * 40 + 14, /*wave=*/1);
  sealed.flip_weight(/*layer=*/2, /*bit=*/3, /*wave=*/2);        // quiet
  sealed.flip_spikes(/*layer=*/0, /*byte=*/17, /*wave=*/3, /*lane=*/1);
  sealed.flip_spikes(/*layer=*/1, /*byte=*/5, /*wave=*/4, /*lane=*/0);
  sealed.flip_spikes(/*layer=*/0, /*byte=*/230, /*wave=*/5, /*lane=*/2);
  const int sealed_waves = 7;  // six faulted waves plus one clean tail
  const std::uint64_t sealed_events = sealed.size();

  const ModeResult seal_unprot = run_mode(net, opt, mode_unprotected(),
                                          sealed, images, sealed_waves,
                                          &healthy);
  const ModeResult seal_chk = run_mode(net, opt, mode_checksum(), sealed,
                                       images, sealed_waves, &healthy);
  const ModeResult seal_red = run_mode(net, opt, mode_redundant(), sealed,
                                       images, sealed_waves, &healthy);
  std::printf(
      "sealed roster (%llu flips): unprotected %llu silent escapes, "
      "checksum detected %llu/%llu (escapes %llu), redundant detected "
      "%llu+ (escapes %llu)\n",
      static_cast<unsigned long long>(sealed_events),
      static_cast<unsigned long long>(seal_unprot.silent_escapes),
      static_cast<unsigned long long>(seal_chk.stats.integrity_mismatches),
      static_cast<unsigned long long>(sealed_events),
      static_cast<unsigned long long>(seal_chk.silent_escapes),
      static_cast<unsigned long long>(seal_red.stats.integrity_mismatches),
      static_cast<unsigned long long>(seal_red.silent_escapes));

  // --- unsealed roster: flips past the last sealed boundary ----------------
  // Output-layer membrane state and final-layer spike payloads never cross a
  // handoff, so checksums cannot see them; only the redundant shadow pass
  // (clean disjoint execution, output seals compared) catches these.
  rt::FaultPlan unsealed;
  unsealed.flip_membrane(/*layer=*/2, /*bit=*/30, /*wave=*/0, /*lane=*/0);
  unsealed.flip_membrane(/*layer=*/2, /*bit=*/30, /*wave=*/1, /*lane=*/2);
  unsealed.flip_spikes(/*layer=*/2, /*byte=*/0, /*wave=*/2, /*lane=*/1);
  unsealed.flip_spikes(/*layer=*/2, /*byte=*/3, /*wave=*/3, /*lane=*/3);
  const int unsealed_waves = 5;
  const std::uint64_t unsealed_events = unsealed.size();

  const ModeResult gap_chk = run_mode(net, opt, mode_checksum(), unsealed,
                                      images, unsealed_waves, &healthy);
  const ModeResult gap_red = run_mode(net, opt, mode_redundant(), unsealed,
                                      images, unsealed_waves, &healthy);
  std::printf(
      "unsealed roster (%llu flips): checksum-only lets %llu escape "
      "silently; redundant catches %llu and lets %llu escape\n",
      static_cast<unsigned long long>(unsealed_events),
      static_cast<unsigned long long>(gap_chk.silent_escapes),
      static_cast<unsigned long long>(gap_red.stats.integrity_mismatches),
      static_cast<unsigned long long>(gap_red.silent_escapes));

  // --- S-VGG11 overhead row: protection cost on the real serving vehicle ---
  // The serving config amortizes the static-weight re-hash scrub-style over
  // every 8th wave (weights never change between waves; the spike-path seals
  // that guard live data still run at every boundary).
  const std::uint64_t weight_period = 8;
  const snn::Network svgg = sb::make_calibrated_svgg11();
  const int svgg_lanes = 2;
  const auto svgg_imgs =
      snn::make_batch(static_cast<std::size_t>(svgg_lanes), 20);
  k::RunOptions sopt;
  sopt.segment_major_lanes = svgg_lanes;
  k::RunOptions sopt_ecc = sopt;
  sopt_ecc.cost.dram.ecc.enabled = true;  // DDR4-class default ber

  rt::IntegrityConfig serve_chk = mode_checksum();
  serve_chk.weight_check_period = weight_period;
  rt::IntegrityConfig serve_red = mode_redundant();
  serve_red.weight_check_period = weight_period;

  const ModeResult ov_base = run_mode(svgg, sopt, mode_unprotected(), {},
                                      svgg_imgs, svgg_waves, nullptr);
  const ModeResult ov_chk = run_mode(svgg, sopt, serve_chk, {}, svgg_imgs,
                                     svgg_waves, nullptr);
  const ModeResult ov_full = run_mode(svgg, sopt_ecc, serve_chk, {},
                                      svgg_imgs, svgg_waves, nullptr);
  const ModeResult ov_red = run_mode(svgg, sopt_ecc, serve_red, {},
                                     svgg_imgs, svgg_waves, nullptr);

  // Modeled protected cost = kernel cycles (ECC overlay included) plus the
  // CRC checker's cycles, over the same completed requests. The redundant
  // shadow pass executes the whole wave a second time on disjoint clusters —
  // its latency hides behind the primary but the compute is spent, so the
  // resource row charges the execution cycles twice.
  const auto overhead = [&](const ModeResult& r, bool doubled) {
    if (ov_base.cycles_sum <= 0) return 0.0;
    const double exec = doubled ? 2.0 * r.cycles_sum : r.cycles_sum;
    return (exec + r.stats.crc_cycles - ov_base.cycles_sum) /
           ov_base.cycles_sum;
  };
  const double chk_ov = overhead(ov_chk, false);
  const double full_ov = overhead(ov_full, false);
  const double red_ov = overhead(ov_red, true);
  std::printf(
      "svgg11 overhead (%d waves x %d lanes): checksum %+.3f%%, "
      "checksum+ecc %+.3f%% (ceiling 10%%), redundant %+.3f%% (context)\n",
      svgg_waves, svgg_lanes, 100.0 * chk_ov, 100.0 * full_ov,
      100.0 * red_ov);

  // --- BENCH_integrity.json -------------------------------------------------
  if (std::FILE* f = std::fopen("BENCH_integrity.json", "w")) {
    sb::JsonWriter w(f, /*compact_depth=*/2);
    w.begin_object();
    w.field("bench", "integrity_profile");
    w.field("network", "tiny16");
    w.field("clusters", kClusters);
    w.field("lanes", lanes);
    w.key("sealed_paths");
    w.begin_array();
    emit_mode(w, "unprotected", seal_unprot, sealed_events);
    emit_mode(w, "checksum", seal_chk, sealed_events);
    emit_mode(w, "redundant", seal_red, sealed_events);
    w.end_array();
    w.key("unsealed_paths");
    w.begin_array();
    emit_mode(w, "checksum", gap_chk, unsealed_events);
    emit_mode(w, "redundant", gap_red, unsealed_events);
    w.end_array();
    w.key("svgg11_overhead");
    w.begin_object();
    w.field("network", "svgg11");
    w.field("lanes", svgg_lanes);
    w.field("waves", svgg_waves);
    w.field("weight_check_period", weight_period);
    w.field("base_modeled_cycles", ov_base.cycles_sum, 0);
    w.field("checksum_overhead", chk_ov, 6);
    w.field("checksum_ecc_overhead", full_ov, 6);
    w.field("redundant_overhead", red_ov, 6);
    w.field("checksum_crc_cycles", ov_chk.stats.crc_cycles, 2);
    w.field("checksum_sealed_bytes", ov_chk.stats.crc_sealed_bytes);
    w.end_object();
    w.end_object();
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_integrity.json\n");
  }
  return 0;
}
