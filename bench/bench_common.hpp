// Shared harness for the figure-reproduction benches: builds the calibrated
// S-VGG11, generates the input batch, runs the inference engine per variant
// and aggregates per-layer statistics (mean / stddev over the batch), exactly
// like the paper's evaluation methodology (Section IV: batch of 128 frames;
// our default batch is 32 for runtime, override with SPIKESTREAM_BATCH).
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "runtime/batch.hpp"
#include "runtime/engine.hpp"
#include "snn/calibrate.hpp"
#include "snn/input_gen.hpp"
#include "snn/network.hpp"

namespace spikestream::bench {

inline int batch_size_from_env(int def = 32) {
  if (const char* e = std::getenv("SPIKESTREAM_BATCH")) {
    const int v = std::atoi(e);
    if (v > 0) return v;
  }
  return def;
}

inline snn::Network make_calibrated_svgg11(std::uint64_t seed = 1,
                                           int calib_images = 4) {
  snn::Network net = snn::Network::make_svgg11();
  common::Rng rng(seed);
  net.init_weights(rng);
  const auto calib = snn::make_batch(static_cast<std::size_t>(calib_images),
                                     seed * 17 + 3);
  snn::calibrate_thresholds(net, calib, snn::svgg11_target_rates());
  return net;
}

/// The FC-heavy spill vehicle (see snn::Network::make_wide_fc), calibrated
/// to its target rate profile. Used by the banked-DRAM bench rows: S-VGG11
/// at batch 8 spills zero bytes, this net spills at batch 16-32.
inline snn::Network make_calibrated_wide_fc(std::uint64_t seed = 1,
                                            int calib_images = 4) {
  snn::Network net = snn::Network::make_wide_fc();
  common::Rng rng(seed);
  net.init_weights(rng);
  const auto calib = snn::make_batch(static_cast<std::size_t>(calib_images),
                                     seed * 17 + 3);
  snn::calibrate_thresholds(net, calib, snn::wide_fc_target_rates());
  return net;
}

/// The deep narrow conv tower (see snn::Network::make_deep_tower), calibrated
/// to its flat mid-tower rate profile. Stage-pipeline bench vehicle: its
/// per-layer work is a small multiple of the fixed launch overheads, so the
/// pipeline planner splits it into cluster-group stages where S-VGG11 stays
/// data-parallel.
inline snn::Network make_calibrated_deep_tower(std::uint64_t seed = 1,
                                               int calib_images = 4) {
  snn::Network net = snn::Network::make_deep_tower();
  common::Rng rng(seed);
  net.init_weights(rng);
  const auto calib = snn::make_batch(static_cast<std::size_t>(calib_images),
                                     seed * 17 + 3, 6, 6, 3);
  snn::calibrate_thresholds(net, calib, snn::deep_tower_target_rates());
  return net;
}

/// Per-layer aggregates over a batch.
struct LayerAgg {
  std::string name;
  common::RunningStats cycles;
  common::RunningStats util;
  common::RunningStats ipc;
  common::RunningStats energy_mj;
  common::RunningStats power_w;
  common::RunningStats in_rate;
  common::RunningStats csr_bytes;
  common::RunningStats aer_bytes;
};

struct BatchRun {
  std::vector<LayerAgg> layers;
  common::RunningStats total_cycles;
  common::RunningStats total_energy_mj;
};

/// Runs the batch through a BatchRunner (weights quantized once, samples
/// executed concurrently on the configured backend) and aggregates the
/// per-layer metrics in input order, so the statistics are deterministic
/// whatever the worker count.
inline BatchRun run_batch(const snn::Network& net,
                          const kernels::RunOptions& opt,
                          const std::vector<snn::Tensor>& images,
                          const arch::EnergyParams& energy = {},
                          const runtime::BackendConfig& backend = {}) {
  runtime::BatchRunner runner(net, opt, backend, energy);
  const std::vector<runtime::InferenceResult> results =
      runner.run_single_step(images);
  BatchRun agg;
  agg.layers.resize(net.num_layers());
  for (const runtime::InferenceResult& res : results) {
    for (std::size_t l = 0; l < res.layers.size(); ++l) {
      const auto& m = res.layers[l];
      LayerAgg& a = agg.layers[l];
      a.name = m.name;
      a.cycles.add(m.stats.cycles);
      a.util.add(m.stats.fpu_utilization());
      a.ipc.add(m.stats.ipc());
      a.energy_mj.add(m.energy.total_mj());
      a.power_w.add(m.power_w);
      a.in_rate.add(m.in_firing_rate);
      a.csr_bytes.add(m.csr_bytes);
      a.aer_bytes.add(m.aer_bytes);
    }
    agg.total_cycles.add(res.total_cycles);
    agg.total_energy_mj.add(res.total_energy_mj);
  }
  return agg;
}

}  // namespace spikestream::bench
