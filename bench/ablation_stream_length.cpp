// Ablation: FPU utilization and cycles/element vs. SpVA stream length, on the
// cycle-level ISS (the mechanism behind the paper's layer-2 observation and
// the "future work" motivation for strided indirect streams). Also prints the
// layer-model prediction next to the measurement.
#include <cstdio>

#include "arch/cluster.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "kernels/cost_model.hpp"
#include "kernels/iss_kernels.hpp"

namespace arch = spikestream::arch;
namespace sc = spikestream::common;
namespace k = spikestream::kernels;

int main() {
  sc::Table t("Ablation — SpVA cost vs. stream length (ISS, 30 back-to-back "
              "streams per point)");
  t.set_header({"s_len", "cycles/elem ISS", "cycles/elem model", "FPU util",
                "IPC", "regime"});
  const k::CostParams p;
  for (int s_len : {2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256}) {
    arch::ClusterConfig cfg;
    cfg.icache_miss_penalty = 0;
    arch::Cluster cl(cfg);
    sc::Rng rng(static_cast<std::uint64_t>(s_len));
    std::vector<double> w(512, 1.0);
    std::vector<std::vector<std::uint16_t>> streams;
    int total = 0;
    for (int j = 0; j < 30; ++j) {
      std::vector<std::uint16_t> v;
      for (int i = 0; i < s_len; ++i) {
        v.push_back(static_cast<std::uint16_t>(rng.uniform_u64(512)));
      }
      total += s_len;
      streams.push_back(std::move(v));
    }
    const auto r = k::iss_spikestream_spva_sequence(cl, w, streams);
    const double per_elem = static_cast<double>(r.cycles) / total;
    const double model =
        k::spikestream_spva_cycles(p, s_len, 1.0) / s_len;
    const bool setup_bound = p.fadd_latency * s_len + p.ss_residue < p.ss_setup;
    t.add_row({std::to_string(s_len), sc::Table::num(per_elem, 2),
               sc::Table::num(model, 2),
               sc::Table::pct(r.perf.fpu_utilization()),
               sc::Table::num(r.perf.ipc(), 2),
               setup_bound ? "integer-bound" : "stream-bound"});
  }
  t.print();
  std::printf("\nShort streams cannot hide the integer-core setup behind the "
              "FPU stream\n(the paper's layer-2 effect); utilization "
              "saturates at 1/II = 50%% for long streams.\n");
  return 0;
}
