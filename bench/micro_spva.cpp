// google-benchmark microbenches: host-side throughput of the ISS and of the
// functional kernels (useful to size batch counts for the figure benches, and
// to catch performance regressions in the simulator itself).
#include <benchmark/benchmark.h>

#include "arch/cluster.hpp"
#include "common/rng.hpp"
#include "compress/csr_ifmap.hpp"
#include "kernels/iss_kernels.hpp"
#include "kernels/layer_kernels.hpp"
#include "snn/network.hpp"

namespace arch = spikestream::arch;
namespace k = spikestream::kernels;
namespace sc = spikestream::common;
namespace snn = spikestream::snn;

namespace {

std::vector<std::uint16_t> rand_idcs(int n, int universe, std::uint64_t seed) {
  sc::Rng rng(seed);
  std::vector<std::uint16_t> v;
  for (int i = 0; i < n; ++i) {
    v.push_back(static_cast<std::uint16_t>(
        rng.uniform_u64(static_cast<std::uint64_t>(universe))));
  }
  return v;
}

void BM_IssBaselineSpva(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  std::vector<double> w(512, 1.0);
  const auto idcs = rand_idcs(n, 512, 1);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    arch::ClusterConfig cfg;
    cfg.icache_miss_penalty = 0;
    arch::Cluster cl(cfg);
    const auto r = k::iss_baseline_spva(cl, w, idcs);
    cycles = r.cycles;
    benchmark::DoNotOptimize(r.value);
  }
  state.counters["sim_cycles"] = static_cast<double>(cycles);
  state.counters["sim_cycles_per_sec"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_IssBaselineSpva)->Arg(64)->Arg(512);

void BM_IssStreamSpva(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  std::vector<double> w(512, 1.0);
  const auto idcs = rand_idcs(n, 512, 2);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    arch::ClusterConfig cfg;
    cfg.icache_miss_penalty = 0;
    arch::Cluster cl(cfg);
    const auto r = k::iss_spikestream_spva(cl, w, idcs);
    cycles = r.cycles;
    benchmark::DoNotOptimize(r.value);
  }
  state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_IssStreamSpva)->Arg(64)->Arg(512);

void BM_ConvKernelFunctional(benchmark::State& state) {
  snn::LayerSpec spec;
  spec.kind = snn::LayerKind::kConv;
  spec.name = "conv";
  spec.in_h = spec.in_w = 18;
  spec.in_c = 128;
  spec.k = 3;
  spec.out_c = 256;
  sc::Rng rng(3);
  snn::LayerWeights w;
  w.k = 3;
  w.in_c = 128;
  w.out_c = 256;
  w.v.resize(9u * 128 * 256);
  for (auto& x : w.v) x = static_cast<float>(rng.normal(0.0, 0.05));
  snn::SpikeMap in(18, 18, 128);
  for (auto& b : in.v) b = rng.bernoulli(0.3) ? 1 : 0;
  const auto csr = spikestream::compress::CsrIfmap::encode(in);
  k::RunOptions opt;
  for (auto _ : state) {
    snn::Tensor m(spec.out_h(), spec.out_w(), spec.out_c);
    const auto r = k::run_conv_layer(spec, w, csr, m, opt);
    benchmark::DoNotOptimize(r.stats.cycles);
  }
}
BENCHMARK(BM_ConvKernelFunctional);

void BM_CsrEncode(benchmark::State& state) {
  sc::Rng rng(4);
  snn::SpikeMap in(34, 34, 64);
  for (auto& b : in.v) b = rng.bernoulli(0.15) ? 1 : 0;
  for (auto _ : state) {
    auto c = spikestream::compress::CsrIfmap::encode(in);
    benchmark::DoNotOptimize(c.nnz());
  }
}
BENCHMARK(BM_CsrEncode);

}  // namespace

BENCHMARK_MAIN();
