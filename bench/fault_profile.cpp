// Chaos bench for the fault-injection subsystem: kills and degrades clusters
// under serving load and reports the degradation curve — modeled throughput
// and wall-clock p99 versus clusters lost — plus a mid-load fail-stop run
// that pins the hardening contract end to end:
//
//   * no admitted request is ever lost: admitted reconciles exactly against
//     completed + timed_out + errored at every degradation point;
//   * completed requests' spikes stay bit-identical to the healthy baseline
//     across any fail-stop (plans change, results do not);
//   * the degraded re-plan flips exactly once per fault (replans ==
//     cluster_failures — no oscillation);
//   * modeled throughput on the survivors stays above a proportional floor:
//     sps(lost) >= floor_frac * sps(0) * survivors / clusters — losing 1 of
//     8 clusters may cost more than 1/8 (stripe discretization, re-gathered
//     halos) but never collapses.
//
// Throughput here is *modeled* samples/s (1e9 Hz / mean modeled cycles per
// sample) — host-invariant, so the CI guard (--fault over BENCH_fault.json)
// holds on any runner; wall p99 is reported for context only.
//
//   SPIKESTREAM_FAULT_WAVES  bursts per degradation point (default 6)
//   SPIKESTREAM_FAULT_LANES  wave width = burst size (default 4)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/json_writer.hpp"
#include "common/rng.hpp"
#include "runtime/faults.hpp"
#include "runtime/multistep.hpp"
#include "runtime/server.hpp"
#include "snn/calibrate.hpp"
#include "snn/input_gen.hpp"

namespace {

namespace rt = spikestream::runtime;
namespace k = spikestream::kernels;
namespace snn = spikestream::snn;
namespace bench = spikestream::bench;
namespace sc = spikestream::common;

constexpr int kClusters = 8;
constexpr int kSteps = 2;

int env_int(const char* name, int def) {
  if (const char* e = std::getenv(name)) {
    const int v = std::atoi(e);
    if (v > 0) return v;
  }
  return def;
}

/// 32x32 inputs so every conv layer has enough output rows that stripe
/// discretization stays fair from 8 survivors down to 4 — the proportional
/// floor is about capacity, not rounding.
snn::Network fault_net() {
  snn::Network net = snn::Network::make_tiny(34, 3, 32, 10);
  sc::Rng rng(42);
  net.init_weights(rng);
  const auto calib = snn::make_batch(4, 7, 32, 32, 3);
  const std::vector<double> targets = {0.20, 0.15, 0.30};
  snn::calibrate_thresholds(net, calib, targets);
  return net;
}

rt::BackendConfig backend_cfg() {
  rt::BackendConfig b;
  b.kind = rt::BackendKind::kSharded;
  b.clusters = kClusters;
  // Spatial stripes scale monotonically from 8 survivors down to 4 on this
  // net (output rows divide cleanly), so the degradation curve isolates lost
  // capacity. The hybrid chooser would be a second variable: its per-layer
  // axis flips make 8-cluster plans non-monotonic on a net this small.
  b.partition = k::PartitionStrategy::kIfmapStripe;
  b.shard_threads = false;  // 1-CPU CI runner: modeled timing is the metric
  return b;
}

struct RunResult {
  rt::ServerStats stats;
  std::vector<std::vector<std::uint32_t>> spikes;  ///< per image index
  double cycles_sum = 0;        ///< over completed requests
  std::uint64_t cycles_n = 0;   ///< completed requests
  std::uint64_t lost = 0;       ///< admitted with no terminal accounting
  bool spikes_match = true;     ///< vs the baseline passed in (if any)
};

/// Drive `waves` sequential full-wave bursts (submit `lanes`, wait all)
/// through a server configured with `faults`. With adaptive sizing off each
/// burst is exactly one wave, so fault wave indices line up with bursts.
RunResult run_load(const snn::Network& net, const k::RunOptions& opt,
                   const rt::FaultPlan& faults,
                   const std::vector<snn::Tensor>& images, int waves,
                   const std::vector<std::vector<std::uint32_t>>* baseline) {
  rt::ServerConfig scfg;
  scfg.timesteps = kSteps;
  scfg.adaptive_wave = false;
  scfg.max_queue_delay_us = 200000;  // bursts always form full waves
  scfg.faults = faults;
  rt::InferenceServer server(net, opt, backend_cfg(), scfg);

  RunResult out;
  out.spikes.resize(images.size());
  std::vector<rt::ServeRequest> reqs(images.size());
  for (int w = 0; w < waves; ++w) {
    for (std::size_t i = 0; i < images.size(); ++i) {
      reqs[i].image = &images[i];
      if (!server.submit(reqs[i])) continue;
    }
    for (std::size_t i = 0; i < images.size(); ++i) {
      if (reqs[i].wait()) {
        out.cycles_sum += reqs[i].result.total_cycles;
        ++out.cycles_n;
        out.spikes[i] = reqs[i].result.spike_counts;
        if (baseline != nullptr && (*baseline)[i] != out.spikes[i]) {
          out.spikes_match = false;
        }
      }
    }
  }
  server.stop();
  out.stats = server.stats();
  const std::uint64_t accounted = out.stats.completed + out.stats.timed_out +
                                  out.stats.errored + out.stats.corrupted;
  out.lost = out.stats.admitted > accounted ? out.stats.admitted - accounted
                                            : 0;
  return out;
}

/// Kill `lost` clusters at wave `at`: slot ids renumber densely after each
/// fail-stop, so killing the current highest active slot `lost` times always
/// names a live cluster.
rt::FaultPlan kill_plan(int lost, std::uint64_t at) {
  rt::FaultPlan plan;
  for (int i = 0; i < lost; ++i) {
    plan.kill_cluster(kClusters - 1 - i, at);
  }
  return plan;
}

double modeled_sps(const RunResult& r) {
  if (r.cycles_n == 0 || r.cycles_sum <= 0) return 0.0;
  return 1e9 * static_cast<double>(r.cycles_n) / r.cycles_sum;
}

}  // namespace

int main() {
  const int waves = env_int("SPIKESTREAM_FAULT_WAVES", 6);
  const int lanes = env_int("SPIKESTREAM_FAULT_LANES", 4);

  const snn::Network net = fault_net();
  const auto images =
      snn::make_batch(static_cast<std::size_t>(lanes), 51, 32, 32, 3);
  k::RunOptions opt;
  opt.segment_major_lanes = lanes;

  // --- healthy baseline -----------------------------------------------------
  const RunResult healthy =
      run_load(net, opt, rt::FaultPlan{}, images, waves, nullptr);
  const double healthy_sps = modeled_sps(healthy);
  std::printf("healthy: %d clusters, %.0f modeled samples/s, p99 %.2f ms\n",
              kClusters, healthy_sps,
              healthy.stats.latency_us.percentile(99) * 1e-3);

  // --- degradation curve: throughput and p99 vs clusters lost ---------------
  struct CurveRow {
    int lost = 0;
    RunResult r;
  };
  std::vector<CurveRow> curve;
  for (const int lost : {0, 1, 2, 4}) {
    CurveRow row;
    row.lost = lost;
    row.r = run_load(net, opt, kill_plan(lost, /*at=*/0), images, waves,
                     &healthy.spikes);
    curve.push_back(std::move(row));
    const CurveRow& c = curve.back();
    const double sps = modeled_sps(c.r);
    std::printf(
        "lost %d/%d: %.0f modeled sps (%.2fx healthy, survivors %.2f), "
        "p99 %.2f ms, replans %d, lost requests %llu, spikes %s\n",
        lost, kClusters, sps, healthy_sps > 0 ? sps / healthy_sps : 0.0,
        static_cast<double>(kClusters - lost) / kClusters,
        c.r.stats.latency_us.percentile(99) * 1e-3, c.r.stats.degrade_replans,
        static_cast<unsigned long long>(c.r.lost),
        c.r.spikes_match ? "bit-identical" : "DIVERGED");
  }

  // --- mid-load fail-stop: kill 1 cluster halfway through the run -----------
  const RunResult midrun =
      run_load(net, opt, kill_plan(1, static_cast<std::uint64_t>(waves / 2)),
               images, waves, &healthy.spikes);
  std::printf(
      "mid-load kill at wave %d: admitted %llu completed %llu lost %llu, "
      "replans %d, active %d, spikes %s\n",
      waves / 2, static_cast<unsigned long long>(midrun.stats.admitted),
      static_cast<unsigned long long>(midrun.stats.completed),
      static_cast<unsigned long long>(midrun.lost),
      midrun.stats.degrade_replans, midrun.stats.active_clusters,
      midrun.spikes_match ? "bit-identical" : "DIVERGED");

  // --- BENCH_fault.json -----------------------------------------------------
  if (std::FILE* f = std::fopen("BENCH_fault.json", "w")) {
    bench::JsonWriter w(f, /*compact_depth=*/2);
    w.begin_object();
    w.field("bench", "fault_profile");
    w.field("network", "tiny32");
    w.field("clusters", kClusters);
    w.field("lanes", lanes);
    w.field("waves", waves);
    w.field("timesteps", kSteps);
    w.field("healthy_modeled_sps", healthy_sps, 2);
    w.key("degradation_curve");
    w.begin_array();
    for (const CurveRow& c : curve) {
      const double sps = modeled_sps(c.r);
      w.begin_object();
      w.field("clusters_lost", c.lost);
      w.field("active_clusters", c.r.stats.active_clusters);
      w.field("modeled_sps", sps, 2);
      w.field("vs_healthy", healthy_sps > 0 ? sps / healthy_sps : 0.0, 4);
      w.field("proportional_capacity",
              static_cast<double>(kClusters - c.lost) / kClusters, 4);
      w.field("p99_ms", c.r.stats.latency_us.percentile(99) * 1e-3, 3);
      w.field("admitted", c.r.stats.admitted);
      w.field("completed", c.r.stats.completed);
      w.field("timed_out", c.r.stats.timed_out);
      w.field("errored", c.r.stats.errored);
      w.field("corrupted", c.r.stats.corrupted);
      w.field("lost_requests", c.r.lost);
      w.field("cluster_failures", c.r.stats.cluster_failures);
      w.field("degrade_replans", c.r.stats.degrade_replans);
      w.field("data_faults_injected", c.r.stats.data_faults_injected);
      w.field("integrity_mismatches", c.r.stats.integrity_mismatches);
      w.field("spikes_match_healthy", c.r.spikes_match);
      w.end_object();
    }
    w.end_array();
    w.key("midrun_kill");
    w.begin_object();
    w.field("kill_at_wave", waves / 2);
    w.field("admitted", midrun.stats.admitted);
    w.field("completed", midrun.stats.completed);
    w.field("timed_out", midrun.stats.timed_out);
    w.field("errored", midrun.stats.errored);
    w.field("corrupted", midrun.stats.corrupted);
    w.field("lost_requests", midrun.lost);
    w.field("cluster_failures", midrun.stats.cluster_failures);
    w.field("degrade_replans", midrun.stats.degrade_replans);
    w.field("active_clusters", midrun.stats.active_clusters);
    w.field("data_faults_injected", midrun.stats.data_faults_injected);
    w.field("integrity_mismatches", midrun.stats.integrity_mismatches);
    w.field("spikes_match_healthy", midrun.spikes_match);
    w.end_object();
    w.end_object();
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_fault.json\n");
  }
  return 0;
}
