// Ablation: the value of tensor compression (TC, Section III-A) inside the
// streamed kernel. The dense variant walks every synapse with affine SSR
// streams; the compressed variant streams only the spiking ones through the
// indirect SSR, paying stream-setup floors and index traffic. The crossover
// vs. firing rate — and how it moves with channel depth — is the event-driven
// computing argument in one table.
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "compress/csr_ifmap.hpp"
#include "kernels/layer_kernels.hpp"

namespace sc = spikestream::common;
namespace k = spikestream::kernels;
namespace snn = spikestream::snn;

namespace {

double layer_cycles(int in_c, double rate, k::Variant v, std::uint64_t seed) {
  snn::LayerSpec spec;
  spec.kind = snn::LayerKind::kConv;
  spec.name = "conv";
  spec.in_h = spec.in_w = 14;
  spec.in_c = in_c;
  spec.k = 3;
  spec.out_c = 64;
  spec.lif.v_th = 0.8f;
  spec.lif.v_rst = 0.8f;
  sc::Rng rng(seed);
  snn::LayerWeights w;
  w.k = 3;
  w.in_c = in_c;
  w.out_c = 64;
  w.v.resize(9u * static_cast<std::size_t>(in_c) * 64);
  for (auto& x : w.v) x = static_cast<float>(rng.normal(0.0, 0.05));
  snn::SpikeMap in(14, 14, in_c);
  for (int y = 1; y < 13; ++y) {
    for (int x = 1; x < 13; ++x) {
      for (int c = 0; c < in_c; ++c) in.at(y, x, c) = rng.bernoulli(rate);
    }
  }
  const auto csr = spikestream::compress::CsrIfmap::encode(in);
  k::RunOptions opt;
  opt.variant = v;
  snn::Tensor m(spec.out_h(), spec.out_w(), spec.out_c);
  return k::run_conv_layer(spec, w, csr, m, opt).stats.compute_cycles;
}

}  // namespace

int main() {
  for (int in_c : {16, 64, 256}) {
    sc::Table t("Ablation — compressed (indirect SSR) vs dense (affine SSR) "
                "conv, C_in=" + std::to_string(in_c) + ", FP16, compute cycles");
    t.set_header({"firing rate", "compressed [kcyc]", "dense [kcyc]",
                  "compressed gain"});
    for (double rate : {0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8}) {
      const double cs = layer_cycles(in_c, rate, k::Variant::kSpikeStream, 7);
      const double dn = layer_cycles(in_c, rate, k::Variant::kDenseNoTc, 7);
      t.add_row({sc::Table::pct(rate, 0), sc::Table::num(cs / 1e3, 1),
                 sc::Table::num(dn / 1e3, 1),
                 sc::Table::num(dn / cs, 2) + "x"});
    }
    t.print();
    std::printf("\n");
  }
  std::printf("Dense cost is rate-independent; compression wins whenever the "
              "stream-setup\nfloor (ss_setup per SpVA) stays below the dense "
              "fan-in stream — i.e. almost\nalways for deep layers, and only "
              "above ~dense-equivalent rates for thin ones.\n");
  return 0;
}
