// Backend comparison micro-benchmark: simulated cycles and host wall-clock
// for the Analytical vs Sharded backends at 1/2/4/8 clusters, plus the
// batch-inference speedup of BatchRunner (weights quantized once, samples on
// worker threads) over the serial one-engine-per-sample path.
//
//   $ ./backend_compare            # batch from SPIKESTREAM_BATCH (default 8)
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "runtime/batch.hpp"

namespace bench = spikestream::bench;
namespace k = spikestream::kernels;
namespace rt = spikestream::runtime;
namespace snn = spikestream::snn;
namespace sc = spikestream::common;

namespace {

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  const int batch = bench::batch_size_from_env(8);
  std::printf("building calibrated S-VGG11...\n");
  const snn::Network net = bench::make_calibrated_svgg11();
  const auto images = snn::make_batch(static_cast<std::size_t>(batch), 77);

  k::RunOptions opt;
  opt.variant = k::Variant::kSpikeStream;
  opt.fmt = sc::FpFormat::FP16;

  // --- per-layer latency: analytical vs sharded at 1/2/4/8 clusters --------
  sc::Table t("S-VGG11 single frame: simulated latency per backend");
  t.set_header({"backend", "clusters", "kcycles/frame", "speedup"});
  const auto img = images.front();
  double base_cycles = 0;
  {
    const rt::InferenceEngine eng(net, opt);
    snn::NetworkState st = eng.make_state();
    base_cycles = eng.run(img, st).total_cycles;
    t.add_row({"analytical", "1", sc::Table::num(base_cycles / 1e3, 1), "1.00x"});
  }
  for (int clusters : {1, 2, 4, 8}) {
    rt::BackendConfig cfg;
    cfg.kind = rt::BackendKind::kSharded;
    cfg.clusters = clusters;
    const rt::InferenceEngine eng(net, opt, cfg);
    snn::NetworkState st = eng.make_state();
    const double cycles = eng.run(img, st).total_cycles;
    t.add_row({"sharded", std::to_string(clusters),
               sc::Table::num(cycles / 1e3, 1),
               sc::Table::num(base_cycles / cycles, 2) + "x"});
  }
  t.print();

  // --- batch throughput: serial engines vs BatchRunner ----------------------
  // Serial path: the pre-refactor usage — one engine per sample, so the
  // network copy + weight quantization is paid per sample and samples run
  // back to back on one thread.
  std::vector<rt::MultiStepResult> serial_res(images.size());
  const double serial_ms = wall_ms([&] {
    for (std::size_t i = 0; i < images.size(); ++i) {
      rt::InferenceEngine eng(net, opt);
      serial_res[i] = rt::run_timesteps(eng, images[i], /*timesteps=*/2);
    }
  });

  // Batch path: quantize once, run samples concurrently on 4 workers.
  std::vector<rt::MultiStepResult> batch_res;
  double batch_ms = 0;
  {
    const rt::BatchRunner runner(net, opt, {}, {}, /*workers=*/4);
    batch_ms = wall_ms([&] { batch_res = runner.run(images, /*timesteps=*/2); });
  }

  bool identical = true;
  for (std::size_t i = 0; i < images.size(); ++i) {
    identical = identical && serial_res[i].spike_counts == batch_res[i].spike_counts;
  }

  std::printf("\nbatch-%d inference (2 timesteps, host wall-clock):\n", batch);
  std::printf("  serial engines     : %8.1f ms  (quantize per sample, 1 thread)\n",
              serial_ms);
  std::printf("  BatchRunner x4     : %8.1f ms  (quantize once, 4 workers)\n",
              batch_ms);
  std::printf("  wall-clock speedup : %.2fx   outputs identical: %s\n",
              serial_ms / batch_ms, identical ? "yes" : "NO (BUG)");
  return 0;
}
