// Backend comparison micro-benchmark: simulated cycles and host wall-clock
// for the Analytical vs Sharded backends at 1/2/4/8 clusters — under the
// output-channel-only partition, the cost-model-driven hybrid partition, and
// the hybrid partition with the inter-cluster NoC bandwidth ceiling enabled
// (the honest multi-cluster number) — plus a per-layer cluster-utilization
// table at 8 clusters and the batch-inference speedup of BatchRunner over
// the serial one-engine-per-sample path.
//
//   $ ./backend_compare            # batch from SPIKESTREAM_BATCH (default 8)
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "arch/dram/dram.hpp"
#include "bench/bench_common.hpp"
#include "kernels/partition.hpp"
#include "runtime/backend_sharded.hpp"
#include "runtime/batch.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/stage_pipeline.hpp"

namespace bench = spikestream::bench;
namespace k = spikestream::kernels;
namespace rt = spikestream::runtime;
namespace snn = spikestream::snn;
namespace sc = spikestream::common;

namespace {

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

rt::BackendConfig sharded_cfg(int clusters, k::PartitionStrategy strategy,
                              bool noc_ceiling = false) {
  rt::BackendConfig cfg;
  cfg.kind = rt::BackendKind::kSharded;
  cfg.clusters = clusters;
  cfg.partition = strategy;
  cfg.noc.model_contention = noc_ceiling;
  return cfg;
}

/// Mean cluster-level utilization of one layer: busy core time over the
/// compute window across every core of every (planned) cluster. Idle
/// clusters (plans with fewer shards than clusters) pull it down.
double layer_utilization(const rt::LayerMetrics& m, int clusters, int cores) {
  if (m.stats.compute_cycles <= 0) return 0.0;
  double busy = 0;
  for (double c : m.stats.core_cycles) busy += c;
  return busy / (m.stats.compute_cycles * clusters * cores);
}

}  // namespace

int main() {
  const int batch = bench::batch_size_from_env(8);
  std::printf("building calibrated S-VGG11...\n");
  const snn::Network net = bench::make_calibrated_svgg11();
  const auto images = snn::make_batch(static_cast<std::size_t>(batch), 77);

  k::RunOptions opt;
  opt.variant = k::Variant::kSpikeStream;
  opt.fmt = sc::FpFormat::FP16;

  // --- per-layer latency: analytical vs sharded partitions -----------------
  sc::Table t("S-VGG11 single frame: simulated latency per backend");
  t.set_header({"backend", "partition", "clusters", "kcycles/frame",
                "speedup"});
  const auto img = images.front();
  double base_cycles = 0;
  {
    const rt::InferenceEngine eng(net, opt);
    snn::NetworkState st = eng.make_state();
    base_cycles = eng.run(img, st).total_cycles;
    t.add_row({"analytical", "-", "1", sc::Table::num(base_cycles / 1e3, 1),
               "1.00x"});
  }
  struct Variant {
    k::PartitionStrategy strategy;
    bool noc;
    const char* label;
  };
  const Variant variants[] = {
      {k::PartitionStrategy::kOutputChannel, false, "out-channel"},
      {k::PartitionStrategy::kHybrid, false, "hybrid"},
      {k::PartitionStrategy::kHybrid, true, "hybrid+noc"},
  };
  for (const auto& v : variants) {
    for (int clusters : {1, 2, 4, 8}) {
      const rt::InferenceEngine eng(net, opt,
                                    sharded_cfg(clusters, v.strategy, v.noc));
      snn::NetworkState st = eng.make_state();
      const double cycles = eng.run(img, st).total_cycles;
      t.add_row({"sharded", v.label, std::to_string(clusters),
                 sc::Table::num(cycles / 1e3, 1),
                 sc::Table::num(base_cycles / cycles, 2) + "x"});
    }
  }
  t.print();

  // --- per-layer plans and cluster utilization at 8 clusters ----------------
  // Measured at the third timestep: membranes have charged up to the
  // steady-state occupancy the partition choice matters for (the very first
  // timestep is nearly empty on the late layers).
  {
    const int clusters = 8;
    const rt::InferenceEngine oc(
        net, opt, sharded_cfg(clusters, k::PartitionStrategy::kOutputChannel));
    const rt::InferenceEngine hy(
        net, opt, sharded_cfg(clusters, k::PartitionStrategy::kHybrid));
    snn::NetworkState so = oc.make_state();
    snn::NetworkState sh = hy.make_state();
    rt::InferenceResult ro, rh;
    for (int t = 0; t < 3; ++t) {
      oc.run(img, so, ro);
      hy.run(img, sh, rh);
    }
    const auto* be = dynamic_cast<const rt::ShardedBackend*>(&hy.backend());

    sc::Table u("per-layer cluster utilization at 8 clusters, 3rd timestep "
                "(out-channel vs hybrid plan)");
    u.set_header({"layer", "hybrid axis", "shards", "kcyc oc", "kcyc hybrid",
                  "util oc", "util hybrid", "noc KB"});
    for (std::size_t l = 0; l < net.num_layers(); ++l) {
      const k::LayerPlan& plan = be->plan_for(net.layer(l));
      u.add_row({net.layer(l).name, k::shard_axis_name(plan.axis),
                 std::to_string(plan.n()),
                 sc::Table::num(ro.layers[l].stats.cycles / 1e3, 2),
                 sc::Table::num(rh.layers[l].stats.cycles / 1e3, 2),
                 sc::Table::num(layer_utilization(ro.layers[l], clusters,
                                                  opt.cores), 3),
                 sc::Table::num(layer_utilization(rh.layers[l], clusters,
                                                  opt.cores), 3),
                 sc::Table::num(rh.layers[l].stats.noc_bytes / 1024.0, 1)});
    }
    u.print();
  }

  // --- batch-level DMA: weight-tile reuse + segment-major FC schedule -------
  // Three regimes per layer: cold (no reuse), warm (PR4 pinned weight tiles
  // — conv layers only; segmented FC bands cannot pin), and segment-major
  // (fan-in weight bands stream once per batch, partial-sum spill/fill
  // itemized). The breakdown makes both the fc7 win and its spill cost
  // visible, per layer and for the whole batch.
  {
    k::RunOptions reuse_opt = opt;
    reuse_opt.batch_weight_reuse = true;
    k::RunOptions sm_opt = reuse_opt;
    sm_opt.segment_major_lanes = batch;
    // Banked-DRAM column: same segment-major schedule priced by the
    // row-buffer model (spikes bit-identical; the row activity is what the
    // extra columns itemize).
    k::RunOptions smb_opt = sm_opt;
    smb_opt.cost.dram = spikestream::arch::DramConfig::banked();
    const rt::PipelinedBatchRunner cold(net, opt, {}, {}, /*depth=*/1);
    const rt::PipelinedBatchRunner warm(net, reuse_opt, {}, {}, /*depth=*/1);
    const rt::PipelinedBatchRunner segm(net, sm_opt, {}, {},
                                        /*depth=*/batch);
    const rt::PipelinedBatchRunner segb(net, smb_opt, {}, {},
                                        /*depth=*/batch);
    // Steady state: lanes keep their weight-residency history across run()
    // calls, so the second batch is the regime a serving deployment sits in
    // (the first batch pays each lane's cold start — see host_profile's
    // cold/steady split).
    warm.run_single_step(images);
    segm.run_single_step(images);
    segb.run_single_step(images);
    const auto cold_res = cold.run_single_step(images);
    const auto warm_res = warm.run_single_step(images);
    const auto segm_res = segm.run_single_step(images);
    const auto segb_res = segb.run_single_step(images);

    sc::Table w("batch-level DMA per sample (batch " +
                std::to_string(batch) +
                "): cold vs warm tile pinning vs segment-major FC "
                "(weight / spill / saved itemized; row hit% from the "
                "banked-DRAM pricing)");
    w.set_header({"layer", "cold KB", "warm KB", "segmaj KB", "spill KB",
                  "saved KB", "saved %", "row hit%", "row miss"});
    double batch_cold = 0, batch_warm = 0, batch_sm = 0, batch_saved = 0,
           batch_spill = 0;
    double cyc_warm = 0, cyc_sm = 0;
    const std::size_t last = images.size() - 1;
    for (std::size_t l = 0; l < net.num_layers(); ++l) {
      const auto& cs = cold_res[last].layers[l].stats;
      const auto& ws = warm_res[last].layers[l].stats;
      const auto& ss = segm_res[last].layers[l].stats;
      const auto& bs = segb_res[last].layers[l].stats;
      const double beats = bs.dma_row_hits + bs.dma_row_misses;
      w.add_row({net.layer(l).name, sc::Table::num(cs.dma_bytes / 1024.0, 1),
                 sc::Table::num(ws.dma_bytes / 1024.0, 1),
                 sc::Table::num(ss.dma_bytes / 1024.0, 1),
                 sc::Table::num(ss.dma_bytes_spill / 1024.0, 1),
                 sc::Table::num(ss.dma_saved_bytes / 1024.0, 1),
                 sc::Table::num(cs.dma_bytes > 0 ? 100.0 * ss.dma_saved_bytes /
                                                       cs.dma_bytes
                                                 : 0.0,
                                1),
                 sc::Table::num(beats > 0 ? 100.0 * bs.dma_row_hits / beats
                                          : 0.0,
                                1),
                 sc::Table::num(bs.dma_row_misses, 0)});
    }
    for (std::size_t i = 0; i < images.size(); ++i) {
      for (std::size_t l = 0; l < net.num_layers(); ++l) {
        batch_cold += cold_res[i].layers[l].stats.dma_bytes;
        batch_warm += warm_res[i].layers[l].stats.dma_bytes;
        batch_sm += segm_res[i].layers[l].stats.dma_bytes;
        batch_saved += segm_res[i].layers[l].stats.dma_saved_bytes;
        batch_spill += segm_res[i].layers[l].stats.dma_bytes_spill;
      }
      cyc_warm += warm_res[i].total_cycles;
      cyc_sm += segm_res[i].total_cycles;
    }
    w.print();
    std::printf(
        "  whole batch: %.2f MB cold, %.2f MB warm (PR4 pinning), %.2f MB "
        "segment-major (saved %.2f MB, spill %.3f MB)\n",
        batch_cold / 1e6, batch_warm / 1e6, batch_sm / 1e6, batch_saved / 1e6,
        batch_spill / 1e6);
    std::printf(
        "  segment-major off -> on: whole-batch DMA %.1f%% lower than warm, "
        "modeled cycles %.2fx\n",
        batch_warm > 0 ? 100.0 * (batch_warm - batch_sm) / batch_warm : 0.0,
        cyc_sm > 0 ? cyc_warm / cyc_sm : 0.0);
    bool same = true;
    for (std::size_t i = 0; i < images.size(); ++i) {
      same = same && cold_res[i].final_output.v == warm_res[i].final_output.v &&
             cold_res[i].final_output.v == segm_res[i].final_output.v &&
             cold_res[i].final_output.v == segb_res[i].final_output.v;
    }
    std::printf(
        "  spike outputs identical with reuse + segment-major + banked: %s\n",
        same ? "yes" : "NO (BUG)");
  }

  // --- banked DRAM on the wide-FC spill vehicle ----------------------------
  // S-VGG11 at this batch spills nothing, so the double-buffered spill/fill
  // is exercised on the FC-heavy net whose wide layer parks batch lanes
  // (snn::Network::make_wide_fc). Single-buffered compute/DMA overlap
  // exposes the memory timeline 1:1 in the cycle column; the three regimes
  // isolate what the row model adds (flat -> serial) and what the bounce
  // buffer hides again (serial -> ddb).
  {
    const int wb = std::max(batch, 32);
    const snn::Network wnet = bench::make_calibrated_wide_fc();
    const auto wimages = snn::make_batch(static_cast<std::size_t>(wb), 78);
    k::RunOptions wopt = opt;
    wopt.batch_weight_reuse = true;
    wopt.segment_major_lanes = wb;
    wopt.double_buffer = false;
    k::RunOptions wserial = wopt;
    wserial.cost.dram = spikestream::arch::DramConfig::banked();
    wserial.cost.dram.spill_double_buffer = false;
    k::RunOptions wddb = wserial;
    wddb.cost.dram.spill_double_buffer = true;

    const rt::BatchRunner rflat(wnet, wopt, {}, {}, /*workers=*/1);
    const rt::BatchRunner rser(wnet, wserial, {}, {}, /*workers=*/1);
    const rt::BatchRunner rddb(wnet, wddb, {}, {}, /*workers=*/1);
    const auto f = rflat.run_single_step(wimages);
    const auto s = rser.run_single_step(wimages);
    const auto d = rddb.run_single_step(wimages);

    sc::Table b("wide-FC batch " + std::to_string(wb) +
                ", banked DRAM: per-layer cycles flat vs serial-spill vs "
                "double-buffered spill/fill");
    b.set_header({"layer", "kcyc flat", "kcyc serial", "kcyc ddb",
                  "spill KB", "hidden kcyc", "row hit%", "row miss"});
    double tot_f = 0, tot_s = 0, tot_d = 0, tot_hidden = 0;
    for (std::size_t l = 0; l < wnet.num_layers(); ++l) {
      double cf = 0, cs = 0, cd = 0, spill = 0, hidden = 0, hits = 0,
             misses = 0;
      for (std::size_t i = 0; i < wimages.size(); ++i) {
        cf += f[i].layers[l].stats.cycles;
        cs += s[i].layers[l].stats.cycles;
        cd += d[i].layers[l].stats.cycles;
        spill += d[i].layers[l].stats.dma_bytes_spill;
        hidden += d[i].layers[l].stats.dma_cycles_hidden;
        hits += d[i].layers[l].stats.dma_row_hits;
        misses += d[i].layers[l].stats.dma_row_misses;
      }
      const double n = static_cast<double>(wb);
      const double beats = hits + misses;
      b.add_row({wnet.layer(l).name, sc::Table::num(cf / n / 1e3, 2),
                 sc::Table::num(cs / n / 1e3, 2),
                 sc::Table::num(cd / n / 1e3, 2),
                 sc::Table::num(spill / n / 1024.0, 1),
                 sc::Table::num(hidden / n / 1e3, 2),
                 sc::Table::num(beats > 0 ? 100.0 * hits / beats : 0.0, 1),
                 sc::Table::num(misses / n, 0)});
      tot_f += cf;
      tot_s += cs;
      tot_d += cd;
      tot_hidden += hidden;
    }
    b.print();
    std::printf(
        "  whole batch: %.1f kcyc flat, %.1f kcyc serial-spill, %.1f kcyc "
        "ddb (%.2f kcyc hidden; ddb %.2f%% under serial)\n",
        tot_f / 1e3, tot_s / 1e3, tot_d / 1e3, tot_hidden / 1e3,
        tot_s > 0 ? 100.0 * (tot_s - tot_d) / tot_s : 0.0);
    bool wsame = true;
    for (std::size_t i = 0; i < wimages.size(); ++i) {
      wsame = wsame && f[i].final_output.v == s[i].final_output.v &&
              f[i].final_output.v == d[i].final_output.v;
    }
    std::printf("  spike outputs identical across DRAM modes: %s\n",
                wsame ? "yes" : "NO (BUG)");
  }

  // --- occupancy-adaptive re-planning at 8 clusters -------------------------
  // The static hybrid plan freezes each layer's shard axis at an assumed
  // density; the adaptive backend starts from the cold-start density (empty
  // membranes), then re-picks the axis from the measured occupancy EMA after
  // warmup (fc8 flips output-channel -> fan-in exactly once).
  {
    rt::BackendConfig stat = sharded_cfg(8, k::PartitionStrategy::kHybrid);
    rt::BackendConfig adap = stat;
    adap.replan.enabled = true;
    const rt::InferenceEngine es(net, opt, stat);
    const rt::InferenceEngine ea(net, opt, adap);
    snn::NetworkState ss = es.make_state();
    snn::NetworkState sa = ea.make_state();
    rt::InferenceResult rs, ra;
    const int steps = 5;
    std::vector<double> fc_static(net.num_layers(), 0.0);
    std::vector<double> fc_adapt(net.num_layers(), 0.0);
    double tot_s = 0, tot_a = 0;
    for (int t = 0; t < steps; ++t) {
      es.run(img, ss, rs);
      ea.run(img, sa, ra);
      for (std::size_t l = 0; l < net.num_layers(); ++l) {
        fc_static[l] += rs.layers[l].stats.cycles;
        fc_adapt[l] += ra.layers[l].stats.cycles;
      }
      tot_s += rs.total_cycles;
      tot_a += ra.total_cycles;
    }
    const auto* be = dynamic_cast<const rt::ShardedBackend*>(&ea.backend());
    sc::Table r("occupancy-adaptive re-planning at 8 clusters (" +
                std::to_string(steps) + " timesteps, cold start)");
    r.set_header({"layer", "static kcyc", "adaptive kcyc", "axis", "flips",
                  "density ema"});
    for (std::size_t l = 0; l < net.num_layers(); ++l) {
      r.add_row({net.layer(l).name, sc::Table::num(fc_static[l] / 1e3, 2),
                 sc::Table::num(fc_adapt[l] / 1e3, 2),
                 k::shard_axis_name(be->active_axis(net.layer(l))),
                 std::to_string(be->replan_flips(net.layer(l))),
                 sc::Table::num(be->occupancy_ema(net.layer(l)), 3)});
    }
    r.print();
    std::printf("  network total: static %.1f kcyc, adaptive %.1f kcyc\n",
                tot_s / 1e3, tot_a / 1e3);
  }

  // --- stage-parallel cluster pipeline on the deep tower --------------------
  // The modeled counterpart of the host-side pipelined executor: contiguous
  // layer ranges on disjoint cluster groups, coupled by finite spike FIFOs.
  // Per stage: busy window split into service / FIFO stall / idle, peak
  // FIFO occupancy and the boundary payload (all modeled cycles, not host
  // time). S-VGG11 keeps choosing data-parallel on the same cost query, so
  // the vehicle here is the deep narrow tower.
  {
    const snn::Network tower = bench::make_calibrated_deep_tower();
    const auto tower_imgs = snn::make_batch(8, 99, 6, 6, 3);
    rt::BackendConfig cfg = sharded_cfg(8, k::PartitionStrategy::kHybrid);
    cfg.shard_threads = false;
    cfg.noc.topology = spikestream::arch::NocTopology::kRingQuadrant;
    cfg.noc.model_contention = true;
    cfg.pipeline.enabled = true;

    const rt::InferenceEngine eng(tower, opt, cfg);
    snn::NetworkState st = eng.make_state();
    std::vector<rt::InferenceResult> tbatch;
    for (const auto& img : tower_imgs) tbatch.push_back(eng.run(img, st));

    cfg.pipeline.enabled = false;
    const rt::InferenceEngine dp_eng(tower, opt, cfg);
    snn::NetworkState dp_st = dp_eng.make_state();
    double dp_total = 0;
    for (const auto& img : tower_imgs) {
      dp_total += dp_eng.run(img, dp_st).total_cycles;
    }

    const auto* be = dynamic_cast<const rt::ShardedBackend*>(&eng.backend());
    if (be != nullptr && be->stage_parallel_active()) {
      const rt::StageTimeline tl = rt::simulate_stage_pipeline(
          be->stage_plan(), tower, tbatch, be->pipeline_config());
      sc::Table s("deep tower, stage pipeline at 8 clusters (" +
                  std::string(k::exec_mode_name(be->stage_plan().mode)) +
                  ", batch 8, kcycles)");
      s.set_header({"stage", "layers", "clusters", "service", "fifo stall",
                    "idle", "peak fifo", "handoff B"});
      for (std::size_t i = 0; i < tl.stages.size(); ++i) {
        const auto& plan_st = be->stage_plan().stages[i];
        const auto& tr = tl.stages[i];
        s.add_row({std::to_string(i),
                   std::to_string(plan_st.layer_lo) + ".." +
                       std::to_string(plan_st.layer_hi - 1),
                   std::to_string(plan_st.cluster_lo) + ".." +
                       std::to_string(plan_st.cluster_hi - 1),
                   sc::Table::num(tr.service_cycles / 1e3, 1),
                   sc::Table::num(tr.stall_cycles / 1e3, 1),
                   sc::Table::num(tr.idle_cycles / 1e3, 1),
                   sc::Table::num(tr.peak_fifo_spikes, 0),
                   sc::Table::num(tr.handoff_bytes, 0)});
      }
      s.print();
      const double n = static_cast<double>(tbatch.size());
      std::printf(
          "  steady state %.0f cyc/sample (fill %.0f), data-parallel %.0f "
          "cyc/sample -> %.2fx\n",
          tl.steady_cycles_per_sample, tl.fill_cycles, dp_total / n,
          (dp_total / n) / tl.steady_cycles_per_sample);
    }
  }

  // --- pipelined batch executor: host wall-clock vs BatchRunner -------------
  {
    std::vector<rt::MultiStepResult> batch_res, pipe_res;
    const rt::BatchRunner runner(net, opt, {}, {}, /*workers=*/4);
    const double batch_ms2 =
        wall_ms([&] { batch_res = runner.run(images, /*timesteps=*/2); });
    const rt::PipelinedBatchRunner pipe(net, opt, {}, {}, /*depth=*/4);
    const double pipe_ms =
        wall_ms([&] { pipe_res = pipe.run(images, /*timesteps=*/2); });
    bool same = true;
    for (std::size_t i = 0; i < images.size(); ++i) {
      same = same && batch_res[i].spike_counts == pipe_res[i].spike_counts;
    }
    std::printf(
        "\npipelined executor (depth 4) vs BatchRunner x4, batch-%d x 2 "
        "steps:\n  BatchRunner %.1f ms, pipelined %.1f ms, outputs "
        "identical: %s\n",
        batch, batch_ms2, pipe_ms, same ? "yes" : "NO (BUG)");
  }

  // --- batch throughput: serial engines vs BatchRunner ----------------------
  // Serial path: the pre-refactor usage — one engine per sample, so the
  // network copy + weight quantization is paid per sample and samples run
  // back to back on one thread.
  std::vector<rt::MultiStepResult> serial_res(images.size());
  const double serial_ms = wall_ms([&] {
    for (std::size_t i = 0; i < images.size(); ++i) {
      rt::InferenceEngine eng(net, opt);
      serial_res[i] = rt::run_timesteps(eng, images[i], /*timesteps=*/2);
    }
  });

  // Batch path: quantize once, run samples concurrently on the worker pool.
  std::vector<rt::MultiStepResult> batch_res;
  double batch_ms = 0;
  {
    const rt::BatchRunner runner(net, opt, {}, {}, /*workers=*/4);
    batch_ms = wall_ms([&] { batch_res = runner.run(images, /*timesteps=*/2); });
  }

  bool identical = true;
  for (std::size_t i = 0; i < images.size(); ++i) {
    identical = identical && serial_res[i].spike_counts == batch_res[i].spike_counts;
  }

  std::printf("\nbatch-%d inference (2 timesteps, host wall-clock):\n", batch);
  std::printf("  serial engines     : %8.1f ms  (quantize per sample, 1 thread)\n",
              serial_ms);
  std::printf("  BatchRunner x4     : %8.1f ms  (quantize once, pooled workers)\n",
              batch_ms);
  std::printf("  wall-clock speedup : %.2fx   outputs identical: %s\n",
              serial_ms / batch_ms, identical ? "yes" : "NO (BUG)");
  return 0;
}
