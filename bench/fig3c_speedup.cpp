// Reproduces Fig. 3c: per-layer speedup of SpikeStream FP16 over the FP16
// baseline, and of SpikeStream FP8 over SpikeStream FP16; plus the end-to-end
// summary speedups quoted in the abstract / Section IV-A.
//
// Second section: the stage-parallel cluster pipeline. For each (network,
// cluster count) the planner's three execution shapes run on identical
// batches — pure data-parallel, forced stage-parallel, forced hybrid, and
// planner-chosen (auto) — and the table reports modeled steady-state cycles
// per sample with the FIFO stall and NoC contention shares itemized. The
// rows persist to BENCH_fig3c.json so CI can require the planner-chosen
// pipeline to keep beating data-parallel on the deep tower
// (scripts/check_bench_regression.py --pipeline-speedup-floor).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench/json_writer.hpp"
#include "runtime/backend_sharded.hpp"
#include "runtime/stage_pipeline.hpp"

namespace sb = spikestream::bench;
namespace sc = spikestream::common;
namespace k = spikestream::kernels;
namespace rt = spikestream::runtime;
namespace snn = spikestream::snn;
namespace arch = spikestream::arch;

namespace {

struct PipelineRow {
  std::string network;
  int clusters = 0;
  std::string requested;  ///< mode asked of the planner ("off" = pipeline off)
  std::string chosen;     ///< concrete mode of the resulting plan
  int stages = 1;
  double steady_cycles_per_sample = 0;  ///< measured initiation interval
  double cycles_per_sample = 0;         ///< makespan / batch (incl. fill)
  double fifo_stall_cycles = 0;         ///< whole-batch FIFO backpressure
  double noc_contention_cycles = 0;     ///< whole-batch fabric serialization
  double speedup_vs_dp = 1.0;           ///< steady-state, against the DP row
};

PipelineRow run_pipeline_row(const std::string& network,
                             const snn::Network& net,
                             const std::vector<snn::Tensor>& images,
                             int clusters, k::ExecMode mode, bool enabled) {
  rt::BackendConfig cfg;
  cfg.kind = rt::BackendKind::kSharded;
  cfg.clusters = clusters;
  cfg.shard_threads = false;
  cfg.partition = k::PartitionStrategy::kHybrid;
  cfg.noc.topology = arch::NocTopology::kRingQuadrant;
  cfg.noc.model_contention = true;
  cfg.pipeline.enabled = enabled;
  cfg.pipeline.mode = mode;

  const k::RunOptions opt;
  const rt::InferenceEngine eng(net, opt, cfg);
  snn::NetworkState state = eng.make_state();
  std::vector<rt::InferenceResult> batch;
  for (const auto& img : images) batch.push_back(eng.run(img, state));

  PipelineRow row;
  row.network = network;
  row.clusters = clusters;
  row.requested = enabled ? k::exec_mode_name(mode) : "off";
  const auto& sb_ = static_cast<const rt::ShardedBackend&>(eng.backend());
  row.chosen = enabled ? k::exec_mode_name(sb_.stage_plan().mode)
                       : "data-parallel";
  row.stages = enabled ? sb_.stage_plan().num_stages() : 1;

  double total = 0;
  for (const auto& r : batch) {
    total += r.total_cycles;
    for (const auto& lm : r.layers) {
      row.noc_contention_cycles += lm.stats.noc_contention_cycles;
    }
  }
  const double n = static_cast<double>(batch.size());
  if (enabled && sb_.stage_parallel_active()) {
    const rt::StageTimeline tl = rt::simulate_stage_pipeline(
        sb_.stage_plan(), net, batch, sb_.pipeline_config());
    row.steady_cycles_per_sample = tl.steady_cycles_per_sample;
    row.cycles_per_sample = tl.cycles_per_sample(batch.size());
    row.fifo_stall_cycles = tl.total_stall_cycles;
  } else {
    // One stage: samples serialize, steady state == the mean sample.
    row.steady_cycles_per_sample = total / n;
    row.cycles_per_sample = total / n;
  }
  return row;
}

}  // namespace

int main() {
  const int batch = sb::batch_size_from_env();
  const auto net = sb::make_calibrated_svgg11();
  const auto images =
      spikestream::snn::make_batch(static_cast<std::size_t>(batch), 2024);

  k::RunOptions base, ss16, ss8;
  base.variant = k::Variant::kBaseline;
  base.fmt = sc::FpFormat::FP16;
  ss16.variant = k::Variant::kSpikeStream;
  ss16.fmt = sc::FpFormat::FP16;
  ss8.variant = k::Variant::kSpikeStream;
  ss8.fmt = sc::FpFormat::FP8;
  const sb::BatchRun rb = sb::run_batch(net, base, images);
  const sb::BatchRun r16 = sb::run_batch(net, ss16, images);
  const sb::BatchRun r8 = sb::run_batch(net, ss8, images);

  sc::Table t("Fig. 3c — per-layer speedups, batch=" + std::to_string(batch));
  t.set_header({"layer", "runtime base FP16 [ms]", "SS FP16 over base FP16",
                "SS FP8 over SS FP16"});
  double s16_acc = 0, s8_acc = 0;
  for (std::size_t l = 0; l < rb.layers.size(); ++l) {
    const double s16 = rb.layers[l].cycles.mean() / r16.layers[l].cycles.mean();
    const double s8 = r16.layers[l].cycles.mean() / r8.layers[l].cycles.mean();
    s16_acc += s16;
    s8_acc += s8;
    t.add_row({rb.layers[l].name,
               sc::Table::num(rb.layers[l].cycles.mean() / 1e6, 3),
               sc::Table::num(s16, 2) + "x", sc::Table::num(s8, 2) + "x"});
  }
  t.print();

  const auto n = static_cast<double>(rb.layers.size());
  const double e2e_ss16 = rb.total_cycles.mean() / r16.total_cycles.mean();
  const double e2e_ss8 = rb.total_cycles.mean() / r8.total_cycles.mean();
  std::printf("\nlayer-average speedup SS FP16 / base FP16: %.2fx (paper: 5.62x)\n",
              s16_acc / n);
  std::printf("layer-average speedup SS FP8 / SS FP16:    %.2fx (paper: 1.71x)\n",
              s8_acc / n);
  std::printf("end-to-end speedup SS FP16 / base FP16:    %.2fx (paper: 4.39x)\n",
              e2e_ss16);
  std::printf("end-to-end speedup SS FP8  / base FP16:    %.2fx (paper: 7.29x)\n",
              e2e_ss8);
  std::printf("end-to-end inference: base %.2f ms, SS FP16 %.2f ms, SS FP8 %.2f ms\n",
              rb.total_cycles.mean() / 1e6, r16.total_cycles.mean() / 1e6,
              r8.total_cycles.mean() / 1e6);

  // -------------------------------------------------------------------------
  // Stage-parallel cluster pipeline: DP vs stage vs hybrid vs planner-chosen.
  // -------------------------------------------------------------------------
  const int pipe_batch = 8;
  const snn::Network tower = sb::make_calibrated_deep_tower();
  const auto tower_imgs =
      snn::make_batch(static_cast<std::size_t>(pipe_batch), 2025, 6, 6, 3);
  const auto svgg_imgs =
      snn::make_batch(static_cast<std::size_t>(pipe_batch), 2026);

  std::vector<PipelineRow> rows;
  for (int clusters : {4, 8}) {
    rows.push_back(run_pipeline_row("tower", tower, tower_imgs, clusters,
                                    k::ExecMode::kDataParallel, false));
    const double dp = rows.back().steady_cycles_per_sample;
    for (auto mode : {k::ExecMode::kStageParallel, k::ExecMode::kHybrid,
                      k::ExecMode::kAuto}) {
      rows.push_back(
          run_pipeline_row("tower", tower, tower_imgs, clusters, mode, true));
      rows.back().speedup_vs_dp = dp / rows.back().steady_cycles_per_sample;
    }
  }
  {
    // S-VGG11 control: the planner must keep choosing data-parallel here.
    rows.push_back(run_pipeline_row("svgg11", net, svgg_imgs, 8,
                                    k::ExecMode::kDataParallel, false));
    const double dp = rows.back().steady_cycles_per_sample;
    for (auto mode : {k::ExecMode::kStageParallel, k::ExecMode::kAuto}) {
      rows.push_back(
          run_pipeline_row("svgg11", net, svgg_imgs, 8, mode, true));
      rows.back().speedup_vs_dp = dp / rows.back().steady_cycles_per_sample;
    }
  }

  sc::Table pt("Stage pipeline — modeled steady-state cycles/sample, batch=" +
               std::to_string(pipe_batch));
  pt.set_header({"network", "clusters", "mode", "chosen", "stages",
                 "steady cyc/s.", "amort cyc/s.", "fifo stall", "noc cont.",
                 "vs DP"});
  for (const auto& r : rows) {
    pt.add_row({r.network, std::to_string(r.clusters), r.requested, r.chosen,
                std::to_string(r.stages),
                sc::Table::num(r.steady_cycles_per_sample, 0),
                sc::Table::num(r.cycles_per_sample, 0),
                sc::Table::num(r.fifo_stall_cycles, 0),
                sc::Table::num(r.noc_contention_cycles, 0),
                sc::Table::num(r.speedup_vs_dp, 2) + "x"});
  }
  pt.print();

  if (std::FILE* f = std::fopen("BENCH_fig3c.json", "w")) {
    sb::JsonWriter w(f, /*compact_depth=*/2);
    w.begin_object();
    w.field("bench", "fig3c");
    w.field("batch", batch);
    w.field("e2e_ss16_over_base", e2e_ss16, 4);
    w.field("e2e_ss8_over_base", e2e_ss8, 4);
    w.field("pipeline_batch", pipe_batch);
    w.key("pipeline");
    w.begin_array();
    for (const auto& r : rows) {
      w.break_line();  // one row object per line, fields inline
      w.begin_object();
      w.field("network", r.network);
      w.field("clusters", r.clusters);
      w.field("mode", r.requested);
      w.field("chosen", r.chosen);
      w.field("stages", r.stages);
      w.field("steady_cycles_per_sample", r.steady_cycles_per_sample, 2);
      w.field("cycles_per_sample", r.cycles_per_sample, 2);
      w.field("fifo_stall_cycles", r.fifo_stall_cycles, 2);
      w.field("noc_contention_cycles", r.noc_contention_cycles, 2);
      w.field("speedup_vs_dp", r.speedup_vs_dp, 4);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote BENCH_fig3c.json\n");
  }
  return 0;
}
