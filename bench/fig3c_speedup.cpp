// Reproduces Fig. 3c: per-layer speedup of SpikeStream FP16 over the FP16
// baseline, and of SpikeStream FP8 over SpikeStream FP16; plus the end-to-end
// summary speedups quoted in the abstract / Section IV-A.
#include <cstdio>

#include "bench_common.hpp"

namespace sb = spikestream::bench;
namespace sc = spikestream::common;
namespace k = spikestream::kernels;

int main() {
  const int batch = sb::batch_size_from_env();
  const auto net = sb::make_calibrated_svgg11();
  const auto images =
      spikestream::snn::make_batch(static_cast<std::size_t>(batch), 2024);

  k::RunOptions base, ss16, ss8;
  base.variant = k::Variant::kBaseline;
  base.fmt = sc::FpFormat::FP16;
  ss16.variant = k::Variant::kSpikeStream;
  ss16.fmt = sc::FpFormat::FP16;
  ss8.variant = k::Variant::kSpikeStream;
  ss8.fmt = sc::FpFormat::FP8;
  const sb::BatchRun rb = sb::run_batch(net, base, images);
  const sb::BatchRun r16 = sb::run_batch(net, ss16, images);
  const sb::BatchRun r8 = sb::run_batch(net, ss8, images);

  sc::Table t("Fig. 3c — per-layer speedups, batch=" + std::to_string(batch));
  t.set_header({"layer", "runtime base FP16 [ms]", "SS FP16 over base FP16",
                "SS FP8 over SS FP16"});
  double s16_acc = 0, s8_acc = 0;
  for (std::size_t l = 0; l < rb.layers.size(); ++l) {
    const double s16 = rb.layers[l].cycles.mean() / r16.layers[l].cycles.mean();
    const double s8 = r16.layers[l].cycles.mean() / r8.layers[l].cycles.mean();
    s16_acc += s16;
    s8_acc += s8;
    t.add_row({rb.layers[l].name,
               sc::Table::num(rb.layers[l].cycles.mean() / 1e6, 3),
               sc::Table::num(s16, 2) + "x", sc::Table::num(s8, 2) + "x"});
  }
  t.print();

  const auto n = static_cast<double>(rb.layers.size());
  std::printf("\nlayer-average speedup SS FP16 / base FP16: %.2fx (paper: 5.62x)\n",
              s16_acc / n);
  std::printf("layer-average speedup SS FP8 / SS FP16:    %.2fx (paper: 1.71x)\n",
              s8_acc / n);
  std::printf("end-to-end speedup SS FP16 / base FP16:    %.2fx (paper: 4.39x)\n",
              rb.total_cycles.mean() / r16.total_cycles.mean());
  std::printf("end-to-end speedup SS FP8  / base FP16:    %.2fx (paper: 7.29x)\n",
              rb.total_cycles.mean() / r8.total_cycles.mean());
  std::printf("end-to-end inference: base %.2f ms, SS FP16 %.2f ms, SS FP8 %.2f ms\n",
              rb.total_cycles.mean() / 1e6, r16.total_cycles.mean() / 1e6,
              r8.total_cycles.mean() / 1e6);
  return 0;
}
