// Reproduces Fig. 3a: average ifmap memory footprint (AER vs. our CSR-based
// format) and firing activity across the S-VGG11 layers, over an input batch.
#include <cstdio>

#include "bench_common.hpp"

namespace sb = spikestream::bench;
namespace sc = spikestream::common;
namespace k = spikestream::kernels;

int main() {
  const int batch = sb::batch_size_from_env();
  const auto net = sb::make_calibrated_svgg11();
  const auto images = spikestream::snn::make_batch(
      static_cast<std::size_t>(batch), 2024);

  k::RunOptions opt;
  opt.variant = k::Variant::kSpikeStream;
  opt.fmt = sc::FpFormat::FP16;
  const sb::BatchRun run = sb::run_batch(net, opt, images);

  sc::Table t("Fig. 3a — ifmap memory footprint (16-bit indices) and firing "
              "activity, batch=" + std::to_string(batch));
  t.set_header({"layer", "ifmap (HxWxC)", "AER [kB]", "CSR/ours [kB]",
                "reduction", "firing activity"});
  double ratio_acc = 0;
  int ratio_n = 0;
  for (std::size_t l = 0; l < run.layers.size(); ++l) {
    const auto& a = run.layers[l];
    const auto& spec = net.layer(l);
    const std::string shape = std::to_string(spec.in_h) + "x" +
                              std::to_string(spec.in_w) + "x" +
                              std::to_string(spec.in_c);
    const double aer_kb = a.aer_bytes.mean() / 1024.0;
    const double csr_kb = a.csr_bytes.mean() / 1024.0;
    const double red = csr_kb > 0 ? aer_kb / csr_kb : 0.0;
    if (l > 0) {  // layer 1's input is a dense image, not spikes
      ratio_acc += red;
      ++ratio_n;
    }
    t.add_row({a.name, shape,
               sc::Table::pm(aer_kb, a.aer_bytes.stddev() / 1024.0),
               sc::Table::pm(csr_kb, a.csr_bytes.stddev() / 1024.0),
               sc::Table::num(red, 2) + "x",
               sc::Table::pct(a.in_rate.mean())});
  }
  t.print();
  std::printf("\naverage footprint reduction over spiking layers: %.2fx "
              "(paper: ~2.75x)\n",
              ratio_acc / ratio_n);
  return 0;
}
