// Reproduces Fig. 4: average per-layer energy and power for the FP16
// baseline, SpikeStream FP16, and SpikeStream FP8, plus the total-inference
// energy-efficiency gains of Section IV-B.
#include <cstdio>

#include "bench_common.hpp"

namespace sb = spikestream::bench;
namespace sc = spikestream::common;
namespace k = spikestream::kernels;

int main() {
  const int batch = sb::batch_size_from_env();
  const auto net = sb::make_calibrated_svgg11();
  const auto images =
      spikestream::snn::make_batch(static_cast<std::size_t>(batch), 2024);

  k::RunOptions base, ss16, ss8;
  base.variant = k::Variant::kBaseline;
  base.fmt = sc::FpFormat::FP16;
  ss16.variant = k::Variant::kSpikeStream;
  ss16.fmt = sc::FpFormat::FP16;
  ss8.variant = k::Variant::kSpikeStream;
  ss8.fmt = sc::FpFormat::FP8;
  const sb::BatchRun rb = sb::run_batch(net, base, images);
  const sb::BatchRun r16 = sb::run_batch(net, ss16, images);
  const sb::BatchRun r8 = sb::run_batch(net, ss8, images);

  sc::Table t("Fig. 4 — per-layer energy and power, batch=" +
              std::to_string(batch));
  t.set_header({"layer", "E base [mJ]", "E SS16 [mJ]", "E SS8 [mJ]",
                "P base [W]", "P SS16 [W]", "P SS8 [W]"});
  double pb = 0, p16 = 0, p8 = 0;
  for (std::size_t l = 0; l < rb.layers.size(); ++l) {
    t.add_row({rb.layers[l].name,
               sc::Table::pm(rb.layers[l].energy_mj.mean(),
                             rb.layers[l].energy_mj.stddev(), 3),
               sc::Table::pm(r16.layers[l].energy_mj.mean(),
                             r16.layers[l].energy_mj.stddev(), 3),
               sc::Table::pm(r8.layers[l].energy_mj.mean(),
                             r8.layers[l].energy_mj.stddev(), 3),
               sc::Table::num(rb.layers[l].power_w.mean(), 3),
               sc::Table::num(r16.layers[l].power_w.mean(), 3),
               sc::Table::num(r8.layers[l].power_w.mean(), 3)});
    if (l >= 1) {  // paper: layers 2..8 share the sparse kernel
      pb += rb.layers[l].power_w.mean();
      p16 += r16.layers[l].power_w.mean();
      p8 += r8.layers[l].power_w.mean();
    }
  }
  t.print();

  const double n = static_cast<double>(rb.layers.size()) - 1.0;
  std::printf("\naverage power layers 2-8: base %.4f W (paper 0.1319), "
              "SS FP16 %.3f W (paper 0.233), SS FP8 %.3f W (paper 0.219)\n",
              pb / n, p16 / n, p8 / n);
  std::printf("FP8 power saving vs FP16: %.1f%% (paper: 6.7%%)\n",
              100.0 * (1.0 - p8 / p16));
  std::printf("total-inference energy gains: SS FP16 %.2fx (paper 3.25x), "
              "SS FP8 %.2fx (paper 5.67x), FP8/FP16 %.2fx (paper 1.74x)\n",
              rb.total_energy_mj.mean() / r16.total_energy_mj.mean(),
              rb.total_energy_mj.mean() / r8.total_energy_mj.mean(),
              r16.total_energy_mj.mean() / r8.total_energy_mj.mean());

  // Energy concentration in conv layers (paper: 82.8% of total).
  double conv_e = 0, all_e = 0;
  for (std::size_t l = 0; l < r16.layers.size(); ++l) {
    const double e = r16.layers[l].energy_mj.mean();
    all_e += e;
    if (l < 6) conv_e += e;
  }
  std::printf("share of energy in conv layers (SS FP16): %.1f%% (paper: 82.8%%)\n",
              100.0 * conv_e / all_e);
  return 0;
}
