// Ablation: double buffering on/off (Section III-D) and ifmap index width
// (8/16/32-bit, Section II-B's SSR index sizes) across the S-VGG11 conv
// layers. Shows which layers are DMA-bound and what DB recovers.
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/tiling.hpp"

namespace sb = spikestream::bench;
namespace sc = spikestream::common;
namespace k = spikestream::kernels;
namespace snn = spikestream::snn;

int main() {
  const int batch = sb::batch_size_from_env(8);
  const auto net = sb::make_calibrated_svgg11();
  const auto images =
      spikestream::snn::make_batch(static_cast<std::size_t>(batch), 2024);

  k::RunOptions db_on, db_off;
  db_on.variant = db_off.variant = k::Variant::kSpikeStream;
  db_on.fmt = db_off.fmt = sc::FpFormat::FP16;
  db_off.double_buffer = false;
  const sb::BatchRun ron = sb::run_batch(net, db_on, images);
  const sb::BatchRun roff = sb::run_batch(net, db_off, images);

  sc::Table t("Ablation — double buffering (SpikeStream FP16), batch=" +
              std::to_string(batch));
  t.set_header({"layer", "DB on [kcyc]", "DB off [kcyc]", "gain"});
  for (std::size_t l = 0; l < ron.layers.size(); ++l) {
    t.add_row({ron.layers[l].name,
               sc::Table::num(ron.layers[l].cycles.mean() / 1e3, 1),
               sc::Table::num(roff.layers[l].cycles.mean() / 1e3, 1),
               sc::Table::num(roff.layers[l].cycles.mean() /
                                  ron.layers[l].cycles.mean(),
                              2) +
                   "x"});
  }
  t.print();
  std::printf("end-to-end: DB on %.2f ms, DB off %.2f ms (%.2fx)\n\n",
              ron.total_cycles.mean() / 1e6, roff.total_cycles.mean() / 1e6,
              roff.total_cycles.mean() / ron.total_cycles.mean());

  // Index width: footprint of the compressed ifmaps with 1/2/4-byte indices.
  sc::Table t2("Ablation — compressed ifmap footprint vs. index width");
  t2.set_header({"layer", "8-bit [kB]", "16-bit [kB]", "32-bit [kB]",
                 "8-bit legal?"});
  k::RunOptions opt;
  const sb::BatchRun run = sb::run_batch(net, opt, images);
  for (std::size_t l = 1; l < run.layers.size(); ++l) {
    const auto& spec = net.layer(l);
    const double kb16 = run.layers[l].csr_bytes.mean() / 1024.0;
    // Footprints scale linearly in the index width.
    t2.add_row({run.layers[l].name, sc::Table::num(kb16 / 2.0, 1),
                sc::Table::num(kb16, 1), sc::Table::num(kb16 * 2.0, 1),
                spec.in_c <= 256 ? "yes" : "no (C > 256)"});
  }
  t2.print();
  return 0;
}
