// Shared JSON emitter for the bench harnesses: every bench used to hand-roll
// its BENCH_*.json with fprintf format strings (no escaping, comma placement
// duplicated per bench, trivially easy to emit invalid JSON when a field
// moves). One implementation now owns escaping, comma/indent bookkeeping and
// number formatting; field order is call order, so diffs across PRs stay
// stable. Writers are scoped: begin_object/end_object and
// begin_array/end_array must nest correctly (checked only by the emitted
// JSON's validity — this is a bench helper, not a parser).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>

namespace spikestream::bench {

class JsonWriter {
 public:
  /// Writes to `f` (caller keeps ownership). `compact_depth`: objects and
  /// arrays nested at or deeper than this depth are emitted on one line —
  /// the conventional BENCH_*.json shape is a pretty-printed top object
  /// whose per-row objects are single lines (compact_depth = 2).
  explicit JsonWriter(std::FILE* f, int compact_depth = 2)
      : f_(f), compact_depth_(compact_depth) {}

  // --- structure ------------------------------------------------------------

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  /// Force the next member onto its own indented line even inside a compact
  /// region — lets an array keep one row object per line (the historical
  /// BENCH_fig3c.json shape) while each row's fields stay single-line.
  void break_line() { force_break_ = true; }

  /// Key inside an object; follow with exactly one value/begin_* call.
  void key(const char* k) {
    separate();
    std::fputc('"', f_);
    escape(k);
    std::fputs("\": ", f_);
    pending_key_ = true;
  }

  // --- values ---------------------------------------------------------------

  void value(const char* s) {
    separate();
    std::fputc('"', f_);
    escape(s);
    std::fputc('"', f_);
  }
  void value(const std::string& s) { value(s.c_str()); }
  /// `decimals` mirrors the fixed-point %.Nf fields the benches always used.
  void value(double v, int decimals = 4) {
    separate();
    std::fprintf(f_, "%.*f", decimals, v);
  }
  void value(bool v) {
    separate();
    std::fputs(v ? "true" : "false", f_);
  }
  template <typename I>
    requires(std::is_integral_v<I> && !std::is_same_v<I, bool>)
  void value(I v) {
    separate();
    if constexpr (std::is_signed_v<I>) {
      std::fprintf(f_, "%lld", static_cast<long long>(v));
    } else {
      std::fprintf(f_, "%llu", static_cast<unsigned long long>(v));
    }
  }

  // --- conveniences ---------------------------------------------------------

  template <typename T>
  void field(const char* k, const T& v) {
    key(k);
    value(v);
  }
  void field(const char* k, double v, int decimals) {
    key(k);
    value(v, decimals);
  }
  void field(const char* k, const char* v) {
    key(k);
    value(v);
  }

 private:
  void open(char c) {
    separate();
    std::fputc(c, f_);
    ++depth_;
    had_member_ = false;
  }

  void close(char c) {
    --depth_;
    if (had_member_ && !compact()) {
      std::fputc('\n', f_);
      indent();
    }
    std::fputc(c, f_);
    had_member_ = true;  // the closed scope is a member of its parent
  }

  /// Comma/newline/indent before a member; a value directly after key()
  /// goes inline.
  void separate() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (depth_ == 0) return;
    if (had_member_) std::fputc(',', f_);
    if (compact() && !force_break_) {
      if (had_member_) std::fputc(' ', f_);
    } else {
      std::fputc('\n', f_);
      indent();
    }
    force_break_ = false;
    had_member_ = true;
  }

  bool compact() const { return depth_ >= compact_depth_; }

  void indent() {
    for (int i = 0; i < depth_; ++i) std::fputs("  ", f_);
  }

  void escape(const char* s) {
    for (; *s; ++s) {
      const unsigned char c = static_cast<unsigned char>(*s);
      switch (c) {
        case '"':
          std::fputs("\\\"", f_);
          break;
        case '\\':
          std::fputs("\\\\", f_);
          break;
        case '\n':
          std::fputs("\\n", f_);
          break;
        case '\t':
          std::fputs("\\t", f_);
          break;
        case '\r':
          std::fputs("\\r", f_);
          break;
        default:
          if (c < 0x20) {
            std::fprintf(f_, "\\u%04x", c);
          } else {
            std::fputc(static_cast<char>(c), f_);
          }
      }
    }
  }

  std::FILE* f_;
  int compact_depth_;
  int depth_ = 0;
  bool had_member_ = false;
  bool pending_key_ = false;
  bool force_break_ = false;
};

}  // namespace spikestream::bench
