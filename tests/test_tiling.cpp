// SPM tile planning: every S-VGG11 layer must fit the 128 KiB scratchpad,
// traffic accounting must be consistent, and double buffering must hide DMA
// behind compute when compute dominates.
#include <gtest/gtest.h>

#include "kernels/tiling.hpp"
#include "snn/network.hpp"

namespace k = spikestream::kernels;
namespace snn = spikestream::snn;
namespace sc = spikestream::common;

namespace {

double csr_bytes_at_rate(const snn::LayerSpec& s, double rate) {
  const double positions = static_cast<double>(s.in_h) * s.in_w;
  return positions * s.in_c * rate * 2.0 + positions * 2.0;
}

}  // namespace

class Svgg11Fits : public ::testing::TestWithParam<sc::FpFormat> {};

TEST_P(Svgg11Fits, EveryLayerFitsSpm) {
  const snn::Network net = snn::Network::make_svgg11();
  const k::CostParams p;
  const double rates[] = {1.0, 0.10, 0.30, 0.22, 0.18, 0.10, 0.06, 0.04};
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const auto& spec = net.layer(l);
    k::TilePlan plan;
    if (spec.kind == snn::LayerKind::kEncodeConv) {
      plan = k::plan_encode_layer(spec, GetParam(), p);
    } else {
      plan = k::plan_layer(spec, GetParam(), csr_bytes_at_rate(spec, rates[l]),
                           4096.0, p);
    }
    EXPECT_TRUE(plan.fits_spm) << spec.name;
    EXPECT_LE(plan.spm_resident_bytes, 128.0 * 1024) << spec.name;
    EXPECT_GE(plan.co_per_tile, sc::simd_lanes(GetParam())) << spec.name;
    EXPECT_GT(plan.dma_bytes, 0.0) << spec.name;
    EXPECT_GT(plan.dma_cycles, 0.0) << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, Svgg11Fits,
                         ::testing::Values(sc::FpFormat::FP16,
                                           sc::FpFormat::FP8,
                                           sc::FpFormat::FP32));

TEST(Tiling, WeightTrafficAtLeastWeightBytes) {
  const snn::Network net = snn::Network::make_svgg11();
  const k::CostParams p;
  const auto& conv6 = net.layer(5);
  const auto plan = k::plan_layer(conv6, sc::FpFormat::FP16,
                                  csr_bytes_at_rate(conv6, 0.1), 4096.0, p);
  const double weight_bytes = 9.0 * 512 * 512 * 2;
  EXPECT_GE(plan.dma_bytes, weight_bytes);
  // With a compressed (small) ifmap the planner should keep one stripe and
  // stream the weights exactly once.
  EXPECT_EQ(plan.if_stripes, 1);
  EXPECT_NEAR(plan.dma_bytes, weight_bytes + csr_bytes_at_rate(conv6, 0.1) + 4096.0,
              1.0);
}

TEST(Tiling, FcLayerSegmentsFanIn) {
  const snn::Network net = snn::Network::make_svgg11();
  const k::CostParams p;
  const auto& fc7 = net.layer(6);
  const auto plan = k::plan_layer(fc7, sc::FpFormat::FP16, 2000.0, 64.0, p);
  EXPECT_TRUE(plan.fits_spm);
  // 8192x1024 FP16 weights cannot fit whole: either co or fan-in tiled.
  EXPECT_TRUE(plan.weight_tiles > 1 || plan.in_segments > 1);
  EXPECT_GE(plan.dma_bytes, 8192.0 * 1024 * 2);
}

TEST(Tiling, FP8HalvesWeightTraffic) {
  const snn::Network net = snn::Network::make_svgg11();
  const k::CostParams p;
  const auto& conv4 = net.layer(3);
  const double ifb = csr_bytes_at_rate(conv4, 0.2);
  const auto p16 = k::plan_layer(conv4, sc::FpFormat::FP16, ifb, 1000.0, p);
  const auto p8 = k::plan_layer(conv4, sc::FpFormat::FP8, ifb, 1000.0, p);
  EXPECT_NEAR(p8.dma_bytes - ifb - 1000.0,
              (p16.dma_bytes - ifb - 1000.0) / 2.0,
              0.05 * p16.dma_bytes);
}

TEST(Tiling, DoubleBufferHidesDmaWhenComputeBound) {
  k::TilePlan plan;
  plan.dma_cycles = 1000;
  plan.first_fill_cycles = 120;
  const double compute = 50000;
  EXPECT_DOUBLE_EQ(k::overlap_cycles(plan, compute, true), 50120.0);
  EXPECT_DOUBLE_EQ(k::overlap_cycles(plan, compute, false), 51000.0);
}

TEST(Tiling, DmaBoundLayerGatedByDma) {
  k::TilePlan plan;
  plan.dma_cycles = 90000;
  plan.first_fill_cycles = 500;
  EXPECT_DOUBLE_EQ(k::overlap_cycles(plan, 20000, true), 90500.0);
}

TEST(Tiling, EncodePlanExpandsIm2row) {
  const snn::Network net = snn::Network::make_svgg11();
  const k::CostParams p;
  const auto plan = k::plan_encode_layer(net.layer(0), sc::FpFormat::FP16, p);
  // im2row expands the 34x34x3 input to 32*32 positions x 27 values.
  EXPECT_GE(plan.dma_bytes, 32.0 * 32 * 27 * 2);
  EXPECT_TRUE(plan.fits_spm);
}

TEST(Tiling, SmallerSpmForcesMoreTiles) {
  const snn::Network net = snn::Network::make_svgg11();
  const k::CostParams p;
  const auto& conv4 = net.layer(3);
  const double ifb = csr_bytes_at_rate(conv4, 0.2);
  const auto big = k::plan_layer(conv4, sc::FpFormat::FP16, ifb, 1000.0, p,
                                 128.0 * 1024);
  const auto small = k::plan_layer(conv4, sc::FpFormat::FP16, ifb, 1000.0, p,
                                   64.0 * 1024);
  EXPECT_GE(small.weight_tiles, big.weight_tiles);
  EXPECT_LE(small.co_per_tile, big.co_per_tile);
}

TEST(Tiling, BatchAwareWarmPlanInvariants) {
  // The warm (batch-reuse) numbers of every S-VGG11 layer plan must be
  // consistent: warm DMA never exceeds cold, the pinned fraction is a
  // fraction, full residency implies warm traffic = ifmap + ofmap only, and
  // a zero fraction means warm == cold verbatim.
  const snn::Network net = snn::Network::make_svgg11();
  const k::CostParams p;
  const double rates[] = {1.0, 0.10, 0.30, 0.22, 0.18, 0.10, 0.06, 0.04};
  bool any_pinned = false;
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const auto& spec = net.layer(l);
    k::TilePlan plan;
    double if_bytes = 0, of_bytes = 4096.0;
    if (spec.kind == snn::LayerKind::kEncodeConv) {
      plan = k::plan_encode_layer(spec, sc::FpFormat::FP16, p);
    } else {
      if_bytes = csr_bytes_at_rate(spec, rates[l]);
      plan = k::plan_layer(spec, sc::FpFormat::FP16, if_bytes, of_bytes, p);
    }
    EXPECT_GE(plan.pinned_weight_fraction, 0.0) << spec.name;
    EXPECT_LE(plan.pinned_weight_fraction, 1.0) << spec.name;
    EXPECT_LE(plan.dma_bytes_warm, plan.dma_bytes + 1e-9) << spec.name;
    EXPECT_LE(plan.dma_cycles_warm, plan.dma_cycles + 1e-9) << spec.name;
    EXPECT_LE(plan.first_fill_cycles_warm, plan.first_fill_cycles + 1e-9)
        << spec.name;
    if (plan.weights_spm_resident) {
      EXPECT_DOUBLE_EQ(plan.pinned_weight_fraction, 1.0) << spec.name;
      if (spec.kind != snn::LayerKind::kEncodeConv) {
        EXPECT_DOUBLE_EQ(plan.dma_bytes_warm, if_bytes + of_bytes)
            << spec.name;
      }
    }
    if (plan.pinned_weight_fraction == 0.0) {
      EXPECT_DOUBLE_EQ(plan.dma_bytes_warm, plan.dma_bytes) << spec.name;
      EXPECT_DOUBLE_EQ(plan.dma_cycles_warm, plan.dma_cycles) << spec.name;
    }
    any_pinned = any_pinned || plan.pinned_weight_fraction > 0.0;
  }
  // At least the encode layer (weights resident by construction) pins.
  EXPECT_TRUE(any_pinned);
}
