// SPM tile planning: every S-VGG11 layer must fit the 128 KiB scratchpad,
// traffic accounting must be consistent, and double buffering must hide DMA
// behind compute when compute dominates.
#include <gtest/gtest.h>

#include "kernels/tiling.hpp"
#include "snn/network.hpp"

namespace k = spikestream::kernels;
namespace snn = spikestream::snn;
namespace sc = spikestream::common;

namespace {

double csr_bytes_at_rate(const snn::LayerSpec& s, double rate) {
  const double positions = static_cast<double>(s.in_h) * s.in_w;
  return positions * s.in_c * rate * 2.0 + positions * 2.0;
}

}  // namespace

class Svgg11Fits : public ::testing::TestWithParam<sc::FpFormat> {};

TEST_P(Svgg11Fits, EveryLayerFitsSpm) {
  const snn::Network net = snn::Network::make_svgg11();
  const k::CostParams p;
  const double rates[] = {1.0, 0.10, 0.30, 0.22, 0.18, 0.10, 0.06, 0.04};
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const auto& spec = net.layer(l);
    k::TilePlan plan;
    if (spec.kind == snn::LayerKind::kEncodeConv) {
      plan = k::plan_encode_layer(spec, GetParam(), p);
    } else {
      plan = k::plan_layer(spec, GetParam(), csr_bytes_at_rate(spec, rates[l]),
                           4096.0, p);
    }
    EXPECT_TRUE(plan.fits_spm) << spec.name;
    EXPECT_LE(plan.spm_resident_bytes, 128.0 * 1024) << spec.name;
    EXPECT_GE(plan.co_per_tile, sc::simd_lanes(GetParam())) << spec.name;
    EXPECT_GT(plan.dma_bytes, 0.0) << spec.name;
    EXPECT_GT(plan.dma_cycles, 0.0) << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, Svgg11Fits,
                         ::testing::Values(sc::FpFormat::FP16,
                                           sc::FpFormat::FP8,
                                           sc::FpFormat::FP32));

TEST(Tiling, WeightTrafficAtLeastWeightBytes) {
  const snn::Network net = snn::Network::make_svgg11();
  const k::CostParams p;
  const auto& conv6 = net.layer(5);
  const auto plan = k::plan_layer(conv6, sc::FpFormat::FP16,
                                  csr_bytes_at_rate(conv6, 0.1), 4096.0, p);
  const double weight_bytes = 9.0 * 512 * 512 * 2;
  EXPECT_GE(plan.dma_bytes, weight_bytes);
  // With a compressed (small) ifmap the planner should keep one stripe and
  // stream the weights exactly once.
  EXPECT_EQ(plan.if_stripes, 1);
  EXPECT_NEAR(plan.dma_bytes, weight_bytes + csr_bytes_at_rate(conv6, 0.1) + 4096.0,
              1.0);
}

TEST(Tiling, FcLayerSegmentsFanIn) {
  const snn::Network net = snn::Network::make_svgg11();
  const k::CostParams p;
  const auto& fc7 = net.layer(6);
  const auto plan = k::plan_layer(fc7, sc::FpFormat::FP16, 2000.0, 64.0, p);
  EXPECT_TRUE(plan.fits_spm);
  // 8192x1024 FP16 weights cannot fit whole: either co or fan-in tiled.
  EXPECT_TRUE(plan.weight_tiles > 1 || plan.in_segments > 1);
  EXPECT_GE(plan.dma_bytes, 8192.0 * 1024 * 2);
}

TEST(Tiling, FP8HalvesWeightTraffic) {
  const snn::Network net = snn::Network::make_svgg11();
  const k::CostParams p;
  const auto& conv4 = net.layer(3);
  const double ifb = csr_bytes_at_rate(conv4, 0.2);
  const auto p16 = k::plan_layer(conv4, sc::FpFormat::FP16, ifb, 1000.0, p);
  const auto p8 = k::plan_layer(conv4, sc::FpFormat::FP8, ifb, 1000.0, p);
  EXPECT_NEAR(p8.dma_bytes - ifb - 1000.0,
              (p16.dma_bytes - ifb - 1000.0) / 2.0,
              0.05 * p16.dma_bytes);
}

TEST(Tiling, DoubleBufferHidesDmaWhenComputeBound) {
  k::TilePlan plan;
  plan.dma_cycles = 1000;
  plan.first_fill_cycles = 120;
  const double compute = 50000;
  EXPECT_DOUBLE_EQ(k::overlap_cycles(plan, compute, true), 50120.0);
  EXPECT_DOUBLE_EQ(k::overlap_cycles(plan, compute, false), 51000.0);
}

TEST(Tiling, DmaBoundLayerGatedByDma) {
  k::TilePlan plan;
  plan.dma_cycles = 90000;
  plan.first_fill_cycles = 500;
  EXPECT_DOUBLE_EQ(k::overlap_cycles(plan, 20000, true), 90500.0);
}

TEST(Tiling, EncodePlanExpandsIm2row) {
  const snn::Network net = snn::Network::make_svgg11();
  const k::CostParams p;
  const auto plan = k::plan_encode_layer(net.layer(0), sc::FpFormat::FP16, p);
  // im2row expands the 34x34x3 input to 32*32 positions x 27 values.
  EXPECT_GE(plan.dma_bytes, 32.0 * 32 * 27 * 2);
  EXPECT_TRUE(plan.fits_spm);
}

TEST(Tiling, SmallerSpmForcesMoreTiles) {
  const snn::Network net = snn::Network::make_svgg11();
  const k::CostParams p;
  const auto& conv4 = net.layer(3);
  const double ifb = csr_bytes_at_rate(conv4, 0.2);
  const auto big = k::plan_layer(conv4, sc::FpFormat::FP16, ifb, 1000.0, p,
                                 128.0 * 1024);
  const auto small = k::plan_layer(conv4, sc::FpFormat::FP16, ifb, 1000.0, p,
                                   64.0 * 1024);
  EXPECT_GE(small.weight_tiles, big.weight_tiles);
  EXPECT_LE(small.co_per_tile, big.co_per_tile);
}

TEST(Tiling, SegmentMajorWinsOnSegmentedFc) {
  // fc7 (8192x1024) cycles 512 weight bands through one SPM tile per sample;
  // the segment-major batch schedule streams each band once for the whole
  // batch, so per-sample weight traffic drops by (B-1)/B net of spill.
  const snn::Network net = snn::Network::make_svgg11();
  const k::CostParams p;
  const auto& fc7 = net.layer(6);
  const double ifb = 1000.0, ofb = 64.0;
  const auto cold = k::plan_layer(fc7, sc::FpFormat::FP16, ifb, ofb, p);
  ASSERT_GT(cold.weight_tiles * cold.in_segments, 1);
  EXPECT_DOUBLE_EQ(cold.pinned_weight_fraction, 0.0);  // bands cannot pin

  const int B = 8;
  const auto sm = k::plan_layer(fc7, sc::FpFormat::FP16, ifb, ofb, p,
                                128.0 * 1024, true, B);
  ASSERT_TRUE(sm.segment_major);
  EXPECT_EQ(sm.sm_lanes, B);
  EXPECT_EQ(sm.sm_bands, sm.weight_tiles * sm.in_segments);
  EXPECT_LE(sm.sm_dma_bytes, sm.dma_bytes);
  EXPECT_LT(sm.sm_dma_cycles, sm.dma_cycles);
  // Weight traffic: all weights once per batch instead of once per sample.
  const double weights = 8192.0 * 1024 * 2;
  const double cold_weights = sm.dma_bytes - ifb * sm.in_segments - ofb;
  EXPECT_NEAR(cold_weights, weights, 1.0);
  const double sm_weights =
      sm.sm_dma_bytes - sm.weight_tiles * ifb - ofb - sm.sm_spill_bytes;
  EXPECT_NEAR(sm_weights, weights / B, 1.0);
  EXPECT_GE(1.0 - sm_weights / cold_weights, 0.5);  // >= 50% weight-DMA cut
}

TEST(Tiling, SegmentMajorNotChosenWithoutBatchOrBands) {
  const snn::Network net = snn::Network::make_svgg11();
  const k::CostParams p;
  // Single lane: nothing to amortize over.
  const auto one = k::plan_layer(net.layer(6), sc::FpFormat::FP16, 1000.0,
                                 64.0, p, 128.0 * 1024, true, 1);
  EXPECT_FALSE(one.segment_major);
  EXPECT_DOUBLE_EQ(one.sm_dma_bytes, one.dma_bytes);
  // fc8 (1024x10) fits in one band: weights already stream once per sample.
  const auto fc8 = k::plan_layer(net.layer(7), sc::FpFormat::FP16, 200.0,
                                 30.0, p, 128.0 * 1024, true, 8);
  EXPECT_EQ(fc8.weight_tiles * fc8.in_segments, 1);
  EXPECT_FALSE(fc8.segment_major);
  // Conv layers never take the FC schedule.
  const auto conv = k::plan_layer(net.layer(3), sc::FpFormat::FP16,
                                  csr_bytes_at_rate(net.layer(3), 0.2),
                                  1000.0, p, 128.0 * 1024, true, 8);
  EXPECT_FALSE(conv.segment_major);
}

TEST(Tiling, SegmentMajorSpillConservation) {
  // Force spill: a wide-output FC layer has large per-lane accumulator
  // slices (co_per_tile * fb), so only a few lanes' partial sums fit next to
  // the streaming buffers. Parked lanes pay 2 * (segs - 1) * tiles *
  // acc_bytes each, and the batch totals must reconcile exactly:
  //   B * per_sample = all_weights + B * (tiles * ifmap + ofmap) + spill.
  snn::LayerSpec fc;
  fc.kind = snn::LayerKind::kFc;
  fc.name = "wide_fc";
  fc.in_c = 256;
  fc.out_c = 4096;
  const k::CostParams p;
  const double ifb = 200.0, ofb = 64.0, spm = 96.0 * 1024;
  const int B = 8;
  const auto sm =
      k::plan_layer(fc, sc::FpFormat::FP16, ifb, ofb, p, spm, true, B);
  ASSERT_TRUE(sm.segment_major);
  ASSERT_GT(sm.in_segments, 1);
  ASSERT_LT(sm.sm_resident_lanes, B) << "SPM too big for the spill case";
  EXPECT_GE(sm.sm_resident_lanes, 1);  // the active lane always fits
  EXPECT_GT(sm.sm_spill_bytes, 0.0);
  const double acc = sm.co_per_tile * 2.0;
  const double expect_spill_batch = 2.0 * (B - sm.sm_resident_lanes) *
                                    (sm.in_segments - 1.0) *
                                    sm.weight_tiles * acc;
  EXPECT_NEAR(sm.sm_spill_bytes * B, expect_spill_batch, 1e-6);
  const double weights = 256.0 * 4096 * 2;
  EXPECT_NEAR(sm.sm_dma_bytes * B,
              weights + B * (sm.weight_tiles * ifb + ofb) +
                  expect_spill_batch,
              1e-3);
}

TEST(Tiling, SegmentMajorBreakEvenMonotonicInBatch) {
  // More lanes amortize the weight stream further: per-sample segment-major
  // bytes must be non-increasing in B, and once chosen the schedule stays
  // chosen for every larger batch (the planner cannot flap around B).
  const snn::Network net = snn::Network::make_svgg11();
  const k::CostParams p;
  const auto& fc7 = net.layer(6);
  double prev_bytes = -1.0;
  bool chosen_before = false;
  for (int B : {2, 4, 8, 16, 32}) {
    const auto sm = k::plan_layer(fc7, sc::FpFormat::FP16, 1000.0, 64.0, p,
                                  128.0 * 1024, true, B);
    if (chosen_before) EXPECT_TRUE(sm.segment_major) << "B=" << B;
    chosen_before = chosen_before || sm.segment_major;
    if (sm.segment_major && prev_bytes >= 0.0) {
      EXPECT_LE(sm.sm_dma_bytes, prev_bytes + 1e-9) << "B=" << B;
    }
    if (sm.segment_major) prev_bytes = sm.sm_dma_bytes;
    // The schedule is never adopted at a loss.
    EXPECT_LE(sm.sm_dma_bytes, sm.dma_bytes + 1e-9) << "B=" << B;
    EXPECT_LE(sm.sm_dma_cycles, sm.dma_cycles + 1e-9) << "B=" << B;
  }
  EXPECT_TRUE(chosen_before);
}

TEST(Tiling, SegmentMajorOverlapUsesAmortizedTimeline) {
  const snn::Network net = snn::Network::make_svgg11();
  const k::CostParams p;
  const auto sm = k::plan_layer(net.layer(6), sc::FpFormat::FP16, 1000.0,
                                64.0, p, 128.0 * 1024, true, 8);
  ASSERT_TRUE(sm.segment_major);
  // DMA-bound: the amortized stream gates wall-clock, not the per-sample one.
  EXPECT_DOUBLE_EQ(k::overlap_cycles(sm, 10.0, true),
                   sm.sm_first_fill_cycles + sm.sm_dma_cycles);
  // Compute-bound: only the first fill is exposed.
  const double huge = 10.0 * sm.dma_cycles;
  EXPECT_DOUBLE_EQ(k::overlap_cycles(sm, huge, true),
                   sm.sm_first_fill_cycles + huge);
}

TEST(Tiling, BatchAwareWarmPlanInvariants) {
  // The warm (batch-reuse) numbers of every S-VGG11 layer plan must be
  // consistent: warm DMA never exceeds cold, the pinned fraction is a
  // fraction, full residency implies warm traffic = ifmap + ofmap only, and
  // a zero fraction means warm == cold verbatim.
  const snn::Network net = snn::Network::make_svgg11();
  const k::CostParams p;
  const double rates[] = {1.0, 0.10, 0.30, 0.22, 0.18, 0.10, 0.06, 0.04};
  bool any_pinned = false;
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const auto& spec = net.layer(l);
    k::TilePlan plan;
    double if_bytes = 0, of_bytes = 4096.0;
    if (spec.kind == snn::LayerKind::kEncodeConv) {
      plan = k::plan_encode_layer(spec, sc::FpFormat::FP16, p);
    } else {
      if_bytes = csr_bytes_at_rate(spec, rates[l]);
      plan = k::plan_layer(spec, sc::FpFormat::FP16, if_bytes, of_bytes, p);
    }
    EXPECT_GE(plan.pinned_weight_fraction, 0.0) << spec.name;
    EXPECT_LE(plan.pinned_weight_fraction, 1.0) << spec.name;
    EXPECT_LE(plan.dma_bytes_warm, plan.dma_bytes + 1e-9) << spec.name;
    EXPECT_LE(plan.dma_cycles_warm, plan.dma_cycles + 1e-9) << spec.name;
    EXPECT_LE(plan.first_fill_cycles_warm, plan.first_fill_cycles + 1e-9)
        << spec.name;
    if (plan.weights_spm_resident) {
      EXPECT_DOUBLE_EQ(plan.pinned_weight_fraction, 1.0) << spec.name;
      if (spec.kind != snn::LayerKind::kEncodeConv) {
        EXPECT_DOUBLE_EQ(plan.dma_bytes_warm, if_bytes + of_bytes)
            << spec.name;
      }
    }
    if (plan.pinned_weight_fraction == 0.0) {
      EXPECT_DOUBLE_EQ(plan.dma_bytes_warm, plan.dma_bytes) << spec.name;
      EXPECT_DOUBLE_EQ(plan.dma_cycles_warm, plan.dma_cycles) << spec.name;
    }
    any_pinned = any_pinned || plan.pinned_weight_fraction > 0.0;
  }
  // At least the encode layer (weights resident by construction) pins.
  EXPECT_TRUE(any_pinned);
}
