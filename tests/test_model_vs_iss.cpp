// Cross-validation: the layer-level cost model (kernels/cost_model.hpp) must
// agree with the cycle-level ISS on the loops it abstracts. This is the
// contract that lets the full-network benches run at SpVA granularity while
// keeping the microarchitectural grounding of the simulator.
#include <gtest/gtest.h>

#include <vector>

#include "arch/cluster.hpp"
#include "common/rng.hpp"
#include "kernels/cost_model.hpp"
#include "kernels/iss_kernels.hpp"

namespace arch = spikestream::arch;
namespace k = spikestream::kernels;

namespace {

arch::Cluster make_cl() {
  arch::ClusterConfig cfg;
  cfg.icache_miss_penalty = 0;
  return arch::Cluster(cfg);
}

std::vector<std::uint16_t> rand_idcs(int n, int universe, std::uint64_t seed) {
  spikestream::common::Rng rng(seed);
  std::vector<std::uint16_t> v;
  v.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    v.push_back(static_cast<std::uint16_t>(
        rng.uniform_u64(static_cast<std::uint64_t>(universe))));
  }
  return v;
}

}  // namespace

TEST(BaselineSpvaModel, SlopeMatchesIssWithinFivePercent) {
  // The model's per-element cost (11 cycles) is the slope of the ISS cycle
  // count in stream length; the microkernel's constant prologue differs from
  // the conv kernel's outer overhead (modeled separately), so we compare
  // slopes rather than absolute single-SpVA times.
  auto cl1 = make_cl();
  auto cl2 = make_cl();
  std::vector<double> w(512, 1.0);
  const auto r100 = k::iss_baseline_spva(cl1, w, rand_idcs(100, 512, 11));
  const auto r500 = k::iss_baseline_spva(cl2, w, rand_idcs(500, 512, 12));
  const double slope =
      static_cast<double>(r500.cycles - r100.cycles) / 400.0;
  const k::CostParams p;
  EXPECT_NEAR(slope, p.baseline_elem_cycles, 0.05 * p.baseline_elem_cycles);
  // The modeled outer overhead upper-bounds the microkernel's prologue.
  const double intercept = static_cast<double>(r100.cycles) - slope * 100.0;
  EXPECT_LT(intercept, p.baseline_spva_overhead + 10.0);
}

class StreamSpvaModel : public ::testing::TestWithParam<int> {};

TEST_P(StreamSpvaModel, SequencePerSpvaWithinFifteenPercent) {
  // Back-to-back SpVAs of equal length: the model's per-SpVA cost
  // (max(II*s, setup) + residue) against the measured amortized cost.
  const int s_len = GetParam();
  constexpr int kSpvas = 30;
  auto cl = make_cl();
  std::vector<double> w(512, 1.0);
  std::vector<std::vector<std::uint16_t>> streams;
  for (int j = 0; j < kSpvas; ++j) {
    streams.push_back(rand_idcs(s_len, 512, 100 + static_cast<std::uint64_t>(j)));
  }
  const auto r = k::iss_spikestream_spva_sequence(cl, w, streams);
  const k::CostParams p;
  const double model = k::spikestream_spva_cycles(p, s_len, 1.0) * kSpvas;
  EXPECT_NEAR(model, static_cast<double>(r.cycles),
              0.15 * static_cast<double>(r.cycles) + 40.0)
      << "s_len=" << s_len;
}

INSTANTIATE_TEST_SUITE_P(Lengths, StreamSpvaModel,
                         ::testing::Values(4, 6, 10, 16, 32, 64, 128));

TEST(DenseDotModel, WithinFifteenPercentOfIss) {
  auto cl = make_cl();
  std::vector<double> a(400, 1.0), b(400, 0.5);
  const auto r = k::iss_dense_dot(cl, a, b, 2);
  const k::CostParams p;
  const double model = k::spikestream_dense_dot_cycles(p, 400.0, 1.0);
  EXPECT_NEAR(model, static_cast<double>(r.cycles),
              0.15 * static_cast<double>(r.cycles) + 20.0);
}

TEST(BaselineDenseDotModel, TwinTracksUnrolledScalarLoop) {
  // The baseline encode layer's 2x-unrolled scalar dot: the ISS twin runs
  // ~1.5x the modeled 4 cycles/element (load-use latency the optimistic
  // model hides), which is exactly what the cycle-accurate backend's
  // calibration now charges instead of a silent ratio of 1.0.
  auto cl = make_cl();
  std::vector<double> a(400, 1.0), b(400, 0.5);
  const auto r = k::iss_baseline_dense_dot(cl, a, b);
  EXPECT_NEAR(r.value, 200.0, 1e-9);  // functional check: sum of 400 * 0.5
  const k::CostParams p;
  const double model = k::baseline_dense_dot_cycles(p, 400.0);
  const double ratio = static_cast<double>(r.cycles) / model;
  EXPECT_GT(ratio, 1.1);
  EXPECT_LT(ratio, 1.9);
}

TEST(DenseNoTcModel, SingleAccumulatorStreamTwinWithinClampBand) {
  // The kDenseNoTc ablation's dense two-stream fmadd loop with one
  // accumulator: gated by the fmadd latency (3) while the model charges the
  // fadd II (2) — the twin surfaces a ~1.5x ratio, inside the clamp band.
  auto cl = make_cl();
  std::vector<double> a(400, 1.0), b(400, 0.5);
  const auto r = k::iss_dense_dot(cl, a, b, 1);
  const k::CostParams p;
  const double model = p.fadd_latency * 400.0 + p.ss_residue;
  const double ratio = static_cast<double>(r.cycles) / model;
  EXPECT_GT(ratio, 1.1);
  EXPECT_LT(ratio, 1.9);
}

TEST(ConflictModel, SsrFifoAbsorbsConflictsAtIITwo) {
  // 8 cores streaming indirect gathers: at II=2 the SSR fetches at twice the
  // FPU's consumption rate, so the 4-deep FIFO absorbs bank conflicts almost
  // entirely — the measured stretch stays near 1 even though the arbiter
  // records real conflicts. The analytic stretch is therefore a (small,
  // conservative) upper bound in the layer model.
  auto cl1 = make_cl();
  auto cl8 = make_cl();
  std::vector<double> w(256, 1.0);
  const auto idcs = rand_idcs(400, 256, 77);
  const auto r1 = k::iss_spikestream_spva_multicore(cl1, w, idcs, 1);
  const auto r8 = k::iss_spikestream_spva_multicore(cl8, w, idcs, 8);
  const double measured =
      static_cast<double>(r8.cycles) / static_cast<double>(r1.cycles);
  EXPECT_GE(measured, 1.0 - 1e-9);
  EXPECT_LT(measured, 1.25);
  EXPECT_GT(cl8.mem().stats().tcdm_conflicts, 0u);  // conflicts did happen
  const k::CostParams p;
  const double modeled = p.conflict_stretch(1.25 / p.fadd_latency, 8);
  EXPECT_GE(modeled, measured - 0.05);
  EXPECT_LT(modeled, 1.2);
}

TEST(ConflictModel, MonotonicInCores) {
  const k::CostParams p;
  double prev = 1.0;
  for (int c = 1; c <= 16; c *= 2) {
    const double s = p.conflict_stretch(0.625, c);
    EXPECT_GE(s, prev - 1e-12);
    prev = s;
  }
  EXPECT_DOUBLE_EQ(p.conflict_stretch(0.0, 8), 1.0);
}

TEST(Model, UtilizationCeilingIsHalfAtIITwo) {
  // With fadd latency 2 and one accumulator, modeled utilization of an
  // infinitely long stream approaches (but never exceeds) 50%.
  const k::CostParams p;
  const double s = 100000;
  const double cyc = k::spikestream_spva_cycles(p, s, 1.0);
  EXPECT_NEAR(s / cyc, 0.5, 0.01);
  EXPECT_LE(s / cyc, 0.5);
}

TEST(Model, BaselineUtilizationNearNinePercent) {
  const k::CostParams p;
  const double s = 100000;
  const double cyc = k::baseline_spva_cycles(p, s);
  EXPECT_NEAR(s / cyc, 0.0909, 0.005);  // 1 / 11
}
