#include "common/float_formats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"

namespace sc = spikestream::common;

TEST(Fp16, KnownValues) {
  EXPECT_EQ(sc::fp32_to_fp16_bits(0.0f), 0x0000);
  EXPECT_EQ(sc::fp32_to_fp16_bits(-0.0f), 0x8000);
  EXPECT_EQ(sc::fp32_to_fp16_bits(1.0f), 0x3C00);
  EXPECT_EQ(sc::fp32_to_fp16_bits(-2.0f), 0xC000);
  EXPECT_EQ(sc::fp32_to_fp16_bits(65504.0f), 0x7BFF);  // max finite
  EXPECT_EQ(sc::fp32_to_fp16_bits(0.5f), 0x3800);
  EXPECT_EQ(sc::fp32_to_fp16_bits(0.099975586f), 0x2E66);
}

TEST(Fp16, Decode) {
  EXPECT_FLOAT_EQ(sc::fp16_bits_to_fp32(0x3C00), 1.0f);
  EXPECT_FLOAT_EQ(sc::fp16_bits_to_fp32(0xC000), -2.0f);
  EXPECT_FLOAT_EQ(sc::fp16_bits_to_fp32(0x7BFF), 65504.0f);
  // smallest subnormal = 2^-24
  EXPECT_FLOAT_EQ(sc::fp16_bits_to_fp32(0x0001), std::ldexp(1.0f, -24));
}

TEST(Fp16, OverflowToInf) {
  const std::uint16_t b = sc::fp32_to_fp16_bits(1e6f);
  EXPECT_TRUE(std::isinf(sc::fp16_bits_to_fp32(b)));
}

TEST(Fp16, NanPreserved) {
  const std::uint16_t b =
      sc::fp32_to_fp16_bits(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(std::isnan(sc::fp16_bits_to_fp32(b)));
}

TEST(Fp16, RoundTripIsIdempotent) {
  spikestream::common::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const auto x = static_cast<float>(rng.normal(0.0, 10.0));
    const float q1 = sc::quantize(x, sc::FpFormat::FP16);
    const float q2 = sc::quantize(q1, sc::FpFormat::FP16);
    EXPECT_EQ(q1, q2) << "x=" << x;
  }
}

TEST(Fp16, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next fp16; ties to even
  // round down to 1.0. 1 + 3*2^-11 rounds up to 1 + 2^-9... (even mantissa).
  EXPECT_EQ(sc::fp32_to_fp16_bits(1.0f + std::ldexp(1.0f, -11)), 0x3C00);
  EXPECT_EQ(sc::fp32_to_fp16_bits(1.0f + 3 * std::ldexp(1.0f, -11)), 0x3C02);
}

TEST(Fp8E4M3, KnownValues) {
  EXPECT_EQ(sc::fp32_to_fp8_e4m3_bits(0.0f), 0x00);
  EXPECT_EQ(sc::fp32_to_fp8_e4m3_bits(1.0f), 0x38);    // 0.1110.000? bias 7
  EXPECT_EQ(sc::fp32_to_fp8_e4m3_bits(-1.5f), 0xBC);
  EXPECT_EQ(sc::fp32_to_fp8_e4m3_bits(448.0f), 0x7E);  // max finite
}

TEST(Fp8E4M3, SaturatesInsteadOfInf) {
  EXPECT_FLOAT_EQ(sc::fp8_e4m3_bits_to_fp32(sc::fp32_to_fp8_e4m3_bits(1e9f)),
                  448.0f);
  EXPECT_FLOAT_EQ(sc::fp8_e4m3_bits_to_fp32(sc::fp32_to_fp8_e4m3_bits(-1e9f)),
                  -448.0f);
}

TEST(Fp8E4M3, Subnormals) {
  // Smallest subnormal is 2^-9.
  const float tiny = std::ldexp(1.0f, -9);
  EXPECT_FLOAT_EQ(sc::fp8_e4m3_bits_to_fp32(sc::fp32_to_fp8_e4m3_bits(tiny)),
                  tiny);
  // Below half the smallest subnormal underflows to zero.
  EXPECT_FLOAT_EQ(
      sc::fp8_e4m3_bits_to_fp32(sc::fp32_to_fp8_e4m3_bits(tiny / 4.0f)), 0.0f);
}

TEST(Fp8E4M3, RoundTripIsIdempotent) {
  spikestream::common::Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const auto x = static_cast<float>(rng.normal(0.0, 2.0));
    const float q1 = sc::quantize(x, sc::FpFormat::FP8);
    const float q2 = sc::quantize(q1, sc::FpFormat::FP8);
    EXPECT_EQ(q1, q2) << "x=" << x;
  }
}

TEST(Fp8E5M2, KnownValues) {
  EXPECT_EQ(sc::fp32_to_fp8_e5m2_bits(1.0f), 0x3C);
  EXPECT_EQ(sc::fp32_to_fp8_e5m2_bits(-4.0f), 0xC4);
  EXPECT_FLOAT_EQ(sc::fp8_e5m2_bits_to_fp32(0x3C), 1.0f);
}

TEST(Fp8E5M2, OverflowToInf) {
  EXPECT_TRUE(std::isinf(
      sc::fp8_e5m2_bits_to_fp32(sc::fp32_to_fp8_e5m2_bits(1e9f))));
}

TEST(Formats, ErrorBoundedByHalfUlp) {
  spikestream::common::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto x = static_cast<float>(rng.uniform(0.5, 1.0));  // one binade
    // fp16: 10 mantissa bits -> ulp = 2^-11 in [0.5, 1).
    EXPECT_NEAR(sc::quantize(x, sc::FpFormat::FP16), x,
                std::ldexp(1.0f, -12) + 1e-9);
    // e4m3: 3 mantissa bits -> ulp = 2^-4 in [0.5, 1).
    EXPECT_NEAR(sc::quantize(x, sc::FpFormat::FP8), x,
                std::ldexp(1.0f, -5) + 1e-9);
  }
}

TEST(Formats, SimdLanesAndBytes) {
  EXPECT_EQ(sc::simd_lanes(sc::FpFormat::FP64), 1);
  EXPECT_EQ(sc::simd_lanes(sc::FpFormat::FP32), 2);
  EXPECT_EQ(sc::simd_lanes(sc::FpFormat::FP16), 4);
  EXPECT_EQ(sc::simd_lanes(sc::FpFormat::FP8), 8);
  EXPECT_EQ(sc::fp_bytes(sc::FpFormat::FP16) * sc::simd_lanes(sc::FpFormat::FP16), 8);
  EXPECT_EQ(sc::fp_bytes(sc::FpFormat::FP8) * sc::simd_lanes(sc::FpFormat::FP8), 8);
}
