// Data-integrity subsystem contract (common/simd CRC32C, arch ECC model,
// runtime/integrity.hpp seals, and the hardened serving path):
//   * crc32c matches the published Castagnoli check value, chains exactly
//     (crc(a||b) == crc(b, crc(a))), and every SIMD tier returns the same
//     checksum as the table reference on randomized buffers;
//   * the SEC-DED ECC overlay is off by default (bit-exact historical cycles
//     and energy) and, when enabled, adds itemized check/scrub cycles plus
//     closed-form expected corrected / uncorrectable counts;
//   * the flip primitives are involutive (a second identical flip restores
//     the buffer), which is what makes injected SDC retry-recoverable;
//   * the server detects weight and spike-payload flips on its sealed
//     boundaries, retries to a bit-identical completion, publishes
//     kCorrupted only when mismatches persist through every retry, catches
//     membrane flips with redundant-lane execution, and keeps the
//     conservation invariant admitted == completed + timed_out + errored +
//     corrupted under every mode.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "runtime/engine.hpp"
#include "runtime/integrity.hpp"
#include "runtime/multistep.hpp"
#include "runtime/server.hpp"
#include "snn/calibrate.hpp"
#include "snn/input_gen.hpp"

namespace {

namespace rt = spikestream::runtime;
namespace k = spikestream::kernels;
namespace snn = spikestream::snn;
namespace sc = spikestream::common;
namespace simd = spikestream::common::simd;

snn::Network test_net() {
  snn::Network net = snn::Network::make_tiny(18, 3, 32, 10);
  sc::Rng rng(42);
  net.init_weights(rng);
  const auto calib = snn::make_batch(4, 7, 16, 16, 3);
  const std::vector<double> targets = {0.20, 0.15, 0.30};
  snn::calibrate_thresholds(net, calib, targets);
  return net;
}

rt::BackendConfig sharded(int clusters) {
  rt::BackendConfig b;
  b.kind = rt::BackendKind::kSharded;
  b.clusters = clusters;
  b.shard_threads = false;
  return b;
}

std::uint32_t crc_of(const std::string& s, std::uint32_t seed = 0) {
  return simd::crc32c(s.data(), s.size(), seed);
}

}  // namespace

TEST(Crc32c, MatchesPublishedVectorsAndChains) {
  // The canonical CRC32C check value (RFC 3720 appendix / every published
  // implementation): crc32c("123456789") == 0xE3069283.
  EXPECT_EQ(crc_of("123456789"), 0xE3069283u);
  EXPECT_EQ(crc_of(""), 0u);
  // 32 zero bytes, another standard vector.
  const std::string zeros(32, '\0');
  EXPECT_EQ(crc_of(zeros), 0x8A9136AAu);

  // Chaining identity at every split point of a buffer.
  const std::string msg = "spikestream integrity chaining identity test!";
  const std::uint32_t whole = crc_of(msg);
  for (std::size_t cut = 0; cut <= msg.size(); ++cut) {
    const std::uint32_t chained =
        crc_of(msg.substr(cut), crc_of(msg.substr(0, cut)));
    EXPECT_EQ(chained, whole) << "split at " << cut;
  }
}

TEST(Crc32c, AllTiersMatchTableReferenceOnRandomBuffers) {
  sc::Rng rng(7);
  // Sizes straddle every dispatch boundary: sub-word tails, the single-chain
  // range, and buffers large enough for the 3-stream interleave + combine.
  const std::vector<std::size_t> sizes = {0,  1,  7,   8,   9,   63,  64,
                                          65, 191, 192, 193, 1000, 4096, 12345};
  for (const std::size_t n : sizes) {
    std::vector<std::uint8_t> buf(n);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
    simd::force_crc_tier(simd::CrcTier::kTable);
    ASSERT_EQ(simd::crc_active(), simd::CrcTier::kTable);
    const std::uint32_t ref = simd::crc32c(buf.data(), buf.size());
    const std::uint32_t ref_seeded =
        simd::crc32c(buf.data(), buf.size(), 0xDEADBEEFu);
    for (const auto tier : {simd::CrcTier::kHw, simd::CrcTier::kHw3}) {
      const simd::CrcTier got = simd::force_crc_tier(tier);
      // On hosts without SSE4.2 the force clamps to the table tier — the
      // comparison is then trivially true, which is exactly the contract.
      EXPECT_EQ(got, simd::crc_active());
      EXPECT_EQ(simd::crc32c(buf.data(), buf.size()), ref)
          << simd::crc_tier_name(tier) << " size " << n;
      EXPECT_EQ(simd::crc32c(buf.data(), buf.size(), 0xDEADBEEFu), ref_seeded)
          << simd::crc_tier_name(tier) << " seeded, size " << n;
    }
  }
  simd::force_crc_tier(simd::crc_max_supported());  // restore for other tests
}

TEST(EccModel, OffByDefaultBitExactAndEnabledAddsItemizedOverhead) {
  const snn::Network net = test_net();
  const auto img = snn::make_batch(1, 11, 16, 16, 3)[0];

  k::RunOptions base;  // ecc.enabled defaults to false
  k::RunOptions ecc_on = base;
  ecc_on.cost.dram.ecc.enabled = true;
  ecc_on.cost.dram.ecc.ber = 1e-6;  // scaled up so expectations are visible
  k::RunOptions ecc_off = ecc_on;
  ecc_off.cost.dram.ecc.enabled = false;

  rt::InferenceEngine e_base(net, base);
  rt::InferenceEngine e_on(net, ecc_on);
  rt::InferenceEngine e_off(net, ecc_off);
  const rt::InferenceResult r_base = e_base.run(img);
  const rt::InferenceResult r_on = e_on.run(img);
  const rt::InferenceResult r_off = e_off.run(img);

  // The master switch is the whole story: enabled=false is bit-exact with
  // the historical numbers whatever the other knobs say.
  EXPECT_EQ(r_off.total_cycles, r_base.total_cycles);
  EXPECT_EQ(r_off.total_energy_mj, r_base.total_energy_mj);

  EXPECT_GT(r_on.total_cycles, r_base.total_cycles)
      << "ECC checks must cost cycles";
  EXPECT_GT(r_on.total_energy_mj, r_base.total_energy_mj)
      << "checked codewords are priced by the energy model";

  double words = 0, corrected = 0, uncorrectable = 0, ecc_cycles = 0;
  for (const auto& lm : r_on.layers) {
    words += lm.stats.ecc_words;
    corrected += lm.stats.ecc_corrected;
    uncorrectable += lm.stats.ecc_uncorrectable;
    ecc_cycles += lm.stats.ecc_cycles;
    // The itemization reconstructs protected-minus-unprotected exactly.
    EXPECT_GE(lm.stats.cycles, lm.stats.ecc_cycles);
  }
  EXPECT_GT(words, 0.0);
  EXPECT_GT(corrected, 0.0);
  EXPECT_GT(uncorrectable, 0.0);
  EXPECT_LT(uncorrectable, corrected)
      << "double-bit events must be quadratically rarer than single-bit";
  EXPECT_NEAR(r_on.total_cycles - r_base.total_cycles, ecc_cycles,
              1e-6 * r_on.total_cycles);
  for (const auto& lm : r_base.layers) {
    EXPECT_EQ(lm.stats.ecc_words, 0.0);
    EXPECT_EQ(lm.stats.ecc_cycles, 0.0);
  }

  // Spikes are untouched either way: ECC is a timing/energy overlay.
  EXPECT_EQ(r_on.final_output.v, r_base.final_output.v);

  // Closed-form expectation helpers.
  spikestream::arch::EccConfig cfg;
  cfg.ber = 1e-9;
  EXPECT_DOUBLE_EQ(cfg.expected_corrected(1000.0), 1000.0 * 72.0 * 1e-9);
  EXPECT_DOUBLE_EQ(cfg.expected_uncorrectable(1000.0),
                   1000.0 * (72.0 * 71.0 / 2.0) * 1e-18);

  // Scrub modeling: disabling the background scrub must shrink the overlay.
  k::RunOptions no_scrub = ecc_on;
  no_scrub.cost.dram.ecc.scrub_interval_cycles = 0;
  rt::InferenceEngine e_ns(net, no_scrub);
  const rt::InferenceResult r_ns = e_ns.run(img);
  EXPECT_LT(r_ns.total_cycles, r_on.total_cycles);
  EXPECT_GT(r_ns.total_cycles, r_base.total_cycles);
}

TEST(IntegrityPrimitives, FlipsAreInvolutiveAndSealsCatchThem) {
  snn::Network net = test_net();
  // Quantize-free direct manipulation: build the half image so the weight
  // flip exercises the dual-representation path.
  snn::LayerWeights& w = net.weights(1);
  w.build_half();
  const rt::Seal clean = rt::seal_weights(w);
  rt::flip_weight_bit(w, /*bit=*/12345);
  EXPECT_NE(rt::seal_weights(w), clean) << "a 1-bit flip must change the seal";
  rt::flip_weight_bit(w, 12345);
  EXPECT_EQ(rt::seal_weights(w), clean) << "the flip must be involutive";

  snn::SpikeMap m(4, 4, 2);
  m.v.assign(m.v.size(), 0);
  m.v[3] = 1;
  const rt::Seal sm = rt::seal_spikes(m);
  rt::flip_spike_byte(m, 35);  // 35 % 32 == 3: toggles the set spike off
  EXPECT_EQ(m.v[3], 0);
  EXPECT_NE(rt::seal_spikes(m), sm);
  rt::flip_spike_byte(m, 35);
  EXPECT_EQ(rt::seal_spikes(m), sm);

  snn::Tensor t(2, 2, 2);
  t.v.assign(t.v.size(), 0.0f);
  const rt::Seal st = rt::seal_tensor(t);
  rt::flip_membrane_bit(t, 64 + 30);  // element 2, exponent MSB
  EXPECT_NE(t.v[2], 0.0f);
  EXPECT_NE(rt::seal_tensor(t), st);
  rt::flip_membrane_bit(t, 64 + 30);
  EXPECT_EQ(rt::seal_tensor(t), st);

  EXPECT_STREQ(rt::seal_point_name(rt::SealPoint::kHandoff), "handoff");
  EXPECT_STREQ(rt::fault_kind_name(rt::FaultKind::kWeightBitFlip),
               "weight-bit-flip");
}

namespace {

/// Run a one-wave burst through a server and return the baseline offline
/// results for the same images.
std::vector<rt::MultiStepResult> offline_baseline(
    const snn::Network& net, const k::RunOptions& opt,
    const std::vector<snn::Tensor>& images, int steps) {
  std::vector<rt::MultiStepResult> out;
  rt::InferenceEngine ref(net, opt, sharded(4));
  snn::NetworkState st = ref.make_state();
  for (const auto& img : images) {
    out.push_back(rt::run_timesteps(ref, st, img, steps));
  }
  return out;
}

}  // namespace

TEST(IntegrityServer, WeightFlipDetectedAndRetriedBitIdentical) {
  const snn::Network net = test_net();
  const auto images = snn::make_batch(2, 51, 16, 16, 3);
  constexpr int kSteps = 2;
  k::RunOptions opt;
  opt.segment_major_lanes = 2;
  const auto offline = offline_baseline(net, opt, images, kSteps);

  rt::ServerConfig scfg;
  scfg.timesteps = kSteps;
  scfg.adaptive_wave = false;
  scfg.max_queue_delay_us = 200000;
  scfg.retry_backoff_us = 10;
  scfg.integrity.checksum_weights = true;
  // Sign-bit flip in layer 1's weights, first attempt of wave 0 only.
  scfg.faults.flip_weight(/*layer=*/1, /*bit=*/16 * 40 + 15, /*wave=*/0);
  rt::InferenceServer server(net, opt, sharded(4), scfg);

  std::vector<rt::ServeRequest> reqs(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    reqs[i].image = &images[i];
    ASSERT_TRUE(server.submit(reqs[i]));
  }
  for (std::size_t i = 0; i < images.size(); ++i) {
    ASSERT_TRUE(reqs[i].wait()) << "detected corruption must retry, not fail";
    EXPECT_EQ(reqs[i].result.spike_counts, offline[i].spike_counts)
        << "the clean retry must be bit-identical to an unfaulted run";
    EXPECT_EQ(reqs[i].result.total_cycles, offline[i].total_cycles);
  }
  server.stop();

  const rt::ServerStats st = server.stats();
  EXPECT_EQ(st.completed, images.size());
  EXPECT_EQ(st.corrupted, 0u);
  EXPECT_EQ(st.errored, 0u);
  EXPECT_GE(st.integrity_mismatches, 1u);
  EXPECT_GE(st.integrity_faults, 1u);
  EXPECT_GE(st.wave_retries, 1u);
  EXPECT_GE(st.data_faults_injected, 1u);
  EXPECT_GT(st.integrity_checks, st.integrity_mismatches);
  EXPECT_GT(st.crc_sealed_bytes, 0u);
  EXPECT_GT(st.crc_cycles, 0.0);
}

TEST(IntegrityServer, SpikeFlipDetectedAtHandoffAndSealsPublished) {
  const snn::Network net = test_net();
  const auto images = snn::make_batch(2, 53, 16, 16, 3);
  constexpr int kSteps = 2;
  k::RunOptions opt;
  opt.segment_major_lanes = 2;
  const auto offline = offline_baseline(net, opt, images, kSteps);

  rt::ServerConfig scfg;
  scfg.timesteps = kSteps;
  scfg.adaptive_wave = false;
  scfg.max_queue_delay_us = 200000;
  scfg.retry_backoff_us = 10;
  scfg.integrity.checksum_spikes = true;
  scfg.faults.flip_spikes(/*layer=*/0, /*byte=*/17, /*wave=*/0, /*lane=*/1);
  rt::InferenceServer server(net, opt, sharded(4), scfg);

  std::vector<rt::ServeRequest> reqs(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    reqs[i].image = &images[i];
    ASSERT_TRUE(server.submit(reqs[i]));
  }
  for (std::size_t i = 0; i < images.size(); ++i) {
    ASSERT_TRUE(reqs[i].wait());
    EXPECT_EQ(reqs[i].result.spike_counts, offline[i].spike_counts);
  }
  server.stop();

  // Completion seal: recompute the chained per-timestep output CRC from the
  // offline path and require the published seal to match exactly.
  {
    rt::InferenceEngine ref(net, opt, sharded(4));
    for (std::size_t i = 0; i < images.size(); ++i) {
      snn::NetworkState state = ref.make_state();
      std::uint32_t crc = 0;
      std::uint64_t bytes = 0;
      rt::InferenceResult step;
      for (int t = 0; t < kSteps; ++t) {
        ref.run(images[i], state, step);
        crc = simd::crc32c(step.final_output.v.data(),
                           step.final_output.v.size(), crc);
        bytes += step.final_output.v.size();
      }
      EXPECT_EQ(reqs[i].result_seal.crc, crc) << "lane " << i;
      EXPECT_EQ(reqs[i].result_seal.bytes, bytes);
    }
  }

  const rt::ServerStats st = server.stats();
  EXPECT_EQ(st.completed, images.size());
  EXPECT_EQ(st.corrupted, 0u);
  EXPECT_GE(st.integrity_mismatches, 1u);
  EXPECT_GE(st.wave_retries, 1u);
  EXPECT_GE(st.data_faults_injected, 1u);
}

TEST(IntegrityServer, MembraneFlipEscapesChecksumsButRedundancyCatchesIt) {
  const snn::Network net = test_net();
  const auto images = snn::make_batch(2, 57, 16, 16, 3);
  constexpr int kSteps = 2;
  k::RunOptions opt;
  opt.segment_major_lanes = 2;
  const auto offline = offline_baseline(net, opt, images, kSteps);

  // Exponent-MSB flip in the output layer's membrane: 0.0 becomes 2.0, far
  // above the calibrated threshold, so the corrupted output neuron fires
  // spuriously at t=0 — guaranteed functional corruption of the served
  // spike counts.
  rt::FaultPlan flip;
  flip.flip_membrane(/*layer=*/2, /*bit=*/30, /*wave=*/0, /*lane=*/0);

  // Unprotected: the corruption completes "successfully" and serves a wrong
  // answer — the silent-escape baseline the seals exist to kill.
  {
    rt::ServerConfig scfg;
    scfg.timesteps = kSteps;
    scfg.adaptive_wave = false;
    scfg.max_queue_delay_us = 200000;
    scfg.faults = flip;
    rt::InferenceServer server(net, opt, sharded(4), scfg);
    std::vector<rt::ServeRequest> reqs(images.size());
    for (std::size_t i = 0; i < images.size(); ++i) {
      reqs[i].image = &images[i];
      ASSERT_TRUE(server.submit(reqs[i]));
    }
    for (auto& r : reqs) ASSERT_TRUE(r.wait());
    server.stop();
    const rt::ServerStats st = server.stats();
    EXPECT_EQ(st.integrity_mismatches, 0u) << "nothing watches this path";
    EXPECT_GE(st.data_faults_injected, 1u);
    EXPECT_NE(reqs[0].result.spike_counts, offline[0].spike_counts)
        << "the unprotected flip must corrupt the served result silently";
  }

  // Redundant-lane mode: the shadow pass never sees the (primary-only)
  // injection, the output seals diverge, the wave retries and completes
  // bit-identical.
  {
    rt::ServerConfig scfg;
    scfg.timesteps = kSteps;
    scfg.adaptive_wave = false;
    scfg.max_queue_delay_us = 200000;
    scfg.retry_backoff_us = 10;
    scfg.integrity.redundant_lanes = true;
    scfg.faults = flip;
    rt::InferenceServer server(net, opt, sharded(4), scfg);
    std::vector<rt::ServeRequest> reqs(images.size());
    for (std::size_t i = 0; i < images.size(); ++i) {
      reqs[i].image = &images[i];
      ASSERT_TRUE(server.submit(reqs[i]));
    }
    for (std::size_t i = 0; i < images.size(); ++i) {
      ASSERT_TRUE(reqs[i].wait());
      EXPECT_EQ(reqs[i].result.spike_counts, offline[i].spike_counts)
          << "redundancy must turn the silent escape into a clean retry";
    }
    server.stop();
    const rt::ServerStats st = server.stats();
    EXPECT_GE(st.integrity_mismatches, 1u);
    EXPECT_GE(st.redundant_waves, 1u);
    EXPECT_EQ(st.corrupted, 0u);
  }
}

TEST(IntegrityServer, PerRequestRedundantOptInAndCleanWaveNoFalsePositive) {
  const snn::Network net = test_net();
  const auto images = snn::make_batch(2, 59, 16, 16, 3);
  k::RunOptions opt;
  opt.segment_major_lanes = 2;
  const auto offline = offline_baseline(net, opt, images, 1);

  rt::ServerConfig scfg;
  scfg.adaptive_wave = false;
  scfg.max_queue_delay_us = 200000;
  // No global redundancy, no faults: the request-level opt-in alone must
  // trigger the shadow pass, and a clean wave must never mismatch.
  rt::InferenceServer server(net, opt, sharded(4), scfg);

  std::vector<rt::ServeRequest> reqs(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    reqs[i].image = &images[i];
    reqs[i].redundant = (i == 0);
    ASSERT_TRUE(server.submit(reqs[i]));
  }
  for (std::size_t i = 0; i < images.size(); ++i) {
    ASSERT_TRUE(reqs[i].wait());
    EXPECT_EQ(reqs[i].result.spike_counts, offline[i].spike_counts);
  }
  server.stop();

  const rt::ServerStats st = server.stats();
  EXPECT_GE(st.redundant_waves, 1u) << "one opted-in lane makes the wave run "
                                       "redundantly";
  EXPECT_EQ(st.integrity_mismatches, 0u)
      << "a deterministic engine must never diverge from its own shadow";
  EXPECT_EQ(st.corrupted, 0u);
  EXPECT_EQ(st.wave_retries, 0u);
}

TEST(IntegrityServer, PersistentCorruptionEndsInCorruptedNotError) {
  const snn::Network net = test_net();
  const auto images = snn::make_batch(2, 61, 16, 16, 3);
  k::RunOptions opt;
  opt.segment_major_lanes = 2;

  rt::ServerConfig scfg;
  scfg.adaptive_wave = false;
  scfg.max_queue_delay_us = 200000;
  scfg.max_wave_retries = 1;  // 2 attempts vs 5 scheduled corrupt attempts
  scfg.retry_backoff_us = 10;
  scfg.integrity.checksum_weights = true;
  scfg.faults.flip_weight(/*layer=*/1, /*bit=*/15, /*wave=*/0, /*failures=*/5);
  rt::InferenceServer server(net, opt, sharded(4), scfg);

  std::vector<rt::ServeRequest> doomed(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    doomed[i].image = &images[i];
    ASSERT_TRUE(server.submit(doomed[i]));
  }
  for (auto& r : doomed) {
    EXPECT_FALSE(r.wait());
    EXPECT_EQ(r.state.load(), rt::ServeRequest::kCorrupted)
        << "persistent detected corruption is kCorrupted, not kError";
  }

  // Containment + recovery: the injected flips were undone after every
  // attempt, so the very next wave must serve clean results.
  const auto offline = offline_baseline(net, opt, images, 1);
  std::vector<rt::ServeRequest> healthy(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    healthy[i].image = &images[i];
    ASSERT_TRUE(server.submit(healthy[i]));
  }
  for (std::size_t i = 0; i < images.size(); ++i) {
    ASSERT_TRUE(healthy[i].wait());
    EXPECT_EQ(healthy[i].result.spike_counts, offline[i].spike_counts)
        << "weights must be pristine again after the corrupted wave";
  }
  server.stop();

  const rt::ServerStats st = server.stats();
  EXPECT_EQ(st.admitted, 4u);
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.corrupted, 2u);
  EXPECT_EQ(st.errored, 0u);
  EXPECT_EQ(st.admitted,
            st.completed + st.timed_out + st.errored + st.corrupted)
      << "conservation must hold with the corrupted terminal state";
  EXPECT_EQ(st.wave_errors, 1u);
  EXPECT_EQ(st.integrity_faults, 2u);  // both attempts detected
}

TEST(IntegrityServer, ProtectionOffIsBitExactWithHistoricalServing) {
  // The whole subsystem dark: stats stay zero, results and modeled cycles
  // match the offline path exactly — nothing pays for what it doesn't use.
  const snn::Network net = test_net();
  const auto images = snn::make_batch(2, 67, 16, 16, 3);
  k::RunOptions opt;
  opt.segment_major_lanes = 2;
  const auto offline = offline_baseline(net, opt, images, 1);

  rt::ServerConfig scfg;
  scfg.adaptive_wave = false;
  scfg.max_queue_delay_us = 200000;
  rt::InferenceServer server(net, opt, sharded(4), scfg);
  std::vector<rt::ServeRequest> reqs(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    reqs[i].image = &images[i];
    ASSERT_TRUE(server.submit(reqs[i]));
  }
  for (std::size_t i = 0; i < images.size(); ++i) {
    ASSERT_TRUE(reqs[i].wait());
    EXPECT_EQ(reqs[i].result.spike_counts, offline[i].spike_counts);
    EXPECT_EQ(reqs[i].result.total_cycles, offline[i].total_cycles);
    EXPECT_EQ(reqs[i].result_seal.bytes, 0u) << "no seal is computed dark";
  }
  server.stop();

  const rt::ServerStats st = server.stats();
  EXPECT_EQ(st.integrity_checks, 0u);
  EXPECT_EQ(st.crc_sealed_bytes, 0u);
  EXPECT_EQ(st.crc_cycles, 0.0);
  EXPECT_EQ(st.redundant_waves, 0u);
}
