// Direct properties of the cost model functions: monotonicity, asymptotic
// limits, regime boundaries, and parameter sensitivities. These pin down the
// analytic behaviour that the layer kernels and benches build on.
#include <gtest/gtest.h>

#include "kernels/cost_model.hpp"

namespace k = spikestream::kernels;

TEST(CostModel, BaselineLinearInStreamLength) {
  const k::CostParams p;
  const double c10 = k::baseline_spva_cycles(p, 10);
  const double c20 = k::baseline_spva_cycles(p, 20);
  const double c40 = k::baseline_spva_cycles(p, 40);
  EXPECT_DOUBLE_EQ(c40 - c20, 2 * (c20 - c10));
  EXPECT_DOUBLE_EQ(c20 - c10, 10 * p.baseline_elem_cycles);
  EXPECT_DOUBLE_EQ(k::baseline_spva_cycles(p, 0), p.baseline_spva_overhead);
}

TEST(CostModel, StreamRegimeBoundary) {
  const k::CostParams p;
  // Below the boundary the cost is flat at ss_setup; above, it grows at the
  // accumulation II.
  const double boundary = (p.ss_setup - p.ss_residue) / p.fadd_latency;
  const double below = k::spikestream_spva_cycles(p, boundary * 0.5, 1.0);
  EXPECT_DOUBLE_EQ(below, p.ss_setup);
  const double above1 = k::spikestream_spva_cycles(p, boundary * 2.0, 1.0);
  const double above2 = k::spikestream_spva_cycles(p, boundary * 2.0 + 1, 1.0);
  EXPECT_DOUBLE_EQ(above2 - above1, p.fadd_latency);
}

TEST(CostModel, SpeedupApproachesElemRatioForLongStreams) {
  const k::CostParams p;
  const double s = 1e6;
  const double speedup = k::baseline_spva_cycles(p, s) /
                         k::spikestream_spva_cycles(p, s, 1.0);
  EXPECT_NEAR(speedup, p.baseline_elem_cycles / p.fadd_latency, 0.01);
}

TEST(CostModel, StretchIncreasesStreamTimeOnly) {
  const k::CostParams p;
  const double s = 100;
  const double c1 = k::spikestream_spva_cycles(p, s, 1.0);
  const double c2 = k::spikestream_spva_cycles(p, s, 1.1);
  EXPECT_NEAR(c2 / c1, 1.1, 0.01);
  // Setup-bound SpVAs are insensitive to conflicts.
  EXPECT_DOUBLE_EQ(k::spikestream_spva_cycles(p, 2, 1.0),
                   k::spikestream_spva_cycles(p, 2, 1.2));
}

TEST(CostModel, DenseIIReflectsAccumulators) {
  k::CostParams p;
  p.fmadd_latency = 3;
  p.dense_accumulators = 2;
  EXPECT_DOUBLE_EQ(p.dense_ii(), 1.5);
  p.dense_accumulators = 1;
  EXPECT_DOUBLE_EQ(p.dense_ii(), 3.0);
  p.dense_accumulators = 4;
  EXPECT_DOUBLE_EQ(p.dense_ii(), 1.0);  // floor at one op per cycle
}

TEST(CostModel, ConflictStretchProperties) {
  const k::CostParams p;
  // Identity at zero load, monotone in both load and cores, bounded for the
  // paper's operating point (8 cores, 32 banks).
  EXPECT_DOUBLE_EQ(p.conflict_stretch(0.0, 8), 1.0);
  double prev = 1.0;
  for (double rate : {0.1, 0.3, 0.6, 1.0}) {
    const double s = p.conflict_stretch(rate, 8);
    EXPECT_GE(s, prev);
    prev = s;
  }
  EXPECT_LT(p.conflict_stretch(0.625, 8), 1.15);
  EXPECT_GT(p.conflict_stretch(1.0, 32), p.conflict_stretch(1.0, 8));
}

TEST(CostModel, ActivationScalesWithLanesAndSpikes) {
  const k::CostParams p;
  const double a0 = k::activation_cycles(p, 4, 0, false);
  const double a2 = k::activation_cycles(p, 4, 2, false);
  EXPECT_DOUBLE_EQ(a2 - a0, 2 * p.act_per_spike);
  const double a8 = k::activation_cycles(p, 8, 0, false);
  EXPECT_DOUBLE_EQ(a8 - a0, 4 * p.act_per_lane);
  EXPECT_GT(k::activation_cycles(p, 8, 0, true), a8);  // FP8 unpack extra
}

TEST(CostModel, UtilizationCeilings) {
  const k::CostParams p;
  const double s = 1e7;
  // Indirect SpVA: 1 / fadd_latency.
  EXPECT_NEAR(s / k::spikestream_spva_cycles(p, s, 1.0),
              1.0 / p.fadd_latency, 1e-3);
  // Dense dot with 2 accumulators: 1 / 1.5.
  EXPECT_NEAR(s / k::spikestream_dense_dot_cycles(p, s, 1.0),
              1.0 / p.dense_ii(), 1e-3);
  // Baseline: 1 / 11.
  EXPECT_NEAR(s / k::baseline_spva_cycles(p, s),
              1.0 / p.baseline_elem_cycles, 1e-3);
}
