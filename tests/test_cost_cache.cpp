// Cost-model memoization contract: the memoized timing mode must (1) never
// change spikes — the functional pass always runs exactly; (2) actually hit
// its cache on repeated timesteps / similar samples; (3) keep cycle counts
// within the bucket-width deviation bound of the exact mode; (4) stay
// completely off by default (exact-mode escape hatch).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "runtime/batch.hpp"
#include "runtime/engine.hpp"
#include "snn/calibrate.hpp"
#include "snn/input_gen.hpp"

namespace {

namespace rt = spikestream::runtime;
namespace k = spikestream::kernels;
namespace snn = spikestream::snn;
namespace sc = spikestream::common;

snn::Network test_net() {
  snn::Network net = snn::Network::make_tiny(18, 3, 32, 10);
  sc::Rng rng(42);
  net.init_weights(rng);
  const auto calib = snn::make_batch(4, 7, 16, 16, 3);
  const std::vector<double> targets = {0.20, 0.15, 0.30};
  snn::calibrate_thresholds(net, calib, targets);
  return net;
}

const rt::AnalyticalBackend& analytical_of(const rt::InferenceEngine& e) {
  return dynamic_cast<const rt::AnalyticalBackend&>(e.backend());
}

}  // namespace

TEST(CostCache, OffByDefault) {
  const rt::InferenceEngine engine(test_net(), k::RunOptions{});
  const auto& be = analytical_of(engine);
  EXPECT_FALSE(be.memoized());
  EXPECT_EQ(be.cost_cache_hits(), 0u);
  EXPECT_EQ(be.cost_cache_misses(), 0u);
}

TEST(CostCache, SpikesBitIdenticalAndCyclesBounded) {
  const snn::Network net = test_net();
  const auto images = snn::make_batch(4, 99, 16, 16, 3);
  k::RunOptions opt;
  const rt::InferenceEngine exact(net, opt);
  rt::BackendConfig memo_cfg;
  memo_cfg.memoize_cost = true;
  const rt::InferenceEngine memo(net, opt, memo_cfg);

  double worst_layer_dev = 0, worst_total_dev = 0;
  for (const auto& img : images) {
    snn::NetworkState se = exact.make_state();
    snn::NetworkState sm = memo.make_state();
    for (int t = 0; t < 3; ++t) {
      const auto re = exact.run(img, se);
      const auto rm = memo.run(img, sm);
      // The functional pass always runs exactly: spikes are bit-identical.
      ASSERT_EQ(re.final_output.v, rm.final_output.v);
      // Cycle deviation is bounded by the occupancy-bucket width.
      ASSERT_EQ(re.layers.size(), rm.layers.size());
      for (std::size_t l = 0; l < re.layers.size(); ++l) {
        const double e = re.layers[l].stats.cycles;
        ASSERT_GT(e, 0.0);
        worst_layer_dev = std::max(
            worst_layer_dev, std::abs(rm.layers[l].stats.cycles - e) / e);
      }
      worst_total_dev =
          std::max(worst_total_dev,
                   std::abs(rm.total_cycles - re.total_cycles) /
                       re.total_cycles);
    }
  }
  // ~12% occupancy buckets; cycles scale sub-linearly in occupancy, but give
  // headroom for activation-dominated layers.
  EXPECT_LT(worst_layer_dev, 0.30);
  EXPECT_LT(worst_total_dev, 0.15);

  const auto& be = analytical_of(memo);
  EXPECT_TRUE(be.memoized());
  // 4 samples x 3 timesteps x 3 layers = 36 layer runs. Random samples on
  // this tiny net spread occupancies across buckets; the per-layer occupancy
  // EMA snaps edge-jitter onto one key, which lifted the hit rate from 18/36
  // to 21/36 on this workload — pin that it does not regress below the
  // pre-EMA level (S-VGG11-sized workloads hit far more, see
  // bench/host_profile).
  EXPECT_EQ(be.cost_cache_hits() + be.cost_cache_misses(), 36u);
  EXPECT_GE(be.cost_cache_hits(), 19u);
}

TEST(CostCache, IdenticalInputsHitExactly) {
  // The same image at a converged membrane state produces identical
  // occupancies, so every layer after the first run must hit.
  const snn::Network net = test_net();
  const auto img = snn::make_batch(1, 5, 16, 16, 3)[0];
  k::RunOptions opt;
  rt::BackendConfig cfg;
  cfg.memoize_cost = true;
  const rt::InferenceEngine engine(net, opt, cfg);
  snn::NetworkState state = engine.make_state();
  (void)engine.run(img, state);
  const auto& be = analytical_of(engine);
  const std::size_t misses_after_first = be.cost_cache_misses();
  snn::NetworkState fresh = engine.make_state();
  (void)engine.run(img, fresh);  // identical occupancies: all hits
  EXPECT_EQ(be.cost_cache_misses(), misses_after_first);
  EXPECT_GE(be.cost_cache_hits(), net.num_layers());
}

TEST(CostCache, MemoizedCycleAccurateStaysWithinIssBand) {
  const snn::Network net = test_net();
  const auto img = snn::make_batch(1, 11, 16, 16, 3)[0];
  k::RunOptions opt;
  const rt::InferenceEngine analytical(net, opt);
  rt::BackendConfig cfg;
  cfg.kind = rt::BackendKind::kCycleAccurate;
  cfg.memoize_cost = true;
  const rt::InferenceEngine cycle(net, opt, cfg);
  snn::NetworkState sa = analytical.make_state();
  snn::NetworkState sc_ = cycle.make_state();
  for (int t = 0; t < 2; ++t) {
    const auto ra = analytical.run(img, sa);
    const auto rc = cycle.run(img, sc_);
    ASSERT_EQ(ra.final_output.v, rc.final_output.v);
    const double ratio = rc.total_cycles / ra.total_cycles;
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 1.8);
  }
}

TEST(CostCache, BatchRunnerMemoizedSpikeParity) {
  const snn::Network net = test_net();
  const auto images = snn::make_batch(3, 41, 16, 16, 3);
  k::RunOptions opt;
  rt::BackendConfig memo_cfg;
  memo_cfg.memoize_cost = true;
  const rt::BatchRunner exact(net, opt, {}, {}, /*workers=*/2);
  const rt::BatchRunner memo(net, opt, memo_cfg, {}, /*workers=*/2);
  const auto re = exact.run(images, 2);
  const auto rm = memo.run(images, 2);
  for (std::size_t i = 0; i < images.size(); ++i) {
    EXPECT_EQ(re[i].spike_counts, rm[i].spike_counts) << "sample " << i;
  }
}
