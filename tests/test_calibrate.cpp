// Threshold calibration: targets should be hit on the calibration batch and
// generalize to held-out images.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "snn/calibrate.hpp"
#include "snn/input_gen.hpp"
#include "snn/network.hpp"
#include "snn/reference.hpp"

namespace snn = spikestream::snn;
namespace sc = spikestream::common;

TEST(Calibrate, HitsTargetRatesOnCalibrationBatch) {
  snn::Network net = snn::Network::make_tiny(12, 3, 8, 6);
  sc::Rng rng(1);
  net.init_weights(rng);
  const auto images = snn::make_batch(6, 55, 10, 10, 3);
  const std::vector<double> targets = {0.2, 0.15, 0.3};
  const auto achieved = snn::calibrate_thresholds(net, images, targets);
  ASSERT_EQ(achieved.size(), 3u);
  for (std::size_t l = 0; l < 3; ++l) {
    EXPECT_NEAR(achieved[l], targets[l], 0.05) << "layer " << l;
    EXPECT_GT(net.layer(l).lif.v_th, 0.0f);
  }
}

TEST(Calibrate, GeneralizesToHeldOutImages) {
  snn::Network net = snn::Network::make_tiny(12, 3, 8, 6);
  sc::Rng rng(2);
  net.init_weights(rng);
  const auto calib = snn::make_batch(8, 10, 10, 10, 3);
  const std::vector<double> targets = {0.25, 0.2, 0.3};
  snn::calibrate_thresholds(net, calib, targets);

  const auto held_out = snn::make_batch(8, 999, 10, 10, 3);
  snn::Reference ref(net);
  sc::RunningStats rate_l0;
  for (const auto& img : held_out) {
    ref.reset();
    const auto& io = ref.step(img);
    rate_l0.add(snn::firing_rate(io[0].output));
  }
  EXPECT_NEAR(rate_l0.mean(), 0.25, 0.10);
}

TEST(Calibrate, MonotoneRateInThreshold) {
  // Property: raising v_th after calibration can only reduce the rate.
  snn::Network net = snn::Network::make_tiny(10, 3, 6, 4);
  sc::Rng rng(3);
  net.init_weights(rng);
  const auto images = snn::make_batch(4, 77, 8, 8, 3);
  const std::vector<double> mono_targets = {0.3, 0.2, 0.2};
  snn::calibrate_thresholds(net, images, mono_targets);

  auto rate_at = [&](float scale) {
    snn::Network n2 = net;
    n2.layer(0).lif.v_th *= scale;
    n2.layer(0).lif.v_rst = n2.layer(0).lif.v_th;
    snn::Reference ref(n2);
    double acc = 0;
    for (const auto& img : images) {
      ref.reset();
      acc += snn::firing_rate(ref.step(img)[0].output);
    }
    return acc / static_cast<double>(images.size());
  };
  EXPECT_GE(rate_at(0.5f), rate_at(1.0f) - 1e-9);
  EXPECT_GE(rate_at(1.0f), rate_at(2.0f) - 1e-9);
}

TEST(Calibrate, Svgg11ProfileDecreasingWithDepth) {
  const auto targets = snn::svgg11_target_rates();
  ASSERT_EQ(targets.size(), 8u);
  // Mid-network rates decrease with depth (the paper's sparsity trend),
  // and FC layers are extremely sparse.
  for (std::size_t l = 2; l + 2 < targets.size(); ++l) {
    EXPECT_GE(targets[l], targets[l + 1]) << l;
  }
  EXPECT_LE(targets[6], 0.06);
}
