// End-to-end inference engine: spike outputs must match the golden reference
// on the quantized network, and the aggregate metrics must show the paper's
// qualitative results (speedup, utilization jump, energy ordering).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "runtime/engine.hpp"
#include "snn/calibrate.hpp"
#include "snn/input_gen.hpp"
#include "snn/reference.hpp"

namespace rt = spikestream::runtime;
namespace k = spikestream::kernels;
namespace snn = spikestream::snn;
namespace sc = spikestream::common;

namespace {

snn::Network calibrated_tiny(std::uint64_t seed) {
  snn::Network net = snn::Network::make_tiny(12, 3, 16, 6);
  sc::Rng rng(seed);
  net.init_weights(rng);
  const auto calib = snn::make_batch(4, seed + 1, 10, 10, 3);
  const std::vector<double> targets = {0.25, 0.2, 0.3};
  snn::calibrate_thresholds(net, calib, targets);
  return net;
}

}  // namespace

TEST(Engine, MatchesReferenceOnQuantizedNetwork) {
  const snn::Network net = calibrated_tiny(31);
  for (auto fmt : {sc::FpFormat::FP32, sc::FpFormat::FP16, sc::FpFormat::FP8}) {
    for (auto variant : {k::Variant::kBaseline, k::Variant::kSpikeStream}) {
      k::RunOptions opt;
      opt.variant = variant;
      opt.fmt = fmt;
      rt::InferenceEngine eng(net, opt);
      // The reference must see the same quantized weights.
      snn::Network qnet = net;
      qnet.quantize_weights(fmt);
      snn::Reference ref(qnet);

      const auto images = snn::make_batch(2, 77, 10, 10, 3);
      for (const auto& img : images) {
        eng.reset();
        ref.reset();
        const auto res = eng.run(img);
        const auto& io = ref.step(img);
        ASSERT_EQ(res.layers.size(), io.size());
        EXPECT_EQ(res.final_output.v, io.back().output.v)
            << sc::fp_name(fmt) << "/" << k::variant_name(variant);
      }
    }
  }
}

TEST(Engine, PerLayerMetricsPopulated) {
  const snn::Network net = calibrated_tiny(32);
  k::RunOptions opt;
  rt::InferenceEngine eng(net, opt);
  const auto img = snn::make_batch(1, 5, 10, 10, 3)[0];
  const auto res = eng.run(img);
  ASSERT_EQ(res.layers.size(), 3u);
  for (const auto& m : res.layers) {
    EXPECT_GT(m.stats.cycles, 0.0) << m.name;
    EXPECT_GT(m.energy.total_mj(), 0.0) << m.name;
    EXPECT_GT(m.power_w, 0.01) << m.name;
    EXPECT_LT(m.power_w, 2.0) << m.name;
  }
  // Conv/FC layers carry compression footprints.
  EXPECT_GT(res.layers[1].csr_bytes, 0.0);
  EXPECT_GT(res.layers[1].aer_bytes, 0.0);
  EXPECT_GT(res.total_cycles, 0.0);
  EXPECT_GT(res.total_energy_mj, 0.0);
}

TEST(Engine, SpikeStreamBeatsBaselineEndToEnd) {
  const snn::Network net = calibrated_tiny(33);
  k::RunOptions base, ss;
  base.variant = k::Variant::kBaseline;
  ss.variant = k::Variant::kSpikeStream;
  rt::InferenceEngine eb(net, base), es(net, ss);
  const auto img = snn::make_batch(1, 6, 10, 10, 3)[0];
  const auto rb = eb.run(img);
  const auto rs = es.run(img);
  EXPECT_GT(rb.total_cycles / rs.total_cycles, 1.5);
  EXPECT_LT(rs.total_energy_mj, rb.total_energy_mj);
}

TEST(Engine, MembranePersistsAcrossTimestepsUntilReset) {
  const snn::Network net = calibrated_tiny(34);
  k::RunOptions opt;
  rt::InferenceEngine eng(net, opt);
  snn::Network qnet = net;
  qnet.quantize_weights(opt.fmt);
  snn::Reference ref(qnet);
  const auto img = snn::make_batch(1, 7, 10, 10, 3)[0];
  // Two consecutive timesteps without reset must track the reference's two
  // timesteps (membrane carry-over included).
  const auto r1 = eng.run(img);
  const auto& io1 = ref.step(img);
  EXPECT_EQ(r1.final_output.v, io1.back().output.v);
  const auto r2 = eng.run(img);
  const auto& io2 = ref.step(img);
  EXPECT_EQ(r2.final_output.v, io2.back().output.v);
}

TEST(Engine, Svgg11SingleImageAllLayersConsistent) {
  // One full S-VGG11 image through both variants: spikes must agree layer by
  // layer (same math, different timing models).
  snn::Network net = snn::Network::make_svgg11();
  sc::Rng rng(35);
  net.init_weights(rng);
  const auto calib = snn::make_batch(2, 99);
  snn::calibrate_thresholds(net, calib, snn::svgg11_target_rates());

  k::RunOptions base, ss;
  base.variant = k::Variant::kBaseline;
  base.fmt = sc::FpFormat::FP16;
  ss.variant = k::Variant::kSpikeStream;
  ss.fmt = sc::FpFormat::FP16;
  rt::InferenceEngine eb(net, base), es(net, ss);
  const auto img = snn::make_batch(1, 123)[0];
  const auto rb = eb.run(img);
  const auto rs = es.run(img);
  ASSERT_EQ(rb.layers.size(), 8u);
  for (std::size_t l = 0; l < 8; ++l) {
    EXPECT_DOUBLE_EQ(rb.layers[l].out_firing_rate, rs.layers[l].out_firing_rate)
        << "layer " << l;
    EXPECT_GT(rb.layers[l].stats.cycles, rs.layers[l].stats.cycles)
        << "layer " << l;
  }
  EXPECT_EQ(rb.final_output.v, rs.final_output.v);
  // End-to-end speedup in the paper's ballpark (4.39x e2e reported).
  const double speedup = rb.total_cycles / rs.total_cycles;
  EXPECT_GT(speedup, 3.0);
  EXPECT_LT(speedup, 7.5);
}
