// Memory system unit tests: address map, bank interleaving, arbitration
// epochs, conflict statistics, and bounds checking.
#include <gtest/gtest.h>

#include "arch/mem.hpp"

namespace arch = spikestream::arch;

TEST(Mem, AddressMapPredicates) {
  arch::Memory m;
  EXPECT_TRUE(m.is_tcdm(arch::kTcdmBase));
  EXPECT_TRUE(m.is_tcdm(arch::kTcdmBase + 128 * 1024 - 1));
  EXPECT_FALSE(m.is_tcdm(arch::kTcdmBase + 128 * 1024));
  EXPECT_FALSE(m.is_tcdm(arch::kGlobalBase));
  EXPECT_TRUE(m.is_global(arch::kGlobalBase));
  EXPECT_FALSE(m.is_global(arch::kTcdmBase));
}

TEST(Mem, BankInterleavingIs64BitWords) {
  arch::Memory m;
  EXPECT_EQ(m.bank_of(arch::kTcdmBase), 0);
  EXPECT_EQ(m.bank_of(arch::kTcdmBase + 7), 0);   // same word
  EXPECT_EQ(m.bank_of(arch::kTcdmBase + 8), 1);
  EXPECT_EQ(m.bank_of(arch::kTcdmBase + 8 * 31), 31);
  EXPECT_EQ(m.bank_of(arch::kTcdmBase + 8 * 32), 0);  // wraps
}

TEST(Mem, ArbitrationGrantsOnePerBankPerCycle) {
  arch::Memory m;
  m.begin_cycle();
  EXPECT_TRUE(m.request(arch::kTcdmBase));          // bank 0
  EXPECT_FALSE(m.request(arch::kTcdmBase + 4));     // bank 0 again: denied
  EXPECT_TRUE(m.request(arch::kTcdmBase + 8));      // bank 1: fine
  EXPECT_EQ(m.stats().tcdm_conflicts, 1u);
  m.begin_cycle();                                  // new cycle: bank 0 free
  EXPECT_TRUE(m.request(arch::kTcdmBase));
  EXPECT_EQ(m.stats().tcdm_accesses, 4u);
}

TEST(Mem, BankFreeQuery) {
  arch::Memory m;
  m.begin_cycle();
  EXPECT_TRUE(m.bank_free(arch::kTcdmBase));
  m.request(arch::kTcdmBase);
  EXPECT_FALSE(m.bank_free(arch::kTcdmBase));
  EXPECT_TRUE(m.bank_free(arch::kTcdmBase + 8));
}

TEST(Mem, GlobalRequestsAlwaysGranted) {
  arch::Memory m;
  m.begin_cycle();
  EXPECT_TRUE(m.request(arch::kGlobalBase));
  EXPECT_TRUE(m.request(arch::kGlobalBase));  // no banking on the DMA side
  EXPECT_EQ(m.stats().tcdm_accesses, 0u);
}

TEST(Mem, LoadStoreRoundTripAllWidths) {
  arch::Memory m;
  const arch::Addr a = arch::kTcdmBase + 64;
  m.store<std::uint8_t>(a, 0xAB);
  EXPECT_EQ(m.load<std::uint8_t>(a), 0xAB);
  m.store<std::uint16_t>(a, 0xBEEF);
  EXPECT_EQ(m.load<std::uint16_t>(a), 0xBEEF);
  m.store<std::uint32_t>(a, 0xDEADBEEF);
  EXPECT_EQ(m.load<std::uint32_t>(a), 0xDEADBEEFu);
  m.store<double>(a, -2.5);
  EXPECT_DOUBLE_EQ(m.load<double>(a), -2.5);
}

TEST(Mem, CopyBetweenSpaces) {
  arch::Memory m;
  const arch::Addr g = arch::kGlobalBase + 128;
  const arch::Addr t = arch::kTcdmBase + 128;
  m.store<std::uint64_t>(g, 0x0123456789ABCDEFull);
  m.copy(t, g, 8);
  EXPECT_EQ(m.load<std::uint64_t>(t), 0x0123456789ABCDEFull);
}

TEST(Mem, OutOfBoundsThrows) {
  arch::MemConfig cfg;
  cfg.tcdm_bytes = 1024;
  cfg.global_bytes = 4096;
  arch::Memory m(cfg);
  EXPECT_THROW(m.load<std::uint32_t>(arch::kTcdmBase + 1022),
               spikestream::Error);
  EXPECT_THROW(m.store<double>(arch::kGlobalBase + 4090, 1.0),
               spikestream::Error);
  // An address in neither space:
  EXPECT_THROW(m.load<std::uint32_t>(0x4000'0000), spikestream::Error);
}

TEST(Mem, NonPowerOfTwoBanksRejected) {
  arch::MemConfig cfg;
  cfg.tcdm_banks = 24;
  EXPECT_THROW(arch::Memory m(cfg), spikestream::Error);
}
