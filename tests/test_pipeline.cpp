// Pipelined batch executor (runtime/pipeline.hpp): spike outputs and modeled
// cycles must be bit-identical to the serial BatchRunner for every pipeline
// depth, backend and cluster count — the stage overlap may only change host
// wall-clock. Plus a scratch-aliasing stress test (more samples than lanes,
// repeated runs on one runner) and the batch-level weight-tile reuse
// semantics that ride on the per-lane scratch.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "runtime/batch.hpp"
#include "runtime/engine.hpp"
#include "runtime/multistep.hpp"
#include "runtime/pipeline.hpp"
#include "snn/calibrate.hpp"
#include "snn/input_gen.hpp"

namespace {

namespace rt = spikestream::runtime;
namespace k = spikestream::kernels;
namespace snn = spikestream::snn;
namespace sc = spikestream::common;

snn::Network test_net() {
  snn::Network net = snn::Network::make_tiny(18, 3, 32, 10);
  sc::Rng rng(42);
  net.init_weights(rng);
  const auto calib = snn::make_batch(4, 7, 16, 16, 3);
  const std::vector<double> targets = {0.20, 0.15, 0.30};
  snn::calibrate_thresholds(net, calib, targets);
  return net;
}

void expect_equal_runs(const std::vector<rt::MultiStepResult>& a,
                       const std::vector<rt::MultiStepResult>& b,
                       const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].spike_counts, b[i].spike_counts) << what << " sample " << i;
    EXPECT_DOUBLE_EQ(a[i].total_cycles, b[i].total_cycles)
        << what << " sample " << i;
    EXPECT_EQ(a[i].cycles_per_step, b[i].cycles_per_step)
        << what << " sample " << i;
  }
}

}  // namespace

TEST(Pipeline, ParityAcrossDepthsBackendsAndClusters) {
  const snn::Network net = test_net();
  const auto images = snn::make_batch(5, 99, 16, 16, 3);
  k::RunOptions opt;

  struct Case {
    rt::BackendKind kind;
    int clusters;
    const char* label;
  };
  const Case cases[] = {
      {rt::BackendKind::kAnalytical, 1, "analytical"},
      {rt::BackendKind::kCycleAccurate, 1, "cycle-accurate"},
      {rt::BackendKind::kSharded, 1, "sharded-1"},
      {rt::BackendKind::kSharded, 4, "sharded-4"},
      {rt::BackendKind::kSharded, 8, "sharded-8"},
  };
  for (const Case& c : cases) {
    rt::BackendConfig cfg;
    cfg.kind = c.kind;
    cfg.clusters = c.clusters;
    const rt::BatchRunner serial(net, opt, cfg, {}, /*workers=*/1);
    const auto want = serial.run(images, /*timesteps=*/3);
    for (const int depth : {1, 2, 4}) {
      const rt::PipelinedBatchRunner pipe(net, opt, cfg, {}, depth);
      const auto got = pipe.run(images, /*timesteps=*/3);
      expect_equal_runs(want, got, c.label);
    }
  }
}

TEST(Pipeline, SingleStepKeepsFullPerLayerMetrics) {
  const snn::Network net = test_net();
  const auto images = snn::make_batch(4, 17, 16, 16, 3);
  k::RunOptions opt;
  const rt::BatchRunner serial(net, opt, {}, {}, /*workers=*/1);
  const auto want = serial.run_single_step(images);
  const rt::PipelinedBatchRunner pipe(net, opt, {}, {}, /*depth=*/2);
  const auto got = pipe.run_single_step(images);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].final_output.v, got[i].final_output.v) << i;
    ASSERT_EQ(want[i].layers.size(), got[i].layers.size()) << i;
    for (std::size_t l = 0; l < want[i].layers.size(); ++l) {
      EXPECT_DOUBLE_EQ(want[i].layers[l].stats.cycles,
                       got[i].layers[l].stats.cycles)
          << "sample " << i << " layer " << l;
      EXPECT_DOUBLE_EQ(want[i].layers[l].stats.fpu_ops,
                       got[i].layers[l].stats.fpu_ops)
          << "sample " << i << " layer " << l;
    }
  }
}

TEST(Pipeline, ScratchAliasingStress) {
  // More samples than lanes, repeated runs on one runner (lane states and
  // scratch arenas reused), odd depth vs sample-count combinations: every
  // run must reproduce the serial outputs exactly.
  const snn::Network net = test_net();
  const auto images = snn::make_batch(7, 5, 16, 16, 3);
  k::RunOptions opt;
  const rt::BatchRunner serial(net, opt, {}, {}, /*workers=*/1);
  const auto want = serial.run(images, /*timesteps=*/2);
  for (const int depth : {2, 3, 5, 16}) {
    const rt::PipelinedBatchRunner pipe(net, opt, {}, {}, depth);
    for (int rep = 0; rep < 3; ++rep) {
      const auto got = pipe.run(images, /*timesteps=*/2);
      expect_equal_runs(want, got, "stress");
    }
  }
}

TEST(Pipeline, DegenerateInputs) {
  const snn::Network net = test_net();
  k::RunOptions opt;
  const rt::PipelinedBatchRunner pipe(net, opt, {}, {}, /*depth=*/2);
  EXPECT_TRUE(pipe.run({}, 2).empty());
  const auto images = snn::make_batch(2, 3, 16, 16, 3);
  const auto zero_steps = pipe.run(images, 0);
  ASSERT_EQ(zero_steps.size(), 2u);
  EXPECT_EQ(zero_steps[0].argmax(), -1);
  const auto one = pipe.run({images[0]}, 3);
  rt::InferenceEngine eng(net, opt);
  const auto want = rt::run_timesteps(eng, images[0], 3);
  EXPECT_EQ(want.spike_counts, one[0].spike_counts);
}

TEST(Pipeline, BatchWeightReuseSavesDmaWithoutChangingSpikes) {
  const snn::Network net = test_net();
  const auto images = snn::make_batch(3, 77, 16, 16, 3);
  k::RunOptions opt;
  k::RunOptions reuse_opt = opt;
  reuse_opt.batch_weight_reuse = true;

  const rt::PipelinedBatchRunner cold(net, opt, {}, {}, /*depth=*/1);
  const rt::PipelinedBatchRunner warm(net, reuse_opt, {}, {}, /*depth=*/1);
  const auto cold_res = cold.run_single_step(images);
  const auto warm_res = warm.run_single_step(images);
  ASSERT_EQ(cold_res.size(), warm_res.size());

  double saved = 0;
  for (std::size_t i = 0; i < cold_res.size(); ++i) {
    // Functional results are never affected by the DMA model.
    EXPECT_EQ(cold_res[i].final_output.v, warm_res[i].final_output.v) << i;
    for (std::size_t l = 0; l < cold_res[i].layers.size(); ++l) {
      const auto& cs = cold_res[i].layers[l].stats;
      const auto& ws = warm_res[i].layers[l].stats;
      EXPECT_EQ(cs.dma_saved_bytes, 0.0) << "reuse off must not save";
      saved += ws.dma_saved_bytes;
      // Saved bytes are really gone from the transfer volume.
      EXPECT_LE(ws.dma_bytes + ws.dma_saved_bytes, cs.dma_bytes + 1e-6)
          << "sample " << i << " layer " << l;
      EXPECT_LE(ws.cycles, cs.cycles + 1e-6) << "warm may only be faster";
    }
    if (i == 0) {
      // Depth 1 runs samples in order: the very first sample is all cold.
      EXPECT_EQ(saved, 0.0) << "first sample has no resident tiles";
    }
  }
  EXPECT_GT(saved, 0.0) << "later samples must reuse resident weight tiles";
  // Energy follows the reduced DMA traffic.
  EXPECT_LT(warm_res[2].total_energy_mj, cold_res[2].total_energy_mj);
}

TEST(Pipeline, BatchReuseColdStartVsSteadyStateSavings) {
  // Pins the cold-start vs steady-state split behind the historical
  // BENCH_host.json discrepancy (analytical+batchreuse 2.046 vs
  // pipelined+batchreuse 2.338 dma_saved MB/sample): pipelined lanes stay
  // warm across run() calls, so the first batch on fresh lanes has one cold
  // sample per lane while every later batch is fully warm. With a depth-1
  // pipeline and B samples that is (B-1) warm samples cold-start vs B warm
  // at steady state — the per-batch savings must satisfy
  //   saved_cold * B == saved_steady * (B - 1).
  const snn::Network net = test_net();
  const std::size_t B = 4;
  const auto images = snn::make_batch(B, 77, 16, 16, 3);
  k::RunOptions opt;
  opt.batch_weight_reuse = true;
  const rt::PipelinedBatchRunner runner(net, opt, {}, {}, /*depth=*/1);
  auto batch_saved = [&](const std::vector<rt::InferenceResult>& res) {
    double saved = 0;
    for (const auto& r : res) {
      for (const auto& m : r.layers) saved += m.stats.dma_saved_bytes;
    }
    return saved;
  };
  const double cold = batch_saved(runner.run_single_step(images));
  const double steady = batch_saved(runner.run_single_step(images));
  ASSERT_GT(cold, 0.0);
  EXPECT_GT(steady, cold);
  EXPECT_NEAR(cold * static_cast<double>(B),
              steady * static_cast<double>(B - 1), 1e-6);
  // And steady state is stable from then on.
  EXPECT_NEAR(batch_saved(runner.run_single_step(images)), steady, 1e-6);
}
