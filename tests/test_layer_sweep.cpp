// Property sweep: functional equivalence of every kernel variant with the
// golden reference across layer geometries, firing rates and FP formats.
// One behaviour per combination: "the optimized kernel never changes the
// math" — the invariant everything else in the repo rests on.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "compress/csr_ifmap.hpp"
#include "kernels/layer_kernels.hpp"
#include "snn/lif.hpp"
#include "snn/reference.hpp"

namespace k = spikestream::kernels;
namespace snn = spikestream::snn;
namespace sc = spikestream::common;
namespace cp = spikestream::compress;

namespace {

snn::SpikeMap bernoulli_map(int h, int w, int c, double rate,
                            std::uint64_t seed) {
  sc::Rng rng(seed);
  snn::SpikeMap s(h, w, c);
  for (int y = 1; y < h - 1; ++y) {
    for (int x = 1; x < w - 1; ++x) {
      for (int ch = 0; ch < c; ++ch) {
        s.at(y, x, ch) = rng.bernoulli(rate) ? 1 : 0;
      }
    }
  }
  return s;
}

snn::LayerWeights random_weights(int kk, int in_c, int out_c,
                                 std::uint64_t seed, sc::FpFormat fmt) {
  sc::Rng rng(seed);
  snn::LayerWeights w;
  w.k = kk;
  w.in_c = in_c;
  w.out_c = out_c;
  w.v.resize(static_cast<std::size_t>(kk) * kk * in_c * out_c);
  for (auto& x : w.v) {
    x = sc::quantize(static_cast<float>(rng.normal(0.0, 0.1)), fmt);
  }
  return w;
}

}  // namespace

using SweepParam = std::tuple<int /*in_c*/, int /*out_c*/, double /*rate*/,
                              sc::FpFormat, k::Variant>;

class ConvSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ConvSweep, KernelEqualsReference) {
  const auto [in_c, out_c, rate, fmt, variant] = GetParam();
  snn::LayerSpec spec;
  spec.kind = snn::LayerKind::kConv;
  spec.name = "sweep";
  spec.in_h = spec.in_w = 11;
  spec.in_c = in_c;
  spec.k = 3;
  spec.out_c = out_c;
  spec.lif.v_th = 0.5f;
  spec.lif.v_rst = 0.5f;
  const auto w = random_weights(3, in_c, out_c, 1234, fmt);
  const auto in = bernoulli_map(11, 11, in_c,
                                rate, 99 + static_cast<std::uint64_t>(in_c));
  const auto csr = cp::CsrIfmap::encode(in);

  snn::Tensor ref_mem(spec.out_h(), spec.out_w(), out_c);
  const snn::SpikeMap expect =
      snn::lif_step(spec.lif, snn::Reference::conv_currents(in, w), ref_mem);

  k::RunOptions opt;
  opt.variant = variant;
  opt.fmt = fmt;
  snn::Tensor mem(spec.out_h(), spec.out_w(), out_c);
  const auto run = k::run_conv_layer(spec, w, csr, mem, opt);
  EXPECT_EQ(run.out_spikes.v, expect.v);
  EXPECT_GE(run.stats.cycles, run.stats.compute_cycles * 0.5);
  if (snn::spike_count(in) > 0) {
    EXPECT_GT(run.stats.fpu_ops, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, ConvSweep,
    ::testing::Combine(::testing::Values(8, 24, 64),
                       ::testing::Values(4, 16, 40),
                       ::testing::Values(0.0, 0.05, 0.3, 0.9),
                       ::testing::Values(sc::FpFormat::FP16),
                       ::testing::Values(k::Variant::kBaseline,
                                         k::Variant::kSpikeStream,
                                         k::Variant::kDenseNoTc)));

INSTANTIATE_TEST_SUITE_P(
    Formats, ConvSweep,
    ::testing::Combine(::testing::Values(16),
                       ::testing::Values(24),
                       ::testing::Values(0.2),
                       ::testing::Values(sc::FpFormat::FP64, sc::FpFormat::FP32,
                                         sc::FpFormat::FP16, sc::FpFormat::FP8),
                       ::testing::Values(k::Variant::kBaseline,
                                         k::Variant::kSpikeStream,
                                         k::Variant::kDenseNoTc)));

using FcParam = std::tuple<int /*in_c*/, int /*out_c*/, double /*rate*/,
                           k::Variant>;

class FcSweep : public ::testing::TestWithParam<FcParam> {};

TEST_P(FcSweep, KernelEqualsReference) {
  const auto [in_c, out_c, rate, variant] = GetParam();
  snn::LayerSpec spec;
  spec.kind = snn::LayerKind::kFc;
  spec.name = "fc_sweep";
  spec.in_c = in_c;
  spec.out_c = out_c;
  spec.lif.v_th = 0.4f;
  spec.lif.v_rst = 0.4f;
  const auto w = random_weights(1, in_c, out_c, 77, sc::FpFormat::FP16);
  sc::Rng rng(5 + static_cast<std::uint64_t>(in_c));
  snn::SpikeMap in(1, 1, in_c);
  for (auto& b : in.v) b = rng.bernoulli(rate) ? 1 : 0;
  const auto csr = cp::CsrIfmap::encode(in);

  snn::Tensor ref_mem(1, 1, out_c);
  const snn::SpikeMap expect =
      snn::lif_step(spec.lif, snn::Reference::fc_currents(in, w), ref_mem);

  k::RunOptions opt;
  opt.variant = variant;
  snn::Tensor mem(1, 1, out_c);
  const auto run = k::run_fc_layer(spec, w, csr, mem, opt);
  EXPECT_EQ(run.out_spikes.v, expect.v);
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, FcSweep,
    ::testing::Combine(::testing::Values(64, 300, 2048),
                       ::testing::Values(3, 10, 64),
                       ::testing::Values(0.0, 0.1, 0.5),
                       ::testing::Values(k::Variant::kBaseline,
                                         k::Variant::kSpikeStream,
                                         k::Variant::kDenseNoTc)));

TEST(DenseVariant, RateIndependentTiming) {
  // Dense-no-TC compute time must not depend on the firing rate (it walks
  // every synapse), while SpikeStream's must grow with it.
  snn::LayerSpec spec;
  spec.kind = snn::LayerKind::kConv;
  spec.name = "d";
  spec.in_h = spec.in_w = 12;
  spec.in_c = 64;
  spec.k = 3;
  spec.out_c = 32;
  const auto w = random_weights(3, 64, 32, 3, sc::FpFormat::FP16);
  auto cycles_at = [&](double rate, k::Variant v) {
    const auto in = bernoulli_map(12, 12, 64, rate, 11);
    const auto csr = cp::CsrIfmap::encode(in);
    k::RunOptions opt;
    opt.variant = v;
    snn::Tensor m(spec.out_h(), spec.out_w(), spec.out_c);
    return k::run_conv_layer(spec, w, csr, m, opt).stats.compute_cycles;
  };
  const double d_lo = cycles_at(0.05, k::Variant::kDenseNoTc);
  const double d_hi = cycles_at(0.6, k::Variant::kDenseNoTc);
  EXPECT_NEAR(d_hi / d_lo, 1.0, 0.15);  // only activation cost varies
  const double s_lo = cycles_at(0.05, k::Variant::kSpikeStream);
  const double s_hi = cycles_at(0.6, k::Variant::kSpikeStream);
  EXPECT_GT(s_hi / s_lo, 2.5);
  // And at 5% activity, compression wins big.
  EXPECT_GT(d_lo / s_lo, 2.0);
}
