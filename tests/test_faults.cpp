// Fault-injection contract (runtime/faults.hpp + the hardened serving path):
//   * a FaultPlan is pure data, keyed by wave index — builders keep it
//     wave-sorted and chaos() schedules are seed-deterministic;
//   * cluster fail-stop re-plans every layer over the survivors exactly once
//     (no oscillation), raises modeled cycles, and leaves completed spikes
//     bit-identical to the healthy run — the spikes-are-plan-invariant
//     guarantee degraded mode inherits from the partitioner;
//   * slowdown and link-degrade faults only stretch modeled timing; a factor
//     of 1 restores the healthy cycles bit-exactly;
//   * the server applies structural faults at wave boundaries, contains
//     throwing waves (transient faults retry from clean lane state and land
//     bit-identical; exhausted retries fail only that wave's requests with
//     kError), sheds TTL-expired requests with kTimedOut, and accounts for
//     every admitted request: admitted == completed + timed_out + errored.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "arch/noc.hpp"
#include "common/rng.hpp"
#include "runtime/backend_sharded.hpp"
#include "runtime/faults.hpp"
#include "runtime/multistep.hpp"
#include "runtime/server.hpp"
#include "snn/calibrate.hpp"
#include "snn/input_gen.hpp"

namespace {

namespace rt = spikestream::runtime;
namespace k = spikestream::kernels;
namespace snn = spikestream::snn;
namespace arch = spikestream::arch;
namespace sc = spikestream::common;

snn::Network test_net() {
  snn::Network net = snn::Network::make_tiny(18, 3, 32, 10);
  sc::Rng rng(42);
  net.init_weights(rng);
  const auto calib = snn::make_batch(4, 7, 16, 16, 3);
  const std::vector<double> targets = {0.20, 0.15, 0.30};
  snn::calibrate_thresholds(net, calib, targets);
  return net;
}

rt::BackendConfig sharded(int clusters) {
  rt::BackendConfig b;
  b.kind = rt::BackendKind::kSharded;
  b.clusters = clusters;
  b.shard_threads = false;  // deterministic serial shards; results identical
  return b;
}

const rt::ShardedBackend* sharded_of(const rt::InferenceEngine& engine) {
  return dynamic_cast<const rt::ShardedBackend*>(&engine.backend());
}

bool events_equal(const rt::FaultEvent& a, const rt::FaultEvent& b) {
  return a.kind == b.kind && a.wave == b.wave && a.cluster == b.cluster &&
         a.factor == b.factor && a.failures == b.failures;
}

}  // namespace

TEST(FaultPlan, BuildersKeepEventsWaveSorted) {
  rt::FaultPlan plan;
  plan.transient_error(7, 2)
      .kill_cluster(3, 2)
      .degrade_link(1, 4.0, 9)
      .slow_cluster(0, 2.0, 2)
      .transient_error(7);
  ASSERT_EQ(plan.size(), 5u);
  const auto& ev = plan.events();
  for (std::size_t i = 1; i < ev.size(); ++i) {
    EXPECT_LE(ev[i - 1].wave, ev[i].wave) << "events must stay wave-sorted";
  }
  // Stable for equal waves: the kill at wave 2 was added before the slowdown.
  EXPECT_EQ(ev[0].kind, rt::FaultKind::kClusterFailStop);
  EXPECT_EQ(ev[1].kind, rt::FaultKind::kClusterSlowdown);
  EXPECT_EQ(plan.transient_failures_at(7), 3);
  EXPECT_EQ(plan.transient_failures_at(2), 0);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, ChaosIsSeedDeterministicAndBounded) {
  const rt::FaultPlan a = rt::FaultPlan::chaos(123, 50, 8, 40);
  const rt::FaultPlan b = rt::FaultPlan::chaos(123, 50, 8, 40);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 40u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(events_equal(a.events()[i], b.events()[i]))
        << "chaos plan must replay identically for the same seed";
  }
  int kills = 0;
  for (const auto& e : a.events()) {
    EXPECT_LT(e.wave, 50u);
    if (e.kind == rt::FaultKind::kTransientWaveError) {
      EXPECT_GE(e.failures, 1);
    } else {
      EXPECT_GE(e.cluster, 0);
      EXPECT_LT(e.cluster, 8);
    }
    if (e.kind != rt::FaultKind::kClusterFailStop) {
      EXPECT_GE(e.factor, 1.0);
    } else {
      ++kills;
    }
  }
  EXPECT_LE(kills, 7) << "chaos must never schedule killing the last cluster";

  const rt::FaultPlan c = rt::FaultPlan::chaos(124, 50, 8, 40);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = !events_equal(a.events()[i], c.events()[i]);
  }
  EXPECT_TRUE(differs) << "different seeds should draw different schedules";
}

TEST(FaultPlan, ChaosPropertiesHoldAcrossManySeeds) {
  // Property sweep over 64 seeds: every chaos schedule must stay wave-sorted
  // (stable builders), never draw more than clusters-1 fail-stops, replay
  // identically for the same seed, and differ from its neighbor seed — the
  // invariants the soak tests and benches lean on without checking.
  constexpr std::uint64_t kWaves = 32;
  constexpr int kClusters = 4;
  constexpr int kEvents = 12;
  std::vector<rt::FaultPlan> plans;
  plans.reserve(64);
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    plans.push_back(rt::FaultPlan::chaos(seed, kWaves, kClusters, kEvents));
    const rt::FaultPlan& p = plans.back();
    ASSERT_EQ(p.size(), static_cast<std::size_t>(kEvents)) << "seed " << seed;
    int kills = 0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      const rt::FaultEvent& e = p.events()[i];
      if (i > 0) {
        EXPECT_LE(p.events()[i - 1].wave, e.wave)
            << "seed " << seed << ": events must stay wave-sorted";
      }
      EXPECT_LT(e.wave, kWaves) << "seed " << seed;
      if (e.kind == rt::FaultKind::kClusterFailStop) ++kills;
    }
    EXPECT_LE(kills, kClusters - 1)
        << "seed " << seed << ": the last cluster must stay unkillable";

    const rt::FaultPlan replay =
        rt::FaultPlan::chaos(seed, kWaves, kClusters, kEvents);
    ASSERT_EQ(replay.size(), p.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
      EXPECT_TRUE(events_equal(replay.events()[i], p.events()[i]))
          << "seed " << seed << " must replay identically";
    }
  }
  // Neighbor seeds draw distinct schedules (no accidental seed aliasing).
  for (std::size_t s = 1; s < plans.size(); ++s) {
    bool differs = false;
    for (std::size_t i = 0; !differs && i < plans[s].size(); ++i) {
      differs = !events_equal(plans[s].events()[i], plans[s - 1].events()[i]);
    }
    EXPECT_TRUE(differs) << "seeds " << s - 1 << " and " << s
                         << " drew identical schedules";
  }
}

TEST(FaultPlan, ChaosDataIsDeterministicRangedAndIndependent) {
  constexpr std::uint64_t kWaves = 16;
  constexpr int kLayers = 3;
  constexpr int kLanes = 4;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const rt::FaultPlan p =
        rt::FaultPlan::chaos_data(seed, kWaves, kLayers, kLanes, 10);
    ASSERT_EQ(p.size(), 10u);
    for (std::size_t i = 0; i < p.size(); ++i) {
      const rt::FaultEvent& e = p.events()[i];
      EXPECT_TRUE(rt::is_data_fault(e.kind)) << "seed " << seed;
      EXPECT_LT(e.wave, kWaves);
      EXPECT_GE(e.layer, 0);
      EXPECT_LT(e.layer, kLayers);
      EXPECT_GE(e.lane, 0);
      EXPECT_LT(e.lane, kLanes);
      EXPECT_GE(e.failures, 1);
      if (i > 0) EXPECT_LE(p.events()[i - 1].wave, e.wave);
    }
    const rt::FaultPlan replay =
        rt::FaultPlan::chaos_data(seed, kWaves, kLayers, kLanes, 10);
    for (std::size_t i = 0; i < p.size(); ++i) {
      const rt::FaultEvent& a = p.events()[i];
      const rt::FaultEvent& b = replay.events()[i];
      EXPECT_TRUE(events_equal(a, b) && a.layer == b.layer && a.bit == b.bit &&
                  a.lane == b.lane)
          << "seed " << seed << " must replay identically";
    }
  }
  // Independent draw streams: the structural and data schedules of the same
  // user seed must not be correlated copies of each other.
  const rt::FaultPlan s = rt::FaultPlan::chaos(5, kWaves, kLanes, 10);
  const rt::FaultPlan d = rt::FaultPlan::chaos_data(5, kWaves, kLayers,
                                                    kLanes, 10);
  bool differs = false;
  for (std::size_t i = 0; !differs && i < s.size(); ++i) {
    differs = s.events()[i].wave != d.events()[i].wave;
  }
  EXPECT_TRUE(differs) << "chaos and chaos_data must use distinct streams";
}

TEST(NocModel, LinkDerateStretchesCyclesAndUnityIsExact) {
  arch::NocParams p;
  p.topology = arch::NocTopology::kCrossbar;
  p.model_contention = true;

  const auto cycles_with = [&](double derate) {
    arch::NocModel m(p, 4);
    m.set_link_derate(0, derate);
    m.multicast(0, 0, 4, 4096.0);  // cluster 0's injection link is busiest
    m.unicast(1, 0, 512.0);
    return m.cycles();
  };
  const double healthy = cycles_with(1.0);
  {
    arch::NocModel m(p, 4);  // never touched: all-ones is the default
    m.multicast(0, 0, 4, 4096.0);
    m.unicast(1, 0, 512.0);
    EXPECT_EQ(m.cycles(), healthy) << "default derates must be bit-exact";
  }
  EXPECT_GT(cycles_with(3.0), healthy)
      << "a derated bottleneck link must serialize slower";
  EXPECT_EQ(cycles_with(1.0), healthy);
  // Derating an idle cluster's links must not move the bottleneck.
  arch::NocModel m(p, 4);
  m.set_link_derate(3, 100.0);
  m.unicast(0, 1, 1024.0);
  arch::NocModel ref(p, 4);
  ref.unicast(0, 1, 1024.0);
  EXPECT_EQ(m.cycles(), ref.cycles());
}

TEST(DegradedMode, FailStopKeepsSpikesBitIdenticalAndReplansOnce) {
  const snn::Network net = test_net();
  const auto images = snn::make_batch(3, 13, 16, 16, 3);
  k::RunOptions opt;

  rt::InferenceEngine healthy(net, opt, sharded(4));
  rt::InferenceEngine degraded(net, opt, sharded(4));
  const rt::ShardedBackend* sb = sharded_of(degraded);
  ASSERT_NE(sb, nullptr);

  EXPECT_EQ(sb->active_clusters(), 4);
  EXPECT_FALSE(sb->fail_cluster(-1));
  EXPECT_FALSE(sb->fail_cluster(4));
  ASSERT_TRUE(sb->fail_cluster(3));
  EXPECT_EQ(sb->active_clusters(), 3);
  EXPECT_EQ(sb->failed_clusters(), 1);
  EXPECT_EQ(sb->degrade_replans(), 1) << "exactly one re-plan per fault";
  EXPECT_FALSE(sb->fail_cluster(3)) << "slot ids are dense over survivors";
  EXPECT_EQ(sb->degrade_replans(), 1) << "a rejected fault must not re-plan";

  snn::NetworkState hs = healthy.make_state();
  snn::NetworkState ds = degraded.make_state();
  for (const auto& img : images) {
    const rt::MultiStepResult h = rt::run_timesteps(healthy, hs, img, 3);
    const rt::MultiStepResult d = rt::run_timesteps(degraded, ds, img, 3);
    EXPECT_EQ(h.spike_counts, d.spike_counts)
        << "degraded spikes must stay bit-identical to healthy";
    EXPECT_GE(d.total_cycles, h.total_cycles)
        << "losing a cluster must not speed the model up";
    EXPECT_GT(d.total_cycles, 0.0);
  }

  // Kill down to one survivor; the last cluster is unkillable.
  ASSERT_TRUE(sb->fail_cluster(2));
  ASSERT_TRUE(sb->fail_cluster(1));
  EXPECT_EQ(sb->active_clusters(), 1);
  EXPECT_FALSE(sb->fail_cluster(0)) << "the last survivor must be refused";
  EXPECT_EQ(sb->degrade_replans(), 3);
  const rt::MultiStepResult solo =
      rt::run_timesteps(degraded, ds, images[0], 3);
  snn::NetworkState hs2 = healthy.make_state();
  const rt::MultiStepResult ref =
      rt::run_timesteps(healthy, hs2, images[0], 3);
  EXPECT_EQ(solo.spike_counts, ref.spike_counts);
  EXPECT_GE(solo.total_cycles, ref.total_cycles);
}

TEST(DegradedMode, SlowdownAndLinkDegradeOnlyStretchTiming) {
  const snn::Network net = test_net();
  const auto img = snn::make_batch(1, 17, 16, 16, 3)[0];
  k::RunOptions opt;

  rt::BackendConfig cfg = sharded(4);
  cfg.noc.model_contention = true;  // link derates gate timing via the NoC
  rt::InferenceEngine engine(net, opt, cfg);
  const rt::ShardedBackend* sb = sharded_of(engine);
  ASSERT_NE(sb, nullptr);

  snn::NetworkState st = engine.make_state();
  const rt::MultiStepResult healthy = rt::run_timesteps(engine, st, img, 2);

  sb->set_cluster_slowdown(1, 4.0);
  const rt::MultiStepResult slow = rt::run_timesteps(engine, st, img, 2);
  EXPECT_EQ(slow.spike_counts, healthy.spike_counts);
  EXPECT_GT(slow.total_cycles, healthy.total_cycles)
      << "a straggler cluster must gate the lockstep wave";

  sb->set_cluster_slowdown(1, 1.0);
  const rt::MultiStepResult restored = rt::run_timesteps(engine, st, img, 2);
  EXPECT_EQ(restored.total_cycles, healthy.total_cycles)
      << "factor 1 must restore the healthy cycles bit-exactly";

  // The factor must be large enough that the derated fabric gate overtakes
  // the tiny net's compute cycles — the gate is a max, not a sum.
  sb->set_link_degrade(0, 512.0);
  const rt::MultiStepResult derated = rt::run_timesteps(engine, st, img, 2);
  EXPECT_EQ(derated.spike_counts, healthy.spike_counts);
  EXPECT_GT(derated.total_cycles, healthy.total_cycles)
      << "a degraded link must stretch the NoC gate";
  sb->set_link_degrade(0, 1.0);
  const rt::MultiStepResult relinked = rt::run_timesteps(engine, st, img, 2);
  EXPECT_EQ(relinked.total_cycles, healthy.total_cycles);
}

TEST(FaultServer, MidRunKillLosesNoRequestAndKeepsSpikes) {
  const snn::Network net = test_net();
  const auto images = snn::make_batch(4, 21, 16, 16, 3);
  constexpr int kSteps = 2;
  constexpr int kWaves = 4;
  k::RunOptions opt;
  opt.segment_major_lanes = 4;

  // Healthy per-image baselines from the offline path.
  std::vector<rt::MultiStepResult> offline;
  {
    rt::InferenceEngine ref(net, opt, sharded(4));
    snn::NetworkState st = ref.make_state();
    for (const auto& img : images) {
      offline.push_back(rt::run_timesteps(ref, st, img, kSteps));
    }
  }

  rt::ServerConfig scfg;
  scfg.timesteps = kSteps;
  scfg.adaptive_wave = false;  // burst of 4 == exactly one full wave
  scfg.faults.kill_cluster(1, /*wave=*/2);  // mid-load fail-stop
  rt::InferenceServer server(net, opt, sharded(4), scfg);

  std::vector<rt::ServeRequest> reqs(images.size());
  for (int w = 0; w < kWaves; ++w) {
    for (std::size_t i = 0; i < images.size(); ++i) {
      reqs[i].image = &images[i];
      ASSERT_TRUE(server.submit(reqs[i]));
    }
    for (std::size_t i = 0; i < images.size(); ++i) {
      ASSERT_TRUE(reqs[i].wait()) << "wave " << w << " lane " << i;
      EXPECT_EQ(reqs[i].result.spike_counts, offline[i].spike_counts)
          << "served spikes must stay bit-identical across the fail-stop";
    }
  }
  server.stop();

  const rt::ServerStats st = server.stats();
  EXPECT_EQ(st.admitted, static_cast<std::uint64_t>(kWaves) * images.size());
  EXPECT_EQ(st.admitted, st.completed + st.timed_out + st.errored)
      << "every admitted request must reach exactly one terminal state";
  EXPECT_EQ(st.timed_out, 0u);
  EXPECT_EQ(st.errored, 0u);
  EXPECT_EQ(st.cluster_failures, 1u);
  EXPECT_EQ(st.faults_applied, 1u);
  EXPECT_EQ(st.degrade_replans, 1) << "the re-plan must flip exactly once";
  EXPECT_EQ(st.active_clusters, 3);
}

TEST(FaultServer, TransientFaultRetriesToBitIdenticalCompletion) {
  const snn::Network net = test_net();
  const auto images = snn::make_batch(2, 23, 16, 16, 3);
  k::RunOptions opt;
  opt.segment_major_lanes = 2;

  std::vector<rt::MultiStepResult> offline;
  {
    rt::InferenceEngine ref(net, opt, sharded(4));
    snn::NetworkState st = ref.make_state();
    for (const auto& img : images) {
      offline.push_back(rt::run_timesteps(ref, st, img, 1));
    }
  }

  rt::ServerConfig scfg;
  scfg.adaptive_wave = false;
  scfg.max_queue_delay_us = 200000;  // bursts always form full waves
  scfg.max_wave_retries = 2;
  scfg.retry_backoff_us = 10;
  scfg.faults.transient_error(/*wave=*/0, /*failures=*/1);
  rt::InferenceServer server(net, opt, sharded(4), scfg);

  std::vector<rt::ServeRequest> reqs(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    reqs[i].image = &images[i];
    ASSERT_TRUE(server.submit(reqs[i]));
  }
  for (std::size_t i = 0; i < images.size(); ++i) {
    ASSERT_TRUE(reqs[i].wait()) << "a retried wave must still complete";
    EXPECT_EQ(reqs[i].state.load(), rt::ServeRequest::kDone);
    EXPECT_EQ(reqs[i].result.spike_counts, offline[i].spike_counts)
        << "the retry resets lane state: results must match a clean run";
    EXPECT_EQ(reqs[i].result.total_cycles, offline[i].total_cycles);
  }
  server.stop();

  const rt::ServerStats st = server.stats();
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.errored, 0u);
  EXPECT_EQ(st.wave_errors, 0u);
  EXPECT_EQ(st.wave_retries, 1u);
  EXPECT_EQ(st.transient_faults, 1u);
}

TEST(FaultServer, ExhaustedRetriesFailOnlyThatWave) {
  const snn::Network net = test_net();
  const auto images = snn::make_batch(2, 29, 16, 16, 3);
  k::RunOptions opt;
  opt.segment_major_lanes = 2;

  rt::ServerConfig scfg;
  scfg.adaptive_wave = false;
  scfg.max_queue_delay_us = 200000;  // bursts always form full waves
  scfg.max_wave_retries = 1;  // 2 attempts total, 5 scheduled failures
  scfg.retry_backoff_us = 10;
  scfg.faults.transient_error(/*wave=*/0, /*failures=*/5);
  rt::InferenceServer server(net, opt, sharded(4), scfg);

  std::vector<rt::ServeRequest> doomed(2);
  for (std::size_t i = 0; i < 2; ++i) {
    doomed[i].image = &images[i];
    ASSERT_TRUE(server.submit(doomed[i]));
  }
  for (auto& r : doomed) {
    EXPECT_FALSE(r.wait());
    EXPECT_EQ(r.state.load(), rt::ServeRequest::kError)
        << "exhausted retries must fail the wave's requests with kError";
    EXPECT_GE(r.complete_ns, r.enqueue_ns);
  }

  // Containment: the dispatcher survived and the next wave serves normally.
  std::vector<rt::ServeRequest> healthy(2);
  for (std::size_t i = 0; i < 2; ++i) {
    healthy[i].image = &images[i];
    ASSERT_TRUE(server.submit(healthy[i]));
  }
  for (auto& r : healthy) {
    EXPECT_TRUE(r.wait()) << "waves after a failed one must serve normally";
  }
  server.stop();

  const rt::ServerStats st = server.stats();
  EXPECT_EQ(st.admitted, 4u);
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.errored, 2u);
  EXPECT_EQ(st.admitted, st.completed + st.timed_out + st.errored);
  EXPECT_EQ(st.wave_errors, 1u);
  EXPECT_EQ(st.wave_retries, 1u);
  EXPECT_EQ(st.transient_faults, 2u);  // both attempts threw
}

TEST(FaultServer, TtlShedsExpiredRequestsToTimedOut) {
  const snn::Network net = test_net();
  const auto images = snn::make_batch(4, 31, 16, 16, 3);
  k::RunOptions opt;
  opt.segment_major_lanes = 2;

  // Wave 0 throws once and backs off 50 ms before its retry, so the TTL'd
  // burst submitted behind it is guaranteed to expire in the queue and be
  // shed at pop time when wave 1 forms.
  rt::ServerConfig scfg;
  scfg.adaptive_wave = false;
  scfg.max_wave_retries = 2;
  scfg.retry_backoff_us = 50000;
  scfg.faults.transient_error(/*wave=*/0, /*failures=*/1);
  rt::InferenceServer server(net, opt, sharded(4), scfg);

  std::vector<rt::ServeRequest> slow(2);
  for (std::size_t i = 0; i < 2; ++i) {
    slow[i].image = &images[i];
    ASSERT_TRUE(server.submit(slow[i]));
  }
  std::vector<rt::ServeRequest> ttl(2);
  for (std::size_t i = 0; i < 2; ++i) {
    ttl[i].image = &images[i + 2];
    ttl[i].ttl_us = 1000;  // 1 ms deadline vs a >= 50 ms queue wait
    ASSERT_TRUE(server.submit(ttl[i]));
  }

  // Timed wait on a queued request reports kQueued without blocking forever;
  // the server still owns the slot afterwards.
  const int observed = ttl[0].wait_for(1000);
  EXPECT_TRUE(observed == rt::ServeRequest::kQueued ||
              observed == rt::ServeRequest::kTimedOut);

  for (auto& r : slow) EXPECT_TRUE(r.wait());
  for (auto& r : ttl) {
    EXPECT_FALSE(r.wait());
    EXPECT_EQ(r.state.load(), rt::ServeRequest::kTimedOut);
    // Terminal states come back from wait_for immediately.
    EXPECT_EQ(r.wait_for(0), rt::ServeRequest::kTimedOut);
  }
  EXPECT_EQ(slow[0].wait_for(0), rt::ServeRequest::kDone);
  server.stop();

  const rt::ServerStats st = server.stats();
  EXPECT_EQ(st.admitted, 4u);
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.timed_out, 2u);
  EXPECT_EQ(st.admitted, st.completed + st.timed_out + st.errored);
  EXPECT_GE(st.wave_retries, 1u);
}

TEST(FaultServer, ChaosSoakAccountsForEveryRequest) {
  // Chaos-monkey soak: a seeded random schedule of kills, slowdowns, link
  // derates and transients over a sustained load. The invariant under any
  // schedule: every admitted request reaches a terminal state and the
  // accounting reconciles exactly.
  const snn::Network net = test_net();
  const auto images = snn::make_batch(4, 37, 16, 16, 3);
  k::RunOptions opt;
  opt.segment_major_lanes = 4;

  rt::ServerConfig scfg;
  scfg.adaptive_wave = false;
  scfg.retry_backoff_us = 10;
  scfg.faults = rt::FaultPlan::chaos(/*seed=*/99, /*waves=*/8, /*clusters=*/4,
                                     /*events=*/10);
  rt::InferenceServer server(net, opt, sharded(4), scfg);

  constexpr int kWaves = 10;
  std::uint64_t done = 0, failed = 0;
  std::vector<rt::ServeRequest> reqs(images.size());
  for (int w = 0; w < kWaves; ++w) {
    for (std::size_t i = 0; i < images.size(); ++i) {
      reqs[i].image = &images[i];
      ASSERT_TRUE(server.submit(reqs[i]));
    }
    for (auto& r : reqs) {
      if (r.wait()) {
        ++done;
      } else {
        ++failed;
        EXPECT_EQ(r.state.load(), rt::ServeRequest::kError);
      }
    }
  }
  server.stop();

  const rt::ServerStats st = server.stats();
  EXPECT_EQ(st.admitted, static_cast<std::uint64_t>(kWaves) * images.size());
  EXPECT_EQ(st.admitted, st.completed + st.timed_out + st.errored);
  EXPECT_EQ(st.completed, done);
  EXPECT_EQ(st.errored, failed);
  EXPECT_EQ(static_cast<std::uint64_t>(st.degrade_replans),
            st.cluster_failures)
      << "one re-plan per accepted fail-stop, never more";
  EXPECT_GE(st.active_clusters, 1);
}

TEST(FaultServer, CombinedStructuralAndDataFaultSoak) {
  // Worst-case soak: structural chaos (kills, slowdowns, link derates,
  // transients) and data chaos (weight / spike / membrane bit flips) merged
  // into one schedule, served with every defense armed — weight and spike
  // checksums plus redundant lanes. Two invariants must survive anything the
  // combined schedule throws: (1) every request that completes carries spike
  // counts bit-identical to the healthy offline baseline (corruption is never
  // silently served), and (2) the accounting reconciles exactly, including
  // the kCorrupted terminal state.
  const snn::Network net = test_net();
  const auto images = snn::make_batch(4, 37, 16, 16, 3);
  k::RunOptions opt;
  opt.segment_major_lanes = 4;

  std::vector<rt::MultiStepResult> offline;
  {
    rt::InferenceEngine ref(net, opt, sharded(4));
    snn::NetworkState st = ref.make_state();
    for (const auto& img : images) {
      offline.push_back(rt::run_timesteps(ref, st, img, 1));
    }
  }

  rt::ServerConfig scfg;
  scfg.adaptive_wave = false;
  scfg.retry_backoff_us = 10;
  scfg.faults = rt::FaultPlan::chaos(/*seed=*/7, /*waves=*/8, /*clusters=*/4,
                                     /*events=*/8);
  const rt::FaultPlan data = rt::FaultPlan::chaos_data(
      /*seed=*/7, /*waves=*/8, /*layers=*/3, /*lanes=*/4, /*events=*/8);
  for (const auto& e : data.events()) scfg.faults.add(e);
  scfg.integrity.checksum_weights = true;
  scfg.integrity.checksum_spikes = true;
  scfg.integrity.redundant_lanes = true;
  rt::InferenceServer server(net, opt, sharded(4), scfg);

  constexpr int kWaves = 10;
  std::uint64_t done = 0, failed = 0;
  std::vector<rt::ServeRequest> reqs(images.size());
  for (int w = 0; w < kWaves; ++w) {
    for (std::size_t i = 0; i < images.size(); ++i) {
      reqs[i].image = &images[i];
      ASSERT_TRUE(server.submit(reqs[i]));
    }
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i].wait()) {
        ++done;
        EXPECT_EQ(reqs[i].result.spike_counts, offline[i].spike_counts)
            << "wave " << w << " lane " << i
            << ": completed requests must never carry corrupted spikes";
      } else {
        ++failed;
        const int s = reqs[i].state.load();
        EXPECT_TRUE(s == rt::ServeRequest::kError ||
                    s == rt::ServeRequest::kCorrupted)
            << "wave " << w << " lane " << i << " ended in state " << s;
      }
    }
  }
  server.stop();

  const rt::ServerStats st = server.stats();
  EXPECT_EQ(st.admitted, static_cast<std::uint64_t>(kWaves) * images.size());
  EXPECT_EQ(st.admitted,
            st.completed + st.timed_out + st.errored + st.corrupted);
  EXPECT_EQ(st.completed, done);
  EXPECT_EQ(st.errored + st.corrupted, failed);
  EXPECT_GT(st.data_faults_injected, 0u)
      << "the data half of the schedule must actually fire";
  EXPECT_GT(st.integrity_checks, 0u);
  // Waves whose every attempt throws before the primary pass finishes never
  // reach the shadow pass, so only a lower bound of one holds in general.
  EXPECT_GT(st.redundant_waves, 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(st.degrade_replans),
            st.cluster_failures);
}
