#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace sc = spikestream::common;

TEST(Check, ThrowsWithContext) {
  try {
    SPK_CHECK(1 == 2, "value was " << 42);
    FAIL() << "expected throw";
  } catch (const spikestream::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("value was 42"), std::string::npos);
  }
}

TEST(Rng, Deterministic) {
  sc::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  sc::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  sc::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  sc::Rng rng(11);
  sc::RunningStats st;
  for (int i = 0; i < 50000; ++i) st.add(rng.normal());
  EXPECT_NEAR(st.mean(), 0.0, 0.02);
  EXPECT_NEAR(st.stddev(), 1.0, 0.02);
}

TEST(Rng, BernoulliRate) {
  sc::Rng rng(13);
  int n = 0;
  for (int i = 0; i < 100000; ++i) n += rng.bernoulli(0.3);
  EXPECT_NEAR(n / 100000.0, 0.3, 0.01);
}

TEST(Stats, WelfordMatchesClosedForm) {
  sc::RunningStats st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
}

TEST(Stats, MergeEqualsSequential) {
  sc::Rng rng(17);
  sc::RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(Stats, Percentile) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  EXPECT_NEAR(sc::percentile(xs, 50), 50.5, 1e-9);
  EXPECT_NEAR(sc::percentile(xs, 0), 1.0, 1e-9);
  EXPECT_NEAR(sc::percentile(xs, 100), 100.0, 1e-9);
}

TEST(Table, RendersAligned) {
  sc::Table t("demo");
  t.set_header({"layer", "value"});
  t.add_row({"conv1", sc::Table::num(1.2345, 2)});
  t.add_row({"a-much-longer-name", sc::Table::pct(0.5)});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("50.0%"), std::string::npos);
  EXPECT_NE(s.find("a-much-longer-name"), std::string::npos);
}

TEST(Table, PmFormat) {
  EXPECT_EQ(sc::Table::pm(1.5, 0.25, 2), "1.50 +- 0.25");
}

TEST(LogHistogram, ExactBelowSixteen) {
  // The first 16 buckets are unit-width: small values round-trip exactly.
  sc::LogHistogram h;
  for (int v = 0; v < 16; ++v) h.add(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_DOUBLE_EQ(h.percentile(100.0 / 16.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 15.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 15.0);
}

TEST(LogHistogram, RelativeErrorBounded) {
  // 16 linear sub-buckets per octave cap the relative quantization error at
  // half a sub-bucket: |estimate - value| <= value / 16 for values >= 16.
  sc::LogHistogram h;
  sc::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const double v = std::exp(rng.uniform() * std::log(1e9));
    h = sc::LogHistogram{};
    h.add(v);
    const double est = h.percentile(50);
    EXPECT_NEAR(est, std::llround(v),
                std::max(1.0, static_cast<double>(std::llround(v)) / 16.0))
        << "value " << v;
  }
}

TEST(LogHistogram, PercentilesTrackExactOnSkewedSample) {
  // Latency-shaped distribution (bulk small, long tail): histogram p50/p95/
  // p99 must land within one sub-bucket of the exact order statistics.
  sc::LogHistogram h;
  std::vector<double> xs;
  sc::Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const double v = 50.0 * std::pow(1000.0, rng.uniform() * rng.uniform());
    h.add(v);
    xs.push_back(static_cast<double>(std::llround(v)));
  }
  for (const double p : {50.0, 95.0, 99.0}) {
    const double exact = sc::percentile(xs, p);
    EXPECT_NEAR(h.percentile(p), exact, std::max(1.0, exact / 8.0))
        << "p" << p;
  }
}

TEST(LogHistogram, MergeEqualsSequential) {
  sc::LogHistogram a, b, all;
  sc::Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    const double v = rng.uniform() * 1e6;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.sum(), all.sum(), 1e-6 * all.sum());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  for (const double p : {10.0, 50.0, 90.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), all.percentile(p));
  }
}

TEST(LogHistogram, HugeValuesClampWithoutOverflow) {
  sc::LogHistogram h;
  h.add(1e30);  // far beyond the 2^40 top octave: clamps, never overflows
  h.add(5.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
  EXPECT_GE(h.percentile(100), std::pow(2.0, 39));
}
