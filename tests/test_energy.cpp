// Energy model: component accounting, format ordering, and the calibrated
// power bands the paper reports (0.132 / 0.233 / 0.219 W).
#include <gtest/gtest.h>

#include "arch/energy.hpp"

namespace arch = spikestream::arch;
namespace sc = spikestream::common;

TEST(Energy, BreakdownSumsToTotal) {
  arch::EnergyParams p;
  arch::Activity a;
  a.cycles = 1000;
  a.int_instrs = 500;
  a.fpu_add_ops = 250;
  a.fpu_mac_ops = 50;
  a.tcdm_words = 400;
  a.ssr_elems = 250;
  a.dma_bytes = 2048;
  const auto e = arch::compute_energy(p, a, sc::FpFormat::FP16);
  EXPECT_NEAR(e.total_pj(),
              e.int_pj + e.icache_pj + e.fpu_pj + e.tcdm_pj + e.ssr_pj +
                  e.dma_pj + e.static_pj,
              1e-9);
  EXPECT_GT(e.fpu_pj, 0.0);
  EXPECT_GT(e.static_pj, 0.0);
}

TEST(Energy, MacCostsMoreThanAdd) {
  arch::EnergyParams p;
  arch::Activity add, mac;
  add.cycles = mac.cycles = 100;
  add.fpu_add_ops = 100;
  mac.fpu_mac_ops = 100;
  EXPECT_GT(arch::compute_energy(p, mac, sc::FpFormat::FP16).fpu_pj,
            arch::compute_energy(p, add, sc::FpFormat::FP16).fpu_pj);
}

TEST(Energy, NarrowFormatsCheaperPerOp) {
  arch::EnergyParams p;
  EXPECT_LT(p.fpu_op(sc::FpFormat::FP8), p.fpu_op(sc::FpFormat::FP16));
  EXPECT_LT(p.fpu_op(sc::FpFormat::FP16), p.fpu_op(sc::FpFormat::FP32));
  EXPECT_LT(p.fpu_op(sc::FpFormat::FP32), p.fpu_op(sc::FpFormat::FP64));
}

TEST(Energy, PowerIsEnergyOverTime) {
  arch::EnergyParams p;
  arch::Activity a;
  a.cycles = 1e6;
  a.fpu_add_ops = 5e5;
  const auto e = arch::compute_energy(p, a, sc::FpFormat::FP16);
  const double w = arch::average_power_w(p, a, sc::FpFormat::FP16);
  EXPECT_NEAR(w, e.total_pj() * 1e-12 / (a.cycles / p.freq_hz), 1e-9);
}

TEST(Energy, BaselinePowerBandMatchesPaper) {
  // Baseline FP16 activity profile: int pipe ~85% busy, 1 FPU op and ~2 TCDM
  // words per 11 cycles, no SSR. Paper: 0.1319 W.
  arch::EnergyParams p;
  arch::Activity a;
  const double cycles = 1e6;
  a.cycles = cycles;
  a.active_cores = 8;
  a.int_instrs = 8.0 / 11.0 * cycles * 8;
  a.fpu_add_ops = cycles / 11.0 * 8;
  a.tcdm_words = 2.0 * cycles / 11.0 * 8;
  const double w = arch::average_power_w(p, a, sc::FpFormat::FP16);
  EXPECT_NEAR(w, 0.132, 0.025);
}

TEST(Energy, SpikeStreamPowerBandMatchesPaper) {
  // SpikeStream FP16: measured kernel occupancy ~0.42 FPU ops/cycle (the
  // II=2 ceiling of 0.5 minus setup-bound SpVAs), 1.25 TCDM words/op, SSR
  // busy, thin integer activity. Paper: 0.233 W.
  arch::EnergyParams p;
  arch::Activity a;
  const double cycles = 1e6;
  const double occ = 0.42;
  a.cycles = cycles;
  a.active_cores = 8;
  a.int_instrs = 0.15 * cycles * 8;
  a.fpu_add_ops = occ * cycles * 8;
  a.tcdm_words = 1.25 * occ * cycles * 8;
  a.ssr_elems = occ * cycles * 8;
  const double w16 = arch::average_power_w(p, a, sc::FpFormat::FP16);
  EXPECT_NEAR(w16, 0.233, 0.04);
  // FP8 at the same occupancy is a few percent cheaper (paper: -6.7%).
  const double w8 = arch::average_power_w(p, a, sc::FpFormat::FP8);
  EXPECT_LT(w8, w16);
  EXPECT_NEAR((w16 - w8) / w16, 0.067, 0.05);
}

TEST(Energy, ActivityAccumulate) {
  arch::Activity a, b;
  a.cycles = 10;
  a.int_instrs = 5;
  b.cycles = 20;
  b.int_instrs = 7;
  b.dma_bytes = 64;
  a.accumulate(b);
  EXPECT_DOUBLE_EQ(a.cycles, 30.0);
  EXPECT_DOUBLE_EQ(a.int_instrs, 12.0);
  EXPECT_DOUBLE_EQ(a.dma_bytes, 64.0);
}
