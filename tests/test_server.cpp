// Inference-as-a-service runtime contract:
//   * the MPSC admission ring keeps per-producer FIFO order, never loses or
//     duplicates a request, and rejects (never blocks) when full;
//   * stop() closes admission, drains every admitted request through normal
//     waves, and joins cleanly — nothing is ever stranded in kQueued;
//   * a partial wave fires on the max_queue_delay_us deadline instead of
//     waiting for lanes it cannot fill;
//   * served outputs — spike counts AND modeled cycles — are bit-identical
//     to offline BatchRunner lockstep execution of the same inputs, whatever
//     wave boundaries the arrival timing produced (the PR-5 segment-major
//     guarantee: per-sample charges are batch means, independent of lane
//     assignment and wave width);
//   * the SLO wave-size controller shrinks under sustained light load and
//     grows back under backlog, with hysteresis — no oscillation;
//   * idle threads (worker pool and server dispatcher) block, not spin —
//     pinned by a CPU-time budget over a wall-clock idle window.
#include <gtest/gtest.h>
#include <sys/resource.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "runtime/batch.hpp"
#include "runtime/server.hpp"
#include "runtime/worker_pool.hpp"
#include "snn/calibrate.hpp"
#include "snn/input_gen.hpp"

namespace {

namespace rt = spikestream::runtime;
namespace k = spikestream::kernels;
namespace snn = spikestream::snn;
namespace sc = spikestream::common;

snn::Network test_net() {
  snn::Network net = snn::Network::make_tiny(18, 3, 32, 10);
  sc::Rng rng(42);
  net.init_weights(rng);
  const auto calib = snn::make_batch(4, 7, 16, 16, 3);
  const std::vector<double> targets = {0.20, 0.15, 0.30};
  snn::calibrate_thresholds(net, calib, targets);
  return net;
}

double process_cpu_seconds() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  const auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) + 1e-6 * static_cast<double>(t.tv_usec);
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
}

}  // namespace

TEST(MpscQueue, PerProducerFifoNoLossNoDuplication) {
  // 4 producers x 2000 items through a ring much smaller than the total:
  // producers spin on try_push (full ring is a normal transient here), the
  // consumer drains concurrently. Every item is (producer << 32 | seq), so
  // the consumer can check per-producer order and exact coverage.
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 2000;
  rt::BoundedMpscQueue<std::uint64_t> q(64);
  std::vector<std::uint64_t> got;
  got.reserve(kProducers * kPerProducer);
  std::atomic<int> live{kProducers};

  std::thread consumer([&] {
    std::uint64_t v = 0;
    while (live.load(std::memory_order_acquire) > 0 || q.size_approx() > 0) {
      while (q.try_pop(v)) got.push_back(v);
      std::this_thread::yield();
    }
    while (q.try_pop(v)) got.push_back(v);
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v = (static_cast<std::uint64_t>(p) << 32) | i;
        while (!q.try_push(v)) std::this_thread::yield();
      }
      live.fetch_sub(1, std::memory_order_release);
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();

  ASSERT_EQ(got.size(), kProducers * kPerProducer);
  std::uint64_t next_seq[kProducers] = {};
  for (const std::uint64_t v : got) {
    const auto p = static_cast<std::size_t>(v >> 32);
    ASSERT_LT(p, static_cast<std::size_t>(kProducers));
    EXPECT_EQ(v & 0xffffffffu, next_seq[p]) << "producer " << p
                                            << " order broken";
    ++next_seq[p];
  }
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next_seq[p], kPerProducer);
}

TEST(MpscQueue, StressManyProducersTinyRingStallingConsumer) {
  // Harsher multi-producer stress: 8 producers hammer a 16-cell ring while
  // the consumer periodically stalls, so the ring oscillates between full
  // (every producer spinning on rejects) and drained. Same invariants as the
  // FIFO test — per-producer order, no loss, no duplication — but under far
  // more CAS contention and wraparound pressure.
  constexpr int kProducers = 8;
  constexpr std::uint64_t kPerProducer = 2000;
  rt::BoundedMpscQueue<std::uint64_t> q(16);
  std::vector<std::uint64_t> got;
  got.reserve(kProducers * kPerProducer);
  std::atomic<int> live{kProducers};

  std::thread consumer([&] {
    std::uint64_t v = 0;
    std::size_t pops = 0;
    while (live.load(std::memory_order_acquire) > 0 || q.size_approx() > 0) {
      while (q.try_pop(v)) {
        got.push_back(v);
        if ((++pops & 1023u) == 0) {
          // Stall with the ring under pressure: producers must keep
          // rejecting (never block, never corrupt a cell) until we resume.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
      std::this_thread::yield();
    }
    while (q.try_pop(v)) got.push_back(v);
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v = (static_cast<std::uint64_t>(p) << 32) | i;
        while (!q.try_push(v)) std::this_thread::yield();
      }
      live.fetch_sub(1, std::memory_order_release);
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();

  ASSERT_EQ(got.size(), kProducers * kPerProducer);
  std::uint64_t next_seq[kProducers] = {};
  for (const std::uint64_t v : got) {
    const auto p = static_cast<std::size_t>(v >> 32);
    ASSERT_LT(p, static_cast<std::size_t>(kProducers));
    ASSERT_EQ(v & 0xffffffffu, next_seq[p]) << "producer " << p
                                            << " order broken";
    ++next_seq[p];
  }
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next_seq[p], kPerProducer);
}

TEST(MpscQueue, FullRingRejectsAndRecovers) {
  rt::BoundedMpscQueue<int> q(8);
  EXPECT_EQ(q.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(8)) << "full ring must reject, not block";
  int v = -1;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(q.try_push(8)) << "freed cell must be reusable";
  for (int i = 1; i <= 8; ++i) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v));
}

TEST(InferenceServer, SubmitAfterStopRejects) {
  const snn::Network net = test_net();
  const auto img = snn::make_batch(1, 5, 16, 16, 3)[0];
  k::RunOptions opt;
  opt.segment_major_lanes = 4;
  rt::InferenceServer server(net, opt);
  server.stop();
  rt::ServeRequest req;
  req.image = &img;
  EXPECT_FALSE(server.submit(req));
  EXPECT_FALSE(req.wait());
  EXPECT_EQ(req.state.load(), rt::ServeRequest::kRejected);
  EXPECT_GE(server.stats().rejected, 1u);
}

TEST(InferenceServer, StopDrainsEveryAdmittedRequest) {
  // Submit a burst and stop() immediately: shutdown must drain all admitted
  // requests through normal (or drain) waves — none stranded in kQueued.
  const snn::Network net = test_net();
  const auto images = snn::make_batch(4, 9, 16, 16, 3);
  k::RunOptions opt;
  opt.segment_major_lanes = 4;
  rt::ServerConfig scfg;
  scfg.max_queue_delay_us = 50000;  // long: drain must not wait for it
  rt::InferenceServer server(net, opt, {}, scfg);

  constexpr int kN = 20;
  std::vector<rt::ServeRequest> reqs(kN);
  int admitted = 0;
  for (int i = 0; i < kN; ++i) {
    reqs[static_cast<std::size_t>(i)].image =
        &images[static_cast<std::size_t>(i) % images.size()];
    if (server.submit(reqs[static_cast<std::size_t>(i)])) ++admitted;
  }
  server.stop();
  ASSERT_GT(admitted, 0);
  for (int i = 0; i < kN; ++i) {
    auto& r = reqs[static_cast<std::size_t>(i)];
    const int s = r.state.load();
    ASSERT_NE(s, rt::ServeRequest::kQueued) << "request stranded by stop()";
    if (s == rt::ServeRequest::kDone) {
      EXPECT_FALSE(r.result.spike_counts.empty());
      EXPECT_GE(r.complete_ns, r.enqueue_ns);
    }
  }
  const rt::ServerStats st = server.stats();
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(admitted));
  EXPECT_EQ(st.admitted, static_cast<std::uint64_t>(admitted));
}

TEST(InferenceServer, StopDuringThrowingWavesDrainsAllToTerminal) {
  // Shutdown ordering under failure: stop() called while an in-flight wave
  // is throwing (and sleeping in retry backoff) must still drain every
  // admitted request to a terminal state — kDone or kError, never a strand
  // in kQueued — and must skip the remaining backoff sleeps so drain is
  // prompt. Every scheduled wave throws until its retries are exhausted.
  const snn::Network net = test_net();
  const auto images = snn::make_batch(4, 41, 16, 16, 3);
  k::RunOptions opt;
  opt.segment_major_lanes = 4;

  rt::ServerConfig scfg;
  scfg.adaptive_wave = false;
  scfg.max_queue_delay_us = 100000;  // long: drain must not wait for it
  scfg.max_wave_retries = 2;
  scfg.retry_backoff_us = 100000;  // 100 ms per retry if NOT skipped
  for (std::uint64_t w = 0; w < 4; ++w) {
    scfg.faults.transient_error(w, /*failures=*/100);
  }
  rt::InferenceServer server(net, opt, {}, scfg);

  constexpr int kN = 12;
  std::vector<rt::ServeRequest> reqs(kN);
  int admitted = 0;
  for (int i = 0; i < kN; ++i) {
    reqs[static_cast<std::size_t>(i)].image =
        &images[static_cast<std::size_t>(i) % images.size()];
    if (server.submit(reqs[static_cast<std::size_t>(i)])) ++admitted;
  }
  const auto t0 = std::chrono::steady_clock::now();
  server.stop();
  const double stop_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_GT(admitted, 0);

  for (int i = 0; i < kN; ++i) {
    const int s = reqs[static_cast<std::size_t>(i)].state.load();
    ASSERT_NE(s, rt::ServeRequest::kQueued)
        << "request stranded by stop() under a throwing wave";
    EXPECT_TRUE(s == rt::ServeRequest::kDone ||
                s == rt::ServeRequest::kError ||
                s == rt::ServeRequest::kRejected);
  }
  const rt::ServerStats st = server.stats();
  EXPECT_EQ(st.admitted, static_cast<std::uint64_t>(admitted));
  EXPECT_EQ(st.admitted, st.completed + st.timed_out + st.errored)
      << "drain must reconcile exactly even when waves throw";
  EXPECT_GE(st.wave_errors, 1u);
  // 3 throwing waves x 2 retries x >= 100 ms would exceed 600 ms without the
  // stopping-skip; at most the first wave's backoffs can land pre-stop.
  EXPECT_LT(stop_ms, 550.0) << "retry backoff must be skipped while stopping";
}

TEST(InferenceServer, DeadlineFiresPartialWave) {
  // 3 requests into an 8-lane server: the wave can never fill, so it must
  // fire on the max_queue_delay_us deadline with exactly the queued lanes.
  const snn::Network net = test_net();
  const auto images = snn::make_batch(3, 11, 16, 16, 3);
  k::RunOptions opt;
  opt.segment_major_lanes = 8;
  rt::ServerConfig scfg;
  scfg.max_queue_delay_us = 1000;
  scfg.adaptive_wave = false;  // hold 8 lanes: partial waves stay partial
  rt::InferenceServer server(net, opt, {}, scfg);

  std::vector<rt::ServeRequest> reqs(3);
  for (int i = 0; i < 3; ++i) {
    reqs[static_cast<std::size_t>(i)].image =
        &images[static_cast<std::size_t>(i)];
    ASSERT_TRUE(server.submit(reqs[static_cast<std::size_t>(i)]));
  }
  for (auto& r : reqs) ASSERT_TRUE(r.wait());
  const rt::ServerStats st = server.stats();
  EXPECT_EQ(st.completed, 3u);
  EXPECT_GE(st.deadline_waves, 1u)
      << "partial wave must fire on the deadline, not wait for lanes";
  EXPECT_EQ(st.full_waves, 0u);
  EXPECT_LE(st.wave_lanes.mean(), 3.0);
  for (auto& r : reqs) {
    EXPECT_GE(r.dispatch_ns, r.enqueue_ns);
    EXPECT_GE(r.complete_ns, r.dispatch_ns);
  }
}

TEST(InferenceServer, ServedBitIdenticalToOfflineBatchRunner) {
  // Spikes AND modeled cycles must match the offline lockstep path exactly,
  // whatever wave boundaries arrival timing produced. batch_weight_reuse
  // stays off so per-sample cycles are reuse-history-free and comparable
  // sample by sample.
  const snn::Network net = test_net();
  const auto images = snn::make_batch(6, 21, 16, 16, 3);
  constexpr int kSteps = 3;
  k::RunOptions opt;
  opt.segment_major_lanes = 4;
  opt.batch_weight_reuse = false;

  const rt::BatchRunner runner(net, opt, {}, {}, /*workers=*/1);
  const auto offline = runner.run(images, kSteps);

  rt::ServerConfig scfg;
  scfg.timesteps = kSteps;
  scfg.max_queue_delay_us = 500;
  rt::InferenceServer server(net, opt, {}, scfg);
  std::vector<rt::ServeRequest> reqs(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    reqs[i].image = &images[i];
    ASSERT_TRUE(server.submit(reqs[i]));
  }
  for (auto& r : reqs) ASSERT_TRUE(r.wait());
  server.stop();

  for (std::size_t i = 0; i < images.size(); ++i) {
    ASSERT_EQ(reqs[i].result.timesteps, offline[i].timesteps);
    EXPECT_EQ(reqs[i].result.spike_counts, offline[i].spike_counts)
        << "sample " << i << ": served spikes differ from offline";
    EXPECT_EQ(reqs[i].result.total_cycles, offline[i].total_cycles)
        << "sample " << i << ": served modeled cycles differ from offline";
    ASSERT_EQ(reqs[i].result.cycles_per_step.size(),
              offline[i].cycles_per_step.size());
    for (std::size_t t = 0; t < offline[i].cycles_per_step.size(); ++t) {
      EXPECT_EQ(reqs[i].result.cycles_per_step[t],
                offline[i].cycles_per_step[t]);
    }
  }

  // Resubmission through recycled slots stays bit-identical too.
  rt::InferenceServer server2(net, opt, {}, scfg);
  rt::ServeRequest slot;
  for (std::size_t i = 0; i < images.size(); ++i) {
    slot.image = &images[i];
    ASSERT_TRUE(server2.submit(slot));
    ASSERT_TRUE(slot.wait());
    EXPECT_EQ(slot.result.spike_counts, offline[i].spike_counts);
    EXPECT_EQ(slot.result.total_cycles, offline[i].total_cycles);
  }
}

TEST(InferenceServer, ControllerShrinksThenRegrowsWithoutOscillation) {
  const snn::Network net = test_net();
  const auto images = snn::make_batch(4, 33, 16, 16, 3);
  k::RunOptions opt;
  opt.segment_major_lanes = 8;
  rt::ServerConfig scfg;
  scfg.max_queue_delay_us = 500;
  scfg.controller_streak = 2;
  rt::InferenceServer server(net, opt, {}, scfg);
  ASSERT_EQ(server.target_lanes(), 8);

  // Sustained light load: strictly sequential submit->wait means every wave
  // is a deadline-fired single lane. The target must halve on each streak —
  // 8 -> 4 -> 2 -> 1, exactly three shrinks — and then hold at the floor.
  rt::ServeRequest slot;
  for (int i = 0; i < 14; ++i) {
    slot.image = &images[static_cast<std::size_t>(i) % images.size()];
    ASSERT_TRUE(server.submit(slot));
    ASSERT_TRUE(slot.wait());
  }
  {
    const rt::ServerStats st = server.stats();
    EXPECT_EQ(st.wave_shrinks, 3);
    EXPECT_EQ(st.wave_grows, 0);
    EXPECT_EQ(server.target_lanes(), 1) << "light load must reach the floor";
  }

  // Heavy burst: backlog behind full waves must grow the target back up.
  constexpr int kBurst = 24;
  std::vector<rt::ServeRequest> burst(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    burst[static_cast<std::size_t>(i)].image =
        &images[static_cast<std::size_t>(i) % images.size()];
    ASSERT_TRUE(server.submit(burst[static_cast<std::size_t>(i)]));
  }
  for (auto& r : burst) ASSERT_TRUE(r.wait());
  const rt::ServerStats st = server.stats();
  EXPECT_GE(st.wave_grows, 1) << "backlog must grow the wave target";
  EXPECT_GE(server.target_lanes(), 2);
  // Hysteresis bound: every move needs a fresh streak of evidence, so the
  // whole run can only have flipped a handful of times — never thrash.
  EXPECT_LE(st.wave_grows + st.wave_shrinks, 8);
}

TEST(IdleBehavior, WorkerPoolIdleBurnsNoCpu) {
  // Idle workers must block on the pool's condition variable, not spin: over
  // a 400 ms wall-clock idle window the whole process must accumulate far
  // less CPU than one spinning core would (~400 ms). On a single-core host
  // the pool clamps to zero threads and the bound holds trivially — the
  // assertion is about what the threads do when they do exist.
  rt::WorkerPool pool(4);
  std::atomic<int> ran{0};
  pool.parallel_for(8, 4, [&](std::size_t, std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });  // workers exist and have gone back to idle
  EXPECT_EQ(ran.load(), 8);

  const double cpu0 = process_cpu_seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const double cpu = process_cpu_seconds() - cpu0;
  EXPECT_LT(cpu, 0.2) << "idle worker pool must not busy-wait";
}

TEST(IdleBehavior, ServerDispatcherIdleBurnsNoCpu) {
  // Same contract for the dispatcher: with an empty queue it sleeps on its
  // wake condition variable (producers nudge it awake), so an idle server
  // costs no CPU between requests.
  const snn::Network net = test_net();
  const auto img = snn::make_batch(1, 3, 16, 16, 3)[0];
  k::RunOptions opt;
  opt.segment_major_lanes = 4;
  rt::InferenceServer server(net, opt);
  rt::ServeRequest warm;
  warm.image = &img;
  ASSERT_TRUE(server.submit(warm));
  ASSERT_TRUE(warm.wait());  // one wave: the dispatcher is demonstrably live

  const double cpu0 = process_cpu_seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const double cpu = process_cpu_seconds() - cpu0;
  EXPECT_LT(cpu, 0.2) << "idle dispatcher must block, not poll";

  // And it still wakes up afterwards.
  rt::ServeRequest again;
  again.image = &img;
  ASSERT_TRUE(server.submit(again));
  EXPECT_TRUE(again.wait());
}
