// Banked-DRAM model invariants (arch/dram): flat-legacy pricing is
// bit-identical to the historical expressions, banked streams conserve bytes,
// row-hit rates respond monotonically to run shape, packed storage never
// moves more bytes than fixed-stride, and the double-buffered segment-major
// spill/fill hides at most the spill streams' first-beat overhead — with
// charged + hidden reconstructing the serial timeline exactly. Engine-level:
// the memory model is timing-only, so spikes stay bit-identical between flat
// and banked mode across every backend and cluster count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "arch/dram/dram.hpp"
#include "arch/dram/stream_reader.hpp"
#include "common/rng.hpp"
#include "kernels/tiling.hpp"
#include "runtime/backend_cycle.hpp"
#include "runtime/backend_sharded.hpp"
#include "runtime/batch.hpp"
#include "snn/calibrate.hpp"
#include "snn/input_gen.hpp"
#include "snn/network.hpp"

namespace arch = spikestream::arch;
namespace k = spikestream::kernels;
namespace rt = spikestream::runtime;
namespace snn = spikestream::snn;
namespace sc = spikestream::common;

namespace {

double csr_bytes_at_rate(const snn::LayerSpec& s, double rate) {
  const double positions = static_cast<double>(s.in_h) * s.in_w;
  return positions * s.in_c * rate * 2.0 + positions * 2.0;
}

/// The wide FC spill vehicle's middle layer (see snn::Network::make_wide_fc).
snn::LayerSpec wide_fc_spec() {
  snn::LayerSpec fc;
  fc.kind = snn::LayerKind::kFc;
  fc.name = "fc2";
  fc.in_c = 512;
  fc.out_c = 4096;
  return fc;
}

rt::BackendConfig sharded_cfg(int clusters) {
  rt::BackendConfig cfg;
  cfg.kind = rt::BackendKind::kSharded;
  cfg.clusters = clusters;
  return cfg;
}

rt::BackendConfig cycle_cfg() {
  rt::BackendConfig cfg;
  cfg.kind = rt::BackendKind::kCycleAccurate;
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------------------
// DramConfig::stream — closed-form pricing.
// ---------------------------------------------------------------------------

TEST(Dram, FlatStreamMatchesLegacyExpression) {
  const arch::DramConfig d = arch::DramConfig::flat();
  ASSERT_TRUE(d.flat_legacy);
  for (const double bytes : {64.0, 4096.0, 1.5e6}) {
    for (const double runs : {1.0, 3.0, 17.5}) {
      const arch::DramCost c = d.stream(bytes, runs);
      EXPECT_DOUBLE_EQ(c.bytes, bytes);
      EXPECT_DOUBLE_EQ(c.cycles, bytes / 64.0 + runs * 100.0);
      EXPECT_DOUBLE_EQ(c.row_hits, 0.0);   // flat mode: no row accounting
      EXPECT_DOUBLE_EQ(c.row_misses, 0.0);
    }
  }
}

TEST(Dram, BankedSequentialStreamApproachesPeakBandwidth) {
  const arch::DramConfig d = arch::DramConfig::banked();
  // One 4 MiB contiguous run: a single request latency and row-miss up
  // front, every later activation hidden behind the other banks' transfers.
  const double bytes = 4.0 * 1024 * 1024;
  const arch::DramCost c = d.stream(bytes, 1.0);
  const double peak = bytes / d.bytes_per_cycle;
  EXPECT_LT(c.cycles / peak, 1.01);  // within 1% of peak bandwidth
  EXPECT_GT(c.hit_rate(), 0.9);
  EXPECT_DOUBLE_EQ(c.row_misses, std::ceil(bytes / d.row_bytes));
}

TEST(Dram, BankedStridedStreamPaysPerRunPenalties) {
  const arch::DramConfig d = arch::DramConfig::banked();
  const double bytes = 1.0 * 1024 * 1024;
  // Same bytes, 4 KiB runs: every run pays request latency + row miss.
  const double runs = bytes / 4096.0;
  const arch::DramCost c = d.stream(bytes, runs);
  EXPECT_GE(c.cycles,
            bytes / d.bytes_per_cycle +
                runs * (d.request_latency + d.row_miss_cost()));
  EXPECT_LT(c.hit_rate(), 0.98);
  // Strided costs strictly more than the same bytes streamed sequentially.
  EXPECT_GT(c.cycles, d.stream(bytes, 1.0).cycles);
}

TEST(Dram, RowHitRateMonotonicInRunSize) {
  // Splitting the same total into more (smaller) runs must never raise the
  // hit rate or lower the cycle cost: each extra run boundary converts hits
  // into misses and adds first-beat latency.
  const arch::DramConfig d = arch::DramConfig::banked();
  const double bytes = 2.0 * 1024 * 1024;
  double prev_hit_rate = 1.0, prev_cycles = 0.0;
  for (double runs = 1.0; runs <= 4096.0; runs *= 4.0) {
    const arch::DramCost c = d.stream(bytes, runs);
    if (runs > 1.0) {
      EXPECT_LE(c.hit_rate(), prev_hit_rate + 1e-12) << "runs=" << runs;
      EXPECT_GE(c.cycles, prev_cycles - 1e-9) << "runs=" << runs;
    }
    prev_hit_rate = c.hit_rate();
    prev_cycles = c.cycles;
  }
}

TEST(Dram, StreamConservesBytesInBothModes) {
  const arch::DramConfig flat = arch::DramConfig::flat();
  const arch::DramConfig banked = arch::DramConfig::banked();
  for (const double bytes : {0.0, 100.0, 65536.0, 3.3e7}) {
    for (const double runs : {1.0, 8.0, 1000.0}) {
      EXPECT_DOUBLE_EQ(flat.stream(bytes, runs).bytes, bytes);
      EXPECT_DOUBLE_EQ(banked.stream(bytes, runs).bytes, bytes);
    }
  }
}

TEST(Dram, PackedNeverExceedsFixedStrideBytes) {
  const arch::DramConfig d = arch::DramConfig::banked();
  for (const double payload : {64.0, 1000.0, 4096.0, 1.0e6}) {
    for (const double records : {1.0, 7.0, 64.0, 513.0}) {
      const double packed =
          d.stored_bytes(arch::DramFormat::kPacked, payload, records);
      const double strided =
          d.stored_bytes(arch::DramFormat::kFixedStride, payload, records);
      EXPECT_DOUBLE_EQ(packed, payload);
      EXPECT_GE(strided, packed);
      // Fixed stride pads to whole slots of the stride quantum.
      const double slot = strided / records;
      if (strided > payload) {
        EXPECT_NEAR(std::fmod(slot, d.stride_quantum), 0.0, 1e-9);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// StreamReader — address-tracked open-row accounting.
// ---------------------------------------------------------------------------

TEST(Dram, StreamReaderReReadOfOpenRowHits) {
  arch::StreamReader rd(arch::DramConfig::banked());
  rd.touch(0, 2048);  // opens row 0 on bank 0
  const double misses_after_first = rd.cost().row_misses;
  EXPECT_DOUBLE_EQ(misses_after_first, 1.0);
  rd.touch(0, 2048);  // same row: every beat hits, no new activation
  EXPECT_DOUBLE_EQ(rd.cost().row_misses, misses_after_first);
  EXPECT_GE(rd.cost().row_hits, 2048.0 / 64.0 * 2.0 - 1.0);
}

TEST(Dram, StreamReaderConflictingRowsMiss) {
  arch::StreamReader rd(arch::DramConfig::banked());
  const auto row_bytes = static_cast<std::uint64_t>(2048);
  const std::uint64_t banks = 8;
  // Rows r and r + banks map to the same bank: ping-ponging between them
  // must activate on every touch.
  for (int i = 0; i < 6; ++i) {
    rd.touch((i % 2 == 0 ? 0 : banks) * row_bytes, 64);
  }
  EXPECT_DOUBLE_EQ(rd.cost().row_misses, 6.0);
  // Whereas alternating rows on *different* banks keep both rows open.
  arch::StreamReader rd2(arch::DramConfig::banked());
  for (int i = 0; i < 6; ++i) {
    rd2.touch((i % 2 == 0 ? 0 : 1) * row_bytes, 64);
  }
  EXPECT_DOUBLE_EQ(rd2.cost().row_misses, 2.0);
}

TEST(Dram, StreamReaderSequentialWalkActivatesEachRowOnce) {
  const arch::DramConfig d = arch::DramConfig::banked();
  arch::StreamReader rd(d);
  const double bytes = 16.0 * d.row_bytes;
  rd.touch(0, static_cast<std::uint64_t>(bytes));
  EXPECT_DOUBLE_EQ(rd.cost().row_misses, 16.0);
  EXPECT_DOUBLE_EQ(rd.cost().bytes, bytes);
  // Matches the closed-form single-run stream() on the same shape.
  const arch::DramCost closed = d.stream(bytes, 1.0);
  EXPECT_DOUBLE_EQ(rd.cost().row_misses, closed.row_misses);
  EXPECT_DOUBLE_EQ(rd.cost().row_hits, closed.row_hits);
  EXPECT_DOUBLE_EQ(rd.cost().cycles, closed.cycles);
  rd.reset();
  EXPECT_DOUBLE_EQ(rd.cost().bytes, 0.0);
}

// ---------------------------------------------------------------------------
// Plan-level invariants (kernels/tiling under CostParams::dram).
// ---------------------------------------------------------------------------

TEST(DramPlan, FlatLegacyMatchesHandComputedExpressions) {
  // The default CostParams must reproduce the historical flat pricing
  // exactly: bytes / bandwidth + transfers * latency, zero row activity.
  const snn::Network net = snn::Network::make_svgg11();
  const k::CostParams p;
  ASSERT_TRUE(p.dram.flat_legacy);
  const auto& fc7 = net.layer(6);
  const double ifb = 1000.0, ofb = 64.0;
  const auto plan = k::plan_layer(fc7, sc::FpFormat::FP16, ifb, ofb, p);
  const double n_transfers =
      static_cast<double>(plan.if_stripes) * plan.weight_tiles *
          plan.in_segments +
      plan.if_stripes + plan.weight_tiles;
  EXPECT_DOUBLE_EQ(plan.dma_cycles,
                   plan.dma_bytes / 64.0 + n_transfers * 100.0);
  EXPECT_DOUBLE_EQ(plan.dma_row_hits, 0.0);
  EXPECT_DOUBLE_EQ(plan.dma_row_misses, 0.0);
  EXPECT_DOUBLE_EQ(plan.dma_row_hits_warm, 0.0);
  EXPECT_DOUBLE_EQ(plan.sm_hidden_cycles, 0.0);
}

TEST(DramPlan, BankedConservesBytesAgainstFlat) {
  // The banked model reprices *time*, never volume: with packed storage the
  // cold DMA bytes of every S-VGG11 layer match flat mode exactly, and the
  // banked plan reports row activity.
  const snn::Network net = snn::Network::make_svgg11();
  k::CostParams flat;
  k::CostParams banked;
  banked.dram = arch::DramConfig::banked();
  const double rates[] = {1.0, 0.10, 0.30, 0.22, 0.18, 0.10, 0.06, 0.04};
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const auto& spec = net.layer(l);
    k::TilePlan pf, pb;
    if (spec.kind == snn::LayerKind::kEncodeConv) {
      pf = k::plan_encode_layer(spec, sc::FpFormat::FP16, flat);
      pb = k::plan_encode_layer(spec, sc::FpFormat::FP16, banked);
    } else {
      const double ifb = csr_bytes_at_rate(spec, rates[l]);
      pf = k::plan_layer(spec, sc::FpFormat::FP16, ifb, 4096.0, flat);
      pb = k::plan_layer(spec, sc::FpFormat::FP16, ifb, 4096.0, banked);
    }
    EXPECT_DOUBLE_EQ(pb.dma_bytes, pf.dma_bytes) << spec.name;
    EXPECT_GT(pb.dma_row_misses, 0.0) << spec.name;
    EXPECT_GE(pb.dma_row_hits, 0.0) << spec.name;
    // Identical tiling geometry: pricing never changes what fits the SPM.
    EXPECT_EQ(pb.weight_tiles, pf.weight_tiles) << spec.name;
    EXPECT_EQ(pb.in_segments, pf.in_segments) << spec.name;
    EXPECT_EQ(pb.if_stripes, pf.if_stripes) << spec.name;
  }
}

TEST(DramPlan, FixedStridePayloadsNeverCheaper) {
  const snn::Network net = snn::Network::make_svgg11();
  k::CostParams packed;
  packed.dram = arch::DramConfig::banked();
  k::CostParams strided = packed;
  strided.dram.payload_format = arch::DramFormat::kFixedStride;
  const auto& conv4 = net.layer(3);
  const double ifb = csr_bytes_at_rate(conv4, 0.2);
  const auto pp = k::plan_layer(conv4, sc::FpFormat::FP16, ifb, 1000.0, packed);
  const auto ps =
      k::plan_layer(conv4, sc::FpFormat::FP16, ifb, 1000.0, strided);
  EXPECT_GE(ps.dma_bytes, pp.dma_bytes);
  EXPECT_GE(ps.dma_cycles, pp.dma_cycles);
}

TEST(DramPlan, BandStreamsDominateRowHits) {
  // The segmented FC weight bands are long sequential runs: in banked mode
  // the aggregate cold plan must stream near peak (high row-hit rate).
  const snn::Network net = snn::Network::make_svgg11();
  k::CostParams p;
  p.dram = arch::DramConfig::banked();
  const auto plan =
      k::plan_layer(net.layer(6), sc::FpFormat::FP16, 1000.0, 64.0, p);
  const double beats = plan.dma_row_hits + plan.dma_row_misses;
  ASSERT_GT(beats, 0.0);
  EXPECT_GT(plan.dma_row_hits / beats, 0.8);
}

// ---------------------------------------------------------------------------
// Double-buffered segment-major spill/fill.
// ---------------------------------------------------------------------------

TEST(DramPlan, WideFcSpillsAtLargeBatch) {
  const snn::LayerSpec fc = wide_fc_spec();
  k::CostParams p;
  p.dram = arch::DramConfig::banked();
  const double ifb = 400.0, ofb = 128.0, spm = 128.0 * 1024;
  for (const int B : {16, 32}) {
    const auto sm =
        k::plan_layer(fc, sc::FpFormat::FP16, ifb, ofb, p, spm, true, B);
    ASSERT_TRUE(sm.segment_major) << "B=" << B;
    ASSERT_GT(sm.in_segments, 1) << "B=" << B;
    EXPECT_LT(sm.sm_resident_lanes, B) << "B=" << B;
    EXPECT_GT(sm.sm_spill_bytes, 0.0) << "B=" << B;
  }
}

TEST(DramPlan, DoubleBufferHidesSpillOverheadAndConserves) {
  // The ddb variant parks one extra lane for a bounce buffer and hides the
  // spill streams' first-beat overhead under the band weight stream. The
  // hidden cycles must (a) never exceed the serial spill cost, (b) itemize
  // exactly: charged + hidden reconstructs the serial timeline of the same
  // resident configuration, recomputed here from first principles.
  const snn::LayerSpec fc = wide_fc_spec();
  k::CostParams p;
  p.dram = arch::DramConfig::banked();
  const arch::DramConfig& d = p.dram;
  const double ifb = 400.0, ofb = 128.0, spm = 128.0 * 1024;
  const int B = 32;
  const auto sm =
      k::plan_layer(fc, sc::FpFormat::FP16, ifb, ofb, p, spm, true, B);
  ASSERT_TRUE(sm.segment_major);
  ASSERT_GT(sm.sm_spill_bytes, 0.0);
  ASSERT_TRUE(sm.sm_double_buffered)
      << "ddb must win on this geometry: resident=" << sm.sm_resident_lanes;
  EXPECT_GT(sm.sm_hidden_cycles, 0.0);
  EXPECT_LE(sm.sm_hidden_cycles, sm.sm_spill_cycles + 1e-9);

  // Recompute the serial decomposition of the adopted configuration.
  const double tiles = sm.weight_tiles, segs = sm.in_segments;
  const double bands = tiles * segs;
  const double acc = sm.co_per_tile * 2.0;  // FP16
  const double parked = B - sm.sm_resident_lanes;
  const double spill_runs = 2.0 * parked * (segs - 1.0) * tiles / B;
  const double all_weights = 512.0 * 4096.0 * 2.0;
  const arch::DramCost w = d.stream(all_weights / B, bands / B);
  const arch::DramCost ifm = d.stream(tiles * ifb, tiles * segs);
  const arch::DramCost ofm = d.stream(ofb, tiles);
  const arch::DramCost sp = d.stream(sm.sm_spill_bytes, spill_runs);
  const double serial = w.cycles + ifm.cycles + ofm.cycles + sp.cycles;
  const double overhead =
      std::max(0.0, sp.cycles - sp.bytes / d.bytes_per_cycle);
  const double hidden = std::min(overhead, w.cycles);
  EXPECT_NEAR(sm.sm_hidden_cycles, hidden, 1e-6);
  EXPECT_NEAR(sm.sm_dma_cycles + sm.sm_hidden_cycles, serial, 1e-6);
  EXPECT_NEAR(sm.sm_spill_cycles, sp.cycles, 1e-6);
  EXPECT_NEAR(sm.sm_row_hits,
              w.row_hits + ifm.row_hits + ofm.row_hits + sp.row_hits, 1e-6);
  EXPECT_NEAR(sm.sm_row_misses,
              w.row_misses + ifm.row_misses + ofm.row_misses + sp.row_misses,
              1e-6);
}

TEST(DramPlan, DoubleBufferBeatsSerialSpill) {
  // Same geometry with the ddb trade disabled: the serial-spill plan must be
  // strictly slower and report zero hidden cycles.
  const snn::LayerSpec fc = wide_fc_spec();
  k::CostParams ddb, serial;
  ddb.dram = arch::DramConfig::banked();
  serial.dram = arch::DramConfig::banked();
  serial.dram.spill_double_buffer = false;
  const double ifb = 400.0, ofb = 128.0, spm = 128.0 * 1024;
  const int B = 32;
  const auto pd =
      k::plan_layer(fc, sc::FpFormat::FP16, ifb, ofb, ddb, spm, true, B);
  const auto ps =
      k::plan_layer(fc, sc::FpFormat::FP16, ifb, ofb, serial, spm, true, B);
  ASSERT_TRUE(pd.segment_major);
  ASSERT_TRUE(ps.segment_major);
  ASSERT_TRUE(pd.sm_double_buffered);
  EXPECT_FALSE(ps.sm_double_buffered);
  EXPECT_DOUBLE_EQ(ps.sm_hidden_cycles, 0.0);
  EXPECT_LT(pd.sm_dma_cycles, ps.sm_dma_cycles);
}

TEST(DramPlan, HiddenCyclesNeverExceedSpill) {
  const snn::LayerSpec fc = wide_fc_spec();
  k::CostParams p;
  p.dram = arch::DramConfig::banked();
  for (const int B : {2, 4, 8, 16, 32, 64}) {
    for (const double spm : {96.0 * 1024, 128.0 * 1024, 256.0 * 1024}) {
      const auto sm =
          k::plan_layer(fc, sc::FpFormat::FP16, 400.0, 128.0, p, spm, true, B);
      EXPECT_LE(sm.sm_hidden_cycles, sm.sm_spill_cycles + 1e-9)
          << "B=" << B << " spm=" << spm;
      EXPECT_GE(sm.sm_hidden_cycles, 0.0);
      if (!sm.segment_major) {
        EXPECT_DOUBLE_EQ(sm.sm_hidden_cycles, 0.0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Engine-level: the memory model is timing-only.
// ---------------------------------------------------------------------------

TEST(DramParity, SpikesBitIdenticalFlatVsBankedAcrossBackends) {
  snn::Network net = snn::Network::make_tiny(18, 3, 32, 10);
  sc::Rng rng(42);
  net.init_weights(rng);
  const auto calib = snn::make_batch(4, 7, 16, 16, 3);
  const std::vector<double> targets = {0.20, 0.15, 0.30};
  snn::calibrate_thresholds(net, calib, targets);

  k::RunOptions flat;
  flat.fmt = sc::FpFormat::FP16;
  k::RunOptions banked = flat;
  banked.cost.dram = arch::DramConfig::banked();

  const rt::InferenceEngine ref(net, flat);
  std::vector<rt::InferenceEngine> engines;
  engines.emplace_back(net, banked);
  engines.emplace_back(net, banked, cycle_cfg());
  for (const int clusters : {1, 4, 8}) {
    engines.emplace_back(net, banked, sharded_cfg(clusters));
  }

  const auto images = snn::make_batch(2, 99, 16, 16, 3);
  for (const auto& img : images) {
    snn::NetworkState sr = ref.make_state();
    std::vector<snn::NetworkState> states;
    states.reserve(engines.size());
    for (const auto& e : engines) states.push_back(e.make_state());
    for (int t = 0; t < 3; ++t) {
      const auto rr = ref.run(img, sr);
      for (std::size_t i = 0; i < engines.size(); ++i) {
        const auto rb = engines[i].run(img, states[i]);
        ASSERT_EQ(rr.final_output.v, rb.final_output.v)
            << "engine " << i << " t=" << t;
      }
    }
  }
}

TEST(DramParity, WideFcBatchSpikesBitIdenticalAndHiddenItemized) {
  // The spill vehicle end to end: banked + segment-major batch execution
  // must leave spikes untouched across cluster counts while the wide FC
  // layer's stats itemize row activity (and hidden spill cycles when the
  // ddb regime is adopted at engine SPM geometry).
  snn::Network net = snn::Network::make_wide_fc();
  sc::Rng rng(11);
  net.init_weights(rng);
  const auto calib = snn::make_batch(2, 23);
  snn::calibrate_thresholds(net, calib, snn::wide_fc_target_rates());

  const int B = 16;
  k::RunOptions flat;
  flat.fmt = sc::FpFormat::FP16;
  flat.segment_major_lanes = B;
  flat.batch_weight_reuse = true;
  k::RunOptions banked = flat;
  banked.cost.dram = arch::DramConfig::banked();

  const auto images = snn::make_batch(B, 31);
  const rt::BatchRunner ref(net, flat, {}, {}, 2);
  const auto base = ref.run_single_step(images);

  for (const int clusters : {1, 4, 8}) {
    rt::BackendConfig cfg;
    if (clusters > 1) cfg = sharded_cfg(clusters);
    const rt::BatchRunner runner(net, banked, cfg, {}, 2);
    const auto out = runner.run_single_step(images);
    ASSERT_EQ(out.size(), base.size());
    double row_beats = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i].final_output.v, base[i].final_output.v)
          << "clusters=" << clusters << " sample " << i;
      for (const auto& layer : out[i].layers) {
        row_beats += layer.stats.dma_row_hits + layer.stats.dma_row_misses;
        EXPECT_GE(layer.stats.dma_cycles_hidden, 0.0);
      }
    }
    EXPECT_GT(row_beats, 0.0) << "clusters=" << clusters;
  }

  // Flat mode never reports row activity or hidden cycles.
  for (const auto& res : base) {
    for (const auto& layer : res.layers) {
      EXPECT_DOUBLE_EQ(layer.stats.dma_row_hits, 0.0);
      EXPECT_DOUBLE_EQ(layer.stats.dma_row_misses, 0.0);
      EXPECT_DOUBLE_EQ(layer.stats.dma_cycles_hidden, 0.0);
    }
  }
}
