#include "kernels/scheduler.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/rng.hpp"

namespace k = spikestream::kernels;

TEST(Scheduler, StealBalancesUniformTasks) {
  std::vector<double> tasks(64, 100.0);
  const auto r = k::steal_schedule(tasks, 8, 0.0);
  for (double c : r.core_cycles) EXPECT_DOUBLE_EQ(c, 800.0);
  EXPECT_DOUBLE_EQ(r.makespan, 800.0);
  EXPECT_NEAR(r.imbalance(), 0.0, 1e-12);
}

TEST(Scheduler, StealCostAccrues) {
  std::vector<double> tasks(8, 10.0);
  const auto r = k::steal_schedule(tasks, 8, 5.0);
  EXPECT_DOUBLE_EQ(r.makespan, 15.0);
}

TEST(Scheduler, MakespanBounds) {
  // List scheduling: makespan within [sum/p, sum/p + max_task].
  spikestream::common::Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> tasks;
    double sum = 0, mx = 0;
    const int n = 20 + static_cast<int>(rng.uniform_u64(100));
    for (int i = 0; i < n; ++i) {
      tasks.push_back(rng.uniform(1.0, 50.0));
      sum += tasks.back();
      mx = std::max(mx, tasks.back());
    }
    const auto r = k::steal_schedule(tasks, 8, 0.0);
    EXPECT_GE(r.makespan + 1e-9, sum / 8.0);
    EXPECT_LE(r.makespan, sum / 8.0 + mx + 1e-9);
  }
}

TEST(Scheduler, StealBeatsStaticOnSkewedTasks) {
  // Adversarial distribution for round-robin: every 8th task is huge, so a
  // static partition piles all heavy tasks onto core 0.
  std::vector<double> tasks;
  for (int i = 0; i < 64; ++i) tasks.push_back(i % 8 == 0 ? 200.0 : 10.0);
  const auto dyn = k::steal_schedule(tasks, 8, 1.0);
  const auto sta = k::static_schedule(tasks, 8);
  EXPECT_LT(dyn.makespan, 0.6 * sta.makespan);
  EXPECT_GT(sta.imbalance(), 0.5);
}

TEST(Scheduler, SingleCoreDegeneratesToSum) {
  std::vector<double> tasks = {3, 4, 5};
  const auto r = k::steal_schedule(tasks, 1, 2.0);
  EXPECT_DOUBLE_EQ(r.makespan, 3 + 4 + 5 + 3 * 2.0);
}

TEST(Scheduler, EmptyTaskList) {
  const auto r = k::steal_schedule(std::vector<double>{}, 8, 1.0);
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
}

TEST(Scheduler, WorkConservation) {
  // Total busy time equals total task time + steal overhead.
  spikestream::common::Rng rng(6);
  std::vector<double> tasks;
  double sum = 0;
  for (int i = 0; i < 50; ++i) {
    tasks.push_back(rng.uniform(1.0, 9.0));
    sum += tasks.back();
  }
  const auto r = k::steal_schedule(tasks, 4, 2.0);
  // Busy time per core is its finish time only if never idle; with greedy
  // assignment cores never idle until the queue drains, so the sum of
  // per-core finish times >= total work.
  const double busy =
      std::accumulate(r.core_cycles.begin(), r.core_cycles.end(), 0.0);
  EXPECT_GE(busy + 1e-9, sum + 50 * 2.0 - r.makespan * 0);
}
