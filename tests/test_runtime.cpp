// Multi-timestep runner, event-driven input, strided-indirect option, and
// the ISS instruction trace.
#include <gtest/gtest.h>

#include "arch/cluster.hpp"
#include "arch/program.hpp"
#include "common/rng.hpp"
#include "runtime/multistep.hpp"
#include "snn/calibrate.hpp"
#include "snn/input_gen.hpp"

namespace arch = spikestream::arch;
namespace snn = spikestream::snn;
namespace k = spikestream::kernels;
namespace rt = spikestream::runtime;
namespace sc = spikestream::common;

namespace {

snn::Network event_net() {
  snn::Network net;
  snn::LayerSpec c1;
  c1.kind = snn::LayerKind::kConv;
  c1.name = "conv1";
  c1.in_h = c1.in_w = 12;
  c1.in_c = 2;
  c1.k = 3;
  c1.out_c = 8;
  net.add_layer(c1);
  snn::LayerSpec fc;
  fc.kind = snn::LayerKind::kFc;
  fc.name = "fc";
  fc.in_c = 10 * 10 * 8;
  fc.out_c = 4;
  net.add_layer(fc);
  sc::Rng rng(5);
  net.init_weights(rng);
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    net.layer(l).lif.v_th = 0.6f;
    net.layer(l).lif.v_rst = 0.6f;
  }
  return net;
}

}  // namespace

TEST(MultiStep, AccumulatesSpikesOverTimesteps) {
  snn::Network net = snn::Network::make_tiny(10, 3, 8, 4);
  sc::Rng rng(3);
  net.init_weights(rng);
  const auto calib = snn::make_batch(3, 8, 8, 8, 3);
  const std::vector<double> targets = {0.3, 0.25, 0.4};
  snn::calibrate_thresholds(net, calib, targets);
  k::RunOptions opt;
  rt::InferenceEngine eng(net, opt);
  const auto img = snn::make_batch(1, 12, 8, 8, 3)[0];
  const auto res = rt::run_timesteps(eng, img, 6);
  EXPECT_EQ(res.timesteps, 6);
  ASSERT_EQ(res.spike_counts.size(), 4u);
  EXPECT_EQ(res.cycles_per_step.size(), 6u);
  std::uint32_t total = 0;
  for (auto c : res.spike_counts) {
    total += c;
    EXPECT_LE(c, 6u);  // at most one spike per neuron per timestep
  }
  EXPECT_GT(res.total_cycles, 0.0);
  EXPECT_GE(res.argmax(), 0);
  EXPECT_LT(res.argmax(), 4);
  // Determinism: a fresh engine reproduces the run exactly.
  rt::InferenceEngine eng2(net, opt);
  const auto res2 = rt::run_timesteps(eng2, img, 6);
  EXPECT_EQ(res.spike_counts, res2.spike_counts);
  EXPECT_DOUBLE_EQ(res.total_cycles, res2.total_cycles);
}

TEST(MultiStep, ArgmaxOnEmptyResultIsMinusOne) {
  // No recorded output (e.g. zero timesteps) decodes to the documented
  // sentinel -1 instead of a bogus class 0.
  rt::MultiStepResult empty;
  EXPECT_EQ(empty.argmax(), -1);

  snn::Network net = snn::Network::make_tiny(10, 3, 8, 4);
  sc::Rng rng(3);
  net.init_weights(rng);
  k::RunOptions opt;
  rt::InferenceEngine eng(net, opt);
  const auto img = snn::make_batch(1, 12, 8, 8, 3)[0];
  const auto res = rt::run_timesteps(eng, img, 0);
  EXPECT_EQ(res.timesteps, 0);
  EXPECT_TRUE(res.spike_counts.empty());
  EXPECT_EQ(res.argmax(), -1);

  // Ties resolve to the lowest index.
  rt::MultiStepResult tie;
  tie.spike_counts = {3, 3, 1};
  EXPECT_EQ(tie.argmax(), 0);
}

TEST(EventInput, RunsWithoutEncodeLayer) {
  const snn::Network net = event_net();
  k::RunOptions opt;
  rt::InferenceEngine eng(net, opt);
  sc::Rng rng(17);
  std::vector<snn::SpikeMap> frames;
  for (int t = 0; t < 4; ++t) {
    snn::SpikeMap f(12, 12, 2);
    for (int y = 1; y < 11; ++y) {
      for (int x = 1; x < 11; ++x) {
        for (int c = 0; c < 2; ++c) f.at(y, x, c) = rng.bernoulli(0.2);
      }
    }
    frames.push_back(std::move(f));
  }
  const auto res = rt::run_event_stream(eng, frames);
  EXPECT_EQ(res.timesteps, 4);
  EXPECT_GT(res.total_cycles, 0.0);
  EXPECT_GT(res.total_energy_mj, 0.0);
}

TEST(EventInput, RejectsEncodeNetworks) {
  snn::Network net = snn::Network::make_tiny();
  sc::Rng rng(1);
  net.init_weights(rng);
  k::RunOptions opt;
  rt::InferenceEngine eng(net, opt);
  snn::SpikeMap f(10, 10, 8);
  EXPECT_THROW(eng.run_events(f), spikestream::Error);
}

TEST(StridedIndirect, SpeedsUpFcLayersOnly) {
  const snn::Network net = event_net();
  k::RunOptions base, ext;
  ext.strided_indirect_ext = true;
  rt::InferenceEngine e0(net, base), e1(net, ext);
  sc::Rng rng(23);
  snn::SpikeMap f(12, 12, 2);
  for (int y = 1; y < 11; ++y) {
    for (int x = 1; x < 11; ++x) {
      for (int c = 0; c < 2; ++c) f.at(y, x, c) = rng.bernoulli(0.4);
    }
  }
  const auto r0 = e0.run_events(f);
  const auto r1 = e1.run_events(f);
  // Same spikes, conv timing identical, FC strictly faster (prescale gone)
  // unless the FC is DMA-bound, in which case equal.
  EXPECT_EQ(r0.final_output.v, r1.final_output.v);
  EXPECT_DOUBLE_EQ(r0.layers[0].stats.cycles, r1.layers[0].stats.cycles);
  EXPECT_LE(r1.layers[1].stats.compute_cycles,
            r0.layers[1].stats.compute_cycles);
  EXPECT_LT(r1.layers[1].stats.int_instrs, r0.layers[1].stats.int_instrs);
}

TEST(Trace, RecordsExecutedInstructions) {
  arch::ClusterConfig cfg;
  cfg.num_workers = 1;
  cfg.icache_miss_penalty = 0;
  arch::Cluster cl(cfg);
  arch::Asm a;
  a.li(5, 3);
  a.li(6, 4);
  a.add(7, 5, 6);
  a.fcvt_d_w(4, 7);
  a.li(8, 1);
  a.frep(8, 1);
  a.fadd(3, 4, 3);
  a.fpu_fence();
  a.halt();
  std::vector<arch::TraceEntry> trace;
  cl.core(0).set_trace(&trace, 64);
  cl.load_program_on(0, a.finish());
  // load_program resets the core, so re-attach the sink afterwards.
  cl.core(0).set_trace(&trace, 64);
  cl.run();
  ASSERT_GE(trace.size(), 8u);
  EXPECT_EQ(arch::disasm(trace[0].instr), "li x5, 3");
  int fpu_ops = 0;
  for (const auto& e : trace) {
    fpu_ops += e.fpu;
    EXPECT_FALSE(arch::disasm(e.instr).empty());
  }
  EXPECT_EQ(fpu_ops, 2);  // frep body executed twice on the FPU
  // Cycles are monotonically non-decreasing.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].cycle, trace[i - 1].cycle);
  }
}

TEST(Trace, LimitIsRespected) {
  arch::ClusterConfig cfg;
  cfg.num_workers = 1;
  arch::Cluster cl(cfg);
  arch::Asm a;
  a.li(5, 0);
  a.li(6, 100);
  a.label("loop");
  a.addi(5, 5, 1);
  a.bne(5, 6, "loop");
  a.halt();
  std::vector<arch::TraceEntry> trace;
  cl.load_program_on(0, a.finish());
  cl.core(0).set_trace(&trace, 10);
  cl.run();
  EXPECT_EQ(trace.size(), 10u);
}
