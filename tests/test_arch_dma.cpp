// DMA engine: ordering, strided transfers, statistics, interaction with
// core TCDM traffic, and the double-buffering idiom (compute on buffer A
// while the DMA fills buffer B).
#include <gtest/gtest.h>

#include "arch/cluster.hpp"
#include "arch/program.hpp"

namespace arch = spikestream::arch;

namespace {

arch::Cluster make_cl(int workers = 1) {
  arch::ClusterConfig cfg;
  cfg.num_workers = workers;
  cfg.icache_miss_penalty = 0;
  return arch::Cluster(cfg);
}

}  // namespace

TEST(Dma, MultipleTransfersCompleteInOrder) {
  auto cl = make_cl();
  const arch::Addr src = cl.global_alloc(4096);
  const arch::Addr dst = cl.tcdm_alloc(4096);
  for (int i = 0; i < 1024; ++i) {
    cl.mem().store<std::uint32_t>(src + 4 * static_cast<arch::Addr>(i),
                                  static_cast<std::uint32_t>(i));
  }
  arch::Asm a;
  a.li(5, src);
  a.li(6, dst);
  a.li(7, 1024);
  for (int chunk = 0; chunk < 4; ++chunk) {
    a.dma_src(5);
    a.dma_dst(6);
    a.dma_start(8, 7);
    a.addi(5, 5, 1024);
    a.addi(6, 6, 1024);
  }
  a.dma_wait();
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  for (int i = 0; i < 1024; ++i) {
    EXPECT_EQ(cl.mem().load<std::uint32_t>(dst + 4 * static_cast<arch::Addr>(i)),
              static_cast<std::uint32_t>(i));
  }
  EXPECT_TRUE(cl.dma().idle());
  EXPECT_EQ(cl.dma().bytes_moved(), 4096u);
}

TEST(Dma, TcdmToGlobalWriteback) {
  auto cl = make_cl();
  const arch::Addr src = cl.tcdm_alloc(256);
  const arch::Addr dst = cl.global_alloc(256);
  for (int i = 0; i < 32; ++i) {
    cl.mem().store<double>(src + 8 * static_cast<arch::Addr>(i), i * 1.5);
  }
  arch::Asm a;
  a.li(5, src);
  a.li(6, dst);
  a.li(7, 256);
  a.dma_src(5);
  a.dma_dst(6);
  a.dma_start(8, 7);
  a.dma_wait();
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  for (int i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(cl.mem().load<double>(dst + 8 * static_cast<arch::Addr>(i)),
                     i * 1.5);
  }
}

TEST(Dma, ScatterWith2DDstStride) {
  // Gather a contiguous source into a strided destination (im2row inverse).
  auto cl = make_cl();
  const arch::Addr src = cl.global_alloc(64);
  const arch::Addr dst = cl.tcdm_alloc(8 * 32);
  for (int i = 0; i < 64; ++i) {
    cl.mem().store<std::uint8_t>(src + static_cast<arch::Addr>(i),
                                 static_cast<std::uint8_t>(i));
  }
  arch::Asm a;
  a.li(5, src);
  a.li(6, dst);
  a.li(7, 8);   // src stride = row bytes: contiguous
  a.li(9, 32);  // dst stride: scatter rows 32 B apart
  a.dma_str(7, 9);
  a.li(10, 8);
  a.dma_reps(10);
  a.dma_src(5);
  a.dma_dst(6);
  a.dma_start(11, 7);  // 8 bytes per row
  a.dma_wait();
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  for (int r = 0; r < 8; ++r) {
    for (int b = 0; b < 8; ++b) {
      EXPECT_EQ(cl.mem().load<std::uint8_t>(
                    dst + static_cast<arch::Addr>(r * 32 + b)),
                static_cast<std::uint8_t>(r * 8 + b));
    }
  }
}

TEST(Dma, CoresKeepTcdmPriorityOverDma) {
  // A core hammering one bank while the DMA streams through all banks: the
  // core's loop time must stay close to its unconteded time.
  auto solo = make_cl();
  arch::Asm loop;
  const arch::Addr lbuf = solo.tcdm_alloc(8);
  loop.li(5, lbuf);
  loop.li(6, 0);
  loop.li(7, 500);
  loop.label("l");
  loop.lw(8, 5, 0);
  loop.addi(6, 6, 1);
  loop.bne(6, 7, "l");
  loop.halt();
  const arch::Program p = loop.finish();
  solo.load_program_on(0, p);
  const auto t_solo = solo.run();

  auto both = make_cl(1);
  const arch::Addr lbuf2 = both.tcdm_alloc(8);
  (void)lbuf2;
  const arch::Addr gsrc = both.global_alloc(64 * 1024);
  const arch::Addr gdst = both.tcdm_alloc(80 * 1024);
  both.dma().enqueue({gsrc, gdst, 64 * 1024, 1, 0, 0});
  both.load_program_on(0, p);
  const auto t_both = both.run();
  // The loop is unchanged; the total run includes the DMA drain, but the
  // core's portion (first ~t_solo cycles) was not starved: the whole run is
  // bounded by the DMA transfer time, not by their sum.
  EXPECT_GE(t_both, t_solo);
  EXPECT_LE(t_both, 64 * 1024 / 64 + 100 + t_solo);
}

TEST(Dma, DoubleBufferIdiom) {
  // Fill buffer B while computing on buffer A, then swap: total time must be
  // close to max(compute, dma) + first fill, not their sum.
  auto cl = make_cl();
  const arch::Addr g = cl.global_alloc(32 * 1024);
  const arch::Addr bufA = cl.tcdm_alloc(16 * 1024);
  const arch::Addr bufB = cl.tcdm_alloc(16 * 1024);
  arch::Asm a;
  // fill A (blocking)
  a.li(5, g);
  a.li(6, bufA);
  a.li(7, 16 * 1024);
  a.dma_src(5);
  a.dma_dst(6);
  a.dma_start(8, 7);
  a.dma_wait();
  // start fill B (async), then "compute" on A for ~500 cycles
  a.li(6, bufB);
  a.dma_src(5);
  a.dma_dst(6);
  a.dma_start(8, 7);
  a.li(9, 0);
  a.li(10, 150);
  a.label("compute");
  a.addi(9, 9, 1);
  a.bne(9, 10, "compute");
  a.dma_wait();  // B should already be there
  a.halt();
  cl.load_program_on(0, a.finish());
  const auto cycles = cl.run();
  // Each fill: 16384/64 = 256 beats + 100 latency = ~356 cycles. The compute
  // loop (~600-750 cycles) fully hides fill B, so the total is about
  // fill A + compute — and decisively below the no-overlap sum
  // fill A + fill B + compute (~1460).
  EXPECT_LT(cycles, 1200u);
  EXPECT_GT(cycles, 356u + 550u);
}

TEST(Dma, BusyCyclesTracked) {
  auto cl = make_cl();
  const arch::Addr g = cl.global_alloc(6400);
  const arch::Addr t = cl.tcdm_alloc(6400);
  cl.dma().enqueue({g, t, 6400, 1, 0, 0});
  arch::Asm a;
  a.dma_wait();
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  EXPECT_GE(cl.dma().busy_cycles(), 100u + 100u);  // latency + 100 beats
  EXPECT_EQ(cl.dma().bytes_moved(), 6400u);
}
