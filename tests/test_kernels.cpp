// Layer kernels: functional equivalence with the dense golden reference
// (bit-exact spikes) and the timing properties the paper reports.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "compress/csr_ifmap.hpp"
#include "kernels/layer_kernels.hpp"
#include "snn/calibrate.hpp"
#include "snn/input_gen.hpp"
#include "snn/network.hpp"
#include "snn/reference.hpp"

namespace k = spikestream::kernels;
namespace snn = spikestream::snn;
namespace sc = spikestream::common;

namespace {

snn::SpikeMap random_spikes(int h, int w, int c, double rate,
                            std::uint64_t seed) {
  sc::Rng rng(seed);
  snn::SpikeMap s(h, w, c);
  // Interior only: borders are padding.
  for (int y = 1; y < h - 1; ++y) {
    for (int x = 1; x < w - 1; ++x) {
      for (int ch = 0; ch < c; ++ch) {
        s.at(y, x, ch) = rng.bernoulli(rate) ? 1 : 0;
      }
    }
  }
  return s;
}

snn::LayerSpec conv_spec(int hw, int in_c, int out_c) {
  snn::LayerSpec s;
  s.kind = snn::LayerKind::kConv;
  s.name = "conv_t";
  s.in_h = s.in_w = hw;
  s.in_c = in_c;
  s.k = 3;
  s.out_c = out_c;
  s.lif.v_th = 0.6f;
  s.lif.v_rst = 0.6f;
  return s;
}

snn::LayerWeights make_weights(const snn::LayerSpec& s, std::uint64_t seed) {
  sc::Rng rng(seed);
  snn::LayerWeights w;
  w.k = s.kind == snn::LayerKind::kFc ? 1 : s.k;
  w.in_c = s.in_c;
  w.out_c = s.out_c;
  w.v.resize(static_cast<std::size_t>(w.k) * w.k * w.in_c * w.out_c);
  const double sd = std::sqrt(2.0 / static_cast<double>(s.fan_in()));
  for (auto& x : w.v) x = static_cast<float>(rng.normal(0.0, sd));
  return w;
}

}  // namespace

class ConvKernelMatchesReference
    : public ::testing::TestWithParam<std::tuple<k::Variant, sc::FpFormat>> {};

TEST_P(ConvKernelMatchesReference, BitExactSpikes) {
  const auto [variant, fmt] = GetParam();
  const auto spec = conv_spec(12, 16, 24);
  const auto w = make_weights(spec, 7);
  const auto in = random_spikes(12, 12, 16, 0.25, 8);
  const auto csr = spikestream::compress::CsrIfmap::encode(in);

  // Reference path.
  snn::Tensor ref_mem(spec.out_h(), spec.out_w(), spec.out_c);
  const snn::Tensor cur = snn::Reference::conv_currents(in, w);
  snn::Tensor ref_mem2 = ref_mem;
  const snn::SpikeMap expect = snn::lif_step(spec.lif, cur, ref_mem2);

  // Kernel path.
  k::RunOptions opt;
  opt.variant = variant;
  opt.fmt = fmt;
  snn::Tensor mem(spec.out_h(), spec.out_w(), spec.out_c);
  const auto run = k::run_conv_layer(spec, w, csr, mem, opt);
  EXPECT_EQ(run.out_spikes.v, expect.v);
  EXPECT_EQ(mem.v, ref_mem2.v);  // membranes advance identically
  EXPECT_GT(run.stats.cycles, 0.0);
  EXPECT_GT(run.stats.fpu_ops, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    VariantsFormats, ConvKernelMatchesReference,
    ::testing::Combine(::testing::Values(k::Variant::kBaseline,
                                         k::Variant::kSpikeStream),
                       ::testing::Values(sc::FpFormat::FP16,
                                         sc::FpFormat::FP8,
                                         sc::FpFormat::FP32)));

TEST(ConvKernel, SpikeStreamFasterThanBaseline) {
  const auto spec = conv_spec(18, 128, 128);
  const auto w = make_weights(spec, 9);
  const auto in = random_spikes(18, 18, 128, 0.3, 10);
  const auto csr = spikestream::compress::CsrIfmap::encode(in);

  k::RunOptions base, ss;
  base.variant = k::Variant::kBaseline;
  ss.variant = k::Variant::kSpikeStream;
  snn::Tensor m1(spec.out_h(), spec.out_w(), spec.out_c);
  snn::Tensor m2 = m1;
  const auto rb = k::run_conv_layer(spec, w, csr, m1, base);
  const auto rs = k::run_conv_layer(spec, w, csr, m2, ss);
  const double speedup = rb.stats.cycles / rs.stats.cycles;
  EXPECT_GT(speedup, 3.5);
  EXPECT_LT(speedup, 7.0);
  // Utilization moves from ~9% into the ~50% regime (paper Fig. 3b).
  EXPECT_LT(rb.stats.fpu_utilization(), 0.12);
  EXPECT_GT(rs.stats.fpu_utilization(), 0.35);
  // IPC inverts: the baseline integer pipe is busy, SpikeStream's is not.
  EXPECT_GT(rb.stats.ipc(), rs.stats.ipc());
}

TEST(ConvKernel, ShortStreamsDepressUtilization) {
  // The paper's layer-2 effect: few channels + sparsity -> util well below
  // the ~50% ceiling.
  const auto thin = conv_spec(16, 24, 64);
  const auto w = make_weights(thin, 11);
  const auto in = random_spikes(16, 16, 24, 0.12, 12);  // s_len ~ 2.9
  const auto csr = spikestream::compress::CsrIfmap::encode(in);
  k::RunOptions opt;
  opt.variant = k::Variant::kSpikeStream;
  snn::Tensor m(thin.out_h(), thin.out_w(), thin.out_c);
  const auto r = k::run_conv_layer(thin, w, csr, m, opt);
  EXPECT_LT(r.stats.fpu_utilization(), 0.35);
}

TEST(ConvKernel, Fp8FasterThanFp16ButBelowIdeal) {
  const auto spec = conv_spec(14, 256, 128);
  const auto w = make_weights(spec, 13);
  const auto in = random_spikes(14, 14, 256, 0.2, 14);
  const auto csr = spikestream::compress::CsrIfmap::encode(in);
  k::RunOptions o16, o8;
  o16.variant = o8.variant = k::Variant::kSpikeStream;
  o16.fmt = sc::FpFormat::FP16;
  o8.fmt = sc::FpFormat::FP8;
  snn::Tensor m1(spec.out_h(), spec.out_w(), spec.out_c);
  snn::Tensor m2 = m1;
  const auto r16 = k::run_conv_layer(spec, w, csr, m1, o16);
  const auto r8 = k::run_conv_layer(spec, w, csr, m2, o8);
  const double speedup = r16.stats.compute_cycles / r8.stats.compute_cycles;
  EXPECT_GT(speedup, 1.4);
  EXPECT_LT(speedup, 2.0);  // below the ideal 2x (paper: 1.71x)
}

TEST(FcKernel, MatchesReference) {
  snn::LayerSpec spec;
  spec.kind = snn::LayerKind::kFc;
  spec.name = "fc_t";
  spec.in_c = 256;
  spec.out_c = 32;
  spec.lif.v_th = 0.4f;
  spec.lif.v_rst = 0.4f;
  const auto w = make_weights(spec, 15);
  sc::Rng rng(16);
  snn::SpikeMap in(1, 1, 256);
  for (auto& b : in.v) b = rng.bernoulli(0.1) ? 1 : 0;
  const auto csr = spikestream::compress::CsrIfmap::encode(in);

  snn::Tensor ref_mem(1, 1, 32);
  const snn::Tensor cur = snn::Reference::fc_currents(in, w);
  const snn::SpikeMap expect = snn::lif_step(spec.lif, cur, ref_mem);

  for (auto variant : {k::Variant::kBaseline, k::Variant::kSpikeStream}) {
    k::RunOptions opt;
    opt.variant = variant;
    snn::Tensor mem(1, 1, 32);
    const auto run = k::run_fc_layer(spec, w, csr, mem, opt);
    EXPECT_EQ(run.out_spikes.v, expect.v) << k::variant_name(variant);
  }
}

TEST(FcKernel, PrescalePenalizesSpikeStreamIntPipe) {
  snn::LayerSpec spec;
  spec.kind = snn::LayerKind::kFc;
  spec.name = "fc_t";
  spec.in_c = 2048;
  spec.out_c = 64;
  const auto w = make_weights(spec, 17);
  sc::Rng rng(18);
  snn::SpikeMap in(1, 1, 2048);
  for (auto& b : in.v) b = rng.bernoulli(0.3) ? 1 : 0;
  const auto csr = spikestream::compress::CsrIfmap::encode(in);
  k::RunOptions opt;
  opt.variant = k::Variant::kSpikeStream;
  snn::Tensor mem(1, 1, 64);
  const auto run = k::run_fc_layer(spec, w, csr, mem, opt);
  // Index pre-scaling shows up as extra integer instructions.
  EXPECT_GT(run.stats.int_instrs,
            static_cast<double>(spikestream::compress::CsrIfmap::encode(in).nnz()) * 3.0);
}

TEST(EncodeKernel, MatchesReferenceAllFormats) {
  snn::LayerSpec spec;
  spec.kind = snn::LayerKind::kEncodeConv;
  spec.name = "enc_t";
  spec.in_h = spec.in_w = 12;
  spec.in_c = 3;
  spec.k = 3;
  spec.out_c = 16;
  spec.lif.v_th = 0.5f;
  spec.lif.v_rst = 0.5f;
  const auto w = make_weights(spec, 19);
  sc::Rng rng(20);
  const snn::Tensor img = snn::make_image(rng, 10, 10, 3);
  const snn::Tensor padded = snn::Reference::pad_dense(img, 1);

  snn::Tensor ref_mem(spec.out_h(), spec.out_w(), spec.out_c);
  const snn::Tensor cur = snn::Reference::conv_currents_dense(padded, w);
  const snn::SpikeMap expect = snn::lif_step(spec.lif, cur, ref_mem);

  for (auto variant : {k::Variant::kBaseline, k::Variant::kSpikeStream}) {
    k::RunOptions opt;
    opt.variant = variant;
    snn::Tensor mem(spec.out_h(), spec.out_w(), spec.out_c);
    const auto run = k::run_encode_layer(spec, w, padded, mem, opt);
    EXPECT_EQ(run.out_spikes.v, expect.v) << k::variant_name(variant);
    EXPECT_GT(run.stats.fpu_mac_ops, 0.0);
  }
}

TEST(EncodeKernel, UtilizationBandsMatchPaperLayer1) {
  snn::LayerSpec spec;
  spec.kind = snn::LayerKind::kEncodeConv;
  spec.name = "enc_t";
  spec.in_h = spec.in_w = 34;
  spec.in_c = 3;
  spec.k = 3;
  spec.out_c = 64;
  spec.lif.v_th = 0.5f;
  spec.lif.v_rst = 0.5f;
  const auto w = make_weights(spec, 21);
  sc::Rng rng(22);
  const snn::Tensor img = snn::make_image(rng, 32, 32, 3);
  const snn::Tensor padded = snn::Reference::pad_dense(img, 1);

  k::RunOptions base, ss;
  base.variant = k::Variant::kBaseline;
  ss.variant = k::Variant::kSpikeStream;
  snn::Tensor m1(spec.out_h(), spec.out_w(), spec.out_c);
  snn::Tensor m2 = m1;
  const auto rb = k::run_encode_layer(spec, w, padded, m1, base);
  const auto rs = k::run_encode_layer(spec, w, padded, m2, ss);
  // Paper Fig. 3b layer 1: baseline 24.8% -> SpikeStream 53.1%.
  EXPECT_NEAR(rb.stats.fpu_utilization(), 0.25, 0.06);
  EXPECT_NEAR(rs.stats.fpu_utilization(), 0.53, 0.12);
}

TEST(Kernels, StealingBeatsStaticUnderSparsitySkew) {
  // Spikes concentrated in one image corner: static RF partition starves.
  const auto spec = conv_spec(18, 64, 64);
  const auto w = make_weights(spec, 23);
  snn::SpikeMap in(18, 18, 64);
  sc::Rng rng(24);
  for (int y = 1; y < 9; ++y) {
    for (int x = 1; x < 9; ++x) {
      for (int c = 0; c < 64; ++c) in.at(y, x, c) = rng.bernoulli(0.5);
    }
  }
  const auto csr = spikestream::compress::CsrIfmap::encode(in);
  k::RunOptions dyn, sta;
  dyn.variant = sta.variant = k::Variant::kSpikeStream;
  sta.workload_stealing = false;
  snn::Tensor m1(spec.out_h(), spec.out_w(), spec.out_c);
  snn::Tensor m2 = m1;
  const auto rd = k::run_conv_layer(spec, w, csr, m1, dyn);
  const auto rs = k::run_conv_layer(spec, w, csr, m2, sta);
  EXPECT_EQ(rd.out_spikes.v, rs.out_spikes.v);  // scheduling never changes math
  EXPECT_LT(rd.stats.compute_cycles, rs.stats.compute_cycles);
}

TEST(Kernels, EmptyIfmapStillWellFormed) {
  const auto spec = conv_spec(10, 8, 16);
  const auto w = make_weights(spec, 25);
  snn::SpikeMap in(10, 10, 8);  // all zeros
  const auto csr = spikestream::compress::CsrIfmap::encode(in);
  k::RunOptions opt;
  snn::Tensor mem(spec.out_h(), spec.out_w(), spec.out_c);
  const auto run = k::run_conv_layer(spec, w, csr, mem, opt);
  EXPECT_EQ(spikestream::snn::spike_count(run.out_spikes), 0u);
  EXPECT_EQ(run.stats.fpu_ops, 0.0);
  EXPECT_GT(run.stats.cycles, 0.0);  // setup/activation still takes time
}
