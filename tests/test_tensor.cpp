#include "snn/tensor.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace snn = spikestream::snn;

TEST(Tensor, IndexingIsHwc) {
  snn::Tensor t(2, 3, 4);
  t.at(1, 2, 3) = 42.0f;
  // HWC: index = (y*w + x)*c + ch
  EXPECT_FLOAT_EQ(t.v[(1 * 3 + 2) * 4 + 3], 42.0f);
  EXPECT_EQ(t.size(), 24u);
}

TEST(Tensor, SpikeCountAndRate) {
  snn::SpikeMap s(2, 2, 2);
  s.at(0, 0, 0) = 1;
  s.at(1, 1, 1) = 1;
  EXPECT_EQ(snn::spike_count(s), 2u);
  EXPECT_DOUBLE_EQ(snn::firing_rate(s), 0.25);
}

TEST(Tensor, PadPlacesInterior) {
  snn::SpikeMap s(2, 2, 1);
  s.at(0, 1, 0) = 1;
  const snn::SpikeMap p = snn::pad(s, 2);
  EXPECT_EQ(p.h, 6);
  EXPECT_EQ(p.w, 6);
  EXPECT_EQ(snn::spike_count(p), 1u);
  EXPECT_EQ(p.at(2, 3, 0), 1);
  // Border stays zero.
  for (int x = 0; x < 6; ++x) {
    EXPECT_EQ(p.at(0, x, 0), 0);
    EXPECT_EQ(p.at(5, x, 0), 0);
  }
}

TEST(Tensor, OrPoolSemantics) {
  snn::SpikeMap s(4, 4, 1);
  s.at(0, 0, 0) = 1;  // window (0,0)
  s.at(2, 3, 0) = 1;  // window (1,1)
  s.at(3, 2, 0) = 1;  // window (1,1) too: OR stays 1
  const snn::SpikeMap p = snn::or_pool2(s);
  EXPECT_EQ(p.h, 2);
  EXPECT_EQ(p.at(0, 0, 0), 1);
  EXPECT_EQ(p.at(0, 1, 0), 0);
  EXPECT_EQ(p.at(1, 0, 0), 0);
  EXPECT_EQ(p.at(1, 1, 0), 1);
}

TEST(Tensor, PoolRateNeverDecreases) {
  // OR-pooling can only increase the firing *rate* (any window with >=1
  // spike yields a spike in 1/4 the positions).
  spikestream::common::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    snn::SpikeMap s(8, 8, 4);
    const double rate = rng.uniform(0.0, 0.5);
    for (auto& b : s.v) b = rng.bernoulli(rate) ? 1 : 0;
    EXPECT_GE(snn::firing_rate(snn::or_pool2(s)) + 1e-12,
              snn::firing_rate(s));
  }
}
