// Scratch-arena contract: (1) runs through a reused NetworkState + reused
// InferenceResult are bit-identical to fresh-allocation runs, across
// backends, batch sizes and repeated reset() cycles; (2) once warmed up, the
// analytical and cycle-accurate hot paths execute a whole timestep with ZERO
// heap allocations (counted by a global operator-new hook in this binary).
#include <gtest/gtest.h>

#include <vector>

#include "arch/dram/stream_reader.hpp"
#include "bench/alloc_hook.hpp"
#include "common/rng.hpp"
#include "compress/csr_ifmap.hpp"
#include "runtime/batch.hpp"
#include "runtime/engine.hpp"
#include "runtime/multistep.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/server.hpp"
#include "snn/calibrate.hpp"
#include "snn/input_gen.hpp"

namespace {

namespace rt = spikestream::runtime;
namespace k = spikestream::kernels;
namespace snn = spikestream::snn;
namespace sc = spikestream::common;
namespace compress = spikestream::compress;

snn::Network test_net() {
  snn::Network net = snn::Network::make_tiny(18, 3, 32, 10);
  sc::Rng rng(42);
  net.init_weights(rng);
  const auto calib = snn::make_batch(4, 7, 16, 16, 3);
  const std::vector<double> targets = {0.20, 0.15, 0.30};
  snn::calibrate_thresholds(net, calib, targets);
  return net;
}

rt::BackendConfig cfg_of(rt::BackendKind kind, bool threads = true) {
  rt::BackendConfig cfg;
  cfg.kind = kind;
  cfg.shard_threads = threads;
  return cfg;
}

/// Fresh-allocation path: new state + by-value result every single run.
std::vector<snn::SpikeMap> run_fresh(const rt::InferenceEngine& engine,
                                     const std::vector<snn::Tensor>& images,
                                     int timesteps) {
  std::vector<snn::SpikeMap> outs;
  for (const auto& img : images) {
    snn::NetworkState state = engine.make_state();
    for (int t = 0; t < timesteps; ++t) {
      outs.push_back(engine.run(img, state).final_output);
    }
  }
  return outs;
}

/// Arena path: one state + one result reused across every sample/timestep,
/// with reset() (state.clear()) between samples.
std::vector<snn::SpikeMap> run_reused(const rt::InferenceEngine& engine,
                                      const std::vector<snn::Tensor>& images,
                                      int timesteps) {
  std::vector<snn::SpikeMap> outs;
  snn::NetworkState state = engine.make_state();
  rt::InferenceResult res;
  for (const auto& img : images) {
    state.clear();
    for (int t = 0; t < timesteps; ++t) {
      engine.run(img, state, res);
      outs.push_back(res.final_output);
    }
  }
  return outs;
}

/// Warm the (state, result) arenas until `quiet` consecutive runs perform no
/// heap allocation (capped): membranes integrate for several timesteps
/// before occupancy — and with it every arena capacity — peaks, and the
/// peak's timestep depends on the input. Returns false if the cap was hit
/// while still allocating.
bool warm_until_quiet(const rt::InferenceEngine& engine,
                      const snn::Tensor& img, snn::NetworkState& state,
                      rt::InferenceResult& res, int quiet = 6, int cap = 64) {
  int quiet_runs = 0;
  for (int t = 0; t < cap && quiet_runs < quiet; ++t) {
    const std::size_t before = spikestream::alloc_hook::allocs();
    engine.run(img, state, res);
    quiet_runs =
        spikestream::alloc_hook::allocs() == before ? quiet_runs + 1 : 0;
  }
  return quiet_runs >= quiet;
}

}  // namespace

TEST(ScratchReuse, BitExactAcrossBackendsBatchesAndResets) {
  const snn::Network net = test_net();
  const auto images = snn::make_batch(3, 99, 16, 16, 3);
  k::RunOptions opt;
  for (const auto kind :
       {rt::BackendKind::kAnalytical, rt::BackendKind::kCycleAccurate,
        rt::BackendKind::kSharded}) {
    const rt::InferenceEngine engine(net, opt, cfg_of(kind));
    const auto fresh = run_fresh(engine, images, /*timesteps=*/3);
    const auto reused = run_reused(engine, images, /*timesteps=*/3);
    ASSERT_EQ(fresh.size(), reused.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      EXPECT_EQ(fresh[i].v, reused[i].v)
          << rt::backend_name(kind) << " run " << i;
    }
  }
}

TEST(ScratchReuse, SerialShardedMatchesThreadedThroughArenas) {
  const snn::Network net = test_net();
  const auto images = snn::make_batch(2, 5, 16, 16, 3);
  k::RunOptions opt;
  const rt::InferenceEngine threaded(
      net, opt, cfg_of(rt::BackendKind::kSharded, true));
  const rt::InferenceEngine serial(net, opt,
                                   cfg_of(rt::BackendKind::kSharded, false));
  const auto rt_ = run_reused(threaded, images, 2);
  const auto rs = run_reused(serial, images, 2);
  ASSERT_EQ(rt_.size(), rs.size());
  for (std::size_t i = 0; i < rt_.size(); ++i) EXPECT_EQ(rt_[i].v, rs[i].v);
}

TEST(ScratchReuse, TimingIdenticalThroughArenas) {
  // Cycle counts must not depend on which allocation path produced them.
  const snn::Network net = test_net();
  const auto images = snn::make_batch(2, 31, 16, 16, 3);
  k::RunOptions opt;
  const rt::InferenceEngine engine(net, opt);
  for (const auto& img : images) {
    snn::NetworkState fresh_state = engine.make_state();
    const rt::InferenceResult fresh = engine.run(img, fresh_state);

    snn::NetworkState state = engine.make_state();
    rt::InferenceResult reused;
    engine.run(img, state, reused);
    ASSERT_EQ(fresh.layers.size(), reused.layers.size());
    EXPECT_DOUBLE_EQ(fresh.total_cycles, reused.total_cycles);
    for (std::size_t l = 0; l < fresh.layers.size(); ++l) {
      EXPECT_DOUBLE_EQ(fresh.layers[l].stats.cycles,
                       reused.layers[l].stats.cycles);
      EXPECT_DOUBLE_EQ(fresh.layers[l].stats.fpu_ops,
                       reused.layers[l].stats.fpu_ops);
    }
  }
}

TEST(ScratchReuse, ZeroSteadyStateAllocationsAnalytical) {
  const snn::Network net = test_net();
  const auto img = snn::make_batch(1, 7, 16, 16, 3)[0];
  k::RunOptions opt;
  const rt::InferenceEngine engine(net, opt);
  snn::NetworkState state = engine.make_state();
  rt::InferenceResult res;
  // Two warmup timesteps grow every arena to capacity.
  engine.run(img, state, res);
  engine.run(img, state, res);
  state.clear();  // a reset must not force re-allocation either
  const std::size_t before = spikestream::alloc_hook::allocs();
  for (int t = 0; t < 5; ++t) engine.run(img, state, res);
  const std::size_t after = spikestream::alloc_hook::allocs();
  EXPECT_EQ(after - before, 0u)
      << "steady-state inference must not touch the heap";
}

TEST(ScratchReuse, ZeroSteadyStateAllocationsCycleAccurate) {
  const snn::Network net = test_net();
  const auto img = snn::make_batch(1, 8, 16, 16, 3)[0];
  k::RunOptions opt;
  const rt::InferenceEngine engine(net, opt,
                                   cfg_of(rt::BackendKind::kCycleAccurate));
  snn::NetworkState state = engine.make_state();
  rt::InferenceResult res;
  // Warmup populates the ISS calibration caches. The caches are logarithmic
  // (~12% buckets) and pre-calibrated at prepare(), so the occupancy drift
  // of the integrating membranes must not mint new buckets — the long
  // measurement window would catch that regression (it is exactly what the
  // former integer buckets did).
  ASSERT_TRUE(warm_until_quiet(engine, img, state, res));
  const std::size_t before = spikestream::alloc_hook::allocs();
  for (int t = 0; t < 12; ++t) engine.run(img, state, res);
  const std::size_t after = spikestream::alloc_hook::allocs();
  EXPECT_EQ(after - before, 0u)
      << "cycle-accurate steady state must not calibrate or allocate";
}

TEST(ScratchReuse, ZeroSteadyStateAllocationsMemoized) {
  // The cost memo's table is fixed-capacity with pre-reserved entries, so
  // even a steady-state *miss* (a genuinely new occupancy bucket) inserts
  // without touching the heap.
  const snn::Network net = test_net();
  const auto img = snn::make_batch(1, 13, 16, 16, 3)[0];
  k::RunOptions opt;
  rt::BackendConfig cfg;
  cfg.memoize_cost = true;
  const rt::InferenceEngine engine(net, opt, cfg);
  snn::NetworkState state = engine.make_state();
  rt::InferenceResult res;
  ASSERT_TRUE(warm_until_quiet(engine, img, state, res));
  const std::size_t before = spikestream::alloc_hook::allocs();
  for (int t = 0; t < 12; ++t) engine.run(img, state, res);
  const std::size_t after = spikestream::alloc_hook::allocs();
  EXPECT_EQ(after - before, 0u)
      << "memoized steady state (hits AND misses) must not allocate";
  const auto* a =
      dynamic_cast<const rt::AnalyticalBackend*>(&engine.backend());
  ASSERT_NE(a, nullptr);
  EXPECT_GT(a->cost_cache_hits(), 0u);
}

TEST(ScratchReuse, ZeroSteadyStateAllocationsMemoizedCycleAccurate) {
  // Both caches stacked: ISS ratio buckets + cost memo.
  const snn::Network net = test_net();
  const auto img = snn::make_batch(1, 29, 16, 16, 3)[0];
  k::RunOptions opt;
  rt::BackendConfig cfg;
  cfg.kind = rt::BackendKind::kCycleAccurate;
  cfg.memoize_cost = true;
  const rt::InferenceEngine engine(net, opt, cfg);
  snn::NetworkState state = engine.make_state();
  rt::InferenceResult res;
  ASSERT_TRUE(warm_until_quiet(engine, img, state, res));
  const std::size_t before = spikestream::alloc_hook::allocs();
  for (int t = 0; t < 12; ++t) engine.run(img, state, res);
  const std::size_t after = spikestream::alloc_hook::allocs();
  EXPECT_EQ(after - before, 0u);
}

TEST(ScratchReuse, ZeroSteadyStateAllocationsPooledSharded) {
  // The persistent worker pool extends the zero-allocation contract to the
  // threaded sharded mode: shard fan-out submits stack jobs onto pre-created
  // threads and every per-shard buffer lives in a plan-presized ShardLane.
  // The hybrid strategy routes this net through all three shard axes.
  const snn::Network net = test_net();
  const auto img = snn::make_batch(1, 9, 16, 16, 3)[0];
  k::RunOptions opt;
  rt::BackendConfig cfg;
  cfg.kind = rt::BackendKind::kSharded;
  cfg.clusters = 4;
  cfg.shard_threads = true;  // pooled mode — the historical allocator
  cfg.partition = spikestream::kernels::PartitionStrategy::kHybrid;
  const rt::InferenceEngine engine(net, opt, cfg);
  snn::NetworkState state = engine.make_state();
  rt::InferenceResult res;
  // Warm until occupancy (and with it every arena capacity) settles.
  ASSERT_TRUE(warm_until_quiet(engine, img, state, res));
  const std::size_t before = spikestream::alloc_hook::allocs();
  for (int t = 0; t < 5; ++t) engine.run(img, state, res);
  const std::size_t after = spikestream::alloc_hook::allocs();
  EXPECT_EQ(after - before, 0u)
      << "pooled sharded steady state must not touch the heap";
}

TEST(ScratchReuse, CsrEncodeIntoReusesBuffers) {
  sc::Rng rng(3);
  snn::SpikeMap dense(12, 12, 64);
  for (auto& b : dense.v) b = rng.bernoulli(0.3);
  compress::CsrIfmap csr;
  compress::CsrIfmap::encode_into(dense, csr);
  const auto once = csr.c_idcs();
  // Re-encoding equal or sparser maps into the same object allocates nothing.
  const std::size_t before = spikestream::alloc_hook::allocs();
  for (int r = 0; r < 10; ++r) compress::CsrIfmap::encode_into(dense, csr);
  const std::size_t after = spikestream::alloc_hook::allocs();
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(csr.c_idcs(), once);
  // And the reused encoding round-trips.
  const snn::SpikeMap back = csr.decode();
  EXPECT_EQ(back.v, dense.v);
}

TEST(ScratchReuse, BatchRunnerReusedStatesMatchPerSampleStates) {
  const snn::Network net = test_net();
  const auto images = snn::make_batch(4, 21, 16, 16, 3);
  k::RunOptions opt;
  const rt::BatchRunner runner(net, opt, {}, {}, /*workers=*/2);
  const auto batched = runner.run(images, /*timesteps=*/2);
  for (std::size_t i = 0; i < images.size(); ++i) {
    rt::InferenceEngine engine(net, opt);
    const auto serial = rt::run_timesteps(engine, images[i], 2);
    EXPECT_EQ(batched[i].spike_counts, serial.spike_counts) << i;
    EXPECT_DOUBLE_EQ(batched[i].total_cycles, serial.total_cycles) << i;
  }
}

TEST(ScratchReuse, PipelinedRunnerSteadyStatePerBatchAllocsStable) {
  // The pipelined executor's orchestration (tick scheduling, lane
  // borrowing) must reach a steady per-batch allocation count: after
  // warmup, every further batch allocates exactly as much as the previous
  // one (the residue is the by-value result marshalling, which is
  // per-batch constant), so growth-type regressions inside the runner show
  // up as a drift.
  const snn::Network net = test_net();
  const auto images = snn::make_batch(5, 3, 16, 16, 3);
  k::RunOptions opt;
  const rt::PipelinedBatchRunner runner(net, opt, {}, {}, /*depth=*/3);
  for (int r = 0; r < 4; ++r) runner.run_single_step(images);
  std::size_t per_batch = 0;
  for (int r = 0; r < 5; ++r) {
    const std::size_t before = spikestream::alloc_hook::allocs();
    runner.run_single_step(images);
    const std::size_t d = spikestream::alloc_hook::allocs() - before;
    if (r == 0) {
      per_batch = d;
    } else {
      EXPECT_EQ(per_batch, d) << "batch " << r;
    }
  }
}

TEST(ScratchReuse, ZeroSteadyStateAllocationsSegmentMajor) {
  // The segment-major FC accounting is pure plan arithmetic (scalar fields
  // on TilePlan) and the band-major functional pass reuses the per-lane row
  // arena, so the engine-level hot path must stay allocation-free with the
  // schedule enabled.
  const snn::Network net = test_net();
  const auto img = snn::make_batch(1, 7, 16, 16, 3)[0];
  k::RunOptions opt;
  opt.segment_major_lanes = 4;
  const rt::InferenceEngine engine(net, opt);
  snn::NetworkState state = engine.make_state();
  rt::InferenceResult res;
  ASSERT_TRUE(warm_until_quiet(engine, img, state, res));
  const std::size_t before = spikestream::alloc_hook::allocs();
  for (int t = 0; t < 5; ++t) engine.run(img, state, res);
  const std::size_t after = spikestream::alloc_hook::allocs();
  EXPECT_EQ(after - before, 0u)
      << "segment-major steady state must not touch the heap";
}

TEST(ScratchReuse, StreamReaderAccountingNeverAllocates) {
  // The DRAM model's accounting surfaces are closed-form over fixed-size
  // state (std::array open-row registers): pricing a million-beat access
  // pattern must not touch the heap at all — the planner calls these in its
  // hot cost queries.
  namespace arch = spikestream::arch;
  arch::StreamReader rd(arch::DramConfig::banked());
  const std::size_t before = spikestream::alloc_hook::allocs();
  for (int r = 0; r < 1000; ++r) {
    rd.stream(1.0e6, 64.0);
    rd.write(4096.0, 2.0);
    rd.stream_records(arch::DramFormat::kFixedStride, 8192.0, 32.0, 4.0);
    rd.touch(static_cast<std::uint64_t>(r) * 4096, 2048);
  }
  rd.reset();
  const std::size_t after = spikestream::alloc_hook::allocs();
  EXPECT_EQ(after - before, 0u)
      << "DRAM stream accounting must be allocation-free";
  EXPECT_DOUBLE_EQ(rd.cost().bytes, 0.0);
}

TEST(ScratchReuse, ZeroSteadyStateAllocationsBankedDram) {
  // Banked-DRAM pricing swaps the flat cost expressions for the row-model
  // closed forms inside the same plan queries; the engine-level steady state
  // must stay allocation-free with the banked model and the segment-major
  // schedule both enabled.
  const snn::Network net = test_net();
  const auto img = snn::make_batch(1, 7, 16, 16, 3)[0];
  k::RunOptions opt;
  opt.cost.dram = spikestream::arch::DramConfig::banked();
  opt.segment_major_lanes = 4;
  const rt::InferenceEngine engine(net, opt);
  snn::NetworkState state = engine.make_state();
  rt::InferenceResult res;
  ASSERT_TRUE(warm_until_quiet(engine, img, state, res));
  const std::size_t before = spikestream::alloc_hook::allocs();
  for (int t = 0; t < 5; ++t) engine.run(img, state, res);
  const std::size_t after = spikestream::alloc_hook::allocs();
  EXPECT_EQ(after - before, 0u)
      << "banked-DRAM steady state must not touch the heap";
}

TEST(ScratchReuse, ZeroSteadyStateAllocationsAdaptiveSharded) {
  // Once the one axis flip (if any) has happened, the adaptive re-planner's
  // steady state is an EMA update plus two allocation-free cost-model
  // evaluations per layer — the pooled sharded zero-allocation contract must
  // survive with re-planning enabled.
  const snn::Network net = test_net();
  const auto img = snn::make_batch(1, 9, 16, 16, 3)[0];
  k::RunOptions opt;
  rt::BackendConfig cfg;
  cfg.kind = rt::BackendKind::kSharded;
  cfg.clusters = 4;
  cfg.shard_threads = true;
  cfg.partition = spikestream::kernels::PartitionStrategy::kHybrid;
  cfg.replan.enabled = true;
  const rt::InferenceEngine engine(net, opt, cfg);
  snn::NetworkState state = engine.make_state();
  rt::InferenceResult res;
  ASSERT_TRUE(warm_until_quiet(engine, img, state, res));
  const std::size_t before = spikestream::alloc_hook::allocs();
  for (int t = 0; t < 5; ++t) engine.run(img, state, res);
  const std::size_t after = spikestream::alloc_hook::allocs();
  EXPECT_EQ(after - before, 0u)
      << "adaptive sharded steady state must not touch the heap";
}

TEST(ScratchReuse, ZeroSteadyStateAllocationsServerLoop) {
  // The serving hot path extends the contract end to end: submit (lock-free
  // ring push), wave formation, lockstep execution into the pre-sized lane
  // buffers, completion publish (futex wake) and the recycled request slot's
  // result reset must all stay off the heap once warmed. Fixed wave width
  // (adaptive off) keeps the wave shape identical across rounds.
  const snn::Network net = test_net();
  const auto img = snn::make_batch(1, 7, 16, 16, 3)[0];
  k::RunOptions opt;
  opt.segment_major_lanes = 4;
  rt::ServerConfig scfg;
  scfg.max_queue_delay_us = 200;
  scfg.adaptive_wave = false;
  rt::InferenceServer server(net, opt, {}, scfg);
  rt::ServeRequest slot;  // recycled: result capacity persists across rounds
  slot.image = &img;

  // Warm until a full submit->wait round is allocation-quiet (arena growth,
  // first-wave lane state sizing, result vector capacity).
  int quiet = 0;
  for (int r = 0; r < 64 && quiet < 6; ++r) {
    const std::size_t before = spikestream::alloc_hook::allocs();
    ASSERT_TRUE(server.submit(slot));
    ASSERT_TRUE(slot.wait());
    quiet = spikestream::alloc_hook::allocs() == before ? quiet + 1 : 0;
  }
  ASSERT_GE(quiet, 6) << "server loop never reached allocation quiescence";

  const std::size_t before = spikestream::alloc_hook::allocs();
  for (int r = 0; r < 5; ++r) {
    ASSERT_TRUE(server.submit(slot));
    ASSERT_TRUE(slot.wait());
  }
  const std::size_t after = spikestream::alloc_hook::allocs();
  EXPECT_EQ(after - before, 0u)
      << "admission -> dispatch -> complete must not touch the heap";
  server.stop();
}
