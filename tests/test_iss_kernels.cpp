// The paper's inner loops (Listings 1b / 1c) on the cycle-level cluster:
// functional correctness and the headline per-element costs.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "arch/cluster.hpp"
#include "common/rng.hpp"
#include "kernels/iss_kernels.hpp"

namespace arch = spikestream::arch;
namespace k = spikestream::kernels;

namespace {

arch::Cluster make_cl() {
  arch::ClusterConfig cfg;
  cfg.icache_miss_penalty = 0;  // steady-state loop timing
  return arch::Cluster(cfg);
}

struct SpvaData {
  std::vector<double> weights;
  std::vector<std::uint16_t> idcs;
  double expected = 0;
};

SpvaData make_spva(int n_weights, int s_len, std::uint64_t seed) {
  spikestream::common::Rng rng(seed);
  SpvaData d;
  d.weights.resize(static_cast<std::size_t>(n_weights));
  for (auto& w : d.weights) w = rng.normal();
  for (int i = 0; i < s_len; ++i) {
    d.idcs.push_back(static_cast<std::uint16_t>(
        rng.uniform_u64(static_cast<std::uint64_t>(n_weights))));
  }
  for (auto i : d.idcs) d.expected += d.weights[i];
  return d;
}

}  // namespace

TEST(IssKernels, BaselineSpvaComputesGather) {
  auto cl = make_cl();
  const SpvaData d = make_spva(256, 60, 1);
  const auto r = k::iss_baseline_spva(cl, d.weights, d.idcs);
  EXPECT_DOUBLE_EQ(r.value, d.expected);
}

TEST(IssKernels, BaselineSpvaCostsElevenCyclesPerElement) {
  auto cl = make_cl();
  const SpvaData d = make_spva(512, 400, 2);
  const auto r = k::iss_baseline_spva(cl, d.weights, d.idcs);
  const double per_elem = static_cast<double>(r.cycles) / 400.0;
  // 8 issues + 1 load-use bubble + 2 branch-flush cycles = 11.
  EXPECT_NEAR(per_elem, 11.0, 0.5);
  // Only one useful FP op per element.
  EXPECT_EQ(r.perf.fp_ops, 400u);
  EXPECT_LT(r.perf.fpu_utilization(), 0.12);
  EXPECT_GT(r.perf.fpu_utilization(), 0.07);
}

TEST(IssKernels, SpikeStreamSpvaComputesSameGather) {
  auto cl = make_cl();
  const SpvaData d = make_spva(256, 60, 3);
  const auto r = k::iss_spikestream_spva(cl, d.weights, d.idcs);
  EXPECT_DOUBLE_EQ(r.value, d.expected);
}

TEST(IssKernels, SpikeStreamSpvaRunsAtAccumulationII) {
  auto cl = make_cl();
  const SpvaData d = make_spva(512, 400, 4);
  const auto r = k::iss_spikestream_spva(cl, d.weights, d.idcs);
  const double per_elem = static_cast<double>(r.cycles) / 400.0;
  // Streamed fadd chain: II = fadd latency (2), small setup amortized.
  EXPECT_NEAR(per_elem, 2.0, 0.25);
  EXPECT_GT(r.perf.fpu_utilization(), 0.42);
}

TEST(IssKernels, SpeedupMatchesPaperInnerLoopClaim) {
  // The single-SpVA speedup baseline -> SpikeStream should approach
  // baseline_elem_cycles / fadd_latency ~= 5.5x for long streams.
  auto cl1 = make_cl();
  auto cl2 = make_cl();
  const SpvaData d = make_spva(1024, 600, 5);
  const auto rb = k::iss_baseline_spva(cl1, d.weights, d.idcs);
  const auto rs = k::iss_spikestream_spva(cl2, d.weights, d.idcs);
  EXPECT_DOUBLE_EQ(rb.value, rs.value);
  const double speedup =
      static_cast<double>(rb.cycles) / static_cast<double>(rs.cycles);
  EXPECT_GT(speedup, 4.5);
  EXPECT_LT(speedup, 6.5);
}

TEST(IssKernels, SequenceOverlapsSetupWithStreams) {
  // 20 SpVAs of 60 elements back-to-back: per-element cost should stay near
  // II because each setup hides under the previous stream.
  auto cl = make_cl();
  spikestream::common::Rng rng(6);
  std::vector<double> weights(512);
  for (auto& w : weights) w = rng.normal();
  std::vector<std::vector<std::uint16_t>> streams;
  double expected = 0;
  int total = 0;
  for (int j = 0; j < 20; ++j) {
    std::vector<std::uint16_t> s;
    for (int i = 0; i < 60; ++i) {
      s.push_back(static_cast<std::uint16_t>(rng.uniform_u64(512)));
      expected += weights[s.back()];
    }
    total += 60;
    streams.push_back(std::move(s));
  }
  const auto r = k::iss_spikestream_spva_sequence(cl, weights, streams);
  EXPECT_NEAR(r.value, expected, 1e-9);
  const double per_elem = static_cast<double>(r.cycles) / total;
  EXPECT_LT(per_elem, 2.4);  // setup (~14 int cycles) hidden under streams
}

TEST(IssKernels, SequenceWithShortStreamsIsSetupBound) {
  // The paper's layer-2 effect: streams of 5 elements cannot hide the setup,
  // so per-element cost rises well above the II.
  auto cl = make_cl();
  spikestream::common::Rng rng(7);
  std::vector<double> weights(64);
  for (auto& w : weights) w = rng.normal();
  std::vector<std::vector<std::uint16_t>> streams;
  int total = 0;
  for (int j = 0; j < 40; ++j) {
    std::vector<std::uint16_t> s;
    for (int i = 0; i < 5; ++i) {
      s.push_back(static_cast<std::uint16_t>(rng.uniform_u64(64)));
    }
    total += 5;
    streams.push_back(std::move(s));
  }
  const auto r = k::iss_spikestream_spva_sequence(cl, weights, streams);
  const double per_elem = static_cast<double>(r.cycles) / total;
  EXPECT_GT(per_elem, 2.8);  // integer pipe dominates
}

TEST(IssKernels, DenseDotTwoAccumulators) {
  auto cl = make_cl();
  spikestream::common::Rng rng(8);
  std::vector<double> a(200), b(200);
  double expected = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.normal();
    b[i] = rng.normal();
    expected += a[i] * b[i];
  }
  const auto r = k::iss_dense_dot(cl, a, b, 2);
  EXPECT_NEAR(r.value, expected, 1e-9);
  // Two interleaved accumulators at fmadd latency 3 -> II = 1.5.
  const double per_elem = static_cast<double>(r.cycles) / 200.0;
  EXPECT_NEAR(per_elem, 1.5, 0.3);
}

TEST(IssKernels, DenseDotOneAccumulatorSlower) {
  auto cl1 = make_cl();
  auto cl2 = make_cl();
  std::vector<double> a(200, 1.0), b(200, 2.0);
  const auto r1 = k::iss_dense_dot(cl1, a, b, 1);
  const auto r2 = k::iss_dense_dot(cl2, a, b, 2);
  EXPECT_DOUBLE_EQ(r1.value, 400.0);
  EXPECT_DOUBLE_EQ(r2.value, 400.0);
  EXPECT_GT(r1.cycles, r2.cycles + 200);  // II 3 vs 1.5
}

class MulticoreSpva : public ::testing::TestWithParam<int> {};

TEST_P(MulticoreSpva, AllCoresFinishWithBoundedConflictStretch) {
  const int n_cores = GetParam();
  auto cl = make_cl();
  const SpvaData d = make_spva(256, 300, 9);
  const auto r =
      k::iss_spikestream_spva_multicore(cl, d.weights, d.idcs, n_cores);
  EXPECT_DOUBLE_EQ(r.value, d.expected);
  // With more cores gathering randomly, some stretch over the 1-core time is
  // expected but bounded (32 banks vs <= 8 requesters).
  const double per_elem = static_cast<double>(r.cycles) / 300.0;
  EXPECT_LT(per_elem, 3.0);
  EXPECT_GE(per_elem, 1.8);
}

INSTANTIATE_TEST_SUITE_P(Cores, MulticoreSpva, ::testing::Values(1, 2, 4, 8));
