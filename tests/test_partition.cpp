// Partition-plan subsystem contract:
//  (1) spike outputs are bit-identical across every partition strategy
//      (output-channel / ifmap-stripe / hybrid), cluster count, and serial
//      vs pooled execution — partitioning may only change timing attribution;
//  (2) merged KernelStats conserve activity: output-channel and row-stripe
//      plans repartition the same work exactly, and the fan-in plan's
//      reduction overhead is itemized, not hidden;
//  (3) the hybrid strategy queries the cost model sensibly (narrow layers
//      stop idling clusters, wide layers keep the historical tiling);
//  (4) the NoC model records inter-cluster traffic and, when contention is
//      enabled, a tighter bandwidth ceiling never speeds a layer up;
//  (5) the worker pool runs every task exactly once, supports nesting, and
//      propagates exceptions.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "kernels/partition.hpp"
#include "runtime/backend_sharded.hpp"
#include "runtime/engine.hpp"
#include "runtime/worker_pool.hpp"
#include "snn/calibrate.hpp"
#include "snn/input_gen.hpp"

namespace rt = spikestream::runtime;
namespace k = spikestream::kernels;
namespace snn = spikestream::snn;
namespace sc = spikestream::common;

namespace {

snn::Network test_net() {
  snn::Network net = snn::Network::make_tiny(18, 3, 32, 10);
  sc::Rng rng(42);
  net.init_weights(rng);
  const auto calib = snn::make_batch(4, 7, 16, 16, 3);
  const std::vector<double> targets = {0.20, 0.15, 0.30};
  snn::calibrate_thresholds(net, calib, targets);
  return net;
}

rt::BackendConfig sharded_cfg(k::PartitionStrategy strategy, int clusters,
                              bool threads = true) {
  rt::BackendConfig cfg;
  cfg.kind = rt::BackendKind::kSharded;
  cfg.clusters = clusters;
  cfg.shard_threads = threads;
  cfg.partition = strategy;
  return cfg;
}

snn::LayerSpec conv_spec(int in_hw, int in_c, int out_c) {
  snn::LayerSpec s;
  s.kind = snn::LayerKind::kConv;
  s.name = "conv";
  s.in_h = s.in_w = in_hw;
  s.in_c = in_c;
  s.k = 3;
  s.out_c = out_c;
  return s;
}

snn::LayerSpec fc_spec(int in_c, int out_c) {
  snn::LayerSpec s;
  s.kind = snn::LayerKind::kFc;
  s.name = "fc";
  s.in_c = in_c;
  s.out_c = out_c;
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// Plan construction
// ---------------------------------------------------------------------------

TEST(Partitioner, ChannelSlicesAlignToSimdGroups) {
  const auto sl = k::Partitioner::channel_slices(10, 4, 4);
  ASSERT_EQ(sl.size(), 3u);  // 3 groups of 4 lanes -> 3 active shards
  EXPECT_EQ(sl[0], (k::ShardRange{0, 4}));
  EXPECT_EQ(sl[1], (k::ShardRange{4, 8}));
  EXPECT_EQ(sl[2], (k::ShardRange{8, 10}));
}

TEST(Partitioner, RowStripesCoverAllRowsDisjointly) {
  for (int rows : {5, 16, 33}) {
    for (int clusters : {1, 4, 8}) {
      const auto sl = k::Partitioner::row_stripes(rows, clusters);
      ASSERT_FALSE(sl.empty());
      EXPECT_LE(sl.size(), static_cast<std::size_t>(clusters));
      EXPECT_EQ(sl.front().lo, 0);
      EXPECT_EQ(sl.back().hi, rows);
      for (std::size_t s = 1; s < sl.size(); ++s) {
        EXPECT_EQ(sl[s].lo, sl[s - 1].hi);  // contiguous, disjoint
      }
      // Balanced to within one row.
      int lo = rows, hi = 0;
      for (const auto& r : sl) {
        lo = std::min(lo, r.extent());
        hi = std::max(hi, r.extent());
      }
      EXPECT_LE(hi - lo, 1);
    }
  }
}

TEST(Partitioner, HybridPicksFanInForNarrowFcHead) {
  k::RunOptions opt;
  const k::Partitioner part(opt, 8, k::PartitionStrategy::kHybrid);
  // 10-class head: 3 SIMD groups would idle 5 of 8 clusters under
  // output-channel tiling; the cost model must pick fan-in segments.
  const auto narrow = part.plan_layer(fc_spec(1024, 10));
  EXPECT_EQ(narrow.axis, k::ShardAxis::kFanIn);
  EXPECT_EQ(narrow.n(), 8u);
  EXPECT_LT(narrow.est_cycles, narrow.est_alt_cycles);
  // A wide FC layer keeps the historical tiling.
  const auto wide = part.plan_layer(fc_spec(1024, 1024));
  EXPECT_EQ(wide.axis, k::ShardAxis::kOutputChannel);
}

TEST(Partitioner, HybridPicksStripesForNarrowConv) {
  k::RunOptions opt;
  const k::Partitioner part(opt, 8, k::PartitionStrategy::kHybrid);
  // out_c = 4 is a single FP16 SIMD group: output-channel tiling cannot use
  // more than one cluster, row stripes use all eight.
  const auto narrow = part.plan_layer(conv_spec(34, 16, 4));
  EXPECT_EQ(narrow.axis, k::ShardAxis::kIfmapStripe);
  EXPECT_EQ(narrow.n(), 8u);
  const auto wide = part.plan_layer(conv_spec(18, 128, 256));
  EXPECT_EQ(wide.axis, k::ShardAxis::kOutputChannel);
}

TEST(Partitioner, SingleClusterPlansAreUnsharded) {
  k::RunOptions opt;
  for (const auto strategy :
       {k::PartitionStrategy::kOutputChannel, k::PartitionStrategy::kIfmapStripe,
        k::PartitionStrategy::kHybrid}) {
    const k::Partitioner part(opt, 1, strategy);
    const auto plan = part.plan_layer(conv_spec(18, 32, 32));
    EXPECT_EQ(plan.n(), 1u) << k::partition_strategy_name(strategy);
  }
}

// ---------------------------------------------------------------------------
// Spike parity across plans
// ---------------------------------------------------------------------------

TEST(PartitionParity, SpikesBitIdenticalAcrossStrategiesClustersAndPooling) {
  const snn::Network net = test_net();
  k::RunOptions opt;
  const rt::InferenceEngine analytical(net, opt);
  const auto images = snn::make_batch(2, 99, 16, 16, 3);

  for (const auto strategy :
       {k::PartitionStrategy::kOutputChannel, k::PartitionStrategy::kIfmapStripe,
        k::PartitionStrategy::kHybrid}) {
    for (const int clusters : {1, 4, 8}) {
      for (const bool pooled : {false, true}) {
        const rt::InferenceEngine sharded(
            net, opt, sharded_cfg(strategy, clusters, pooled));
        for (const auto& img : images) {
          snn::NetworkState sa = analytical.make_state();
          snn::NetworkState ss = sharded.make_state();
          for (int t = 0; t < 3; ++t) {
            const auto ra = analytical.run(img, sa);
            const auto rs = sharded.run(img, ss);
            ASSERT_EQ(ra.final_output.v, rs.final_output.v)
                << k::partition_strategy_name(strategy) << " clusters="
                << clusters << " pooled=" << pooled << " t=" << t;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Activity conservation of merged KernelStats
// ---------------------------------------------------------------------------

TEST(PartitionConservation, OutputChannelAndStripePlansConserveActivity) {
  const snn::Network net = test_net();
  k::RunOptions opt;
  const rt::InferenceEngine analytical(net, opt);
  const auto img = snn::make_batch(1, 6, 16, 16, 3)[0];
  snn::NetworkState sa = analytical.make_state();
  const auto ra = analytical.run(img, sa);

  for (const auto strategy : {k::PartitionStrategy::kOutputChannel,
                              k::PartitionStrategy::kIfmapStripe}) {
    const rt::InferenceEngine sharded(net, opt, sharded_cfg(strategy, 4));
    snn::NetworkState ss = sharded.make_state();
    const auto rs = sharded.run(img, ss);
    for (std::size_t l = 0; l < ra.layers.size(); ++l) {
      const auto& a = ra.layers[l].stats;
      const auto& s = rs.layers[l].stats;
      if (net.layer(l).kind == snn::LayerKind::kFc &&
          strategy == k::PartitionStrategy::kIfmapStripe) {
        continue;  // fan-in: itemized overhead, checked separately below
      }
      EXPECT_NEAR(s.fpu_ops, a.fpu_ops, 1e-6 * a.fpu_ops + 1e-6)
          << k::partition_strategy_name(strategy) << " layer " << l;
      EXPECT_NEAR(s.tcdm_words, a.tcdm_words, 1e-6 * a.tcdm_words + 1e-6)
          << k::partition_strategy_name(strategy) << " layer " << l;
      EXPECT_NEAR(s.ssr_elems, a.ssr_elems, 1e-6 * a.ssr_elems + 1e-6)
          << k::partition_strategy_name(strategy) << " layer " << l;
      // Wall-clock per layer never exceeds the single-cluster run (the NoC
      // ceiling is off by default).
      EXPECT_LE(s.cycles, a.cycles + 1e-9)
          << k::partition_strategy_name(strategy) << " layer " << l;
    }
  }
}

TEST(PartitionConservation, FanInReductionIsItemizedExactly) {
  const snn::Network net = test_net();
  k::RunOptions opt;
  const int clusters = 4;
  const rt::InferenceEngine analytical(net, opt);
  const rt::InferenceEngine sharded(
      net, opt, sharded_cfg(k::PartitionStrategy::kIfmapStripe, clusters));
  const auto img = snn::make_batch(1, 6, 16, 16, 3)[0];
  snn::NetworkState sa = analytical.make_state();
  snn::NetworkState ss = sharded.make_state();
  const auto ra = analytical.run(img, sa);
  const auto rs = sharded.run(img, ss);

  const std::size_t l = net.num_layers() - 1;  // the FC head
  ASSERT_EQ(net.layer(l).kind, snn::LayerKind::kFc);
  const auto* be = dynamic_cast<const rt::ShardedBackend*>(&sharded.backend());
  ASSERT_NE(be, nullptr);
  const k::LayerPlan& plan = be->plan_for(net.layer(l));
  ASSERT_EQ(plan.axis, k::ShardAxis::kFanIn);
  const double n = static_cast<double>(plan.n());
  ASSERT_GT(n, 1.0);

  const auto& a = ra.layers[l].stats;
  const auto& s = rs.layers[l].stats;
  const int simd = sc::simd_lanes(opt.fmt);
  const double groups = (net.layer(l).out_c + simd - 1) / simd;
  // The accumulation work is conserved; the reduction adds exactly
  // (n - 1) partial-vector merges of `groups` SIMD adds each.
  EXPECT_NEAR(s.fpu_ops - a.fpu_ops, (n - 1) * groups,
              1e-9 * a.fpu_ops + 1e-9);
  EXPECT_NEAR(s.ssr_elems, a.ssr_elems, 1e-6 * a.ssr_elems + 1e-6);
  EXPECT_NEAR(s.tcdm_words - a.tcdm_words, 2.0 * (n - 1) * groups,
              1e-9 * a.tcdm_words + 1e-9);
  // The partial vectors are the only inter-cluster traffic (inputs are
  // disjoint — no broadcast).
  const double fp_bytes = sc::fp_bytes(opt.fmt);
  EXPECT_NEAR(s.noc_bytes, (n - 1) * net.layer(l).out_c * fp_bytes, 1e-9);
}

// ---------------------------------------------------------------------------
// NoC model
// ---------------------------------------------------------------------------

TEST(NocModel, BroadcastTrafficIsRecordedAndCeilingOnlySlowsDown) {
  const snn::Network net = test_net();
  k::RunOptions opt;
  auto cfg = sharded_cfg(k::PartitionStrategy::kOutputChannel, 4);
  const rt::InferenceEngine off(net, opt, cfg);
  cfg.noc.model_contention = true;
  cfg.noc.shared_bytes_per_cycle = 64.0;
  const rt::InferenceEngine wide(net, opt, cfg);
  cfg.noc.shared_bytes_per_cycle = 1.0;
  const rt::InferenceEngine tight(net, opt, cfg);

  const auto img = snn::make_batch(1, 9, 16, 16, 3)[0];
  snn::NetworkState s0 = off.make_state();
  snn::NetworkState s1 = wide.make_state();
  snn::NetworkState s2 = tight.make_state();
  const auto r0 = off.run(img, s0);
  const auto r1 = wide.run(img, s1);
  const auto r2 = tight.run(img, s2);

  double total_noc = 0;
  for (std::size_t l = 0; l < r0.layers.size(); ++l) {
    // Traffic accounting is independent of the contention switch.
    EXPECT_DOUBLE_EQ(r0.layers[l].stats.noc_bytes,
                     r1.layers[l].stats.noc_bytes);
    EXPECT_DOUBLE_EQ(r0.layers[l].stats.noc_bytes,
                     r2.layers[l].stats.noc_bytes);
    total_noc += r0.layers[l].stats.noc_bytes;
    // A ceiling can only slow a layer down, monotonically in bandwidth.
    EXPECT_GE(r1.layers[l].stats.cycles, r0.layers[l].stats.cycles - 1e-9);
    EXPECT_GE(r2.layers[l].stats.cycles, r1.layers[l].stats.cycles - 1e-9);
  }
  EXPECT_GT(total_noc, 0.0);  // the broadcast is no longer free
  EXPECT_GT(r2.total_cycles, r0.total_cycles);
  // Spikes are untouched by the timing ceiling.
  EXPECT_EQ(r0.final_output.v, r2.final_output.v);
  // The energy model prices the traffic.
  double e_noc = 0;
  for (const auto& lm : r0.layers) e_noc += lm.energy.noc_pj;
  EXPECT_GT(e_noc, 0.0);
}

TEST(NocModel, StripesMoveLessInputTrafficThanBroadcast) {
  const snn::Network net = test_net();
  k::RunOptions opt;
  const rt::InferenceEngine oc(
      net, opt, sharded_cfg(k::PartitionStrategy::kOutputChannel, 4));
  const rt::InferenceEngine stripe(
      net, opt, sharded_cfg(k::PartitionStrategy::kIfmapStripe, 4));
  const auto img = snn::make_batch(1, 12, 16, 16, 3)[0];
  snn::NetworkState so = oc.make_state();
  snn::NetworkState ss = stripe.make_state();
  const auto ro = oc.run(img, so);
  const auto rs = stripe.run(img, ss);
  // Conv layers: a halo'd stripe crosses the NoC once per cluster instead of
  // a full broadcast replica.
  for (std::size_t l = 0; l < ro.layers.size(); ++l) {
    if (net.layer(l).kind != snn::LayerKind::kConv) continue;
    EXPECT_LT(rs.layers[l].stats.noc_bytes, ro.layers[l].stats.noc_bytes)
        << "layer " << l;
  }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

TEST(WorkerPoolTest, RunsEveryTaskExactlyOnceWithBoundedSlots) {
  rt::WorkerPool pool(3);
  constexpr std::size_t kTasks = 200;
  std::vector<std::atomic<int>> ran(kTasks);
  std::atomic<int> max_slot{0};
  pool.parallel_for(kTasks, 2, [&](std::size_t slot, std::size_t i) {
    ran[i].fetch_add(1);
    int seen = max_slot.load();
    while (slot > static_cast<std::size_t>(seen) &&
           !max_slot.compare_exchange_weak(seen, static_cast<int>(slot))) {
    }
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(ran[i].load(), 1) << "task " << i;
  }
  EXPECT_LT(max_slot.load(), 2);
}

TEST(WorkerPoolTest, NestedParallelForMakesProgress) {
  rt::WorkerPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, 4, [&](std::size_t, std::size_t) {
    pool.parallel_for(8, 8, [&](std::size_t, std::size_t) {
      total.fetch_add(1);
    });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(WorkerPoolTest, PropagatesTaskExceptions) {
  rt::WorkerPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(16, 4,
                        [&](std::size_t, std::size_t i) {
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(WorkerPoolTest, ClampsToHardwareConcurrency) {
  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  EXPECT_EQ(rt::WorkerPool::clamp_to_hardware(0), 1);
  EXPECT_EQ(rt::WorkerPool::clamp_to_hardware(1 << 20), hw);
  rt::WorkerPool pool(1 << 20);
  EXPECT_LE(pool.threads(), std::max(0, hw - 1));
}

// ---------------------------------------------------------------------------
// Plans are engine-construction state
// ---------------------------------------------------------------------------

TEST(PartitionPlans, PreparedAtEngineConstructionAndLanesPresized) {
  const snn::Network net = test_net();
  k::RunOptions opt;
  const rt::InferenceEngine engine(
      net, opt, sharded_cfg(k::PartitionStrategy::kHybrid, 8));
  const auto* be = dynamic_cast<const rt::ShardedBackend*>(&engine.backend());
  ASSERT_NE(be, nullptr);
  snn::NetworkState state = engine.make_state();
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const k::LayerPlan& plan = be->plan_for(net.layer(l));
    ASSERT_GE(plan.n(), 1u);
    if (plan.n() > 1) {
      EXPECT_GE(state.scratch(l).lanes.size(), plan.n()) << "layer " << l;
    }
  }
  // The 10-class head must engage every cluster under the hybrid plan.
  const k::LayerPlan& head = be->plan_for(net.layer(net.num_layers() - 1));
  EXPECT_EQ(head.axis, k::ShardAxis::kFanIn);
  EXPECT_EQ(head.n(), 8u);
}
