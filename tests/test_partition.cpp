// Partition-plan subsystem contract:
//  (1) spike outputs are bit-identical across every partition strategy
//      (output-channel / ifmap-stripe / hybrid), cluster count, and serial
//      vs pooled execution — partitioning may only change timing attribution;
//  (2) merged KernelStats conserve activity: output-channel and row-stripe
//      plans repartition the same work exactly, and the fan-in plan's
//      reduction overhead is itemized, not hidden;
//  (3) the hybrid strategy queries the cost model sensibly (narrow layers
//      stop idling clusters, wide layers keep the historical tiling);
//  (4) the NoC model records inter-cluster traffic and, when contention is
//      enabled, a tighter bandwidth ceiling never speeds a layer up;
//  (5) the worker pool runs every task exactly once, supports nesting, and
//      propagates exceptions.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <span>
#include <stdexcept>
#include <vector>

#include "arch/noc.hpp"
#include "common/rng.hpp"
#include "kernels/partition.hpp"
#include "runtime/backend_sharded.hpp"
#include "runtime/stage_pipeline.hpp"
#include "runtime/batch.hpp"
#include "runtime/engine.hpp"
#include "runtime/multistep.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/worker_pool.hpp"
#include "snn/calibrate.hpp"
#include "snn/input_gen.hpp"

namespace rt = spikestream::runtime;
namespace k = spikestream::kernels;
namespace snn = spikestream::snn;
namespace sc = spikestream::common;

namespace {

snn::Network test_net() {
  snn::Network net = snn::Network::make_tiny(18, 3, 32, 10);
  sc::Rng rng(42);
  net.init_weights(rng);
  const auto calib = snn::make_batch(4, 7, 16, 16, 3);
  const std::vector<double> targets = {0.20, 0.15, 0.30};
  snn::calibrate_thresholds(net, calib, targets);
  return net;
}

rt::BackendConfig sharded_cfg(k::PartitionStrategy strategy, int clusters,
                              bool threads = true) {
  rt::BackendConfig cfg;
  cfg.kind = rt::BackendKind::kSharded;
  cfg.clusters = clusters;
  cfg.shard_threads = threads;
  cfg.partition = strategy;
  return cfg;
}

snn::LayerSpec conv_spec(int in_hw, int in_c, int out_c) {
  snn::LayerSpec s;
  s.kind = snn::LayerKind::kConv;
  s.name = "conv";
  s.in_h = s.in_w = in_hw;
  s.in_c = in_c;
  s.k = 3;
  s.out_c = out_c;
  return s;
}

snn::LayerSpec fc_spec(int in_c, int out_c) {
  snn::LayerSpec s;
  s.kind = snn::LayerKind::kFc;
  s.name = "fc";
  s.in_c = in_c;
  s.out_c = out_c;
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// Plan construction
// ---------------------------------------------------------------------------

TEST(Partitioner, ChannelSlicesAlignToSimdGroups) {
  const auto sl = k::Partitioner::channel_slices(10, 4, 4);
  ASSERT_EQ(sl.size(), 3u);  // 3 groups of 4 lanes -> 3 active shards
  EXPECT_EQ(sl[0], (k::ShardRange{0, 4}));
  EXPECT_EQ(sl[1], (k::ShardRange{4, 8}));
  EXPECT_EQ(sl[2], (k::ShardRange{8, 10}));
}

TEST(Partitioner, RowStripesCoverAllRowsDisjointly) {
  for (int rows : {5, 16, 33}) {
    for (int clusters : {1, 4, 8}) {
      const auto sl = k::Partitioner::row_stripes(rows, clusters);
      ASSERT_FALSE(sl.empty());
      EXPECT_LE(sl.size(), static_cast<std::size_t>(clusters));
      EXPECT_EQ(sl.front().lo, 0);
      EXPECT_EQ(sl.back().hi, rows);
      for (std::size_t s = 1; s < sl.size(); ++s) {
        EXPECT_EQ(sl[s].lo, sl[s - 1].hi);  // contiguous, disjoint
      }
      // Balanced to within one row.
      int lo = rows, hi = 0;
      for (const auto& r : sl) {
        lo = std::min(lo, r.extent());
        hi = std::max(hi, r.extent());
      }
      EXPECT_LE(hi - lo, 1);
    }
  }
}

TEST(Partitioner, HybridPicksFanInForNarrowFcHead) {
  k::RunOptions opt;
  const k::Partitioner part(opt, 8, k::PartitionStrategy::kHybrid);
  // 10-class head: 3 SIMD groups would idle 5 of 8 clusters under
  // output-channel tiling; the cost model must pick fan-in segments.
  const auto narrow = part.plan_layer(fc_spec(1024, 10));
  EXPECT_EQ(narrow.axis, k::ShardAxis::kFanIn);
  EXPECT_EQ(narrow.n(), 8u);
  EXPECT_LT(narrow.est_cycles, narrow.est_alt_cycles);
  // A wide FC layer keeps the historical tiling.
  const auto wide = part.plan_layer(fc_spec(1024, 1024));
  EXPECT_EQ(wide.axis, k::ShardAxis::kOutputChannel);
}

TEST(Partitioner, HybridPicksStripesForNarrowConv) {
  k::RunOptions opt;
  const k::Partitioner part(opt, 8, k::PartitionStrategy::kHybrid);
  // out_c = 4 is a single FP16 SIMD group: output-channel tiling cannot use
  // more than one cluster, row stripes use all eight.
  const auto narrow = part.plan_layer(conv_spec(34, 16, 4));
  EXPECT_EQ(narrow.axis, k::ShardAxis::kIfmapStripe);
  EXPECT_EQ(narrow.n(), 8u);
  const auto wide = part.plan_layer(conv_spec(18, 128, 256));
  EXPECT_EQ(wide.axis, k::ShardAxis::kOutputChannel);
}

TEST(Partitioner, SingleClusterPlansAreUnsharded) {
  k::RunOptions opt;
  for (const auto strategy :
       {k::PartitionStrategy::kOutputChannel, k::PartitionStrategy::kIfmapStripe,
        k::PartitionStrategy::kHybrid}) {
    const k::Partitioner part(opt, 1, strategy);
    const auto plan = part.plan_layer(conv_spec(18, 32, 32));
    EXPECT_EQ(plan.n(), 1u) << k::partition_strategy_name(strategy);
  }
}

// ---------------------------------------------------------------------------
// Spike parity across plans
// ---------------------------------------------------------------------------

TEST(PartitionParity, SpikesBitIdenticalAcrossStrategiesClustersAndPooling) {
  const snn::Network net = test_net();
  k::RunOptions opt;
  const rt::InferenceEngine analytical(net, opt);
  const auto images = snn::make_batch(2, 99, 16, 16, 3);

  for (const auto strategy :
       {k::PartitionStrategy::kOutputChannel, k::PartitionStrategy::kIfmapStripe,
        k::PartitionStrategy::kHybrid}) {
    for (const int clusters : {1, 4, 8}) {
      for (const bool pooled : {false, true}) {
        const rt::InferenceEngine sharded(
            net, opt, sharded_cfg(strategy, clusters, pooled));
        for (const auto& img : images) {
          snn::NetworkState sa = analytical.make_state();
          snn::NetworkState ss = sharded.make_state();
          for (int t = 0; t < 3; ++t) {
            const auto ra = analytical.run(img, sa);
            const auto rs = sharded.run(img, ss);
            ASSERT_EQ(ra.final_output.v, rs.final_output.v)
                << k::partition_strategy_name(strategy) << " clusters="
                << clusters << " pooled=" << pooled << " t=" << t;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Activity conservation of merged KernelStats
// ---------------------------------------------------------------------------

TEST(PartitionConservation, OutputChannelAndStripePlansConserveActivity) {
  const snn::Network net = test_net();
  k::RunOptions opt;
  const rt::InferenceEngine analytical(net, opt);
  const auto img = snn::make_batch(1, 6, 16, 16, 3)[0];
  snn::NetworkState sa = analytical.make_state();
  const auto ra = analytical.run(img, sa);

  for (const auto strategy : {k::PartitionStrategy::kOutputChannel,
                              k::PartitionStrategy::kIfmapStripe}) {
    const rt::InferenceEngine sharded(net, opt, sharded_cfg(strategy, 4));
    snn::NetworkState ss = sharded.make_state();
    const auto rs = sharded.run(img, ss);
    for (std::size_t l = 0; l < ra.layers.size(); ++l) {
      const auto& a = ra.layers[l].stats;
      const auto& s = rs.layers[l].stats;
      if (net.layer(l).kind == snn::LayerKind::kFc &&
          strategy == k::PartitionStrategy::kIfmapStripe) {
        continue;  // fan-in: itemized overhead, checked separately below
      }
      EXPECT_NEAR(s.fpu_ops, a.fpu_ops, 1e-6 * a.fpu_ops + 1e-6)
          << k::partition_strategy_name(strategy) << " layer " << l;
      EXPECT_NEAR(s.tcdm_words, a.tcdm_words, 1e-6 * a.tcdm_words + 1e-6)
          << k::partition_strategy_name(strategy) << " layer " << l;
      EXPECT_NEAR(s.ssr_elems, a.ssr_elems, 1e-6 * a.ssr_elems + 1e-6)
          << k::partition_strategy_name(strategy) << " layer " << l;
      // Wall-clock per layer never exceeds the single-cluster run (the NoC
      // ceiling is off by default).
      EXPECT_LE(s.cycles, a.cycles + 1e-9)
          << k::partition_strategy_name(strategy) << " layer " << l;
    }
  }
}

TEST(PartitionConservation, FanInReductionIsItemizedExactly) {
  const snn::Network net = test_net();
  k::RunOptions opt;
  const int clusters = 4;
  const rt::InferenceEngine analytical(net, opt);
  const rt::InferenceEngine sharded(
      net, opt, sharded_cfg(k::PartitionStrategy::kIfmapStripe, clusters));
  const auto img = snn::make_batch(1, 6, 16, 16, 3)[0];
  snn::NetworkState sa = analytical.make_state();
  snn::NetworkState ss = sharded.make_state();
  const auto ra = analytical.run(img, sa);
  const auto rs = sharded.run(img, ss);

  const std::size_t l = net.num_layers() - 1;  // the FC head
  ASSERT_EQ(net.layer(l).kind, snn::LayerKind::kFc);
  const auto* be = dynamic_cast<const rt::ShardedBackend*>(&sharded.backend());
  ASSERT_NE(be, nullptr);
  const k::LayerPlan& plan = be->plan_for(net.layer(l));
  ASSERT_EQ(plan.axis, k::ShardAxis::kFanIn);
  const double n = static_cast<double>(plan.n());
  ASSERT_GT(n, 1.0);

  const auto& a = ra.layers[l].stats;
  const auto& s = rs.layers[l].stats;
  const int simd = sc::simd_lanes(opt.fmt);
  const double groups = (net.layer(l).out_c + simd - 1) / simd;
  // The accumulation work is conserved; the reduction adds exactly
  // (n - 1) partial-vector merges of `groups` SIMD adds each.
  EXPECT_NEAR(s.fpu_ops - a.fpu_ops, (n - 1) * groups,
              1e-9 * a.fpu_ops + 1e-9);
  EXPECT_NEAR(s.ssr_elems, a.ssr_elems, 1e-6 * a.ssr_elems + 1e-6);
  EXPECT_NEAR(s.tcdm_words - a.tcdm_words, 2.0 * (n - 1) * groups,
              1e-9 * a.tcdm_words + 1e-9);
  // The partial vectors are the only inter-cluster traffic (inputs are
  // disjoint — no broadcast).
  const double fp_bytes = sc::fp_bytes(opt.fmt);
  EXPECT_NEAR(s.noc_bytes, (n - 1) * net.layer(l).out_c * fp_bytes, 1e-9);
}

// ---------------------------------------------------------------------------
// NoC model
// ---------------------------------------------------------------------------

TEST(NocModel, BroadcastTrafficIsRecordedAndCeilingOnlySlowsDown) {
  const snn::Network net = test_net();
  k::RunOptions opt;
  auto cfg = sharded_cfg(k::PartitionStrategy::kOutputChannel, 4);
  const rt::InferenceEngine off(net, opt, cfg);
  cfg.noc.model_contention = true;
  cfg.noc.shared_bytes_per_cycle = 64.0;
  const rt::InferenceEngine wide(net, opt, cfg);
  cfg.noc.shared_bytes_per_cycle = 1.0;
  const rt::InferenceEngine tight(net, opt, cfg);

  const auto img = snn::make_batch(1, 9, 16, 16, 3)[0];
  snn::NetworkState s0 = off.make_state();
  snn::NetworkState s1 = wide.make_state();
  snn::NetworkState s2 = tight.make_state();
  const auto r0 = off.run(img, s0);
  const auto r1 = wide.run(img, s1);
  const auto r2 = tight.run(img, s2);

  double total_noc = 0;
  for (std::size_t l = 0; l < r0.layers.size(); ++l) {
    // Traffic accounting is independent of the contention switch.
    EXPECT_DOUBLE_EQ(r0.layers[l].stats.noc_bytes,
                     r1.layers[l].stats.noc_bytes);
    EXPECT_DOUBLE_EQ(r0.layers[l].stats.noc_bytes,
                     r2.layers[l].stats.noc_bytes);
    total_noc += r0.layers[l].stats.noc_bytes;
    // A ceiling can only slow a layer down, monotonically in bandwidth.
    EXPECT_GE(r1.layers[l].stats.cycles, r0.layers[l].stats.cycles - 1e-9);
    EXPECT_GE(r2.layers[l].stats.cycles, r1.layers[l].stats.cycles - 1e-9);
  }
  EXPECT_GT(total_noc, 0.0);  // the broadcast is no longer free
  EXPECT_GT(r2.total_cycles, r0.total_cycles);
  // Spikes are untouched by the timing ceiling.
  EXPECT_EQ(r0.final_output.v, r2.final_output.v);
  // The energy model prices the traffic.
  double e_noc = 0;
  for (const auto& lm : r0.layers) e_noc += lm.energy.noc_pj;
  EXPECT_GT(e_noc, 0.0);
}

TEST(NocModel, StripesMoveLessInputTrafficThanBroadcast) {
  const snn::Network net = test_net();
  k::RunOptions opt;
  const rt::InferenceEngine oc(
      net, opt, sharded_cfg(k::PartitionStrategy::kOutputChannel, 4));
  const rt::InferenceEngine stripe(
      net, opt, sharded_cfg(k::PartitionStrategy::kIfmapStripe, 4));
  const auto img = snn::make_batch(1, 12, 16, 16, 3)[0];
  snn::NetworkState so = oc.make_state();
  snn::NetworkState ss = stripe.make_state();
  const auto ro = oc.run(img, so);
  const auto rs = stripe.run(img, ss);
  // Conv layers: a halo'd stripe crosses the NoC once per cluster instead of
  // a full broadcast replica.
  for (std::size_t l = 0; l < ro.layers.size(); ++l) {
    if (net.layer(l).kind != snn::LayerKind::kConv) continue;
    EXPECT_LT(rs.layers[l].stats.noc_bytes, ro.layers[l].stats.noc_bytes)
        << "layer " << l;
  }
}

// ---------------------------------------------------------------------------
// Stage-parallel pipeline
// ---------------------------------------------------------------------------

namespace {

snn::Network tower_net() {
  snn::Network net = snn::Network::make_deep_tower();
  sc::Rng rng(42);
  net.init_weights(rng);
  std::vector<snn::Tensor> calib;
  for (int i = 0; i < 4; ++i) {
    snn::Tensor t(6, 6, 3);
    for (auto& v : t.v) v = rng.uniform();
    calib.push_back(t);
  }
  snn::calibrate_thresholds(net, calib, snn::deep_tower_target_rates());
  return net;
}

std::vector<snn::Tensor> tower_inputs(int n) {
  sc::Rng rng(7);
  std::vector<snn::Tensor> imgs;
  for (int i = 0; i < n; ++i) {
    snn::Tensor t(6, 6, 3);
    for (auto& v : t.v) v = rng.uniform();
    imgs.push_back(t);
  }
  return imgs;
}

rt::BackendConfig pipeline_cfg(int clusters, k::ExecMode mode, bool enabled,
                               int fifo_depth = 4096) {
  auto cfg = sharded_cfg(k::PartitionStrategy::kHybrid, clusters, false);
  cfg.noc.topology = spikestream::arch::NocTopology::kRingQuadrant;
  cfg.noc.model_contention = true;
  cfg.pipeline.enabled = enabled;
  cfg.pipeline.mode = mode;
  cfg.pipeline.fifo_depth_spikes = fifo_depth;
  return cfg;
}

std::vector<rt::InferenceResult> run_batch(const rt::InferenceEngine& eng,
                                           std::span<const snn::Tensor> imgs) {
  snn::NetworkState state = eng.make_state();
  std::vector<rt::InferenceResult> batch;
  for (const auto& img : imgs) batch.push_back(eng.run(img, state));
  return batch;
}

}  // namespace

TEST(StagePlan, PlannerPipelinesTheDeepTowerButNotSvgg11) {
  k::RunOptions opt;
  const k::Partitioner part(opt, 8, k::PartitionStrategy::kHybrid);
  spikestream::arch::NocParams noc;
  noc.topology = spikestream::arch::NocTopology::kRingQuadrant;
  noc.model_contention = true;
  k::PipelineConfig cfg;
  cfg.enabled = true;

  // Deep narrow tower: per-layer work is a small multiple of the fixed
  // launch overheads, so splitting layers over cluster groups beats
  // amortizing every layer over all 8 clusters.
  const snn::Network tower = snn::Network::make_deep_tower();
  const k::StagePlan sp = part.plan_pipeline(tower, cfg, noc);
  EXPECT_NE(sp.mode, k::ExecMode::kDataParallel);
  EXPECT_GT(sp.num_stages(), 1);
  EXPECT_LT(sp.est_steady_cycles, sp.est_dp_cycles);

  // Stages tile the layer range contiguously and the clusters disjointly.
  ASSERT_FALSE(sp.stages.empty());
  EXPECT_EQ(sp.stages.front().layer_lo, 0);
  EXPECT_EQ(sp.stages.back().layer_hi, static_cast<int>(tower.num_layers()));
  EXPECT_EQ(sp.stages.front().cluster_lo, 0);
  EXPECT_EQ(sp.stages.back().cluster_hi, 8);
  for (int s = 1; s < sp.num_stages(); ++s) {
    EXPECT_EQ(sp.stages[s].layer_lo, sp.stages[s - 1].layer_hi);
    EXPECT_EQ(sp.stages[s].cluster_lo, sp.stages[s - 1].cluster_hi);
  }
  for (int l = 0; l < static_cast<int>(tower.num_layers()); ++l) {
    EXPECT_GE(sp.stage_of_layer(l), 0) << "layer " << l;
  }
  // Every non-terminal boundary carries a payload estimate.
  for (int s = 0; s + 1 < sp.num_stages(); ++s) {
    EXPECT_GT(sp.stages[s].est_handoff_bytes, 0.0) << "stage " << s;
  }
  EXPECT_DOUBLE_EQ(sp.stages.back().est_handoff_bytes, 0.0);

  // S-VGG11's fat layers keep data-parallel on the same cost query.
  const snn::Network svgg = snn::Network::make_svgg11();
  const k::StagePlan dp = part.plan_pipeline(svgg, cfg, noc);
  EXPECT_EQ(dp.mode, k::ExecMode::kDataParallel);
  EXPECT_EQ(dp.num_stages(), 1);
}

TEST(StagePlan, ForcedModesPinTheStageShape) {
  k::RunOptions opt;
  const k::Partitioner part(opt, 8, k::PartitionStrategy::kHybrid);
  spikestream::arch::NocParams noc;
  k::PipelineConfig cfg;
  cfg.enabled = true;

  const snn::Network tower = snn::Network::make_deep_tower();
  cfg.mode = k::ExecMode::kDataParallel;
  EXPECT_EQ(part.plan_pipeline(tower, cfg, noc).num_stages(), 1);
  cfg.mode = k::ExecMode::kStageParallel;
  const k::StagePlan pure = part.plan_pipeline(tower, cfg, noc);
  // Pure pipeline: one cluster per stage.
  for (const auto& st : pure.stages) {
    EXPECT_EQ(st.cluster_hi - st.cluster_lo, 1);
  }
  EXPECT_EQ(pure.num_stages(), 8);
  cfg.mode = k::ExecMode::kHybrid;
  const k::StagePlan hy = part.plan_pipeline(tower, cfg, noc);
  EXPECT_GT(hy.num_stages(), 1);
  EXPECT_LT(hy.num_stages(), 8);
}

TEST(StagePipeline, SpikesBitExactAcrossModesAndClusterCounts) {
  const snn::Network net = tower_net();
  k::RunOptions opt;
  const auto imgs = tower_inputs(6);

  // Reference: the serial analytical backend.
  rt::BackendConfig ref_cfg;
  ref_cfg.kind = rt::BackendKind::kAnalytical;
  const rt::InferenceEngine ref(net, opt, ref_cfg);
  const auto ref_batch = run_batch(ref, imgs);

  for (int clusters : {1, 4, 8}) {
    for (auto mode : {k::ExecMode::kAuto, k::ExecMode::kDataParallel,
                      k::ExecMode::kStageParallel, k::ExecMode::kHybrid}) {
      for (bool enabled : {false, true}) {
        const rt::InferenceEngine eng(net, opt,
                                      pipeline_cfg(clusters, mode, enabled));
        const auto batch = run_batch(eng, imgs);
        ASSERT_EQ(batch.size(), ref_batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
          EXPECT_EQ(batch[i].final_output.v, ref_batch[i].final_output.v)
              << "clusters=" << clusters << " mode="
              << k::exec_mode_name(mode) << " enabled=" << enabled
              << " sample=" << i;
        }
        if (!enabled) break;  // mode is ignored when the pipeline is off
      }
    }
  }
}

TEST(StagePipeline, TimelineConservesServiceStallAndIdleExactly) {
  // Pure recurrence on synthetic matrices: 3 stages, 6 samples, a slow
  // middle stage and boundary payloads that overflow a tiny FIFO.
  const std::vector<std::vector<double>> services = {
      {100, 100, 100, 100, 100, 100},
      {300, 320, 280, 300, 310, 290},
      {120, 110, 130, 120, 110, 120},
  };
  const std::vector<std::vector<double>> spikes = {
      {60, 60, 60, 60, 60, 60},
      {40, 40, 40, 40, 40, 40},
      {0, 0, 0, 0, 0, 0},
  };

  double prev_makespan = 0.0, prev_stall = 0.0;
  bool saw_stall = false;
  for (int depth : {16, 64, 100, 4096}) {
    const rt::StageTimeline tl =
        rt::simulate_stage_timeline(services, spikes, depth);
    ASSERT_EQ(tl.stages.size(), services.size());
    double svc_expect = 0;
    for (std::size_t s = 0; s < services.size(); ++s) {
      const auto& tr = tl.stages[s];
      // Conservation: the busy window splits exactly into the three bins.
      EXPECT_NEAR(tr.window_cycles(),
                  tr.service_cycles + tr.stall_cycles + tr.idle_cycles,
                  1e-9)
          << "depth=" << depth << " stage=" << s;
      double svc = 0;
      for (double v : services[s]) svc += v;
      EXPECT_DOUBLE_EQ(tr.service_cycles, svc);
      svc_expect += svc;
      EXPECT_LE(tr.last_finish, tl.makespan_cycles + 1e-9);
      EXPECT_GE(tr.stall_cycles, 0.0);
      EXPECT_GE(tr.idle_cycles, 0.0);
      EXPECT_LE(tr.peak_fifo_spikes,
                std::max<double>(depth, spikes[s].empty() ? 0 : spikes[s][0]));
    }
    (void)svc_expect;
    // Fill is sample 0 straight through; steady state is bounded below by
    // the slowest stage's mean service.
    EXPECT_DOUBLE_EQ(tl.fill_cycles, 100.0 + 300.0 + 120.0);
    EXPECT_GE(tl.steady_cycles_per_sample, 280.0 - 1e-9);
    if (tl.total_stall_cycles > 0) saw_stall = true;
    if (prev_makespan > 0) {
      // A deeper FIFO never increases stalls or makespan.
      EXPECT_LE(tl.makespan_cycles, prev_makespan + 1e-9);
      EXPECT_LE(tl.total_stall_cycles, prev_stall + 1e-9);
    }
    prev_makespan = tl.makespan_cycles;
    prev_stall = tl.total_stall_cycles;
  }
  // The tiny FIFO (16 < 60-spike samples -> wait-for-empty) must actually
  // backpressure the fast producer behind the slow middle stage.
  EXPECT_TRUE(saw_stall);
  // At the deepest setting the FIFO is effectively unbounded: zero stalls.
  EXPECT_DOUBLE_EQ(prev_stall, 0.0);
}

TEST(StagePipeline, EngineTimelineBeatsDataParallelOnTheTower) {
  const snn::Network net = tower_net();
  k::RunOptions opt;
  const auto imgs = tower_inputs(8);

  // Data-parallel reference at the same cluster count.
  const rt::InferenceEngine dp_eng(
      net, opt, pipeline_cfg(8, k::ExecMode::kDataParallel, false));
  const auto dp_batch = run_batch(dp_eng, imgs);
  double dp_total = 0;
  for (const auto& r : dp_batch) dp_total += r.total_cycles;
  const double dp_per_sample = dp_total / static_cast<double>(imgs.size());

  // Planner-chosen stage mode.
  const rt::InferenceEngine eng(net, opt,
                                pipeline_cfg(8, k::ExecMode::kAuto, true));
  const auto batch = run_batch(eng, imgs);
  const auto* be = dynamic_cast<const rt::ShardedBackend*>(&eng.backend());
  ASSERT_NE(be, nullptr);
  ASSERT_TRUE(be->stage_parallel_active());
  const k::StagePlan& sp = be->stage_plan();

  const rt::StageTimeline tl = rt::simulate_stage_pipeline(
      sp, net, batch, be->pipeline_config());
  ASSERT_EQ(tl.stages.size(), sp.stages.size());
  for (std::size_t s = 0; s < tl.stages.size(); ++s) {
    const auto& tr = tl.stages[s];
    EXPECT_NEAR(tr.window_cycles(),
                tr.service_cycles + tr.stall_cycles + tr.idle_cycles,
                1e-6 * tr.window_cycles() + 1e-6)
        << "stage " << s;
    // The stage's aggregated stats carry the window and the itemized stall.
    EXPECT_DOUBLE_EQ(tr.stats.cycles, tr.window_cycles());
    EXPECT_DOUBLE_EQ(tr.stats.fifo_stall_cycles, tr.stall_cycles);
    if (s + 1 < tl.stages.size()) {
      EXPECT_GT(tr.handoff_bytes, 0.0) << "stage " << s;
    }
  }
  EXPECT_GE(tl.makespan_cycles, tl.fill_cycles - 1e-9);
  EXPECT_GT(tl.steady_cycles_per_sample, 0.0);

  // The acceptance bar: the planner-chosen pipeline beats pure
  // data-parallel per steady-state sample AND per amortized batch sample.
  EXPECT_LT(tl.steady_cycles_per_sample, dp_per_sample);
  EXPECT_LT(tl.cycles_per_sample(imgs.size()), dp_per_sample);

  // Deeper FIFOs never hurt the measured timeline.
  const rt::StageTimeline shallow = rt::simulate_stage_pipeline(
      sp, net, batch, [] {
        k::PipelineConfig c;
        c.fifo_depth_spikes = 1;
        return c;
      }());
  EXPECT_GE(shallow.makespan_cycles, tl.makespan_cycles - 1e-9);
  EXPECT_GE(shallow.total_stall_cycles, tl.total_stall_cycles - 1e-9);
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

TEST(WorkerPoolTest, RunsEveryTaskExactlyOnceWithBoundedSlots) {
  rt::WorkerPool pool(3);
  constexpr std::size_t kTasks = 200;
  std::vector<std::atomic<int>> ran(kTasks);
  std::atomic<int> max_slot{0};
  pool.parallel_for(kTasks, 2, [&](std::size_t slot, std::size_t i) {
    ran[i].fetch_add(1);
    int seen = max_slot.load();
    while (slot > static_cast<std::size_t>(seen) &&
           !max_slot.compare_exchange_weak(seen, static_cast<int>(slot))) {
    }
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(ran[i].load(), 1) << "task " << i;
  }
  EXPECT_LT(max_slot.load(), 2);
}

TEST(WorkerPoolTest, NestedParallelForMakesProgress) {
  rt::WorkerPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, 4, [&](std::size_t, std::size_t) {
    pool.parallel_for(8, 8, [&](std::size_t, std::size_t) {
      total.fetch_add(1);
    });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(WorkerPoolTest, PropagatesTaskExceptions) {
  rt::WorkerPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(16, 4,
                        [&](std::size_t, std::size_t i) {
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(WorkerPoolTest, ClampsToHardwareConcurrency) {
  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  EXPECT_EQ(rt::WorkerPool::clamp_to_hardware(0), 1);
  EXPECT_EQ(rt::WorkerPool::clamp_to_hardware(1 << 20), hw);
  rt::WorkerPool pool(1 << 20);
  EXPECT_LE(pool.threads(), std::max(0, hw - 1));
}

// ---------------------------------------------------------------------------
// Plans are engine-construction state
// ---------------------------------------------------------------------------

TEST(PartitionPlans, PreparedAtEngineConstructionAndLanesPresized) {
  const snn::Network net = test_net();
  k::RunOptions opt;
  const rt::InferenceEngine engine(
      net, opt, sharded_cfg(k::PartitionStrategy::kHybrid, 8));
  const auto* be = dynamic_cast<const rt::ShardedBackend*>(&engine.backend());
  ASSERT_NE(be, nullptr);
  snn::NetworkState state = engine.make_state();
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const k::LayerPlan& plan = be->plan_for(net.layer(l));
    ASSERT_GE(plan.n(), 1u);
    if (plan.n() > 1) {
      EXPECT_GE(state.scratch(l).lanes.size(), plan.n()) << "layer " << l;
    }
  }
  // The 10-class head must engage every cluster under the hybrid plan.
  const k::LayerPlan& head = be->plan_for(net.layer(net.num_layers() - 1));
  EXPECT_EQ(head.axis, k::ShardAxis::kFanIn);
  EXPECT_EQ(head.n(), 8u);
}

// ---------------------------------------------------------------------------
// Segment-major batched FC execution
// ---------------------------------------------------------------------------

TEST(SegmentMajor, BitExactSpikesAndCyclesAcrossBatchAndBackends) {
  // The lockstep batch executors (BatchRunner waves, PipelinedBatchRunner
  // waves, the backend's run_fc_batch hook) must produce spikes AND modeled
  // stats bit-identical to the serial per-sample path with the same options,
  // for every batch size, backend and cluster count — the segment-major
  // accounting is per-sample deterministic by construction.
  const snn::Network net = test_net();
  k::RunOptions opt;
  for (const std::size_t B : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const auto images = snn::make_batch(B, 99, 16, 16, 3);
    opt.segment_major_lanes = static_cast<int>(B);
    struct Case {
      const char* label;
      rt::BackendConfig cfg;
    };
    std::vector<Case> cases = {{"analytical", {}}};
    {
      rt::BackendConfig c;
      c.kind = rt::BackendKind::kCycleAccurate;
      cases.push_back({"cycle-accurate", c});
    }
    for (int clusters : {1, 4, 8}) {
      cases.push_back(
          {"sharded", sharded_cfg(k::PartitionStrategy::kHybrid, clusters)});
    }
    for (const Case& c : cases) {
      const rt::InferenceEngine engine(net, opt, c.cfg);
      // Serial per-sample reference (same engine, same options).
      std::vector<rt::InferenceResult> serial(B);
      for (std::size_t i = 0; i < B; ++i) {
        snn::NetworkState st = engine.make_state();
        engine.run(images[i], st, serial[i]);
      }
      const rt::BatchRunner batch(net, opt, c.cfg, {}, /*workers=*/2);
      const rt::PipelinedBatchRunner pipe(net, opt, c.cfg, {},
                                          /*depth=*/static_cast<int>(B));
      const auto rb = batch.run_single_step(images);
      const auto rp = pipe.run_single_step(images);
      for (std::size_t i = 0; i < B; ++i) {
        EXPECT_EQ(serial[i].final_output.v, rb[i].final_output.v)
            << c.label << " B=" << B << " sample " << i;
        EXPECT_EQ(serial[i].final_output.v, rp[i].final_output.v)
            << c.label << " B=" << B << " sample " << i;
        EXPECT_DOUBLE_EQ(serial[i].total_cycles, rb[i].total_cycles)
            << c.label << " B=" << B << " sample " << i;
        EXPECT_DOUBLE_EQ(serial[i].total_cycles, rp[i].total_cycles)
            << c.label << " B=" << B << " sample " << i;
        for (std::size_t l = 0; l < serial[i].layers.size(); ++l) {
          EXPECT_DOUBLE_EQ(serial[i].layers[l].stats.dma_bytes,
                           rb[i].layers[l].stats.dma_bytes)
              << c.label << " B=" << B << " layer " << l;
          EXPECT_DOUBLE_EQ(serial[i].layers[l].stats.dma_saved_bytes,
                           rb[i].layers[l].stats.dma_saved_bytes)
              << c.label << " B=" << B << " layer " << l;
        }
      }
    }
  }
}

TEST(SegmentMajor, MultiTimestepLockstepMatchesSerial) {
  const snn::Network net = test_net();
  const auto images = snn::make_batch(5, 31, 16, 16, 3);
  k::RunOptions opt;
  opt.segment_major_lanes = 3;  // waves smaller than the batch
  const rt::BatchRunner batch(net, opt, {}, {}, /*workers=*/2);
  const rt::PipelinedBatchRunner pipe(net, opt, {}, {}, /*depth=*/3);
  const auto rb = batch.run(images, /*timesteps=*/3);
  const auto rp = pipe.run(images, /*timesteps=*/3);
  const rt::InferenceEngine engine(net, opt);
  for (std::size_t i = 0; i < images.size(); ++i) {
    snn::NetworkState st = engine.make_state();
    const auto serial = rt::run_timesteps(engine, st, images[i], 3);
    EXPECT_EQ(serial.spike_counts, rb[i].spike_counts) << i;
    EXPECT_EQ(serial.spike_counts, rp[i].spike_counts) << i;
    EXPECT_DOUBLE_EQ(serial.total_cycles, rb[i].total_cycles) << i;
    EXPECT_DOUBLE_EQ(serial.total_cycles, rp[i].total_cycles) << i;
  }
}

TEST(SegmentMajor, ReducesFcDmaAndItemizesSaving) {
  // The tiny net's FC layer (8192 -> 10) is fan-in segmented, so the
  // segment-major schedule applies: per-sample FC DMA must drop and the
  // delta must land in dma_saved_bytes (spill itemized separately, inside
  // dma_bytes).
  const snn::Network net = test_net();
  const auto images = snn::make_batch(4, 7, 16, 16, 3);
  k::RunOptions off;
  k::RunOptions on = off;
  on.segment_major_lanes = 4;
  const rt::BatchRunner r_off(net, off, {}, {}, /*workers=*/1);
  const rt::BatchRunner r_on(net, on, {}, {}, /*workers=*/1);
  const auto a = r_off.run_single_step(images);
  const auto b = r_on.run_single_step(images);
  const std::size_t fc = net.num_layers() - 1;
  for (std::size_t i = 0; i < images.size(); ++i) {
    const auto& so = a[i].layers[fc].stats;
    const auto& sn = b[i].layers[fc].stats;
    EXPECT_LT(sn.dma_bytes, so.dma_bytes) << i;
    EXPECT_GT(sn.dma_saved_bytes, 0.0) << i;
    EXPECT_NEAR(sn.dma_bytes + sn.dma_saved_bytes, so.dma_bytes, 1e-6) << i;
    EXPECT_GE(sn.dma_bytes_spill, 0.0) << i;
    EXPECT_LE(sn.dma_bytes_spill, sn.dma_bytes) << i;
    // Spikes untouched by the accounting change.
    EXPECT_EQ(a[i].final_output.v, b[i].final_output.v) << i;
  }
}

// ---------------------------------------------------------------------------
// Occupancy-adaptive re-planning
// ---------------------------------------------------------------------------

namespace {

/// Drive `runs` executions of `spec` through a sharded backend at a given
/// input density (deterministic evenly-spaced spikes).
void drive_fc(const rt::ShardedBackend& be, const snn::LayerSpec& spec,
              const snn::LayerWeights& w, double density, int runs) {
  snn::SpikeMap in(1, 1, spec.in_c);
  const int stride =
      std::max(1, static_cast<int>(1.0 / std::max(density, 1e-6)));
  for (int c = 0; c < spec.in_c; c += stride) in.at(0, 0, c) = 1;
  for (int r = 0; r < runs; ++r) {
    spikestream::compress::CsrIfmap csr;
    spikestream::compress::CsrIfmap::encode_into(in, csr);
    snn::Tensor mem(1, 1, spec.out_c);
    k::LayerScratch scratch;
    be.run_fc(spec, w, csr, mem, scratch);
  }
}

}  // namespace

TEST(AdaptiveReplan, FlipsExactlyOnceAfterWarmupAndNeverOscillates) {
  // fc8-shaped head at 8 clusters: the cold-density initial plan picks
  // output-channel tiles; once the measured EMA is seeded with the
  // steady-state density, the re-planner must flip to fan-in exactly once
  // and then hold the axis over many more runs at stable density.
  k::RunOptions opt;
  const auto spec = fc_spec(1024, 10);
  snn::LayerWeights w;
  w.k = 1;
  w.in_c = spec.in_c;
  w.out_c = spec.out_c;
  w.v.assign(static_cast<std::size_t>(spec.in_c) * spec.out_c, 0.01f);
  k::ReplanConfig replan;
  replan.enabled = true;
  const rt::ShardedBackend be(opt, 8, /*use_threads=*/false,
                              k::PartitionStrategy::kHybrid, {}, nullptr,
                              32 * 1024, replan);
  // Cold-start plan: near-empty density prefers output-channel.
  EXPECT_EQ(be.active_axis(spec), k::ShardAxis::kOutputChannel);
  EXPECT_EQ(be.replan_flips(spec), 0);

  drive_fc(be, spec, w, 0.15, replan.warmup_runs);  // seed the EMA
  EXPECT_EQ(be.replan_flips(spec), 1);
  EXPECT_EQ(be.active_axis(spec), k::ShardAxis::kFanIn);

  drive_fc(be, spec, w, 0.15, 30);  // stable density: no oscillation
  EXPECT_EQ(be.replan_flips(spec), 1);
  EXPECT_EQ(be.active_axis(spec), k::ShardAxis::kFanIn);
}

TEST(AdaptiveReplan, HysteresisHoldsAxisThroughDensityJitter) {
  k::RunOptions opt;
  const auto spec = fc_spec(1024, 10);
  snn::LayerWeights w;
  w.k = 1;
  w.in_c = spec.in_c;
  w.out_c = spec.out_c;
  w.v.assign(static_cast<std::size_t>(spec.in_c) * spec.out_c, 0.01f);
  k::ReplanConfig replan;
  replan.enabled = true;
  const rt::ShardedBackend be(opt, 8, /*use_threads=*/false,
                              k::PartitionStrategy::kHybrid, {}, nullptr,
                              32 * 1024, replan);
  // Jitter around a steady level: the EMA smooths it and the hysteresis
  // margin absorbs what remains — at most the one warmup flip may happen.
  for (int r = 0; r < 20; ++r) {
    drive_fc(be, spec, w, 0.12 + 0.06 * (r % 2), 1);
  }
  EXPECT_LE(be.replan_flips(spec), 1);
  const auto axis_after = be.active_axis(spec);
  for (int r = 0; r < 20; ++r) {
    drive_fc(be, spec, w, 0.12 + 0.06 * (r % 2), 1);
  }
  EXPECT_EQ(be.active_axis(spec), axis_after);
}

TEST(AdaptiveReplan, DisabledBackendNeverReplans) {
  k::RunOptions opt;
  const auto spec = fc_spec(1024, 10);
  snn::LayerWeights w;
  w.k = 1;
  w.in_c = spec.in_c;
  w.out_c = spec.out_c;
  w.v.assign(static_cast<std::size_t>(spec.in_c) * spec.out_c, 0.01f);
  const rt::ShardedBackend be(opt, 8, /*use_threads=*/false,
                              k::PartitionStrategy::kHybrid);
  const auto axis0 = be.active_axis(spec);
  drive_fc(be, spec, w, 0.15, 10);
  EXPECT_EQ(be.replan_flips(spec), 0);
  EXPECT_EQ(be.active_axis(spec), axis0);
  EXPECT_DOUBLE_EQ(be.occupancy_ema(spec), -1.0);
}

TEST(AdaptiveReplan, AdaptiveBeatsStaticHybridOnColdStart) {
  // End-to-end: over a run that starts on empty membranes, the adaptive
  // engine's fc layer must cost no more modeled cycles than the static
  // hybrid plan, and strictly less on the first (near-empty) timestep when
  // a flip happened.
  const snn::Network net = test_net();
  const auto img = snn::make_batch(1, 6, 16, 16, 3)[0];
  k::RunOptions opt;
  rt::BackendConfig stat = sharded_cfg(k::PartitionStrategy::kHybrid, 8);
  rt::BackendConfig adap = stat;
  adap.replan.enabled = true;
  const rt::InferenceEngine es(net, opt, stat);
  const rt::InferenceEngine ea(net, opt, adap);
  snn::NetworkState ss = es.make_state(), sa = ea.make_state();
  rt::InferenceResult rs, ra;
  const std::size_t fc = net.num_layers() - 1;
  double fc_static = 0, fc_adaptive = 0;
  for (int t = 0; t < 5; ++t) {
    es.run(img, ss, rs);
    ea.run(img, sa, ra);
    // Spikes must be identical whatever the plan: partitioning only ever
    // changes timing attribution.
    ASSERT_EQ(rs.final_output.v, ra.final_output.v) << "t=" << t;
    fc_static += rs.layers[fc].stats.cycles;
    fc_adaptive += ra.layers[fc].stats.cycles;
  }
  EXPECT_LE(fc_adaptive, fc_static + 1e-9);
  const auto* be = dynamic_cast<const rt::ShardedBackend*>(&ea.backend());
  ASSERT_NE(be, nullptr);
  EXPECT_LE(be->replan_flips(net.layer(fc)), 1);
}
