// Host-SIMD dispatch layer (common/simd.hpp): every tier the running CPU
// supports must produce byte-identical results to the scalar tier for all
// three kernels — the CSR nonzero scan, the LIF step and the per-group spike
// accumulate — across lengths that exercise both the vector bodies and the
// scalar tails.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "compress/csr_ifmap.hpp"
#include "snn/lif.hpp"
#include "snn/tensor.hpp"

namespace {

namespace simd = spikestream::common::simd;
namespace snn = spikestream::snn;
namespace sc = spikestream::common;
namespace compress = spikestream::compress;

std::vector<simd::Tier> supported_tiers() {
  std::vector<simd::Tier> tiers{simd::Tier::kScalar};
  if (simd::max_supported() >= simd::Tier::kAvx2) {
    tiers.push_back(simd::Tier::kAvx2);
  }
  if (simd::max_supported() >= simd::Tier::kAvx512) {
    tiers.push_back(simd::Tier::kAvx512);
  }
  return tiers;
}

/// RAII guard: restore free dispatch after a forced-tier section.
struct TierGuard {
  ~TierGuard() { simd::force_tier(simd::max_supported()); }
};

}  // namespace

TEST(Simd, ActiveTierIsSupported) {
  EXPECT_LE(static_cast<int>(simd::active()),
            static_cast<int>(simd::max_supported()));
  // Forcing an unsupported tier clamps instead of crashing later.
  TierGuard guard;
  EXPECT_LE(static_cast<int>(simd::force_tier(simd::Tier::kAvx512)),
            static_cast<int>(simd::max_supported()));
}

TEST(Simd, NonzeroScanMatchesScalarAcrossTiers) {
  TierGuard guard;
  sc::Rng rng(11);
  for (const int n : {1, 7, 8, 31, 32, 33, 63, 64, 65, 129, 300, 512}) {
    for (const double density : {0.0, 0.02, 0.3, 1.0}) {
      std::vector<std::uint8_t> row(static_cast<std::size_t>(n));
      for (auto& b : row) b = rng.bernoulli(density);
      simd::force_tier(simd::Tier::kScalar);
      std::vector<std::uint16_t> expect;
      simd::append_nonzero_u8(row.data(), n, 3, expect);
      for (const simd::Tier tier : supported_tiers()) {
        simd::force_tier(tier);
        std::vector<std::uint16_t> got;
        simd::append_nonzero_u8(row.data(), n, 3, got);
        EXPECT_EQ(expect, got)
            << simd::tier_name(tier) << " n=" << n << " d=" << density;
      }
    }
  }
}

TEST(Simd, NonzeroScanTreatsAnyNonzeroByteAsSpike) {
  TierGuard guard;
  std::vector<std::uint8_t> row(70, 0);
  row[0] = 255;
  row[33] = 2;
  row[69] = 7;
  for (const simd::Tier tier : supported_tiers()) {
    simd::force_tier(tier);
    std::vector<std::uint16_t> got;
    simd::append_nonzero_u8(row.data(), static_cast<int>(row.size()), 0, got);
    EXPECT_EQ((std::vector<std::uint16_t>{0, 33, 69}), got)
        << simd::tier_name(tier);
  }
}

TEST(Simd, LifStepBitIdenticalAcrossTiers) {
  TierGuard guard;
  sc::Rng rng(22);
  for (const std::size_t n : {1ul, 5ul, 8ul, 15ul, 16ul, 17ul, 100ul, 1000ul}) {
    std::vector<float> cur(n), mem0(n);
    for (auto& x : cur) x = static_cast<float>(rng.uniform() * 4.0 - 1.0);
    for (auto& x : mem0) x = static_cast<float>(rng.uniform() * 2.0 - 0.5);

    simd::force_tier(simd::Tier::kScalar);
    std::vector<float> mem_ref = mem0;
    std::vector<std::uint8_t> spk_ref(n);
    const std::size_t fired_ref = simd::lif_step(
        cur.data(), mem_ref.data(), spk_ref.data(), n, 0.9f, 1.0f, 1.0f, 1.0f);

    for (const simd::Tier tier : supported_tiers()) {
      simd::force_tier(tier);
      std::vector<float> mem = mem0;
      std::vector<std::uint8_t> spk(n);
      const std::size_t fired = simd::lif_step(cur.data(), mem.data(),
                                               spk.data(), n, 0.9f, 1.0f,
                                               1.0f, 1.0f);
      EXPECT_EQ(fired_ref, fired) << simd::tier_name(tier) << " n=" << n;
      EXPECT_EQ(spk_ref, spk) << simd::tier_name(tier) << " n=" << n;
      // Bitwise comparison: tiers must agree on every membrane bit.
      EXPECT_EQ(0, std::memcmp(mem_ref.data(), mem.data(), n * sizeof(float)))
          << simd::tier_name(tier) << " n=" << n;
    }
  }
}

TEST(Simd, GroupCountsMatchScalarAcrossTiers) {
  TierGuard guard;
  sc::Rng rng(33);
  for (const int group : {1, 2, 3, 4, 5, 8, 16, 24, 64}) {
    for (const int c : {1, 4, 31, 32, 64, 100, 257}) {
      const int groups = (c + group - 1) / group;
      std::vector<std::uint8_t> row(static_cast<std::size_t>(c));
      for (auto& b : row) b = rng.bernoulli(0.4);
      // A couple of out-of-contract values: sums must still agree.
      if (c > 2) row[static_cast<std::size_t>(c) / 2] = 3;

      simd::force_tier(simd::Tier::kScalar);
      std::vector<double> expect(static_cast<std::size_t>(groups));
      simd::group_spike_counts(row.data(), c, group, groups, expect.data());
      for (const simd::Tier tier : supported_tiers()) {
        simd::force_tier(tier);
        std::vector<double> got(static_cast<std::size_t>(groups), -1.0);
        simd::group_spike_counts(row.data(), c, group, groups, got.data());
        EXPECT_EQ(expect, got)
            << simd::tier_name(tier) << " group=" << group << " c=" << c;
      }
    }
  }
}

TEST(Simd, CsrEncodeRoundTripsUnderEveryTier) {
  TierGuard guard;
  sc::Rng rng(44);
  snn::SpikeMap dense(9, 11, 77);
  for (auto& b : dense.v) b = rng.bernoulli(0.25);
  simd::force_tier(simd::Tier::kScalar);
  const compress::CsrIfmap ref = compress::CsrIfmap::encode(dense);
  for (const simd::Tier tier : supported_tiers()) {
    simd::force_tier(tier);
    const compress::CsrIfmap got = compress::CsrIfmap::encode(dense);
    EXPECT_EQ(ref.c_idcs(), got.c_idcs()) << simd::tier_name(tier);
    EXPECT_EQ(ref.s_ptr(), got.s_ptr()) << simd::tier_name(tier);
    EXPECT_EQ(got.decode().v, dense.v) << simd::tier_name(tier);
  }
}

TEST(Simd, LifStepIntoUsesDispatchedKernel) {
  // The snn-level wrapper and the raw kernel agree (shape plumbing only).
  TierGuard guard;
  sc::Rng rng(55);
  snn::Tensor cur(3, 5, 17), mem(3, 5, 17);
  for (auto& x : cur.v) x = static_cast<float>(rng.uniform() * 3.0);
  snn::Tensor mem2 = mem;
  snn::LifParams p;
  snn::SpikeMap out;
  const std::size_t fired = snn::lif_step_into(p, cur, mem, out);
  std::vector<std::uint8_t> spk(cur.v.size());
  const std::size_t fired2 =
      simd::lif_step(cur.v.data(), mem2.v.data(), spk.data(), cur.v.size(),
                     p.alpha, p.r, p.v_th, p.v_rst);
  EXPECT_EQ(fired, fired2);
  EXPECT_EQ(out.v, spk);
  EXPECT_EQ(mem.v, mem2.v);
}
