// Assembler and disassembler: label resolution, error handling, and a
// disasm round-trip over every opcode (traces and test diagnostics rely on
// the strings being stable and non-empty).
#include <gtest/gtest.h>

#include "arch/program.hpp"
#include "common/check.hpp"

namespace arch = spikestream::arch;

TEST(Asm, ForwardAndBackwardLabels) {
  arch::Asm a;
  a.li(5, 0);
  a.label("back");
  a.addi(5, 5, 1);
  a.beq(5, 6, "fwd");   // forward reference
  a.bne(5, 7, "back");  // backward reference
  a.label("fwd");
  a.halt();
  const arch::Program p = a.finish();
  ASSERT_EQ(p.size(), 5u);
  EXPECT_EQ(p.code[2].imm, 4);  // "fwd" is instruction index 4
  EXPECT_EQ(p.code[3].imm, 1);  // "back" is instruction index 1
}

TEST(Asm, DuplicateLabelThrows) {
  arch::Asm a;
  a.label("x");
  a.nop();
  EXPECT_THROW(a.label("x"), spikestream::Error);
}

TEST(Asm, UndefinedLabelThrowsAtFinish) {
  arch::Asm a;
  a.j("nowhere");
  EXPECT_THROW(a.finish(), spikestream::Error);
}

TEST(Asm, FinishResetsBuilder) {
  arch::Asm a;
  a.nop();
  a.label("l");
  a.j("l");
  const arch::Program p1 = a.finish();
  EXPECT_EQ(p1.size(), 2u);
  // Builder reusable: same label name legal again.
  a.label("l");
  a.halt();
  const arch::Program p2 = a.finish();
  EXPECT_EQ(p2.size(), 1u);
}

TEST(Disasm, EveryOpcodeRendersNonEmpty) {
  arch::Asm a;
  a.nop();
  a.add(1, 2, 3); a.sub(1, 2, 3); a.and_(1, 2, 3); a.or_(1, 2, 3);
  a.xor_(1, 2, 3); a.sll(1, 2, 3); a.srl(1, 2, 3); a.mul(1, 2, 3);
  a.divu(1, 2, 3); a.remu(1, 2, 3);
  a.addi(1, 2, 5); a.slli(1, 2, 3); a.srli(1, 2, 3); a.andi(1, 2, 0xF);
  a.ori(1, 2, 1); a.li(1, 42);
  a.lw(1, 2, 0); a.lh(1, 2, 0); a.lhu(1, 2, 0); a.lbu(1, 2, 0);
  a.sw(1, 2, 0); a.sh(1, 2, 0); a.sb(1, 2, 0);
  a.amoadd(1, 2, 3);
  a.label("t");
  a.bne(1, 2, "t"); a.beq(1, 2, "t"); a.blt(1, 2, "t"); a.bge(1, 2, "t");
  a.j("t");
  a.csr_core_id(1); a.csr_num_cores(1); a.csr_cycle(1);
  a.barrier(); a.fpu_fence();
  a.fld(3, 2, 0); a.fsd(3, 2, 0);
  a.fadd(3, 4, 5); a.fsub(3, 4, 5); a.fmul(3, 4, 5); a.fmadd(3, 4, 5);
  a.fmv_fx(3, 2); a.fmv_xf(2, 3); a.fcvt_d_w(3, 2);
  a.frep(5, 1);
  a.ssr_bound(0, 1, 5); a.ssr_stride(0, 1, 5); a.ssr_base(0, 5);
  a.ssr_idx(0, 5, 1); a.ssr_len(0, 5);
  a.ssr_commit(0, arch::SsrMode::kIndirectRead);
  a.ssr_enable(); a.ssr_disable();
  a.dma_src(5); a.dma_dst(5); a.dma_str(5, 6); a.dma_reps(5);
  a.dma_start(1, 5); a.dma_wait();
  a.halt();
  const arch::Program p = a.finish();
  for (const auto& instr : p.code) {
    EXPECT_FALSE(arch::disasm(instr).empty());
  }
}

TEST(Disasm, KnownStrings) {
  arch::Asm a;
  a.addi(5, 6, -4);
  a.lw(7, 8, 12);
  a.fadd(3, 0, 3);
  a.frep(9, 1);
  const arch::Program p = a.finish();
  EXPECT_EQ(arch::disasm(p.code[0]), "addi x5, x6, -4");
  EXPECT_EQ(arch::disasm(p.code[1]), "lw x7, 12(x8)");
  EXPECT_EQ(arch::disasm(p.code[2]), "fadd.d f3, f0, f3");
  EXPECT_EQ(arch::disasm(p.code[3]), "frep body=1 reps=x9");
}

TEST(IsaPredicates, FpuOpsClassified) {
  EXPECT_TRUE(arch::is_fpu_op(arch::Op::kFadd));
  EXPECT_TRUE(arch::is_fpu_op(arch::Op::kFmadd));
  EXPECT_FALSE(arch::is_fpu_op(arch::Op::kFld));   // LSU, not FPU
  EXPECT_FALSE(arch::is_fpu_op(arch::Op::kAddi));
  EXPECT_FALSE(arch::is_fpu_op(arch::Op::kFrep));
}
