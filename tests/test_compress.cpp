#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "compress/aer.hpp"
#include "compress/csr_ifmap.hpp"

namespace cp = spikestream::compress;
namespace snn = spikestream::snn;

namespace {

snn::SpikeMap random_map(int h, int w, int c, double rate, std::uint64_t seed) {
  spikestream::common::Rng rng(seed);
  snn::SpikeMap s(h, w, c);
  for (auto& b : s.v) b = rng.bernoulli(rate) ? 1 : 0;
  return s;
}

}  // namespace

TEST(Csr, EncodeKnownPattern) {
  snn::SpikeMap s(2, 2, 4);
  s.at(0, 0, 1) = 1;
  s.at(0, 0, 3) = 1;
  s.at(1, 1, 0) = 1;
  const cp::CsrIfmap c = cp::CsrIfmap::encode(s);
  EXPECT_EQ(c.nnz(), 3u);
  ASSERT_EQ(c.s_ptr().size(), 5u);
  EXPECT_EQ(c.s_ptr()[0], 0u);
  EXPECT_EQ(c.s_ptr()[1], 2u);  // two spikes at (0,0)
  EXPECT_EQ(c.s_ptr()[2], 2u);  // none at (0,1)
  EXPECT_EQ(c.s_ptr()[3], 2u);
  EXPECT_EQ(c.s_ptr()[4], 3u);
  EXPECT_EQ(c.c_idcs()[0], 1);
  EXPECT_EQ(c.c_idcs()[1], 3);
  EXPECT_EQ(c.c_idcs()[2], 0);
  EXPECT_EQ(c.stream_len(0, 0), 2u);
  EXPECT_EQ(c.stream_len(1, 0), 0u);
  auto span = c.at(0, 0);
  ASSERT_EQ(span.size(), 2u);
  EXPECT_EQ(span[0], 1);
}

TEST(Csr, IndicesAreSortedWithinPosition) {
  const auto s = random_map(7, 9, 33, 0.4, 99);
  const cp::CsrIfmap c = cp::CsrIfmap::encode(s);
  for (int y = 0; y < s.h; ++y) {
    for (int x = 0; x < s.w; ++x) {
      auto sp = c.at(y, x);
      for (std::size_t i = 1; i < sp.size(); ++i) {
        EXPECT_LT(sp[i - 1], sp[i]);
      }
    }
  }
}

TEST(Csr, FootprintFormula) {
  const auto s = random_map(4, 4, 16, 0.25, 3);
  const cp::CsrIfmap c = cp::CsrIfmap::encode(s);
  EXPECT_EQ(c.footprint_bytes(2), c.nnz() * 2 + 16 * 2);
}

TEST(Csr, EmptyAndFullMaps) {
  snn::SpikeMap empty(3, 3, 8);
  const cp::CsrIfmap ce = cp::CsrIfmap::encode(empty);
  EXPECT_EQ(ce.nnz(), 0u);
  EXPECT_DOUBLE_EQ(ce.density(), 0.0);

  snn::SpikeMap full(3, 3, 8);
  for (auto& b : full.v) b = 1;
  const cp::CsrIfmap cf = cp::CsrIfmap::encode(full);
  EXPECT_EQ(cf.nnz(), full.size());
  EXPECT_DOUBLE_EQ(cf.density(), 1.0);
  EXPECT_EQ(cf.stream_len(2, 2), 8u);
}

// Property: encode/decode round-trips over a sweep of densities.
class CsrRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(CsrRoundTrip, DecodeInvertsEncode) {
  const double rate = GetParam();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto s = random_map(11, 13, 37, rate, seed);
    const snn::SpikeMap back = cp::CsrIfmap::encode(s).decode();
    ASSERT_TRUE(back.same_shape(s));
    EXPECT_EQ(back.v, s.v) << "rate=" << rate << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, CsrRoundTrip,
                         ::testing::Values(0.0, 0.01, 0.1, 0.3, 0.5, 0.9, 1.0));

TEST(Aer, EncodeDecodeRoundTrip) {
  const auto s = random_map(9, 5, 21, 0.2, 11);
  const cp::AerEvents ev = cp::AerEvents::encode(s, 7);
  EXPECT_EQ(ev.count(), snn::spike_count(s));
  const snn::SpikeMap back = ev.decode(9, 5, 21, 7);
  EXPECT_EQ(back.v, s.v);
  // Wrong timestep decodes to empty.
  EXPECT_EQ(snn::spike_count(ev.decode(9, 5, 21, 8)), 0u);
}

TEST(Aer, FootprintPerSpike) {
  const auto s = random_map(6, 6, 10, 0.3, 4);
  const cp::AerEvents ev = cp::AerEvents::encode(s);
  EXPECT_EQ(ev.footprint_bytes(true), ev.count() * 8);
  EXPECT_EQ(ev.footprint_bytes(false), ev.count() * 4);
}

// Property: the paper's core claim about the formats — CSR beats AER on conv
// ifmaps whenever the average spikes-per-position exceeds the pointer
// overhead ratio; at S-VGG11-like densities the gain is >2x.
class FootprintRatio : public ::testing::TestWithParam<double> {};

TEST_P(FootprintRatio, CsrSmallerAtRealisticDensity) {
  const double rate = GetParam();
  const auto s = random_map(18, 18, 128, rate, 21);
  const auto csr = cp::CsrIfmap::encode(s).footprint_bytes();
  const auto aer = cp::AerEvents::encode(s).footprint_bytes(true);
  if (rate >= 0.05) {
    EXPECT_GT(static_cast<double>(aer), 2.0 * static_cast<double>(csr))
        << "rate=" << rate;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, FootprintRatio,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.5));
