// LIF dynamics, network construction, and the dense golden reference.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "snn/input_gen.hpp"
#include "snn/lif.hpp"
#include "snn/network.hpp"
#include "snn/reference.hpp"

namespace snn = spikestream::snn;
namespace sc = spikestream::common;

TEST(Lif, FiresAboveThresholdAndSoftResets) {
  snn::LifParams p;
  p.v_th = 1.0f;
  p.v_rst = 1.0f;
  p.alpha = 0.5f;
  snn::Tensor i(1, 1, 3);
  i.v = {1.5f, 0.4f, 0.0f};
  snn::Tensor v(1, 1, 3);
  const snn::SpikeMap out = snn::lif_step(p, i, v);
  EXPECT_EQ(out.v[0], 1);
  EXPECT_EQ(out.v[1], 0);
  EXPECT_EQ(out.v[2], 0);
  EXPECT_FLOAT_EQ(v.v[0], 0.5f);  // 1.5 - v_rst
  EXPECT_FLOAT_EQ(v.v[1], 0.4f);
}

TEST(Lif, LeakAccumulatesOverTimesteps) {
  snn::LifParams p;
  p.v_th = 1.0f;
  p.v_rst = 1.0f;
  p.alpha = 0.8f;
  snn::Tensor i(1, 1, 1);
  i.v = {0.5f};
  snn::Tensor v(1, 1, 1);
  // 0.5, 0.9, then 0.8*0.9+0.5 = 1.22 -> fire at t=2.
  EXPECT_EQ(snn::lif_step(p, i, v).v[0], 0);
  EXPECT_EQ(snn::lif_step(p, i, v).v[0], 0);
  EXPECT_EQ(snn::lif_step(p, i, v).v[0], 1);
  EXPECT_NEAR(v.v[0], 0.22f, 1e-5);
}

TEST(Lif, EquationMatchesPaperForm) {
  // v(t) = v(t-1)*alpha + r*i(t) - v_rst*s(t), checked symbolically.
  snn::LifParams p;
  p.v_th = 2.0f;
  p.v_rst = 2.0f;
  p.alpha = 0.9f;
  p.r = 1.0f;
  snn::Tensor i(1, 1, 1);
  snn::Tensor v(1, 1, 1);
  v.v[0] = 1.0f;
  i.v[0] = 1.5f;
  const auto s = snn::lif_step(p, i, v);
  // v = 1*0.9 + 1.5 = 2.4 >= 2 -> spike, v = 0.4
  EXPECT_EQ(s.v[0], 1);
  EXPECT_NEAR(v.v[0], 0.4f, 1e-6);
}

TEST(Network, Svgg11ShapesMatchFig3a) {
  const snn::Network net = snn::Network::make_svgg11();
  ASSERT_EQ(net.num_layers(), 8u);
  const int hs[] = {34, 34, 18, 18, 10, 10};
  const int cs[] = {3, 64, 128, 256, 256, 512};
  for (int l = 0; l < 6; ++l) {
    EXPECT_EQ(net.layer(static_cast<std::size_t>(l)).in_h, hs[l]) << l;
    EXPECT_EQ(net.layer(static_cast<std::size_t>(l)).in_c, cs[l]) << l;
  }
  EXPECT_EQ(net.layer(6).in_c, 8192);
  EXPECT_EQ(net.layer(6).out_c, 1024);
  EXPECT_EQ(net.layer(7).out_c, 10);
  // Geometry chains: each conv output (after pool/pad) matches the next
  // layer's ifmap.
  for (int l = 0; l < 5; ++l) {
    const auto& cur = net.layer(static_cast<std::size_t>(l));
    const auto& next = net.layer(static_cast<std::size_t>(l) + 1);
    int h = cur.out_h();
    if (cur.pool_after) h /= 2;
    EXPECT_EQ(h + 2 * cur.pad_next, next.in_h) << "layer " << l;
    EXPECT_EQ(cur.out_c, next.in_c) << "layer " << l;
  }
}

TEST(Network, WeightInitIsDeterministicAndScaled) {
  snn::Network a = snn::Network::make_tiny();
  snn::Network b = snn::Network::make_tiny();
  sc::Rng r1(5), r2(5);
  a.init_weights(r1);
  b.init_weights(r2);
  EXPECT_EQ(a.weights(0).v, b.weights(0).v);
  // He scaling: stddev ~ sqrt(2/fan_in).
  sc::RunningStats st;
  for (float w : a.weights(1).v) st.add(w);
  const double expect = std::sqrt(2.0 / static_cast<double>(a.layer(1).fan_in()));
  EXPECT_NEAR(st.stddev(), expect, 0.2 * expect);
  EXPECT_NEAR(st.mean(), 0.0, 0.05);
}

TEST(Network, QuantizeIsIdempotent) {
  snn::Network net = snn::Network::make_tiny();
  sc::Rng rng(9);
  net.init_weights(rng);
  net.quantize_weights(sc::FpFormat::FP8);
  const auto once = net.weights(1).v;
  net.quantize_weights(sc::FpFormat::FP8);
  EXPECT_EQ(once, net.weights(1).v);
}

TEST(Reference, ConvCurrentsManualExample) {
  // 3x3 ifmap, 1 channel, k=3, 1 filter of all ones: current = spike count.
  snn::LayerWeights w;
  w.k = 3;
  w.in_c = 1;
  w.out_c = 1;
  w.v.assign(9, 1.0f);
  snn::SpikeMap in(3, 3, 1);
  in.at(0, 0, 0) = 1;
  in.at(1, 1, 0) = 1;
  in.at(2, 2, 0) = 1;
  const snn::Tensor out = snn::Reference::conv_currents(in, w);
  EXPECT_EQ(out.h, 1);
  EXPECT_EQ(out.w, 1);
  EXPECT_FLOAT_EQ(out.v[0], 3.0f);
}

TEST(Reference, SparseConvEqualsDenseConvOnBinaryInput) {
  sc::Rng rng(21);
  snn::LayerWeights w;
  w.k = 3;
  w.in_c = 8;
  w.out_c = 6;
  w.v.resize(9 * 8 * 6);
  for (auto& x : w.v) x = static_cast<float>(rng.normal());
  snn::SpikeMap in(7, 7, 8);
  for (auto& b : in.v) b = rng.bernoulli(0.3) ? 1 : 0;
  snn::Tensor dense_in(7, 7, 8);
  for (std::size_t i = 0; i < in.v.size(); ++i) {
    dense_in.v[i] = static_cast<float>(in.v[i]);
  }
  const snn::Tensor a = snn::Reference::conv_currents(in, w);
  const snn::Tensor b = snn::Reference::conv_currents_dense(dense_in, w);
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.v.size(); ++i) {
    EXPECT_NEAR(a.v[i], b.v[i], 1e-4f) << i;
  }
}

TEST(Reference, FullTinyForwardProducesSaneRates) {
  snn::Network net = snn::Network::make_tiny(12, 4, 8, 5);
  sc::Rng rng(33);
  net.init_weights(rng);
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    net.layer(l).lif.v_th = 0.5f;
    net.layer(l).lif.v_rst = 0.5f;
  }
  snn::Reference ref(net);
  const snn::Tensor img = snn::make_image(rng, 10, 10, 4);
  const auto& io = ref.step(img);
  ASSERT_EQ(io.size(), 3u);
  for (const auto& layer : io) {
    const double rate = snn::firing_rate(layer.output);
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
  // Encode layer consumed the padded image.
  EXPECT_EQ(io[0].dense_input.h, 12);
}

TEST(Reference, MembranePersistsAcrossTimesteps) {
  snn::Network net = snn::Network::make_tiny(8, 2, 4, 3);
  sc::Rng rng(44);
  net.init_weights(rng);
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    net.layer(l).lif.v_th = 5.0f;  // high threshold: integrate, rarely fire
    net.layer(l).lif.v_rst = 5.0f;
  }
  snn::Reference ref(net);
  const snn::Tensor img = snn::make_image(rng, 6, 6, 2);
  ref.step(img);
  const float v1 = ref.membrane(0).v[0];
  ref.step(img);
  const float v2 = ref.membrane(0).v[0];
  EXPECT_NE(v1, 0.0f);
  // Same input, leaky accumulation: |v2| should exceed |v1| when positive.
  if (v1 > 0) {
    EXPECT_GT(v2, v1);
  }
  ref.reset();
  EXPECT_EQ(ref.membrane(0).v[0], 0.0f);
}

TEST(InputGen, ImagesInRangeAndDiverse) {
  auto batch = snn::make_batch(4, 123, 16, 16, 3);
  ASSERT_EQ(batch.size(), 4u);
  for (const auto& img : batch) {
    for (float v : img.v) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
  // Different images differ.
  EXPECT_NE(batch[0].v, batch[1].v);
  // Same seed reproduces.
  auto again = snn::make_batch(4, 123, 16, 16, 3);
  EXPECT_EQ(batch[0].v, again[0].v);
}
