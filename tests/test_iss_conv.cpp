// End-to-end validation of the SPMD workload-stealing conv program on the
// cycle-level cluster: functional equivalence with the golden reference and
// cycle agreement with the layer-level cost model.
#include <gtest/gtest.h>

#include "arch/cluster.hpp"
#include "common/rng.hpp"
#include "compress/csr_ifmap.hpp"
#include "kernels/cost_model.hpp"
#include "kernels/iss_conv.hpp"
#include "kernels/scheduler.hpp"
#include "kernels/layer_kernels.hpp"
#include "snn/reference.hpp"

namespace arch = spikestream::arch;
namespace k = spikestream::kernels;
namespace snn = spikestream::snn;
namespace sc = spikestream::common;

namespace {

struct ConvCase {
  snn::SpikeMap ifmap;
  snn::LayerWeights weights;
};

ConvCase make_case(int hw, int in_c, double rate, std::uint64_t seed) {
  sc::Rng rng(seed);
  ConvCase c;
  c.ifmap = snn::SpikeMap(hw, hw, in_c);
  for (int y = 1; y < hw - 1; ++y) {
    for (int x = 1; x < hw - 1; ++x) {
      for (int ch = 0; ch < in_c; ++ch) {
        c.ifmap.at(y, x, ch) = rng.bernoulli(rate) ? 1 : 0;
      }
    }
  }
  c.weights.k = 3;
  c.weights.in_c = in_c;
  c.weights.out_c = 1;
  c.weights.v.resize(9u * static_cast<std::size_t>(in_c));
  for (auto& w : c.weights.v) w = static_cast<float>(rng.normal(0.0, 0.25));
  return c;
}

}  // namespace

class IssConv : public ::testing::TestWithParam<int> {};

TEST_P(IssConv, MatchesGoldenReferenceOnAnyCoreCount) {
  const int cores = GetParam();
  const ConvCase c = make_case(10, 24, 0.25, 7);
  arch::Cluster cl{arch::ClusterConfig{}};
  const auto r = k::iss_conv_layer(cl, spikestream::compress::CsrIfmap::encode(c.ifmap),
                                   c.weights, cores);
  const snn::Tensor expect = snn::Reference::conv_currents(c.ifmap, c.weights);
  ASSERT_TRUE(r.currents.same_shape(expect));
  for (std::size_t i = 0; i < expect.v.size(); ++i) {
    EXPECT_NEAR(r.currents.v[i], expect.v[i], 1e-4) << "rf " << i;
  }
  EXPECT_EQ(r.rf_count, 64u);  // 8x8 output positions all claimed exactly once
}

INSTANTIATE_TEST_SUITE_P(Cores, IssConv, ::testing::Values(1, 2, 3, 8));

TEST(IssConv, MoreCoresRunFaster) {
  const ConvCase c = make_case(12, 32, 0.3, 9);
  const auto csr = spikestream::compress::CsrIfmap::encode(c.ifmap);
  arch::Cluster c1{arch::ClusterConfig{}}, c4{arch::ClusterConfig{}},
      c8{arch::ClusterConfig{}};
  const auto r1 = k::iss_conv_layer(c1, csr, c.weights, 1);
  const auto r4 = k::iss_conv_layer(c4, csr, c.weights, 4);
  const auto r8 = k::iss_conv_layer(c8, csr, c.weights, 8);
  EXPECT_GT(static_cast<double>(r1.cycles) / r4.cycles, 3.0);  // near-linear
  EXPECT_GT(static_cast<double>(r4.cycles) / r8.cycles, 1.5);
}

TEST(IssConv, CostModelTracksIssAcrossRatesAndCores) {
  // The layer-level model (same ifmap, one FP64 group, no activation) must
  // track the ISS program within 25% across sparsity levels and core counts.
  const k::CostParams p;
  for (double rate : {0.08, 0.2, 0.4}) {
    for (int cores : {2, 8}) {
      const ConvCase c = make_case(12, 32, rate, 31 + static_cast<int>(rate * 100));
      const auto csr = spikestream::compress::CsrIfmap::encode(c.ifmap);
      arch::Cluster cl{arch::ClusterConfig{}};
      const auto iss = k::iss_conv_layer(cl, csr, c.weights, cores);

      // Model mirroring the *unrolled* SPMD program: the 9 position blocks
      // are fully unrolled and there is a single channel group, so loop
      // control and s_ptr addressing amortize at RF level (25 cycles for the
      // steal ticket + divu/remu coordinates + base address), leaving ~13
      // integer cycles per non-empty SpVA (12 instructions + commit) and ~7
      // for an empty one (the `if s_len != 0` early-out). The rolled layer
      // kernel charges the full ss_setup instead because its group loop
      // re-executes the position bookkeeping (see cost_model.hpp).
      constexpr double kRfOverhead = 25.0;
      constexpr double kUnrolledSetup = 13.0;
      constexpr double kEmptyCheck = 7.0;
      std::vector<double> rf_costs;
      for (int oy = 0; oy < 10; ++oy) {
        for (int ox = 0; ox < 10; ++ox) {
          double fpu = 0, intc = kRfOverhead;
          for (int kh = 0; kh < 3; ++kh) {
            for (int kw = 0; kw < 3; ++kw) {
              const double s = csr.stream_len(oy + kh, ox + kw);
              if (s > 0) {
                fpu += p.fadd_latency * s + p.ss_residue;
                intc += kUnrolledSetup;
              } else {
                intc += kEmptyCheck;
              }
            }
          }
          rf_costs.push_back(std::max(fpu, intc));
        }
      }
      const auto sched = k::steal_schedule(rf_costs, cores, p.steal_cost);
      const double model = sched.makespan + p.icache_layer_warmup;
      EXPECT_NEAR(model, static_cast<double>(iss.cycles),
                  0.25 * static_cast<double>(iss.cycles) + 150.0)
          << "rate=" << rate << " cores=" << cores;
    }
  }
}

class IssConvBaseline : public ::testing::TestWithParam<int> {};

TEST_P(IssConvBaseline, MatchesReferenceAndStreamingResult) {
  const int cores = GetParam();
  const ConvCase c = make_case(10, 24, 0.25, 41);
  const auto csr = spikestream::compress::CsrIfmap::encode(c.ifmap);
  arch::Cluster cl1{arch::ClusterConfig{}}, cl2{arch::ClusterConfig{}};
  const auto rb = k::iss_conv_layer_baseline(cl1, csr, c.weights, cores);
  const auto rs = k::iss_conv_layer(cl2, csr, c.weights, cores);
  const snn::Tensor expect = snn::Reference::conv_currents(c.ifmap, c.weights);
  for (std::size_t i = 0; i < expect.v.size(); ++i) {
    EXPECT_NEAR(rb.currents.v[i], expect.v[i], 1e-4) << "rf " << i;
    EXPECT_NEAR(rs.currents.v[i], expect.v[i], 1e-4) << "rf " << i;
  }
  EXPECT_GT(rb.cycles, rs.cycles);
}

INSTANTIATE_TEST_SUITE_P(Cores, IssConvBaseline, ::testing::Values(1, 8));

TEST(IssConvBaselineSpeedup, HeadlineSpeedupEntirelyInsideTheIss) {
  // The paper's headline claim, reproduced with zero analytical modeling:
  // the same compressed conv layer, scalar loop vs streamed loop, both as
  // real instruction streams on the cycle-level cluster.
  const ConvCase c = make_case(12, 64, 0.3, 57);  // s_len ~ 19: decent streams
  const auto csr = spikestream::compress::CsrIfmap::encode(c.ifmap);
  arch::Cluster cl1{arch::ClusterConfig{}}, cl2{arch::ClusterConfig{}};
  const auto rb = k::iss_conv_layer_baseline(cl1, csr, c.weights, 8);
  const auto rs = k::iss_conv_layer(cl2, csr, c.weights, 8);
  const double speedup = static_cast<double>(rb.cycles) / rs.cycles;
  EXPECT_GT(speedup, 3.0);
  EXPECT_LT(speedup, 6.5);
  // Utilization jump, measured from real perf counters.
  EXPECT_LT(rb.perf.fpu_utilization(), 0.13);
  EXPECT_GT(rs.perf.fpu_utilization(), 0.30);
}

TEST(IssConv, EmptyIfmapProducesZeros) {
  ConvCase c = make_case(8, 16, 0.0, 3);
  arch::Cluster cl{arch::ClusterConfig{}};
  const auto r = k::iss_conv_layer(cl, spikestream::compress::CsrIfmap::encode(c.ifmap),
                                   c.weights, 8);
  for (float v : r.currents.v) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(r.perf.fp_ops, 0u);  // no spikes, no streamed fadds
}

TEST(IssConv, StridedIndirectSsrGathersRows) {
  // The Section-VI extension modeled in the SSR: indices scaled by an
  // arbitrary element stride (here 16 bytes = every other double).
  arch::ClusterConfig cfg;
  cfg.icache_miss_penalty = 0;
  arch::Cluster cl(cfg);
  const arch::Addr data = cl.tcdm_alloc(32 * 8);
  for (int i = 0; i < 32; ++i) {
    cl.mem().store<double>(data + static_cast<arch::Addr>(i * 8), i);
  }
  const arch::Addr idx = cl.tcdm_alloc(16);
  const std::uint16_t idcs[4] = {0, 1, 3, 7};
  for (int i = 0; i < 4; ++i) {
    cl.mem().store<std::uint16_t>(idx + static_cast<arch::Addr>(i * 2),
                                  idcs[i]);
  }
  arch::Asm a;
  a.li(5, idx);
  a.li(6, data);
  a.li(7, 4);
  a.li(8, 16);  // element stride: 16 bytes
  a.ssr_idx(0, 5, 1);
  a.ssr_base(0, 6);
  a.ssr_stride(0, 0, 8);
  a.ssr_len(0, 7);
  a.ssr_commit(0, arch::SsrMode::kIndirectRead);
  a.ssr_enable();
  a.li(9, 3);
  a.frep(9, 1);
  a.fadd(3, arch::kSsr0, 3);
  a.fpu_fence();
  a.ssr_disable();
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  // Gathers doubles at indices {0, 2, 6, 14}.
  EXPECT_DOUBLE_EQ(cl.core(0).f(3), 0.0 + 2.0 + 6.0 + 14.0);
}
