// SoA accelerator models and the Fig. 5 layer-6 comparison harness.
#include <gtest/gtest.h>

#include "soa/accel_models.hpp"
#include "soa/comparison.hpp"

namespace soa = spikestream::soa;
namespace k = spikestream::kernels;
namespace sc = spikestream::common;

TEST(Soa, FourAcceleratorsWithPublishedSpecs) {
  const auto accels = soa::soa_accelerators();
  ASSERT_EQ(accels.size(), 4u);
  EXPECT_EQ(accels[0].name, "Loihi");
  EXPECT_DOUBLE_EQ(accels[0].peak_gsop, 37.5);
  EXPECT_DOUBLE_EQ(accels[0].tech_nm, 14.0);
  EXPECT_EQ(accels[1].name, "ODIN");
  EXPECT_DOUBLE_EQ(accels[1].peak_gsop, 0.038);
  // Workload-effective energy exceeds ODIN's 12.7 pJ/SOP datasheet value.
  EXPECT_GE(accels[1].pj_per_sop, 12.7);
  EXPECT_EQ(accels[2].name, "LSMCore");
  EXPECT_DOUBLE_EQ(accels[2].peak_gsop, 400.0);
  EXPECT_EQ(accels[3].name, "NeuroRVcore");
  EXPECT_DOUBLE_EQ(accels[3].peak_gsop, 128.0);
}

TEST(Soa, LatencyScalesInverselyWithThroughput) {
  const auto accels = soa::soa_accelerators();
  const double sops = 1e10;
  // LSMCore fastest, ODIN slowest by ~4 orders of magnitude (paper IV-C).
  double lsm = 0, odin = 0;
  for (const auto& a : accels) {
    if (a.name == "LSMCore") lsm = a.latency_ms(sops);
    if (a.name == "ODIN") odin = a.latency_ms(sops);
    EXPECT_GT(a.latency_ms(sops), 0.0);
    EXPECT_DOUBLE_EQ(a.latency_ms(2 * sops), 2 * a.latency_ms(sops));
  }
  EXPECT_GT(odin / lsm, 3e3);  // "more than four orders" vs peak; ~4e3 effective
}

TEST(Soa, OursLayer6RunsAndCountsSops) {
  spikestream::arch::EnergyParams energy;
  soa::Layer6Workload wl;
  const auto r = soa::run_ours_layer6(k::Variant::kSpikeStream,
                                      sc::FpFormat::FP8, 5, 0.08, energy, &wl);
  EXPECT_GT(r.latency_ms, 0.0);
  EXPECT_GT(r.energy_mj, 0.0);
  EXPECT_GT(wl.sops, 0.0);
  // SOPs ~ timesteps * nnz * k^2 * out_c: sanity bracket.
  const double nnz = 8.0 * 8 * 512 * 0.08;
  const double expect = 5.0 * nnz * 9 * 512;
  EXPECT_NEAR(wl.sops, expect, 0.3 * expect);
}

TEST(Soa, ComparisonTableHasSevenRows) {
  spikestream::arch::EnergyParams energy;
  const auto rows = soa::layer6_comparison(3, 0.08, energy);
  ASSERT_EQ(rows.size(), 7u);
  // Our baseline is the slowest of our three variants (paper Fig. 5a).
  EXPECT_GT(rows[0].latency_ms, rows[1].latency_ms);
  EXPECT_GT(rows[1].latency_ms, rows[2].latency_ms);
}

TEST(Soa, ShapeClaimsAtFiveHundredTimestepsScale) {
  // Run a scaled-down (50-timestep) version of the Fig. 5 experiment and
  // check the paper's ordering claims; absolute ratios are asserted loosely
  // in EXPERIMENTS.md, ordering is asserted here.
  spikestream::arch::EnergyParams energy;
  const auto rows = soa::layer6_comparison(50, 0.08, energy);
  auto find = [&](const std::string& n) {
    for (const auto& r : rows) {
      if (r.name.find(n) != std::string::npos) return r;
    }
    ADD_FAILURE() << "row " << n << " missing";
    return rows[0];
  };
  const auto base = find("baseline");
  const auto fp16 = find("spikestream FP16");
  const auto fp8 = find("spikestream FP8");
  const auto lsm = find("LSMCore");
  const auto odin = find("ODIN");
  const auto loihi = find("Loihi");

  // Orderings from the paper: LSMCore fastest; our FP8 beats Loihi; ODIN
  // slowest; our baseline slowest of our variants.
  EXPECT_LT(lsm.latency_ms, fp8.latency_ms);
  EXPECT_LT(fp8.latency_ms, loihi.latency_ms);
  EXPECT_GT(odin.latency_ms, loihi.latency_ms * 100);
  EXPECT_GT(base.latency_ms, fp8.latency_ms * 5);
  // Energy: ours beats LSMCore, the most efficient SoA chip.
  EXPECT_LT(fp8.energy_mj, lsm.energy_mj);
  EXPECT_LT(fp16.energy_mj, lsm.energy_mj);
}
