// Stream semantic register behaviour: affine (1D/2D/4D) and indirect reads,
// write streams, shadow-register overlap, and streaming throughput.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "arch/cluster.hpp"
#include "arch/program.hpp"
#include "common/rng.hpp"

namespace arch = spikestream::arch;

namespace {

arch::Cluster make_cl() {
  arch::ClusterConfig cfg;
  cfg.num_workers = 1;
  cfg.icache_miss_penalty = 0;
  return arch::Cluster(cfg);
}

arch::Addr poke(arch::Cluster& cl, const std::vector<double>& v) {
  const arch::Addr a = cl.tcdm_alloc(static_cast<std::uint32_t>(v.size() * 8));
  for (std::size_t i = 0; i < v.size(); ++i) {
    cl.mem().store<double>(a + static_cast<arch::Addr>(8 * i), v[i]);
  }
  return a;
}

}  // namespace

TEST(Ssr, Affine1DSum) {
  auto cl = make_cl();
  std::vector<double> data(50);
  std::iota(data.begin(), data.end(), 1.0);  // 1..50
  const arch::Addr buf = poke(cl, data);

  arch::Asm a;
  a.li(5, buf);
  a.li(6, 8);  // stride
  a.li(7, static_cast<std::int64_t>(data.size()));
  a.ssr_base(0, 5);
  a.ssr_stride(0, 0, 6);
  a.ssr_len(0, 7);
  a.ssr_commit(0, arch::SsrMode::kAffineRead);
  a.ssr_enable();
  a.addi(8, 7, -1);
  a.frep(8, 1);
  a.fadd(3, arch::kSsr0, 3);
  a.fpu_fence();
  a.ssr_disable();
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  EXPECT_DOUBLE_EQ(cl.core(0).f(3), 50.0 * 51.0 / 2.0);
}

TEST(Ssr, Affine2DStridedGather) {
  // Read column 1 of a 4x4 row-major matrix: bounds {4}, stride 32, base+8.
  auto cl = make_cl();
  std::vector<double> m(16);
  std::iota(m.begin(), m.end(), 0.0);
  const arch::Addr buf = poke(cl, m);

  arch::Asm a;
  a.li(5, buf + 8);
  a.li(6, 32);
  a.li(7, 4);
  a.ssr_base(0, 5);
  a.ssr_stride(0, 0, 6);
  a.ssr_len(0, 7);
  a.ssr_commit(0, arch::SsrMode::kAffineRead);
  a.ssr_enable();
  a.addi(8, 7, -1);
  a.frep(8, 1);
  a.fadd(3, arch::kSsr0, 3);
  a.fpu_fence();
  a.ssr_disable();
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  EXPECT_DOUBLE_EQ(cl.core(0).f(3), 1.0 + 5.0 + 9.0 + 13.0);  // 28
}

TEST(Ssr, Affine2DNested) {
  // 2D stream over a 3x4 tile inside a 4x4 matrix: inner dim0 4 elems stride
  // 8, outer dim1 3 rows stride 32.
  auto cl = make_cl();
  std::vector<double> m(16);
  std::iota(m.begin(), m.end(), 0.0);
  const arch::Addr buf = poke(cl, m);

  arch::Asm a;
  a.li(5, buf);
  a.li(6, 8);
  a.li(7, 4);
  a.li(9, 32);
  a.li(10, 3);
  a.ssr_base(0, 5);
  a.ssr_stride(0, 0, 6);
  a.ssr_bound(0, 0, 7);
  a.ssr_stride(0, 1, 9);
  a.ssr_bound(0, 1, 10);
  a.ssr_commit(0, arch::SsrMode::kAffineRead);
  a.ssr_enable();
  a.li(8, 11);  // 12 elements
  a.frep(8, 1);
  a.fadd(3, arch::kSsr0, 3);
  a.fpu_fence();
  a.ssr_disable();
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  // Rows 0..2 fully: sum 0..11 = 66.
  EXPECT_DOUBLE_EQ(cl.core(0).f(3), 66.0);
}

TEST(Ssr, IndirectGatherSum16BitIndices) {
  auto cl = make_cl();
  std::vector<double> w(64);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = 100.0 + static_cast<double>(i);
  const arch::Addr wbuf = poke(cl, w);
  const std::vector<std::uint16_t> idx = {3, 3, 17, 0, 63, 5, 5, 5, 42};
  const arch::Addr ibuf = cl.tcdm_alloc(32);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    cl.mem().store<std::uint16_t>(ibuf + static_cast<arch::Addr>(2 * i), idx[i]);
  }

  arch::Asm a;
  a.li(5, ibuf);
  a.li(6, wbuf);
  a.li(7, static_cast<std::int64_t>(idx.size()));
  a.ssr_idx(0, 5, 1);  // 2-byte indices
  a.ssr_base(0, 6);
  a.ssr_len(0, 7);
  a.ssr_commit(0, arch::SsrMode::kIndirectRead);
  a.ssr_enable();
  a.addi(8, 7, -1);
  a.frep(8, 1);
  a.fadd(3, arch::kSsr0, 3);
  a.fpu_fence();
  a.ssr_disable();
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  double expect = 0;
  for (auto i : idx) expect += w[i];
  EXPECT_DOUBLE_EQ(cl.core(0).f(3), expect);
}

TEST(Ssr, IndirectWith8BitIndices) {
  auto cl = make_cl();
  std::vector<double> w(16);
  std::iota(w.begin(), w.end(), 0.0);
  const arch::Addr wbuf = poke(cl, w);
  const std::vector<std::uint8_t> idx = {1, 1, 2, 15, 0, 7};
  const arch::Addr ibuf = cl.tcdm_alloc(8);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    cl.mem().store<std::uint8_t>(ibuf + static_cast<arch::Addr>(i), idx[i]);
  }

  arch::Asm a;
  a.li(5, ibuf);
  a.li(6, wbuf);
  a.li(7, static_cast<std::int64_t>(idx.size()));
  a.ssr_idx(0, 5, 0);  // 1-byte indices
  a.ssr_base(0, 6);
  a.ssr_len(0, 7);
  a.ssr_commit(0, arch::SsrMode::kIndirectRead);
  a.ssr_enable();
  a.addi(8, 7, -1);
  a.frep(8, 1);
  a.fadd(3, arch::kSsr0, 3);
  a.fpu_fence();
  a.ssr_disable();
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  EXPECT_DOUBLE_EQ(cl.core(0).f(3), 1 + 1 + 2 + 15 + 0 + 7);
}

TEST(Ssr, WriteStreamStoresResults) {
  // f2 mapped to an affine write stream: out[i] = a[i] + a[i].
  auto cl = make_cl();
  std::vector<double> data = {1, 2, 3, 4, 5, 6, 7, 8};
  const arch::Addr in = poke(cl, data);
  const arch::Addr out = cl.tcdm_alloc(64);

  arch::Asm a;
  a.li(5, in);
  a.li(6, 8);
  a.li(7, 8);
  a.ssr_base(0, 5);
  a.ssr_stride(0, 0, 6);
  a.ssr_len(0, 7);
  a.ssr_commit(0, arch::SsrMode::kAffineRead);
  a.li(9, out);
  a.ssr_base(2, 9);
  a.ssr_stride(2, 0, 6);
  a.ssr_len(2, 7);
  a.ssr_commit(2, arch::SsrMode::kAffineWrite);
  a.li(10, 2);
  a.fcvt_d_w(4, 10);  // f4 = 2.0
  a.ssr_enable();
  a.li(8, 7);
  a.frep(8, 1);
  a.fmul(arch::kSsr2, arch::kSsr0, 4);  // out[i] = 2 * a[i]
  a.fpu_fence();
  a.ssr_disable();
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_DOUBLE_EQ(cl.mem().load<double>(out + static_cast<arch::Addr>(8 * i)),
                     2.0 * data[i]);
  }
}

TEST(Ssr, Ssr2RejectsIndirect) {
  auto cl = make_cl();
  arch::Asm a;
  a.li(5, arch::kTcdmBase);
  a.li(7, 4);
  a.ssr_idx(2, 5, 1);
  a.ssr_base(2, 5);
  a.ssr_len(2, 7);
  a.ssr_commit(2, arch::SsrMode::kIndirectRead);
  a.halt();
  cl.load_program_on(0, a.finish());
  EXPECT_THROW(cl.run(), spikestream::Error);
}

TEST(Ssr, StreamingThroughputApproachesOneElementPerII) {
  // Long indirect stream: cycles ~= II * n (II = fadd latency 2), far below
  // the ~11 cycles/element of the scalar loop.
  auto cl = make_cl();
  constexpr int kN = 500;
  std::vector<double> w(kN, 1.0);
  const arch::Addr wbuf = poke(cl, w);
  const arch::Addr ibuf = cl.tcdm_alloc(kN * 2 + 8);
  for (int i = 0; i < kN; ++i) {
    cl.mem().store<std::uint16_t>(ibuf + static_cast<arch::Addr>(2 * i),
                                  static_cast<std::uint16_t>(i));
  }
  arch::Asm a;
  a.li(5, ibuf);
  a.li(6, wbuf);
  a.li(7, kN);
  a.ssr_idx(0, 5, 1);
  a.ssr_base(0, 6);
  a.ssr_len(0, 7);
  a.ssr_commit(0, arch::SsrMode::kIndirectRead);
  a.ssr_enable();
  a.addi(8, 7, -1);
  a.frep(8, 1);
  a.fadd(3, arch::kSsr0, 3);
  a.fpu_fence();
  a.ssr_disable();
  a.halt();
  cl.load_program_on(0, a.finish());
  const auto cycles = cl.run();
  EXPECT_DOUBLE_EQ(cl.core(0).f(3), static_cast<double>(kN));
  EXPECT_NEAR(static_cast<double>(cycles), 2.0 * kN, 0.1 * kN);
}

TEST(Ssr, ShadowRegistersOverlapBackToBackStreams) {
  // Two consecutive streams committed back-to-back: the second config lands
  // in the shadow set while the first is still active; total time is about
  // the sum of the stream bodies, with the second setup fully hidden.
  auto cl = make_cl();
  constexpr int kN = 100;
  std::vector<double> w(kN, 2.0);
  const arch::Addr wbuf = poke(cl, w);
  const arch::Addr ibuf = cl.tcdm_alloc(kN * 2 + 8);
  for (int i = 0; i < kN; ++i) {
    cl.mem().store<std::uint16_t>(ibuf + static_cast<arch::Addr>(2 * i),
                                  static_cast<std::uint16_t>(i));
  }
  arch::Asm a;
  a.li(5, ibuf);
  a.li(6, wbuf);
  a.li(7, kN);
  a.ssr_enable();
  for (int rep = 0; rep < 2; ++rep) {
    a.ssr_idx(0, 5, 1);
    a.ssr_base(0, 6);
    a.ssr_len(0, 7);
    a.ssr_commit(0, arch::SsrMode::kIndirectRead);
    a.addi(8, 7, -1);
    a.frep(8, 1);
    a.fadd(3, arch::kSsr0, 3);
  }
  a.fpu_fence();
  a.ssr_disable();
  a.halt();
  cl.load_program_on(0, a.finish());
  const auto cycles = cl.run();
  EXPECT_DOUBLE_EQ(cl.core(0).f(3), 2.0 * 2.0 * kN);
  EXPECT_NEAR(static_cast<double>(cycles), 2.0 * 2.0 * kN, 0.15 * 2 * kN);
}
