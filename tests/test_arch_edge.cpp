// Microarchitectural edge cases: FPU queue backpressure, pipe
// synchronization via fmv, SSR shadow-register saturation, WAR protection
// between the integer pipe and the FPU sequencer, and FREP corner cases.
#include <gtest/gtest.h>

#include "arch/cluster.hpp"
#include "arch/program.hpp"

namespace arch = spikestream::arch;

namespace {

arch::Cluster make_cl() {
  arch::ClusterConfig cfg;
  cfg.num_workers = 1;
  cfg.icache_miss_penalty = 0;
  return arch::Cluster(cfg);
}

}  // namespace

TEST(CoreEdge, FpuQueueBackpressureStallsIntegerPipe) {
  // Issue many dependent fadds (II = 2 each): the 16-deep queue fills and
  // the integer pipe must stall, making total time ~ 2 * N, not ~ N issues.
  auto cl = make_cl();
  arch::Asm a;
  a.li(5, 1);
  a.fcvt_d_w(4, 5);
  constexpr int kN = 100;
  for (int i = 0; i < kN; ++i) a.fadd(3, 4, 3);  // same accumulator
  a.fpu_fence();
  a.halt();
  cl.load_program_on(0, a.finish());
  const auto cycles = cl.run();
  EXPECT_GE(cycles, 2u * kN);
  EXPECT_DOUBLE_EQ(cl.core(0).f(3), static_cast<double>(kN));
}

TEST(CoreEdge, FmvXfSynchronizesPipes) {
  // fmv.x.f must wait for the queued FPU result before handing it to the
  // integer pipe.
  auto cl = make_cl();
  arch::Asm a;
  a.li(5, 21);
  a.fcvt_d_w(4, 5);
  a.fadd(3, 4, 4);   // f3 = 42 (queued)
  a.fmv_xf(6, 3);    // must observe 42, not stale 0
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  EXPECT_EQ(cl.core(0).x(6), 42u);
}

TEST(CoreEdge, FldWaitsForQueuedReader) {
  // WAR hazard: an unissued queued fadd still needs the old value of f4;
  // a following fld into f4 must not clobber it.
  auto cl = make_cl();
  const arch::Addr buf = cl.tcdm_alloc(16);
  cl.mem().store<double>(buf, 100.0);
  cl.mem().store<double>(buf + 8, 999.0);
  arch::Asm a;
  a.li(5, buf);
  a.fld(4, 5, 0);    // f4 = 100
  // Two dependent adds keep the FPU busy so the second fadd(f4) is enqueued
  // but not yet issued when the next fld arrives.
  a.fadd(3, 4, 3);   // f3 = 100
  a.fadd(3, 4, 3);   // f3 = 200 — must read f4 = 100
  a.fld(4, 5, 8);    // overwrite f4 with 999: must wait for the reads
  a.fadd(3, 4, 3);   // f3 = 1199
  a.fpu_fence();
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  EXPECT_DOUBLE_EQ(cl.core(0).f(3), 100.0 + 100.0 + 999.0);
}

TEST(CoreEdge, SsrShadowSaturationStallsThirdCommit) {
  // Active + shadow hold two streams. With the first stream's consumer
  // already in the FPU queue, a third commit stalls until stream 1 is fully
  // popped, then proceeds — and the results stay exact.
  auto cl = make_cl();
  constexpr int kLen = 40;
  const arch::Addr data = cl.tcdm_alloc(kLen * 8);
  for (int i = 0; i < kLen; ++i) {
    cl.mem().store<double>(data + static_cast<arch::Addr>(8 * i), 1.0);
  }
  arch::Asm a;
  a.li(5, data);
  a.li(6, 8);
  a.li(7, kLen);
  a.li(8, kLen - 1);
  a.ssr_enable();
  auto commit = [&] {
    a.ssr_base(0, 5);
    a.ssr_stride(0, 0, 6);
    a.ssr_len(0, 7);
    a.ssr_commit(0, arch::SsrMode::kAffineRead);
  };
  commit();              // stream 1 active
  a.frep(8, 1);
  a.fadd(3, arch::kSsr0, 3);  // consumer of stream 1 queued
  commit();              // stream 2 -> shadow slot
  a.csr_cycle(20);
  commit();              // stream 3: must wait for stream 1 to drain
  a.csr_cycle(21);
  for (int s = 0; s < 2; ++s) {
    a.frep(8, 1);
    a.fadd(3, arch::kSsr0, 3);
  }
  a.fpu_fence();
  a.ssr_disable();
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  EXPECT_DOUBLE_EQ(cl.core(0).f(3), 3.0 * kLen);
  // Stream 1 takes ~2*kLen cycles to consume; the stalled commit observed
  // most of that.
  EXPECT_GT(cl.core(0).x(21) - cl.core(0).x(20), static_cast<std::uint32_t>(kLen));
}

TEST(CoreEdge, SsrOverCommitWithoutConsumerDeadlocks) {
  // Committing a third stream with no consumer in flight can never unblock:
  // the 4-deep FIFO cannot drain a 40-element stream by prefetch alone. The
  // cluster watchdog must catch this software error.
  arch::ClusterConfig cfg;
  cfg.num_workers = 1;
  cfg.icache_miss_penalty = 0;
  cfg.max_cycles = 50'000;
  arch::Cluster cl(cfg);
  constexpr int kLen = 40;
  const arch::Addr data = cl.tcdm_alloc(kLen * 8);
  arch::Asm a;
  a.li(5, data);
  a.li(6, 8);
  a.li(7, kLen);
  a.ssr_enable();
  for (int s = 0; s < 3; ++s) {
    a.ssr_base(0, 5);
    a.ssr_stride(0, 0, 6);
    a.ssr_len(0, 7);
    a.ssr_commit(0, arch::SsrMode::kAffineRead);
  }
  a.halt();
  cl.load_program_on(0, a.finish());
  EXPECT_THROW(cl.run(), spikestream::Error);
}

TEST(CoreEdge, FrepZeroRepsExecutesOnce) {
  // reps register holds (repetitions - 1): zero means run the body once.
  auto cl = make_cl();
  arch::Asm a;
  a.li(5, 1);
  a.fcvt_d_w(4, 5);
  a.li(6, 0);
  a.frep(6, 1);
  a.fadd(3, 4, 3);
  a.fpu_fence();
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  EXPECT_DOUBLE_EQ(cl.core(0).f(3), 1.0);
  EXPECT_EQ(cl.core(0).perf().fp_ops, 1u);
}

TEST(CoreEdge, FrepBodyTooLongRejected) {
  auto cl = make_cl();
  arch::Asm a;
  a.li(6, 1);
  a.frep(6, 9);  // body limit is 8
  for (int i = 0; i < 9; ++i) a.fadd(3, 3, 3);
  a.halt();
  cl.load_program_on(0, a.finish());
  EXPECT_THROW(cl.run(), spikestream::Error);
}

TEST(CoreEdge, FrepRejectsNonFpBody) {
  auto cl = make_cl();
  arch::Asm a;
  a.li(6, 1);
  a.frep(6, 1);
  a.addi(5, 5, 1);  // integer op inside an FREP body: illegal
  a.halt();
  cl.load_program_on(0, a.finish());
  EXPECT_THROW(cl.run(), spikestream::Error);
}

TEST(CoreEdge, TwoAccumulatorFrepDoublesThroughput) {
  auto run_with_body = [](int accs) {
    auto cl = make_cl();
    arch::Asm a;
    a.li(5, 1);
    a.fcvt_d_w(4, 5);
    a.li(6, 199);
    if (accs == 1) {
      a.frep(6, 1);
      a.fadd(3, 4, 3);
    } else {
      a.frep(6, 2);
      a.fadd(3, 4, 3);
      a.fadd(7, 4, 7);
    }
    a.fpu_fence();
    a.halt();
    cl.load_program_on(0, a.finish());
    return cl.run();
  };
  const auto one = run_with_body(1);   // 200 ops, II 2 -> ~400
  const auto two = run_with_body(2);   // 400 ops, alternating -> ~400
  EXPECT_NEAR(static_cast<double>(two), static_cast<double>(one), 60.0);
}

TEST(CoreEdge, DivRemLatencyAndResults) {
  auto cl = make_cl();
  arch::Asm a;
  a.li(5, 37);
  a.li(6, 5);
  a.divu(7, 5, 6);
  a.remu(8, 5, 6);
  a.li(9, 0);
  a.divu(10, 5, 9);  // div by zero: RISC-V semantics, all-ones
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  EXPECT_EQ(cl.core(0).x(7), 7u);
  EXPECT_EQ(cl.core(0).x(8), 2u);
  EXPECT_EQ(cl.core(0).x(10), 0xFFFFFFFFu);
}

TEST(CoreEdge, DividerLatencyStallsDependentUse) {
  auto time_of = [](bool dependent) {
    arch::ClusterConfig cfg;
    cfg.num_workers = 1;
    cfg.icache_miss_penalty = 0;
    arch::Cluster cl(cfg);
    arch::Asm a;
    a.li(5, 1000);
    a.li(6, 7);
    a.divu(7, 5, 6);
    if (dependent) a.addi(8, 7, 1);  // must wait ~8 cycles
    else a.addi(8, 6, 1);
    a.halt();
    cl.load_program_on(0, a.finish());
    return cl.run();
  };
  EXPECT_GT(time_of(true), time_of(false) + 4);
}
