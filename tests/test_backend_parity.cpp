// Backend parity: every ExecutionBackend shares one functional-pass contract,
// so Analytical, CycleAccurate and Sharded must produce bit-identical spike
// outputs on the same network and input; the timing models may differ, but
// only within documented tolerances (the ISS cross-validation bound for
// cycle-accurate, conservation of activity counters for sharding).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "runtime/backend_cycle.hpp"
#include "runtime/backend_sharded.hpp"
#include "runtime/batch.hpp"
#include "runtime/multistep.hpp"
#include "snn/calibrate.hpp"
#include "snn/input_gen.hpp"

namespace rt = spikestream::runtime;
namespace k = spikestream::kernels;
namespace snn = spikestream::snn;
namespace sc = spikestream::common;

namespace {

/// The quickstart network: encode conv -> spiking conv -> 10-class FC.
snn::Network quickstart_net() {
  snn::Network net = snn::Network::make_tiny(18, 3, 32, 10);
  sc::Rng rng(42);
  net.init_weights(rng);
  const auto calib = snn::make_batch(4, 7, 16, 16, 3);
  const std::vector<double> targets = {0.20, 0.15, 0.30};
  snn::calibrate_thresholds(net, calib, targets);
  return net;
}

/// A small 2-layer event-input network (spiking conv -> FC).
snn::Network two_layer_net() {
  snn::Network net;
  snn::LayerSpec c1;
  c1.kind = snn::LayerKind::kConv;
  c1.name = "conv1";
  c1.in_h = c1.in_w = 12;
  c1.in_c = 2;
  c1.k = 3;
  c1.out_c = 16;
  net.add_layer(c1);
  snn::LayerSpec fc;
  fc.kind = snn::LayerKind::kFc;
  fc.name = "fc";
  fc.in_c = 10 * 10 * 16;
  fc.out_c = 6;
  net.add_layer(fc);
  sc::Rng rng(5);
  net.init_weights(rng);
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    net.layer(l).lif.v_th = 0.6f;
    net.layer(l).lif.v_rst = 0.6f;
  }
  return net;
}

snn::SpikeMap event_frame(int hw, int c, std::uint64_t seed, double p = 0.25) {
  sc::Rng rng(seed);
  snn::SpikeMap f(hw, hw, c);
  for (int y = 1; y < hw - 1; ++y) {
    for (int x = 1; x < hw - 1; ++x) {
      for (int ch = 0; ch < c; ++ch) f.at(y, x, ch) = rng.bernoulli(p);
    }
  }
  return f;
}

rt::BackendConfig sharded_cfg(int clusters, bool threads = true) {
  rt::BackendConfig cfg;
  cfg.kind = rt::BackendKind::kSharded;
  cfg.clusters = clusters;
  cfg.shard_threads = threads;
  return cfg;
}

rt::BackendConfig cycle_cfg() {
  rt::BackendConfig cfg;
  cfg.kind = rt::BackendKind::kCycleAccurate;
  return cfg;
}

}  // namespace

TEST(BackendParity, QuickstartSpikesBitIdenticalAcrossBackends) {
  const snn::Network net = quickstart_net();
  k::RunOptions opt;
  opt.fmt = sc::FpFormat::FP16;
  const rt::InferenceEngine analytical(net, opt);
  const rt::InferenceEngine cycle(net, opt, cycle_cfg());
  const rt::InferenceEngine sharded(net, opt, sharded_cfg(4));

  const auto images = snn::make_batch(2, 99, 16, 16, 3);
  for (const auto& img : images) {
    snn::NetworkState sa = analytical.make_state();
    snn::NetworkState sc_ = cycle.make_state();
    snn::NetworkState ss = sharded.make_state();
    // Multiple timesteps: membrane carry-over must also agree bit-exactly.
    for (int t = 0; t < 3; ++t) {
      const auto ra = analytical.run(img, sa);
      const auto rc = cycle.run(img, sc_);
      const auto rs = sharded.run(img, ss);
      ASSERT_EQ(ra.final_output.v, rc.final_output.v) << "t=" << t;
      ASSERT_EQ(ra.final_output.v, rs.final_output.v) << "t=" << t;
      for (std::size_t l = 0; l < ra.layers.size(); ++l) {
        EXPECT_DOUBLE_EQ(ra.layers[l].out_firing_rate,
                         rs.layers[l].out_firing_rate);
      }
    }
  }
}

TEST(BackendParity, CycleAccurateTimingWithinIssTolerance) {
  const snn::Network net = quickstart_net();
  k::RunOptions opt;
  const rt::InferenceEngine analytical(net, opt);
  const rt::InferenceEngine cycle(net, opt, cycle_cfg());
  const auto img = snn::make_batch(1, 5, 16, 16, 3)[0];
  snn::NetworkState sa = analytical.make_state();
  snn::NetworkState sc_ = cycle.make_state();
  const auto ra = analytical.run(img, sa);
  const auto rc = cycle.run(img, sc_);
  ASSERT_EQ(ra.layers.size(), rc.layers.size());
  for (std::size_t l = 0; l < ra.layers.size(); ++l) {
    const double ratio = rc.layers[l].stats.cycles / ra.layers[l].stats.cycles;
    EXPECT_GT(rc.layers[l].stats.cycles, 0.0) << "layer " << l;
    // The model is ISS-validated within ~15%; DMA-bound layers dilute the
    // difference further. Anything outside [0.6, 1.6] means the calibration
    // or the model drifted.
    EXPECT_GT(ratio, 0.6) << "layer " << l;
    EXPECT_LT(ratio, 1.6) << "layer " << l;
  }
  EXPECT_GT(rc.total_cycles, 0.0);
}

TEST(BackendParity, ShardedConservesActivityAndCutsLatency) {
  const snn::Network net = quickstart_net();
  k::RunOptions opt;
  const rt::InferenceEngine analytical(net, opt);
  const rt::InferenceEngine sharded(net, opt, sharded_cfg(4));
  const auto img = snn::make_batch(1, 6, 16, 16, 3)[0];
  snn::NetworkState sa = analytical.make_state();
  snn::NetworkState ss = sharded.make_state();
  const auto ra = analytical.run(img, sa);
  const auto rs = sharded.run(img, ss);
  for (std::size_t l = 0; l < ra.layers.size(); ++l) {
    const auto& a = ra.layers[l].stats;
    const auto& s = rs.layers[l].stats;
    // Work is conserved: sharding repartitions the same SpVAs, so the
    // activity counters must sum back to the single-cluster totals.
    EXPECT_NEAR(s.fpu_ops, a.fpu_ops, 1e-6 * a.fpu_ops + 1e-6) << l;
    EXPECT_NEAR(s.tcdm_words, a.tcdm_words, 1e-6 * a.tcdm_words + 1e-6) << l;
    EXPECT_NEAR(s.ssr_elems, a.ssr_elems, 1e-6 * a.ssr_elems + 1e-6) << l;
    // Wall-clock per layer never exceeds the single-cluster run.
    EXPECT_LE(s.cycles, a.cycles * 1.0 + 1e-9) << l;
  }
  // End to end, 4 clusters must land strictly between 1x and 4x faster.
  EXPECT_LT(rs.total_cycles, ra.total_cycles);
  EXPECT_GT(rs.total_cycles, ra.total_cycles / 4.0);
}

TEST(BackendParity, ShardedThreadedEqualsSerialExactly) {
  const snn::Network net = quickstart_net();
  k::RunOptions opt;
  const rt::InferenceEngine threaded(net, opt, sharded_cfg(4, true));
  const rt::InferenceEngine serial(net, opt, sharded_cfg(4, false));
  const auto img = snn::make_batch(1, 8, 16, 16, 3)[0];
  snn::NetworkState st = threaded.make_state();
  snn::NetworkState se = serial.make_state();
  const auto rt_ = threaded.run(img, st);
  const auto re = serial.run(img, se);
  ASSERT_EQ(rt_.final_output.v, re.final_output.v);
  for (std::size_t l = 0; l < rt_.layers.size(); ++l) {
    EXPECT_DOUBLE_EQ(rt_.layers[l].stats.cycles, re.layers[l].stats.cycles);
    EXPECT_DOUBLE_EQ(rt_.layers[l].stats.fpu_ops, re.layers[l].stats.fpu_ops);
  }
  EXPECT_DOUBLE_EQ(rt_.total_cycles, re.total_cycles);
}

TEST(BackendParity, TwoLayerEventNetworkAllBackendsAgree) {
  const snn::Network net = two_layer_net();
  k::RunOptions opt;
  const rt::InferenceEngine analytical(net, opt);
  const rt::InferenceEngine cycle(net, opt, cycle_cfg());
  const rt::InferenceEngine sharded(net, opt, sharded_cfg(4));

  std::vector<snn::SpikeMap> frames;
  for (int t = 0; t < 4; ++t) frames.push_back(event_frame(12, 2, 17 + t));

  snn::NetworkState sa = analytical.make_state();
  snn::NetworkState sc_ = cycle.make_state();
  snn::NetworkState ss = sharded.make_state();
  const auto ra = rt::run_event_stream(analytical, sa, frames);
  const auto rc = rt::run_event_stream(cycle, sc_, frames);
  const auto rs = rt::run_event_stream(sharded, ss, frames);
  EXPECT_EQ(ra.spike_counts, rc.spike_counts);
  EXPECT_EQ(ra.spike_counts, rs.spike_counts);
  // Cycle-accurate total within the cross-validation tolerance band.
  EXPECT_GT(rc.total_cycles / ra.total_cycles, 0.6);
  EXPECT_LT(rc.total_cycles / ra.total_cycles, 1.6);
  // Sharded total strictly faster.
  EXPECT_LT(rs.total_cycles, ra.total_cycles);
}

TEST(BackendParity, DenseVariantsAreIssCalibrated) {
  // kDenseNoTc conv/FC and the baseline encode layer used to run with a
  // silent calibration ratio of 1.0; their ISS twins now anchor them.
  k::RunOptions dense;
  dense.variant = k::Variant::kDenseNoTc;
  const rt::CycleAccurateBackend nd(dense);
  EXPECT_GT(nd.dense_no_tc_ratio(128), 1.05);
  EXPECT_LT(nd.dense_no_tc_ratio(128), 2.0 + 1e-9);

  k::RunOptions base;
  base.variant = k::Variant::kBaseline;
  const rt::CycleAccurateBackend nb(base);
  EXPECT_GT(nb.baseline_dense_ratio(128), 1.05);
  EXPECT_LT(nb.baseline_dense_ratio(128), 2.0 + 1e-9);
}

TEST(ShardedSlices, AlignToSimdGroupBoundaries) {
  k::RunOptions opt;
  opt.fmt = sc::FpFormat::FP16;  // 4 lanes
  const rt::ShardedBackend be(opt, 4);
  const auto sl = be.slices(10);  // 3 groups of 4 lanes -> 3 active shards
  ASSERT_EQ(sl.size(), 3u);
  EXPECT_EQ(sl[0], std::make_pair(0, 4));
  EXPECT_EQ(sl[1], std::make_pair(4, 8));
  EXPECT_EQ(sl[2], std::make_pair(8, 10));

  k::RunOptions opt8;
  opt8.fmt = sc::FpFormat::FP8;  // 8 lanes -> 2 groups -> 2 active shards
  const rt::ShardedBackend be8(opt8, 4);
  const auto sl8 = be8.slices(10);
  ASSERT_EQ(sl8.size(), 2u);
  EXPECT_EQ(sl8[0], std::make_pair(0, 8));
  EXPECT_EQ(sl8[1], std::make_pair(8, 10));
}

TEST(BatchRunner, DeterministicAcrossWorkerCounts) {
  const snn::Network net = quickstart_net();
  k::RunOptions opt;
  const auto images = snn::make_batch(4, 21, 16, 16, 3);
  const rt::BatchRunner serial(net, opt, {}, {}, /*workers=*/1);
  const rt::BatchRunner parallel(net, opt, {}, {}, /*workers=*/4);
  const auto rs = serial.run(images, /*timesteps=*/2);
  const auto rp = parallel.run(images, /*timesteps=*/2);
  ASSERT_EQ(rs.size(), rp.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].spike_counts, rp[i].spike_counts) << "sample " << i;
    EXPECT_DOUBLE_EQ(rs[i].total_cycles, rp[i].total_cycles) << "sample " << i;
  }
}

TEST(BatchRunner, MatchesPerSampleEngines) {
  // The batch path (one engine, weights quantized once, shared across
  // workers) must reproduce the naive path (a fresh engine per sample).
  const snn::Network net = quickstart_net();
  k::RunOptions opt;
  const auto images = snn::make_batch(3, 31, 16, 16, 3);
  const rt::BatchRunner runner(net, opt, {}, {}, /*workers=*/3);
  const auto batched = runner.run(images, /*timesteps=*/3);
  for (std::size_t i = 0; i < images.size(); ++i) {
    rt::InferenceEngine eng(net, opt);
    const auto serial = rt::run_timesteps(eng, images[i], 3);
    EXPECT_EQ(batched[i].spike_counts, serial.spike_counts) << "sample " << i;
    EXPECT_DOUBLE_EQ(batched[i].total_cycles, serial.total_cycles);
    EXPECT_DOUBLE_EQ(batched[i].total_energy_mj, serial.total_energy_mj);
  }
}

TEST(BatchRunner, ShardedBackendBatchParity) {
  const snn::Network net = quickstart_net();
  k::RunOptions opt;
  const auto images = snn::make_batch(3, 41, 16, 16, 3);
  const rt::BatchRunner analytical(net, opt, {}, {}, /*workers=*/2);
  const rt::BatchRunner sharded(net, opt, sharded_cfg(4), {}, /*workers=*/2);
  const auto ra = analytical.run(images, 2);
  const auto rs = sharded.run(images, 2);
  for (std::size_t i = 0; i < images.size(); ++i) {
    EXPECT_EQ(ra[i].spike_counts, rs[i].spike_counts) << "sample " << i;
    EXPECT_LT(rs[i].total_cycles, ra[i].total_cycles) << "sample " << i;
  }
}
