// Cluster-level behaviour: SPMD dispatch, barriers, TCDM atomics (the
// workload-stealing primitive), bank conflicts, the DMA engine, and the
// shared instruction cache model.
#include <gtest/gtest.h>

#include <vector>

#include "arch/cluster.hpp"
#include "arch/program.hpp"

namespace arch = spikestream::arch;

namespace {

arch::Cluster make_cl(int workers = 8, int icache_penalty = 0) {
  arch::ClusterConfig cfg;
  cfg.num_workers = workers;
  cfg.icache_miss_penalty = icache_penalty;
  return arch::Cluster(cfg);
}

}  // namespace

TEST(Cluster, SpmdCoreIdsDistinct) {
  auto cl = make_cl(4);
  const arch::Addr buf = cl.tcdm_alloc(64);
  arch::Asm a;
  a.csr_core_id(5);
  a.slli(6, 5, 2);
  a.li(7, buf);
  a.add(7, 7, 6);
  a.sw(5, 7, 0);  // buf[id] = id
  a.halt();
  cl.load_program(a.finish());
  cl.run();
  for (int i = 0; i < 5; ++i) {  // 4 workers + DMA core run the program
    EXPECT_EQ(cl.mem().load<std::uint32_t>(buf + 4 * static_cast<arch::Addr>(i)),
              static_cast<std::uint32_t>(i));
  }
}

TEST(Cluster, AmoAddSerializesClaims) {
  // Every core amoadds 1 to a shared counter 100 times: final value exact.
  auto cl = make_cl(8);
  const arch::Addr ctr = cl.tcdm_alloc(8);
  arch::Asm a;
  a.li(5, ctr);
  a.li(6, 1);
  a.li(7, 0);
  a.li(8, 100);
  a.label("loop");
  a.amoadd(9, 5, 6);
  a.addi(7, 7, 1);
  a.bne(7, 8, "loop");
  a.halt();
  cl.load_program(a.finish());
  cl.run();
  EXPECT_EQ(cl.mem().load<std::uint32_t>(ctr), 900u);  // 9 cores * 100
}

TEST(Cluster, AmoAddReturnsUniqueTickets) {
  // The workload-stealing idiom: each core grabs distinct RF indices.
  auto cl = make_cl(8);
  const arch::Addr ctr = cl.tcdm_alloc(8);
  const arch::Addr log = cl.tcdm_alloc(8 * 64);
  arch::Asm a;
  a.li(5, ctr);
  a.li(6, 1);
  a.csr_core_id(10);
  a.slli(10, 10, 5);  // 8 slots of 4 bytes per core
  a.li(11, log);
  a.add(11, 11, 10);
  a.li(7, 0);
  a.li(8, 4);
  a.label("loop");
  a.amoadd(9, 5, 6);   // ticket
  a.sw(9, 11, 0);
  a.addi(11, 11, 4);
  a.addi(7, 7, 1);
  a.bne(7, 8, "loop");
  a.halt();
  cl.load_program(a.finish());
  cl.run();
  std::vector<bool> seen(9 * 4, false);
  for (int c = 0; c < 9; ++c) {
    for (int j = 0; j < 4; ++j) {
      const auto t = cl.mem().load<std::uint32_t>(
          log + static_cast<arch::Addr>(c * 32 + j * 4));
      ASSERT_LT(t, seen.size());
      EXPECT_FALSE(seen[t]) << "duplicate ticket " << t;
      seen[t] = true;
    }
  }
}

TEST(Cluster, BarrierAlignsCores) {
  // Core 0 does long work before the barrier; all cores record their
  // post-barrier cycle: the readings must be within one cycle of each other.
  auto cl = make_cl(4);
  const arch::Addr buf = cl.tcdm_alloc(64);
  arch::Asm a;
  a.csr_core_id(5);
  a.bne(5, 0, "wait");
  a.li(6, 0);
  a.li(7, 500);
  a.label("spin");
  a.addi(6, 6, 1);
  a.bne(6, 7, "spin");
  a.label("wait");
  a.barrier();
  a.csr_cycle(8);
  a.slli(9, 5, 2);
  a.li(10, buf);
  a.add(10, 10, 9);
  a.sw(8, 10, 0);
  a.halt();
  cl.load_program(a.finish());
  cl.run();
  std::uint32_t lo = ~0u, hi = 0;
  for (int c = 0; c < 5; ++c) {
    const auto t =
        cl.mem().load<std::uint32_t>(buf + 4 * static_cast<arch::Addr>(c));
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  EXPECT_GE(lo, 500u);     // nobody passed before core 0 finished spinning
  EXPECT_LE(hi - lo, 2u);  // and everyone released together
}

TEST(Cluster, TwoBarriersInSequence) {
  auto cl = make_cl(3);
  arch::Asm a;
  a.li(5, 1);
  a.barrier();
  a.addi(5, 5, 1);
  a.barrier();
  a.addi(5, 5, 1);
  a.halt();
  cl.load_program(a.finish());
  cl.run();
  for (int c = 0; c < 3; ++c) EXPECT_EQ(cl.core(c).x(5), 3u);
}

TEST(Cluster, BankConflictsSlowColocatedAccesses) {
  // 8 cores hammering the same bank vs. 8 cores on distinct banks.
  auto run_with_stride = [](int stride_words) {
    auto cl = make_cl(8);
    const arch::Addr buf = cl.tcdm_alloc(8 * 64 * 8);
    arch::Asm a;
    a.csr_core_id(5);
    a.li(6, stride_words * 8);
    a.mul(6, 5, 6);
    a.li(7, buf);
    a.add(7, 7, 6);  // per-core address: same bank iff stride_words % 32 == 0
    a.li(8, 0);
    a.li(9, 200);
    a.label("loop");
    a.lw(10, 7, 0);
    a.addi(8, 8, 1);
    a.bne(8, 9, "loop");
    a.halt();
    cl.load_program(a.finish());
    return cl.run();
  };
  const auto conflicted = run_with_stride(32);  // all cores -> bank 0
  const auto spread = run_with_stride(1);       // one bank per core
  EXPECT_GT(conflicted, spread + 200);  // serialized by arbitration
}

TEST(Cluster, DmaCopiesGlobalToTcdm) {
  auto cl = make_cl(1);
  const arch::Addr src = cl.global_alloc(1024);
  const arch::Addr dst = cl.tcdm_alloc(1024);
  for (int i = 0; i < 256; ++i) {
    cl.mem().store<std::uint32_t>(src + 4 * static_cast<arch::Addr>(i),
                                  static_cast<std::uint32_t>(i * 3 + 1));
  }
  arch::Asm a;
  a.li(5, src);
  a.li(6, dst);
  a.dma_src(5);
  a.dma_dst(6);
  a.li(7, 1024);
  a.dma_start(8, 7);
  a.dma_wait();
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(cl.mem().load<std::uint32_t>(dst + 4 * static_cast<arch::Addr>(i)),
              static_cast<std::uint32_t>(i * 3 + 1));
  }
}

TEST(Cluster, Dma2DStridedTransfer) {
  // Copy a 4x16-byte tile out of a 64-byte-pitch source (im2row-style).
  auto cl = make_cl(1);
  const arch::Addr src = cl.global_alloc(4 * 64);
  const arch::Addr dst = cl.tcdm_alloc(4 * 16);
  for (int r = 0; r < 4; ++r) {
    for (int b = 0; b < 16; ++b) {
      cl.mem().store<std::uint8_t>(
          src + static_cast<arch::Addr>(r * 64 + b),
          static_cast<std::uint8_t>(r * 16 + b));
    }
  }
  arch::Asm a;
  a.li(5, src);
  a.li(6, dst);
  a.dma_src(5);
  a.dma_dst(6);
  a.li(7, 64);
  a.li(8, 16);
  a.dma_str(7, 8);  // src stride 64, dst stride 16
  a.li(9, 4);
  a.dma_reps(9);
  a.dma_start(10, 8);  // 16 bytes per row
  a.dma_wait();
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(cl.mem().load<std::uint8_t>(dst + static_cast<arch::Addr>(i)),
              static_cast<std::uint8_t>(i));
  }
}

TEST(Cluster, DmaBandwidthIs64BytesPerCycle) {
  auto cl = make_cl(1);
  const arch::Addr src = cl.global_alloc(64 * 1024);
  const arch::Addr dst = cl.tcdm_alloc(64 * 1024);
  arch::Asm a;
  a.li(5, src);
  a.li(6, dst);
  a.dma_src(5);
  a.dma_dst(6);
  a.li(7, 65536);
  a.dma_start(8, 7);
  a.dma_wait();
  a.halt();
  cl.load_program_on(0, a.finish());
  const auto cycles = cl.run();
  // 65536 B / 64 B/cycle = 1024 + global latency 100 + small program overhead
  EXPECT_NEAR(static_cast<double>(cycles), 1024 + 100, 40);
}

TEST(Cluster, IcacheColdMissesCostOnce) {
  auto run_loop = [](int penalty) {
    arch::ClusterConfig cfg;
    cfg.num_workers = 1;
    cfg.icache_miss_penalty = penalty;
    arch::Cluster cl(cfg);
    arch::Asm a;
    a.li(5, 0);
    a.li(6, 1000);
    a.label("loop");
    a.addi(5, 5, 1);
    a.bne(5, 6, "loop");
    a.halt();
    cl.load_program_on(0, a.finish());
    return cl.run();
  };
  const auto cold10 = run_loop(10);
  const auto cold0 = run_loop(0);
  // The whole loop fits one line: exactly one extra miss penalty expected.
  EXPECT_GE(cold10, cold0 + 9);
  EXPECT_LE(cold10, cold0 + 25);
}

TEST(Cluster, WatchdogThrowsOnDeadlock) {
  arch::ClusterConfig cfg;
  cfg.num_workers = 1;
  cfg.max_cycles = 10000;
  arch::Cluster cl(cfg);
  arch::Asm a;
  a.label("forever");
  a.j("forever");
  a.halt();
  cl.load_program_on(0, a.finish());
  EXPECT_THROW(cl.run(), spikestream::Error);
}
