// Integer pipeline, FPU sequencer and FREP semantics + first-order timing.
#include <gtest/gtest.h>

#include "arch/cluster.hpp"
#include "arch/program.hpp"

namespace arch = spikestream::arch;

namespace {

/// Single-worker cluster with icache misses disabled (pure pipeline timing).
arch::Cluster make_cl(int workers = 1) {
  arch::ClusterConfig cfg;
  cfg.num_workers = workers;
  cfg.has_dma_core = true;
  cfg.icache_miss_penalty = 0;
  return arch::Cluster(cfg);
}

}  // namespace

TEST(Core, AluAndLi) {
  auto cl = make_cl();
  arch::Asm a;
  a.li(5, 40);
  a.addi(6, 5, 2);
  a.slli(7, 6, 2);     // 42 << 2 = 168
  a.sub(8, 7, 5);      // 168 - 40 = 128
  a.andi(9, 8, 0xF0);  // 128 & 0xF0 = 128
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  EXPECT_EQ(cl.core(0).x(6), 42u);
  EXPECT_EQ(cl.core(0).x(7), 168u);
  EXPECT_EQ(cl.core(0).x(8), 128u);
  EXPECT_EQ(cl.core(0).x(9), 128u);
}

TEST(Core, X0IsHardwiredZero) {
  auto cl = make_cl();
  arch::Asm a;
  a.li(0, 99);
  a.addi(5, 0, 7);
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  EXPECT_EQ(cl.core(0).x(0), 0u);
  EXPECT_EQ(cl.core(0).x(5), 7u);
}

TEST(Core, LoadStoreWidths) {
  auto cl = make_cl();
  const arch::Addr buf = cl.tcdm_alloc(16);
  cl.mem().store<std::uint32_t>(buf, 0xDEADBEEF);
  arch::Asm a;
  a.li(5, buf);
  a.lw(6, 5, 0);
  a.lhu(7, 5, 0);   // 0xBEEF
  a.lbu(8, 5, 3);   // 0xDE
  a.lh(9, 5, 0);    // sign-extended 0xBEEF
  a.sw(6, 5, 8);
  a.sh(7, 5, 12);
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  EXPECT_EQ(cl.core(0).x(6), 0xDEADBEEFu);
  EXPECT_EQ(cl.core(0).x(7), 0xBEEFu);
  EXPECT_EQ(cl.core(0).x(8), 0xDEu);
  EXPECT_EQ(cl.core(0).x(9), 0xFFFFBEEFu);
  EXPECT_EQ(cl.mem().load<std::uint32_t>(buf + 8), 0xDEADBEEFu);
  EXPECT_EQ(cl.mem().load<std::uint16_t>(buf + 12), 0xBEEFu);
}

TEST(Core, BranchLoopComputesSum) {
  auto cl = make_cl();
  arch::Asm a;
  a.li(5, 0);   // i
  a.li(6, 0);   // sum
  a.li(7, 10);  // bound
  a.label("loop");
  a.add(6, 6, 5);
  a.addi(5, 5, 1);
  a.bne(5, 7, "loop");
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  EXPECT_EQ(cl.core(0).x(6), 45u);
}

TEST(Core, TakenBranchCostsPenalty) {
  // Loop body: add, addi, bne = 3 issues + 2 flush cycles when taken.
  auto cl = make_cl();
  arch::Asm a;
  a.li(5, 0);
  a.li(6, 0);
  a.li(7, 100);
  a.label("loop");
  a.add(6, 6, 5);
  a.addi(5, 5, 1);
  a.bne(5, 7, "loop");
  a.halt();
  cl.load_program_on(0, a.finish());
  const auto cycles = cl.run();
  // 100 iterations: 99 taken (5 cycles) + 1 not taken (3 cycles) + prologue.
  EXPECT_NEAR(static_cast<double>(cycles), 99 * 5 + 3 + 4, 3.0);
}

TEST(Core, LoadUseStallCostsOneBubble) {
  auto cl = make_cl();
  const arch::Addr buf = cl.tcdm_alloc(8);
  cl.mem().store<std::uint32_t>(buf, 5);

  // Version A: dependent use immediately after the load.
  arch::Asm a;
  a.li(5, buf);
  a.lw(6, 5, 0);
  a.addi(7, 6, 1);  // load-use: +1 bubble
  a.halt();
  cl.load_program_on(0, a.finish());
  const auto cy_dep = cl.run();

  // Version B: an independent instruction fills the bubble.
  auto cl2 = make_cl();
  const arch::Addr buf2 = cl2.tcdm_alloc(8);
  cl2.mem().store<std::uint32_t>(buf2, 5);
  arch::Asm b;
  b.li(5, buf2);
  b.lw(6, 5, 0);
  b.li(8, 0);       // independent filler
  b.addi(7, 6, 1);
  b.halt();
  cl2.load_program_on(0, b.finish());
  const auto cy_indep = cl2.run();

  EXPECT_EQ(cy_dep, cy_indep);  // filler absorbs exactly the bubble
}

TEST(Core, FpuComputesAndFenceSynchronizes) {
  auto cl = make_cl();
  const arch::Addr buf = cl.tcdm_alloc(32);
  cl.mem().store<double>(buf, 1.5);
  cl.mem().store<double>(buf + 8, 2.25);
  arch::Asm a;
  a.li(5, buf);
  a.fld(3, 5, 0);
  a.fld(4, 5, 8);
  a.fadd(5 + 0, 3, 4);   // f5 = 3.75  (note: fp reg namespace)
  a.fmul(6, 3, 4);       // f6 = 3.375
  a.fmadd(7, 3, 4);      // f7 += 1.5*2.25 = 3.375
  a.fpu_fence();
  a.fsd(5, 5, 16);
  a.fsd(6, 5, 24);
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  EXPECT_DOUBLE_EQ(cl.mem().load<double>(buf + 16), 3.75);
  EXPECT_DOUBLE_EQ(cl.mem().load<double>(buf + 24), 3.375);
  EXPECT_DOUBLE_EQ(cl.core(0).f(7), 3.375);
}

TEST(Core, AccumulationChainRunsAtAddLatency) {
  // N dependent fadds into one register: II = fadd latency (default 2).
  auto cl = make_cl();
  const arch::Addr buf = cl.tcdm_alloc(8);
  cl.mem().store<double>(buf, 1.0);
  constexpr int kN = 200;
  arch::Asm a;
  a.li(5, buf);
  a.fld(4, 5, 0);
  a.li(6, kN - 1);
  a.frep(6, 1);
  a.fadd(3, 4, 3);
  a.fpu_fence();
  a.halt();
  cl.load_program_on(0, a.finish());
  const auto cycles = cl.run();
  EXPECT_DOUBLE_EQ(cl.core(0).f(3), static_cast<double>(kN));
  EXPECT_NEAR(static_cast<double>(cycles), 2.0 * kN, 0.15 * kN);
}

TEST(Core, FrepRunsBodyExactlyRepsTimes) {
  auto cl = make_cl();
  arch::Asm a;
  a.li(5, 1);
  a.fcvt_d_w(4, 5);  // f4 = 1.0
  a.li(6, 9);        // reps-1 -> 10 reps
  a.frep(6, 2);
  a.fadd(3, 4, 3);   // +1 per rep
  a.fadd(7, 4, 7);   // +1 per rep (independent chain)
  a.fpu_fence();
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  EXPECT_DOUBLE_EQ(cl.core(0).f(3), 10.0);
  EXPECT_DOUBLE_EQ(cl.core(0).f(7), 10.0);
  EXPECT_EQ(cl.core(0).perf().fp_ops, 20u);
}

TEST(Core, FrepDecouplesIntegerPipe) {
  // While the FPU grinds a long FREP, the integer core keeps retiring.
  auto cl = make_cl();
  arch::Asm a;
  a.li(5, 1);
  a.fcvt_d_w(4, 5);
  a.li(6, 499);  // 500 reps * II 2 = ~1000 FPU cycles
  a.frep(6, 1);
  a.fadd(3, 4, 3);
  // 300 cycles of integer work that must overlap with the FREP.
  a.li(7, 0);
  a.li(8, 100);
  a.label("intloop");
  a.addi(7, 7, 1);
  a.bne(7, 8, "intloop");  // ~100 * 5 = 500 cycles
  a.fpu_fence();
  a.halt();
  cl.load_program_on(0, a.finish());
  const auto cycles = cl.run();
  // Total should be ~max(1000, 500) + small overhead, not the 1500 sum.
  EXPECT_LT(cycles, 1250u);
  EXPECT_DOUBLE_EQ(cl.core(0).f(3), 500.0);
}

TEST(Core, PerfCountersTrackInstructionMix) {
  auto cl = make_cl();
  arch::Asm a;
  a.li(5, 3);
  a.li(6, 4);
  a.add(7, 5, 6);
  a.fcvt_d_w(4, 7);
  a.fadd(3, 4, 4);
  a.fpu_fence();
  a.halt();
  cl.load_program_on(0, a.finish());
  cl.run();
  const auto& p = cl.core(0).perf();
  EXPECT_EQ(p.fp_ops, 1u);
  EXPECT_GE(p.int_instrs, 6u);
  EXPECT_GT(p.ipc(), 0.0);
  EXPECT_GT(p.fpu_utilization(), 0.0);
  EXPECT_LT(p.fpu_utilization(), 1.0);
}
