// Hierarchical NoC model contract:
//  (1) the kLegacyCeiling expression is frozen — noc_transfer_cycles is the
//      exact historical `hop_latency + bytes / shared_bw` and the engine's
//      contention gate only ever itemizes (gated == ungated + itemized);
//  (2) link-level multicast charges each link exactly once: the crossbar
//      byte sum is the (1 + receivers) * payload lower bound, and a ring
//      multicast never moves more bytes than the equivalent unicast fan-out;
//  (3) contention is monotone — more traffic or narrower links never make
//      the fabric faster, and a ring never beats a crossbar on identical
//      traffic;
//  (4) switching topology changes timing attribution only: spikes and the
//      contention on/off byte counts are unaffected.
#include <gtest/gtest.h>

#include <vector>

#include "arch/noc.hpp"
#include "common/rng.hpp"
#include "kernels/partition.hpp"
#include "runtime/engine.hpp"
#include "snn/calibrate.hpp"
#include "snn/input_gen.hpp"
#include "snn/network.hpp"

namespace rt = spikestream::runtime;
namespace k = spikestream::kernels;
namespace arch = spikestream::arch;
namespace snn = spikestream::snn;
namespace sc = spikestream::common;

namespace {

snn::Network noc_test_net() {
  snn::Network net = snn::Network::make_tiny(18, 3, 32, 10);
  sc::Rng rng(42);
  net.init_weights(rng);
  const auto calib = snn::make_batch(4, 7, 16, 16, 3);
  const std::vector<double> targets = {0.20, 0.15, 0.30};
  snn::calibrate_thresholds(net, calib, targets);
  return net;
}

rt::BackendConfig noc_cfg(arch::NocTopology topo, bool contention,
                          int clusters = 4) {
  rt::BackendConfig cfg;
  cfg.kind = rt::BackendKind::kSharded;
  cfg.clusters = clusters;
  cfg.shard_threads = false;
  cfg.partition = k::PartitionStrategy::kOutputChannel;
  cfg.noc.topology = topo;
  cfg.noc.model_contention = contention;
  return cfg;
}

arch::NocParams link_params(arch::NocTopology topo, int quadrant_size = 4) {
  arch::NocParams p;
  p.topology = topo;
  p.quadrant_size = quadrant_size;
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// Legacy ceiling: frozen expression
// ---------------------------------------------------------------------------

TEST(NocLegacy, TransferCyclesMatchHistoricalExpressionBitExact) {
  arch::NocParams p;
  for (double hop : {0.0, 12.0, 40.0}) {
    for (double bw : {1.0, 64.0, 256.0}) {
      p.hop_latency = hop;
      p.shared_bytes_per_cycle = bw;
      for (double bytes : {1.0, 37.0, 4096.0, 1e7}) {
        // The pre-link-model expression, reproduced literally.
        EXPECT_EQ(arch::noc_transfer_cycles(p, bytes), hop + bytes / bw);
      }
      EXPECT_EQ(arch::noc_transfer_cycles(p, 0.0), 0.0);
      EXPECT_EQ(arch::noc_transfer_cycles(p, -5.0), 0.0);
    }
  }
}

TEST(NocLegacy, ContentionGateOnlyItemizesNeverReprices) {
  const snn::Network net = noc_test_net();
  k::RunOptions opt;
  const rt::InferenceEngine off(
      net, opt, noc_cfg(arch::NocTopology::kLegacyCeiling, false));
  const rt::InferenceEngine on(
      net, opt, noc_cfg(arch::NocTopology::kLegacyCeiling, true));

  const auto img = snn::make_batch(1, 9, 16, 16, 3)[0];
  snn::NetworkState s0 = off.make_state();
  snn::NetworkState s1 = on.make_state();
  const auto r0 = off.run(img, s0);
  const auto r1 = on.run(img, s1);

  ASSERT_EQ(r0.layers.size(), r1.layers.size());
  for (std::size_t l = 0; l < r0.layers.size(); ++l) {
    const auto& a = r0.layers[l].stats;
    const auto& b = r1.layers[l].stats;
    // Bytes are counted identically whether or not they gate timing.
    EXPECT_DOUBLE_EQ(a.noc_bytes, b.noc_bytes) << "layer " << l;
    // The gate is pure max(): whatever it added is itemized exactly, so the
    // ungated count is always recoverable.
    EXPECT_NEAR(b.cycles - b.noc_contention_cycles, a.cycles,
                1e-9 * a.cycles + 1e-9)
        << "layer " << l;
    EXPECT_GE(b.noc_contention_cycles, 0.0);
    EXPECT_EQ(a.noc_contention_cycles, 0.0);
  }
  EXPECT_EQ(r0.final_output.v, r1.final_output.v);
}

// ---------------------------------------------------------------------------
// Link model: multicast byte conservation
// ---------------------------------------------------------------------------

TEST(NocLink, CrossbarMulticastBytesAreTheReceiverLowerBound) {
  const arch::NocParams p = link_params(arch::NocTopology::kCrossbar);
  for (int n : {2, 4, 8}) {
    arch::NocModel m(p, n);
    const double payload = 640.0;
    m.multicast(0, 0, n, payload);
    // One injection + one ejection per receiver; a crossbar has no other
    // links, so the sum is exactly (1 + receivers) * payload.
    EXPECT_DOUBLE_EQ(m.total_link_bytes(), static_cast<double>(n) * payload);
    EXPECT_DOUBLE_EQ(m.max_link_bytes(), payload);
    EXPECT_EQ(m.max_hops(), 2);
  }
  // Self-only multicast moves nothing.
  arch::NocModel self(p, 4);
  self.multicast(2, 2, 3, 123.0);
  EXPECT_DOUBLE_EQ(self.total_link_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(self.cycles(), 0.0);
}

TEST(NocLink, RingMulticastChargesEachLinkOncePerLink) {
  // One switch per cluster: an 8-switch ring, worst case for flooding.
  const arch::NocParams p = link_params(arch::NocTopology::kRingQuadrant, 1);
  const double payload = 100.0;

  arch::NocModel mc(p, 8);
  mc.multicast(0, 0, 8, payload);

  // Equivalent unicast fan-out: the same payload once per receiver.
  arch::NocModel uc(p, 8);
  for (int d = 1; d < 8; ++d) uc.unicast(0, d, payload);

  // The multicast floods each direction once (cw to quadrant 4, ccw to
  // quadrant 5): injection + 7 ejections + 4 cw + 3 ccw link traversals.
  EXPECT_DOUBLE_EQ(mc.total_link_bytes(), (1 + 7 + 4 + 3) * payload);
  // The unicast fan-out re-injects per receiver and walks overlapping ring
  // paths: strictly more bytes, identical destinations.
  EXPECT_GT(uc.total_link_bytes(), mc.total_link_bytes());
  // Both reach quadrant 4 at the farthest: same worst route.
  EXPECT_EQ(mc.max_hops(), uc.max_hops());
  // Dedup also relieves the busiest wire.
  EXPECT_LE(mc.max_link_bytes(), uc.max_link_bytes());
}

// ---------------------------------------------------------------------------
// Link model: monotonicity and topology ordering
// ---------------------------------------------------------------------------

TEST(NocLink, MoreTrafficOrNarrowerLinksNeverSpeedTheFabricUp) {
  for (auto topo : {arch::NocTopology::kCrossbar,
                    arch::NocTopology::kRingQuadrant}) {
    arch::NocParams p = link_params(topo);
    double prev = 0.0;
    for (int transfers = 0; transfers <= 6; ++transfers) {
      arch::NocModel m(p, 8);
      for (int t = 0; t < transfers; ++t) m.unicast(t % 8, (t + 3) % 8, 256.0);
      EXPECT_GE(m.cycles(), prev) << noc_topology_name(topo)
                                  << " transfers=" << transfers;
      prev = m.cycles();
    }
    // Halving link bandwidth never reduces cycles for fixed traffic.
    arch::NocParams narrow = p;
    narrow.link_bytes_per_cycle = p.link_bytes_per_cycle / 2.0;
    arch::NocModel wide_m(p, 8), narrow_m(narrow, 8);
    for (int t = 0; t < 5; ++t) {
      wide_m.unicast(t, (t + 5) % 8, 512.0);
      narrow_m.unicast(t, (t + 5) % 8, 512.0);
    }
    EXPECT_GE(narrow_m.cycles(), wide_m.cycles());
    EXPECT_DOUBLE_EQ(narrow_m.total_link_bytes(), wide_m.total_link_bytes());
  }
}

TEST(NocLink, RingNeverBeatsCrossbarOnIdenticalTraffic) {
  const arch::NocParams xb = link_params(arch::NocTopology::kCrossbar);
  const arch::NocParams ring = link_params(arch::NocTopology::kRingQuadrant);
  sc::Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    arch::NocModel mx(xb, 8), mr(ring, 8);
    for (int t = 0; t < 6; ++t) {
      const int src = static_cast<int>(rng.uniform() * 8) % 8;
      const int dst = (src + 1 + static_cast<int>(rng.uniform() * 7) % 7) % 8;
      const double bytes = 64.0 + 64.0 * t;
      mx.unicast(src, dst, bytes);
      mr.unicast(src, dst, bytes);
    }
    mx.multicast(0, 0, 8, 512.0);
    mr.multicast(0, 0, 8, 512.0);
    // The ring adds inter-quadrant links on top of the same injection and
    // ejection wires: routes get longer, bytes and serialization can only
    // grow.
    EXPECT_GE(mr.cycles(), mx.cycles()) << "trial " << trial;
    EXPECT_GE(mr.total_link_bytes(), mx.total_link_bytes());
    EXPECT_GE(mr.max_hops(), mx.max_hops());
  }
}

// ---------------------------------------------------------------------------
// Engine integration: topology changes timing attribution only
// ---------------------------------------------------------------------------

TEST(NocEngine, TopologyChangesTimingAttributionNotSpikes) {
  const snn::Network net = noc_test_net();
  k::RunOptions opt;
  const auto img = snn::make_batch(1, 9, 16, 16, 3)[0];

  std::vector<rt::InferenceResult> results;
  for (auto topo : {arch::NocTopology::kLegacyCeiling,
                    arch::NocTopology::kCrossbar,
                    arch::NocTopology::kRingQuadrant}) {
    for (bool contention : {false, true}) {
      const rt::InferenceEngine eng(net, opt, noc_cfg(topo, contention));
      snn::NetworkState st = eng.make_state();
      results.push_back(eng.run(img, st));
    }
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].final_output.v, results[i].final_output.v)
        << "variant " << i;
  }

  // Link-topology contention itemizes exactly like the legacy gate:
  // gated == ungated + noc_contention_cycles, per layer.
  for (std::size_t base : {2u, 4u}) {  // crossbar, ring (off at base, on next)
    const auto& off = results[base];
    const auto& on = results[base + 1];
    for (std::size_t l = 0; l < off.layers.size(); ++l) {
      EXPECT_NEAR(on.layers[l].stats.cycles -
                      on.layers[l].stats.noc_contention_cycles,
                  off.layers[l].stats.cycles,
                  1e-9 * off.layers[l].stats.cycles + 1e-9)
          << "variant " << base << " layer " << l;
      EXPECT_DOUBLE_EQ(off.layers[l].stats.noc_bytes,
                       on.layers[l].stats.noc_bytes);
    }
  }

  // Link topologies dedup the broadcast (bytes per link, not per receiver x
  // route): the ring records at least the crossbar's bytes, and both record
  // nonzero traffic.
  double legacy_bytes = 0, xbar_bytes = 0, ring_bytes = 0;
  for (std::size_t l = 0; l < results[0].layers.size(); ++l) {
    legacy_bytes += results[0].layers[l].stats.noc_bytes;
    xbar_bytes += results[2].layers[l].stats.noc_bytes;
    ring_bytes += results[4].layers[l].stats.noc_bytes;
  }
  EXPECT_GT(legacy_bytes, 0.0);
  EXPECT_GT(xbar_bytes, 0.0);
  EXPECT_GE(ring_bytes, xbar_bytes);
}
