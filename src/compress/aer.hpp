// Address-Event Representation, the format used by neuromorphic processors
// (e.g. Loihi's NoC and SNE): every spike carries absolute coordinates and a
// timestamp. With the paper's 16-bit fields a conv spike is (x, y, c, t) =
// 8 bytes and an FC spike is (n, t) = 4 bytes. Used as the footprint baseline
// for Fig. 3a and for property tests against the CSR codec.
#pragma once

#include <cstdint>
#include <vector>

#include "snn/tensor.hpp"

namespace spikestream::compress {

struct AerEvent {
  std::uint16_t x = 0;
  std::uint16_t y = 0;
  std::uint16_t ch = 0;
  std::uint16_t t = 0;
};

class AerEvents {
 public:
  AerEvents() = default;

  /// Encode one timestep of a binary spike map.
  static AerEvents encode(const snn::SpikeMap& dense, std::uint16_t t = 0);

  /// Reconstruct the dense map for a given timestep.
  snn::SpikeMap decode(int h, int w, int c, std::uint16_t t = 0) const;

  std::size_t count() const { return events_.size(); }
  const std::vector<AerEvent>& events() const { return events_; }

  /// Footprint with 16-bit fields. Spatial (conv) events need x, y, c, t;
  /// flat (FC) events need only the neuron id and t.
  std::size_t footprint_bytes(bool spatial = true) const {
    return events_.size() * (spatial ? 8u : 4u);
  }

  /// Footprint `nnz` events would occupy, without materializing them (the
  /// inference hot path only reports the size, never the event list).
  static std::size_t footprint_from_count(std::size_t nnz,
                                          bool spatial = true) {
    return nnz * (spatial ? 8u : 4u);
  }

 private:
  std::vector<AerEvent> events_;
};

}  // namespace spikestream::compress
