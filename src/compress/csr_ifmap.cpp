#include "compress/csr_ifmap.hpp"

#include "common/check.hpp"

namespace spikestream::compress {

CsrIfmap CsrIfmap::encode(const snn::SpikeMap& dense) {
  SPK_CHECK(dense.c <= 65536, "channel index exceeds 16-bit range");
  CsrIfmap out;
  out.h_ = dense.h;
  out.w_ = dense.w;
  out.c_ = dense.c;
  const std::size_t positions =
      static_cast<std::size_t>(dense.h) * static_cast<std::size_t>(dense.w);
  out.s_ptr_.assign(positions + 1, 0);
  out.c_idcs_.reserve(snn::spike_count(dense));

  std::size_t p = 0;
  for (int y = 0; y < dense.h; ++y) {
    for (int x = 0; x < dense.w; ++x, ++p) {
      out.s_ptr_[p] = static_cast<std::uint32_t>(out.c_idcs_.size());
      for (int ch = 0; ch < dense.c; ++ch) {
        if (dense.at(y, x, ch)) {
          out.c_idcs_.push_back(static_cast<std::uint16_t>(ch));
        }
      }
    }
  }
  out.s_ptr_[positions] = static_cast<std::uint32_t>(out.c_idcs_.size());
  return out;
}

snn::SpikeMap CsrIfmap::decode() const {
  snn::SpikeMap dense(h_, w_, c_);
  std::size_t p = 0;
  for (int y = 0; y < h_; ++y) {
    for (int x = 0; x < w_; ++x, ++p) {
      for (std::uint32_t i = s_ptr_[p]; i < s_ptr_[p + 1]; ++i) {
        dense.at(y, x, c_idcs_[i]) = 1;
      }
    }
  }
  return dense;
}

}  // namespace spikestream::compress
