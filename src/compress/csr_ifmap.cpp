#include "compress/csr_ifmap.hpp"

#include <bit>
#include <cstring>

#include "common/check.hpp"

namespace spikestream::compress {

namespace {

/// Append the channel indices of the nonzero bytes in `row[0..c)` to `out`.
/// Eight channels are tested per 64-bit word, so fully-silent channel octets
/// cost one load and one branch. Any nonzero byte counts as a spike, exactly
/// like the scalar tail (and like snn::spike_count), so a value that strays
/// from the documented 0/1 contract still encodes consistently.
inline void scan_row(const std::uint8_t* row, int c,
                     std::vector<std::uint16_t>& out) {
  int ch = 0;
  if constexpr (std::endian::native == std::endian::little) {
    constexpr std::uint64_t k7f = 0x7f7f7f7f7f7f7f7full;
    constexpr std::uint64_t k80 = 0x8080808080808080ull;
    for (; ch + 8 <= c; ch += 8) {
      std::uint64_t word;
      std::memcpy(&word, row + ch, sizeof(word));
      // Classic byte-wise nonzero test: bit 7 of each byte of `nz` is set
      // iff that byte of `word` is nonzero (no cross-byte contamination).
      std::uint64_t nz = (((word & k7f) + k7f) | word) & k80;
      while (nz != 0) {
        const int lane = std::countr_zero(nz) >> 3;
        out.push_back(static_cast<std::uint16_t>(ch + lane));
        nz &= nz - 1;
      }
    }
  }
  for (; ch < c; ++ch) {
    if (row[ch]) out.push_back(static_cast<std::uint16_t>(ch));
  }
}

}  // namespace

CsrIfmap CsrIfmap::encode(const snn::SpikeMap& dense) {
  CsrIfmap out;
  encode_into(dense, out);
  return out;
}

void CsrIfmap::encode_into(const snn::SpikeMap& dense, CsrIfmap& out) {
  SPK_CHECK(dense.c <= 65536, "channel index exceeds 16-bit range");
  out.h_ = dense.h;
  out.w_ = dense.w;
  out.c_ = dense.c;
  const std::size_t positions =
      static_cast<std::size_t>(dense.h) * static_cast<std::size_t>(dense.w);
  out.s_ptr_.resize(positions + 1);
  out.c_idcs_.clear();
  if (out.c_idcs_.capacity() == 0) {
    // First use of this buffer: one up-front reservation sized for the
    // typical sparse regime kills the doubling-realloc churn; afterwards the
    // retained capacity grows at most a handful of times, then never again.
    out.c_idcs_.reserve(dense.size() / 4 + 16);
  }
  const std::uint8_t* base = dense.v.data();
  for (std::size_t p = 0; p < positions; ++p) {
    out.s_ptr_[p] = static_cast<std::uint32_t>(out.c_idcs_.size());
    scan_row(base + p * static_cast<std::size_t>(dense.c), dense.c,
             out.c_idcs_);
  }
  out.s_ptr_[positions] = static_cast<std::uint32_t>(out.c_idcs_.size());
}

snn::SpikeMap CsrIfmap::decode() const {
  snn::SpikeMap dense(h_, w_, c_);
  std::size_t p = 0;
  for (int y = 0; y < h_; ++y) {
    for (int x = 0; x < w_; ++x, ++p) {
      for (std::uint32_t i = s_ptr_[p]; i < s_ptr_[p + 1]; ++i) {
        dense.at(y, x, c_idcs_[i]) = 1;
      }
    }
  }
  return dense;
}

}  // namespace spikestream::compress
