#include "compress/csr_ifmap.hpp"

#include "common/check.hpp"
#include "common/simd.hpp"

namespace spikestream::compress {

CsrIfmap CsrIfmap::encode(const snn::SpikeMap& dense) {
  CsrIfmap out;
  encode_into(dense, out);
  return out;
}

void CsrIfmap::encode_into(const snn::SpikeMap& dense, CsrIfmap& out) {
  SPK_CHECK(dense.c <= 65536, "channel index exceeds 16-bit range");
  out.h_ = dense.h;
  out.w_ = dense.w;
  out.c_ = dense.c;
  const std::size_t positions =
      static_cast<std::size_t>(dense.h) * static_cast<std::size_t>(dense.w);
  out.s_ptr_.resize(positions + 1);
  out.c_idcs_.clear();
  if (out.c_idcs_.capacity() == 0) {
    // First use of this buffer: one up-front reservation sized for the
    // typical sparse regime kills the doubling-realloc churn; afterwards the
    // retained capacity grows at most a handful of times, then never again.
    out.c_idcs_.reserve(dense.size() / 4 + 16);
  }
  const std::uint8_t* base = dense.v.data();
  for (std::size_t p = 0; p < positions; ++p) {
    out.s_ptr_[p] = static_cast<std::uint32_t>(out.c_idcs_.size());
    // Any nonzero byte counts as a spike (like snn::spike_count), so a value
    // that strays from the documented 0/1 contract still encodes
    // consistently. Dispatches to the widest host SIMD tier available.
    common::simd::append_nonzero_u8(
        base + p * static_cast<std::size_t>(dense.c), dense.c, 0,
        out.c_idcs_);
  }
  out.s_ptr_[positions] = static_cast<std::uint32_t>(out.c_idcs_.size());
}

snn::SpikeMap CsrIfmap::decode() const {
  snn::SpikeMap dense(h_, w_, c_);
  std::size_t p = 0;
  for (int y = 0; y < h_; ++y) {
    for (int x = 0; x < w_; ++x, ++p) {
      for (std::uint32_t i = s_ptr_[p]; i < s_ptr_[p + 1]; ++i) {
        dense.at(y, x, c_idcs_[i]) = 1;
      }
    }
  }
  return dense;
}

}  // namespace spikestream::compress
