#include "compress/aer.hpp"

namespace spikestream::compress {

AerEvents AerEvents::encode(const snn::SpikeMap& dense, std::uint16_t t) {
  AerEvents out;
  out.events_.reserve(snn::spike_count(dense));
  for (int y = 0; y < dense.h; ++y) {
    for (int x = 0; x < dense.w; ++x) {
      for (int ch = 0; ch < dense.c; ++ch) {
        if (dense.at(y, x, ch)) {
          out.events_.push_back({static_cast<std::uint16_t>(x),
                                 static_cast<std::uint16_t>(y),
                                 static_cast<std::uint16_t>(ch), t});
        }
      }
    }
  }
  return out;
}

snn::SpikeMap AerEvents::decode(int h, int w, int c, std::uint16_t t) const {
  snn::SpikeMap dense(h, w, c);
  for (const AerEvent& e : events_) {
    if (e.t == t) dense.at(e.y, e.x, e.ch) = 1;
  }
  return dense;
}

}  // namespace spikestream::compress
