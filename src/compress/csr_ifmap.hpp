// The paper's CSR-derived fiber-tree compression for binary ifmaps
// (Section III-A). Spike values are implicitly "1", so only positions are
// stored: `c_idcs` holds the channel indices of active neurons, grouped by
// spatial position in row-major order; `s_ptr` aggregates the spiking-neuron
// count per spatial position (stored as 16-bit counts, prefix-summed on the
// fly). FC layers degenerate to a single index array plus a count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "snn/tensor.hpp"

namespace spikestream::compress {

class CsrIfmap {
 public:
  CsrIfmap() = default;

  /// Compress a binary HWC spike map.
  static CsrIfmap encode(const snn::SpikeMap& dense);

  /// Compress into a caller-owned CsrIfmap, reusing its `s_ptr`/`c_idcs`
  /// buffers (capacity is retained across calls, so a warmed-up buffer
  /// encodes with zero heap allocations).
  static void encode_into(const snn::SpikeMap& dense, CsrIfmap& out);

  /// Pre-reserve for maps of up to `positions` spatial positions and
  /// `nnz_cap` spikes. With the zero-sparsity worst case of a layer's input
  /// shape, every later encode_into()/slice_rows_into() on this object is
  /// heap-allocation-free whatever occupancy the workload reaches.
  void reserve(std::size_t positions, std::size_t nnz_cap) {
    s_ptr_.reserve(positions + 1);
    c_idcs_.reserve(nnz_cap);
  }

  /// Footprint a map with `nnz` spikes over h*w positions would compress to,
  /// without materializing the encoding (the hot path only needs the size).
  static std::size_t footprint_from_count(std::size_t nnz, int h, int w,
                                          int idx_bytes = 2) {
    return nnz * static_cast<std::size_t>(idx_bytes) +
           static_cast<std::size_t>(h) * static_cast<std::size_t>(w) *
               static_cast<std::size_t>(idx_bytes);
  }

  /// Reconstruct the dense binary map (for tests / golden comparisons).
  snn::SpikeMap decode() const;

  /// Copy spatial rows [y_lo, y_hi) into a caller-owned CsrIfmap whose
  /// buffers are reused (capacity retained, zero allocations once warm).
  /// Prefix sums and channel indices are rebased so `out` is a standalone
  /// (y_hi - y_lo, w, c) map — the ifmap stripe one sharded cluster owns.
  void slice_rows_into(int y_lo, int y_hi, CsrIfmap& out) const {
    SPK_CHECK(0 <= y_lo && y_lo <= y_hi && y_hi <= h_,
              "CsrIfmap: bad row slice [" << y_lo << ", " << y_hi << ")");
    out.h_ = y_hi - y_lo;
    out.w_ = w_;
    out.c_ = c_;
    const std::size_t p_lo =
        static_cast<std::size_t>(y_lo) * static_cast<std::size_t>(w_);
    const std::size_t p_hi =
        static_cast<std::size_t>(y_hi) * static_cast<std::size_t>(w_);
    const std::uint32_t base = s_ptr_[p_lo];
    out.s_ptr_.resize(p_hi - p_lo + 1);
    for (std::size_t p = p_lo; p <= p_hi; ++p) {
      out.s_ptr_[p - p_lo] = s_ptr_[p] - base;
    }
    out.c_idcs_.assign(
        c_idcs_.begin() + static_cast<std::ptrdiff_t>(s_ptr_[p_lo]),
        c_idcs_.begin() + static_cast<std::ptrdiff_t>(s_ptr_[p_hi]));
  }

  int h() const { return h_; }
  int w() const { return w_; }
  int c() const { return c_; }
  std::size_t nnz() const { return c_idcs_.size(); }
  double density() const {
    const auto total = static_cast<double>(h_) * w_ * c_;
    return total > 0 ? static_cast<double>(nnz()) / total : 0.0;
  }

  /// Channel indices of the spikes at spatial position (y, x).
  std::span<const std::uint16_t> at(int y, int x) const {
    const std::size_t p = static_cast<std::size_t>(y) *
                              static_cast<std::size_t>(w_) +
                          static_cast<std::size_t>(x);
    return {c_idcs_.data() + s_ptr_[p],
            static_cast<std::size_t>(s_ptr_[p + 1] - s_ptr_[p])};
  }

  /// Number of spikes at spatial position (y, x) — the SpVA stream length.
  std::uint32_t stream_len(int y, int x) const {
    const std::size_t p = static_cast<std::size_t>(y) *
                              static_cast<std::size_t>(w_) +
                          static_cast<std::size_t>(x);
    return s_ptr_[p + 1] - s_ptr_[p];
  }

  const std::vector<std::uint32_t>& s_ptr() const { return s_ptr_; }
  const std::vector<std::uint16_t>& c_idcs() const { return c_idcs_; }

  /// Storage footprint in bytes with `idx_bytes`-wide indices and counts
  /// (the paper assumes 2). `s_ptr` is stored as one count per position.
  std::size_t footprint_bytes(int idx_bytes = 2) const {
    const std::size_t positions = static_cast<std::size_t>(h_) * w_;
    return nnz() * static_cast<std::size_t>(idx_bytes) +
           positions * static_cast<std::size_t>(idx_bytes);
  }

 private:
  int h_ = 0, w_ = 0, c_ = 0;
  std::vector<std::uint32_t> s_ptr_;   ///< h*w+1 prefix sums
  std::vector<std::uint16_t> c_idcs_;  ///< channel index per spike
};

}  // namespace spikestream::compress
