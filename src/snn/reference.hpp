// Golden dense reference for SNN inference. Deliberately naive (dense loops,
// no compression, no timing): the optimized kernels in src/kernels must match
// its spike outputs bit-exactly, which the integration tests verify.
#pragma once

#include <vector>

#include "snn/network.hpp"
#include "snn/tensor.hpp"

namespace spikestream::snn {

/// Per-layer tensors produced while running one timestep.
struct LayerIo {
  Tensor dense_input;    ///< encode layer only: padded HWC image
  SpikeMap spike_input;  ///< conv/FC layers: padded input spikes
  SpikeMap output;       ///< raw output spikes (before pool / pad)
  SpikeMap next_input;   ///< after pool_after + pad_next: next layer's ifmap
};

class Reference {
 public:
  explicit Reference(const Network& net);

  /// Run one timestep on a raw (unpadded) image; returns per-layer IO.
  /// Membrane state persists across calls for multi-timestep runs.
  const std::vector<LayerIo>& step(const Tensor& image);

  /// Clear membrane potentials (start of a new input sample).
  void reset();

  const Tensor& membrane(std::size_t layer) const { return membranes_[layer]; }

  // --- stateless building blocks (also used by calibration) ---------------
  static Tensor conv_currents(const SpikeMap& in_padded, const LayerWeights& w);
  static Tensor conv_currents_dense(const Tensor& in_padded,
                                    const LayerWeights& w);
  /// Scratch-buffer variant of conv_currents_dense: `out` is reshaped and
  /// overwritten (no allocation once its capacity is warm). This is the one
  /// implementation of the dense encode matmul; the encode kernel calls it
  /// too, so kernel and reference stay bit-identical by construction.
  static void conv_currents_dense_into(const Tensor& in_padded,
                                       const LayerWeights& w, Tensor& out);
  static Tensor fc_currents(const SpikeMap& in_flat, const LayerWeights& w);
  static Tensor pad_dense(const Tensor& t, int p);
  /// Scratch-buffer variant of pad_dense (engine hot path).
  static void pad_dense_into(const Tensor& t, int p, Tensor& out);
  /// Flatten an HWC spike map into a 1x1xN map (FC input).
  static SpikeMap flatten(const SpikeMap& s);

 private:
  const Network& net_;
  std::vector<Tensor> membranes_;
  std::vector<LayerIo> io_;
};

}  // namespace spikestream::snn
