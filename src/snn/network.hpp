// Network description: a sequence of layer specs plus their weights.
// Includes the S-VGG11 factory matching the ifmap shapes in the paper's
// Fig. 3a (see DESIGN.md §5) and weight quantization for FP16/FP8 runs.
#pragma once

#include <string>
#include <vector>

#include "common/float_formats.hpp"
#include "common/rng.hpp"
#include "snn/lif.hpp"
#include "snn/tensor.hpp"

namespace spikestream::snn {

enum class LayerKind {
  kEncodeConv,  ///< first layer: dense RGB input, conv-as-matmul (III-F)
  kConv,        ///< spiking conv on compressed ifmaps
  kFc,          ///< spiking fully-connected
};

struct LayerSpec {
  LayerKind kind = LayerKind::kConv;
  std::string name;
  // Spatial geometry. For convs, in_h/in_w are the padded ifmap dims; the
  // valid conv output is (in_h - k + 1) x (in_w - k + 1). FC layers use
  // in_c/out_c only (in_h = in_w = 1).
  int in_h = 1, in_w = 1, in_c = 1;
  int k = 3;
  int out_c = 1;
  bool pool_after = false;  ///< 2x2 OR-pool on the output spikes
  int pad_next = 1;         ///< zero padding applied before the next layer
  LifParams lif;

  int out_h() const { return kind == LayerKind::kFc ? 1 : in_h - k + 1; }
  int out_w() const { return kind == LayerKind::kFc ? 1 : in_w - k + 1; }
  /// Synaptic fan-in per output neuron.
  std::size_t fan_in() const {
    return kind == LayerKind::kFc
               ? static_cast<std::size_t>(in_c)
               : static_cast<std::size_t>(k) * k * static_cast<std::size_t>(in_c);
  }
};

/// Flat weight tensor for one layer, logically (kh, kw, c_in, c_out) for
/// convs and (c_in, c_out) for FC — the batched-HWC layout of Section III-C
/// (output channel innermost so SIMD lanes read contiguous words).
struct LayerWeights {
  int k = 1, in_c = 1, out_c = 1;
  std::vector<float> v;

  /// IEEE binary16 bit pattern of every element of `v`, valid iff
  /// `half_exact`. Built by quantize-time `build_half()` when every value
  /// round-trips float -> half -> float bit-exactly (always true after FP16
  /// or FP8 quantization, never for FP32): the conv/FC functional kernels
  /// then stream weight rows at half the memory traffic and convert on the
  /// fly, with results bit-identical to the float32 path.
  std::vector<std::uint16_t> half;
  bool half_exact = false;

  /// (Re)build `half` from `v`; clears it when any value does not round-trip
  /// exactly.
  void build_half();

  std::size_t index(int kh, int kw, int ci, int co) const {
    return ((static_cast<std::size_t>(kh) * static_cast<std::size_t>(k) + kw) *
                static_cast<std::size_t>(in_c) +
            static_cast<std::size_t>(ci)) *
               static_cast<std::size_t>(out_c) +
           static_cast<std::size_t>(co);
  }
  float at(int kh, int kw, int ci, int co) const {
    return v[index(kh, kw, ci, co)];
  }
};

class Network {
 public:
  void add_layer(const LayerSpec& spec);

  std::size_t num_layers() const { return layers_.size(); }
  const LayerSpec& layer(std::size_t i) const { return layers_[i]; }
  LayerSpec& layer(std::size_t i) { return layers_[i]; }
  const LayerWeights& weights(std::size_t i) const { return weights_[i]; }
  LayerWeights& weights(std::size_t i) { return weights_[i]; }

  /// He-initialize all weights (deterministic given the seed).
  void init_weights(common::Rng& rng);

  /// Round every weight to the given storage format (Section III-C batches
  /// them in SIMD words of this format).
  void quantize_weights(common::FpFormat fmt);

  /// The paper's S-VGG11 adapted to CIFAR10 (Fig. 3a shapes; DESIGN.md §5).
  static Network make_svgg11();

  /// A small 3-layer network for tests and the quickstart example.
  static Network make_tiny(int in_hw = 10, int in_c = 8, int mid_c = 16,
                           int out_n = 4);

  /// FC-heavy classifier used as the DMA spill test vehicle: a thin encode
  /// conv feeding a squeeze -> very wide -> head FC stack. The wide layer
  /// (512 -> 4096) plans large per-lane accumulator slices
  /// (co_per_tile * fb), so at batch 16-32 the segment-major schedule must
  /// park lanes and spill their partial sums through DRAM — S-VGG11 at
  /// batch 8 spills zero bytes, which is exactly what this net exists to
  /// exercise (banked-DRAM row pricing + double-buffered spill/fill).
  static Network make_wide_fc();

  /// Deep narrow conv tower used as the stage-pipeline bench vehicle: an
  /// encode layer feeding `depth` identical tiny convs (8x8 spatial, few
  /// SIMD channel groups) and a small FC head. Each layer's work is a small
  /// multiple of the fixed per-layer launch overheads (I$ warmup,
  /// activation setup), which do not shrink with cluster count — so
  /// data-parallel sharding scales poorly and the pipeline planner assigns
  /// layer ranges to cluster groups instead (S-VGG11's fat layers keep
  /// choosing data-parallel on the same cost query).
  static Network make_deep_tower(int depth = 14, int in_hw = 8,
                                 int channels = 8);

 private:
  std::vector<LayerSpec> layers_;
  std::vector<LayerWeights> weights_;
};

}  // namespace spikestream::snn
