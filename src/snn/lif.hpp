// Leaky Integrate-and-Fire neuron dynamics (Eq. 1 of the paper):
//   i_m(t)  = sum_n s_{i,n}(t) * w_n
//   v_m(t)  = v_m(t-1) * alpha + r * i_m(t) - v_rst * s_{o,m}(t)
//   s_o(t)  = 1 if v_m(t) >= v_th else 0
// With v_rst = v_th this is the usual "soft reset by subtraction".
#pragma once

#include "snn/tensor.hpp"

namespace spikestream::snn {

struct LifParams {
  float v_th = 1.0f;    ///< membrane threshold (calibrated per layer)
  float alpha = 0.9f;   ///< leak / decay factor
  float r = 1.0f;       ///< membrane resistance
  float v_rst = 1.0f;   ///< reset subtraction (kept equal to v_th)
};

/// One LIF timestep over a whole layer: integrates `current` into `membrane`
/// (updated in place) and writes the output spikes. Shapes must match.
inline SpikeMap lif_step(const LifParams& p, const Tensor& current,
                         Tensor& membrane) {
  SPK_CHECK(current.same_shape(membrane), "LIF shape mismatch");
  SpikeMap out(current.h, current.w, current.c);
  for (std::size_t i = 0; i < current.v.size(); ++i) {
    float v = membrane.v[i] * p.alpha + p.r * current.v[i];
    if (v >= p.v_th) {
      out.v[i] = 1;
      v -= p.v_rst;
    }
    membrane.v[i] = v;
  }
  return out;
}

}  // namespace spikestream::snn
