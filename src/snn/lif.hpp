// Leaky Integrate-and-Fire neuron dynamics (Eq. 1 of the paper):
//   i_m(t)  = sum_n s_{i,n}(t) * w_n
//   v_m(t)  = v_m(t-1) * alpha + r * i_m(t) - v_rst * s_{o,m}(t)
//   s_o(t)  = 1 if v_m(t) >= v_th else 0
// With v_rst = v_th this is the usual "soft reset by subtraction".
#pragma once

#include "common/simd.hpp"
#include "snn/tensor.hpp"

namespace spikestream::snn {

struct LifParams {
  float v_th = 1.0f;    ///< membrane threshold (calibrated per layer)
  float alpha = 0.9f;   ///< leak / decay factor
  float r = 1.0f;       ///< membrane resistance
  float v_rst = 1.0f;   ///< reset subtraction (kept equal to v_th)
};

/// One LIF timestep over a whole layer into a caller-owned spike buffer
/// (scratch-arena reuse, zero allocations in steady state): integrates
/// `current` into `membrane` (updated in place), writes the output spikes and
/// returns how many neurons fired. Dispatches to the widest host SIMD tier
/// available (common/simd.hpp); every tier computes v with a fused
/// mem * alpha + (r * cur), so results are bit-identical across tiers.
inline std::size_t lif_step_into(const LifParams& p, const Tensor& current,
                                 Tensor& membrane, SpikeMap& out) {
  SPK_CHECK(current.same_shape(membrane), "LIF shape mismatch");
  out.reshape(current.h, current.w, current.c);
  return common::simd::lif_step(current.v.data(), membrane.v.data(),
                                out.v.data(), current.v.size(), p.alpha, p.r,
                                p.v_th, p.v_rst);
}

/// One LIF timestep over a whole layer: integrates `current` into `membrane`
/// (updated in place) and writes the output spikes. Shapes must match.
inline SpikeMap lif_step(const LifParams& p, const Tensor& current,
                         Tensor& membrane) {
  SpikeMap out;
  lif_step_into(p, current, membrane, out);
  return out;
}

}  // namespace spikestream::snn
