// Per-sample mutable network state: one membrane-potential tensor per layer.
// Extracted from the inference engine so that execution is stateless and
// shardable — an engine (and its backend) is immutable after construction and
// can be shared across threads, while every concurrent sample owns exactly
// one NetworkState.
#pragma once

#include <vector>

#include "common/check.hpp"
#include "snn/network.hpp"
#include "snn/tensor.hpp"

namespace spikestream::snn {

class NetworkState {
 public:
  NetworkState() = default;
  explicit NetworkState(const Network& net) { reshape(net); }

  /// (Re)allocate one zeroed membrane tensor per layer, output-shaped.
  void reshape(const Network& net) {
    membranes_.clear();
    membranes_.reserve(net.num_layers());
    for (std::size_t l = 0; l < net.num_layers(); ++l) {
      const LayerSpec& s = net.layer(l);
      membranes_.emplace_back(s.out_h(), s.out_w(), s.out_c);
    }
  }

  /// Zero all membranes in place (start of a new input sample).
  void clear() {
    for (Tensor& m : membranes_) {
      std::fill(m.v.begin(), m.v.end(), 0.0f);
    }
  }

  std::size_t num_layers() const { return membranes_.size(); }

  Tensor& membrane(std::size_t l) {
    SPK_CHECK(l < membranes_.size(), "NetworkState: layer index OOB");
    return membranes_[l];
  }
  const Tensor& membrane(std::size_t l) const {
    SPK_CHECK(l < membranes_.size(), "NetworkState: layer index OOB");
    return membranes_[l];
  }

 private:
  std::vector<Tensor> membranes_;
};

}  // namespace spikestream::snn
