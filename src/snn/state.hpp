// Per-sample mutable network state: one membrane-potential tensor per layer,
// plus the scratch arenas the execution hot path runs in. Extracted from the
// inference engine so that execution is stateless and shardable — an engine
// (and its backend) is immutable after construction and can be shared across
// threads, while every concurrent sample owns exactly one NetworkState.
//
// Ownership model: the state owns all hot-path memory (membranes AND the
// per-layer LayerScratch arenas); engines/backends/kernels only borrow it for
// the duration of a run. Scratch buffers grow on first use and are reused
// afterwards, so steady-state inference allocates nothing per layer. A state
// must not be shared between concurrently-running samples.
#pragma once

#include <vector>

#include "common/check.hpp"
#include "kernels/scratch.hpp"
#include "snn/network.hpp"
#include "snn/tensor.hpp"

namespace spikestream::snn {

class NetworkState {
 public:
  NetworkState() = default;
  explicit NetworkState(const Network& net) { reshape(net); }

  /// (Re)allocate one zeroed membrane tensor per layer, output-shaped, and
  /// one (lazily grown) scratch arena per layer.
  void reshape(const Network& net) {
    membranes_.clear();
    membranes_.reserve(net.num_layers());
    for (std::size_t l = 0; l < net.num_layers(); ++l) {
      const LayerSpec& s = net.layer(l);
      membranes_.emplace_back(s.out_h(), s.out_w(), s.out_c);
    }
    scratch_.resize(net.num_layers());
  }

  /// Zero all membranes in place (start of a new input sample). Scratch
  /// arenas are left untouched: their contents are transient per layer run
  /// and keeping the capacity is the whole point.
  void clear() {
    for (Tensor& m : membranes_) {
      std::fill(m.v.begin(), m.v.end(), 0.0f);
    }
  }

  std::size_t num_layers() const { return membranes_.size(); }

  Tensor& membrane(std::size_t l) {
    SPK_CHECK(l < membranes_.size(), "NetworkState: layer index OOB");
    return membranes_[l];
  }
  const Tensor& membrane(std::size_t l) const {
    SPK_CHECK(l < membranes_.size(), "NetworkState: layer index OOB");
    return membranes_[l];
  }

  /// Borrow the scratch arena of layer `l` for one execution.
  kernels::LayerScratch& scratch(std::size_t l) {
    SPK_CHECK(l < scratch_.size(), "NetworkState: scratch index OOB");
    return scratch_[l];
  }

 private:
  std::vector<Tensor> membranes_;
  std::vector<kernels::LayerScratch> scratch_;
};

}  // namespace spikestream::snn
