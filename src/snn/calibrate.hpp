// Per-layer threshold calibration: choose each layer's v_th so its average
// output firing rate over a calibration batch matches a target profile.
//
// Because a single-timestep LIF with zero initial membrane fires exactly when
// r * i >= v_th, the threshold achieving a target rate is the corresponding
// quantile of the layer's input-current distribution — no bisection needed.
// Layers are calibrated front to back so each layer sees the spike statistics
// produced by the already-calibrated prefix (the "threshold balancing"
// technique from the ANN->SNN conversion literature).
#pragma once

#include <span>
#include <vector>

#include "snn/network.hpp"
#include "snn/tensor.hpp"

namespace spikestream::snn {

/// Target *output* firing rate per layer. The paper's Fig. 3a profile (rates
/// decrease with depth; FC layers extremely sparse) translated to outputs:
/// layer l's output rate is layer l+1's ifmap activity (before re-padding).
std::vector<double> svgg11_target_rates();

/// Target output rates for Network::make_wide_fc (the DMA spill bench
/// vehicle): moderate encode activity, sparse FC stack like the paper's
/// classifier layers.
std::vector<double> wide_fc_target_rates();

/// Target output rates for Network::make_deep_tower(depth, ...): moderate
/// encode output, a flat mid-rate through the identical tower convs (keeps
/// the pipeline stages balanced), sparse head.
std::vector<double> deep_tower_target_rates(int depth = 14);

/// Calibrate `net` thresholds in place over the calibration images.
/// Returns the achieved mean output rate per layer.
std::vector<double> calibrate_thresholds(Network& net,
                                         std::span<const Tensor> images,
                                         std::span<const double> target_rates);

}  // namespace spikestream::snn
