#include "snn/network.hpp"

#include <bit>
#include <cmath>

#include "common/check.hpp"

namespace spikestream::snn {

void Network::add_layer(const LayerSpec& spec) {
  LayerWeights w;
  w.k = spec.kind == LayerKind::kFc ? 1 : spec.k;
  w.in_c = spec.in_c;
  w.out_c = spec.out_c;
  w.v.assign(static_cast<std::size_t>(w.k) * w.k *
                 static_cast<std::size_t>(w.in_c) *
                 static_cast<std::size_t>(w.out_c),
             0.0f);
  layers_.push_back(spec);
  weights_.push_back(std::move(w));
}

void Network::init_weights(common::Rng& rng) {
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const double fan_in = static_cast<double>(layers_[l].fan_in());
    const double stddev = std::sqrt(2.0 / fan_in);
    for (float& x : weights_[l].v) {
      x = static_cast<float>(rng.normal(0.0, stddev));
    }
  }
}

void LayerWeights::build_half() {
  half.clear();
  half_exact = false;
  half.reserve(v.size());
  for (float x : v) {
    const std::uint16_t h = common::fp32_to_fp16_bits(x);
    const float back = common::fp16_bits_to_fp32(h);
    // Bit-compare so -0.0 / NaN cannot slip through an == check.
    if (std::bit_cast<std::uint32_t>(back) != std::bit_cast<std::uint32_t>(x)) {
      half.clear();
      return;
    }
    half.push_back(h);
  }
  half_exact = true;
}

void Network::quantize_weights(common::FpFormat fmt) {
  for (auto& w : weights_) {
    for (float& x : w.v) x = common::quantize(x, fmt);
    w.build_half();
  }
}

Network Network::make_svgg11() {
  Network net;
  auto conv = [&](const char* name, LayerKind kind, int in_hw, int in_c,
                  int out_c, bool pool) {
    LayerSpec s;
    s.kind = kind;
    s.name = name;
    s.in_h = s.in_w = in_hw;
    s.in_c = in_c;
    s.k = 3;
    s.out_c = out_c;
    s.pool_after = pool;
    s.pad_next = 1;
    net.add_layer(s);
  };
  // Padded ifmap shapes follow Fig. 3a exactly:
  conv("conv1", LayerKind::kEncodeConv, 34, 3, 64, false);   // 34x34x3
  conv("conv2", LayerKind::kConv, 34, 64, 128, true);        // 34x34x64
  conv("conv3", LayerKind::kConv, 18, 128, 256, false);      // 18x18x128
  conv("conv4", LayerKind::kConv, 18, 256, 256, true);       // 18x18x256
  conv("conv5", LayerKind::kConv, 10, 256, 512, false);      // 10x10x256
  conv("conv6", LayerKind::kConv, 10, 512, 512, true);       // 10x10x512
  // After conv6: 8x8 -> pool -> 4x4x512 = 8192 inputs to the classifier.
  LayerSpec fc7;
  fc7.kind = LayerKind::kFc;
  fc7.name = "fc7";
  fc7.in_c = 4 * 4 * 512;
  fc7.out_c = 1024;
  net.add_layer(fc7);
  LayerSpec fc8;
  fc8.kind = LayerKind::kFc;
  fc8.name = "fc8";
  fc8.in_c = 1024;
  fc8.out_c = 10;
  net.add_layer(fc8);
  return net;
}

Network Network::make_wide_fc() {
  Network net;
  // Thin encode conv: 34x34x3 (padded CIFAR frame) -> 32x32x16, OR-pooled to
  // 16x16x16 = 4096 flattened classifier inputs.
  LayerSpec enc;
  enc.kind = LayerKind::kEncodeConv;
  enc.name = "enc";
  enc.in_h = enc.in_w = 34;
  enc.in_c = 3;
  enc.k = 3;
  enc.out_c = 16;
  enc.pool_after = true;
  net.add_layer(enc);
  auto fc = [&](const char* name, int in_c, int out_c) {
    LayerSpec s;
    s.kind = LayerKind::kFc;
    s.name = name;
    s.in_c = in_c;
    s.out_c = out_c;
    net.add_layer(s);
  };
  fc("fc1", 16 * 16 * 16, 512);  // squeeze
  // The spill vehicle: moderate fan-in keeps the co-tile wide (the planner
  // holds co_per_tile = 2048 at FP16 / 128 KiB SPM), so each batch lane's
  // partial-sum slice is co_per_tile * fb = 4 KiB and only ~14 lanes stay
  // resident — batches of 16-32 must spill through DRAM.
  fc("fc2", 512, 4096);
  fc("fc3", 4096, 10);  // head
  return net;
}

Network Network::make_deep_tower(int depth, int in_hw, int channels) {
  SPK_CHECK(in_hw >= 5, "deep tower needs at least 5x5 inputs");
  SPK_CHECK(depth >= 1, "deep tower needs at least one conv layer");
  Network net;
  LayerSpec enc;
  enc.kind = LayerKind::kEncodeConv;
  enc.name = "enc";
  enc.in_h = enc.in_w = in_hw;
  enc.in_c = 3;
  enc.k = 3;
  enc.out_c = channels;
  enc.pad_next = 1;
  net.add_layer(enc);
  // Identical tiny convs: output re-padded to the same spatial size, so every
  // tower layer presents the same ifmap geometry — the balanced shape the
  // stage planner splits into near-equal pipeline stages.
  for (int d = 1; d <= depth; ++d) {
    LayerSpec s;
    s.kind = LayerKind::kConv;
    s.name = "conv" + std::to_string(d);
    s.in_h = s.in_w = in_hw;
    s.in_c = channels;
    s.k = 3;
    s.out_c = channels;
    s.pad_next = 1;
    net.add_layer(s);
  }
  LayerSpec head;
  head.kind = LayerKind::kFc;
  head.name = "fc";
  head.in_c = (in_hw - 2) * (in_hw - 2) * channels;
  head.out_c = 10;
  net.add_layer(head);
  return net;
}

Network Network::make_tiny(int in_hw, int in_c, int mid_c, int out_n) {
  SPK_CHECK(in_hw >= 5, "tiny network needs at least 5x5 inputs");
  Network net;
  LayerSpec l1;
  l1.kind = LayerKind::kEncodeConv;
  l1.name = "enc";
  l1.in_h = l1.in_w = in_hw;
  l1.in_c = in_c;
  l1.k = 3;
  l1.out_c = mid_c;
  net.add_layer(l1);

  LayerSpec l2;
  l2.kind = LayerKind::kConv;
  l2.name = "conv";
  l2.in_h = l2.in_w = in_hw;  // output re-padded to the same spatial size
  l2.in_c = mid_c;
  l2.k = 3;
  l2.out_c = mid_c;
  net.add_layer(l2);

  LayerSpec l3;
  l3.kind = LayerKind::kFc;
  l3.name = "fc";
  l3.in_c = (in_hw - 2) * (in_hw - 2) * mid_c;
  l3.out_c = out_n;
  net.add_layer(l3);
  return net;
}

}  // namespace spikestream::snn
