// Minimal HWC tensor containers. SNN ifmaps are binary (SpikeMap); weights,
// currents and membrane potentials are float tensors. HWC (channel-innermost)
// matches the paper's batched weight layout for SIMD over output channels.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace spikestream::snn {

template <typename T>
struct Hwc {
  int h = 0, w = 0, c = 0;
  std::vector<T> v;

  Hwc() = default;
  Hwc(int h_, int w_, int c_) : h(h_), w(w_), c(c_) {
    SPK_CHECK(h_ >= 0 && w_ >= 0 && c_ >= 0, "bad tensor shape");
    v.assign(static_cast<std::size_t>(h_) * static_cast<std::size_t>(w_) *
                 static_cast<std::size_t>(c_),
             T{});
  }

  std::size_t size() const { return v.size(); }

  std::size_t index(int y, int x, int ch) const {
    SPK_DCHECK(y >= 0 && y < h && x >= 0 && x < w && ch >= 0 && ch < c,
               "tensor index OOB");
    return (static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
            static_cast<std::size_t>(x)) *
               static_cast<std::size_t>(c) +
           static_cast<std::size_t>(ch);
  }
  T& at(int y, int x, int ch) { return v[index(y, x, ch)]; }
  const T& at(int y, int x, int ch) const { return v[index(y, x, ch)]; }

  bool same_shape(const Hwc& o) const {
    return h == o.h && w == o.w && c == o.c;
  }

  /// Reshape in place without shrinking capacity (scratch-arena reuse). Old
  /// element values are unspecified; callers overwrite the whole tensor.
  void reshape(int h_, int w_, int c_) {
    SPK_CHECK(h_ >= 0 && w_ >= 0 && c_ >= 0, "bad tensor shape");
    h = h_;
    w = w_;
    c = c_;
    v.resize(static_cast<std::size_t>(h_) * static_cast<std::size_t>(w_) *
             static_cast<std::size_t>(c_));
  }
};

using Tensor = Hwc<float>;
using SpikeMap = Hwc<std::uint8_t>;  ///< values are 0/1

/// Number of active (spiking) entries.
inline std::size_t spike_count(const SpikeMap& s) {
  std::size_t n = 0;
  for (auto b : s.v) n += (b != 0);
  return n;
}

/// Fraction of neurons that fired.
inline double firing_rate(const SpikeMap& s) {
  return s.size() ? static_cast<double>(spike_count(s)) /
                        static_cast<double>(s.size())
                  : 0.0;
}

/// Zero-pad spatially by `p` on each border into a caller-owned buffer
/// (reused capacity, zero allocations in steady state). Row bodies are copied
/// as contiguous w*c runs.
inline void pad_into(const SpikeMap& s, int p, SpikeMap& out) {
  out.reshape(s.h + 2 * p, s.w + 2 * p, s.c);
  std::fill(out.v.begin(), out.v.end(), std::uint8_t{0});
  const std::size_t row = static_cast<std::size_t>(s.w) * s.c;
  for (int y = 0; y < s.h; ++y) {
    std::copy_n(&s.v[static_cast<std::size_t>(y) * row], row,
                &out.at(y + p, p, 0));
  }
}

/// Zero-pad spatially by `p` on each border (channels unchanged).
inline SpikeMap pad(const SpikeMap& s, int p) {
  SpikeMap out;
  pad_into(s, p, out);
  return out;
}

/// 2x2 stride-2 OR-pooling into a caller-owned buffer (scratch reuse).
inline void or_pool2_into(const SpikeMap& s, SpikeMap& out) {
  out.reshape(s.h / 2, s.w / 2, s.c);
  const std::size_t row = static_cast<std::size_t>(s.w) * s.c;
  for (int y = 0; y < out.h; ++y) {
    const std::uint8_t* r0 = &s.v[static_cast<std::size_t>(2 * y) * row];
    const std::uint8_t* r1 = r0 + row;
    std::uint8_t* o = &out.v[static_cast<std::size_t>(y) * out.w * s.c];
    for (int x = 0; x < out.w; ++x) {
      const std::size_t b = static_cast<std::size_t>(2 * x) * s.c;
      for (int ch = 0; ch < s.c; ++ch) {
        o[static_cast<std::size_t>(x) * s.c + ch] =
            r0[b + ch] | r1[b + ch] | r0[b + s.c + ch] | r1[b + s.c + ch];
      }
    }
  }
}

/// 2x2 stride-2 OR-pooling on binary spikes (spiking max-pool).
inline SpikeMap or_pool2(const SpikeMap& s) {
  SpikeMap out;
  or_pool2_into(s, out);
  return out;
}

/// Reshape to a flat 1x1xN map into a caller-owned buffer (scratch reuse).
inline void flatten_into(const SpikeMap& s, SpikeMap& out) {
  out.h = 1;
  out.w = 1;
  out.c = static_cast<int>(s.size());
  out.v = s.v;  // copy-assign reuses the destination's capacity
}

}  // namespace spikestream::snn
