// Minimal HWC tensor containers. SNN ifmaps are binary (SpikeMap); weights,
// currents and membrane potentials are float tensors. HWC (channel-innermost)
// matches the paper's batched weight layout for SIMD over output channels.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace spikestream::snn {

template <typename T>
struct Hwc {
  int h = 0, w = 0, c = 0;
  std::vector<T> v;

  Hwc() = default;
  Hwc(int h_, int w_, int c_) : h(h_), w(w_), c(c_) {
    SPK_CHECK(h_ >= 0 && w_ >= 0 && c_ >= 0, "bad tensor shape");
    v.assign(static_cast<std::size_t>(h_) * static_cast<std::size_t>(w_) *
                 static_cast<std::size_t>(c_),
             T{});
  }

  std::size_t size() const { return v.size(); }

  std::size_t index(int y, int x, int ch) const {
    SPK_DCHECK(y >= 0 && y < h && x >= 0 && x < w && ch >= 0 && ch < c,
               "tensor index OOB");
    return (static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
            static_cast<std::size_t>(x)) *
               static_cast<std::size_t>(c) +
           static_cast<std::size_t>(ch);
  }
  T& at(int y, int x, int ch) { return v[index(y, x, ch)]; }
  const T& at(int y, int x, int ch) const { return v[index(y, x, ch)]; }

  bool same_shape(const Hwc& o) const {
    return h == o.h && w == o.w && c == o.c;
  }
};

using Tensor = Hwc<float>;
using SpikeMap = Hwc<std::uint8_t>;  ///< values are 0/1

/// Number of active (spiking) entries.
inline std::size_t spike_count(const SpikeMap& s) {
  std::size_t n = 0;
  for (auto b : s.v) n += (b != 0);
  return n;
}

/// Fraction of neurons that fired.
inline double firing_rate(const SpikeMap& s) {
  return s.size() ? static_cast<double>(spike_count(s)) /
                        static_cast<double>(s.size())
                  : 0.0;
}

/// Zero-pad spatially by `p` on each border (channels unchanged).
inline SpikeMap pad(const SpikeMap& s, int p) {
  SpikeMap out(s.h + 2 * p, s.w + 2 * p, s.c);
  for (int y = 0; y < s.h; ++y) {
    for (int x = 0; x < s.w; ++x) {
      for (int ch = 0; ch < s.c; ++ch) {
        out.at(y + p, x + p, ch) = s.at(y, x, ch);
      }
    }
  }
  return out;
}

/// 2x2 stride-2 OR-pooling on binary spikes (spiking max-pool).
inline SpikeMap or_pool2(const SpikeMap& s) {
  SpikeMap out(s.h / 2, s.w / 2, s.c);
  for (int y = 0; y < out.h; ++y) {
    for (int x = 0; x < out.w; ++x) {
      for (int ch = 0; ch < s.c; ++ch) {
        const std::uint8_t v = s.at(2 * y, 2 * x, ch) |
                               s.at(2 * y + 1, 2 * x, ch) |
                               s.at(2 * y, 2 * x + 1, ch) |
                               s.at(2 * y + 1, 2 * x + 1, ch);
        out.at(y, x, ch) = v;
      }
    }
  }
  return out;
}

}  // namespace spikestream::snn
