#include "snn/reference.hpp"

#include "common/check.hpp"

namespace spikestream::snn {

Reference::Reference(const Network& net) : net_(net) {
  membranes_.resize(net.num_layers());
  io_.resize(net.num_layers());
  reset();
}

void Reference::reset() {
  for (std::size_t l = 0; l < net_.num_layers(); ++l) {
    const LayerSpec& s = net_.layer(l);
    membranes_[l] = Tensor(s.out_h(), s.out_w(), s.out_c);
  }
}

Tensor Reference::conv_currents(const SpikeMap& in, const LayerWeights& w) {
  const int k = w.k;
  const int out_c = w.out_c;
  Tensor out(in.h - k + 1, in.w - k + 1, out_c);
  const float* wbase = w.v.data();
  for (int oy = 0; oy < out.h; ++oy) {
    for (int ox = 0; ox < out.w; ++ox) {
      float* __restrict__ acc = &out.at(oy, ox, 0);
      for (int kh = 0; kh < k; ++kh) {
        for (int kw = 0; kw < k; ++kw) {
          const std::uint8_t* row = &in.at(oy + kh, ox + kw, 0);
          const std::size_t base =
              (static_cast<std::size_t>(kh) * k + kw) *
              static_cast<std::size_t>(w.in_c);
          for (int ci = 0; ci < in.c; ++ci) {
            if (!row[ci]) continue;
            const float* __restrict__ wrow =
                wbase + (base + ci) * static_cast<std::size_t>(out_c);
            for (int co = 0; co < out_c; ++co) acc[co] += wrow[co];
          }
        }
      }
    }
  }
  return out;
}

Tensor Reference::conv_currents_dense(const Tensor& in, const LayerWeights& w) {
  Tensor out;
  conv_currents_dense_into(in, w, out);
  return out;
}

void Reference::conv_currents_dense_into(const Tensor& in,
                                         const LayerWeights& w, Tensor& out) {
  const int k = w.k;
  const int out_c = w.out_c;
  out.reshape(in.h - k + 1, in.w - k + 1, out_c);
  std::fill(out.v.begin(), out.v.end(), 0.0f);
  const float* wbase = w.v.data();
  for (int oy = 0; oy < out.h; ++oy) {
    for (int ox = 0; ox < out.w; ++ox) {
      float* __restrict__ acc = &out.at(oy, ox, 0);
      for (int kh = 0; kh < k; ++kh) {
        for (int kw = 0; kw < k; ++kw) {
          const float* row = &in.at(oy + kh, ox + kw, 0);
          const std::size_t base =
              (static_cast<std::size_t>(kh) * k + kw) *
              static_cast<std::size_t>(w.in_c);
          for (int ci = 0; ci < in.c; ++ci) {
            const float x = row[ci];
            if (x == 0.0f) continue;
            const float* __restrict__ wrow =
                wbase + (base + ci) * static_cast<std::size_t>(out_c);
            for (int co = 0; co < out_c; ++co) acc[co] += x * wrow[co];
          }
        }
      }
    }
  }
}

Tensor Reference::fc_currents(const SpikeMap& in, const LayerWeights& w) {
  SPK_CHECK(static_cast<int>(in.size()) == w.in_c,
            "FC input size mismatch: " << in.size() << " vs " << w.in_c);
  Tensor out(1, 1, w.out_c);
  for (int ci = 0; ci < w.in_c; ++ci) {
    if (!in.v[static_cast<std::size_t>(ci)]) continue;
    const float* wrow = &w.v[w.index(0, 0, ci, 0)];
    for (int co = 0; co < w.out_c; ++co) out.v[static_cast<std::size_t>(co)] += wrow[co];
  }
  return out;
}

Tensor Reference::pad_dense(const Tensor& t, int p) {
  Tensor out;
  pad_dense_into(t, p, out);
  return out;
}

void Reference::pad_dense_into(const Tensor& t, int p, Tensor& out) {
  out.reshape(t.h + 2 * p, t.w + 2 * p, t.c);
  std::fill(out.v.begin(), out.v.end(), 0.0f);
  const std::size_t row = static_cast<std::size_t>(t.w) * t.c;
  for (int y = 0; y < t.h; ++y) {
    std::copy_n(&t.v[static_cast<std::size_t>(y) * row], row,
                &out.at(y + p, p, 0));
  }
}

SpikeMap Reference::flatten(const SpikeMap& s) {
  SpikeMap out(1, 1, static_cast<int>(s.size()));
  out.v = s.v;
  return out;
}

const std::vector<LayerIo>& Reference::step(const Tensor& image) {
  SpikeMap carry;  // spikes flowing into the next layer
  for (std::size_t l = 0; l < net_.num_layers(); ++l) {
    const LayerSpec& spec = net_.layer(l);
    LayerIo& io = io_[l];
    Tensor currents;

    if (spec.kind == LayerKind::kEncodeConv) {
      io.dense_input = pad_dense(image, (spec.in_h - image.h) / 2);
      SPK_CHECK(io.dense_input.h == spec.in_h && io.dense_input.c == spec.in_c,
                "encode input shape mismatch");
      currents = conv_currents_dense(io.dense_input, net_.weights(l));
    } else if (spec.kind == LayerKind::kConv) {
      io.spike_input = carry;
      SPK_CHECK(io.spike_input.h == spec.in_h && io.spike_input.c == spec.in_c,
                "conv " << spec.name << " input shape mismatch");
      currents = conv_currents(io.spike_input, net_.weights(l));
    } else {
      io.spike_input = carry;
      currents = fc_currents(io.spike_input, net_.weights(l));
    }

    io.output = lif_step(spec.lif, currents, membranes_[l]);

    // Prepare the next layer's ifmap.
    SpikeMap next = io.output;
    if (spec.pool_after) next = or_pool2(next);
    if (l + 1 < net_.num_layers()) {
      if (net_.layer(l + 1).kind == LayerKind::kFc) {
        next = flatten(next);
      } else {
        next = pad(next, spec.pad_next);
      }
    }
    io.next_input = next;
    carry = std::move(next);
  }
  return io_;
}

}  // namespace spikestream::snn
