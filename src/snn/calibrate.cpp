#include "snn/calibrate.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "snn/reference.hpp"

namespace spikestream::snn {

std::vector<double> svgg11_target_rates() {
  // Output rates chosen so the resulting ifmap firing-activity profile
  // follows the paper's Fig. 3a: moderate activity after encoding, a peak in
  // the mid layers, increasing sparsity with depth, extreme sparsity in FC.
  return {0.15,   // conv1 output = conv2 ifmap activity
          0.30,   // conv2 -> conv3
          0.22,   // conv3 -> conv4
          0.18,   // conv4 -> conv5
          0.10,   // conv5 -> conv6
          0.06,   // conv6 -> fc7
          0.04,   // fc7 -> fc8
          0.10};  // fc8 output (10 classes; ~1 winner)
}

std::vector<double> wide_fc_target_rates() {
  // Same flavour as the S-VGG11 profile, on the 4-layer spill vehicle:
  // active encode output, increasingly sparse FC stack.
  return {0.25,   // enc output = fc1 ifmap activity
          0.08,   // fc1 -> fc2
          0.05,   // fc2 -> fc3
          0.10};  // fc3 output (10 classes)
}

std::vector<double> deep_tower_target_rates(int depth) {
  std::vector<double> rates;
  rates.reserve(static_cast<std::size_t>(depth) + 2);
  rates.push_back(0.25);  // enc output = conv1 ifmap activity
  for (int d = 0; d < depth; ++d) {
    // Flat mid-tower profile: identical geometry + identical rates keep the
    // per-layer service times even, so balanced stage splits exist.
    rates.push_back(0.18);
  }
  rates.push_back(0.10);  // head (10 classes; ~1 winner)
  return rates;
}

std::vector<double> calibrate_thresholds(Network& net,
                                         std::span<const Tensor> images,
                                         std::span<const double> target_rates) {
  SPK_CHECK(target_rates.size() >= net.num_layers(),
            "need one target rate per layer");
  SPK_CHECK(!images.empty(), "need at least one calibration image");

  const std::size_t n_img = images.size();
  const std::size_t n_layers = net.num_layers();
  std::vector<double> achieved(n_layers, 0.0);

  // Per-image spike map flowing into the current layer.
  std::vector<SpikeMap> carry(n_img);
  std::vector<Tensor> padded_imgs(n_img);

  for (std::size_t l = 0; l < n_layers; ++l) {
    LayerSpec& spec = net.layer(l);
    const LayerWeights& w = net.weights(l);

    // 1) Input currents for every calibration image (threshold-independent).
    std::vector<Tensor> currents(n_img);
    for (std::size_t i = 0; i < n_img; ++i) {
      if (spec.kind == LayerKind::kEncodeConv) {
        padded_imgs[i] =
            Reference::pad_dense(images[i], (spec.in_h - images[i].h) / 2);
        currents[i] = Reference::conv_currents_dense(padded_imgs[i], w);
      } else if (spec.kind == LayerKind::kConv) {
        currents[i] = Reference::conv_currents(carry[i], w);
      } else {
        currents[i] = Reference::fc_currents(carry[i], w);
      }
    }

    // 2) v_th = (1 - target)-quantile of the pooled current distribution.
    std::vector<float> pool;
    for (const auto& t : currents) pool.insert(pool.end(), t.v.begin(), t.v.end());
    std::sort(pool.begin(), pool.end());
    const double target = target_rates[l];
    auto qi = static_cast<std::size_t>(
        std::clamp((1.0 - target) * static_cast<double>(pool.size()),
                   0.0, static_cast<double>(pool.size() - 1)));
    float vth = pool[qi];
    if (vth <= 0.0f) vth = 1e-3f;  // keep thresholds positive
    spec.lif.v_th = vth;
    spec.lif.v_rst = vth;

    // 3) Fire with the chosen threshold and prepare the next layer's inputs.
    std::size_t spikes = 0, total = 0;
    for (std::size_t i = 0; i < n_img; ++i) {
      Tensor membrane(currents[i].h, currents[i].w, currents[i].c);
      SpikeMap out = lif_step(spec.lif, currents[i], membrane);
      spikes += spike_count(out);
      total += out.size();
      if (spec.pool_after) out = or_pool2(out);
      if (l + 1 < n_layers) {
        if (net.layer(l + 1).kind == LayerKind::kFc) {
          out = Reference::flatten(out);
        } else {
          out = pad(out, spec.pad_next);
        }
      }
      carry[i] = std::move(out);
    }
    achieved[l] = total ? static_cast<double>(spikes) / static_cast<double>(total)
                        : 0.0;
  }
  return achieved;
}

}  // namespace spikestream::snn
