// Synthetic CIFAR-like input images: smooth random fields in [0, 1].
// We do not have the CIFAR10 dataset in this environment; what the paper's
// performance results depend on is the per-layer firing statistics, which
// threshold calibration (snn/calibrate.hpp) pins to the paper's profile.
// Smooth multi-frequency fields give realistic image-to-image variance,
// which produces the batch standard deviations the paper reports.
#pragma once

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "snn/tensor.hpp"

namespace spikestream::snn {

/// One h x w x c image with values in [0, 1].
inline Tensor make_image(common::Rng& rng, int h = 32, int w = 32, int c = 3) {
  Tensor img(h, w, c);
  constexpr int kModes = 5;
  for (int ch = 0; ch < c; ++ch) {
    double fx[kModes], fy[kModes], ph[kModes], amp[kModes];
    for (int m = 0; m < kModes; ++m) {
      fx[m] = rng.uniform(0.3, 4.0) / w;
      fy[m] = rng.uniform(0.3, 4.0) / h;
      ph[m] = rng.uniform(0.0, 6.283185307179586);
      amp[m] = rng.uniform(0.3, 1.0);
    }
    float lo = 1e30f, hi = -1e30f;
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        double v = 0.0;
        for (int m = 0; m < kModes; ++m) {
          v += amp[m] * std::cos(6.283185307179586 * (fx[m] * x + fy[m] * y) +
                                 ph[m]);
        }
        v += 0.15 * rng.normal();  // sensor-like noise
        const auto f = static_cast<float>(v);
        img.at(y, x, ch) = f;
        lo = std::min(lo, f);
        hi = std::max(hi, f);
      }
    }
    const float span = hi - lo > 1e-9f ? hi - lo : 1.0f;
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        img.at(y, x, ch) = (img.at(y, x, ch) - lo) / span;
      }
    }
  }
  return img;
}

/// A batch of images with a deterministic per-image seed.
inline std::vector<Tensor> make_batch(std::size_t n, std::uint64_t seed = 7,
                                      int h = 32, int w = 32, int c = 3) {
  std::vector<Tensor> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    common::Rng rng(seed * 1000003ull + i);
    out.push_back(make_image(rng, h, w, c));
  }
  return out;
}

}  // namespace spikestream::snn
