// First-order analytical models of the state-of-the-art neuromorphic
// processors the paper compares against (Section IV-C / Fig. 5). Each chip is
// characterized by its published peak synaptic-operation throughput, an
// effective utilization on the S-VGG11 layer-6 workload (derived from the
// measurements reported in Yang et al. [17], the paper's data source), and a
// per-SOP energy from its publication. The harness drives all models with the
// same SOP count our kernels execute, so the comparison is workload-matched.
#pragma once

#include <string>
#include <vector>

namespace spikestream::soa {

struct AccelSpec {
  std::string name;
  double peak_gsop = 0;     ///< giga synaptic ops / s (publication)
  double utilization = 0;   ///< effective fraction of peak on this workload
  double pj_per_sop = 0;    ///< energy per synaptic operation
  double tech_nm = 0;       ///< process node (Fig. 5 secondary axis)
  int weight_bits = 0;      ///< native arithmetic precision

  double latency_ms(double sops) const {
    return sops / (peak_gsop * 1e9 * utilization) * 1e3;
  }
  double energy_mj(double sops) const { return sops * pj_per_sop * 1e-9; }
};

/// The four accelerators of Fig. 5, in the paper's order.
inline std::vector<AccelSpec> soa_accelerators() {
  // pj_per_sop values are *workload-effective* energies per synaptic op on
  // the S-VGG11 layer-6 task as implied by [17]'s measurements (they exceed
  // the chips' datasheet best-case numbers, e.g. ODIN's 12.7 pJ/SOP, because
  // event routing, scheduling and memory overheads are included).
  return {
      // Loihi: 37.5 GSOP peak, 14 nm, 1-64 bit (Davies et al.).
      {"Loihi", 37.5, 0.31, 45.0, 14.0, 8},
      // ODIN: 0.038 GSOP, 28 nm, 4 bit (Frenkel et al.).
      {"ODIN", 0.038, 0.80, 48.0, 28.0, 4},
      // LSMCore: 400 GSOP, 40 nm, 4 bit; fastest and most energy-efficient
      // of the four on this workload per [17].
      {"LSMCore", 400.0, 0.33, 32.0, 40.0, 4},
      // NeuroRVcore: 128 GSOP, 28 nm, 4 bit (Yang et al.).
      {"NeuroRVcore", 128.0, 0.20, 38.0, 28.0, 4},
  };
}

}  // namespace spikestream::soa
