// The Fig. 5 experiment: the 6th layer of S-VGG11 (10x10x512 -> 8x8x512,
// k=3) executed for 500 timesteps, on our cluster (baseline FP16,
// SpikeStream FP16, SpikeStream FP8) and on the analytical SoA models, all
// driven by the same synaptic-operation count.
#pragma once

#include <string>
#include <vector>

#include "arch/energy.hpp"
#include "common/float_formats.hpp"
#include "kernels/layer_kernels.hpp"

namespace spikestream::soa {

struct Layer6Result {
  std::string name;
  double latency_ms = 0;
  double energy_mj = 0;
  double peak_gsop = 0;   ///< 0 for our software variants (uses FPU peak)
  double tech_nm = 0;
};

struct Layer6Workload {
  double sops = 0;          ///< synaptic operations over all timesteps
  double avg_in_rate = 0;   ///< measured ifmap activity
};

/// Run our cluster on the layer-6 workload. Returns (latency, energy) and
/// fills `wl` with the SOP count that also drives the SoA models.
Layer6Result run_ours_layer6(kernels::Variant variant, common::FpFormat fmt,
                             int timesteps, double in_rate,
                             const arch::EnergyParams& energy,
                             Layer6Workload* wl, std::uint64_t seed = 42);

/// Full Fig. 5 table: our three variants + the four SoA accelerators.
std::vector<Layer6Result> layer6_comparison(int timesteps, double in_rate,
                                            const arch::EnergyParams& energy,
                                            std::uint64_t seed = 42);

}  // namespace spikestream::soa
