#include "soa/comparison.hpp"

#include "common/rng.hpp"
#include "compress/csr_ifmap.hpp"
#include "snn/network.hpp"
#include "soa/accel_models.hpp"

namespace spikestream::soa {

namespace {

/// The 6th S-VGG11 layer (Fig. 3a: ifmap 10x10x512, 3x3, 512 filters).
snn::LayerSpec layer6_spec() {
  snn::LayerSpec s;
  s.kind = snn::LayerKind::kConv;
  s.name = "conv6";
  s.in_h = s.in_w = 10;
  s.in_c = 512;
  s.k = 3;
  s.out_c = 512;
  return s;
}

}  // namespace

Layer6Result run_ours_layer6(kernels::Variant variant, common::FpFormat fmt,
                             int timesteps, double in_rate,
                             const arch::EnergyParams& energy,
                             Layer6Workload* wl, std::uint64_t seed) {
  const snn::LayerSpec spec = layer6_spec();
  snn::Network net;
  net.add_layer(spec);
  common::Rng rng(seed);
  net.init_weights(rng);
  net.quantize_weights(fmt);
  // Threshold for a plausible output rate; irrelevant to the comparison
  // (the SOP count is fixed by the *input* spikes).
  net.layer(0).lif.v_th = 0.8f;
  net.layer(0).lif.v_rst = 0.8f;

  kernels::RunOptions opt;
  opt.variant = variant;
  opt.fmt = fmt;

  snn::Tensor membrane(spec.out_h(), spec.out_w(), spec.out_c);
  Layer6Result res;
  res.name = std::string("ours ") + kernels::variant_name(variant) + " " +
             common::fp_name(fmt);
  res.tech_nm = 12.0;  // GF12LP+

  double sops = 0, rate_acc = 0;
  const int simd = common::simd_lanes(fmt);
  for (int t = 0; t < timesteps; ++t) {
    // Fresh Bernoulli input spikes each timestep (interior only: the border
    // is padding and never fires).
    snn::SpikeMap in(spec.in_h, spec.in_w, spec.in_c);
    for (int y = 1; y < spec.in_h - 1; ++y) {
      for (int x = 1; x < spec.in_w - 1; ++x) {
        for (int c = 0; c < spec.in_c; ++c) {
          in.at(y, x, c) = rng.bernoulli(in_rate) ? 1 : 0;
        }
      }
    }
    rate_acc += snn::firing_rate(in);
    const compress::CsrIfmap csr = compress::CsrIfmap::encode(in);
    kernels::LayerRun lr =
        kernels::run_conv_layer(spec, net.weights(0), csr, membrane, opt);
    res.latency_ms += lr.stats.cycles / energy.freq_hz * 1e3;
    res.energy_mj +=
        arch::compute_energy(energy, lr.stats.to_activity(), fmt).total_mj();
    sops += lr.stats.fpu_ops * simd;  // one SOP per weight lane accumulated
  }
  if (wl != nullptr) {
    wl->sops = sops;
    wl->avg_in_rate = rate_acc / timesteps;
  }
  return res;
}

std::vector<Layer6Result> layer6_comparison(int timesteps, double in_rate,
                                            const arch::EnergyParams& energy,
                                            std::uint64_t seed) {
  std::vector<Layer6Result> out;
  Layer6Workload wl;
  out.push_back(run_ours_layer6(kernels::Variant::kBaseline,
                                common::FpFormat::FP16, timesteps, in_rate,
                                energy, &wl, seed));
  out.push_back(run_ours_layer6(kernels::Variant::kSpikeStream,
                                common::FpFormat::FP16, timesteps, in_rate,
                                energy, nullptr, seed));
  out.push_back(run_ours_layer6(kernels::Variant::kSpikeStream,
                                common::FpFormat::FP8, timesteps, in_rate,
                                energy, nullptr, seed));
  for (const AccelSpec& a : soa_accelerators()) {
    Layer6Result r;
    r.name = a.name;
    r.latency_ms = a.latency_ms(wl.sops);
    r.energy_mj = a.energy_mj(wl.sops);
    r.peak_gsop = a.peak_gsop;
    r.tech_nm = a.tech_nm;
    out.push_back(r);
  }
  return out;
}

}  // namespace spikestream::soa
