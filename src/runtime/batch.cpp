#include "runtime/batch.hpp"

#include <algorithm>
#include <span>
#include <thread>

#include "runtime/worker_pool.hpp"

namespace spikestream::runtime {

BatchRunner::BatchRunner(const snn::Network& net,
                         const kernels::RunOptions& opt,
                         const BackendConfig& backend,
                         const arch::EnergyParams& energy, int workers)
    : engine_(net, opt, backend, energy),
      workers_(WorkerPool::clamp_to_hardware(
          workers > 0
              ? workers
              : static_cast<int>(std::thread::hardware_concurrency()))),
      pool_(engine_.worker_pool()) {
  // Sample fan-out and shard fan-out share one set of threads, so batch
  // workers can no longer oversubscribe the host whatever the backend; when
  // the engine's backend never threads, the runner brings its own pool.
  if (pool_ == nullptr && workers_ > 1) {
    pool_ = std::make_shared<WorkerPool>(workers_ - 1);
  }
}

BatchRunner::~BatchRunner() = default;

void BatchRunner::for_samples(
    std::size_t n,
    common::FunctionRef<void(std::size_t, std::size_t)> fn) const {
  const std::size_t slots =
      std::min<std::size_t>(static_cast<std::size_t>(workers_), n);
  if (slots <= 1 || pool_ == nullptr) {
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  pool_->parallel_for(n, slots, fn);
}

// Each worker slot keeps one NetworkState for the whole batch: membranes are
// cleared between samples (run_timesteps / run_event_stream do that, the
// single-step path clears explicitly) while the scratch arenas inside stay
// warm, so every sample after the first runs allocation-free.

std::vector<snn::NetworkState> BatchRunner::worker_states(
    std::size_t n_samples) const {
  // Must match for_samples(): slot indices run in [0, min(workers_, n)).
  std::vector<snn::NetworkState> states(
      std::min<std::size_t>(static_cast<std::size_t>(workers_),
                            std::max<std::size_t>(n_samples, 1)));
  for (auto& s : states) s = engine_.make_state();
  return states;
}

std::vector<MultiStepResult> BatchRunner::run(
    const std::vector<snn::Tensor>& images, int timesteps) const {
  if (lockstep()) return run_lockstep(images, timesteps);
  std::vector<MultiStepResult> results(images.size());
  std::vector<snn::NetworkState> states = worker_states(images.size());
  for_samples(images.size(), [&](std::size_t worker, std::size_t i) {
    results[i] = run_timesteps(engine_, states[worker], images[i], timesteps);
  });
  return results;
}

// --- segment-major lockstep waves -------------------------------------------
// Wave lanes own one NetworkState each; all lanes advance through the same
// layer together so segmented FC layers execute as one batch-scope call.

bool BatchRunner::lockstep() const {
  return engine_.options().segment_major_lanes > 1;
}

std::size_t BatchRunner::wave_width(std::size_t n) const {
  return std::min<std::size_t>(
      std::max<std::size_t>(n, 1),
      static_cast<std::size_t>(engine_.options().segment_major_lanes));
}

std::vector<MultiStepResult> BatchRunner::run_lockstep(
    const std::vector<snn::Tensor>& images, int timesteps) const {
  const std::size_t n = images.size();
  const std::size_t layers = engine_.network().num_layers();
  std::vector<MultiStepResult> results(n);
  for (MultiStepResult& r : results) r.timesteps = timesteps;
  if (n == 0 || timesteps <= 0 || layers == 0) return results;

  const std::size_t W = wave_width(n);
  std::vector<snn::NetworkState> states(W);
  for (auto& s : states) s = engine_.make_state();
  std::vector<InferenceResult> steps(W);  // per-lane timestep accumulator
  std::vector<InferenceEngine::BatchLane> lanes(W);
  WorkerPool* pool = pool_.get();
  for (std::size_t w0 = 0; w0 < n; w0 += W) {
    const std::size_t wn = std::min(W, n - w0);
    for (std::size_t i = 0; i < wn; ++i) states[i].clear();
    for (int t = 0; t < timesteps; ++t) {
      for (std::size_t i = 0; i < wn; ++i) {
        engine_.begin_sample(steps[i]);
        lanes[i] = {&images[w0 + i], nullptr, &states[i], &steps[i]};
      }
      for (std::size_t l = 0; l < layers; ++l) {
        engine_.run_layer_batch(l, std::span(lanes.data(), wn), pool);
      }
      for (std::size_t i = 0; i < wn; ++i) {
        results[w0 + i].accumulate_step(steps[i]);
      }
    }
  }
  return results;
}

std::vector<InferenceResult> BatchRunner::run_single_step_lockstep(
    const std::vector<snn::Tensor>& images) const {
  const std::size_t n = images.size();
  const std::size_t layers = engine_.network().num_layers();
  std::vector<InferenceResult> results(n);
  if (n == 0 || layers == 0) return results;

  const std::size_t W = wave_width(n);
  std::vector<snn::NetworkState> states(W);
  for (auto& s : states) s = engine_.make_state();
  std::vector<InferenceEngine::BatchLane> lanes(W);
  WorkerPool* pool = pool_.get();
  for (std::size_t w0 = 0; w0 < n; w0 += W) {
    const std::size_t wn = std::min(W, n - w0);
    for (std::size_t i = 0; i < wn; ++i) {
      states[i].clear();
      engine_.begin_sample(results[w0 + i]);
      lanes[i] = {&images[w0 + i], nullptr, &states[i], &results[w0 + i]};
    }
    for (std::size_t l = 0; l < layers; ++l) {
      engine_.run_layer_batch(l, std::span(lanes.data(), wn), pool);
    }
  }
  return results;
}

std::vector<MultiStepResult> BatchRunner::run_events(
    const std::vector<std::vector<snn::SpikeMap>>& streams) const {
  std::vector<MultiStepResult> results(streams.size());
  std::vector<snn::NetworkState> states = worker_states(streams.size());
  for_samples(streams.size(), [&](std::size_t worker, std::size_t i) {
    results[i] = run_event_stream(engine_, states[worker], streams[i]);
  });
  return results;
}

std::vector<InferenceResult> BatchRunner::run_single_step(
    const std::vector<snn::Tensor>& images) const {
  if (lockstep()) return run_single_step_lockstep(images);
  std::vector<InferenceResult> results(images.size());
  std::vector<snn::NetworkState> states = worker_states(images.size());
  for_samples(images.size(), [&](std::size_t worker, std::size_t i) {
    states[worker].clear();
    engine_.run(images[i], states[worker], results[i]);
  });
  return results;
}

}  // namespace spikestream::runtime
