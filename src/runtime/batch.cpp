#include "runtime/batch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <functional>
#include <thread>

namespace spikestream::runtime {

namespace {

/// Default worker count: fill the machine, but when the backend itself
/// spawns one thread per simulated cluster, divide by that fan-out so
/// samples x shards does not oversubscribe the host.
int default_workers(const BackendConfig& backend) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (backend.kind == BackendKind::kSharded && backend.shard_threads) {
    return std::max(1, static_cast<int>(hw) / std::max(1, backend.clusters));
  }
  return static_cast<int>(hw);
}

}  // namespace

BatchRunner::BatchRunner(const snn::Network& net,
                         const kernels::RunOptions& opt,
                         const BackendConfig& backend,
                         const arch::EnergyParams& energy, int workers)
    : engine_(net, opt, backend, energy),
      workers_(workers > 0 ? workers : default_workers(backend)) {}

void BatchRunner::for_samples(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  const std::size_t w =
      std::min<std::size_t>(static_cast<std::size_t>(workers_), n);
  if (w <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(w);
  std::vector<std::thread> pool;
  pool.reserve(w);
  for (std::size_t t = 0; t < w; ++t) {
    pool.emplace_back([&, t] {
      try {
        for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
          fn(i);
        }
      } catch (...) {
        errors[t] = std::current_exception();
      }
    });
  }
  for (auto& th : pool) th.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::vector<MultiStepResult> BatchRunner::run(
    const std::vector<snn::Tensor>& images, int timesteps) const {
  std::vector<MultiStepResult> results(images.size());
  for_samples(images.size(), [&](std::size_t i) {
    snn::NetworkState state = engine_.make_state();
    results[i] = run_timesteps(engine_, state, images[i], timesteps);
  });
  return results;
}

std::vector<MultiStepResult> BatchRunner::run_events(
    const std::vector<std::vector<snn::SpikeMap>>& streams) const {
  std::vector<MultiStepResult> results(streams.size());
  for_samples(streams.size(), [&](std::size_t i) {
    snn::NetworkState state = engine_.make_state();
    results[i] = run_event_stream(engine_, state, streams[i]);
  });
  return results;
}

std::vector<InferenceResult> BatchRunner::run_single_step(
    const std::vector<snn::Tensor>& images) const {
  std::vector<InferenceResult> results(images.size());
  for_samples(images.size(), [&](std::size_t i) {
    snn::NetworkState state = engine_.make_state();
    results[i] = engine_.run(images[i], state);
  });
  return results;
}

}  // namespace spikestream::runtime
