#include "runtime/batch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <functional>
#include <thread>

namespace spikestream::runtime {

namespace {

/// Default worker count: fill the machine, but when the backend itself
/// spawns one thread per simulated cluster, divide by that fan-out so
/// samples x shards does not oversubscribe the host.
int default_workers(const BackendConfig& backend) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (backend.kind == BackendKind::kSharded && backend.shard_threads) {
    return std::max(1, static_cast<int>(hw) / std::max(1, backend.clusters));
  }
  return static_cast<int>(hw);
}

}  // namespace

BatchRunner::BatchRunner(const snn::Network& net,
                         const kernels::RunOptions& opt,
                         const BackendConfig& backend,
                         const arch::EnergyParams& energy, int workers)
    : engine_(net, opt, backend, energy),
      workers_(workers > 0 ? workers : default_workers(backend)) {}

void BatchRunner::for_samples(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& fn) const {
  const std::size_t w =
      std::min<std::size_t>(static_cast<std::size_t>(workers_), n);
  if (w <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(w);
  std::vector<std::thread> pool;
  pool.reserve(w);
  for (std::size_t t = 0; t < w; ++t) {
    pool.emplace_back([&, t] {
      try {
        for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
          fn(t, i);
        }
      } catch (...) {
        errors[t] = std::current_exception();
      }
    });
  }
  for (auto& th : pool) th.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

// Each worker keeps one NetworkState for the whole batch: membranes are
// cleared between samples (run_timesteps / run_event_stream do that, the
// single-step path clears explicitly) while the scratch arenas inside stay
// warm, so every sample after the first runs allocation-free.

std::vector<snn::NetworkState> BatchRunner::worker_states(
    std::size_t n_samples) const {
  // Must match for_samples(): worker indices run in [0, min(workers_, n)).
  std::vector<snn::NetworkState> states(
      std::min<std::size_t>(static_cast<std::size_t>(workers_),
                            std::max<std::size_t>(n_samples, 1)));
  for (auto& s : states) s = engine_.make_state();
  return states;
}

std::vector<MultiStepResult> BatchRunner::run(
    const std::vector<snn::Tensor>& images, int timesteps) const {
  std::vector<MultiStepResult> results(images.size());
  std::vector<snn::NetworkState> states = worker_states(images.size());
  for_samples(images.size(), [&](std::size_t worker, std::size_t i) {
    results[i] = run_timesteps(engine_, states[worker], images[i], timesteps);
  });
  return results;
}

std::vector<MultiStepResult> BatchRunner::run_events(
    const std::vector<std::vector<snn::SpikeMap>>& streams) const {
  std::vector<MultiStepResult> results(streams.size());
  std::vector<snn::NetworkState> states = worker_states(streams.size());
  for_samples(streams.size(), [&](std::size_t worker, std::size_t i) {
    results[i] = run_event_stream(engine_, states[worker], streams[i]);
  });
  return results;
}

std::vector<InferenceResult> BatchRunner::run_single_step(
    const std::vector<snn::Tensor>& images) const {
  std::vector<InferenceResult> results(images.size());
  std::vector<snn::NetworkState> states = worker_states(images.size());
  for_samples(images.size(), [&](std::size_t worker, std::size_t i) {
    states[worker].clear();
    engine_.run(images[i], states[worker], results[i]);
  });
  return results;
}

}  // namespace spikestream::runtime
