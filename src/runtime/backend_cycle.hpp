// ISS-calibrated backend: functional results come from the analytical path
// (so spikes stay bit-identical across backends), but each layer's compute
// time is re-anchored against the cycle-level `arch::Cluster` simulator.
//
// Per layer we derive the mean SpVA stream length (conv/FC) or the dense dot
// length (encode), replay a representative sequence of the paper's inner
// loops on a fresh single-core cluster (kernels/iss_kernels), and scale the
// analytical compute-critical-path by measured/modeled. This promotes the
// model-vs-ISS cross-validation of tests/test_model_vs_iss.cpp from a test
// into an execution mode; calibration runs are cached by (loop kind, bucketed
// length) so a full network costs only a handful of ISS invocations.
#pragma once

#include <array>
#include <mutex>

#include "runtime/backend.hpp"

namespace spikestream::runtime {

class CycleAccurateBackend : public AnalyticalBackend {
 public:
  explicit CycleAccurateBackend(const kernels::RunOptions& opt,
                                int sample_spvas = 32,
                                bool memoize_cost = false);

  const char* name() const override { return "cycle-accurate"; }

  /// Pre-calibrates the full logarithmic bucket grid of every ratio kind the
  /// configured variant can request (~50 ISS runs per kind, once per
  /// engine). Steady-state execution then never calibrates — and therefore
  /// never allocates — whatever occupancy trajectory the workload follows.
  void prepare(const snn::Network& net) const override;

  const kernels::LayerRun& run_encode(
      const snn::LayerSpec& spec, const snn::LayerWeights& weights,
      const snn::Tensor& padded_image, snn::Tensor& membrane,
      kernels::LayerScratch& scratch) const override;
  const kernels::LayerRun& run_conv(const snn::LayerSpec& spec,
                                    const snn::LayerWeights& weights,
                                    const compress::CsrIfmap& ifmap,
                                    snn::Tensor& membrane,
                                    kernels::LayerScratch& scratch)
      const override;
  // run_fc and run_fc_batch are inherited from AnalyticalBackend: both
  // funnel into the virtual time_fc tail below, which appends the ISS
  // re-anchoring — so batch-scope segment-major execution stays calibrated
  // through the same single code path as the per-sample one.

  using ExecutionBackend::run_conv;
  using ExecutionBackend::run_encode;
  using ExecutionBackend::run_fc;

  /// Measured/modeled cycle ratio for sparse SpVAs of mean length `len`
  /// (exposed for tests; cached, thread-safe).
  double sparse_ratio(double len) const;
  /// Same for the dense encode dot product of length `len`.
  double dense_ratio(double len) const;
  /// Same for the kDenseNoTc ablation's per-window dense stream of `len`
  /// elements (affine weight + activation streams, single accumulator).
  double dense_no_tc_ratio(double len) const;
  /// Same for the baseline encode layer's 2x-unrolled scalar dot of `len`.
  double baseline_dense_ratio(double len) const;

 protected:
  /// Analytical FC timing (memo included) + ISS re-anchoring of the compute
  /// critical path — the tail run_fc and run_fc_batch both call.
  void time_fc(const snn::LayerSpec& spec, const compress::CsrIfmap& ifmap,
               kernels::LayerScratch& scratch) const override;

 private:
  // Bucket-index twins of the public ratio lookups: prepare() iterates the
  // grid by index (several low indices share a rounded representative
  // length, so a length-driven warmup would leave slots cold).
  double sparse_ratio_bucket(std::size_t idx) const;
  double dense_ratio_bucket(std::size_t idx) const;
  double dense_no_tc_ratio_bucket(std::size_t idx) const;
  double baseline_dense_ratio_bucket(std::size_t idx) const;

  /// Rescale the compute critical path of `run` by `ratio`, keeping the
  /// DMA timeline and re-deriving the overlapped wall-clock cycles.
  void retime(kernels::LayerRun& run, double ratio) const;

  int sample_spvas_;
  mutable std::mutex mu_;
  /// Fixed-capacity ratio caches indexed by logarithmic length bucket
  /// (~12% granularity, 6 buckets per octave), < 0 = not yet calibrated.
  /// The former integer-rounded buckets made steady state churn: mean
  /// stream lengths jitter by ±1 between timesteps, so every timestep
  /// calibrated a "new" bucket — ISS runs plus heap allocations (the 40
  /// allocs/layer this backend used to show) forever. The log grid absorbs
  /// that jitter, is small enough to exhaust (≤ ~50 entries per kind, array
  /// storage, no node allocations), and keeps the ratio a pure function of
  /// the requested length — cycle counts stay independent of execution
  /// order, which the pipelined executor's parity tests rely on.
  static constexpr std::size_t kSparseBuckets = 49;  ///< lengths 1..256
  static constexpr std::size_t kDenseBuckets = 55;   ///< lengths 8..4096
  using SparseCache = std::array<double, kSparseBuckets>;
  using DenseCache = std::array<double, kDenseBuckets>;
  mutable SparseCache sparse_cache_;
  mutable DenseCache dense_cache_;
  mutable DenseCache dense_no_tc_cache_;
  mutable DenseCache baseline_dense_cache_;
};

}  // namespace spikestream::runtime
