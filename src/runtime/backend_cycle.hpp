// ISS-calibrated backend: functional results come from the analytical path
// (so spikes stay bit-identical across backends), but each layer's compute
// time is re-anchored against the cycle-level `arch::Cluster` simulator.
//
// Per layer we derive the mean SpVA stream length (conv/FC) or the dense dot
// length (encode), replay a representative sequence of the paper's inner
// loops on a fresh single-core cluster (kernels/iss_kernels), and scale the
// analytical compute-critical-path by measured/modeled. This promotes the
// model-vs-ISS cross-validation of tests/test_model_vs_iss.cpp from a test
// into an execution mode; calibration runs are cached by (loop kind, bucketed
// length) so a full network costs only a handful of ISS invocations.
#pragma once

#include <map>
#include <mutex>

#include "runtime/backend.hpp"

namespace spikestream::runtime {

class CycleAccurateBackend : public AnalyticalBackend {
 public:
  explicit CycleAccurateBackend(const kernels::RunOptions& opt,
                                int sample_spvas = 32,
                                bool memoize_cost = false);

  const char* name() const override { return "cycle-accurate"; }

  const kernels::LayerRun& run_encode(
      const snn::LayerSpec& spec, const snn::LayerWeights& weights,
      const snn::Tensor& padded_image, snn::Tensor& membrane,
      kernels::LayerScratch& scratch) const override;
  const kernels::LayerRun& run_conv(const snn::LayerSpec& spec,
                                    const snn::LayerWeights& weights,
                                    const compress::CsrIfmap& ifmap,
                                    snn::Tensor& membrane,
                                    kernels::LayerScratch& scratch)
      const override;
  const kernels::LayerRun& run_fc(const snn::LayerSpec& spec,
                                  const snn::LayerWeights& weights,
                                  const compress::CsrIfmap& ifmap,
                                  snn::Tensor& membrane,
                                  kernels::LayerScratch& scratch)
      const override;

  using ExecutionBackend::run_conv;
  using ExecutionBackend::run_encode;
  using ExecutionBackend::run_fc;

  /// Measured/modeled cycle ratio for sparse SpVAs of mean length `len`
  /// (exposed for tests; cached, thread-safe).
  double sparse_ratio(double len) const;
  /// Same for the dense encode dot product of length `len`.
  double dense_ratio(double len) const;
  /// Same for the kDenseNoTc ablation's per-window dense stream of `len`
  /// elements (affine weight + activation streams, single accumulator).
  double dense_no_tc_ratio(double len) const;
  /// Same for the baseline encode layer's 2x-unrolled scalar dot of `len`.
  double baseline_dense_ratio(double len) const;

 private:
  /// Rescale the compute critical path of `run` by `ratio`, keeping the
  /// DMA timeline and re-deriving the overlapped wall-clock cycles.
  void retime(kernels::LayerRun& run, double ratio) const;

  int sample_spvas_;
  mutable std::mutex mu_;
  mutable std::map<long, double> sparse_cache_;
  mutable std::map<long, double> dense_cache_;
  mutable std::map<long, double> dense_no_tc_cache_;
  mutable std::map<long, double> baseline_dense_cache_;
};

}  // namespace spikestream::runtime
