// Pluggable execution backends: one interface, three performance models.
//
//  * AnalyticalBackend    — the layer-granular mechanistic cost model
//    (kernels/layer_kernels + kernels/cost_model), the path every figure
//    bench uses. Fast: one network timestep costs microseconds of host time.
//  * CycleAccurateBackend — the same functional math, but per-layer timing is
//    re-anchored by running the paper's inner loops on the cycle-level
//    `arch::Cluster` ISS (what tests/test_model_vs_iss.cpp did ad hoc).
//  * ShardedBackend       — partitions each layer's SIMD output-channel tiles
//    across N simulated clusters (std::thread workers) and merges the
//    per-cluster KernelStats: wall-clock takes the max, activity sums.
//
// All backends compute bit-identical spikes (they share one functional pass
// contract); they differ only in the timing/energy attribution. Backends are
// immutable after construction and safe to share across threads — per-sample
// state (membranes AND the scratch arenas every run borrows) lives in
// snn::NetworkState; a kernels::LayerScratch is threaded through each call so
// steady-state execution allocates nothing.
//
// Cost-model memoization: with BackendConfig::memoize_cost the analytical and
// cycle-accurate backends cache the timing-pass output (KernelStats +
// TilePlan) keyed by (layer signature, input-occupancy bucket,
// output-occupancy bucket). Repeated timesteps / batch samples with similar
// sparsity then skip the O(positions * k^2 + cores * tasks) schedule
// simulation entirely; the functional pass always runs, so spikes stay
// bit-identical. The default (memoize_cost = false) is the exact mode:
// cycle counts are deterministic and independent of execution order.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <tuple>

#include "arch/noc.hpp"
#include "compress/csr_ifmap.hpp"
#include "kernels/layer_kernels.hpp"
#include "kernels/partition.hpp"
#include "kernels/scratch.hpp"
#include "snn/network.hpp"
#include "snn/tensor.hpp"

namespace spikestream::snn {
class NetworkState;
}

namespace spikestream::runtime {

class WorkerPool;

enum class BackendKind {
  kAnalytical,     ///< mechanistic cost model (default, fastest)
  kCycleAccurate,  ///< ISS-calibrated per-layer timing
  kSharded,        ///< N-cluster tile partition with thread workers
};

const char* backend_name(BackendKind k);

struct BackendConfig {
  BackendKind kind = BackendKind::kAnalytical;
  /// ShardedBackend: number of simulated clusters a layer is split across.
  int clusters = 4;
  /// ShardedBackend: run the per-cluster shards on the persistent worker
  /// pool (false = deterministic serial loop, useful for debugging; results
  /// are bit-identical either way).
  bool shard_threads = true;
  /// ShardedBackend: host-side fan-out cutoff. A layer with fewer output
  /// elements than this executes its shards serially on the submitting
  /// thread even in pooled mode — for small layers the pool handoff and
  /// worker wakeups cost more host time than the shard work itself (the
  /// sharded-4 regression in BENCH_host.json). Modeled timing and spikes
  /// are bit-identical either way; only host wall-clock changes.
  int shard_min_work = 32 * 1024;
  /// ShardedBackend: how layers are split across clusters (see
  /// kernels/partition.hpp). The default reproduces the historical
  /// output-channel tiling exactly.
  kernels::PartitionStrategy partition =
      kernels::PartitionStrategy::kOutputChannel;
  /// ShardedBackend: inter-cluster interconnect model. Traffic is always
  /// counted (KernelStats::noc_bytes, priced by the energy model); enabling
  /// `noc.model_contention` additionally lets it gate layer wall-clock.
  arch::NocParams noc;
  /// ShardedBackend: occupancy-adaptive re-planning (see
  /// kernels::ReplanConfig). Initial plans assume the cold-start density;
  /// after the warmup window the measured per-layer occupancy EMA re-ranks
  /// the shard axes and swaps a layer's plan when the better axis clears
  /// the hysteresis margin. Off by default: re-planning makes modeled
  /// cycles depend on the density history the backend has observed, which
  /// the exact-mode parity tests forbid.
  kernels::ReplanConfig replan;
  /// ShardedBackend: stage-parallel pipelining (see kernels::PipelineConfig).
  /// When enabled, prepare() partitions the network's layers into pipeline
  /// stages over cluster groups (or keeps one data-parallel stage when that
  /// costs less), prices each layer at its group width and charges the
  /// boundary FIFO handoffs. Off by default (historical behavior, bit-exact).
  /// Enabling it disables occupancy-adaptive re-planning.
  kernels::PipelineConfig pipeline;
  /// CycleAccurateBackend: SpVAs per ISS calibration run (larger = tighter
  /// amortization of the microkernel prologue, slower calibration).
  int iss_sample_spvas = 32;
  /// Analytical / cycle-accurate: memoize the timing pass by occupancy
  /// bucket (see the header comment). false = exact mode.
  bool memoize_cost = false;
};

/// Thread-safe memo of timing-pass outputs, keyed by layer signature plus
/// logarithmic occupancy buckets (~12% granularity) of the input/output
/// spike counts. Values are populated from the first exact computation of a
/// key; subsequent lookups within the same bucket reuse them. The key does
/// not capture the *spatial distribution* of spikes, only totals, so the
/// deviation from exact mode is empirical rather than hard-bounded —
/// tests/test_cost_cache.cpp pins it at <30% per layer and <15% end-to-end
/// on representative workloads. Use exact mode when cycle counts must be
/// input-faithful.
///
/// Storage is a fixed-capacity open-addressed table whose entries pre-
/// reserve their per-core cycle vectors at construction, so *both* the hit
/// path and the insert path are heap-allocation-free — a steady-state miss
/// (a genuinely new occupancy bucket) fills a pre-sized slot instead of
/// growing a node-based map (tests/test_scratch_reuse.cpp pins this with the
/// operator-new hook). A full table stops accepting inserts; cached keys
/// keep hitting.
class CostMemo {
 public:
  struct Value {
    kernels::KernelStats stats;
    kernels::TilePlan plan;
  };

  /// (salted layer signature, input bucket, output bucket).
  using Key = std::tuple<std::uint64_t, long, long>;

  CostMemo();

  /// Build the memo key for one layer run. Stateful: the memo tracks a
  /// per-layer exponential moving average of the input/output occupancies
  /// and snaps counts within ±10% of the EMA onto the EMA's bucket, so
  /// occupancies that jitter around a bucket edge (the dominant miss source
  /// on small nets) stop alternating between two keys. The snap band is
  /// tighter than the bucket width, so the worst-case deviation stays inside
  /// the bound tests/test_cost_cache.cpp pins. `salt` splits the key space
  /// for run modes whose timing differs at equal occupancy (batch-level
  /// weight-tile reuse salts warm runs).
  Key make_key(const snn::LayerSpec& spec, std::size_t in_nnz,
               std::size_t out_nnz, std::uint64_t salt = 0) const;

  /// On hit, copies the cached stats/plan into `run` (reusing its buffer
  /// capacity) and returns true.
  bool lookup(const Key& key, kernels::LayerRun& run) const;
  void insert(const Key& key, const kernels::LayerRun& run);

  std::size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::size_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  /// Occupancy EMAs of one layer (input, output), -1 = not yet seen.
  struct Ema {
    double in = -1.0;
    double out = -1.0;
  };
  struct Slot {
    bool used = false;
    Key key{};
    Value value;
  };

  long snapped_bucket(double& ema, std::size_t nnz) const;
  /// Probe start + step for a key (capacity is a power of two).
  std::size_t probe_start(const Key& key) const;
  /// Find the slot holding `key`, or the empty slot it would go to; null
  /// when the probe chain is exhausted (table effectively full). Requires
  /// mu_ held.
  Slot* find_slot(const Key& key) const;

  mutable std::mutex mu_;
  mutable std::vector<Slot> slots_;  ///< fixed capacity, pre-reserved values
  mutable std::map<std::uint64_t, Ema> ema_;
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
};

/// One in-flight sample's borrowed buffers for a batch-scope FC call (see
/// ExecutionBackend::run_fc_batch): its compressed input, its persistent
/// membrane, and the per-layer scratch arena its results land in. Shared
/// with the kernel layer so batch-scope calls pass the caller's lane array
/// straight through, no per-call marshalling.
using FcBatchLane = kernels::FcBatchLane;

class ExecutionBackend {
 public:
  explicit ExecutionBackend(const kernels::RunOptions& opt) : opt_(opt) {}
  virtual ~ExecutionBackend() = default;

  ExecutionBackend(const ExecutionBackend&) = delete;
  ExecutionBackend& operator=(const ExecutionBackend&) = delete;

  virtual const char* name() const = 0;
  /// Simulated clusters one layer is spread across (1 except for sharding).
  virtual int num_clusters() const { return 1; }

  /// Called once per engine construction with the quantized network: lets a
  /// backend precompute per-layer state (the sharded backend builds its
  /// ShardPlan here, so partition choices are made once per network, not per
  /// run). Must be idempotent and thread-safe; the default does nothing.
  virtual void prepare(const snn::Network& net) const { (void)net; }

  /// Pre-size the per-layer scratch arenas of a freshly built NetworkState
  /// for this backend's execution shape (e.g. one shard lane per planned
  /// cluster), so even the first run fans out without growing vectors. The
  /// base implementation reserves the occupancy-dependent buffers (the CSR
  /// index arena, the hoisted weight-row pointer list) for each layer's
  /// zero-sparsity worst case: steady-state execution then stays allocation-
  /// free even when a late timestep pushes occupancy to a new maximum.
  /// Overrides should call it before adding their own shaping.
  virtual void presize_state(snn::NetworkState& state,
                             const snn::Network& net) const;

  const kernels::RunOptions& options() const { return opt_; }

  // Per-layer execution. `membrane` is the layer's persistent neuron state
  // (output-shaped) and is updated in place; `scratch` is the borrowed arena
  // all buffers live in — the returned reference aliases `scratch.main.run`
  // and is valid until the next run on the same scratch. Implementations must
  // be safe to call concurrently from multiple threads as long as each call
  // uses a distinct scratch (BatchRunner shares one backend across all sample
  // workers, one NetworkState each).
  virtual const kernels::LayerRun& run_encode(
      const snn::LayerSpec& spec, const snn::LayerWeights& weights,
      const snn::Tensor& padded_image, snn::Tensor& membrane,
      kernels::LayerScratch& scratch) const = 0;
  virtual const kernels::LayerRun& run_conv(
      const snn::LayerSpec& spec, const snn::LayerWeights& weights,
      const compress::CsrIfmap& ifmap, snn::Tensor& membrane,
      kernels::LayerScratch& scratch) const = 0;
  virtual const kernels::LayerRun& run_fc(
      const snn::LayerSpec& spec, const snn::LayerWeights& weights,
      const compress::CsrIfmap& ifmap, snn::Tensor& membrane,
      kernels::LayerScratch& scratch) const = 0;

  // Batch-scope FC execution: run one FC layer for every lane of a lockstep
  // batch in a single call, so a backend that understands the segment-major
  // schedule (RunOptions::segment_major_lanes) can stream each weight band
  // once across all lanes instead of once per sample. The contract is
  // strict: spikes AND modeled stats must be bit-identical to calling
  // run_fc once per lane in order — the segment-major *accounting* is
  // per-sample deterministic (amortized batch means, charged by the timing
  // pass whether or not this hook runs), so the hook only changes host-side
  // execution order/locality. The default implementation is that per-lane
  // loop; each lane's scratch/membrane must be distinct.
  virtual void run_fc_batch(const snn::LayerSpec& spec,
                            const snn::LayerWeights& weights,
                            std::span<const FcBatchLane> lanes) const;

  // One-shot conveniences (tests / benches): run with a private scratch and
  // return the result by value.
  kernels::LayerRun run_encode(const snn::LayerSpec& spec,
                               const snn::LayerWeights& weights,
                               const snn::Tensor& padded_image,
                               snn::Tensor& membrane) const {
    kernels::LayerScratch s;
    run_encode(spec, weights, padded_image, membrane, s);
    return std::move(s.main.run);
  }
  kernels::LayerRun run_conv(const snn::LayerSpec& spec,
                             const snn::LayerWeights& weights,
                             const compress::CsrIfmap& ifmap,
                             snn::Tensor& membrane) const {
    kernels::LayerScratch s;
    run_conv(spec, weights, ifmap, membrane, s);
    return std::move(s.main.run);
  }
  kernels::LayerRun run_fc(const snn::LayerSpec& spec,
                           const snn::LayerWeights& weights,
                           const compress::CsrIfmap& ifmap,
                           snn::Tensor& membrane) const {
    kernels::LayerScratch s;
    run_fc(spec, weights, ifmap, membrane, s);
    return std::move(s.main.run);
  }

 protected:
  kernels::RunOptions opt_;
};

/// The seed's hard-wired analytical path, now one backend among several.
/// Optionally memoizes the timing pass (see CostMemo above).
class AnalyticalBackend : public ExecutionBackend {
 public:
  explicit AnalyticalBackend(const kernels::RunOptions& opt,
                             bool memoize_cost = false)
      : ExecutionBackend(opt),
        memo_(memoize_cost ? std::make_unique<CostMemo>() : nullptr) {}

  const char* name() const override { return "analytical"; }

  const kernels::LayerRun& run_encode(
      const snn::LayerSpec& spec, const snn::LayerWeights& weights,
      const snn::Tensor& padded_image, snn::Tensor& membrane,
      kernels::LayerScratch& scratch) const override;
  const kernels::LayerRun& run_conv(const snn::LayerSpec& spec,
                                    const snn::LayerWeights& weights,
                                    const compress::CsrIfmap& ifmap,
                                    snn::Tensor& membrane,
                                    kernels::LayerScratch& scratch)
      const override;
  const kernels::LayerRun& run_fc(const snn::LayerSpec& spec,
                                  const snn::LayerWeights& weights,
                                  const compress::CsrIfmap& ifmap,
                                  snn::Tensor& membrane,
                                  kernels::LayerScratch& scratch)
      const override;

  /// Segment-major batch-scope FC: one band-major functional sweep over all
  /// lanes (kernels::fc_functional_batch), then the exact per-lane timing
  /// pass — bit-identical to the per-lane default by construction.
  void run_fc_batch(const snn::LayerSpec& spec,
                    const snn::LayerWeights& weights,
                    std::span<const FcBatchLane> lanes) const override;

  using ExecutionBackend::run_conv;
  using ExecutionBackend::run_encode;
  using ExecutionBackend::run_fc;

  /// True when the timing pass is memoized (exact mode otherwise).
  bool memoized() const { return memo_ != nullptr; }
  std::size_t cost_cache_hits() const { return memo_ ? memo_->hits() : 0; }
  std::size_t cost_cache_misses() const {
    return memo_ ? memo_->misses() : 0;
  }

 protected:
  /// FC timing tail shared by run_fc and run_fc_batch: the (optionally
  /// memoized) timing pass over the spikes the functional pass just wrote
  /// into `scratch.main`. Virtual so the cycle-accurate backend can append
  /// its ISS re-anchoring and batch-scope calls stay correct through one
  /// code path.
  virtual void time_fc(const snn::LayerSpec& spec,
                       const compress::CsrIfmap& ifmap,
                       kernels::LayerScratch& scratch) const;

 private:
  std::unique_ptr<CostMemo> memo_;
};

/// Instantiate a backend from a config. `pool` is the persistent worker pool
/// a sharded backend should fan its shards out on (shared with the batch
/// runner when the engine provides one); null lets the backend create its
/// own. Non-sharded backends ignore it.
std::unique_ptr<ExecutionBackend> make_backend(
    const kernels::RunOptions& opt, const BackendConfig& cfg = {},
    std::shared_ptr<WorkerPool> pool = nullptr);

}  // namespace spikestream::runtime
