// Pluggable execution backends: one interface, three performance models.
//
//  * AnalyticalBackend    — the layer-granular mechanistic cost model
//    (kernels/layer_kernels + kernels/cost_model), the path every figure
//    bench uses. Fast: one network timestep costs microseconds of host time.
//  * CycleAccurateBackend — the same functional math, but per-layer timing is
//    re-anchored by running the paper's inner loops on the cycle-level
//    `arch::Cluster` ISS (what tests/test_model_vs_iss.cpp did ad hoc).
//  * ShardedBackend       — partitions each layer's SIMD output-channel tiles
//    across N simulated clusters (std::thread workers) and merges the
//    per-cluster KernelStats: wall-clock takes the max, activity sums.
//
// All backends compute bit-identical spikes (they share one functional pass
// contract); they differ only in the timing/energy attribution. Backends are
// immutable after construction and safe to share across threads — per-sample
// state lives in snn::NetworkState.
#pragma once

#include <memory>

#include "compress/csr_ifmap.hpp"
#include "kernels/layer_kernels.hpp"
#include "snn/network.hpp"
#include "snn/tensor.hpp"

namespace spikestream::runtime {

enum class BackendKind {
  kAnalytical,     ///< mechanistic cost model (default, fastest)
  kCycleAccurate,  ///< ISS-calibrated per-layer timing
  kSharded,        ///< N-cluster tile partition with thread workers
};

const char* backend_name(BackendKind k);

struct BackendConfig {
  BackendKind kind = BackendKind::kAnalytical;
  /// ShardedBackend: number of simulated clusters a layer is split across.
  int clusters = 4;
  /// ShardedBackend: run the per-cluster shards on std::thread workers
  /// (false = deterministic serial loop, useful for debugging).
  bool shard_threads = true;
  /// CycleAccurateBackend: SpVAs per ISS calibration run (larger = tighter
  /// amortization of the microkernel prologue, slower calibration).
  int iss_sample_spvas = 32;
};

class ExecutionBackend {
 public:
  explicit ExecutionBackend(const kernels::RunOptions& opt) : opt_(opt) {}
  virtual ~ExecutionBackend() = default;

  ExecutionBackend(const ExecutionBackend&) = delete;
  ExecutionBackend& operator=(const ExecutionBackend&) = delete;

  virtual const char* name() const = 0;
  /// Simulated clusters one layer is spread across (1 except for sharding).
  virtual int num_clusters() const { return 1; }

  const kernels::RunOptions& options() const { return opt_; }

  // Per-layer execution. `membrane` is the layer's persistent neuron state
  // (output-shaped) and is updated in place. Implementations must be safe to
  // call concurrently from multiple threads: BatchRunner shares one backend
  // across all sample workers.
  virtual kernels::LayerRun run_encode(const snn::LayerSpec& spec,
                                       const snn::LayerWeights& weights,
                                       const snn::Tensor& padded_image,
                                       snn::Tensor& membrane) const = 0;
  virtual kernels::LayerRun run_conv(const snn::LayerSpec& spec,
                                     const snn::LayerWeights& weights,
                                     const compress::CsrIfmap& ifmap,
                                     snn::Tensor& membrane) const = 0;
  virtual kernels::LayerRun run_fc(const snn::LayerSpec& spec,
                                   const snn::LayerWeights& weights,
                                   const compress::CsrIfmap& ifmap,
                                   snn::Tensor& membrane) const = 0;

 protected:
  kernels::RunOptions opt_;
};

/// The seed's hard-wired analytical path, now one backend among several.
class AnalyticalBackend : public ExecutionBackend {
 public:
  explicit AnalyticalBackend(const kernels::RunOptions& opt)
      : ExecutionBackend(opt) {}

  const char* name() const override { return "analytical"; }

  kernels::LayerRun run_encode(const snn::LayerSpec& spec,
                               const snn::LayerWeights& weights,
                               const snn::Tensor& padded_image,
                               snn::Tensor& membrane) const override {
    return kernels::run_encode_layer(spec, weights, padded_image, membrane,
                                     opt_);
  }
  kernels::LayerRun run_conv(const snn::LayerSpec& spec,
                             const snn::LayerWeights& weights,
                             const compress::CsrIfmap& ifmap,
                             snn::Tensor& membrane) const override {
    return kernels::run_conv_layer(spec, weights, ifmap, membrane, opt_);
  }
  kernels::LayerRun run_fc(const snn::LayerSpec& spec,
                           const snn::LayerWeights& weights,
                           const compress::CsrIfmap& ifmap,
                           snn::Tensor& membrane) const override {
    return kernels::run_fc_layer(spec, weights, ifmap, membrane, opt_);
  }
};

/// Instantiate a backend from a config.
std::unique_ptr<ExecutionBackend> make_backend(const kernels::RunOptions& opt,
                                               const BackendConfig& cfg = {});

}  // namespace spikestream::runtime
