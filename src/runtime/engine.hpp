// End-to-end inference engine: chains the per-layer execution of a pluggable
// ExecutionBackend over a network, carrying spikes (pool -> pad -> compress)
// between layers exactly like the golden reference, and collecting per-layer
// runtime / utilization / energy metrics — the quantities plotted in
// Figs. 3b, 3c and 4.
//
// The engine itself is immutable after construction (network weights are
// quantized once, the backend is fixed): the stateless `run(..., state)`
// overloads may be called concurrently from many threads, each with its own
// snn::NetworkState. The state-carrying convenience API (`run(image)` /
// `reset()`) wraps an internal default state for single-threaded callers.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "arch/energy.hpp"
#include "kernels/layer_kernels.hpp"
#include "runtime/backend.hpp"
#include "snn/network.hpp"
#include "snn/state.hpp"

namespace spikestream::runtime {

struct LayerMetrics {
  std::string name;
  kernels::KernelStats stats;
  double in_firing_rate = 0;   ///< ifmap activity (incl. padding zeros)
  double out_firing_rate = 0;  ///< raw output activity
  double csr_bytes = 0;        ///< compressed ifmap footprint (ours)
  double aer_bytes = 0;        ///< AER ifmap footprint (neuromorphic format)
  arch::EnergyBreakdown energy;
  double power_w = 0;

  double runtime_ms(double freq_hz = 1e9) const {
    return stats.cycles / freq_hz * 1e3;
  }
};

struct InferenceResult {
  std::vector<LayerMetrics> layers;
  double total_cycles = 0;
  double total_energy_mj = 0;
  snn::SpikeMap final_output;

  double total_runtime_ms(double freq_hz = 1e9) const {
    return total_cycles / freq_hz * 1e3;
  }
};

class InferenceEngine {
 public:
  /// Copies the network, quantizes its weights to `opt.fmt` (once, amortized
  /// over every subsequent sample) and executes with an AnalyticalBackend.
  InferenceEngine(const snn::Network& net, const kernels::RunOptions& opt,
                  const arch::EnergyParams& energy = {});

  /// Same, but executes through the backend described by `backend`.
  InferenceEngine(const snn::Network& net, const kernels::RunOptions& opt,
                  const BackendConfig& backend,
                  const arch::EnergyParams& energy = {});

  /// Adopts a caller-constructed backend (shared, must outlive the engine's
  /// runs). Weights are quantized to the backend's format.
  InferenceEngine(const snn::Network& net,
                  std::shared_ptr<ExecutionBackend> backend,
                  const arch::EnergyParams& energy = {});

  // --- stateless API (thread-safe: one NetworkState per concurrent sample) --

  /// One timestep on a raw (unpadded) image; membranes live in `state`.
  InferenceResult run(const snn::Tensor& image, snn::NetworkState& state) const;

  /// One timestep on event-camera style input: a binary spike map feeding the
  /// first layer directly (the network must not start with kEncodeConv).
  /// `events` must already be padded to the first layer's ifmap shape.
  InferenceResult run_events(const snn::SpikeMap& events,
                             snn::NetworkState& state) const;

  // --- scratch-reusing API (the hot path) -----------------------------------
  // Same semantics, but the result is written into a caller-owned
  // InferenceResult whose buffers are reused across calls: together with the
  // scratch arenas inside `state`, a warmed-up (state, out) pair runs a whole
  // timestep with zero heap allocations per layer.

  void run(const snn::Tensor& image, snn::NetworkState& state,
           InferenceResult& out) const;
  void run_events(const snn::SpikeMap& events, snn::NetworkState& state,
                  InferenceResult& out) const;

  // --- per-layer stepping API (pipeline executor) ---------------------------
  // One timestep can be driven layer by layer instead of through run():
  // begin_sample() sizes `out`, then run_layer(l, ...) executes layer l and
  // returns the spike map the next layer consumes (null after the last
  // layer, whose raw output went to out.final_output). `carry` must be the
  // pointer returned by the previous run_layer call — for layer 0 the
  // caller's event map, or null on encode-first networks. The carry aliases
  // buffers inside `state`'s layer-l scratch, so different samples may step
  // concurrently as long as each uses its own (state, out) pair — the
  // property runtime/pipeline.hpp builds its stage overlap on.

  void begin_sample(InferenceResult& out) const;
  const snn::SpikeMap* run_layer(std::size_t l, const snn::Tensor* image,
                                 const snn::SpikeMap* carry,
                                 snn::NetworkState& state,
                                 InferenceResult& out) const;

  // --- batch-scope layer stepping (segment-major lockstep executors) --------
  // One lane per in-flight sample of a lockstep wave: the runners advance
  // all lanes through the same layer together, which lets a segmented FC
  // layer hand every lane to the backend in a single run_fc_batch call (the
  // weight bands then stream once per wave instead of once per sample).
  // `carry` is updated in place by run_layer_batch, exactly like the pointer
  // run_layer returns.

  struct BatchLane {
    const snn::Tensor* image = nullptr;
    const snn::SpikeMap* carry = nullptr;
    snn::NetworkState* state = nullptr;
    InferenceResult* out = nullptr;
  };

  /// Execute layer `l` for every lane. Segmented-FC-eligible layers (FC,
  /// RunOptions::segment_major_lanes >= 2, more than one lane) go through
  /// ExecutionBackend::run_fc_batch; every other layer runs per lane — on
  /// `pool` when one is given (lanes own distinct states, the same aliasing
  /// contract run_layer documents). Results are bit-identical to calling
  /// run_layer per lane in order, including modeled stats.
  void run_layer_batch(std::size_t l, std::span<BatchLane> lanes,
                       WorkerPool* pool = nullptr) const;

  /// Fresh zeroed membrane state shaped for this engine's network, with the
  /// scratch arenas pre-sized for the backend's execution shape (one shard
  /// lane per planned cluster on the sharded backend).
  snn::NetworkState make_state() const {
    snn::NetworkState state(net_);
    backend_->presize_state(state, net_);
    return state;
  }

  // --- stateful convenience API (single-threaded callers) -------------------

  /// One timestep on the engine's internal state. Membranes persist across
  /// calls until reset().
  InferenceResult run(const snn::Tensor& image);
  InferenceResult run_events(const snn::SpikeMap& events);

  /// Clear the internal membrane state (between independent input samples).
  void reset();

  const snn::Network& network() const { return net_; }
  /// SDC-injection surface (runtime/integrity.hpp): the live quantized
  /// weight slice of layer `l`, as every backend reads it through the
  /// engine's network copy — a bit flipped here is functionally visible to
  /// all of them. Fault injectors must restore what they flip between wave
  /// attempts (flip_weight_bit is involutive); nothing else may mutate the
  /// engine after construction.
  snn::LayerWeights& mutable_weights(std::size_t l) { return net_.weights(l); }
  const kernels::RunOptions& options() const { return backend_->options(); }
  const ExecutionBackend& backend() const { return *backend_; }
  const arch::EnergyParams& energy_params() const { return energy_; }

  /// The persistent worker pool this engine's backend fans out on (null for
  /// backends that never thread). BatchRunner reuses it so batch-sample and
  /// shard fan-out share one clamped set of threads.
  const std::shared_ptr<WorkerPool>& worker_pool() const { return pool_; }

 private:
  /// Shared constructor tail: quantize weights, let the backend prepare its
  /// per-network plans, shape the internal state.
  void init();

  void run_impl(const snn::Tensor* image, const snn::SpikeMap* events,
                snn::NetworkState& state, InferenceResult& out) const;

  /// Compress a layer's spike-map input into its scratch CSR arena and fill
  /// the input-side metrics (name, footprints, firing rate).
  const compress::CsrIfmap& encode_layer_input(std::size_t l,
                                               const snn::SpikeMap& carry,
                                               snn::NetworkState& state,
                                               InferenceResult& out) const;
  /// Output-side metric/energy bookkeeping + spike routing shared by
  /// run_layer and run_layer_batch; returns the next layer's carry.
  const snn::SpikeMap* finish_layer(std::size_t l,
                                    const kernels::LayerRun& lr,
                                    snn::NetworkState& state,
                                    InferenceResult& out) const;

  snn::Network net_;
  std::shared_ptr<WorkerPool> pool_;  ///< created before the backend using it
  std::shared_ptr<ExecutionBackend> backend_;
  arch::EnergyParams energy_;
  snn::NetworkState state_;  ///< backing store for the stateful API
};

}  // namespace spikestream::runtime
