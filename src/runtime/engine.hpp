// End-to-end inference engine: chains the layer kernels over a network,
// carrying spikes (pool -> pad -> compress) between layers exactly like the
// golden reference, and collecting per-layer runtime / utilization / energy
// metrics — the quantities plotted in Figs. 3b, 3c and 4.
#pragma once

#include <string>
#include <vector>

#include "arch/energy.hpp"
#include "kernels/layer_kernels.hpp"
#include "snn/network.hpp"

namespace spikestream::runtime {

struct LayerMetrics {
  std::string name;
  kernels::KernelStats stats;
  double in_firing_rate = 0;   ///< ifmap activity (incl. padding zeros)
  double out_firing_rate = 0;  ///< raw output activity
  double csr_bytes = 0;        ///< compressed ifmap footprint (ours)
  double aer_bytes = 0;        ///< AER ifmap footprint (neuromorphic format)
  arch::EnergyBreakdown energy;
  double power_w = 0;

  double runtime_ms(double freq_hz = 1e9) const {
    return stats.cycles / freq_hz * 1e3;
  }
};

struct InferenceResult {
  std::vector<LayerMetrics> layers;
  double total_cycles = 0;
  double total_energy_mj = 0;
  snn::SpikeMap final_output;

  double total_runtime_ms(double freq_hz = 1e9) const {
    return total_cycles / freq_hz * 1e3;
  }
};

class InferenceEngine {
 public:
  /// Copies the network and quantizes its weights to `opt.fmt`.
  InferenceEngine(const snn::Network& net, const kernels::RunOptions& opt,
                  const arch::EnergyParams& energy = {});

  /// One timestep on a raw (unpadded) image. Membranes persist across calls.
  InferenceResult run(const snn::Tensor& image);

  /// One timestep on event-camera style input: a binary spike map feeding the
  /// first layer directly (the network must not start with kEncodeConv).
  /// `events` must already be padded to the first layer's ifmap shape.
  InferenceResult run_events(const snn::SpikeMap& events);

  /// Clear membrane state (call between independent input samples).
  void reset();

  const snn::Network& network() const { return net_; }
  const kernels::RunOptions& options() const { return opt_; }

 private:
  InferenceResult run_impl(const snn::Tensor* image,
                           const snn::SpikeMap* events);

  snn::Network net_;
  kernels::RunOptions opt_;
  arch::EnergyParams energy_;
  std::vector<snn::Tensor> membranes_;
};

}  // namespace spikestream::runtime
