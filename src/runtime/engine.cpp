#include "runtime/engine.hpp"

#include "common/check.hpp"
#include "compress/aer.hpp"
#include "compress/csr_ifmap.hpp"
#include "snn/reference.hpp"

namespace spikestream::runtime {

InferenceEngine::InferenceEngine(const snn::Network& net,
                                 const kernels::RunOptions& opt,
                                 const arch::EnergyParams& energy)
    : InferenceEngine(net, opt, BackendConfig{}, energy) {}

InferenceEngine::InferenceEngine(const snn::Network& net,
                                 const kernels::RunOptions& opt,
                                 const BackendConfig& backend,
                                 const arch::EnergyParams& energy)
    : InferenceEngine(net, make_backend(opt, backend), energy) {}

InferenceEngine::InferenceEngine(const snn::Network& net,
                                 std::shared_ptr<ExecutionBackend> backend,
                                 const arch::EnergyParams& energy)
    : net_(net), backend_(std::move(backend)), energy_(energy) {
  SPK_CHECK(backend_ != nullptr, "InferenceEngine: null backend");
  net_.quantize_weights(backend_->options().fmt);
  state_.reshape(net_);
}

void InferenceEngine::reset() { state_.clear(); }

InferenceResult InferenceEngine::run(const snn::Tensor& image) {
  return run(image, state_);
}

InferenceResult InferenceEngine::run_events(const snn::SpikeMap& events) {
  return run_events(events, state_);
}

InferenceResult InferenceEngine::run(const snn::Tensor& image,
                                     snn::NetworkState& state) const {
  return run_impl(&image, nullptr, state);
}

InferenceResult InferenceEngine::run_events(const snn::SpikeMap& events,
                                            snn::NetworkState& state) const {
  SPK_CHECK(net_.num_layers() > 0 &&
                net_.layer(0).kind != snn::LayerKind::kEncodeConv,
            "event input requires a network without an encode layer");
  return run_impl(nullptr, &events, state);
}

InferenceResult InferenceEngine::run_impl(const snn::Tensor* image,
                                          const snn::SpikeMap* events,
                                          snn::NetworkState& state) const {
  SPK_CHECK(state.num_layers() == net_.num_layers(),
            "NetworkState does not match this network (use make_state())");
  const kernels::RunOptions& opt = backend_->options();
  InferenceResult res;
  res.layers.reserve(net_.num_layers());

  snn::SpikeMap carry;
  if (events != nullptr) carry = *events;
  for (std::size_t l = 0; l < net_.num_layers(); ++l) {
    const snn::LayerSpec& spec = net_.layer(l);
    const snn::LayerWeights& w = net_.weights(l);
    snn::Tensor& membrane = state.membrane(l);
    LayerMetrics m;
    m.name = spec.name;

    kernels::LayerRun lr;
    if (spec.kind == snn::LayerKind::kEncodeConv) {
      SPK_CHECK(image != nullptr, "encode layer needs a dense image input");
      const snn::Tensor padded =
          snn::Reference::pad_dense(*image, (spec.in_h - image->h) / 2);
      lr = backend_->run_encode(spec, w, padded, membrane);
      // Layer-1 ifmap is a dense RGB tensor: report its dense HWC size as
      // "ours" and the event-per-pixel AER equivalent as the AER column.
      const double px = static_cast<double>(spec.in_h) * spec.in_w * spec.in_c;
      m.csr_bytes = px * common::fp_bytes(opt.fmt);
      m.aer_bytes = px * 8.0;
      m.in_firing_rate = 1.0;
    } else {
      const compress::CsrIfmap csr = compress::CsrIfmap::encode(carry);
      m.csr_bytes = static_cast<double>(csr.footprint_bytes());
      m.aer_bytes = static_cast<double>(
          compress::AerEvents::encode(carry).footprint_bytes(
              spec.kind != snn::LayerKind::kFc));
      m.in_firing_rate = snn::firing_rate(carry);
      if (spec.kind == snn::LayerKind::kConv) {
        lr = backend_->run_conv(spec, w, csr, membrane);
      } else {
        lr = backend_->run_fc(spec, w, csr, membrane);
      }
    }

    m.out_firing_rate = snn::firing_rate(lr.out_spikes);
    m.stats = lr.stats;
    m.energy = arch::compute_energy(energy_, lr.stats.to_activity(), opt.fmt);
    m.power_w = arch::average_power_w(energy_, lr.stats.to_activity(), opt.fmt);
    res.total_cycles += lr.stats.cycles;
    res.total_energy_mj += m.energy.total_mj();

    // Route spikes to the next layer exactly like the reference.
    snn::SpikeMap next = lr.out_spikes;
    if (spec.pool_after) next = snn::or_pool2(next);
    if (l + 1 < net_.num_layers()) {
      if (net_.layer(l + 1).kind == snn::LayerKind::kFc) {
        next = snn::Reference::flatten(next);
      } else {
        next = snn::pad(next, spec.pad_next);
      }
    }
    if (l + 1 == net_.num_layers()) res.final_output = lr.out_spikes;
    carry = std::move(next);
    res.layers.push_back(std::move(m));
  }
  return res;
}

}  // namespace spikestream::runtime
