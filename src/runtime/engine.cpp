#include "runtime/engine.hpp"

#include "common/check.hpp"
#include "compress/aer.hpp"
#include "compress/csr_ifmap.hpp"
#include "snn/reference.hpp"

namespace spikestream::runtime {

InferenceEngine::InferenceEngine(const snn::Network& net,
                                 const kernels::RunOptions& opt,
                                 const arch::EnergyParams& energy)
    : net_(net), opt_(opt), energy_(energy) {
  net_.quantize_weights(opt_.fmt);
  reset();
}

void InferenceEngine::reset() {
  membranes_.clear();
  membranes_.reserve(net_.num_layers());
  for (std::size_t l = 0; l < net_.num_layers(); ++l) {
    const snn::LayerSpec& s = net_.layer(l);
    membranes_.emplace_back(s.out_h(), s.out_w(), s.out_c);
  }
}

InferenceResult InferenceEngine::run(const snn::Tensor& image) {
  return run_impl(&image, nullptr);
}

InferenceResult InferenceEngine::run_events(const snn::SpikeMap& events) {
  SPK_CHECK(net_.num_layers() > 0 &&
                net_.layer(0).kind != snn::LayerKind::kEncodeConv,
            "event input requires a network without an encode layer");
  return run_impl(nullptr, &events);
}

InferenceResult InferenceEngine::run_impl(const snn::Tensor* image,
                                          const snn::SpikeMap* events) {
  InferenceResult res;
  res.layers.reserve(net_.num_layers());

  snn::SpikeMap carry;
  if (events != nullptr) carry = *events;
  for (std::size_t l = 0; l < net_.num_layers(); ++l) {
    const snn::LayerSpec& spec = net_.layer(l);
    const snn::LayerWeights& w = net_.weights(l);
    LayerMetrics m;
    m.name = spec.name;

    kernels::LayerRun lr;
    if (spec.kind == snn::LayerKind::kEncodeConv) {
      SPK_CHECK(image != nullptr, "encode layer needs a dense image input");
      const snn::Tensor padded =
          snn::Reference::pad_dense(*image, (spec.in_h - image->h) / 2);
      lr = kernels::run_encode_layer(spec, w, padded, membranes_[l], opt_);
      // Layer-1 ifmap is a dense RGB tensor: report its dense HWC size as
      // "ours" and the event-per-pixel AER equivalent as the AER column.
      const double px = static_cast<double>(spec.in_h) * spec.in_w * spec.in_c;
      m.csr_bytes = px * common::fp_bytes(opt_.fmt);
      m.aer_bytes = px * 8.0;
      m.in_firing_rate = 1.0;
    } else {
      const compress::CsrIfmap csr = compress::CsrIfmap::encode(carry);
      m.csr_bytes = static_cast<double>(csr.footprint_bytes());
      m.aer_bytes = static_cast<double>(
          compress::AerEvents::encode(carry).footprint_bytes(
              spec.kind != snn::LayerKind::kFc));
      m.in_firing_rate = snn::firing_rate(carry);
      if (spec.kind == snn::LayerKind::kConv) {
        lr = kernels::run_conv_layer(spec, w, csr, membranes_[l], opt_);
      } else {
        lr = kernels::run_fc_layer(spec, w, csr, membranes_[l], opt_);
      }
    }

    m.out_firing_rate = snn::firing_rate(lr.out_spikes);
    m.stats = lr.stats;
    m.energy = arch::compute_energy(energy_, lr.stats.to_activity(), opt_.fmt);
    m.power_w = arch::average_power_w(energy_, lr.stats.to_activity(), opt_.fmt);
    res.total_cycles += lr.stats.cycles;
    res.total_energy_mj += m.energy.total_mj();

    // Route spikes to the next layer exactly like the reference.
    snn::SpikeMap next = lr.out_spikes;
    if (spec.pool_after) next = snn::or_pool2(next);
    if (l + 1 < net_.num_layers()) {
      if (net_.layer(l + 1).kind == snn::LayerKind::kFc) {
        next = snn::Reference::flatten(next);
      } else {
        next = snn::pad(next, spec.pad_next);
      }
    }
    if (l + 1 == net_.num_layers()) res.final_output = lr.out_spikes;
    carry = std::move(next);
    res.layers.push_back(std::move(m));
  }
  return res;
}

}  // namespace spikestream::runtime
