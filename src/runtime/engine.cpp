#include "runtime/engine.hpp"

#include <thread>

#include "common/check.hpp"
#include "compress/aer.hpp"
#include "compress/csr_ifmap.hpp"
#include "runtime/worker_pool.hpp"
#include "snn/reference.hpp"

namespace spikestream::runtime {

namespace {

/// The engine creates the persistent pool its backend (and any BatchRunner
/// on top) fans out on — one clamped set of threads for both the per-layer
/// shard level and the per-sample batch level, so the two can never
/// oversubscribe the host. Backends that never thread get no pool.
std::shared_ptr<WorkerPool> pool_for(const BackendConfig& cfg) {
  if (cfg.kind == BackendKind::kSharded && cfg.shard_threads) {
    return std::make_shared<WorkerPool>(
        static_cast<int>(std::thread::hardware_concurrency()) - 1);
  }
  return nullptr;
}

}  // namespace

InferenceEngine::InferenceEngine(const snn::Network& net,
                                 const kernels::RunOptions& opt,
                                 const arch::EnergyParams& energy)
    : InferenceEngine(net, opt, BackendConfig{}, energy) {}

InferenceEngine::InferenceEngine(const snn::Network& net,
                                 const kernels::RunOptions& opt,
                                 const BackendConfig& backend,
                                 const arch::EnergyParams& energy)
    : net_(net),
      pool_(pool_for(backend)),
      backend_(make_backend(opt, backend, pool_)),
      energy_(energy) {
  init();
}

InferenceEngine::InferenceEngine(const snn::Network& net,
                                 std::shared_ptr<ExecutionBackend> backend,
                                 const arch::EnergyParams& energy)
    : net_(net), backend_(std::move(backend)), energy_(energy) {
  init();
}

void InferenceEngine::init() {
  SPK_CHECK(backend_ != nullptr, "InferenceEngine: null backend");
  net_.quantize_weights(backend_->options().fmt);
  backend_->prepare(net_);  // partition plans live beside the weights
  state_.reshape(net_);
  backend_->presize_state(state_, net_);
}

void InferenceEngine::reset() { state_.clear(); }

InferenceResult InferenceEngine::run(const snn::Tensor& image) {
  return run(image, state_);
}

InferenceResult InferenceEngine::run_events(const snn::SpikeMap& events) {
  return run_events(events, state_);
}

InferenceResult InferenceEngine::run(const snn::Tensor& image,
                                     snn::NetworkState& state) const {
  InferenceResult out;
  run(image, state, out);
  return out;
}

InferenceResult InferenceEngine::run_events(const snn::SpikeMap& events,
                                            snn::NetworkState& state) const {
  InferenceResult out;
  run_events(events, state, out);
  return out;
}

void InferenceEngine::run(const snn::Tensor& image, snn::NetworkState& state,
                          InferenceResult& out) const {
  run_impl(&image, nullptr, state, out);
}

void InferenceEngine::run_events(const snn::SpikeMap& events,
                                 snn::NetworkState& state,
                                 InferenceResult& out) const {
  SPK_CHECK(net_.num_layers() > 0 &&
                net_.layer(0).kind != snn::LayerKind::kEncodeConv,
            "event input requires a network without an encode layer");
  run_impl(nullptr, &events, state, out);
}

void InferenceEngine::begin_sample(InferenceResult& out) const {
  out.layers.resize(net_.num_layers());
  out.total_cycles = 0;
  out.total_energy_mj = 0;
}

const compress::CsrIfmap& InferenceEngine::encode_layer_input(
    std::size_t l, const snn::SpikeMap& carry, snn::NetworkState& state,
    InferenceResult& out) const {
  const snn::LayerSpec& spec = net_.layer(l);
  kernels::LayerScratch& scratch = state.scratch(l);
  LayerMetrics& m = out.layers[l];
  m.name = spec.name;
  compress::CsrIfmap& csr = scratch.csr;
  compress::CsrIfmap::encode_into(carry, csr);
  // Footprints and firing rates come straight from the CSR counts — the
  // AER event list is never materialized on the hot path.
  m.csr_bytes = static_cast<double>(csr.footprint_bytes());
  m.aer_bytes = static_cast<double>(compress::AerEvents::footprint_from_count(
      csr.nnz(), spec.kind != snn::LayerKind::kFc));
  m.in_firing_rate = carry.size() ? static_cast<double>(csr.nnz()) /
                                        static_cast<double>(carry.size())
                                  : 0.0;
  return csr;
}

const snn::SpikeMap* InferenceEngine::finish_layer(
    std::size_t l, const kernels::LayerRun& lr, snn::NetworkState& state,
    InferenceResult& out) const {
  const kernels::RunOptions& opt = backend_->options();
  const snn::LayerSpec& spec = net_.layer(l);
  kernels::LayerScratch& scratch = state.scratch(l);
  LayerMetrics& m = out.layers[l];
  m.out_firing_rate =
      lr.out_spikes.size() ? static_cast<double>(lr.out_nnz) /
                                 static_cast<double>(lr.out_spikes.size())
                           : 0.0;
  m.stats = lr.stats;
  m.energy = arch::compute_energy(energy_, lr.stats.to_activity(), opt.fmt);
  m.power_w = arch::average_power_w(energy_, lr.stats.to_activity(), opt.fmt);
  out.total_cycles += lr.stats.cycles;
  out.total_energy_mj += m.energy.total_mj();

  // Route spikes to the next layer exactly like the reference, through the
  // scratch-owned pool/pad/flatten buffers.
  const snn::SpikeMap* next = &lr.out_spikes;
  if (spec.pool_after) {
    snn::or_pool2_into(*next, scratch.pooled);
    next = &scratch.pooled;
  }
  if (l + 1 < net_.num_layers()) {
    if (net_.layer(l + 1).kind == snn::LayerKind::kFc) {
      snn::flatten_into(*next, scratch.routed);
    } else {
      snn::pad_into(*next, spec.pad_next, scratch.routed);
    }
    return &scratch.routed;
  }
  out.final_output = lr.out_spikes;
  return nullptr;
}

const snn::SpikeMap* InferenceEngine::run_layer(std::size_t l,
                                                const snn::Tensor* image,
                                                const snn::SpikeMap* carry,
                                                snn::NetworkState& state,
                                                InferenceResult& out) const {
  SPK_CHECK(state.num_layers() == net_.num_layers(),
            "NetworkState does not match this network (use make_state())");
  const kernels::RunOptions& opt = backend_->options();
  const snn::LayerSpec& spec = net_.layer(l);
  const snn::LayerWeights& w = net_.weights(l);
  snn::Tensor& membrane = state.membrane(l);
  kernels::LayerScratch& scratch = state.scratch(l);

  const kernels::LayerRun* lr = nullptr;
  if (spec.kind == snn::LayerKind::kEncodeConv) {
    SPK_CHECK(image != nullptr, "encode layer needs a dense image input");
    LayerMetrics& m = out.layers[l];
    m.name = spec.name;
    snn::Reference::pad_dense_into(*image, (spec.in_h - image->h) / 2,
                                   scratch.padded);
    lr = &backend_->run_encode(spec, w, scratch.padded, membrane, scratch);
    // Layer-1 ifmap is a dense RGB tensor: report its dense HWC size as
    // "ours" and the event-per-pixel AER equivalent as the AER column.
    const double px = static_cast<double>(spec.in_h) * spec.in_w * spec.in_c;
    m.csr_bytes = px * common::fp_bytes(opt.fmt);
    m.aer_bytes = px * 8.0;
    m.in_firing_rate = 1.0;
  } else {
    SPK_CHECK(carry != nullptr, "layer " << spec.name << ": no input");
    const compress::CsrIfmap& csr = encode_layer_input(l, *carry, state, out);
    if (spec.kind == snn::LayerKind::kConv) {
      lr = &backend_->run_conv(spec, w, csr, membrane, scratch);
    } else {
      lr = &backend_->run_fc(spec, w, csr, membrane, scratch);
    }
  }
  return finish_layer(l, *lr, state, out);
}

void InferenceEngine::run_layer_batch(std::size_t l,
                                      std::span<BatchLane> lanes,
                                      WorkerPool* pool) const {
  const snn::LayerSpec& spec = net_.layer(l);
  const bool batched_fc = spec.kind == snn::LayerKind::kFc &&
                          lanes.size() > 1 &&
                          backend_->options().segment_major_lanes > 1;
  if (batched_fc) {
    // Per-lane input compression, one batch-scope kernel call, per-lane
    // metric/routing tails — all lanes advance through this layer together.
    // thread_local so the steady state reuses capacity (the batched path
    // never nests: the FC batch call does not recurse into layer stepping).
    static thread_local std::vector<FcBatchLane> fc;
    fc.assign(lanes.size(), FcBatchLane{});
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      BatchLane& lane = lanes[i];
      SPK_CHECK(lane.carry != nullptr,
                "layer " << spec.name << ": no input (lane " << i << ")");
      fc[i].ifmap =
          &encode_layer_input(l, *lane.carry, *lane.state, *lane.out);
      fc[i].membrane = &lane.state->membrane(l);
      fc[i].scratch = &lane.state->scratch(l);
    }
    backend_->run_fc_batch(spec, net_.weights(l), fc);
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      lanes[i].carry = finish_layer(l, lanes[i].state->scratch(l).main.run,
                                    *lanes[i].state, *lanes[i].out);
    }
    return;
  }
  auto step_lane = [&](BatchLane& lane) {
    lane.carry = run_layer(l, lane.image, lane.carry, *lane.state, *lane.out);
  };
  if (pool != nullptr && lanes.size() > 1) {
    pool->parallel_for(lanes.size(), lanes.size(),
                       [&](std::size_t, std::size_t i) {
                         step_lane(lanes[i]);
                       });
  } else {
    for (BatchLane& lane : lanes) step_lane(lane);
  }
}

void InferenceEngine::run_impl(const snn::Tensor* image,
                               const snn::SpikeMap* events,
                               snn::NetworkState& state,
                               InferenceResult& out) const {
  begin_sample(out);
  // Spikes flowing into the next layer. Points at the previous layer's
  // `routed` scratch buffer (or the caller's event map for layer 0), so the
  // carry is never copied.
  const snn::SpikeMap* carry = events;
  for (std::size_t l = 0; l < net_.num_layers(); ++l) {
    carry = run_layer(l, image, carry, state, out);
  }
}

}  // namespace spikestream::runtime
