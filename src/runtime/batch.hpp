// Batch inference runner: amortizes network copy + weight quantization across
// a batch of samples (both happen exactly once, at construction) and runs the
// samples concurrently on a shared immutable engine — each worker slot owns
// one snn::NetworkState (cleared between samples, its scratch arenas reused),
// so per-sample membrane dynamics stay fully independent and the outputs are
// bit-identical to a serial run, whatever the worker count.
//
// Samples fan out on the engine's persistent WorkerPool — the same threads
// the sharded backend fans its per-layer shards out on — so batch x shard
// parallelism can never oversubscribe the host and no thread is ever spawned
// per call.
//
// Segment-major lockstep: with RunOptions::segment_major_lanes >= 2 the
// runner switches from sample fan-out to lockstep waves — up to that many
// samples advance through the network layer by layer *together*, handing all
// wave lanes to the backend in one call per segmented FC layer
// (InferenceEngine::run_layer_batch), so each fan-in weight band streams
// once per wave instead of once per sample. Non-FC layers of a wave still
// fan out across the pool. Outputs and modeled stats stay bit-identical to
// the per-sample path (the segment-major accounting is deterministic
// per-sample, independent of the execution schedule).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/function_ref.hpp"
#include "runtime/engine.hpp"
#include "runtime/multistep.hpp"

namespace spikestream::runtime {

class WorkerPool;

class BatchRunner {
 public:
  /// `workers` = 0 picks std::thread::hardware_concurrency(); explicit
  /// counts are clamped to it.
  BatchRunner(const snn::Network& net, const kernels::RunOptions& opt,
              const BackendConfig& backend = {},
              const arch::EnergyParams& energy = {}, int workers = 0);
  ~BatchRunner();

  /// `timesteps` LIF steps per image (constant-current coding). Results are
  /// in input order and independent of the worker count.
  std::vector<MultiStepResult> run(const std::vector<snn::Tensor>& images,
                                   int timesteps = 1) const;

  /// Event-driven variant: one pre-padded frame sequence per sample. Always
  /// uses per-sample fan-out (streams may have unequal lengths, which rules
  /// out lockstep waves); modeled stats are unaffected — the segment-major
  /// accounting is schedule-independent.
  std::vector<MultiStepResult> run_events(
      const std::vector<std::vector<snn::SpikeMap>>& streams) const;

  /// Single-timestep variant keeping the full per-layer metrics per sample.
  std::vector<InferenceResult> run_single_step(
      const std::vector<snn::Tensor>& images) const;

  const InferenceEngine& engine() const { return engine_; }
  int workers() const { return workers_; }

 private:
  /// Claim samples [0, n) from the worker pool across at most `workers_`
  /// slots. `fn(slot, i)` runs sample i on slot `slot`, so callers can keep
  /// one reusable NetworkState per slot instead of one per sample.
  void for_samples(std::size_t n,
                   common::FunctionRef<void(std::size_t, std::size_t)> fn)
      const;

  /// One reusable NetworkState per worker slot that for_samples() will
  /// engage for `n_samples` samples (sized with the same slot formula).
  std::vector<snn::NetworkState> worker_states(std::size_t n_samples) const;

  /// True when the engine's options ask for segment-major lockstep waves.
  bool lockstep() const;
  /// Lockstep wave width for an `n`-sample batch.
  std::size_t wave_width(std::size_t n) const;

  std::vector<MultiStepResult> run_lockstep(
      const std::vector<snn::Tensor>& images, int timesteps) const;
  std::vector<InferenceResult> run_single_step_lockstep(
      const std::vector<snn::Tensor>& images) const;

  InferenceEngine engine_;
  int workers_;
  std::shared_ptr<WorkerPool> pool_;
};

}  // namespace spikestream::runtime
