// Batch-scope timeline of a stage-parallel pipeline (the modeled twin of the
// host-side PipelinedBatchRunner): given a StagePlan and the per-sample
// per-layer cycle counts of an executed batch, replay the batch through the
// stage graph with finite inter-stage spike FIFOs and report makespan,
// fill/drain, per-stage busy/stall/idle splits and FIFO peak occupancy.
//
// Semantics (the FIFO backpressure contract ARCHITECTURE.md documents):
//  * Stages process samples in order, store-and-forward at sample
//    granularity: stage s+1 may start sample i once stage s has *pushed* it
//    (the handoff transfer itself is priced into the producing boundary
//    layer's service time by the sharded backend).
//  * A producing stage occupies its clusters until the push completes: when
//    the downstream FIFO lacks room for the sample's boundary spikes, the
//    stage stalls (KernelStats::fifo_stall_cycles) until the consumer's
//    starts free enough room. A sample larger than the whole FIFO waits for
//    an empty FIFO (virtual cut-through with minimum capacity one sample).
//  * The consumer pops a sample's spikes the moment it starts processing it.
//
// Conservation (pinned by tests/test_partition.cpp): for every stage,
// last_finish - first_start == service + stall + idle exactly, and a deeper
// FIFO never increases stalls or makespan.
#pragma once

#include <span>
#include <vector>

#include "kernels/kernel_stats.hpp"
#include "kernels/partition.hpp"
#include "runtime/engine.hpp"

namespace spikestream::runtime {

struct StageTrace {
  double service_cycles = 0;  ///< sum of per-sample service on this stage
  double stall_cycles = 0;    ///< blocked on a full downstream FIFO
  double idle_cycles = 0;     ///< starved between samples (empty upstream)
  double first_start = 0;     ///< when the stage began its first sample
  double last_finish = 0;     ///< when the stage pushed its final sample
  double peak_fifo_spikes = 0;  ///< peak occupancy of this stage's OUTPUT FIFO
  double handoff_bytes = 0;   ///< total boundary payload pushed downstream
  /// Aggregated activity of the stage's member layers over the whole batch,
  /// with `cycles` set to the stage's busy window (first_start..last_finish)
  /// and the stall itemized — feed to arch::compute_energy for per-stage
  /// energy including the stalled-but-clocked time.
  kernels::KernelStats stats;

  double window_cycles() const { return last_finish - first_start; }
};

struct StageTimeline {
  double makespan_cycles = 0;  ///< batch start -> last stage's final push
  double fill_cycles = 0;      ///< sample 0's latency through every stage
  double steady_cycles_per_sample = 0;  ///< measured initiation interval
  double total_stall_cycles = 0;
  std::vector<StageTrace> stages;

  double cycles_per_sample(std::size_t batch) const {
    return batch > 0 ? makespan_cycles / static_cast<double>(batch) : 0.0;
  }
};

/// Pure recurrence over explicit matrices (unit-testable without a network):
/// services[s][i] = service cycles of sample i on stage s; spikes_out[s][i] =
/// boundary spikes stage s pushes for sample i (ignored for the last stage).
/// All inner vectors must share one batch size.
StageTimeline simulate_stage_timeline(
    const std::vector<std::vector<double>>& services,
    const std::vector<std::vector<double>>& spikes_out,
    int fifo_depth_spikes);

/// Replay an executed batch through `plan`: per-sample stage service = the
/// member layers' modeled cycles in `batch` (which the stage-mode sharded
/// backend produced at each stage's group cluster count), boundary spikes
/// recovered from the layer metrics. `net` supplies layer geometry.
StageTimeline simulate_stage_pipeline(const kernels::StagePlan& plan,
                                      const snn::Network& net,
                                      std::span<const InferenceResult> batch,
                                      const kernels::PipelineConfig& cfg);

}  // namespace spikestream::runtime
