// Multi-cluster sharded backend, rebuilt on the partition-plan subsystem
// (kernels/partition.hpp): each layer executes according to an immutable
// LayerPlan — output-channel tiles, spatial ifmap stripes, or FC fan-in
// segments — computed once per network (cost-model-driven for the hybrid
// strategy) and cached by layer signature. Shards run on the persistent
// WorkerPool (shared with BatchRunner when the engine provides one), in
// per-cluster ShardLanes of the borrowed LayerScratch, so steady-state shard
// fan-out performs zero heap allocations in both serial and pooled mode.
//
// Spikes are bit-identical to a single-cluster run for every plan:
//  * output-channel tiles and row stripes compute each output neuron with its
//    complete fan-in in the reference accumulation order (disjoint slices,
//    merge = concatenation);
//  * fan-in segments would need a non-associative partial-sum merge, so their
//    *functional* pass runs unsharded and only the timing pass is split —
//    each cluster is charged for streaming its input-channel band, plus an
//    explicit partial-reduction tail on the merging cluster.
//
// Per-cluster KernelStats merge with wall-clock = max and activity = sum;
// inter-cluster traffic (broadcast replicas, stripe halos, ofmap gathers,
// partial reductions) is recorded in KernelStats::noc_bytes and — when
// NocParams::model_contention is set — charged against the shared-bandwidth
// ceiling of arch/noc.hpp instead of assuming a perfect crossbar. Timing is
// always exact (no cost memo): the per-shard occupancy split would break the
// activity-conservation contract the parity tests pin down.
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <tuple>
#include <utility>
#include <vector>

#include "arch/noc.hpp"
#include "common/function_ref.hpp"
#include "kernels/partition.hpp"
#include "runtime/backend.hpp"
#include "runtime/worker_pool.hpp"

namespace spikestream::runtime {

class ShardedBackend : public ExecutionBackend {
 public:
  /// `pool` = null creates a private pool sized for `clusters` (when
  /// `use_threads`); passing the engine's pool shares one set of threads
  /// between shard fan-out and batch-sample fan-out. Layers with fewer
  /// output elements than `min_work` run their shards on the submitting
  /// thread even in pooled mode (host-side cutoff, bit-identical results).
  ShardedBackend(const kernels::RunOptions& opt, int clusters,
                 bool use_threads = true,
                 kernels::PartitionStrategy strategy =
                     kernels::PartitionStrategy::kOutputChannel,
                 const arch::NocParams& noc = {},
                 std::shared_ptr<WorkerPool> pool = nullptr,
                 int min_work = 32 * 1024,
                 const kernels::ReplanConfig& replan = {},
                 const kernels::PipelineConfig& pipeline = {});

  const char* name() const override { return "sharded"; }
  int num_clusters() const override { return clusters_; }
  kernels::PartitionStrategy strategy() const {
    return partitioner_.strategy();
  }
  const arch::NocParams& noc_params() const { return noc_; }
  const kernels::PipelineConfig& pipeline_config() const { return pipeline_; }

  /// The stage assignment prepare() chose (default-constructed — zero stages
  /// — before prepare, or when stage-parallel execution is disabled).
  /// Per-layer runs then price each layer at its stage's group width and
  /// charge the boundary handoffs; the batch-scope FIFO timeline lives in
  /// runtime/stage_pipeline.hpp.
  const kernels::StagePlan& stage_plan() const { return stage_plan_; }
  /// True when prepare() armed a multi-stage pipeline for this network.
  bool stage_parallel_active() const {
    return pipeline_.enabled && stage_plan_.num_stages() > 1;
  }

  /// Plan every layer and prebuild the output-channel weight slices, so the
  /// plans live alongside the quantized weights from construction on and the
  /// first run already executes allocation-light.
  void prepare(const snn::Network& net) const override;
  /// One shard lane per planned cluster in every layer's scratch.
  void presize_state(snn::NetworkState& state,
                     const snn::Network& net) const override;

  const kernels::LayerRun& run_encode(
      const snn::LayerSpec& spec, const snn::LayerWeights& weights,
      const snn::Tensor& padded_image, snn::Tensor& membrane,
      kernels::LayerScratch& scratch) const override;
  const kernels::LayerRun& run_conv(const snn::LayerSpec& spec,
                                    const snn::LayerWeights& weights,
                                    const compress::CsrIfmap& ifmap,
                                    snn::Tensor& membrane,
                                    kernels::LayerScratch& scratch)
      const override;
  const kernels::LayerRun& run_fc(const snn::LayerSpec& spec,
                                  const snn::LayerWeights& weights,
                                  const compress::CsrIfmap& ifmap,
                                  snn::Tensor& membrane,
                                  kernels::LayerScratch& scratch)
      const override;

  using ExecutionBackend::run_conv;
  using ExecutionBackend::run_encode;
  using ExecutionBackend::run_fc;

  /// The (cached) partition plan of one layer. Exposed for benches/tests.
  /// With adaptive re-planning the returned reference is only valid until
  /// the next run swaps this layer's plan — hold the value, not the ref,
  /// across runs.
  const kernels::LayerPlan& plan_for(const snn::LayerSpec& spec) const;

  // --- occupancy-adaptive re-planning (BackendConfig::replan) ---------------

  /// How often this layer's shard axis has been swapped by the re-planner.
  int replan_flips(const snn::LayerSpec& spec) const;
  /// The layer's current shard axis (== plan_for(spec).axis).
  kernels::ShardAxis active_axis(const snn::LayerSpec& spec) const;
  /// The layer's current occupancy EMA (-1 before the first observation).
  double occupancy_ema(const snn::LayerSpec& spec) const;

  /// Legacy view of the output-channel ranges for a layer with `out_c`
  /// channels (SIMD-group aligned). Exposed for tests.
  std::vector<std::pair<int, int>> slices(int out_c) const;

  // --- fault injection / degraded mode (runtime/faults.hpp) -----------------
  // All const (the backend is shared const on the hot path) and thread-safe:
  // structural faults mutate the same copy-on-write plan cache the adaptive
  // re-planner uses, so in-flight waves keep their pinned plans and the next
  // dispatch picks up the degraded ones. Cluster ids below are *active slot*
  // ids: after a fail-stop the survivors are renumbered into the dense
  // [0, active_clusters()) range the re-planned shards execute on.

  /// Fail-stop: mask `cluster` out of the active set and re-pick every
  /// prepared layer's plan over the survivors (stage pipelines re-balance at
  /// the reduced width). Exactly one re-plan pass per accepted fault — see
  /// degrade_replans(). Returns false (and changes nothing) when the cluster
  /// is out of range, already failed, or the last survivor. Completed spikes
  /// are bit-identical across any plan, so only modeled timing degrades.
  bool fail_cluster(int cluster) const;
  /// Straggler: multiply the shard service time of one active cluster slot
  /// by `factor` >= 1 (1 restores full speed).
  void set_cluster_slowdown(int cluster, double factor) const;
  /// Derate one active cluster slot's NoC injection/ejection bandwidth by
  /// `factor` >= 1. Under the legacy shared-ceiling topology the whole
  /// fabric runs at the worst derate (a shared bus has no per-link wires).
  void set_link_degrade(int cluster, double factor) const;

  /// Clusters still in the active set (== num_clusters() when healthy).
  int active_clusters() const {
    return active_clusters_.load(std::memory_order_relaxed);
  }
  int failed_clusters() const { return clusters_ - active_clusters(); }
  /// Degraded-mode re-plan passes completed — exactly one per accepted
  /// fail_cluster(), never more (the no-oscillation guarantee: occupancy-
  /// adaptive re-planning freezes while degraded).
  int degrade_replans() const {
    return degrade_replans_.load(std::memory_order_relaxed);
  }

 private:
  /// One entry per (weight tensor, channel range): the strided copy of the
  /// weight slice a cluster owns. Cached because weights are immutable for
  /// the lifetime of the engine that drives this backend. Hits are validated
  /// against the source (boundary elements), so an allocator reusing a freed
  /// weight vector's address for a different network cannot serve a stale
  /// slice — the entry is recomputed in place instead.
  const snn::LayerWeights& shard_weights(const snn::LayerWeights& w, int lo,
                                         int hi) const;

  /// True when `spec` is big enough for pool fan-out to beat its handoff
  /// overhead (the per-shard minimum-work cutoff).
  bool pool_worthwhile(const snn::LayerSpec& spec) const;

  /// Run `fn(shard_index)` for every shard — on the pool when `pooled`,
  /// serially otherwise (bit-identical either way).
  void for_shards(std::size_t n, bool pooled,
                  common::FunctionRef<void(std::size_t)> fn) const;

  /// Merge per-shard stats into `merged` (wall-clock max / activity sum),
  /// keep the slowest shard's DMA plan, and sum out_nnz. `base` is the first
  /// cluster slot the shards run on: a slot with an injected slowdown has
  /// its shard's wall-clock scaled by the straggler factor before the max.
  /// Returns the index of the slowest shard.
  std::size_t merge_shard_stats(const kernels::LayerScratch& scratch,
                                std::size_t n, kernels::LayerRun& merged,
                                int base) const;

  /// Shared row-stripe merge (conv + encode): scatter spike/membrane row
  /// bands back, merge stats, return the ofmap gather traffic of shards
  /// 1..n-1.
  double merge_stripe_shards(const kernels::LayerPlan& plan,
                             const snn::LayerSpec& spec,
                             kernels::LayerScratch& scratch,
                             snn::Tensor& membrane, kernels::LayerRun& merged,
                             int base) const;

  /// Record inter-cluster traffic and, with contention modeling on, let the
  /// fabric gate the layer's wall-clock (the raise is itemized in
  /// KernelStats::noc_contention_cycles). Under the legacy-ceiling topology
  /// `legacy_bytes` is accumulated and priced exactly like the historical
  /// expression (bit-exact back-compat); under a link-level topology
  /// `charge` replays the transfer pattern onto a per-link NocModel —
  /// noc_bytes then counts each link traversal once (a multicast is no
  /// longer billed one full replica per receiver) and the gate is the
  /// bottleneck link's serialization, not a shared ceiling.
  void apply_noc(kernels::KernelStats& st, double legacy_bytes,
                 common::FunctionRef<void(arch::NocModel&)> charge) const;

  /// Boundary-layer tail of a pipeline stage: charge the producing group for
  /// packing its output spikes into the inter-stage FIFO and for the handoff
  /// crossing to the consumer group's lead cluster. No-op outside stage mode
  /// (historical runs are bit-exact).
  void apply_stage_handoff(const snn::LayerSpec& spec,
                           kernels::LayerRun& run) const;

  /// Output-channel tiling: shard the layer along SIMD-aligned channel
  /// ranges, broadcast the input, run `kernel` per shard, concatenate.
  /// `input_bytes` is one cluster's copy of the layer input (for the NoC
  /// broadcast charge).
  const kernels::LayerRun& run_channel_sharded(
      const kernels::LayerPlan& plan, const snn::LayerSpec& spec,
      const snn::LayerWeights& weights, snn::Tensor& membrane,
      kernels::LayerScratch& scratch, double input_bytes,
      common::FunctionRef<void(const snn::LayerSpec&, const snn::LayerWeights&,
                               snn::Tensor&, kernels::KernelScratch&)>
          kernel) const;

  const kernels::LayerRun& run_stripe_conv(const kernels::LayerPlan& plan,
                                           const snn::LayerSpec& spec,
                                           const snn::LayerWeights& weights,
                                           const compress::CsrIfmap& ifmap,
                                           snn::Tensor& membrane,
                                           kernels::LayerScratch& scratch)
      const;
  const kernels::LayerRun& run_stripe_encode(const kernels::LayerPlan& plan,
                                             const snn::LayerSpec& spec,
                                             const snn::LayerWeights& weights,
                                             const snn::Tensor& padded_image,
                                             snn::Tensor& membrane,
                                             kernels::LayerScratch& scratch)
      const;
  const kernels::LayerRun& run_fc_fanin(const kernels::LayerPlan& plan,
                                        const snn::LayerSpec& spec,
                                        const snn::LayerWeights& weights,
                                        const compress::CsrIfmap& ifmap,
                                        snn::Tensor& membrane,
                                        kernels::LayerScratch& scratch) const;

  /// Cache key: source identity plus shape, so only an allocation reused at
  /// the same address *and* shape can collide (then caught by validation).
  using WeightKey = std::tuple<const float*, std::size_t, int, int, int, int>;

  /// Current plan by copyable handle: the dispatch path pins the plan it
  /// executes with for the whole layer run, so the adaptive re-planner can
  /// swap in a new plan concurrently without invalidating in-flight shards
  /// (copy-on-write — the old plan lives until its last holder drops it).
  std::shared_ptr<const kernels::LayerPlan> plan_handle(
      const snn::LayerSpec& spec) const;

  /// Adaptive re-planning bookkeeping of one layer. The mutex serializes
  /// EMA updates from concurrent batch workers; the replan decision itself
  /// is two allocation-free cost-model evaluations, so the steady-state
  /// (non-flipping) path stays heap-free.
  struct AdaptiveState {
    std::mutex mu;
    double ema = -1.0;  ///< measured input-density EMA, -1 = unseeded
    long runs = 0;
    int flips = 0;
    kernels::ShardAxis axis = kernels::ShardAxis::kOutputChannel;
  };

  /// Record one observed input density for `spec` and re-rank its shard
  /// axes once the warmup window has passed; swaps the cached plan (and
  /// counts a flip) when the candidate clears the hysteresis margin. No-op
  /// unless replan_.enabled.
  void observe_density(const snn::LayerSpec& spec, std::size_t in_nnz,
                       std::size_t in_elems) const;

  double initial_plan_density() const;

  // --- degraded-mode internals ----------------------------------------------

  /// Re-pick every prepared layer's plan over `width` clusters (COW swap
  /// under plan_mu_; stage mode re-balances the pipeline first). Plans use
  /// the layer's measured density EMA when one is seeded, the initial
  /// planning density otherwise. Caller holds fault_mu_.
  void replan_for_width(int width) const;
  /// The layer's measured density EMA when seeded, initial_plan_density()
  /// otherwise — what degraded re-planning plans at.
  double planning_density(std::uint64_t sig) const;
  /// Straggler factor of one active cluster slot (1.0 = healthy). One
  /// relaxed flag load on the healthy hot path.
  double shard_slowdown(int cluster) const {
    if (!any_slowdown_.load(std::memory_order_relaxed)) return 1.0;
    if (cluster < 0 || cluster >= arch::NocModel::kMaxClusters) return 1.0;
    return slowdown_[static_cast<std::size_t>(cluster)].load(
        std::memory_order_relaxed);
  }

  /// Per-layer stage assignment, filled by prepare() in stage mode. Keyed by
  /// layer signature like the plan cache; read-only after prepare.
  struct StageInfo {
    int stage = 0;
    int cluster_lo = 0;  ///< first cluster of the owning group
    int group = 1;       ///< group width the layer's plan was sized for
    bool boundary = false;       ///< last layer of a non-final stage
    int next_cluster_lo = 0;     ///< consumer group's lead cluster
  };

  /// This layer's stage assignment, or null outside stage mode / for layers
  /// the prepared network did not contain (they run at the full cluster
  /// count, exactly like an unknown signature in the plan cache).
  const StageInfo* stage_info_for(const snn::LayerSpec& spec) const;
  /// First cluster of the group executing `spec` (0 outside stage mode) —
  /// anchors link-level NoC charges at the group's real ring position.
  int cluster_base(const snn::LayerSpec& spec) const;

  int clusters_;
  bool threads_;
  int min_work_;  ///< output elements below which fan-out stays serial
  kernels::Partitioner partitioner_;
  arch::NocParams noc_;
  kernels::ReplanConfig replan_;
  kernels::PipelineConfig pipeline_;
  /// Stage assignment of the prepared network (stage mode only). Written
  /// once under plan_mu_ by prepare(); map nodes are stable, so post-prepare
  /// readers hold only the shared lock.
  mutable kernels::StagePlan stage_plan_;
  mutable std::map<std::uint64_t, StageInfo> stage_info_;
  std::shared_ptr<WorkerPool> pool_;
  mutable std::mutex mu_;
  mutable std::map<WeightKey, snn::LayerWeights> weight_cache_;
  /// Reader-writer lock: after prepare() the plan cache is read-only on the
  /// hot path (one shared acquisition per layer dispatch); the exclusive
  /// side only runs for specs never planned before — or for a re-plan swap.
  mutable std::shared_mutex plan_mu_;
  mutable std::map<std::uint64_t, std::shared_ptr<const kernels::LayerPlan>>
      plans_;
  /// node-stable map: AdaptiveState holds a mutex and must not move.
  /// adaptive_mu_ guards the map structure only (find / first-touch insert);
  /// per-layer updates serialize on the entry's own mutex.
  mutable std::mutex adaptive_mu_;
  mutable std::map<std::uint64_t, AdaptiveState> adaptive_;

  // --- fault state (runtime/faults.hpp) -------------------------------------
  /// Serializes structural fault application (fail_cluster and friends are
  /// rare control-plane calls; the data plane reads only the atomics below).
  /// Lock order: fault_mu_ -> adaptive_mu_ -> AdaptiveState::mu -> plan_mu_.
  mutable std::mutex fault_mu_;
  /// The specs prepare() planned, in layer order — the plan cache only keeps
  /// signatures, so degraded re-planning needs them to rebuild every plan.
  mutable std::vector<snn::LayerSpec> prepared_specs_;
  mutable std::array<bool, arch::NocModel::kMaxClusters> failed_{};
  mutable std::atomic<int> active_clusters_{1};
  mutable std::atomic<int> degrade_replans_{0};
  mutable std::atomic<bool> any_slowdown_{false};
  mutable std::atomic<bool> any_link_derate_{false};
  mutable std::array<std::atomic<double>, arch::NocModel::kMaxClusters>
      slowdown_;
  mutable std::array<std::atomic<double>, arch::NocModel::kMaxClusters>
      link_derate_;
  /// Worst link derate across clusters (legacy shared-ceiling divisor).
  mutable std::atomic<double> max_link_derate_{1.0};
};

}  // namespace spikestream::runtime
