// Multi-cluster sharded backend: each layer's SIMD output-channel tiles are
// partitioned across N simulated clusters and executed by std::thread
// workers, one analytical-model cluster per shard.
//
// The partition is along output channels, aligned to SIMD group boundaries
// (kernels/tiling picks weight tiles the same way), so every cluster computes
// a disjoint ofmap slice from the full input ifmap: no inter-cluster
// reduction is needed, the merged spike map is the concatenation of the
// slices and is bit-identical to a single-cluster run. Per-cluster
// KernelStats merge with wall-clock = max (clusters run in parallel) and
// activity = sum; the input ifmap is charged to every cluster's DMA traffic
// (it is broadcast).
//
// Each shard runs in its own ShardLane of the borrowed LayerScratch (compact
// membrane slice + kernel scratch), so repeated runs on the same NetworkState
// reuse all per-shard buffers. The serial mode (shard_threads = false) is
// allocation-free in steady state; the threaded mode still creates its
// std::thread workers per layer. Timing is always exact (no cost memo): the
// per-shard occupancy split would break the activity-conservation contract
// the parity tests pin down.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <tuple>
#include <utility>
#include <vector>

#include "runtime/backend.hpp"

namespace spikestream::runtime {

class ShardedBackend : public ExecutionBackend {
 public:
  ShardedBackend(const kernels::RunOptions& opt, int clusters,
                 bool use_threads = true);

  const char* name() const override { return "sharded"; }
  int num_clusters() const override { return clusters_; }

  const kernels::LayerRun& run_encode(
      const snn::LayerSpec& spec, const snn::LayerWeights& weights,
      const snn::Tensor& padded_image, snn::Tensor& membrane,
      kernels::LayerScratch& scratch) const override;
  const kernels::LayerRun& run_conv(const snn::LayerSpec& spec,
                                    const snn::LayerWeights& weights,
                                    const compress::CsrIfmap& ifmap,
                                    snn::Tensor& membrane,
                                    kernels::LayerScratch& scratch)
      const override;
  const kernels::LayerRun& run_fc(const snn::LayerSpec& spec,
                                  const snn::LayerWeights& weights,
                                  const compress::CsrIfmap& ifmap,
                                  snn::Tensor& membrane,
                                  kernels::LayerScratch& scratch)
      const override;

  using ExecutionBackend::run_conv;
  using ExecutionBackend::run_encode;
  using ExecutionBackend::run_fc;

  /// Output-channel ranges per cluster for a layer with `out_c` channels,
  /// aligned to SIMD groups of the configured format. Fewer groups than
  /// clusters leaves trailing clusters idle. Exposed for tests.
  std::vector<std::pair<int, int>> slices(int out_c) const;

 private:
  /// One entry per (weight tensor, channel range): the strided copy of the
  /// weight slice a cluster owns. Cached because weights are immutable for
  /// the lifetime of the engine that drives this backend. Hits are validated
  /// against the source (boundary elements), so an allocator reusing a freed
  /// weight vector's address for a different network cannot serve a stale
  /// slice — the entry is recomputed in place instead.
  const snn::LayerWeights& shard_weights(const snn::LayerWeights& w, int lo,
                                         int hi) const;

  /// Run `fn(shard_index, lo, hi)` for every slice, threaded or serial.
  void for_shards(const std::vector<std::pair<int, int>>& sl,
                  const std::function<void(std::size_t, int, int)>& fn) const;

  /// Shared shard driver: slice the layer, run `kernel` per shard (sub-spec,
  /// weight slice, lane membrane + scratch), merge spikes/membranes/stats
  /// back into `scratch.main.run`.
  const kernels::LayerRun& run_sharded(
      const snn::LayerSpec& spec, const snn::LayerWeights& weights,
      snn::Tensor& membrane, kernels::LayerScratch& scratch,
      const std::function<void(const snn::LayerSpec&, const snn::LayerWeights&,
                               snn::Tensor&, kernels::KernelScratch&)>& kernel)
      const;

  /// Cache key: source identity plus shape, so only an allocation reused at
  /// the same address *and* shape can collide (then caught by validation).
  using WeightKey = std::tuple<const float*, std::size_t, int, int, int, int>;

  int clusters_;
  bool threads_;
  mutable std::mutex mu_;
  mutable std::map<WeightKey, snn::LayerWeights> weight_cache_;
};

}  // namespace spikestream::runtime
