// Inference-as-a-service runtime: turns the batch-offline engine into a
// request/response server with a user-facing latency SLO.
//
//   producers ──try_push──▶ BoundedMpscQueue ──try_pop──▶ dispatcher thread
//                (lock-free ring, full = reject)             │
//                                                   dynamic batch former
//                                                (deadline- or size-triggered)
//                                                            │
//                                          segment-major lockstep wave
//                                      (InferenceEngine::run_layer_batch on
//                                       the persistent WorkerPool — the same
//                                       path BatchRunner drives offline)
//
// Admission is a bounded lock-free MPSC ring (Vyukov sequence-numbered
// cells): any number of client threads try_push a ServeRequest* with a CAS
// on the tail — no mutex, no allocation, and a full ring rejects instead of
// blocking (the reject is counted; load shedding is explicit). The single
// consumer is the dispatcher thread, which drains arrivals into a wave of up
// to `target` lanes and fires it either when the wave is full or when the
// oldest queued request has waited ServerConfig::max_queue_delay_us — so an
// idle server adds at most one deadline of latency and a busy server keeps
// the engine at full segment-major occupancy. When both the queue and the
// wave are empty the dispatcher *blocks* on a condition variable (producers
// nudge it awake only when they observed it sleeping), so an idle server
// burns no CPU — same contract the WorkerPool's idle workers honor.
//
// Waves execute exactly like an offline BatchRunner lockstep wave: one
// NetworkState lane per in-flight request, all lanes stepping through the
// network layer by layer via InferenceEngine::run_layer_batch, segmented FC
// layers streaming each fan-in weight band once per wave. Served outputs
// (spikes AND modeled cycles) are therefore bit-identical to BatchRunner on
// the same inputs whatever wave boundaries the arrival timing produced — the
// segment-major charges are per-sample batch means, independent of lane
// assignment (tests/test_server.cpp pins this). The lanes, wave buffers and
// per-request result vectors are all pre-sized at construction or on first
// use, so the admission -> dispatch -> complete hot path is allocation-free
// at steady state (tests/test_scratch_reuse.cpp counts it).
//
// SLO-aware wave sizing: a hysteresis-gated controller (mirroring the PR-5
// replan gate) trades wave size for latency. Full waves leaving a backlog
// grow the target (×2 toward max_wave_lanes — throughput under heavy load);
// deadline-fired waves at <= shrink_occupancy of the target shrink it (÷2
// toward min_wave_lanes — a light-load request no longer waits for lanes it
// cannot fill). Both need `controller_streak` *consecutive* waves of
// evidence and the dead band between the two thresholds means steady load
// never oscillates.
//
// Per-request telemetry (enqueue/dispatch/complete timestamps on the request
// slot; queue depth, wave occupancy, rejects, p50/p95/p99 latency in
// ServerStats' allocation-free LogHistograms) is what bench/serve_profile.cpp
// sweeps into BENCH_serve.json and CI guards with --p99-threshold.
//
// Hardened serving path (see ARCHITECTURE.md "Fault domains"): every admitted
// request reaches exactly one terminal state — kDone, kTimedOut (its TTL
// expired in the queue or wave buffer and it was shed before execution),
// kError (its wave threw and retries were exhausted), kCorrupted (a detected
// data-integrity failure persisted through every retry) — so
// admitted == completed + timed_out + errored + corrupted once the server
// drains. A throwing wave is contained to that wave's requests: the
// dispatcher catches, retries transient faults with bounded backoff (each
// attempt resets lane state and re-runs from timestep 0, so a successful
// retry is bit-identical to a clean run), and keeps serving subsequent waves
// either way. Structural faults from ServerConfig::faults (cluster fail-stop
// / slowdown / link degrade, keyed by wave index — never wall-clock) are
// applied to the sharded backend between waves, which re-plans over the
// survivors exactly once per fault (bench/fault_profile.cpp drives this and
// CI guards the degradation curve in BENCH_fault.json).
//
// Data-integrity path (runtime/integrity.hpp, off by default): with
// ServerConfig::integrity armed, CRC32C seals guard the dataflow — input
// images sealed at submit() and verified at wave formation, spike carries
// sealed at every layer handoff and verified before the consumer integrates
// them, per-layer weight slices sealed at construction and verified per wave
// attempt, the final output's chained seal published on the request. A seal
// mismatch throws IntegrityFault (a TransientFault), so the bounded-retry
// containment above re-runs the wave; FaultPlan data events (weight / spike /
// membrane flips) are undone or regenerated between attempts, so the retried
// wave completes bit-identical to an unfaulted one. Requests whose mismatch
// persists through every retry end in kCorrupted. Redundant-lane mode
// (IntegrityConfig::redundant_lanes or ServeRequest::redundant) executes the
// wave twice — injections land only in the primary pass, modeling disjoint
// clusters — and compares the two passes' output seals, the only defense
// covering live membrane state (bench/integrity_profile.cpp sweeps flip rate
// x protection mode into BENCH_integrity.json; CI guards detection coverage
// and overhead with --integrity).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "runtime/engine.hpp"
#include "runtime/faults.hpp"
#include "runtime/integrity.hpp"
#include "runtime/multistep.hpp"

namespace spikestream::runtime {

class WorkerPool;
class ShardedBackend;

/// Bounded lock-free multi-producer single-consumer ring (Vyukov
/// sequence-numbered cells). Fixed capacity (rounded up to a power of two),
/// allocated once at construction; try_push / try_pop never allocate and
/// never block — a full ring fails the push so the caller can count the
/// rejection instead of stalling the client.
template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::make_unique<Cell[]>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  /// Multi-producer: lock-free, allocation-free; false = ring full.
  bool try_push(T v) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.val = v;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single consumer only. FIFO in tail-claim order (per-producer order is
  /// preserved). False = empty (or the winning producer has not finished
  /// publishing its cell yet).
  bool try_pop(T& out) {
    const std::size_t pos = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) -
            static_cast<std::intptr_t>(pos + 1) != 0) {
      return false;
    }
    out = cell.val;
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  std::size_t capacity() const { return mask_ + 1; }
  /// Racy snapshot (exact when quiescent).
  std::size_t size_approx() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T val{};
  };
  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producers (CAS)
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer only
};

/// One in-flight request. Caller-owned, must stay at a stable address from
/// submit() until wait() returns; reusable across requests (the result
/// vectors keep their capacity, so steady-state resubmission is
/// allocation-free). Not movable once submitted.
struct ServeRequest {
  enum State : int {
    kIdle = 0,
    kQueued = 1,
    kDone = 2,
    kRejected = 3,  ///< ring full or server stopped (never owned)
    kTimedOut = 4,  ///< TTL expired before execution; shed, result untouched
    kError = 5,     ///< wave threw and retries were exhausted
    kCorrupted = 6, ///< detected data corruption persisted through retries
  };

  const snn::Tensor* image = nullptr;  ///< input; caller keeps it alive
  MultiStepResult result;              ///< filled before kDone is published
  /// Per-request deadline: shed with kTimedOut if still unexecuted this many
  /// microseconds after enqueue. 0 = inherit ServerConfig::default_ttl_us;
  /// negative = no deadline even when the server has a default.
  std::int64_t ttl_us = 0;
  /// Opt this request's wave into redundant-lane execution (primary + shadow
  /// pass, output seals compared) even when the server-wide
  /// IntegrityConfig::redundant_lanes default is off.
  bool redundant = false;
  /// Written by submit() when checksum_spikes is armed: the admission seal of
  /// `image`, verified again when the wave forms (catches corruption while
  /// the request sat in the ring).
  Seal input_seal;
  /// Written before kDone when checksums are armed: the chained CRC32C seal
  /// over every timestep's final output map — the caller's end-to-end
  /// integrity handle for the served result.
  Seal result_seal;

  // Telemetry (steady_clock ns), written by the server.
  std::uint64_t enqueue_ns = 0;
  std::uint64_t dispatch_ns = 0;
  std::uint64_t complete_ns = 0;

  std::atomic<int> state{kIdle};

  /// Block until the server published a terminal state; returns true when
  /// the request completed (false = rejected / timed out / errored).
  bool wait() {
    int s = state.load(std::memory_order_acquire);
    while (s == kQueued) {
      state.wait(s, std::memory_order_acquire);
      s = state.load(std::memory_order_acquire);
    }
    return s == kDone;
  }

  /// Bounded wait: returns the observed state after at most ~timeout_us.
  /// Any value other than kQueued is terminal and the slot is the caller's
  /// again; kQueued means the server still owns the slot — keep it alive and
  /// call wait()/wait_for() again. (std::atomic has no timed wait, so this
  /// polls at a 50 us granularity; it is a convenience for callers with
  /// their own deadline, not the hot completion path.)
  int wait_for(std::int64_t timeout_us) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(std::max<std::int64_t>(
                              0, timeout_us));
    int s = state.load(std::memory_order_acquire);
    while (s == kQueued) {
      if (std::chrono::steady_clock::now() >= deadline) return s;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      s = state.load(std::memory_order_acquire);
    }
    return s;
  }

  double queue_us() const {
    return static_cast<double>(dispatch_ns - enqueue_ns) * 1e-3;
  }
  double latency_us() const {
    return static_cast<double>(complete_ns - enqueue_ns) * 1e-3;
  }
};

struct ServerConfig {
  std::size_t queue_capacity = 1024;  ///< admission ring (rounded up to 2^k)
  int timesteps = 1;                  ///< LIF steps per request
  /// Deadline: a partial wave fires once its oldest request has queued this
  /// long, so light-load latency is bounded by one deadline + one service.
  std::int64_t max_queue_delay_us = 2000;
  /// Wave-size bounds for the SLO controller. max_wave_lanes = 0 means
  /// RunOptions::segment_major_lanes (clamped to >= 1).
  int min_wave_lanes = 1;
  int max_wave_lanes = 0;
  /// SLO-aware sizing on/off (off = every wave targets max_wave_lanes).
  bool adaptive_wave = true;
  /// Consecutive waves of evidence before the target moves (hysteresis).
  int controller_streak = 3;
  /// Deadline-fired waves at or below this fraction of the target shrink it.
  double shrink_occupancy = 0.5;
  /// Default per-request TTL (microseconds): a request still unexecuted this
  /// long after enqueue is shed with kTimedOut instead of served late.
  /// 0 = no deadline; ServeRequest::ttl_us overrides per request.
  std::int64_t default_ttl_us = 0;
  /// Transient-fault containment: a wave that throws TransientFault is
  /// retried from a clean lane state up to this many times before its
  /// requests fail with kError. Any other exception fails the wave
  /// immediately (still contained: the dispatcher keeps serving).
  int max_wave_retries = 2;
  /// Linear backoff between retry attempts (attempt k sleeps k * this);
  /// skipped while stopping so drain never dawdles.
  std::int64_t retry_backoff_us = 100;
  /// Deterministic fault schedule, keyed by wave index (never wall-clock).
  /// Structural events (fail-stop / slowdown / link degrade) are applied to
  /// the sharded backend before the first wave whose index reaches them;
  /// transient events make that wave's first execution attempts throw; data
  /// events (weight / spike / membrane flips) corrupt that wave's first
  /// `failures` attempts and are undone/regenerated between attempts.
  FaultPlan faults;
  /// Data-integrity protection switches (all off by default — bit-exact
  /// historical behavior). See runtime/integrity.hpp.
  IntegrityConfig integrity;
};

/// Aggregate telemetry snapshot. Histograms record microseconds.
struct ServerStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;  ///< ring full or server stopped
  std::uint64_t completed = 0;
  std::uint64_t timed_out = 0;  ///< shed by TTL before execution
  std::uint64_t errored = 0;    ///< wave threw, retries exhausted
  std::uint64_t waves = 0;
  std::uint64_t full_waves = 0;      ///< fired because the target filled
  std::uint64_t deadline_waves = 0;  ///< fired by max_queue_delay_us
  std::uint64_t drain_waves = 0;     ///< fired by stop() draining
  int wave_grows = 0;
  int wave_shrinks = 0;
  int target_lanes = 0;  ///< controller target at snapshot time
  // Fault-domain telemetry (bench/fault_profile.cpp and the CI --fault guard
  // reconcile these against the FaultPlan that was injected).
  std::uint64_t wave_retries = 0;      ///< retry attempts after TransientFault
  std::uint64_t wave_errors = 0;       ///< waves that ended in kError
  std::uint64_t transient_faults = 0;  ///< TransientFault throws observed
  std::uint64_t cluster_failures = 0;  ///< fail-stop events accepted
  std::uint64_t faults_applied = 0;    ///< structural events applied in total
  int degrade_replans = 0;   ///< backend re-plan passes (one per fail-stop)
  int active_clusters = 0;   ///< surviving clusters at snapshot time
  // Data-integrity telemetry (bench/integrity_profile.cpp and the CI
  // --integrity guard reconcile these against the injected data faults).
  std::uint64_t corrupted = 0;           ///< requests that ended kCorrupted
  std::uint64_t integrity_checks = 0;    ///< seal verifications performed
  std::uint64_t integrity_mismatches = 0;  ///< verifications that failed
  std::uint64_t integrity_faults = 0;    ///< IntegrityFault throws observed
  /// Individual flips physically applied (an event active for k attempts
  /// counts k times — what actually hit live buffers).
  std::uint64_t data_faults_injected = 0;
  std::uint64_t redundant_waves = 0;     ///< waves that ran a shadow pass
  std::uint64_t crc_sealed_bytes = 0;    ///< bytes sealed or verified
  /// Modeled checker cycles: crc_sealed_bytes / crc_bytes_per_cycle — the
  /// protection overhead benches report against served cycles.
  double crc_cycles = 0;
  common::LogHistogram latency_us;  ///< enqueue -> complete
  common::LogHistogram queue_us;    ///< enqueue -> dispatch
  common::RunningStats wave_lanes;       ///< occupied lanes per wave
  common::RunningStats wave_occupancy;   ///< occupied / max_wave_lanes
  common::RunningStats queue_depth;      ///< backlog at dispatch
  common::RunningStats target_trace;     ///< controller target per wave
};

class InferenceServer {
 public:
  InferenceServer(const snn::Network& net, const kernels::RunOptions& opt,
                  const BackendConfig& backend = {},
                  const ServerConfig& server = {},
                  const arch::EnergyParams& energy = {});
  ~InferenceServer();  ///< stop()s first

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Thread-safe, lock-free, allocation-free admission. False = rejected
  /// (ring full or server stopped); the request is untouched apart from its
  /// state and may be resubmitted. On true the server owns `req` until its
  /// state turns terminal — keep it alive and call req.wait().
  bool submit(ServeRequest& req);

  /// Close admission, drain every queued request through normal waves, join
  /// the dispatcher. Idempotent; the destructor calls it.
  void stop();

  ServerStats stats() const;
  const InferenceEngine& engine() const { return engine_; }
  const ServerConfig& config() const { return cfg_; }
  int max_wave_lanes() const { return max_lanes_; }
  /// Current SLO-controller wave-size target.
  int target_lanes() const {
    return target_lanes_.load(std::memory_order_relaxed);
  }

 private:
  void dispatcher_loop();
  /// Block until work arrives, stop() is called, or (when `has_deadline`)
  /// the deadline passes. Never spins: sleeps on wake_cv_.
  void wait_for_work(bool has_deadline, std::uint64_t deadline_ns);
  void execute_wave(std::size_t wn, int target, int fire_reason);
  /// Effective TTL in ns (0 = none): per-request override, else the config
  /// default, else unbounded.
  std::uint64_t ttl_ns(const ServeRequest& req) const;
  /// Publish kTimedOut on an expired request (dispatcher thread only).
  void shed_expired(ServeRequest* req, std::uint64_t now);
  /// Apply every structural fault event whose wave index has arrived and
  /// collect this wave's data-corruption events into wave_data_faults_;
  /// returns how many transient failures the coming wave must survive.
  int apply_fault_events();
  /// Lazily size the shadow-pass buffers for redundant-lane execution.
  void ensure_shadow();
  /// Hysteresis-gated wave-size update; see the header comment. Returns
  /// +1 / -1 / 0 for grow / shrink / hold (stats are recorded by the caller).
  int update_controller(std::size_t wn, int target, int fire_reason,
                        std::size_t backlog);

  InferenceEngine engine_;
  ServerConfig cfg_;
  int max_lanes_ = 1;
  std::int64_t delay_ns_ = 0;
  std::shared_ptr<WorkerPool> pool_;
  /// Non-null when the backend is sharded: the target for structural fault
  /// injection and the source of degraded-mode telemetry.
  const ShardedBackend* sharded_ = nullptr;

  BoundedMpscQueue<ServeRequest*> queue_;
  std::atomic<bool> closed_{false};  ///< admission closed (stop() phase 1)
  std::atomic<bool> stop_{false};    ///< dispatcher drain+exit (phase 2)
  std::atomic<int> submitting_{0};   ///< submits between closed_-check & push
  std::mutex join_mu_;
  std::atomic<bool> sleeping_{false};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;

  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<int> target_lanes_{1};

  // Dispatcher-owned wave state (pre-sized at construction; reused forever).
  std::vector<ServeRequest*> wave_;
  std::vector<std::uint64_t> enqueue_snap_;  ///< see execute_wave()
  std::vector<snn::NetworkState> states_;
  std::vector<InferenceResult> steps_;
  std::vector<InferenceEngine::BatchLane> lanes_;

  // Data-integrity state (dispatcher-owned). weight_seals_ is computed once
  // at construction when checksum_weights is armed; out_crc_/out_bytes_
  // chain each lane's per-timestep completion seal; the shadow buffers back
  // redundant-lane execution and are allocated lazily on the first
  // redundant wave (only servers that use the mode pay its state memory).
  std::vector<Seal> weight_seals_;
  std::vector<FaultEvent> wave_data_faults_;  ///< this wave's data events
  std::vector<std::uint32_t> out_crc_;
  std::vector<std::uint64_t> out_bytes_;
  std::vector<snn::NetworkState> shadow_states_;
  std::vector<InferenceResult> shadow_steps_;
  std::vector<InferenceEngine::BatchLane> shadow_lanes_;
  std::vector<std::uint32_t> shadow_crc_;
  std::vector<std::uint64_t> shadow_bytes_;

  // Controller streaks (dispatcher-owned).
  int grow_streak_ = 0;
  int shrink_streak_ = 0;

  // Fault-plan replay state (dispatcher-owned): wave_index_ counts executed
  // waves (shed-to-empty waves do not count) and next_fault_ is the cursor
  // into the plan's wave-sorted events — each event fires exactly once, at
  // the first wave whose index reaches it.
  std::uint64_t wave_index_ = 0;
  std::size_t next_fault_ = 0;

  mutable std::mutex stats_mu_;
  ServerStats stats_;

  std::thread dispatcher_;  ///< started last, joined by stop()
};

}  // namespace spikestream::runtime
