#include "runtime/backend_cycle.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "arch/cluster.hpp"
#include "common/rng.hpp"
#include "kernels/cost_model.hpp"
#include "kernels/iss_kernels.hpp"
#include "kernels/tiling.hpp"

namespace spikestream::runtime {

namespace {

constexpr int kWeightUniverse = 512;
constexpr double kRatioLo = 0.5;  ///< sanity clamp: model and ISS are
constexpr double kRatioHi = 2.0;  ///< cross-validated within ~15%

arch::Cluster calibration_cluster() {
  arch::ClusterConfig cfg;
  // Cold-I$ effects are charged separately (icache_layer_warmup), so the
  // calibration loops run with a warm cache, exactly like the model-vs-ISS
  // cross-validation tests.
  cfg.icache_miss_penalty = 0;
  return arch::Cluster(cfg);
}

std::vector<std::uint16_t> rand_idcs(int n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::uint16_t> v;
  v.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    v.push_back(static_cast<std::uint16_t>(
        rng.uniform_u64(static_cast<std::uint64_t>(kWeightUniverse))));
  }
  return v;
}

// Logarithmic length grid shared by every ratio cache: ~12% granularity (6
// buckets per octave). bucket_index() maps a requested length onto the grid;
// bucket_length() is the representative length the calibration run replays —
// a pure function of the request, so ratios are independent of lookup order.
constexpr double kBucketsPerOctave = 6.0;

std::size_t bucket_index(double len, double lo, double hi) {
  const double x = std::clamp(len, lo, hi);
  const double base = std::log2(lo) * kBucketsPerOctave;
  return static_cast<std::size_t>(
      std::lround(std::log2(x) * kBucketsPerOctave - base));
}

long bucket_length(std::size_t idx, double lo, double hi) {
  const double base = std::log2(lo) * kBucketsPerOctave;
  const double len =
      std::exp2((static_cast<double>(idx) + base) / kBucketsPerOctave);
  return std::clamp(static_cast<long>(std::lround(len)),
                    static_cast<long>(lo), static_cast<long>(hi));
}

std::size_t sparse_bucket(double len) { return bucket_index(len, 1, 256); }
long sparse_bucket_length(std::size_t idx) { return bucket_length(idx, 1, 256); }

std::size_t dense_bucket(double len) { return bucket_index(len, 8, 4096); }
long dense_bucket_length(std::size_t idx) {
  long b = bucket_length(idx, 8, 4096);
  b += b & 1;  // the 2-accumulator ISS dot requires an even length
  return b;
}

}  // namespace

CycleAccurateBackend::CycleAccurateBackend(const kernels::RunOptions& opt,
                                           int sample_spvas, bool memoize_cost)
    : AnalyticalBackend(opt, memoize_cost),
      sample_spvas_(std::max(4, sample_spvas)) {
  sparse_cache_.fill(-1.0);
  dense_cache_.fill(-1.0);
  dense_no_tc_cache_.fill(-1.0);
  baseline_dense_cache_.fill(-1.0);
}

void CycleAccurateBackend::prepare(const snn::Network& net) const {
  (void)net;  // grid bounds are workload-independent
  // Calibrate by bucket *index*, not by representative length: several low
  // indices share a rounded representative length, so a length-driven loop
  // would leave those slots cold and steady-state requests landing on them
  // would still calibrate (and allocate) lazily. Sparse SpVA ratios cover
  // every variant's conv/FC path; the dense grids are only reachable from
  // specific variants — skip the unreachable ones.
  for (std::size_t i = 0; i < kSparseBuckets; ++i) sparse_ratio_bucket(i);
  for (std::size_t i = 0; i < kDenseBuckets; ++i) {
    if (opt_.variant == kernels::Variant::kBaseline) {
      baseline_dense_ratio_bucket(i);
    } else {
      dense_ratio_bucket(i);
    }
    if (opt_.variant == kernels::Variant::kDenseNoTc) {
      dense_no_tc_ratio_bucket(i);
    }
  }
}

double CycleAccurateBackend::sparse_ratio(double len) const {
  return sparse_ratio_bucket(sparse_bucket(len));
}

double CycleAccurateBackend::sparse_ratio_bucket(std::size_t idx) const {
  const long b = sparse_bucket_length(idx);
  std::lock_guard<std::mutex> lock(mu_);
  if (sparse_cache_[idx] >= 0) return sparse_cache_[idx];

  const kernels::CostParams& p = opt_.cost;
  auto cl = calibration_cluster();
  std::vector<double> w(kWeightUniverse, 1.0);
  double measured = 0, modeled = 0;
  if (opt_.variant == kernels::Variant::kBaseline) {
    // One long baseline SpVA amortizes the microkernel prologue so the ratio
    // tracks the per-element slope (Listing 1b).
    const int n = static_cast<int>(
        std::min<long>(b * sample_spvas_, 4096L));
    const auto r = kernels::iss_baseline_spva(cl, w, rand_idcs(n, 11u + b));
    measured = static_cast<double>(r.cycles);
    modeled = kernels::baseline_spva_cycles(p, n);
  } else {
    // Back-to-back streamed SpVAs exercising the SSR shadow-register overlap
    // (Listing 1c), matching how the conv kernel issues them.
    std::vector<std::vector<std::uint16_t>> streams;
    streams.reserve(static_cast<std::size_t>(sample_spvas_));
    for (int j = 0; j < sample_spvas_; ++j) {
      streams.push_back(rand_idcs(static_cast<int>(b),
                                  100u + static_cast<std::uint64_t>(j)));
    }
    const auto r = kernels::iss_spikestream_spva_sequence(cl, w, streams);
    measured = static_cast<double>(r.cycles);
    modeled = kernels::spikestream_spva_cycles(p, static_cast<double>(b), 1.0) *
              sample_spvas_;
  }
  const double ratio =
      std::clamp(modeled > 0 ? measured / modeled : 1.0, kRatioLo, kRatioHi);
  sparse_cache_[idx] = ratio;
  return ratio;
}

double CycleAccurateBackend::dense_ratio(double len) const {
  return dense_ratio_bucket(dense_bucket(len));
}

double CycleAccurateBackend::dense_ratio_bucket(std::size_t idx) const {
  const long b = dense_bucket_length(idx);
  std::lock_guard<std::mutex> lock(mu_);
  if (dense_cache_[idx] >= 0) return dense_cache_[idx];

  const kernels::CostParams& p = opt_.cost;
  auto cl = calibration_cluster();
  std::vector<double> a(static_cast<std::size_t>(b), 1.0);
  std::vector<double> w(static_cast<std::size_t>(b), 0.5);
  const auto r = kernels::iss_dense_dot(cl, a, w, p.dense_accumulators);
  const double modeled =
      kernels::spikestream_dense_dot_cycles(p, static_cast<double>(b), 1.0);
  const double ratio = std::clamp(
      modeled > 0 ? static_cast<double>(r.cycles) / modeled : 1.0, kRatioLo,
      kRatioHi);
  dense_cache_[idx] = ratio;
  return ratio;
}

double CycleAccurateBackend::dense_no_tc_ratio(double len) const {
  // The kDenseNoTc ablation walks the whole fan-in with an affine weight
  // stream and the dense 0/1 activation vector alongside — exactly the
  // two-stream fmadd loop of iss_dense_dot, but with a single accumulator
  // (it replaces the sparse SpVA's reduction register one for one). The
  // layer model optimistically charges it at the fadd II; the ISS twin
  // surfaces the real single-accumulator fmadd II, instead of the silent
  // ratio of 1.0 this variant used to get.
  return dense_no_tc_ratio_bucket(dense_bucket(len));
}

double CycleAccurateBackend::dense_no_tc_ratio_bucket(std::size_t idx) const {
  const long b = dense_bucket_length(idx);
  std::lock_guard<std::mutex> lock(mu_);
  if (dense_no_tc_cache_[idx] >= 0) return dense_no_tc_cache_[idx];

  const kernels::CostParams& p = opt_.cost;
  auto cl = calibration_cluster();
  std::vector<double> act(static_cast<std::size_t>(b), 1.0);
  std::vector<double> w(static_cast<std::size_t>(b), 0.5);
  const auto r = kernels::iss_dense_dot(cl, act, w, 1);
  const double modeled =
      p.fadd_latency * static_cast<double>(b) + p.ss_residue;
  const double ratio = std::clamp(
      modeled > 0 ? static_cast<double>(r.cycles) / modeled : 1.0, kRatioLo,
      kRatioHi);
  dense_no_tc_cache_[idx] = ratio;
  return ratio;
}

double CycleAccurateBackend::baseline_dense_ratio(double len) const {
  return baseline_dense_ratio_bucket(dense_bucket(len));
}

double CycleAccurateBackend::baseline_dense_ratio_bucket(
    std::size_t idx) const {
  const long b = dense_bucket_length(idx);
  std::lock_guard<std::mutex> lock(mu_);
  if (baseline_dense_cache_[idx] >= 0) return baseline_dense_cache_[idx];

  const kernels::CostParams& p = opt_.cost;
  auto cl = calibration_cluster();
  std::vector<double> act(static_cast<std::size_t>(b), 1.0);
  std::vector<double> w(static_cast<std::size_t>(b), 0.5);
  const auto r = kernels::iss_baseline_dense_dot(cl, act, w);
  const double modeled =
      kernels::baseline_dense_dot_cycles(p, static_cast<double>(b));
  const double ratio = std::clamp(
      modeled > 0 ? static_cast<double>(r.cycles) / modeled : 1.0, kRatioLo,
      kRatioHi);
  baseline_dense_cache_[idx] = ratio;
  return ratio;
}

void CycleAccurateBackend::retime(kernels::LayerRun& run, double ratio) const {
  const kernels::CostParams& p = opt_.cost;
  kernels::KernelStats& st = run.stats;
  const double warmup = p.icache_layer_warmup;
  st.compute_cycles =
      warmup + std::max(0.0, st.compute_cycles - warmup) * ratio;
  for (double& c : st.core_cycles) c *= ratio;
  // dma_saved_bytes > 0 marks a batch-reuse warm run: re-derive the overlap
  // from the same (weight-free) DMA timeline the analytical pass charged.
  // Segment-major plans take precedence inside overlap_cycles regardless of
  // the flag — their amortized timeline has no warm/cold split. The plan's
  // DMA timeline already carries the banked-DRAM pricing (row penalties,
  // spill overlap) when CostParams::dram is banked, so re-anchoring the
  // compute path keeps the row-hit/row-miss/hidden itemization in st intact.
  st.cycles = kernels::overlap_cycles(run.plan, st.compute_cycles,
                                      opt_.double_buffer,
                                      st.dma_saved_bytes > 0);
}

const kernels::LayerRun& CycleAccurateBackend::run_conv(
    const snn::LayerSpec& spec, const snn::LayerWeights& weights,
    const compress::CsrIfmap& ifmap, snn::Tensor& membrane,
    kernels::LayerScratch& scratch) const {
  AnalyticalBackend::run_conv(spec, weights, ifmap, membrane, scratch);
  kernels::LayerRun& run = scratch.main.run;
  if (opt_.variant == kernels::Variant::kDenseNoTc) {
    // Every window streams the full fan-in, so the representative dense
    // stream length is exact, not a mean.
    retime(run, dense_no_tc_ratio(spec.in_c));
    return run;
  }
  // Representative SpVA length: mean over every stream the kernel walks
  // (each of the k*k windows of every output position). Each input position
  // (y, x) is covered by cov(y)*cov(x) windows, so one O(positions) sweep
  // over the CSR row counts replaces the former O(positions * k^2) loop and
  // produces the identical sum (all addends are exact integers).
  double elems = 0;
  const int oh = spec.out_h(), ow = spec.out_w();
  const int ih = ifmap.h(), iw = ifmap.w();
  const int k = spec.k;
  auto coverage = [k](int pos, int out_dim) {
    return std::min(k - 1, pos) - std::max(0, pos - out_dim + 1) + 1;
  };
  for (int y = 0; y < ih; ++y) {
    const double cy = coverage(y, oh);
    for (int x = 0; x < iw; ++x) {
      elems += cy * coverage(x, ow) * ifmap.stream_len(y, x);
    }
  }
  const double n_streams =
      static_cast<double>(oh) * ow * spec.k * spec.k;
  retime(run, sparse_ratio(n_streams > 0 ? elems / n_streams : 1.0));
  return run;
}

void CycleAccurateBackend::time_fc(const snn::LayerSpec& spec,
                                   const compress::CsrIfmap& ifmap,
                                   kernels::LayerScratch& scratch) const {
  AnalyticalBackend::time_fc(spec, ifmap, scratch);
  kernels::LayerRun& run = scratch.main.run;
  const double segs = std::max(1, run.plan.in_segments);
  if (opt_.variant == kernels::Variant::kDenseNoTc) {
    retime(run, dense_no_tc_ratio(static_cast<double>(spec.in_c) / segs));
    return;
  }
  const double s_seg = static_cast<double>(ifmap.nnz()) / segs;
  retime(run, sparse_ratio(s_seg));
}

const kernels::LayerRun& CycleAccurateBackend::run_encode(
    const snn::LayerSpec& spec, const snn::LayerWeights& weights,
    const snn::Tensor& padded_image, snn::Tensor& membrane,
    kernels::LayerScratch& scratch) const {
  AnalyticalBackend::run_encode(spec, weights, padded_image, membrane,
                                scratch);
  kernels::LayerRun& run = scratch.main.run;
  const double dot_len =
      static_cast<double>(spec.k) * spec.k * spec.in_c;
  if (opt_.variant == kernels::Variant::kBaseline) {
    retime(run, baseline_dense_ratio(dot_len));
    return run;
  }
  retime(run, dense_ratio(dot_len));
  return run;
}

}  // namespace spikestream::runtime
