// Persistent worker pool: the one thread-spawn point of the runtime. The
// sharded backend (per-layer shard fan-out) and the batch runner (per-sample
// fan-out) used to each create std::thread workers per call — per *layer* in
// the sharded case, which broke the zero-allocation contract and paid thread
// start-up latency on the hottest path. The pool creates its threads once
// and hands out work through a lock-guarded intrusive job list:
//
//  * submitting a job allocates nothing — the Job lives on the submitter's
//    stack and the callable is a non-owning FunctionRef;
//  * the submitter always participates in its own job, so a pool with zero
//    threads degenerates to the serial loop and progress is guaranteed even
//    when every thread is busy (no deadlock under nesting: a batch-sample
//    task that fans out shards simply executes them itself while idle
//    threads help);
//  * results are deterministic by construction: tasks write disjoint outputs
//    and every merge happens in task order on the submitter, so the thread
//    count changes wall-clock only, never a result.
//
// Thread counts are clamped to hardware_concurrency() — oversubscription
// (batch workers x shard workers) is impossible by construction because both
// levels share the same fixed set of threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/function_ref.hpp"

namespace spikestream::runtime {

class WorkerPool {
 public:
  /// A pool with `threads` persistent workers, clamped to
  /// [0, hardware_concurrency() - 1] — the submitting thread is always the
  /// +1 that fills the machine.
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Run `fn(slot, index)` for every index in [0, n), blocking until all
  /// tasks finished. The caller participates. At most `max_slots` executors
  /// join; each concurrent executor of this job holds a distinct slot id in
  /// [0, max_slots), so callers can keep per-slot state (one NetworkState
  /// per batch worker). Reentrant: `fn` may itself call parallel_for on the
  /// same pool. The first exception thrown by a task is rethrown here after
  /// the job drains.
  void parallel_for(std::size_t n, std::size_t max_slots,
                    common::FunctionRef<void(std::size_t, std::size_t)> fn);

  int threads() const { return static_cast<int>(workers_.size()); }
  /// Maximum concurrent executors of one job: the workers plus a submitter.
  int slots() const { return static_cast<int>(workers_.size()) + 1; }

  /// `requested` clamped to [1, hardware_concurrency()].
  static int clamp_to_hardware(int requested);

 private:
  struct Job {
    Job(common::FunctionRef<void(std::size_t, std::size_t)> f, std::size_t n_,
        std::size_t max_slots_)
        : fn(f), n(n_), max_slots(max_slots_) {}
    common::FunctionRef<void(std::size_t, std::size_t)> fn;
    const std::size_t n;
    const std::size_t max_slots;
    std::atomic<std::size_t> next{0};        ///< task claim counter
    std::atomic<std::size_t> slot_count{0};  ///< executor slot counter
    // Guarded by the pool mutex:
    std::size_t done = 0;     ///< tasks finished (or skipped after an error)
    int active = 0;           ///< executors currently inside the job
    std::exception_ptr error;
    Job* next_job = nullptr;  ///< intrusive LIFO list link
  };

  /// Claim a slot and run tasks until the job is drained. Returns the number
  /// of tasks this executor accounted for (callers update `done` under the
  /// pool mutex).
  std::size_t run_tasks(Job& job, std::exception_ptr& error) const;

  void worker_loop();
  void unlink(Job* job);  // requires mu_ held

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: a job was pushed / stop
  std::condition_variable done_cv_;  ///< submitters: counts advanced
  Job* head_ = nullptr;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace spikestream::runtime
