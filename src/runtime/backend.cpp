#include "runtime/backend.hpp"

#include "common/check.hpp"
#include "runtime/backend_cycle.hpp"
#include "runtime/backend_sharded.hpp"

namespace spikestream::runtime {

const char* backend_name(BackendKind k) {
  switch (k) {
    case BackendKind::kAnalytical: return "analytical";
    case BackendKind::kCycleAccurate: return "cycle-accurate";
    case BackendKind::kSharded: return "sharded";
  }
  return "?";
}

std::unique_ptr<ExecutionBackend> make_backend(const kernels::RunOptions& opt,
                                               const BackendConfig& cfg) {
  switch (cfg.kind) {
    case BackendKind::kAnalytical:
      return std::make_unique<AnalyticalBackend>(opt);
    case BackendKind::kCycleAccurate:
      return std::make_unique<CycleAccurateBackend>(opt, cfg.iss_sample_spvas);
    case BackendKind::kSharded:
      return std::make_unique<ShardedBackend>(opt, cfg.clusters,
                                              cfg.shard_threads);
  }
  SPK_CHECK(false, "unknown backend kind");
  return nullptr;
}

}  // namespace spikestream::runtime
