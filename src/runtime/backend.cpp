#include "runtime/backend.hpp"

#include <cmath>
#include <cstring>

#include "common/check.hpp"
#include "runtime/backend_cycle.hpp"
#include "runtime/backend_sharded.hpp"

namespace spikestream::runtime {

const char* backend_name(BackendKind k) {
  switch (k) {
    case BackendKind::kAnalytical: return "analytical";
    case BackendKind::kCycleAccurate: return "cycle-accurate";
    case BackendKind::kSharded: return "sharded";
  }
  return "?";
}

namespace {

/// Logarithmic occupancy bucket (~12% granularity): spike counts within one
/// bucket share a memoized timing result, which bounds the relative cycle
/// deviation by the bucket width.
long occupancy_bucket(std::size_t nnz) {
  if (nnz == 0) return -1;
  return static_cast<long>(
      std::floor(std::log2(static_cast<double>(nnz)) * 6.0));
}

/// Occupancies within this fraction of a layer's running average share its
/// bucket. Tighter than the ~12% bucket width, so snapping adds at most one
/// bucket of extra deviation while removing the edge-jitter misses.
constexpr double kEmaSnapBand = 0.10;
constexpr double kEmaAlpha = 0.25;

}  // namespace

long CostMemo::snapped_bucket(double& ema, std::size_t nnz) const {
  const double x = static_cast<double>(nnz);
  if (ema >= 0.0 && std::abs(x - ema) <= kEmaSnapBand * std::max(ema, 1.0)) {
    const long b =
        occupancy_bucket(static_cast<std::size_t>(std::llround(ema)));
    ema += kEmaAlpha * (x - ema);
    return b;
  }
  ema = x;  // jumped out of the band: restart the average here
  return occupancy_bucket(nnz);
}

CostMemo::Key CostMemo::make_key(const snn::LayerSpec& spec,
                                 std::size_t in_nnz,
                                 std::size_t out_nnz) const {
  const std::uint64_t sig = kernels::layer_signature(spec);
  std::lock_guard<std::mutex> lock(mu_);
  Ema& e = ema_[sig];
  return {sig, snapped_bucket(e.in, in_nnz), snapped_bucket(e.out, out_nnz)};
}

bool CostMemo::lookup(const Key& key, kernels::LayerRun& run) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = cache_.find(key);
  if (it == cache_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  run.stats = it->second.stats;  // copy-assign reuses core_cycles capacity
  run.plan = it->second.plan;
  return true;
}

void CostMemo::insert(const Key& key, const kernels::LayerRun& run) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.emplace(key, Value{run.stats, run.plan});
}

// ---------------------------------------------------------------------------
// AnalyticalBackend
// ---------------------------------------------------------------------------

const kernels::LayerRun& AnalyticalBackend::run_conv(
    const snn::LayerSpec& spec, const snn::LayerWeights& weights,
    const compress::CsrIfmap& ifmap, snn::Tensor& membrane,
    kernels::LayerScratch& scratch) const {
  kernels::KernelScratch& ks = scratch.main;
  kernels::conv_functional(spec, weights, ifmap, membrane, ks);
  if (memo_) {
    const auto key = memo_->make_key(spec, ifmap.nnz(), ks.run.out_nnz);
    if (memo_->lookup(key, ks.run)) return ks.run;
    kernels::conv_timing(spec, ifmap, opt_, ks);
    memo_->insert(key, ks.run);
    return ks.run;
  }
  kernels::conv_timing(spec, ifmap, opt_, ks);
  return ks.run;
}

const kernels::LayerRun& AnalyticalBackend::run_fc(
    const snn::LayerSpec& spec, const snn::LayerWeights& weights,
    const compress::CsrIfmap& ifmap, snn::Tensor& membrane,
    kernels::LayerScratch& scratch) const {
  kernels::KernelScratch& ks = scratch.main;
  kernels::fc_functional(spec, weights, ifmap, membrane, ks);
  if (memo_) {
    const auto key = memo_->make_key(spec, ifmap.nnz(), ks.run.out_nnz);
    if (memo_->lookup(key, ks.run)) return ks.run;
    kernels::fc_timing(spec, ifmap, opt_, ks);
    memo_->insert(key, ks.run);
    return ks.run;
  }
  kernels::fc_timing(spec, ifmap, opt_, ks);
  return ks.run;
}

const kernels::LayerRun& AnalyticalBackend::run_encode(
    const snn::LayerSpec& spec, const snn::LayerWeights& weights,
    const snn::Tensor& padded_image, snn::Tensor& membrane,
    kernels::LayerScratch& scratch) const {
  kernels::KernelScratch& ks = scratch.main;
  kernels::encode_functional(spec, weights, padded_image, membrane, ks);
  if (memo_) {
    // The dense input has no occupancy; key on the output spikes only.
    const auto key = memo_->make_key(spec, 0, ks.run.out_nnz);
    if (memo_->lookup(key, ks.run)) return ks.run;
    kernels::encode_timing(spec, opt_, ks);
    memo_->insert(key, ks.run);
    return ks.run;
  }
  kernels::encode_timing(spec, opt_, ks);
  return ks.run;
}

std::unique_ptr<ExecutionBackend> make_backend(
    const kernels::RunOptions& opt, const BackendConfig& cfg,
    std::shared_ptr<WorkerPool> pool) {
  switch (cfg.kind) {
    case BackendKind::kAnalytical:
      return std::make_unique<AnalyticalBackend>(opt, cfg.memoize_cost);
    case BackendKind::kCycleAccurate:
      return std::make_unique<CycleAccurateBackend>(opt, cfg.iss_sample_spvas,
                                                    cfg.memoize_cost);
    case BackendKind::kSharded:
      return std::make_unique<ShardedBackend>(opt, cfg.clusters,
                                              cfg.shard_threads, cfg.partition,
                                              cfg.noc, std::move(pool));
  }
  SPK_CHECK(false, "unknown backend kind");
  return nullptr;
}

}  // namespace spikestream::runtime
