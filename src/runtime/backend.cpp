#include "runtime/backend.hpp"

#include <cmath>
#include <cstring>

#include "common/check.hpp"
#include "runtime/backend_cycle.hpp"
#include "runtime/backend_sharded.hpp"
#include "snn/state.hpp"

namespace spikestream::runtime {

const char* backend_name(BackendKind k) {
  switch (k) {
    case BackendKind::kAnalytical: return "analytical";
    case BackendKind::kCycleAccurate: return "cycle-accurate";
    case BackendKind::kSharded: return "sharded";
  }
  return "?";
}

namespace {

/// Logarithmic occupancy bucket (~12% granularity): spike counts within one
/// bucket share a memoized timing result, which bounds the relative cycle
/// deviation by the bucket width.
long occupancy_bucket(std::size_t nnz) {
  if (nnz == 0) return -1;
  return static_cast<long>(
      std::floor(std::log2(static_cast<double>(nnz)) * 6.0));
}

/// Occupancies within this fraction of a layer's running average share its
/// bucket. Tighter than the ~12% bucket width, so snapping adds at most one
/// bucket of extra deviation while removing the edge-jitter misses.
constexpr double kEmaSnapBand = 0.10;
constexpr double kEmaAlpha = 0.25;

/// Memo table capacity (power of two). Sized for hundreds of distinct
/// (layer, occupancy-bucket) keys — an order of magnitude above what the
/// S-VGG11 batch workload produces — while keeping the pre-reserved slot
/// arena small. Inserts beyond ~this many distinct keys are dropped.
constexpr std::size_t kMemoCapacity = 2048;

/// Pre-reserved per-core cycle capacity of each slot: covers any plausible
/// `RunOptions::cores`, so storing a result never grows the slot's vector.
constexpr std::size_t kMemoCoreReserve = 32;

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

/// Key salt for runs whose weight tile is already SPM-resident (batch-level
/// weight-tile reuse): warm and cold runs of the same occupancy bucket have
/// different DMA timelines and must not share a memo entry.
constexpr std::uint64_t kWarmWeightsSalt = 0x9e3779b97f4a7c15ull;

}  // namespace

CostMemo::CostMemo() : slots_(kMemoCapacity) {
  for (Slot& s : slots_) {
    s.value.stats.core_cycles.reserve(kMemoCoreReserve);
  }
}

std::size_t CostMemo::probe_start(const Key& key) const {
  const std::uint64_t h =
      mix64(std::get<0>(key) ^
            mix64(static_cast<std::uint64_t>(std::get<1>(key)) * 31 +
                  static_cast<std::uint64_t>(std::get<2>(key))));
  return static_cast<std::size_t>(h) & (kMemoCapacity - 1);
}

CostMemo::Slot* CostMemo::find_slot(const Key& key) const {
  std::size_t i = probe_start(key);
  for (std::size_t n = 0; n < kMemoCapacity; ++n) {
    Slot& s = slots_[i];
    if (!s.used || s.key == key) return &s;
    i = (i + 1) & (kMemoCapacity - 1);
  }
  return nullptr;  // table full and key absent
}

long CostMemo::snapped_bucket(double& ema, std::size_t nnz) const {
  const double x = static_cast<double>(nnz);
  if (ema >= 0.0 && std::abs(x - ema) <= kEmaSnapBand * std::max(ema, 1.0)) {
    const long b =
        occupancy_bucket(static_cast<std::size_t>(std::llround(ema)));
    ema += kEmaAlpha * (x - ema);
    return b;
  }
  ema = x;  // jumped out of the band: restart the average here
  return occupancy_bucket(nnz);
}

CostMemo::Key CostMemo::make_key(const snn::LayerSpec& spec,
                                 std::size_t in_nnz, std::size_t out_nnz,
                                 std::uint64_t salt) const {
  const std::uint64_t sig = kernels::layer_signature(spec) ^ salt;
  std::lock_guard<std::mutex> lock(mu_);
  Ema& e = ema_[sig];
  return {sig, snapped_bucket(e.in, in_nnz), snapped_bucket(e.out, out_nnz)};
}

bool CostMemo::lookup(const Key& key, kernels::LayerRun& run) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Slot* s = find_slot(key);
  if (s == nullptr || !s->used) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  run.stats = s->value.stats;  // copy-assign reuses core_cycles capacity
  run.plan = s->value.plan;
  return true;
}

void CostMemo::insert(const Key& key, const kernels::LayerRun& run) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot* s = find_slot(key);
  if (s == nullptr || s->used) return;  // full, or a racing writer won
  s->key = key;
  s->value.stats = run.stats;  // slot's core_cycles capacity is pre-reserved
  s->value.plan = run.plan;
  s->used = true;
}

void ExecutionBackend::run_fc_batch(const snn::LayerSpec& spec,
                                    const snn::LayerWeights& weights,
                                    std::span<const FcBatchLane> lanes) const {
  for (const FcBatchLane& lane : lanes) {
    run_fc(spec, weights, *lane.ifmap, *lane.membrane, *lane.scratch);
  }
}

void ExecutionBackend::presize_state(snn::NetworkState& state,
                                     const snn::Network& net) const {
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const snn::LayerSpec& spec = net.layer(l);
    kernels::LayerScratch& scratch = state.scratch(l);
    const std::size_t positions = static_cast<std::size_t>(spec.in_h) *
                                  static_cast<std::size_t>(spec.in_w);
    const std::size_t in_elems =
        positions * static_cast<std::size_t>(spec.in_c);
    // Input-compression arena: worst case is every input neuron spiking.
    scratch.csr.reserve(positions, in_elems);
    // Hoisted weight-row pointers of one receptive field: k*k full streams.
    scratch.main.rows.reserve(spec.fan_in());
  }
}

// ---------------------------------------------------------------------------
// AnalyticalBackend
// ---------------------------------------------------------------------------

namespace {

/// Memo key salt for this run's weight-residency mode. A memo hit must also
/// mark the scratch warm — the cached stats were computed under the same
/// salt, so the skipped timing pass would have done exactly that.
std::uint64_t warm_salt(const kernels::RunOptions& opt,
                        const kernels::KernelScratch& ks) {
  return opt.batch_weight_reuse && ks.weights_warm ? kWarmWeightsSalt : 0;
}

}  // namespace

const kernels::LayerRun& AnalyticalBackend::run_conv(
    const snn::LayerSpec& spec, const snn::LayerWeights& weights,
    const compress::CsrIfmap& ifmap, snn::Tensor& membrane,
    kernels::LayerScratch& scratch) const {
  kernels::KernelScratch& ks = scratch.main;
  kernels::conv_functional(spec, weights, ifmap, membrane, ks);
  if (memo_) {
    const auto key = memo_->make_key(spec, ifmap.nnz(), ks.run.out_nnz,
                                     warm_salt(opt_, ks));
    if (memo_->lookup(key, ks.run)) {
      ks.weights_warm = true;
      return ks.run;
    }
    kernels::conv_timing(spec, ifmap, opt_, ks);
    memo_->insert(key, ks.run);
    return ks.run;
  }
  kernels::conv_timing(spec, ifmap, opt_, ks);
  return ks.run;
}

const kernels::LayerRun& AnalyticalBackend::run_fc(
    const snn::LayerSpec& spec, const snn::LayerWeights& weights,
    const compress::CsrIfmap& ifmap, snn::Tensor& membrane,
    kernels::LayerScratch& scratch) const {
  kernels::fc_functional(spec, weights, ifmap, membrane, scratch.main);
  time_fc(spec, ifmap, scratch);
  return scratch.main.run;
}

void AnalyticalBackend::time_fc(const snn::LayerSpec& spec,
                                const compress::CsrIfmap& ifmap,
                                kernels::LayerScratch& scratch) const {
  kernels::KernelScratch& ks = scratch.main;
  if (memo_) {
    const auto key = memo_->make_key(spec, ifmap.nnz(), ks.run.out_nnz,
                                     warm_salt(opt_, ks));
    if (memo_->lookup(key, ks.run)) {
      ks.weights_warm = true;
      return;
    }
    kernels::fc_timing(spec, ifmap, opt_, ks);
    memo_->insert(key, ks.run);
    return;
  }
  kernels::fc_timing(spec, ifmap, opt_, ks);
}

void AnalyticalBackend::run_fc_batch(
    const snn::LayerSpec& spec, const snn::LayerWeights& weights,
    std::span<const FcBatchLane> lanes) const {
  if (lanes.size() <= 1 || opt_.segment_major_lanes <= 1) {
    ExecutionBackend::run_fc_batch(spec, weights, lanes);
    return;
  }
  // Band-major functional sweep across every lane (the host-side mirror of
  // streaming each weight band into SPM once per batch), then the usual
  // per-lane timing pass — which charges the same deterministic amortized
  // numbers the serial path charges, so this call is bit-identical to the
  // per-lane loop in both spikes and stats.
  kernels::fc_functional_batch(spec, weights, lanes);
  for (const FcBatchLane& lane : lanes) {
    time_fc(spec, *lane.ifmap, *lane.scratch);
  }
}

const kernels::LayerRun& AnalyticalBackend::run_encode(
    const snn::LayerSpec& spec, const snn::LayerWeights& weights,
    const snn::Tensor& padded_image, snn::Tensor& membrane,
    kernels::LayerScratch& scratch) const {
  kernels::KernelScratch& ks = scratch.main;
  kernels::encode_functional(spec, weights, padded_image, membrane, ks);
  if (memo_) {
    // The dense input has no occupancy; key on the output spikes only.
    const auto key =
        memo_->make_key(spec, 0, ks.run.out_nnz, warm_salt(opt_, ks));
    if (memo_->lookup(key, ks.run)) {
      ks.weights_warm = true;
      return ks.run;
    }
    kernels::encode_timing(spec, opt_, ks);
    memo_->insert(key, ks.run);
    return ks.run;
  }
  kernels::encode_timing(spec, opt_, ks);
  return ks.run;
}

std::unique_ptr<ExecutionBackend> make_backend(
    const kernels::RunOptions& opt, const BackendConfig& cfg,
    std::shared_ptr<WorkerPool> pool) {
  switch (cfg.kind) {
    case BackendKind::kAnalytical:
      return std::make_unique<AnalyticalBackend>(opt, cfg.memoize_cost);
    case BackendKind::kCycleAccurate:
      return std::make_unique<CycleAccurateBackend>(opt, cfg.iss_sample_spvas,
                                                    cfg.memoize_cost);
    case BackendKind::kSharded:
      return std::make_unique<ShardedBackend>(
          opt, cfg.clusters, cfg.shard_threads, cfg.partition, cfg.noc,
          std::move(pool), cfg.shard_min_work, cfg.replan, cfg.pipeline);
  }
  SPK_CHECK(false, "unknown backend kind");
  return nullptr;
}

}  // namespace spikestream::runtime
