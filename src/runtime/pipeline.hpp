// Stage-overlapped (pipelined) batch executor: where BatchRunner fans whole
// samples out across worker slots, the pipelined runner overlaps the *layers*
// of consecutive samples — layer L of sample i runs concurrently with layer
// L+1 of sample i-1 — using the engine's per-layer stepping API
// (InferenceEngine::begin_sample / run_layer).
//
// Execution model: one sample's timestep is a chain of `layers` stages (a
// multi-timestep run is `timesteps * layers` stages — membranes integrate, so
// a sample's timesteps can never overlap each other). Samples advance through
// the stages in lockstep "ticks": at tick t, every in-flight sample executes
// its next stage, all stage executions of one tick running concurrently on
// the persistent WorkerPool. `depth` bounds how many samples are in flight —
// each in-flight sample owns one pipeline lane (a full snn::NetworkState:
// membranes + per-layer LayerScratch), so depth 2 is the classic
// double-buffered pipeline and lane reuse is only possible after the previous
// occupant fully drained. Concurrent stages touch disjoint lanes by
// construction, which is exactly the aliasing contract run_layer documents.
//
// Results are bit-identical to a serial BatchRunner run for every depth,
// backend and worker count: each sample executes exactly the operations the
// serial path executes, on its own state, and all merges happen in sample
// order (tests/test_pipeline.cpp pins this across depths x backends x
// cluster counts). The one carve-out is RunOptions::batch_weight_reuse,
// which is *about* lane history: the first sample of each lane is charged
// cold weight DMA, so modeled DMA/cycles (never spikes) vary with depth,
// and — because lanes stay warm across run() calls — a runner's second
// batch starts with all lanes warm. The rotation sample -> lane (i mod
// depth) is deterministic, unlike the racing slot assignment of a
// multithreaded BatchRunner.
//
// Segment-major lockstep: stage overlap keeps in-flight samples at
// *different* layers, which is exactly what the segment-major batched FC
// schedule (RunOptions::segment_major_lanes) cannot use — it wants all
// lanes at the same segmented FC layer so each weight band streams once for
// the whole set. With segment_major_lanes >= 2 the runner therefore trades
// stage overlap for lockstep waves: `depth` samples advance layer by layer
// together (non-FC layers fan the lanes out on the pool; segmented FC
// layers execute as one batch-scope InferenceEngine::run_layer_batch call).
// Both schedules overlap the same host work; outputs and modeled stats stay
// bit-identical to the serial path either way, and lanes keep their
// weight-residency history across calls exactly as before.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "common/function_ref.hpp"
#include "runtime/engine.hpp"
#include "runtime/multistep.hpp"

namespace spikestream::runtime {

class WorkerPool;

class PipelinedBatchRunner {
 public:
  /// `depth` = maximum samples in flight (clamped to >= 1; 1 degenerates to
  /// the serial BatchRunner order). `workers` = 0 picks
  /// std::thread::hardware_concurrency().
  PipelinedBatchRunner(const snn::Network& net, const kernels::RunOptions& opt,
                       const BackendConfig& backend = {},
                       const arch::EnergyParams& energy = {}, int depth = 2,
                       int workers = 0);
  ~PipelinedBatchRunner();

  /// `timesteps` LIF steps per image (constant-current coding). Results are
  /// in input order and independent of depth and worker count.
  std::vector<MultiStepResult> run(const std::vector<snn::Tensor>& images,
                                   int timesteps = 1) const;

  /// Single-timestep variant keeping the full per-layer metrics per sample.
  std::vector<InferenceResult> run_single_step(
      const std::vector<snn::Tensor>& images) const;

  const InferenceEngine& engine() const { return engine_; }
  int depth() const { return depth_; }

 private:
  /// One in-flight sample: its network state, the per-timestep result being
  /// filled, and the inter-layer spike carry.
  struct Lane {
    snn::NetworkState state;
    InferenceResult step;
    const snn::SpikeMap* carry = nullptr;
  };

  /// Borrow the warmed lane set (or build one on first use / while another
  /// run holds it) and return it afterwards — pipeline lanes are full
  /// NetworkStates, and rebuilding `depth` of them per call would cost more
  /// than a short batch saves. Returned lanes keep their arenas (and their
  /// weight-residency marks: with batch_weight_reuse the weights genuinely
  /// stay pinned across back-to-back batches on one engine).
  std::vector<Lane> borrow_lanes(std::size_t n_samples) const;
  void return_lanes(std::vector<Lane>&& lanes) const;

  /// Drive `n` samples through `stages` pipeline stages. `step(sample,
  /// stage, lane)` executes one stage of one sample in pipeline lane `lane`;
  /// calls within one tick run concurrently on the pool, and a sample's
  /// stages always run in order.
  void run_stages(
      std::size_t n, std::size_t stages,
      common::FunctionRef<void(std::size_t, std::size_t, Lane&)> step,
      std::vector<Lane>& lanes) const;

  /// True when the engine's options ask for segment-major lockstep waves
  /// instead of stage overlap.
  bool lockstep() const;

  std::vector<MultiStepResult> run_lockstep(
      const std::vector<snn::Tensor>& images, int timesteps) const;
  std::vector<InferenceResult> run_single_step_lockstep(
      const std::vector<snn::Tensor>& images) const;

  InferenceEngine engine_;
  int depth_;
  std::shared_ptr<WorkerPool> pool_;
  mutable std::mutex lanes_mu_;
  mutable std::vector<Lane> lane_cache_;
};

}  // namespace spikestream::runtime
