#include "runtime/backend_sharded.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "common/check.hpp"
#include "common/float_formats.hpp"

namespace spikestream::runtime {

namespace {

/// Copy channels [lo, hi) of an HWC tensor into a compact caller-owned
/// tensor (reused capacity).
template <typename T>
void slice_channels_into(const snn::Hwc<T>& t, int lo, int hi,
                         snn::Hwc<T>& out) {
  out.reshape(t.h, t.w, hi - lo);
  const T* src = t.v.data() + lo;
  T* dst = out.v.data();
  const std::size_t positions =
      static_cast<std::size_t>(t.h) * static_cast<std::size_t>(t.w);
  const std::size_t n = static_cast<std::size_t>(hi - lo);
  for (std::size_t p = 0; p < positions; ++p) {
    std::copy_n(src + p * static_cast<std::size_t>(t.c), n, dst + p * n);
  }
}

/// Scatter a compact channel slice back into channels [lo, ...) of `full`.
template <typename T>
void unslice_channels(snn::Hwc<T>& full, const snn::Hwc<T>& part, int lo) {
  const T* src = part.v.data();
  T* dst = full.v.data() + lo;
  const std::size_t positions =
      static_cast<std::size_t>(part.h) * static_cast<std::size_t>(part.w);
  const std::size_t n = static_cast<std::size_t>(part.c);
  for (std::size_t p = 0; p < positions; ++p) {
    std::copy_n(src + p * n, n, dst + p * static_cast<std::size_t>(full.c));
  }
}

}  // namespace

ShardedBackend::ShardedBackend(const kernels::RunOptions& opt, int clusters,
                               bool use_threads)
    : ExecutionBackend(opt),
      clusters_(std::max(1, clusters)),
      threads_(use_threads) {}

std::vector<std::pair<int, int>> ShardedBackend::slices(int out_c) const {
  const int simd = common::simd_lanes(opt_.fmt);
  const int groups = (out_c + simd - 1) / simd;
  const int active = std::min(clusters_, groups);
  std::vector<std::pair<int, int>> sl;
  sl.reserve(static_cast<std::size_t>(active));
  for (int s = 0; s < active; ++s) {
    const int g_lo = s * groups / active;
    const int g_hi = (s + 1) * groups / active;
    const int lo = g_lo * simd;
    const int hi = std::min(g_hi * simd, out_c);
    if (hi > lo) sl.emplace_back(lo, hi);
  }
  return sl;
}

const snn::LayerWeights& ShardedBackend::shard_weights(
    const snn::LayerWeights& w, int lo, int hi) const {
  const WeightKey key{w.v.data(), w.v.size(), w.k, w.in_c, lo, hi};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = weight_cache_.find(key);
  if (it != weight_cache_.end()) {
    // Validate the hit: if the allocator reused this address for another
    // network's weights, the boundary elements will not match and the entry
    // is rebuilt below instead of served stale.
    const snn::LayerWeights& c = it->second;
    if (!c.v.empty() && c.v.front() == w.v[w.index(0, 0, 0, lo)] &&
        c.v.back() == w.v[w.index(w.k - 1, w.k - 1, w.in_c - 1, hi - 1)]) {
      return c;
    }
  }

  snn::LayerWeights sub;
  sub.k = w.k;
  sub.in_c = w.in_c;
  sub.out_c = hi - lo;
  sub.v.reserve(w.v.size() / static_cast<std::size_t>(w.out_c) *
                static_cast<std::size_t>(sub.out_c));
  // Output channels are innermost, so each (kh, kw, ci) row contributes one
  // contiguous run of `hi - lo` values.
  for (int kh = 0; kh < w.k; ++kh) {
    for (int kw = 0; kw < w.k; ++kw) {
      for (int ci = 0; ci < w.in_c; ++ci) {
        const std::size_t base = w.index(kh, kw, ci, lo);
        sub.v.insert(sub.v.end(), w.v.begin() + static_cast<std::ptrdiff_t>(base),
                     w.v.begin() + static_cast<std::ptrdiff_t>(base + sub.out_c));
      }
    }
  }
  // Keep the half-precision streaming path available on the slice.
  if (w.half_exact) sub.build_half();
  // std::map nodes are stable: the reference outlives the lock.
  return weight_cache_.insert_or_assign(key, std::move(sub)).first->second;
}

void ShardedBackend::for_shards(
    const std::vector<std::pair<int, int>>& sl,
    const std::function<void(std::size_t, int, int)>& fn) const {
  if (!threads_ || sl.size() <= 1) {
    for (std::size_t s = 0; s < sl.size(); ++s) {
      fn(s, sl[s].first, sl[s].second);
    }
    return;
  }
  std::vector<std::exception_ptr> errors(sl.size());
  std::vector<std::thread> workers;
  workers.reserve(sl.size());
  for (std::size_t s = 0; s < sl.size(); ++s) {
    workers.emplace_back([&, s] {
      try {
        fn(s, sl[s].first, sl[s].second);
      } catch (...) {
        errors[s] = std::current_exception();
      }
    });
  }
  for (auto& t : workers) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

const kernels::LayerRun& ShardedBackend::run_sharded(
    const snn::LayerSpec& spec, const snn::LayerWeights& weights,
    snn::Tensor& membrane, kernels::LayerScratch& scratch,
    const std::function<void(const snn::LayerSpec&, const snn::LayerWeights&,
                             snn::Tensor&, kernels::KernelScratch&)>& kernel)
    const {
  const auto sl = slices(spec.out_c);
  SPK_CHECK(!sl.empty(), "sharded " << spec.name << ": no output channels");
  if (scratch.lanes.size() < sl.size()) scratch.lanes.resize(sl.size());
  for_shards(sl, [&](std::size_t s, int lo, int hi) {
    kernels::ShardLane& lane = scratch.lanes[s];
    snn::LayerSpec sub = spec;
    sub.out_c = hi - lo;
    slice_channels_into(membrane, lo, hi, lane.membrane);
    kernel(sub, shard_weights(weights, lo, hi), lane.membrane, lane.ks);
  });

  // Merge the per-shard runs into the main lane: spike and membrane slices
  // scatter back into the full tensors; stats merge with the parallel-cluster
  // semantics; the plan of the slowest shard is kept as the representative
  // DMA timeline.
  kernels::LayerRun& merged = scratch.main.run;
  merged.out_spikes.reshape(spec.out_h(), spec.out_w(), spec.out_c);
  merged.out_nnz = 0;
  std::size_t slowest = 0;
  for (std::size_t s = 0; s < sl.size(); ++s) {
    const kernels::LayerRun& run = scratch.lanes[s].ks.run;
    unslice_channels(merged.out_spikes, run.out_spikes, sl[s].first);
    unslice_channels(membrane, scratch.lanes[s].membrane, sl[s].first);
    merged.out_nnz += run.out_nnz;
    if (s == 0) {
      merged.stats = run.stats;
    } else {
      merged.stats.merge_parallel(run.stats);
    }
    if (run.stats.cycles > scratch.lanes[slowest].ks.run.stats.cycles) {
      slowest = s;
    }
  }
  merged.plan = scratch.lanes[slowest].ks.run.plan;
  return merged;
}

const kernels::LayerRun& ShardedBackend::run_conv(
    const snn::LayerSpec& spec, const snn::LayerWeights& weights,
    const compress::CsrIfmap& ifmap, snn::Tensor& membrane,
    kernels::LayerScratch& scratch) const {
  return run_sharded(spec, weights, membrane, scratch,
                     [&](const snn::LayerSpec& sub, const snn::LayerWeights& w,
                         snn::Tensor& m, kernels::KernelScratch& ks) {
                       kernels::run_conv_layer(sub, w, ifmap, m, opt_, ks);
                     });
}

const kernels::LayerRun& ShardedBackend::run_fc(
    const snn::LayerSpec& spec, const snn::LayerWeights& weights,
    const compress::CsrIfmap& ifmap, snn::Tensor& membrane,
    kernels::LayerScratch& scratch) const {
  return run_sharded(spec, weights, membrane, scratch,
                     [&](const snn::LayerSpec& sub, const snn::LayerWeights& w,
                         snn::Tensor& m, kernels::KernelScratch& ks) {
                       kernels::run_fc_layer(sub, w, ifmap, m, opt_, ks);
                     });
}

const kernels::LayerRun& ShardedBackend::run_encode(
    const snn::LayerSpec& spec, const snn::LayerWeights& weights,
    const snn::Tensor& padded_image, snn::Tensor& membrane,
    kernels::LayerScratch& scratch) const {
  return run_sharded(spec, weights, membrane, scratch,
                     [&](const snn::LayerSpec& sub, const snn::LayerWeights& w,
                         snn::Tensor& m, kernels::KernelScratch& ks) {
                       kernels::run_encode_layer(sub, w, padded_image, m, opt_,
                                                 ks);
                     });
}

}  // namespace spikestream::runtime
