#include "runtime/backend_sharded.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/float_formats.hpp"
#include "snn/state.hpp"

namespace spikestream::runtime {

namespace {

/// Copy channels [lo, hi) of an HWC tensor into a compact caller-owned
/// tensor (reused capacity).
template <typename T>
void slice_channels_into(const snn::Hwc<T>& t, int lo, int hi,
                         snn::Hwc<T>& out) {
  out.reshape(t.h, t.w, hi - lo);
  const T* src = t.v.data() + lo;
  T* dst = out.v.data();
  const std::size_t positions =
      static_cast<std::size_t>(t.h) * static_cast<std::size_t>(t.w);
  const std::size_t n = static_cast<std::size_t>(hi - lo);
  for (std::size_t p = 0; p < positions; ++p) {
    std::copy_n(src + p * static_cast<std::size_t>(t.c), n, dst + p * n);
  }
}

/// Scatter a compact channel slice back into channels [lo, ...) of `full`.
template <typename T>
void unslice_channels(snn::Hwc<T>& full, const snn::Hwc<T>& part, int lo) {
  const T* src = part.v.data();
  T* dst = full.v.data() + lo;
  const std::size_t positions =
      static_cast<std::size_t>(part.h) * static_cast<std::size_t>(part.w);
  const std::size_t n = static_cast<std::size_t>(part.c);
  for (std::size_t p = 0; p < positions; ++p) {
    std::copy_n(src + p * n, n, dst + p * static_cast<std::size_t>(full.c));
  }
}

/// Copy spatial rows [lo, hi) of an HWC tensor into a compact caller-owned
/// tensor. Rows are contiguous in HWC, so this is one block copy.
template <typename T>
void slice_rows_into(const snn::Hwc<T>& t, int lo, int hi, snn::Hwc<T>& out) {
  out.reshape(hi - lo, t.w, t.c);
  const std::size_t row =
      static_cast<std::size_t>(t.w) * static_cast<std::size_t>(t.c);
  std::copy_n(t.v.data() + static_cast<std::size_t>(lo) * row,
              static_cast<std::size_t>(hi - lo) * row, out.v.data());
}

/// Scatter a compact row slice back into rows [lo, ...) of `full`.
template <typename T>
void unslice_rows(snn::Hwc<T>& full, const snn::Hwc<T>& part, int lo) {
  const std::size_t row = static_cast<std::size_t>(full.w) *
                          static_cast<std::size_t>(full.c);
  std::copy_n(part.v.data(), part.v.size(),
              full.v.data() + static_cast<std::size_t>(lo) * row);
}

}  // namespace

ShardedBackend::ShardedBackend(const kernels::RunOptions& opt, int clusters,
                               bool use_threads,
                               kernels::PartitionStrategy strategy,
                               const arch::NocParams& noc,
                               std::shared_ptr<WorkerPool> pool, int min_work,
                               const kernels::ReplanConfig& replan,
                               const kernels::PipelineConfig& pipeline)
    : ExecutionBackend(opt),
      clusters_(std::max(1, clusters)),
      threads_(use_threads),
      min_work_(std::max(0, min_work)),
      partitioner_(opt, std::max(1, clusters), strategy),
      noc_(noc),
      replan_(replan),
      pipeline_(pipeline),
      pool_(std::move(pool)) {
  if (threads_ && pool_ == nullptr) {
    pool_ = std::make_shared<WorkerPool>(clusters_ - 1);
  }
  active_clusters_.store(clusters_, std::memory_order_relaxed);
  for (auto& s : slowdown_) s.store(1.0, std::memory_order_relaxed);
  for (auto& d : link_derate_) d.store(1.0, std::memory_order_relaxed);
}

double ShardedBackend::initial_plan_density() const {
  // Adaptive mode plans for the cold start (membranes are empty, the first
  // timesteps run far below steady-state density); the measured EMA upgrades
  // the plan after warmup. Static mode keeps the historical assumption.
  return replan_.enabled ? replan_.cold_density
                         : kernels::Partitioner::kDefaultDensity;
}

std::vector<std::pair<int, int>> ShardedBackend::slices(int out_c) const {
  const int simd = common::simd_lanes(opt_.fmt);
  std::vector<std::pair<int, int>> sl;
  for (const kernels::ShardRange& r :
       kernels::Partitioner::channel_slices(out_c, simd, clusters_)) {
    sl.emplace_back(r.lo, r.hi);
  }
  return sl;
}

std::shared_ptr<const kernels::LayerPlan> ShardedBackend::plan_handle(
    const snn::LayerSpec& spec) const {
  const std::uint64_t sig = kernels::layer_signature(spec);
  {
    std::shared_lock<std::shared_mutex> lock(plan_mu_);
    const auto it = plans_.find(sig);
    if (it != plans_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(plan_mu_);
  const auto it = plans_.find(sig);  // re-check: another writer may have won
  if (it != plans_.end()) return it->second;
  // Cold miss: plan at the *active* width, so a layer first seen after a
  // fail-stop never lands shards on a failed cluster. Healthy runs take the
  // member partitioner (no construction on the common path).
  const int width = active_clusters_.load(std::memory_order_relaxed);
  kernels::LayerPlan plan =
      width == clusters_
          ? partitioner_.plan_layer(spec, initial_plan_density())
          : kernels::Partitioner(opt_, width, partitioner_.strategy())
                .plan_layer(spec, initial_plan_density());
  return plans_
      .emplace(sig, std::make_shared<const kernels::LayerPlan>(std::move(plan)))
      .first->second;
}

const kernels::LayerPlan& ShardedBackend::plan_for(
    const snn::LayerSpec& spec) const {
  // The handle keeps the plan's refcount in the cache; the reference stays
  // valid until a re-plan swap replaces it (see the header note).
  return *plan_handle(spec);
}

void ShardedBackend::observe_density(const snn::LayerSpec& spec,
                                     std::size_t in_nnz,
                                     std::size_t in_elems) const {
  // Stage mode freezes plans at the stage grouping prepare() chose: an
  // adaptive axis flip would re-plan the layer at the *full* cluster count
  // and silently widen a stage's group, so re-planning is disabled whenever
  // the pipeline is armed.
  if (pipeline_.enabled) return;
  if (!replan_.enabled || clusters_ <= 1 || in_elems == 0) return;
  // Degraded mode freezes occupancy-adaptive re-planning: the member
  // partitioner estimates (and make_axis_plan) work at the full cluster
  // count, so an adaptive flip after a fail-stop would silently re-widen the
  // plan onto dead clusters. Plans were re-picked at fault time with the
  // then-current EMA; that choice stands until the fleet heals — this is
  // also what makes the degrade re-plan flip exactly once per fault.
  if (active_clusters_.load(std::memory_order_relaxed) != clusters_) return;
  const std::uint64_t sig = kernels::layer_signature(spec);
  AdaptiveState* st;
  {
    std::lock_guard<std::mutex> lock(adaptive_mu_);
    st = &adaptive_[sig];  // node-stable; first touch inserts
  }
  const double density =
      static_cast<double>(in_nnz) / static_cast<double>(in_elems);
  std::lock_guard<std::mutex> lock(st->mu);
  if (st->runs == 0) st->axis = plan_for(spec).axis;
  st->ema = st->ema < 0.0
                ? density
                : st->ema + replan_.ema_alpha * (density - st->ema);
  ++st->runs;
  if (st->runs < replan_.warmup_runs) return;
  const kernels::ShardAxis current = st->axis;
  // Re-rank the two viable axes at the measured density (allocation-free
  // estimates). The alternative must clear the hysteresis margin to win;
  // at a stable density the winner is then also hysteresis-stable, so the
  // plan cannot oscillate around a break-even point.
  const kernels::ShardAxis alt = spec.kind == snn::LayerKind::kFc
                                     ? kernels::ShardAxis::kFanIn
                                     : kernels::ShardAxis::kIfmapStripe;
  const kernels::ShardAxis candidate =
      current == kernels::ShardAxis::kOutputChannel
          ? alt
          : kernels::ShardAxis::kOutputChannel;
  const double est_cur = partitioner_.estimate_axis(spec, current, st->ema);
  const double est_new = partitioner_.estimate_axis(spec, candidate, st->ema);
  if (est_new >= replan_.hysteresis * est_cur) return;
  // Build and swap the new plan while still holding the per-layer lock:
  // concurrent observers of the same layer must see axis bookkeeping and
  // cached plan move together, or two racing flips could land their swaps
  // out of order and leave st->axis disagreeing with the executing plan
  // forever. A flip is rare (at most one per density regime), so the
  // allocation stays off the steady path; lock order st->mu -> plan_mu_ is
  // safe because no path acquires st->mu while holding plan_mu_.
  // Degenerate candidates collapse to a single output-channel shard inside
  // make_axis_plan, exactly like the static planner.
  auto next = std::make_shared<const kernels::LayerPlan>(
      partitioner_.make_axis_plan(spec, candidate));
  if (next->axis == current) return;  // candidate degenerated: keep the plan
  st->axis = next->axis;
  ++st->flips;
  std::unique_lock<std::shared_mutex> plock(plan_mu_);
  plans_[sig] = std::move(next);
}

int ShardedBackend::replan_flips(const snn::LayerSpec& spec) const {
  const std::uint64_t sig = kernels::layer_signature(spec);
  AdaptiveState* st = nullptr;
  {
    std::lock_guard<std::mutex> lock(adaptive_mu_);
    const auto it = adaptive_.find(sig);
    if (it == adaptive_.end()) return 0;
    st = &it->second;  // node-stable
  }
  std::lock_guard<std::mutex> lock(st->mu);
  return st->flips;
}

kernels::ShardAxis ShardedBackend::active_axis(
    const snn::LayerSpec& spec) const {
  return plan_for(spec).axis;
}

double ShardedBackend::occupancy_ema(const snn::LayerSpec& spec) const {
  const std::uint64_t sig = kernels::layer_signature(spec);
  AdaptiveState* st = nullptr;
  {
    std::lock_guard<std::mutex> lock(adaptive_mu_);
    const auto it = adaptive_.find(sig);
    if (it == adaptive_.end()) return -1.0;
    st = &it->second;  // node-stable
  }
  std::lock_guard<std::mutex> lock(st->mu);
  return st->ema;
}

// ---------------------------------------------------------------------------
// Fault injection / degraded mode
// ---------------------------------------------------------------------------

double ShardedBackend::planning_density(std::uint64_t sig) const {
  AdaptiveState* st = nullptr;
  {
    std::lock_guard<std::mutex> lock(adaptive_mu_);
    const auto it = adaptive_.find(sig);
    if (it != adaptive_.end()) st = &it->second;  // node-stable
  }
  if (st != nullptr) {
    std::lock_guard<std::mutex> lock(st->mu);
    if (st->ema >= 0.0) return st->ema;
  }
  return initial_plan_density();
}

void ShardedBackend::replan_for_width(int width) const {
  if (prepared_specs_.empty()) return;  // nothing prepared: cold misses will
                                        // plan at the active width anyway
  kernels::Partitioner part(opt_, width, partitioner_.strategy());
  if (pipeline_.enabled && stage_plan_.num_stages() > 0) {
    // Stage mode: re-balance the whole pipeline at the surviving width, then
    // re-pin every member layer's plan at its new group size — the same
    // shape prepare() built, one cluster narrower. Adaptive EMAs are never
    // seeded in stage mode, so the planning density matches prepare()'s.
    kernels::StagePlan sp = part.plan_pipeline(
        std::span<const snn::LayerSpec>(prepared_specs_), pipeline_, noc_,
        initial_plan_density());
    std::unique_lock<std::shared_mutex> lock(plan_mu_);
    stage_plan_ = std::move(sp);
    stage_info_.clear();
    for (int s = 0; s < stage_plan_.num_stages(); ++s) {
      const kernels::PipelineStage& st =
          stage_plan_.stages[static_cast<std::size_t>(s)];
      kernels::Partitioner group_part(opt_, st.clusters(),
                                      partitioner_.strategy());
      for (int l = st.layer_lo; l < st.layer_hi; ++l) {
        const snn::LayerSpec& spec =
            prepared_specs_[static_cast<std::size_t>(l)];
        StageInfo info;
        info.stage = s;
        info.cluster_lo = st.cluster_lo;
        info.group = st.clusters();
        info.boundary =
            s + 1 < stage_plan_.num_stages() && l == st.layer_hi - 1;
        info.next_cluster_lo =
            info.boundary
                ? stage_plan_.stages[static_cast<std::size_t>(s + 1)].cluster_lo
                : 0;
        const std::uint64_t sig = kernels::layer_signature(spec);
        stage_info_[sig] = info;
        plans_[sig] = std::make_shared<const kernels::LayerPlan>(
            group_part.plan_layer(spec, initial_plan_density()));
      }
    }
    return;
  }
  for (const snn::LayerSpec& spec : prepared_specs_) {
    const std::uint64_t sig = kernels::layer_signature(spec);
    // Measured density where one is seeded: the degraded plan should serve
    // the traffic the layer actually sees, not the cold-start assumption.
    auto next = std::make_shared<const kernels::LayerPlan>(
        part.plan_layer(spec, planning_density(sig)));
    std::unique_lock<std::shared_mutex> lock(plan_mu_);
    plans_[sig] = std::move(next);
  }
}

bool ShardedBackend::fail_cluster(int cluster) const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  const int active = active_clusters_.load(std::memory_order_relaxed);
  if (cluster < 0 || cluster >= clusters_ || active <= 1) return false;
  if (failed_[static_cast<std::size_t>(cluster)]) return false;
  failed_[static_cast<std::size_t>(cluster)] = true;
  const int width = active - 1;
  // Survivors renumber into the dense [0, width) slot range: plans encode
  // shard counts and ranges, not physical cluster ids, so masking a cluster
  // is exactly re-planning one narrower. COW swap — in-flight runs keep the
  // plan they pinned; the next dispatch executes degraded.
  replan_for_width(width);
  active_clusters_.store(width, std::memory_order_relaxed);
  degrade_replans_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ShardedBackend::set_cluster_slowdown(int cluster, double factor) const {
  if (cluster < 0 || cluster >= arch::NocModel::kMaxClusters) return;
  std::lock_guard<std::mutex> lock(fault_mu_);
  slowdown_[static_cast<std::size_t>(cluster)].store(
      std::max(1.0, factor), std::memory_order_relaxed);
  bool any = false;
  for (int c = 0; c < clusters_ && c < arch::NocModel::kMaxClusters; ++c) {
    any |= slowdown_[static_cast<std::size_t>(c)].load(
               std::memory_order_relaxed) > 1.0;
  }
  any_slowdown_.store(any, std::memory_order_relaxed);
}

void ShardedBackend::set_link_degrade(int cluster, double factor) const {
  if (cluster < 0 || cluster >= arch::NocModel::kMaxClusters) return;
  std::lock_guard<std::mutex> lock(fault_mu_);
  link_derate_[static_cast<std::size_t>(cluster)].store(
      std::max(1.0, factor), std::memory_order_relaxed);
  double worst = 1.0;
  bool any = false;
  for (int c = 0; c < clusters_ && c < arch::NocModel::kMaxClusters; ++c) {
    const double d =
        link_derate_[static_cast<std::size_t>(c)].load(
            std::memory_order_relaxed);
    worst = std::max(worst, d);
    any |= d > 1.0;
  }
  max_link_derate_.store(worst, std::memory_order_relaxed);
  any_link_derate_.store(any, std::memory_order_relaxed);
}

void ShardedBackend::prepare(const snn::Network& net) const {
  {
    // The plan cache is signature-keyed; keep the specs themselves so a
    // fail-stop can re-plan every prepared layer without the Network.
    std::lock_guard<std::mutex> lock(fault_mu_);
    prepared_specs_.clear();
    prepared_specs_.reserve(net.num_layers());
    for (std::size_t l = 0; l < net.num_layers(); ++l) {
      prepared_specs_.push_back(net.layer(l));
    }
  }
  if (pipeline_.enabled && clusters_ > 1 && net.num_layers() > 0) {
    // Choose the execution mode for this network (data-parallel vs
    // stage-parallel vs hybrid) and pin every member layer's partition plan
    // at its stage's group width: the plan cache then serves group-sized
    // plans on the hot path with no stage-awareness. Layers outside the
    // prepared network (unknown signatures) still fall back to full-width
    // plans via plan_handle, exactly like before.
    kernels::StagePlan sp = partitioner_.plan_pipeline(
        net, pipeline_, noc_, initial_plan_density());
    std::unique_lock<std::shared_mutex> lock(plan_mu_);
    stage_plan_ = std::move(sp);
    stage_info_.clear();
    for (int s = 0; s < stage_plan_.num_stages(); ++s) {
      const kernels::PipelineStage& st =
          stage_plan_.stages[static_cast<std::size_t>(s)];
      kernels::Partitioner group_part(opt_, st.clusters(),
                                      partitioner_.strategy());
      for (int l = st.layer_lo; l < st.layer_hi; ++l) {
        const snn::LayerSpec& spec = net.layer(static_cast<std::size_t>(l));
        StageInfo info;
        info.stage = s;
        info.cluster_lo = st.cluster_lo;
        info.group = st.clusters();
        info.boundary =
            s + 1 < stage_plan_.num_stages() && l == st.layer_hi - 1;
        info.next_cluster_lo =
            info.boundary
                ? stage_plan_.stages[static_cast<std::size_t>(s + 1)].cluster_lo
                : 0;
        const std::uint64_t sig = kernels::layer_signature(spec);
        stage_info_[sig] = info;
        plans_[sig] = std::make_shared<const kernels::LayerPlan>(
            group_part.plan_layer(spec, initial_plan_density()));
      }
    }
  }
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const snn::LayerSpec& spec = net.layer(l);
    const kernels::LayerPlan& plan = plan_for(spec);
    if (plan.axis == kernels::ShardAxis::kOutputChannel && plan.n() > 1) {
      for (const kernels::ShardRange& r : plan.shards) {
        shard_weights(net.weights(l), r.lo, r.hi);
      }
    }
    if (replan_.enabled && !pipeline_.enabled) {
      // Pre-create the adaptive bookkeeping (and the output-channel weight
      // slices a later flip might need), so steady-state observation never
      // builds map nodes and a flip to output-channel never copies weights
      // on the hot path.
      {
        std::lock_guard<std::mutex> lock(adaptive_mu_);
        adaptive_[kernels::layer_signature(spec)].axis = plan.axis;
      }
      if (plan.axis != kernels::ShardAxis::kOutputChannel && clusters_ > 1) {
        const kernels::LayerPlan oc = partitioner_.make_axis_plan(
            spec, kernels::ShardAxis::kOutputChannel);
        if (oc.axis == kernels::ShardAxis::kOutputChannel && oc.n() > 1) {
          for (const kernels::ShardRange& r : oc.shards) {
            shard_weights(net.weights(l), r.lo, r.hi);
          }
        }
      }
    }
  }
}

void ShardedBackend::presize_state(snn::NetworkState& state,
                                   const snn::Network& net) const {
  ExecutionBackend::presize_state(state, net);  // worst-case main arenas
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const snn::LayerSpec& spec = net.layer(l);
    const kernels::LayerPlan& plan = plan_for(spec);
    // With re-planning the layer may flip to its alternative axis later
    // (FC: fan-in <-> output-channel, conv/encode: stripe <-> output-
    // channel); presize the lanes for whichever plan needs more so the swap
    // does not grow arenas mid-run.
    kernels::LayerPlan alt;
    if (replan_.enabled && !pipeline_.enabled && clusters_ > 1) {
      const kernels::ShardAxis other =
          plan.axis == kernels::ShardAxis::kOutputChannel
              ? (spec.kind == snn::LayerKind::kFc
                     ? kernels::ShardAxis::kFanIn
                     : kernels::ShardAxis::kIfmapStripe)
              : kernels::ShardAxis::kOutputChannel;
      alt = partitioner_.make_axis_plan(spec, other);
    }
    const std::size_t lanes_needed = std::max(plan.n(), alt.n());
    if (lanes_needed <= 1) continue;
    kernels::LayerScratch& scratch = state.scratch(l);
    if (scratch.lanes.size() < lanes_needed) {
      scratch.lanes.resize(lanes_needed);
    }
    auto reserve_stripes = [&](const kernels::LayerPlan& p) {
      if (p.axis != kernels::ShardAxis::kIfmapStripe) return;
      for (std::size_t s = 0; s < p.n(); ++s) {
        // Halo'd input stripe, zero-sparsity worst case.
        const std::size_t in_rows =
            static_cast<std::size_t>(p.shards[s].extent() + spec.k - 1);
        const std::size_t positions =
            in_rows * static_cast<std::size_t>(spec.in_w);
        scratch.lanes[s].csr.reserve(
            positions, positions * static_cast<std::size_t>(spec.in_c));
      }
    };
    for (std::size_t s = 0; s < lanes_needed; ++s) {
      scratch.lanes[s].ks.rows.reserve(spec.fan_in());
    }
    reserve_stripes(plan);
    reserve_stripes(alt);
  }
}

const snn::LayerWeights& ShardedBackend::shard_weights(
    const snn::LayerWeights& w, int lo, int hi) const {
  const WeightKey key{w.v.data(), w.v.size(), w.k, w.in_c, lo, hi};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = weight_cache_.find(key);
  if (it != weight_cache_.end()) {
    // Validate the hit: if the allocator reused this address for another
    // network's weights, the boundary elements will not match and the entry
    // is rebuilt below instead of served stale.
    const snn::LayerWeights& c = it->second;
    if (!c.v.empty() && c.v.front() == w.v[w.index(0, 0, 0, lo)] &&
        c.v.back() == w.v[w.index(w.k - 1, w.k - 1, w.in_c - 1, hi - 1)]) {
      return c;
    }
  }

  snn::LayerWeights sub;
  sub.k = w.k;
  sub.in_c = w.in_c;
  sub.out_c = hi - lo;
  sub.v.reserve(w.v.size() / static_cast<std::size_t>(w.out_c) *
                static_cast<std::size_t>(sub.out_c));
  // Output channels are innermost, so each (kh, kw, ci) row contributes one
  // contiguous run of `hi - lo` values.
  for (int kh = 0; kh < w.k; ++kh) {
    for (int kw = 0; kw < w.k; ++kw) {
      for (int ci = 0; ci < w.in_c; ++ci) {
        const std::size_t base = w.index(kh, kw, ci, lo);
        sub.v.insert(sub.v.end(), w.v.begin() + static_cast<std::ptrdiff_t>(base),
                     w.v.begin() + static_cast<std::ptrdiff_t>(base + sub.out_c));
      }
    }
  }
  // Keep the half-precision streaming path available on the slice.
  if (w.half_exact) sub.build_half();
  // std::map nodes are stable: the reference outlives the lock.
  return weight_cache_.insert_or_assign(key, std::move(sub)).first->second;
}

bool ShardedBackend::pool_worthwhile(const snn::LayerSpec& spec) const {
  // Output elements approximate the per-layer host work (functional pass +
  // merge are both O(out elements)); below the cutoff the pool handoff and
  // worker wakeups dominate, so the submitting thread runs the shards
  // itself. Simulated timing still models `clusters_` parallel clusters.
  const double elems = static_cast<double>(spec.out_h()) * spec.out_w() *
                       static_cast<double>(spec.out_c);
  return elems >= static_cast<double>(min_work_);
}

void ShardedBackend::for_shards(
    std::size_t n, bool pooled,
    common::FunctionRef<void(std::size_t)> fn) const {
  if (!pooled || !threads_ || pool_ == nullptr || n <= 1) {
    for (std::size_t s = 0; s < n; ++s) fn(s);
    return;
  }
  pool_->parallel_for(n, n,
                      [&fn](std::size_t, std::size_t i) { fn(i); });
}

// Each shard's timing pass ran the tile planner on its own sub-spec, so
// under the banked DRAM model every cluster prices its streams against a
// private DRAM channel: merge_parallel takes the max of the per-channel DMA
// timelines (channels drain concurrently) and sums the row-hit/row-miss
// activity counters, exactly like the other per-cluster activity.
std::size_t ShardedBackend::merge_shard_stats(
    const kernels::LayerScratch& scratch, std::size_t n,
    kernels::LayerRun& merged, int base) const {
  merged.out_nnz = 0;
  std::size_t slowest = 0;
  double slowest_eff = -1.0;
  double eff_max = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    const kernels::LayerRun& run = scratch.lanes[s].ks.run;
    merged.out_nnz += run.out_nnz;
    if (s == 0) {
      merged.stats = run.stats;
    } else {
      merged.stats.merge_parallel(run.stats);
    }
    // Straggler injection: a slowed cluster slot serves its shard `factor`
    // times slower. Only the shard's wall-clock stretches (the itemized
    // compute/DMA work is unchanged — the extra time is stall on the sick
    // cluster); the layer's merged wall-clock is the max over effective
    // shard times.
    const double eff =
        run.stats.cycles * shard_slowdown(base + static_cast<int>(s));
    eff_max = std::max(eff_max, eff);
    if (eff > slowest_eff) {
      slowest_eff = eff;
      slowest = s;
    }
  }
  if (eff_max > merged.stats.cycles) merged.stats.cycles = eff_max;
  merged.plan = scratch.lanes[slowest].ks.run.plan;
  return slowest;
}

double ShardedBackend::merge_stripe_shards(const kernels::LayerPlan& plan,
                                           const snn::LayerSpec& spec,
                                           kernels::LayerScratch& scratch,
                                           snn::Tensor& membrane,
                                           kernels::LayerRun& merged,
                                           int base) const {
  merged.out_spikes.reshape(spec.out_h(), spec.out_w(), spec.out_c);
  double gather_bytes = 0;
  for (std::size_t s = 0; s < plan.n(); ++s) {
    const kernels::ShardRange r = plan.shards[s];
    unslice_rows(merged.out_spikes, scratch.lanes[s].ks.run.out_spikes, r.lo);
    unslice_rows(membrane, scratch.lanes[s].membrane, r.lo);
    if (s > 0) {
      gather_bytes += static_cast<double>(
          compress::CsrIfmap::footprint_from_count(
              scratch.lanes[s].ks.run.out_nnz, r.extent(), spec.out_w()));
    }
  }
  merge_shard_stats(scratch, plan.n(), merged, base);
  return gather_bytes;
}

void ShardedBackend::apply_noc(
    kernels::KernelStats& st, double legacy_bytes,
    common::FunctionRef<void(arch::NocModel&)> charge) const {
  if (noc_.topology == arch::NocTopology::kLegacyCeiling) {
    // Historical accounting, bit-exact when healthy: payload totals (a
    // broadcast counts one replica per receiver) against one shared-
    // bandwidth ceiling. The gate raise is itemized but numerically
    // unchanged. An injected link derate divides the shared ceiling by the
    // worst factor — a shared bus has no per-link wires to degrade.
    st.noc_bytes += legacy_bytes;
    if (noc_.model_contention) {
      arch::NocParams p = noc_;
      if (any_link_derate_.load(std::memory_order_relaxed)) {
        p.shared_bytes_per_cycle /=
            max_link_derate_.load(std::memory_order_relaxed);
      }
      const double gate = arch::noc_transfer_cycles(p, st.noc_bytes);
      if (gate > st.cycles) {
        st.noc_contention_cycles += gate - st.cycles;
        st.cycles = gate;
      }
    }
    return;
  }
  // Link-level topology: replay the transfer pattern onto per-link byte
  // accumulators. noc_bytes then counts each link traversal once (multicast
  // payloads are NOT multiplied by the receiver count) and the fabric gate
  // is hop latency plus the bottleneck link's serialization.
  arch::NocModel model(noc_, clusters_);
  if (any_link_derate_.load(std::memory_order_relaxed)) {
    for (int c = 0; c < clusters_ && c < arch::NocModel::kMaxClusters; ++c) {
      model.set_link_derate(
          c, link_derate_[static_cast<std::size_t>(c)].load(
                 std::memory_order_relaxed));
    }
  }
  charge(model);
  st.noc_bytes += model.total_link_bytes();
  if (noc_.model_contention) {
    const double gate = model.cycles();
    if (gate > st.cycles) {
      st.noc_contention_cycles += gate - st.cycles;
      st.cycles = gate;
    }
  }
}

const ShardedBackend::StageInfo* ShardedBackend::stage_info_for(
    const snn::LayerSpec& spec) const {
  if (!pipeline_.enabled) return nullptr;
  const std::uint64_t sig = kernels::layer_signature(spec);
  std::shared_lock<std::shared_mutex> lock(plan_mu_);
  const auto it = stage_info_.find(sig);
  return it == stage_info_.end() ? nullptr : &it->second;  // node-stable
}

int ShardedBackend::cluster_base(const snn::LayerSpec& spec) const {
  const StageInfo* info = stage_info_for(spec);
  return info != nullptr ? info->cluster_lo : 0;
}

void ShardedBackend::apply_stage_handoff(const snn::LayerSpec& spec,
                                         kernels::LayerRun& run) const {
  const StageInfo* info = stage_info_for(spec);
  if (info == nullptr || !info->boundary) return;
  // The producing group packs each boundary spike into the inter-stage FIFO
  // (integer-core work alongside the activation append), then the CSR
  // payload crosses the fabric to the consumer group's lead cluster.
  const double push =
      static_cast<double>(run.out_nnz) * opt_.cost.fifo_push_per_spike;
  run.stats.compute_cycles += push;
  run.stats.cycles += push;
  run.stats.int_instrs += push;
  const double bytes =
      static_cast<double>(compress::CsrIfmap::footprint_from_count(
          run.out_nnz, spec.out_h(), spec.out_w()));
  const int src = info->cluster_lo + info->group - 1;
  const int dst = info->next_cluster_lo;
  apply_noc(run.stats, bytes, [&](arch::NocModel& m) {
    m.unicast(src, dst, bytes);
  });
}

// ---------------------------------------------------------------------------
// Output-channel tiling (the historical scheme)
// ---------------------------------------------------------------------------

const kernels::LayerRun& ShardedBackend::run_channel_sharded(
    const kernels::LayerPlan& plan, const snn::LayerSpec& spec,
    const snn::LayerWeights& weights, snn::Tensor& membrane,
    kernels::LayerScratch& scratch, double input_bytes,
    common::FunctionRef<void(const snn::LayerSpec&, const snn::LayerWeights&,
                             snn::Tensor&, kernels::KernelScratch&)>
        kernel) const {
  const std::size_t n = plan.n();
  if (scratch.lanes.size() < n) scratch.lanes.resize(n);
  for_shards(n, pool_worthwhile(spec), [&](std::size_t s) {
    const kernels::ShardRange r = plan.shards[s];
    kernels::ShardLane& lane = scratch.lanes[s];
    snn::LayerSpec sub = spec;
    sub.out_c = r.extent();
    slice_channels_into(membrane, r.lo, r.hi, lane.membrane);
    kernel(sub, shard_weights(weights, r.lo, r.hi), lane.membrane, lane.ks);
  });

  kernels::LayerRun& merged = scratch.main.run;
  merged.out_spikes.reshape(spec.out_h(), spec.out_w(), spec.out_c);
  for (std::size_t s = 0; s < n; ++s) {
    unslice_channels(merged.out_spikes, scratch.lanes[s].ks.run.out_spikes,
                     plan.shards[s].lo);
    unslice_channels(membrane, scratch.lanes[s].membrane, plan.shards[s].lo);
  }
  const int base = cluster_base(spec);
  merge_shard_stats(scratch, n, merged, base);

  // The input is broadcast: every cluster beyond the owner receives a full
  // replica; the owner gathers the other clusters' ofmap slices. The legacy
  // total bills one replica per receiver; the link model replays the same
  // pattern as one multicast (each link charged once) plus gather unicasts.
  double noc = static_cast<double>(n - 1) * input_bytes;
  for (std::size_t s = 1; s < n; ++s) {
    noc += static_cast<double>(compress::CsrIfmap::footprint_from_count(
        scratch.lanes[s].ks.run.out_nnz, spec.out_h(), spec.out_w()));
  }
  apply_noc(merged.stats, noc, [&](arch::NocModel& m) {
    m.multicast(base, base, base + static_cast<int>(n), input_bytes);
    for (std::size_t s = 1; s < n; ++s) {
      m.unicast(base + static_cast<int>(s), base,
                static_cast<double>(compress::CsrIfmap::footprint_from_count(
                    scratch.lanes[s].ks.run.out_nnz, spec.out_h(),
                    spec.out_w())));
    }
  });
  return merged;
}

// ---------------------------------------------------------------------------
// Ifmap stripes (spatial row bands, conv/encode)
// ---------------------------------------------------------------------------

const kernels::LayerRun& ShardedBackend::run_stripe_conv(
    const kernels::LayerPlan& plan, const snn::LayerSpec& spec,
    const snn::LayerWeights& weights, const compress::CsrIfmap& ifmap,
    snn::Tensor& membrane, kernels::LayerScratch& scratch) const {
  const std::size_t n = plan.n();
  if (scratch.lanes.size() < n) scratch.lanes.resize(n);
  for_shards(n, pool_worthwhile(spec), [&](std::size_t s) {
    const kernels::ShardRange r = plan.shards[s];
    kernels::ShardLane& lane = scratch.lanes[s];
    snn::LayerSpec sub = spec;
    sub.in_h = r.extent() + spec.k - 1;  // halo'd input rows
    ifmap.slice_rows_into(r.lo, r.lo + sub.in_h, lane.csr);
    slice_rows_into(membrane, r.lo, r.hi, lane.membrane);
    kernels::run_conv_layer(sub, weights, lane.csr, lane.membrane, opt_,
                            lane.ks);
  });

  // Stripes need no broadcast: clusters exchange only the halo overlap (the
  // summed stripe footprints minus one resident copy) plus the ofmap gather.
  double halo_bytes = -static_cast<double>(ifmap.footprint_bytes());
  for (std::size_t s = 0; s < n; ++s) {
    halo_bytes += static_cast<double>(scratch.lanes[s].csr.footprint_bytes());
  }
  kernels::LayerRun& merged = scratch.main.run;
  const int base = cluster_base(spec);
  const double gather_bytes =
      merge_stripe_shards(plan, spec, scratch, membrane, merged, base);
  const double halo = std::max(0.0, halo_bytes);
  apply_noc(merged.stats, halo + gather_bytes, [&](arch::NocModel& m) {
    // Halos flow between adjacent stripes: split the overlap traffic evenly
    // over the n - 1 neighbor pairs. Ofmap slices gather to the owner.
    const double per_pair = halo / static_cast<double>(n - 1);
    for (std::size_t s = 1; s < n; ++s) {
      const int c = base + static_cast<int>(s);
      m.unicast(c - 1, c, per_pair);
      m.unicast(c, base,
                static_cast<double>(compress::CsrIfmap::footprint_from_count(
                    scratch.lanes[s].ks.run.out_nnz, plan.shards[s].extent(),
                    spec.out_w())));
    }
  });
  return merged;
}

const kernels::LayerRun& ShardedBackend::run_stripe_encode(
    const kernels::LayerPlan& plan, const snn::LayerSpec& spec,
    const snn::LayerWeights& weights, const snn::Tensor& padded_image,
    snn::Tensor& membrane, kernels::LayerScratch& scratch) const {
  const std::size_t n = plan.n();
  if (scratch.lanes.size() < n) scratch.lanes.resize(n);
  const double px_bytes = static_cast<double>(common::fp_bytes(opt_.fmt)) *
                          spec.in_w * spec.in_c;
  for_shards(n, pool_worthwhile(spec), [&](std::size_t s) {
    const kernels::ShardRange r = plan.shards[s];
    kernels::ShardLane& lane = scratch.lanes[s];
    snn::LayerSpec sub = spec;
    sub.in_h = r.extent() + spec.k - 1;
    slice_rows_into(padded_image, r.lo, r.lo + sub.in_h, lane.input);
    slice_rows_into(membrane, r.lo, r.hi, lane.membrane);
    kernels::run_encode_layer(sub, weights, lane.input, lane.membrane, opt_,
                              lane.ks);
  });

  // Dense image stripes: the halo is the (n - 1) * (k - 1) duplicated rows.
  const double halo_rows =
      static_cast<double>(n - 1) * static_cast<double>(spec.k - 1);
  kernels::LayerRun& merged = scratch.main.run;
  const int base = cluster_base(spec);
  const double gather_bytes =
      merge_stripe_shards(plan, spec, scratch, membrane, merged, base);
  apply_noc(merged.stats, halo_rows * px_bytes + gather_bytes,
            [&](arch::NocModel& m) {
              // (k - 1) image rows duplicated per neighbor pair, plus the
              // ofmap gather to the owner.
              const double pair_bytes =
                  static_cast<double>(spec.k - 1) * px_bytes;
              for (std::size_t s = 1; s < n; ++s) {
                const int c = base + static_cast<int>(s);
                m.unicast(c - 1, c, pair_bytes);
                m.unicast(
                    c, base,
                    static_cast<double>(
                        compress::CsrIfmap::footprint_from_count(
                            scratch.lanes[s].ks.run.out_nnz,
                            plan.shards[s].extent(), spec.out_w())));
              }
            });
  return merged;
}

// ---------------------------------------------------------------------------
// FC fan-in segments (partial-sum sharding)
// ---------------------------------------------------------------------------

const kernels::LayerRun& ShardedBackend::run_fc_fanin(
    const kernels::LayerPlan& plan, const snn::LayerSpec& spec,
    const snn::LayerWeights& weights, const compress::CsrIfmap& ifmap,
    snn::Tensor& membrane, kernels::LayerScratch& scratch) const {
  // Partial-sum merges are not FP-associative, so the functional pass runs
  // unsharded — spikes are bit-exact by construction. Only timing is split.
  kernels::fc_functional(spec, weights, ifmap, membrane, scratch.main);

  const std::size_t n = plan.n();
  if (scratch.lanes.size() < n) scratch.lanes.resize(n);
  for_shards(n, pool_worthwhile(spec), [&](std::size_t s) {
    kernels::fc_fanin_shard_timing(spec, ifmap, plan.shards[s].lo,
                                   plan.shards[s].hi, opt_,
                                   scratch.lanes[s].ks);
  });

  kernels::LayerRun& merged = scratch.main.run;
  const std::size_t out_nnz = merged.out_nnz;  // from the functional pass
  const int base = cluster_base(spec);
  merge_shard_stats(scratch, n, merged, base);
  merged.out_nnz = out_nnz;

  // Sequential tail: partial vectors cross the NoC to the merging cluster,
  // are reduced group-wise, then thresholded exactly once. The inputs were
  // disjoint (no broadcast), so the partials are the only extra traffic.
  const kernels::FcFanInMergeCost tail = kernels::fc_fanin_merge_cost(
      spec, merged.out_spikes, static_cast<int>(n), opt_);
  merged.stats.compute_cycles += tail.cycles;
  merged.stats.cycles += tail.cycles;
  merged.stats.fpu_ops += tail.fpu_ops;
  merged.stats.int_instrs += tail.int_instrs;
  merged.stats.tcdm_words += tail.tcdm_words;
  apply_noc(merged.stats, tail.noc_bytes, [&](arch::NocModel& m) {
    // Partial-sum vectors converge on the merging cluster, one per peer.
    const double per_peer = tail.noc_bytes / static_cast<double>(n - 1);
    for (std::size_t s = 1; s < n; ++s) {
      m.unicast(base + static_cast<int>(s), base, per_peer);
    }
  });
  return merged;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

const kernels::LayerRun& ShardedBackend::run_conv(
    const snn::LayerSpec& spec, const snn::LayerWeights& weights,
    const compress::CsrIfmap& ifmap, snn::Tensor& membrane,
    kernels::LayerScratch& scratch) const {
  observe_density(spec, ifmap.nnz(),
                  static_cast<std::size_t>(spec.in_h) * spec.in_w *
                      static_cast<std::size_t>(spec.in_c));
  const auto plan_ref = plan_handle(spec);  // pinned for this run
  const kernels::LayerPlan& plan = *plan_ref;
  SPK_CHECK(!plan.shards.empty(), "sharded " << spec.name << ": empty plan");
  // Every path below lands its merged result in scratch.main.run, so the
  // stage-boundary handoff (no-op outside stage mode) tails all of them.
  if (plan.n() <= 1) {
    kernels::run_conv_layer(spec, weights, ifmap, membrane, opt_,
                            scratch.main);
  } else if (plan.axis == kernels::ShardAxis::kIfmapStripe) {
    run_stripe_conv(plan, spec, weights, ifmap, membrane, scratch);
  } else {
    SPK_CHECK(plan.axis == kernels::ShardAxis::kOutputChannel,
              "conv " << spec.name << ": unsupported shard axis");
    run_channel_sharded(
        plan, spec, weights, membrane, scratch,
        static_cast<double>(ifmap.footprint_bytes()),
        [&](const snn::LayerSpec& sub, const snn::LayerWeights& w,
            snn::Tensor& m, kernels::KernelScratch& ks) {
          kernels::run_conv_layer(sub, w, ifmap, m, opt_, ks);
        });
  }
  apply_stage_handoff(spec, scratch.main.run);
  return scratch.main.run;
}

const kernels::LayerRun& ShardedBackend::run_fc(
    const snn::LayerSpec& spec, const snn::LayerWeights& weights,
    const compress::CsrIfmap& ifmap, snn::Tensor& membrane,
    kernels::LayerScratch& scratch) const {
  observe_density(spec, ifmap.nnz(), static_cast<std::size_t>(spec.in_c));
  const auto plan_ref = plan_handle(spec);  // pinned for this run
  const kernels::LayerPlan& plan = *plan_ref;
  SPK_CHECK(!plan.shards.empty(), "sharded " << spec.name << ": empty plan");
  if (plan.n() <= 1) {
    kernels::run_fc_layer(spec, weights, ifmap, membrane, opt_, scratch.main);
  } else if (plan.axis == kernels::ShardAxis::kFanIn) {
    run_fc_fanin(plan, spec, weights, ifmap, membrane, scratch);
  } else {
    SPK_CHECK(plan.axis == kernels::ShardAxis::kOutputChannel,
              "fc " << spec.name << ": unsupported shard axis");
    run_channel_sharded(
        plan, spec, weights, membrane, scratch,
        static_cast<double>(ifmap.footprint_bytes()),
        [&](const snn::LayerSpec& sub, const snn::LayerWeights& w,
            snn::Tensor& m, kernels::KernelScratch& ks) {
          kernels::run_fc_layer(sub, w, ifmap, m, opt_, ks);
        });
  }
  apply_stage_handoff(spec, scratch.main.run);
  return scratch.main.run;
}

const kernels::LayerRun& ShardedBackend::run_encode(
    const snn::LayerSpec& spec, const snn::LayerWeights& weights,
    const snn::Tensor& padded_image, snn::Tensor& membrane,
    kernels::LayerScratch& scratch) const {
  // The encode layer's dense input has density 1.0 by construction; there is
  // nothing for the occupancy re-planner to observe.
  const auto plan_ref = plan_handle(spec);
  const kernels::LayerPlan& plan = *plan_ref;
  SPK_CHECK(!plan.shards.empty(), "sharded " << spec.name << ": empty plan");
  if (plan.n() <= 1) {
    kernels::run_encode_layer(spec, weights, padded_image, membrane, opt_,
                              scratch.main);
  } else if (plan.axis == kernels::ShardAxis::kIfmapStripe) {
    run_stripe_encode(plan, spec, weights, padded_image, membrane, scratch);
  } else {
    SPK_CHECK(plan.axis == kernels::ShardAxis::kOutputChannel,
              "encode " << spec.name << ": unsupported shard axis");
    const double image_bytes =
        static_cast<double>(common::fp_bytes(opt_.fmt)) * spec.in_h *
        spec.in_w * spec.in_c;
    run_channel_sharded(
        plan, spec, weights, membrane, scratch, image_bytes,
        [&](const snn::LayerSpec& sub, const snn::LayerWeights& w,
            snn::Tensor& m, kernels::KernelScratch& ks) {
          kernels::run_encode_layer(sub, w, padded_image, m, opt_, ks);
        });
  }
  apply_stage_handoff(spec, scratch.main.run);
  return scratch.main.run;
}

}  // namespace spikestream::runtime
