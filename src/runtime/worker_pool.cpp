#include "runtime/worker_pool.hpp"

#include <algorithm>

namespace spikestream::runtime {

int WorkerPool::clamp_to_hardware(int requested) {
  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  return std::clamp(requested, 1, hw);
}

WorkerPool::WorkerPool(int threads) {
  const int n = std::clamp(
      threads, 0,
      std::max(0, static_cast<int>(std::thread::hardware_concurrency()) - 1));
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::size_t WorkerPool::run_tasks(Job& job, std::exception_ptr& error) const {
  const std::size_t slot = job.slot_count.fetch_add(1);
  if (slot >= job.max_slots) return 0;  // lost the slot race, let others run
  std::size_t finished = 0;
  for (std::size_t i = job.next.fetch_add(1); i < job.n;
       i = job.next.fetch_add(1)) {
    ++finished;
    if (error) continue;  // drain claims without running after a failure
    try {
      job.fn(slot, i);
    } catch (...) {
      error = std::current_exception();
    }
  }
  return finished;
}

void WorkerPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Job* job = nullptr;
    // A job is claimable while it has unclaimed tasks AND a free executor
    // slot; saturated or drained jobs are skipped (their own executors retire
    // them), so a worker never spins on work it cannot join.
    work_cv_.wait(lock, [&] {
      if (stop_) return true;
      for (Job* j = head_; j != nullptr; j = j->next_job) {
        if (j->next.load() < j->n && j->slot_count.load() < j->max_slots) {
          job = j;
          return true;
        }
      }
      return false;
    });
    if (stop_) return;
    ++job->active;  // pins the job: the submitter waits for active == 0
    std::exception_ptr error = job->error;
    lock.unlock();
    const std::size_t finished = run_tasks(*job, error);
    lock.lock();
    --job->active;
    job->done += finished;
    if (error && !job->error) job->error = error;
    if (job->next.load() >= job->n) unlink(job);
    done_cv_.notify_all();
  }
}

void WorkerPool::unlink(Job* job) {
  Job** p = &head_;
  while (*p != nullptr && *p != job) p = &(*p)->next_job;
  if (*p == job) *p = job->next_job;
}

void WorkerPool::parallel_for(
    std::size_t n, std::size_t max_slots,
    common::FunctionRef<void(std::size_t, std::size_t)> fn) {
  if (n == 0) return;
  if (workers_.empty() || max_slots <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  Job job(fn, n, max_slots);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job.next_job = head_;  // LIFO: nested jobs drain before their parents
    head_ = &job;
  }
  // Wake only as many workers as the job can seat (the submitter takes one
  // slot itself): small shard jobs on big pools must not stampede every
  // thread per layer. Correctness never depends on wakeups — the submitter
  // participates regardless.
  const std::size_t wake =
      std::min<std::size_t>(std::min(n, max_slots) - 1, workers_.size());
  for (std::size_t i = 0; i < wake; ++i) work_cv_.notify_one();

  std::exception_ptr error;
  const std::size_t finished = run_tasks(job, error);

  std::unique_lock<std::mutex> lock(mu_);
  job.done += finished;
  if (error && !job.error) job.error = error;
  unlink(&job);  // no new executor may join once the submitter waits
  done_cv_.wait(lock,
                [&job] { return job.done == job.n && job.active == 0; });
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace spikestream::runtime
