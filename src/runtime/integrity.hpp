// End-to-end data-integrity layer for the serving stack (PR-10).
//
// Threat model: silent data corruption — bit flips in weight tiles, spike
// payloads in NoC transit, live membrane state — produces *wrong answers*,
// not exceptions. The fault-injection machinery (runtime/faults.hpp) can now
// plant exactly those flips deterministically; this header provides the
// defense: CRC32C seals on every dataflow domain boundary plus a
// redundant-execution mode for the state no seal can cover.
//
//   admission ──seal(image)──▶ wave formation ──verify──▶ layer 0
//        layer l ──seal(carry)──▶ cluster handoff ──verify──▶ layer l+1
//        last layer ──seal(output)──▶ completion (seal published to caller)
//
// A seal is computed on the producing side of a boundary and verified on the
// consuming side; corruption in between fails the verify with an
// IntegrityFault. IntegrityFault derives from TransientFault on purpose: the
// server's existing bounded-retry containment catches it, resets the wave's
// lanes and re-runs from timestep 0 — and because every injected data fault
// is undone (weights) or regenerated (spikes, membranes) between attempts,
// the retried wave completes bit-identical to an unfaulted one. Only when
// retries exhaust while mismatches persist do the wave's requests end in the
// kCorrupted terminal state (distinct from kError: the caller knows the
// failure was a detected-integrity one, not a crash).
//
// Membranes are live neuron state, rewritten every timestep — there is no
// producer/consumer boundary to seal. The redundant-lane mode covers them:
// the wave executes twice and the per-timestep output seals of the two
// passes must agree (on real hardware the passes land on disjoint clusters,
// so a localized SPM flip perturbs only one of them).
//
// Everything here is off by default and the checks are pure observers —
// with IntegrityConfig all-false no seal is computed, no counter moves and
// every historical spike stream and BENCH number stays bit-exact (the same
// contract arch::EccConfig and DramConfig::flat_legacy honor).
//
// The CRC itself is common::simd::crc32c — the SIMD-tiered Castagnoli engine
// (table / SSE4.2 / 3-stream interleaved) with the standard chaining
// identity, so seals are host-independent and tier-independent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/simd.hpp"
#include "runtime/faults.hpp"
#include "snn/network.hpp"
#include "snn/tensor.hpp"

namespace spikestream::runtime {

/// Detected data corruption: a checksum mismatch on a sealed boundary or a
/// redundant-lane divergence. Subclasses TransientFault so the server's
/// retry-with-backoff containment re-runs the wave; exhausted retries with
/// the mismatch persisting end the requests in kCorrupted.
class IntegrityFault : public TransientFault {
 public:
  explicit IntegrityFault(const std::string& what) : TransientFault(what) {}
};

/// Where a seal guards the dataflow (names for fault messages and reports).
enum class SealPoint {
  kAdmission,   ///< input image, sealed at submit(), verified at wave start
  kWeights,     ///< per-layer weight slice, sealed once, verified per attempt
  kHandoff,     ///< spike carry crossing a layer/cluster boundary
  kCompletion,  ///< final output map, seal published with the result
  kRedundant,   ///< primary-vs-shadow per-timestep output comparison
};

const char* seal_point_name(SealPoint p);

/// CRC32C checksum + length of one sealed buffer. Two buffers with equal
/// seals are byte-identical up to CRC32C collision odds; the length guard
/// also catches truncation, which a bare CRC of a shorter prefix would not.
struct Seal {
  std::uint32_t crc = 0;
  std::uint64_t bytes = 0;

  bool operator==(const Seal& o) const {
    return crc == o.crc && bytes == o.bytes;
  }
  bool operator!=(const Seal& o) const { return !(*this == o); }
};

inline Seal seal_bytes(const void* data, std::size_t n) {
  return Seal{common::simd::crc32c(data, n), static_cast<std::uint64_t>(n)};
}

/// Seal a spike map's payload (the 0/1 bytes the consumer integrates).
inline Seal seal_spikes(const snn::SpikeMap& m) {
  return seal_bytes(m.v.data(), m.v.size() * sizeof(std::uint8_t));
}

/// Seal a dense float tensor (input images, membrane snapshots in tests).
inline Seal seal_tensor(const snn::Tensor& t) {
  return seal_bytes(t.v.data(), t.v.size() * sizeof(float));
}

/// Seal a layer's weight slice: the float buffer chained with the streamed
/// half-precision image (when present), so a flip in either representation
/// fails the verify.
Seal seal_weights(const snn::LayerWeights& w);

/// Protection switches for the serving path. All off by default — the
/// bit-exactness contract. crc_bytes_per_cycle prices the modeled checker
/// (a by-8 slice-by-3 CRC32C engine keeps up with the 64 B/cycle DMA port),
/// feeding ServerStats::crc_cycles so benches can report seal overhead.
struct IntegrityConfig {
  /// Seal spike-path boundaries: admission images, layer-to-layer carries,
  /// final outputs. Verified where the data is consumed; the completion seal
  /// is published on the request for the caller's own end-to-end check.
  bool checksum_spikes = false;
  /// Seal every layer's weight slice at server construction and verify
  /// before a wave attempt touches it (catches SPM weight-tile rot).
  bool checksum_weights = false;
  /// Verify the golden weight seals every Nth wave (1 = every wave). Weights
  /// are static, so re-hashing all slices per wave is the dominant checker
  /// cost on big nets; a longer period amortizes it scrub-style at the price
  /// of a detection window — a flip landing between verified waves is served
  /// before the next check catches the rot. Spike-path seals are unaffected
  /// (live data is always checked at every boundary).
  std::uint64_t weight_check_period = 1;
  /// Execute every wave twice and require the per-timestep output seals of
  /// the two passes to agree. The only defense that covers membrane state;
  /// costs ~2x compute. (ServeRequest::redundant opts a single request's
  /// wave in without flipping the global default.)
  bool redundant_lanes = false;
  /// Modeled CRC checker throughput (bytes/cycle) for the crc_cycles stat.
  double crc_bytes_per_cycle = 64.0;

  bool any() const {
    return checksum_spikes || checksum_weights || redundant_lanes;
  }
};

// --- SDC injection primitives ----------------------------------------------
// The server uses these to realize FaultPlan data events. All three are
// involutive (a second identical call restores the buffer exactly), which is
// what makes injected faults retry-recoverable without snapshotting.

/// Flip one bit of one quantized weight of `w`, keeping the float and
/// half-precision representations consistent (when the half image is exact,
/// the flip lands in the streamed half bits and the float view is re-derived;
/// otherwise the float bits take the flip directly). `bit` is reduced mod
/// the representation's total bit count.
void flip_weight_bit(snn::LayerWeights& w, std::uint64_t bit);

/// Toggle one spike byte (0 <-> 1) of a carry map. `byte` reduced mod size.
void flip_spike_byte(snn::SpikeMap& m, std::uint64_t byte);

/// Flip one bit of one membrane potential. `bit` reduced mod the tensor's
/// total float-bit count.
void flip_membrane_bit(snn::Tensor& t, std::uint64_t bit);

}  // namespace spikestream::runtime
