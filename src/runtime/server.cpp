#include "runtime/server.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <string>
#include <thread>

#include "runtime/backend_sharded.hpp"
#include "runtime/worker_pool.hpp"

namespace spikestream::runtime {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::chrono::steady_clock::time_point to_time_point(std::uint64_t ns) {
  return std::chrono::steady_clock::time_point(
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::nanoseconds(ns)));
}

enum FireReason { kFullWave = 0, kDeadline = 1, kDrain = 2 };

}  // namespace

InferenceServer::InferenceServer(const snn::Network& net,
                                 const kernels::RunOptions& opt,
                                 const BackendConfig& backend,
                                 const ServerConfig& server,
                                 const arch::EnergyParams& energy)
    : engine_(net, opt, backend, energy),
      cfg_(server),
      queue_(server.queue_capacity) {
  sharded_ = dynamic_cast<const ShardedBackend*>(&engine_.backend());
  max_lanes_ = cfg_.max_wave_lanes > 0
                   ? cfg_.max_wave_lanes
                   : std::max(1, engine_.options().segment_major_lanes);
  cfg_.min_wave_lanes = std::clamp(cfg_.min_wave_lanes, 1, max_lanes_);
  delay_ns_ = std::max<std::int64_t>(0, cfg_.max_queue_delay_us) * 1000;
  // Throughput-safe start: the controller begins at full lanes and shrinks
  // only when sustained light load proves the latency win is free.
  target_lanes_.store(max_lanes_, std::memory_order_relaxed);
  stats_.target_lanes = max_lanes_;

  // Same pool-sharing rule as BatchRunner: reuse the backend's persistent
  // pool when it has one so wave-lane fan-out and shard fan-out share one
  // clamped thread set; otherwise bring our own for the non-FC lane fan-out.
  pool_ = engine_.worker_pool();
  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  if (pool_ == nullptr && hw > 1) {
    pool_ = std::make_shared<WorkerPool>(hw - 1);
  }

  // Every wave-sized buffer is allocated here, once: the dispatcher loop
  // reuses them for the life of the server.
  const auto lanes = static_cast<std::size_t>(max_lanes_);
  wave_.resize(lanes, nullptr);
  enqueue_snap_.resize(lanes, 0);
  states_.resize(lanes);
  for (auto& s : states_) s = engine_.make_state();
  steps_.resize(lanes);
  lanes_.resize(lanes);
  out_crc_.resize(lanes, 0);
  out_bytes_.resize(lanes, 0);
  wave_data_faults_.reserve(cfg_.faults.size());

  // Golden weight seals: computed once over the quantized slices the engine
  // will actually stream, then verified before every wave attempt touches
  // them. Construction-time is the trust anchor — nothing has run yet.
  if (cfg_.integrity.checksum_weights) {
    const std::size_t n = engine_.network().num_layers();
    weight_seals_.reserve(n);
    for (std::size_t l = 0; l < n; ++l) {
      weight_seals_.push_back(seal_weights(engine_.network().weights(l)));
    }
  }

  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

InferenceServer::~InferenceServer() { stop(); }

bool InferenceServer::submit(ServeRequest& req) {
  // The submitting_ count makes shutdown race-free: stop() closes admission
  // and then waits for every in-flight submit (a handful of instructions,
  // nothing blocking) to retire before it tells the dispatcher to drain, so
  // a push can never land after the dispatcher's final empty check and no
  // request is ever stranded in kQueued.
  submitting_.fetch_add(1, std::memory_order_acq_rel);
  if (closed_.load(std::memory_order_acquire)) {
    submitting_.fetch_sub(1, std::memory_order_release);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    req.state.store(ServeRequest::kRejected, std::memory_order_release);
    req.state.notify_all();
    return false;
  }
  req.dispatch_ns = 0;
  req.complete_ns = 0;
  // Admission seal: producer-side checksum of the input, verified when the
  // wave forms — the first sealed boundary of the dataflow. Computed here on
  // the client's thread (lock-free, allocation-free like the rest of
  // submit()); the modeled checker bytes are accounted at verify time.
  if (cfg_.integrity.checksum_spikes && req.image != nullptr) {
    req.input_seal = seal_tensor(*req.image);
  } else {
    req.input_seal = Seal{};
  }
  req.result_seal = Seal{};
  req.state.store(ServeRequest::kQueued, std::memory_order_relaxed);
  req.enqueue_ns = now_ns();
  const bool pushed = queue_.try_push(&req);
  submitting_.fetch_sub(1, std::memory_order_release);
  if (!pushed) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    req.state.store(ServeRequest::kRejected, std::memory_order_release);
    req.state.notify_all();
    return false;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  // Dekker-style handshake with the sleeping dispatcher: the fence orders
  // our push before the sleeping_ read exactly as the dispatcher's fence
  // orders its sleeping_ write before its queue re-check — one side always
  // observes the other, so a wakeup is never lost, and on the busy path
  // this is a single relaxed load.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (sleeping_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_cv_.notify_one();
  }
  return true;
}

void InferenceServer::stop() {
  if (!closed_.exchange(true, std::memory_order_acq_rel)) {
    // Admission is closed; let in-flight submits retire their pushes.
    while (submitting_.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
    stop_.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      wake_cv_.notify_one();
    }
  }
  std::lock_guard<std::mutex> lock(join_mu_);  // one joiner, losers wait
  if (dispatcher_.joinable()) dispatcher_.join();
}

void InferenceServer::wait_for_work(bool has_deadline,
                                    std::uint64_t deadline_ns) {
  std::unique_lock<std::mutex> lock(wake_mu_);
  sleeping_.store(true, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const auto wake = [this] {
    return queue_.size_approx() > 0 || stop_.load(std::memory_order_acquire);
  };
  if (!wake()) {
    if (has_deadline) {
      wake_cv_.wait_until(lock, to_time_point(deadline_ns), wake);
    } else {
      wake_cv_.wait(lock, wake);
    }
  }
  sleeping_.store(false, std::memory_order_relaxed);
}

void InferenceServer::dispatcher_loop() {
  for (;;) {
    std::size_t wn = 0;
    std::uint64_t deadline_ns = 0;
    int fire_reason = kFullWave;
    const int target = std::clamp(
        target_lanes_.load(std::memory_order_relaxed), 1, max_lanes_);
    const auto want = static_cast<std::size_t>(target);
    for (;;) {
      ServeRequest* req = nullptr;
      while (wn < want && queue_.try_pop(req)) {
        // TTL shedding at pop time: a request whose deadline already passed
        // is published kTimedOut instead of occupying a lane — serving it
        // late would only delay the still-viable requests behind it.
        const std::uint64_t ttl = ttl_ns(*req);
        if (ttl != 0) {
          const std::uint64_t now = now_ns();
          if (now >= req->enqueue_ns + ttl) {
            shed_expired(req, now);
            continue;
          }
        }
        wave_[wn++] = req;
        if (wn == 1) {
          deadline_ns = req->enqueue_ns +
                        static_cast<std::uint64_t>(delay_ns_);
        }
      }
      if (wn >= want) {
        fire_reason = kFullWave;
        break;
      }
      const bool stopping = stop_.load(std::memory_order_acquire);
      if (wn == 0) {
        if (stopping && queue_.size_approx() == 0) return;
        wait_for_work(/*has_deadline=*/false, 0);
        continue;
      }
      if (stopping) {
        fire_reason = kDrain;
        break;
      }
      if (now_ns() >= deadline_ns) {
        fire_reason = kDeadline;
        break;
      }
      wait_for_work(/*has_deadline=*/true, deadline_ns);
    }
    if (wn > 0) execute_wave(wn, target, fire_reason);
  }
}

std::uint64_t InferenceServer::ttl_ns(const ServeRequest& req) const {
  std::int64_t us = req.ttl_us;
  if (us == 0) us = cfg_.default_ttl_us;
  if (us <= 0) return 0;  // negative per-request TTL opts out of the default
  return static_cast<std::uint64_t>(us) * 1000;
}

void InferenceServer::shed_expired(ServeRequest* req, std::uint64_t now) {
  req->dispatch_ns = now;
  req->complete_ns = now;
  req->state.store(ServeRequest::kTimedOut, std::memory_order_release);
  req->state.notify_all();
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.timed_out;
}

int InferenceServer::apply_fault_events() {
  const auto& events = cfg_.faults.events();
  int transient_failures = 0;
  wave_data_faults_.clear();
  while (next_fault_ < events.size() &&
         events[next_fault_].wave <= wave_index_) {
    const FaultEvent& e = events[next_fault_++];
    switch (e.kind) {
      case FaultKind::kClusterFailStop:
        // fail_cluster() is the arbiter: it refuses duplicates, bad ids and
        // killing the last survivor, and re-plans exactly once on accept.
        if (sharded_ != nullptr && sharded_->fail_cluster(e.cluster)) {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.cluster_failures;
          ++stats_.faults_applied;
        }
        break;
      case FaultKind::kClusterSlowdown:
        if (sharded_ != nullptr) {
          sharded_->set_cluster_slowdown(e.cluster, e.factor);
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.faults_applied;
        }
        break;
      case FaultKind::kLinkDegrade:
        if (sharded_ != nullptr) {
          sharded_->set_link_degrade(e.cluster, e.factor);
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.faults_applied;
        }
        break;
      case FaultKind::kTransientWaveError:
        transient_failures += std::max(1, e.failures);
        break;
      case FaultKind::kWeightBitFlip:
      case FaultKind::kSpikePayloadFlip:
      case FaultKind::kMembraneFlip:
        // Data events corrupt this wave's leading attempts from inside the
        // wave body; collect them for execute_wave's injection points.
        wave_data_faults_.push_back(e);
        break;
    }
  }
  return transient_failures;
}

void InferenceServer::ensure_shadow() {
  if (!shadow_states_.empty()) return;
  const auto lanes = static_cast<std::size_t>(max_lanes_);
  shadow_states_.resize(lanes);
  for (auto& s : shadow_states_) s = engine_.make_state();
  shadow_steps_.resize(lanes);
  shadow_lanes_.resize(lanes);
  shadow_crc_.resize(lanes, 0);
  shadow_bytes_.resize(lanes, 0);
}

void InferenceServer::execute_wave(std::size_t wn, int target,
                                   int fire_reason) {
  // Second TTL gate: requests admitted in time can still expire while the
  // wave buffer waits for its deadline. Shed them now and compact — a wave
  // shed to empty never executes (and does not advance wave_index_).
  {
    const std::uint64_t now = now_ns();
    std::size_t kept = 0;
    for (std::size_t i = 0; i < wn; ++i) {
      ServeRequest* req = wave_[i];
      const std::uint64_t ttl = ttl_ns(*req);
      if (ttl != 0 && now >= req->enqueue_ns + ttl) {
        shed_expired(req, now);
      } else {
        wave_[kept++] = req;
      }
    }
    wn = kept;
    if (wn == 0) return;
  }

  const int transient_failures = apply_fault_events();

  const std::size_t layers = engine_.network().num_layers();
  const int timesteps = std::max(1, cfg_.timesteps);
  const std::uint64_t t_dispatch = now_ns();
  const std::size_t backlog = queue_.size_approx();

  for (std::size_t i = 0; i < wn; ++i) wave_[i]->dispatch_ns = t_dispatch;

  // Data-integrity wave context: a wave runs redundantly when the server
  // default says so or any member request opted in. Counters are wave-local
  // and flushed under the stats lock exactly once.
  const IntegrityConfig& integ = cfg_.integrity;
  bool redundant = integ.redundant_lanes;
  for (std::size_t i = 0; i < wn && !redundant; ++i) {
    redundant = wave_[i]->redundant;
  }
  if (redundant) ensure_shadow();
  const bool seal_outputs = integ.checksum_spikes || redundant;
  std::uint64_t checks = 0, mismatches = 0, ifaults = 0, injected = 0;
  std::uint64_t sealed_bytes = 0;

  const auto target_layer = [&](const FaultEvent& e) {
    return static_cast<std::size_t>(e.layer) % layers;
  };
  const auto target_lane = [&](const FaultEvent& e) {
    return static_cast<std::size_t>(e.lane) % wn;
  };
  // Weight flips are engine-global (every pass reads the same quantized
  // slices), so they are applied right before a primary pass and undone
  // right after — the involution makes undo == re-apply — which both makes
  // retries past the failure budget run clean and models the shadow pass's
  // disjoint clusters owning uncorrupted weight copies.
  const auto toggle_weight_flips = [&](int attempt) {
    for (const FaultEvent& e : wave_data_faults_) {
      if (e.kind == FaultKind::kWeightBitFlip && attempt < e.failures) {
        flip_weight_bit(engine_.mutable_weights(target_layer(e)), e.bit);
      }
    }
  };

  // The offline lockstep path, verbatim: all lanes advance through the same
  // layer together, segmented FC layers stream each weight band once per
  // wave (InferenceEngine::run_layer_batch), non-FC layers fan the lanes out
  // on the pool. Every attempt starts from a clean lane state and an empty
  // accumulator (reset without surrendering capacity, so a recycled slot
  // stays allocation-free), so a retried wave re-runs from timestep 0 and —
  // the engine being deterministic — lands bit-identical to a clean run.
  //
  // `primary` distinguishes the served pass from the redundant shadow pass:
  // injections and seal verification run on the primary only (the shadow
  // models disjoint clusters, which the localized flip does not reach), and
  // only the primary accumulates into the requests' results. Both passes
  // chain their per-timestep completion seals for the redundancy compare.
  WorkerPool* pool = pool_.get();
  const auto run_pass = [&](int attempt, bool primary) {
    auto& states = primary ? states_ : shadow_states_;
    auto& steps = primary ? steps_ : shadow_steps_;
    auto& lanes = primary ? lanes_ : shadow_lanes_;
    auto& ocrc = primary ? out_crc_ : shadow_crc_;
    auto& obytes = primary ? out_bytes_ : shadow_bytes_;
    for (std::size_t i = 0; i < wn; ++i) {
      states[i].clear();
      ocrc[i] = 0;
      obytes[i] = 0;
      if (primary) {
        ServeRequest* req = wave_[i];
        req->result.timesteps = timesteps;
        req->result.spike_counts.clear();
        req->result.cycles_per_step.clear();
        req->result.total_cycles = 0;
        req->result.total_energy_mj = 0;
      }
    }
    // Admission boundary: re-seal each input and compare against the seal
    // submit() computed (corruption while queued). The modeled checker ran
    // twice per image — once at admission, once here.
    if (primary && integ.checksum_spikes) {
      for (std::size_t i = 0; i < wn; ++i) {
        if (wave_[i]->image == nullptr) continue;
        const Seal s = seal_tensor(*wave_[i]->image);
        sealed_bytes += 2 * s.bytes;
        ++checks;
        if (s != wave_[i]->input_seal) {
          ++mismatches;
          throw IntegrityFault("admission seal mismatch");
        }
      }
    }
    // Weight boundary: every slice the attempt will stream must still match
    // its construction-time seal — this is what turns an injected weight
    // flip from a silently wrong answer into a detected, retryable fault.
    // A weight_check_period > 1 amortizes the re-hash scrub-style over the
    // wave sequence (weights are static; see IntegrityConfig).
    const bool weights_due =
        integ.weight_check_period <= 1 ||
        wave_index_ % integ.weight_check_period == 0;
    if (primary && integ.checksum_weights && weights_due) {
      for (std::size_t l = 0; l < layers; ++l) {
        const Seal s = seal_weights(engine_.network().weights(l));
        sealed_bytes += s.bytes;
        ++checks;
        if (s != weight_seals_[l]) {
          ++mismatches;
          throw IntegrityFault("weight seal mismatch at layer " +
                               std::to_string(l));
        }
      }
    }
    for (int t = 0; t < timesteps; ++t) {
      for (std::size_t i = 0; i < wn; ++i) {
        engine_.begin_sample(steps[i]);
        lanes[i] = {wave_[i]->image, nullptr, &states[i], &steps[i]};
      }
      for (std::size_t l = 0; l < layers; ++l) {
        // Membrane SDC: flip live neuron state right before the layer
        // integrates it. Unsealed path — only the redundancy compare below
        // can catch this one. No undo needed: every attempt clears state.
        if (primary && t == 0) {
          for (const FaultEvent& e : wave_data_faults_) {
            if (e.kind == FaultKind::kMembraneFlip && attempt < e.failures &&
                target_layer(e) == l) {
              flip_membrane_bit(states[target_lane(e)].membrane(l), e.bit);
              ++injected;
            }
          }
        }
        engine_.run_layer_batch(l, std::span(lanes.data(), wn), pool);
        // Injected transients fire mid-wave (after the first layer already
        // dirtied lane state) so a retry genuinely exercises the reset path.
        if (primary && t == 0 && l == 0 && attempt < transient_failures) {
          throw TransientFault("injected transient wave fault");
        }
        // Handoff boundary: seal the spike carry layer l produced, model the
        // transit (where a payload flip may land), verify on the consuming
        // side before layer l+1 integrates it.
        if (primary && l + 1 < layers &&
            (integ.checksum_spikes || !wave_data_faults_.empty())) {
          for (std::size_t i = 0; i < wn; ++i) {
            const snn::SpikeMap* carry = lanes[i].carry;
            if (carry == nullptr) continue;
            Seal s{};
            if (integ.checksum_spikes) {
              s = seal_spikes(*carry);
              sealed_bytes += s.bytes;
            }
            if (t == 0) {
              for (const FaultEvent& e : wave_data_faults_) {
                if (e.kind == FaultKind::kSpikePayloadFlip &&
                    attempt < e.failures && target_layer(e) == l &&
                    target_lane(e) == i) {
                  // The carry aliases lane-owned scratch; corrupting it in
                  // place is exactly what NoC transit corruption does.
                  flip_spike_byte(const_cast<snn::SpikeMap&>(*carry), e.bit);
                  ++injected;
                }
              }
            }
            if (integ.checksum_spikes) {
              const Seal v = seal_spikes(*carry);
              sealed_bytes += v.bytes;
              ++checks;
              if (v != s) {
                ++mismatches;
                throw IntegrityFault("handoff seal mismatch after layer " +
                                     std::to_string(l));
              }
            }
          }
        }
      }
      for (std::size_t i = 0; i < wn; ++i) {
        // Payload flips targeting the last layer land on the final output
        // map itself — past the last sealed handoff, before the completion
        // seal covers it, so checksum mode cannot see them (the redundancy
        // compare can; bench/integrity_profile demonstrates the escape).
        if (primary && t == 0) {
          for (const FaultEvent& e : wave_data_faults_) {
            if (e.kind == FaultKind::kSpikePayloadFlip &&
                attempt < e.failures && target_layer(e) == layers - 1 &&
                target_lane(e) == i && !steps[i].final_output.v.empty()) {
              flip_spike_byte(steps[i].final_output, e.bit);
              ++injected;
            }
          }
        }
        if (seal_outputs) {
          const auto& fo = steps[i].final_output.v;
          ocrc[i] = common::simd::crc32c(fo.data(), fo.size(), ocrc[i]);
          obytes[i] += fo.size();
          sealed_bytes += fo.size();
        }
        if (primary) wave_[i]->result.accumulate_step(steps[i]);
      }
    }
  };

  bool ran_shadow = false;
  const auto run_attempt = [&](int attempt) {
    toggle_weight_flips(attempt);  // apply
    for (const FaultEvent& e : wave_data_faults_) {
      if (e.kind == FaultKind::kWeightBitFlip && attempt < e.failures) {
        ++injected;
      }
    }
    try {
      run_pass(attempt, /*primary=*/true);
    } catch (...) {
      toggle_weight_flips(attempt);  // undo before the retry machinery runs
      throw;
    }
    toggle_weight_flips(attempt);  // undo (shadow reads clean weights)
    if (redundant) {
      ran_shadow = true;
      run_pass(attempt, /*primary=*/false);
      for (std::size_t i = 0; i < wn; ++i) {
        ++checks;
        if (out_crc_[i] != shadow_crc_[i] || out_bytes_[i] != shadow_bytes_[i]) {
          ++mismatches;
          throw IntegrityFault("redundant-lane output divergence on lane " +
                               std::to_string(i));
        }
      }
    }
  };

  // Exception containment: a throwing wave fails only this wave's requests.
  // TransientFault (and its IntegrityFault subclass) earns bounded
  // retry-with-backoff; anything else fails the wave immediately. The
  // dispatcher survives either way. `last_integrity` remembers whether the
  // terminal failure was a detected-corruption one: exhausted retries then
  // publish kCorrupted instead of kError.
  bool wave_ok = false;
  bool last_integrity = false;
  int attempt = 0;
  std::uint64_t retries = 0;
  std::uint64_t transients = 0;
  for (;;) {
    try {
      run_attempt(attempt);
      wave_ok = true;
      break;
    } catch (const IntegrityFault&) {
      ++transients;
      ++ifaults;
      last_integrity = true;
      if (attempt >= cfg_.max_wave_retries) break;
      ++attempt;
      ++retries;
      if (cfg_.retry_backoff_us > 0 &&
          !stop_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(cfg_.retry_backoff_us * attempt));
      }
    } catch (const TransientFault&) {
      ++transients;
      last_integrity = false;
      if (attempt >= cfg_.max_wave_retries) break;
      ++attempt;
      ++retries;
      if (cfg_.retry_backoff_us > 0 &&
          !stop_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(cfg_.retry_backoff_us * attempt));
      }
    } catch (const std::exception&) {
      last_integrity = false;
      break;
    }
  }
  ++wave_index_;

  // Publish completions before the bookkeeping below so a waiting client's
  // wakeup is never queued behind the stats lock. The moment a terminal
  // state lands the caller may recycle or destroy the request, so everything
  // the stats block needs is snapshotted here — wave_[i] must not be
  // dereferenced after its store.
  const std::uint64_t t_done = now_ns();
  const int final_state =
      wave_ok ? ServeRequest::kDone
              : (last_integrity ? ServeRequest::kCorrupted
                                : ServeRequest::kError);
  for (std::size_t i = 0; i < wn; ++i) {
    ServeRequest* req = wave_[i];
    enqueue_snap_[i] = req->enqueue_ns;
    if (wave_ok && seal_outputs) {
      req->result_seal = Seal{out_crc_[i], out_bytes_[i]};
    }
    req->complete_ns = t_done;
    req->state.store(final_state, std::memory_order_release);
    req->state.notify_all();
  }

  const auto flush_integrity = [&](ServerStats& s) {
    s.integrity_checks += checks;
    s.integrity_mismatches += mismatches;
    s.integrity_faults += ifaults;
    s.data_faults_injected += injected;
    s.crc_sealed_bytes += sealed_bytes;
    if (integ.crc_bytes_per_cycle > 0) {
      s.crc_cycles += static_cast<double>(sealed_bytes) /
                      integ.crc_bytes_per_cycle;
    }
    if (ran_shadow) ++s.redundant_waves;
  };

  if (!wave_ok) {
    // A failed wave is not SLO evidence: skip the controller and the latency
    // histograms so fault noise never reshapes healthy waves or the p99.
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.waves;
    ++stats_.wave_errors;
    if (last_integrity) {
      stats_.corrupted += wn;
    } else {
      stats_.errored += wn;
    }
    stats_.wave_retries += retries;
    stats_.transient_faults += transients;
    flush_integrity(stats_);
    return;
  }

  const int flip = update_controller(wn, target, fire_reason, backlog);

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.waves;
    if (fire_reason == kFullWave) ++stats_.full_waves;
    if (fire_reason == kDeadline) ++stats_.deadline_waves;
    if (fire_reason == kDrain) ++stats_.drain_waves;
    if (flip > 0) ++stats_.wave_grows;
    if (flip < 0) ++stats_.wave_shrinks;
    stats_.completed += wn;
    stats_.wave_retries += retries;
    stats_.transient_faults += transients;
    flush_integrity(stats_);
    stats_.wave_lanes.add(static_cast<double>(wn));
    stats_.wave_occupancy.add(static_cast<double>(wn) /
                              static_cast<double>(max_lanes_));
    stats_.queue_depth.add(static_cast<double>(backlog));
    stats_.target_trace.add(static_cast<double>(target));
    for (std::size_t i = 0; i < wn; ++i) {
      stats_.latency_us.add(static_cast<double>(t_done - enqueue_snap_[i]) *
                            1e-3);
      stats_.queue_us.add(static_cast<double>(t_dispatch - enqueue_snap_[i]) *
                          1e-3);
    }
  }
}

int InferenceServer::update_controller(std::size_t wn, int target,
                                       int fire_reason,
                                       std::size_t backlog) {
  if (!cfg_.adaptive_wave || fire_reason == kDrain) return 0;
  const auto want = static_cast<std::size_t>(target);
  const bool pressure = wn >= want && backlog > 0;
  const bool slack =
      fire_reason == kDeadline &&
      static_cast<double>(wn) <=
          cfg_.shrink_occupancy * static_cast<double>(target);
  if (pressure) {
    ++grow_streak_;
    shrink_streak_ = 0;
  } else if (slack) {
    ++shrink_streak_;
    grow_streak_ = 0;
  } else {
    // Dead band: a full wave with no backlog, or a deadline wave above the
    // shrink threshold, is evidence the current size fits — reset both
    // streaks so the target holds (this is what prevents oscillation).
    grow_streak_ = 0;
    shrink_streak_ = 0;
  }
  const int streak = std::max(1, cfg_.controller_streak);
  int next = target;
  int flip = 0;
  if (grow_streak_ >= streak && target < max_lanes_) {
    next = std::min(max_lanes_, target * 2);
    grow_streak_ = 0;
    flip = 1;
  } else if (shrink_streak_ >= streak && target > cfg_.min_wave_lanes) {
    next = std::max(cfg_.min_wave_lanes, target / 2);
    shrink_streak_ = 0;
    flip = -1;
  }
  if (next != target) {
    target_lanes_.store(next, std::memory_order_relaxed);
  }
  return flip;
}

ServerStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ServerStats out = stats_;
  out.admitted = admitted_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.target_lanes = target_lanes_.load(std::memory_order_relaxed);
  if (sharded_ != nullptr) {
    out.degrade_replans = sharded_->degrade_replans();
    out.active_clusters = sharded_->active_clusters();
  }
  return out;
}

}  // namespace spikestream::runtime
