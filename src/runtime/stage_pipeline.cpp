#include "runtime/stage_pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "compress/csr_ifmap.hpp"

namespace spikestream::runtime {

StageTimeline simulate_stage_timeline(
    const std::vector<std::vector<double>>& services,
    const std::vector<std::vector<double>>& spikes_out,
    int fifo_depth_spikes) {
  const int S = static_cast<int>(services.size());
  StageTimeline tl;
  tl.stages.resize(static_cast<std::size_t>(std::max(S, 0)));
  if (S == 0) return tl;
  const int B = static_cast<int>(services[0].size());
  SPK_CHECK(static_cast<int>(spikes_out.size()) == S,
            "spikes_out must have one row per stage");
  for (int s = 0; s < S; ++s) {
    SPK_CHECK(static_cast<int>(services[s].size()) == B &&
                  static_cast<int>(spikes_out[s].size()) == B,
              "all stages must cover the same batch");
  }
  if (B == 0) return tl;
  const double depth = std::max(0, fifo_depth_spikes);

  // start[s][i] / finish[s][i]; finish includes any backpressure stall, so
  // the recurrence start[s][i] = max(finish[s-1][i], finish[s][i-1]) models
  // store-and-forward with a producer that holds its clusters while blocked.
  std::vector<std::vector<double>> start(services.size()),
      finish(services.size());
  for (int s = 0; s < S; ++s) {
    start[s].assign(static_cast<std::size_t>(B), 0.0);
    finish[s].assign(static_cast<std::size_t>(B), 0.0);
  }

  for (int i = 0; i < B; ++i) {
    for (int s = 0; s < S; ++s) {
      StageTrace& tr = tl.stages[static_cast<std::size_t>(s)];
      const double arrive = s == 0 ? 0.0 : finish[s - 1][i];
      const double free_at = i == 0 ? 0.0 : finish[s][i - 1];
      const double t0 = std::max(arrive, free_at);
      start[s][i] = t0;
      if (i == 0) {
        tr.first_start = t0;
      } else {
        tr.idle_cycles += t0 - free_at;  // starved on the upstream FIFO
      }
      const double svc = services[s][i];
      tr.service_cycles += svc;
      double done = t0 + svc;

      // Push into the downstream FIFO: samples j < i whose consumer start
      // start[s+1][j] lies after `done` still occupy it (the consumer pops a
      // sample the moment it starts it). start[s+1][j] for j < i was computed
      // at iteration (j, s+1) < (i, s) in this loop order, so it is final.
      if (s + 1 < S) {
        const double push = spikes_out[s][i];
        // A sample wider than the whole FIFO squeezes through an empty FIFO
        // (minimum capacity: one in-flight sample).
        const double room_needed = std::min(push, depth);
        double occ = 0;
        for (int j = 0; j < i; ++j) {
          if (start[s + 1][j] > done) occ += spikes_out[s][j];
        }
        if (occ + room_needed > depth) {
          // Wait for consumer pops (in j order == time order, since
          // start[s+1][j] is nondecreasing in j) until the push fits.
          const double done0 = done;
          for (int j = 0; j < i && occ + room_needed > depth; ++j) {
            if (start[s + 1][j] > done0) {
              occ -= spikes_out[s][j];
              done = std::max(done, start[s + 1][j]);
            }
          }
        }
        tr.stall_cycles += done - (t0 + svc);
        // Occupancy right after this push (pops at exactly `done` applied).
        double after = push;
        for (int j = 0; j < i; ++j) {
          if (start[s + 1][j] > done) after += spikes_out[s][j];
        }
        tr.peak_fifo_spikes = std::max(tr.peak_fifo_spikes, after);
      }
      finish[s][i] = done;
      tr.last_finish = done;
    }
  }

  tl.makespan_cycles = finish[S - 1][B - 1];
  tl.fill_cycles = finish[S - 1][0];
  tl.steady_cycles_per_sample =
      B > 1 ? (tl.makespan_cycles - tl.fill_cycles) / (B - 1)
            : tl.makespan_cycles;
  for (const StageTrace& tr : tl.stages) tl.total_stall_cycles += tr.stall_cycles;
  return tl;
}

StageTimeline simulate_stage_pipeline(const kernels::StagePlan& plan,
                                      const snn::Network& net,
                                      std::span<const InferenceResult> batch,
                                      const kernels::PipelineConfig& cfg) {
  const int S = plan.num_stages();
  const int B = static_cast<int>(batch.size());
  std::vector<std::vector<double>> services(static_cast<std::size_t>(S)),
      spikes(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) {
    services[s].assign(static_cast<std::size_t>(B), 0.0);
    spikes[s].assign(static_cast<std::size_t>(B), 0.0);
  }
  std::vector<double> handoff(static_cast<std::size_t>(S), 0.0);

  for (int i = 0; i < B; ++i) {
    const InferenceResult& r = batch[static_cast<std::size_t>(i)];
    SPK_CHECK(r.layers.size() == net.num_layers(),
              "batch result does not match the network");
    for (int s = 0; s < S; ++s) {
      const kernels::PipelineStage& st = plan.stages[static_cast<std::size_t>(s)];
      for (int l = st.layer_lo; l < st.layer_hi; ++l) {
        services[s][i] += r.layers[static_cast<std::size_t>(l)].stats.cycles;
      }
      if (s + 1 < S) {
        const int bl = st.layer_hi - 1;
        const snn::LayerSpec& spec = net.layer(static_cast<std::size_t>(bl));
        const double out_elems = static_cast<double>(spec.out_h()) *
                                 spec.out_w() * spec.out_c;
        const double nnz = std::round(
            r.layers[static_cast<std::size_t>(bl)].out_firing_rate * out_elems);
        spikes[s][i] = nnz;
        handoff[static_cast<std::size_t>(s)] +=
            static_cast<double>(compress::CsrIfmap::footprint_from_count(
                static_cast<std::size_t>(nnz), spec.out_h(), spec.out_w()));
      }
    }
  }

  StageTimeline tl =
      simulate_stage_timeline(services, spikes, cfg.fifo_depth_spikes);

  for (int s = 0; s < S; ++s) {
    StageTrace& tr = tl.stages[static_cast<std::size_t>(s)];
    const kernels::PipelineStage& st = plan.stages[static_cast<std::size_t>(s)];
    tr.handoff_bytes = handoff[static_cast<std::size_t>(s)];
    for (int i = 0; i < B; ++i) {
      const InferenceResult& r = batch[static_cast<std::size_t>(i)];
      for (int l = st.layer_lo; l < st.layer_hi; ++l) {
        tr.stats.accumulate(r.layers[static_cast<std::size_t>(l)].stats);
      }
    }
    // The stage's clusters are clocked for its whole busy window, stalls
    // included; report that window (not the service sum) as the stage's
    // wall-clock so static energy covers blocked-but-powered time.
    tr.stats.cycles = tr.window_cycles();
    tr.stats.fifo_stall_cycles = tr.stall_cycles;
  }
  return tl;
}

}  // namespace spikestream::runtime
