#include "runtime/faults.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace spikestream::runtime {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kClusterFailStop: return "cluster-fail-stop";
    case FaultKind::kClusterSlowdown: return "cluster-slowdown";
    case FaultKind::kLinkDegrade: return "link-degrade";
    case FaultKind::kTransientWaveError: return "transient-wave-error";
    case FaultKind::kWeightBitFlip: return "weight-bit-flip";
    case FaultKind::kSpikePayloadFlip: return "spike-payload-flip";
    case FaultKind::kMembraneFlip: return "membrane-flip";
  }
  return "?";
}

FaultPlan& FaultPlan::add(const FaultEvent& e) {
  // Insert before the first strictly-later event: the list stays sorted by
  // wave and stable for equal waves, whatever order the builder ran in.
  const auto it = std::upper_bound(
      events_.begin(), events_.end(), e,
      [](const FaultEvent& a, const FaultEvent& b) { return a.wave < b.wave; });
  events_.insert(it, e);
  return *this;
}

FaultPlan& FaultPlan::kill_cluster(int cluster, std::uint64_t wave) {
  FaultEvent e;
  e.kind = FaultKind::kClusterFailStop;
  e.wave = wave;
  e.cluster = cluster;
  return add(e);
}

FaultPlan& FaultPlan::slow_cluster(int cluster, double factor,
                                   std::uint64_t wave) {
  SPK_CHECK(factor >= 1.0, "slowdown factor must be >= 1, got " << factor);
  FaultEvent e;
  e.kind = FaultKind::kClusterSlowdown;
  e.wave = wave;
  e.cluster = cluster;
  e.factor = factor;
  return add(e);
}

FaultPlan& FaultPlan::degrade_link(int cluster, double factor,
                                   std::uint64_t wave) {
  SPK_CHECK(factor >= 1.0, "link derate must be >= 1, got " << factor);
  FaultEvent e;
  e.kind = FaultKind::kLinkDegrade;
  e.wave = wave;
  e.cluster = cluster;
  e.factor = factor;
  return add(e);
}

FaultPlan& FaultPlan::transient_error(std::uint64_t wave, int failures) {
  SPK_CHECK(failures >= 1, "a transient event needs >= 1 failure");
  FaultEvent e;
  e.kind = FaultKind::kTransientWaveError;
  e.wave = wave;
  e.failures = failures;
  return add(e);
}

FaultPlan& FaultPlan::flip_weight(int layer, std::uint64_t bit,
                                  std::uint64_t wave, int failures) {
  SPK_CHECK(failures >= 1, "a data fault needs >= 1 failure");
  FaultEvent e;
  e.kind = FaultKind::kWeightBitFlip;
  e.wave = wave;
  e.failures = failures;
  e.layer = layer;
  e.bit = bit;
  return add(e);
}

FaultPlan& FaultPlan::flip_spikes(int layer, std::uint64_t byte,
                                  std::uint64_t wave, int lane, int failures) {
  SPK_CHECK(failures >= 1, "a data fault needs >= 1 failure");
  FaultEvent e;
  e.kind = FaultKind::kSpikePayloadFlip;
  e.wave = wave;
  e.failures = failures;
  e.layer = layer;
  e.bit = byte;
  e.lane = lane;
  return add(e);
}

FaultPlan& FaultPlan::flip_membrane(int layer, std::uint64_t bit,
                                    std::uint64_t wave, int lane,
                                    int failures) {
  SPK_CHECK(failures >= 1, "a data fault needs >= 1 failure");
  FaultEvent e;
  e.kind = FaultKind::kMembraneFlip;
  e.wave = wave;
  e.failures = failures;
  e.layer = layer;
  e.bit = bit;
  e.lane = lane;
  return add(e);
}

FaultPlan FaultPlan::chaos(std::uint64_t seed, std::uint64_t waves,
                           int clusters, int events) {
  SPK_CHECK(waves > 0 && clusters >= 1, "chaos needs waves > 0, clusters >= 1");
  common::Rng rng(seed);
  FaultPlan plan;
  int kills = 0;
  for (int i = 0; i < events; ++i) {
    const std::uint64_t wave = rng.next_u64() % waves;
    const int cluster = static_cast<int>(rng.next_u64() %
                                         static_cast<std::uint64_t>(clusters));
    // 1 + [1, 3): derates in [2, 4) keep the degradation visible without
    // drowning the run.
    const double factor = 2.0 + 2.0 * rng.uniform();
    switch (rng.next_u64() % 4) {
      case 0:
        if (kills < clusters - 1) {
          plan.kill_cluster(cluster, wave);
          ++kills;
          break;
        }
        [[fallthrough]];  // fleet would lose its last cluster: slow instead
      case 1:
        plan.slow_cluster(cluster, factor, wave);
        break;
      case 2:
        plan.degrade_link(cluster, factor, wave);
        break;
      default:
        plan.transient_error(wave, 1 + static_cast<int>(rng.next_u64() % 2));
        break;
    }
  }
  return plan;
}

FaultPlan FaultPlan::chaos_data(std::uint64_t seed, std::uint64_t waves,
                                int layers, int lanes, int events) {
  SPK_CHECK(waves > 0 && layers >= 1 && lanes >= 1,
            "chaos_data needs waves > 0, layers >= 1, lanes >= 1");
  // A distinct seed stream from chaos(): the two schedules stay independent
  // when a soak test merges a structural plan and a data plan built from the
  // same user seed.
  common::Rng rng(seed ^ 0xD47AFA017ull);
  FaultPlan plan;
  for (int i = 0; i < events; ++i) {
    const std::uint64_t wave = rng.next_u64() % waves;
    const int layer = static_cast<int>(rng.next_u64() %
                                       static_cast<std::uint64_t>(layers));
    const std::uint64_t bit = rng.next_u64();
    const int lane = static_cast<int>(rng.next_u64() %
                                      static_cast<std::uint64_t>(lanes));
    switch (rng.next_u64() % 3) {
      case 0: plan.flip_weight(layer, bit, wave); break;
      case 1: plan.flip_spikes(layer, bit, wave, lane); break;
      default: plan.flip_membrane(layer, bit, wave, lane); break;
    }
  }
  return plan;
}

int FaultPlan::transient_failures_at(std::uint64_t wave) const {
  int n = 0;
  for (const FaultEvent& e : events_) {
    if (e.wave > wave) break;
    if (e.wave == wave && e.kind == FaultKind::kTransientWaveError) {
      n += e.failures;
    }
  }
  return n;
}

}  // namespace spikestream::runtime
