// Multi-timestep inference (the regime of the Fig. 5 comparison and of most
// deployed SNNs): run T LIF timesteps over one input, accumulating output
// spike counts, runtime and energy. Membrane potentials integrate across
// timesteps inside the engine; this wrapper adds rate-decoding of the result.
#pragma once

#include <vector>

#include "runtime/engine.hpp"

namespace spikestream::runtime {

struct MultiStepResult {
  int timesteps = 0;
  std::vector<std::uint32_t> spike_counts;  ///< per output neuron, summed
  double total_cycles = 0;
  double total_energy_mj = 0;
  std::vector<double> cycles_per_step;

  /// Rate-decoded prediction: index of the output neuron that spiked most.
  int argmax() const {
    int best = 0;
    for (std::size_t i = 1; i < spike_counts.size(); ++i) {
      if (spike_counts[i] > spike_counts[static_cast<std::size_t>(best)]) {
        best = static_cast<int>(i);
      }
    }
    return best;
  }
};

/// Present the same image for `timesteps` steps (constant-current coding via
/// the encode layer). Resets membranes first.
inline MultiStepResult run_timesteps(InferenceEngine& engine,
                                     const snn::Tensor& image, int timesteps) {
  engine.reset();
  MultiStepResult r;
  r.timesteps = timesteps;
  for (int t = 0; t < timesteps; ++t) {
    const InferenceResult step = engine.run(image);
    if (r.spike_counts.empty()) {
      r.spike_counts.assign(step.final_output.size(), 0);
    }
    for (std::size_t i = 0; i < step.final_output.v.size(); ++i) {
      r.spike_counts[i] += step.final_output.v[i];
    }
    r.total_cycles += step.total_cycles;
    r.total_energy_mj += step.total_energy_mj;
    r.cycles_per_step.push_back(step.total_cycles);
  }
  return r;
}

/// Event-driven variant: one pre-padded spike map per timestep.
inline MultiStepResult run_event_stream(
    InferenceEngine& engine, const std::vector<snn::SpikeMap>& frames) {
  engine.reset();
  MultiStepResult r;
  r.timesteps = static_cast<int>(frames.size());
  for (const auto& f : frames) {
    const InferenceResult step = engine.run_events(f);
    if (r.spike_counts.empty()) {
      r.spike_counts.assign(step.final_output.size(), 0);
    }
    for (std::size_t i = 0; i < step.final_output.v.size(); ++i) {
      r.spike_counts[i] += step.final_output.v[i];
    }
    r.total_cycles += step.total_cycles;
    r.total_energy_mj += step.total_energy_mj;
    r.cycles_per_step.push_back(step.total_cycles);
  }
  return r;
}

}  // namespace spikestream::runtime
