// Multi-timestep inference (the regime of the Fig. 5 comparison and of most
// deployed SNNs): run T LIF timesteps over one input, accumulating output
// spike counts, runtime and energy. Membrane potentials integrate across
// timesteps inside the NetworkState; this wrapper adds rate-decoding of the
// result. The stateless overloads take an explicit NetworkState so one
// immutable engine can serve many concurrent samples (see BatchRunner).
#pragma once

#include <vector>

#include "runtime/engine.hpp"
#include "snn/state.hpp"

namespace spikestream::runtime {

struct MultiStepResult {
  int timesteps = 0;
  std::vector<std::uint32_t> spike_counts;  ///< per output neuron, summed
  double total_cycles = 0;
  double total_energy_mj = 0;
  std::vector<double> cycles_per_step;

  /// Rate-decoded prediction: index of the output neuron that spiked most
  /// (ties resolve to the lowest index). Returns -1 when no output was
  /// recorded — i.e. `spike_counts` is empty because zero timesteps ran.
  int argmax() const {
    if (spike_counts.empty()) return -1;
    int best = 0;
    for (std::size_t i = 1; i < spike_counts.size(); ++i) {
      if (spike_counts[i] > spike_counts[static_cast<std::size_t>(best)]) {
        best = static_cast<int>(i);
      }
    }
    return best;
  }

  void accumulate_step(const InferenceResult& step) {
    if (spike_counts.empty()) {
      spike_counts.assign(step.final_output.size(), 0);
    }
    for (std::size_t i = 0; i < step.final_output.v.size(); ++i) {
      spike_counts[i] += step.final_output.v[i];
    }
    total_cycles += step.total_cycles;
    total_energy_mj += step.total_energy_mj;
    cycles_per_step.push_back(step.total_cycles);
  }
};

/// Present the same image for `timesteps` steps (constant-current coding via
/// the encode layer). Membranes integrate inside `state`, which is cleared
/// first.
inline MultiStepResult run_timesteps(const InferenceEngine& engine,
                                     snn::NetworkState& state,
                                     const snn::Tensor& image, int timesteps) {
  state.clear();
  MultiStepResult r;
  r.timesteps = timesteps;
  InferenceResult step;  // reused across timesteps (scratch-arena hot path)
  for (int t = 0; t < timesteps; ++t) {
    engine.run(image, state, step);
    r.accumulate_step(step);
  }
  return r;
}

/// Event-driven variant: one pre-padded spike map per timestep.
inline MultiStepResult run_event_stream(
    const InferenceEngine& engine, snn::NetworkState& state,
    const std::vector<snn::SpikeMap>& frames) {
  state.clear();
  MultiStepResult r;
  r.timesteps = static_cast<int>(frames.size());
  InferenceResult step;
  for (const auto& f : frames) {
    engine.run_events(f, state, step);
    r.accumulate_step(step);
  }
  return r;
}

/// Stateful conveniences: run on the engine's internal state (resets first).
inline MultiStepResult run_timesteps(InferenceEngine& engine,
                                     const snn::Tensor& image, int timesteps) {
  snn::NetworkState state = engine.make_state();
  return run_timesteps(engine, state, image, timesteps);
}

inline MultiStepResult run_event_stream(
    InferenceEngine& engine, const std::vector<snn::SpikeMap>& frames) {
  snn::NetworkState state = engine.make_state();
  return run_event_stream(engine, state, frames);
}

}  // namespace spikestream::runtime
