#include "runtime/integrity.hpp"

#include <cstring>

#include "common/float_formats.hpp"

namespace spikestream::runtime {

const char* seal_point_name(SealPoint p) {
  switch (p) {
    case SealPoint::kAdmission: return "admission";
    case SealPoint::kWeights: return "weights";
    case SealPoint::kHandoff: return "handoff";
    case SealPoint::kCompletion: return "completion";
    case SealPoint::kRedundant: return "redundant";
  }
  return "?";
}

Seal seal_weights(const snn::LayerWeights& w) {
  const std::size_t float_bytes = w.v.size() * sizeof(float);
  std::uint32_t crc = common::simd::crc32c(w.v.data(), float_bytes);
  std::uint64_t bytes = float_bytes;
  if (w.half_exact && !w.half.empty()) {
    const std::size_t half_bytes = w.half.size() * sizeof(std::uint16_t);
    crc = common::simd::crc32c(w.half.data(), half_bytes, crc);
    bytes += half_bytes;
  }
  return Seal{crc, bytes};
}

void flip_weight_bit(snn::LayerWeights& w, std::uint64_t bit) {
  if (w.half_exact && !w.half.empty()) {
    // The streamed representation takes the hit; the float view is re-derived
    // so both stay consistent (and both verifiable against one seal). The
    // re-derivation is exact in both directions because half_exact means
    // every element round-trips — which also makes a second identical call
    // restore the original bits.
    const std::size_t i = static_cast<std::size_t>((bit / 16) % w.half.size());
    w.half[i] = static_cast<std::uint16_t>(w.half[i] ^ (1u << (bit % 16)));
    w.v[i] = common::fp16_bits_to_fp32(w.half[i]);
    return;
  }
  SPK_CHECK(!w.v.empty(), "flip_weight_bit on an empty weight slice");
  const std::size_t i = static_cast<std::size_t>((bit / 32) % w.v.size());
  std::uint32_t u;
  std::memcpy(&u, &w.v[i], sizeof(u));
  u ^= 1u << (bit % 32);
  std::memcpy(&w.v[i], &u, sizeof(u));
}

void flip_spike_byte(snn::SpikeMap& m, std::uint64_t byte) {
  SPK_CHECK(!m.v.empty(), "flip_spike_byte on an empty spike map");
  // Spike payloads are 0/1-valued bytes: XOR with 1 toggles the spike while
  // keeping the value domain valid — the realistic single-event upset in a
  // 1-bit payload, and involutive for retry recovery.
  m.v[static_cast<std::size_t>(byte % m.v.size())] ^= 1u;
}

void flip_membrane_bit(snn::Tensor& t, std::uint64_t bit) {
  SPK_CHECK(!t.v.empty(), "flip_membrane_bit on an empty tensor");
  const std::size_t i = static_cast<std::size_t>((bit / 32) % t.v.size());
  std::uint32_t u;
  std::memcpy(&u, &t.v[i], sizeof(u));
  u ^= 1u << (bit % 32);
  std::memcpy(&t.v[i], &u, sizeof(u));
}

}  // namespace spikestream::runtime
