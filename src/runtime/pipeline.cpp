#include "runtime/pipeline.hpp"

#include <algorithm>
#include <span>
#include <thread>
#include <utility>

#include "runtime/worker_pool.hpp"

namespace spikestream::runtime {

PipelinedBatchRunner::PipelinedBatchRunner(const snn::Network& net,
                                           const kernels::RunOptions& opt,
                                           const BackendConfig& backend,
                                           const arch::EnergyParams& energy,
                                           int depth, int workers)
    : engine_(net, opt, backend, energy),
      depth_(std::max(1, depth)),
      pool_(engine_.worker_pool()) {
  // Stage fan-out and shard fan-out share one set of threads (like
  // BatchRunner); when the engine's backend never threads, the runner brings
  // its own pool sized for the requested worker count.
  const int w = WorkerPool::clamp_to_hardware(
      workers > 0 ? workers
                  : static_cast<int>(std::thread::hardware_concurrency()));
  if (pool_ == nullptr && w > 1 && depth_ > 1) {
    pool_ = std::make_shared<WorkerPool>(w - 1);
  }
}

PipelinedBatchRunner::~PipelinedBatchRunner() = default;

std::vector<PipelinedBatchRunner::Lane> PipelinedBatchRunner::borrow_lanes(
    std::size_t n_samples) const {
  std::vector<Lane> lanes;
  {
    std::lock_guard<std::mutex> lock(lanes_mu_);
    lanes.swap(lane_cache_);  // empty if another run holds the cache
  }
  const std::size_t want = std::min<std::size_t>(
      static_cast<std::size_t>(depth_), std::max<std::size_t>(n_samples, 1));
  if (lanes.size() > want) lanes.resize(want);
  while (lanes.size() < want) {
    lanes.emplace_back();
    lanes.back().state = engine_.make_state();
  }
  return lanes;
}

void PipelinedBatchRunner::return_lanes(std::vector<Lane>&& lanes) const {
  std::lock_guard<std::mutex> lock(lanes_mu_);
  if (lane_cache_.empty()) lane_cache_ = std::move(lanes);
}

void PipelinedBatchRunner::run_stages(
    std::size_t n, std::size_t stages,
    common::FunctionRef<void(std::size_t, std::size_t, Lane&)> step,
    std::vector<Lane>& lanes) const {
  if (n == 0 || stages == 0) return;
  const std::size_t depth = lanes.size();

  // Start tick of every sample: one sample enters per tick while a pipeline
  // lane is free; sample i reuses the lane of sample i - depth and therefore
  // waits until that sample fully drained. In-flight samples are always a
  // window of at most `depth` consecutive indices, so `i % depth` lanes never
  // alias within a tick.
  std::vector<std::size_t> start(n);
  for (std::size_t i = 0; i < n; ++i) {
    start[i] = i < depth
                   ? i
                   : std::max(start[i - 1] + 1, start[i - depth] + stages);
  }

  std::vector<std::pair<std::size_t, std::size_t>> active;  // (sample, stage)
  active.reserve(depth);
  std::size_t w_lo = 0, w_hi = 0;
  const std::size_t end_tick = start[n - 1] + stages;
  for (std::size_t tick = 0; tick < end_tick; ++tick) {
    while (w_lo < n && start[w_lo] + stages <= tick) ++w_lo;
    while (w_hi < n && start[w_hi] <= tick) ++w_hi;
    active.clear();
    for (std::size_t i = w_lo; i < w_hi; ++i) {
      active.emplace_back(i, tick - start[i]);
    }
    auto run_one = [&](std::size_t idx) {
      const auto [sample, stage] = active[idx];
      step(sample, stage, lanes[sample % depth]);
    };
    if (pool_ == nullptr || active.size() <= 1) {
      for (std::size_t idx = 0; idx < active.size(); ++idx) run_one(idx);
    } else {
      pool_->parallel_for(active.size(), active.size(),
                          [&](std::size_t, std::size_t idx) { run_one(idx); });
    }
  }
}

// --- segment-major lockstep waves -------------------------------------------

bool PipelinedBatchRunner::lockstep() const {
  return engine_.options().segment_major_lanes > 1;
}

std::vector<MultiStepResult> PipelinedBatchRunner::run_lockstep(
    const std::vector<snn::Tensor>& images, int timesteps) const {
  const std::size_t n = images.size();
  const std::size_t layers = engine_.network().num_layers();
  std::vector<MultiStepResult> results(n);
  for (MultiStepResult& r : results) r.timesteps = timesteps;
  if (n == 0 || timesteps <= 0 || layers == 0) return results;

  std::vector<Lane> lanes = borrow_lanes(n);
  const std::size_t W = lanes.size();
  std::vector<InferenceEngine::BatchLane> wave(W);
  for (std::size_t w0 = 0; w0 < n; w0 += W) {
    const std::size_t wn = std::min(W, n - w0);
    for (std::size_t i = 0; i < wn; ++i) lanes[i].state.clear();
    for (int t = 0; t < timesteps; ++t) {
      for (std::size_t i = 0; i < wn; ++i) {
        engine_.begin_sample(lanes[i].step);
        wave[i] = {&images[w0 + i], nullptr, &lanes[i].state,
                   &lanes[i].step};
      }
      for (std::size_t l = 0; l < layers; ++l) {
        engine_.run_layer_batch(l, std::span(wave.data(), wn), pool_.get());
      }
      for (std::size_t i = 0; i < wn; ++i) {
        results[w0 + i].accumulate_step(lanes[i].step);
      }
    }
  }
  return_lanes(std::move(lanes));
  return results;
}

std::vector<InferenceResult> PipelinedBatchRunner::run_single_step_lockstep(
    const std::vector<snn::Tensor>& images) const {
  const std::size_t n = images.size();
  const std::size_t layers = engine_.network().num_layers();
  std::vector<InferenceResult> results(n);
  if (n == 0 || layers == 0) return results;

  std::vector<Lane> lanes = borrow_lanes(n);
  const std::size_t W = lanes.size();
  std::vector<InferenceEngine::BatchLane> wave(W);
  for (std::size_t w0 = 0; w0 < n; w0 += W) {
    const std::size_t wn = std::min(W, n - w0);
    for (std::size_t i = 0; i < wn; ++i) {
      lanes[i].state.clear();
      engine_.begin_sample(results[w0 + i]);
      wave[i] = {&images[w0 + i], nullptr, &lanes[i].state,
                 &results[w0 + i]};
    }
    for (std::size_t l = 0; l < layers; ++l) {
      engine_.run_layer_batch(l, std::span(wave.data(), wn), pool_.get());
    }
  }
  return_lanes(std::move(lanes));
  return results;
}

std::vector<MultiStepResult> PipelinedBatchRunner::run(
    const std::vector<snn::Tensor>& images, int timesteps) const {
  if (lockstep()) return run_lockstep(images, timesteps);
  const std::size_t layers = engine_.network().num_layers();
  std::vector<MultiStepResult> results(images.size());
  for (MultiStepResult& r : results) r.timesteps = timesteps;
  if (timesteps <= 0 || layers == 0) return results;

  const std::size_t stages = static_cast<std::size_t>(timesteps) * layers;
  std::vector<Lane> lanes = borrow_lanes(images.size());
  run_stages(
      images.size(), stages,
      [&](std::size_t sample, std::size_t stage, Lane& lane) {
        const std::size_t l = stage % layers;
        if (stage == 0) lane.state.clear();
        if (l == 0) {
          engine_.begin_sample(lane.step);
          lane.carry = nullptr;
        }
        lane.carry = engine_.run_layer(l, &images[sample], lane.carry,
                                       lane.state, lane.step);
        if (l + 1 == layers) results[sample].accumulate_step(lane.step);
      },
      lanes);
  return_lanes(std::move(lanes));
  return results;
}

std::vector<InferenceResult> PipelinedBatchRunner::run_single_step(
    const std::vector<snn::Tensor>& images) const {
  if (lockstep()) return run_single_step_lockstep(images);
  const std::size_t layers = engine_.network().num_layers();
  std::vector<InferenceResult> results(images.size());
  if (layers == 0) return results;

  std::vector<Lane> lanes = borrow_lanes(images.size());
  run_stages(
      images.size(), layers,
      [&](std::size_t sample, std::size_t stage, Lane& lane) {
        // Single-step keeps every sample's full InferenceResult: layers
        // write straight into results[sample], no per-sample copy.
        if (stage == 0) {
          lane.state.clear();
          engine_.begin_sample(results[sample]);
          lane.carry = nullptr;
        }
        lane.carry = engine_.run_layer(stage, &images[sample], lane.carry,
                                       lane.state, results[sample]);
      },
      lanes);
  return_lanes(std::move(lanes));
  return results;
}

}  // namespace spikestream::runtime
