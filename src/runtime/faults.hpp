// Deterministic fault injection for the serving stack. A FaultPlan is a
// schedule of fault events keyed by *wave index* — the dispatcher's dense
// per-fired-wave counter — never by wall-clock time, so a given plan replays
// identically on any host at any speed (the same reproducibility contract
// the seeded input generators honor).
//
// Four fault kinds, mirroring the failure domains of a multi-cluster part:
//
//  * kClusterFailStop   — a cluster drops out of the active set for good.
//    The sharded backend re-picks every prepared layer's plan over the
//    survivors (copy-on-write, the PR-5 replan machinery), so modeled cycles
//    reflect the lost capacity while spikes stay bit-identical.
//  * kClusterSlowdown   — a straggler: one cluster's shard service time is
//    multiplied by `factor` (thermal throttling, a flaky DRAM channel).
//  * kLinkDegrade       — one cluster's NoC injection/ejection links run at
//    1/factor bandwidth (a marginal SerDes lane dropping down-training).
//  * kTransientWaveError — the first `failures` execution attempts of one
//    wave throw TransientFault mid-wave (an ECC burst, a watchdog trip).
//    The server contains the throw, resets the wave's lanes and retries
//    with bounded backoff; the engine is deterministic, so a retried wave
//    completes bit-identical to an unfaulted one.
//
// The plan is pure data: the InferenceServer applies structural events to
// its ShardedBackend at wave boundaries and injects transient throws inside
// the wave body. Tests and benches can also drive the backend's fault
// surface (fail_cluster / set_cluster_slowdown / set_link_degrade) directly.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace spikestream::runtime {

/// A retryable wave-scope failure. The server's containment distinguishes it
/// from spikestream::Error: TransientFault retries (bounded, with backoff),
/// anything else fails the wave's requests immediately.
class TransientFault : public Error {
 public:
  explicit TransientFault(const std::string& what) : Error(what) {}
};

enum class FaultKind {
  kClusterFailStop,
  kClusterSlowdown,
  kLinkDegrade,
  kTransientWaveError,
};

const char* fault_kind_name(FaultKind k);

struct FaultEvent {
  FaultKind kind = FaultKind::kTransientWaveError;
  /// Wave index at which the event fires. Structural events (fail-stop /
  /// slowdown / link derate) apply once, before the wave executes; a
  /// transient event makes that wave's leading attempts throw.
  std::uint64_t wave = 0;
  int cluster = -1;     ///< target cluster (structural kinds)
  double factor = 1.0;  ///< slowdown multiple / link bandwidth derate (>= 1)
  int failures = 1;     ///< transient: attempts of the wave that throw
};

/// Sorted deterministic fault schedule. Builders keep the event list ordered
/// by wave (stable for equal waves), so the server consumes it with a single
/// monotonic cursor.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& add(const FaultEvent& e);
  FaultPlan& kill_cluster(int cluster, std::uint64_t wave);
  FaultPlan& slow_cluster(int cluster, double factor, std::uint64_t wave);
  FaultPlan& degrade_link(int cluster, double factor, std::uint64_t wave);
  FaultPlan& transient_error(std::uint64_t wave, int failures = 1);

  /// Seeded random schedule of `events` faults over waves [0, waves) against
  /// `clusters` clusters — chaos-monkey mode for soak tests. Deterministic:
  /// the same arguments always produce the same plan. At most clusters - 1
  /// fail-stops are drawn so the fleet never loses its last cluster.
  static FaultPlan chaos(std::uint64_t seed, std::uint64_t waves, int clusters,
                         int events);

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  /// All events, sorted by wave.
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Total attempts of `wave` that must throw (sum over transient events
  /// scheduled at exactly this wave).
  int transient_failures_at(std::uint64_t wave) const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace spikestream::runtime
