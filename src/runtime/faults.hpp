// Deterministic fault injection for the serving stack. A FaultPlan is a
// schedule of fault events keyed by *wave index* — the dispatcher's dense
// per-fired-wave counter — never by wall-clock time, so a given plan replays
// identically on any host at any speed (the same reproducibility contract
// the seeded input generators honor).
//
// Four fault kinds, mirroring the failure domains of a multi-cluster part:
//
//  * kClusterFailStop   — a cluster drops out of the active set for good.
//    The sharded backend re-picks every prepared layer's plan over the
//    survivors (copy-on-write, the PR-5 replan machinery), so modeled cycles
//    reflect the lost capacity while spikes stay bit-identical.
//  * kClusterSlowdown   — a straggler: one cluster's shard service time is
//    multiplied by `factor` (thermal throttling, a flaky DRAM channel).
//  * kLinkDegrade       — one cluster's NoC injection/ejection links run at
//    1/factor bandwidth (a marginal SerDes lane dropping down-training).
//  * kTransientWaveError — the first `failures` execution attempts of one
//    wave throw TransientFault mid-wave (an ECC burst, a watchdog trip).
//    The server contains the throw, resets the wave's lanes and retries
//    with bounded backoff; the engine is deterministic, so a retried wave
//    completes bit-identical to an unfaulted one.
//
// Three *silent data corruption* kinds (PR-10, the data-plane threat model —
// these produce wrong answers, not exceptions, unless a protection mode from
// runtime/integrity.hpp is armed):
//
//  * kWeightBitFlip     — one bit of one quantized weight of layer `layer`
//    flips (a stale or damaged SPM weight tile). Applied to the live engine
//    weights for the first `failures` attempts of the wave and restored
//    after each attempt, so a retry past the failure budget runs clean.
//  * kSpikePayloadFlip  — one spike byte of the map handed from layer
//    `layer` to its consumer toggles (corruption in NoC transit). Targets
//    wave lane `lane` (mod occupied lanes).
//  * kMembraneFlip      — one bit of a membrane potential of layer `layer`
//    flips just before the layer integrates it (an SPM soft error in live
//    neuron state). Lane-targeted like the payload flip. Membranes are not
//    a sealed path: only redundant-lane execution catches this one.
//
// All three reuse the zero-wall-clock-randomness contract: deterministic
// (wave, layer, bit, lane) targeting, seeded chaos via chaos_data(), and
// retry-recoverable because every attempt restores/regenerates the buffer.
//
// The plan is pure data: the InferenceServer applies structural events to
// its ShardedBackend at wave boundaries and injects transient throws and
// data flips inside the wave body. Tests and benches can also drive the
// backend's fault surface (fail_cluster / set_cluster_slowdown /
// set_link_degrade) directly.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace spikestream::runtime {

/// A retryable wave-scope failure. The server's containment distinguishes it
/// from spikestream::Error: TransientFault retries (bounded, with backoff),
/// anything else fails the wave's requests immediately.
class TransientFault : public Error {
 public:
  explicit TransientFault(const std::string& what) : Error(what) {}
};

enum class FaultKind {
  kClusterFailStop,
  kClusterSlowdown,
  kLinkDegrade,
  kTransientWaveError,
  kWeightBitFlip,     ///< SDC in a weight slice (sealed path)
  kSpikePayloadFlip,  ///< SDC in a spike map crossing a cluster handoff
  kMembraneFlip,      ///< SDC in live membrane state (unsealed path)
};

const char* fault_kind_name(FaultKind k);

/// True for the silent-data-corruption kinds (bit/byte flips in live
/// buffers), which the server injects inside the wave body rather than
/// applying at the wave boundary.
constexpr bool is_data_fault(FaultKind k) {
  return k == FaultKind::kWeightBitFlip || k == FaultKind::kSpikePayloadFlip ||
         k == FaultKind::kMembraneFlip;
}

struct FaultEvent {
  FaultKind kind = FaultKind::kTransientWaveError;
  /// Wave index at which the event fires. Structural events (fail-stop /
  /// slowdown / link derate) apply once, before the wave executes; a
  /// transient event makes that wave's leading attempts throw; a data fault
  /// corrupts that wave's leading attempts and is undone between attempts.
  std::uint64_t wave = 0;
  int cluster = -1;     ///< target cluster (structural kinds)
  double factor = 1.0;  ///< slowdown multiple / link bandwidth derate (>= 1)
  int failures = 1;     ///< transient/data: attempts of the wave affected
  // --- data-corruption targeting (is_data_fault kinds only) -----------------
  int layer = 0;          ///< target layer
  std::uint64_t bit = 0;  ///< bit (weights/membrane) or byte (spikes) index,
                          ///< reduced mod the target buffer's size at apply
  int lane = 0;           ///< target wave lane, mod occupied lanes
};

/// Sorted deterministic fault schedule. Builders keep the event list ordered
/// by wave (stable for equal waves), so the server consumes it with a single
/// monotonic cursor.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& add(const FaultEvent& e);
  FaultPlan& kill_cluster(int cluster, std::uint64_t wave);
  FaultPlan& slow_cluster(int cluster, double factor, std::uint64_t wave);
  FaultPlan& degrade_link(int cluster, double factor, std::uint64_t wave);
  FaultPlan& transient_error(std::uint64_t wave, int failures = 1);
  // Data-corruption builders (see the header comment's threat model).
  FaultPlan& flip_weight(int layer, std::uint64_t bit, std::uint64_t wave,
                         int failures = 1);
  FaultPlan& flip_spikes(int layer, std::uint64_t byte, std::uint64_t wave,
                         int lane = 0, int failures = 1);
  FaultPlan& flip_membrane(int layer, std::uint64_t bit, std::uint64_t wave,
                           int lane = 0, int failures = 1);

  /// Seeded random schedule of `events` faults over waves [0, waves) against
  /// `clusters` clusters — chaos-monkey mode for soak tests. Deterministic:
  /// the same arguments always produce the same plan. At most clusters - 1
  /// fail-stops are drawn so the fleet never loses its last cluster.
  static FaultPlan chaos(std::uint64_t seed, std::uint64_t waves, int clusters,
                         int events);

  /// Seeded random schedule of `events` *data-corruption* faults (weight /
  /// spike-payload / membrane flips) over waves [0, waves) targeting layers
  /// [0, layers) and lanes [0, lanes). Deterministic like chaos(), and a
  /// separate draw sequence so existing chaos() plans stay byte-identical.
  /// Merge the two by add()ing one plan's events() into the other.
  static FaultPlan chaos_data(std::uint64_t seed, std::uint64_t waves,
                              int layers, int lanes, int events);

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  /// All events, sorted by wave.
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Total attempts of `wave` that must throw (sum over transient events
  /// scheduled at exactly this wave).
  int transient_failures_at(std::uint64_t wave) const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace spikestream::runtime
