// Partition planning: how one layer's work is split across N simulated
// clusters. Extracted from the sharded backend (which hard-coded
// output-channel tiles) into a first-class, cost-model-driven subsystem:
//
//  * kOutputChannel — the historical scheme. SIMD-group-aligned output
//    channel ranges, one disjoint ofmap slice per cluster, the full ifmap
//    broadcast to every cluster. No inter-cluster reduction; per-group
//    activation accounting is preserved, so activity counters conserve
//    exactly.
//  * kIfmapStripe   — spatial output-row stripes (conv/encode layers). Each
//    cluster computes *all* output channels for a contiguous band of output
//    rows and only needs its halo'd ifmap rows — no broadcast, just halo
//    duplication on the NoC. Every output position is computed with its full
//    fan-in, so spikes stay bit-identical and activity conserves exactly.
//    FC layers have no spatial rows; for them this strategy degenerates to
//    kFanIn: input-channel segments with an explicit partial-sum reduction,
//    so a 10-class head stops idling 5 of 8 clusters. The reduction's extra
//    adds/traffic are itemized (not hidden) in the merged KernelStats, and
//    the *functional* pass still runs unsharded so spikes remain bit-exact.
//  * kHybrid        — per-layer choice between the two by querying the cost
//    model with an assumed planning density (occupancies are unknown at plan
//    time; plans are computed once per network at engine construction).
//
// A ShardPlan is immutable once computed; backends key it by layer signature
// and size their per-shard scratch lanes from it so steady-state shard
// fan-out allocates nothing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arch/noc.hpp"
#include "kernels/layer_kernels.hpp"
#include "snn/network.hpp"

namespace spikestream::kernels {

enum class PartitionStrategy {
  kOutputChannel,  ///< historical scheme on every layer (exact back-compat)
  kIfmapStripe,    ///< spatial stripes on conv/encode, fan-in segments on FC
  kHybrid,         ///< per-layer cost-model choice
};

const char* partition_strategy_name(PartitionStrategy s);

/// Which axis one layer's shards cut along.
enum class ShardAxis {
  kOutputChannel,  ///< [lo, hi) = output channel range (SIMD-group aligned)
  kIfmapStripe,    ///< [lo, hi) = output row range
  kFanIn,          ///< [lo, hi) = input channel range (FC partial sums)
};

const char* shard_axis_name(ShardAxis a);

struct ShardRange {
  int lo = 0, hi = 0;  ///< [lo, hi) along the plan's axis
  int extent() const { return hi - lo; }
  bool operator==(const ShardRange&) const = default;
};

struct LayerPlan {
  ShardAxis axis = ShardAxis::kOutputChannel;
  std::vector<ShardRange> shards;
  /// Planning-time cost estimates (cycles at assumed density) that drove the
  /// hybrid choice; est_alt_cycles = 0 when no alternative axis existed.
  double est_cycles = 0;
  double est_alt_cycles = 0;
  std::size_t n() const { return shards.size(); }
};

struct ShardPlan {
  PartitionStrategy strategy = PartitionStrategy::kOutputChannel;
  int clusters = 1;
  std::vector<LayerPlan> layers;  ///< one per network layer
};

/// Occupancy-adaptive re-planning (ShardedBackend): partition plans are
/// normally frozen at an assumed planning density, but real per-layer
/// occupancies drift — fc8's first, nearly-empty timestep prefers
/// output-channel tiles while its charged-up steady state prefers fan-in
/// segments. With re-planning enabled the backend tracks a per-layer
/// occupancy EMA and, once `warmup_runs` executions have seeded it, re-ranks
/// the shard axes at the *measured* density after every run; a flip only
/// happens when the candidate axis beats the current one by the hysteresis
/// margin, so plans cannot oscillate around a break-even density.
struct ReplanConfig {
  bool enabled = false;
  /// Layer *executions* before the EMA is considered seeded — note this
  /// counts every lane's run, not timesteps: a B-lane batch produces B
  /// observations per timestep, so scale it by the lane count when the
  /// warmup should span the near-empty leading timesteps of a batched
  /// stream. Seeding purely from cold observations is benign (the initial
  /// plan is already cold-optimal, so the re-rank keeps it), but the one
  /// intended flip then waits on the EMA crossing the break-even, not on
  /// this window.
  int warmup_runs = 2;
  /// EMA smoothing factor for the measured input density.
  double ema_alpha = 0.25;
  /// A candidate axis must beat the current axis's estimated cycles by this
  /// factor (est_new < hysteresis * est_current) to trigger a plan swap.
  double hysteresis = 0.95;
  /// Planning density of the *initial* plans: membranes start empty, so the
  /// leading timesteps run far below the steady-state densities the static
  /// planner assumes. Re-planning then upgrades the plan once the measured
  /// EMA is trusted.
  double cold_density = 0.02;
};

/// FNV-1a over a layer's name + geometry: the key plan/memo caches use.
/// Layers with equal signatures partition (and cost) identically.
std::uint64_t layer_signature(const snn::LayerSpec& spec);

// --- stage-parallel pipelining (the third plan axis) -------------------------
//
// Besides splitting each layer across all clusters (data-parallel sharding),
// the planner can assign contiguous *layer ranges* to cluster groups as
// pipeline stages coupled by inter-stage spike FIFOs: stage s runs its
// layers sharded across its own group while stage s+1 processes the previous
// sample. Steady-state batch cycles then become the max over stage service
// times (plus fill/drain), replacing the sum over layers. A hybrid plan
// shards multi-cluster stage groups internally.

enum class ExecMode {
  kAuto,          ///< planner picks among the three below by cost query
  kDataParallel,  ///< one stage, every layer across all clusters
  kStageParallel, ///< one cluster per stage (pure pipeline)
  kHybrid,        ///< multi-cluster stage groups, internally sharded
};

const char* exec_mode_name(ExecMode m);

struct PipelineConfig {
  /// Master switch: when false the sharded backend runs pure data-parallel
  /// (historical behavior, bit-exact).
  bool enabled = false;
  /// kAuto lets the cost model choose; forcing a mode pins the stage count
  /// (benches compare the three modes on equal footing this way).
  ExecMode mode = ExecMode::kAuto;
  /// Capacity of each inter-stage FIFO, in spikes. A producing stage whose
  /// downstream FIFO cannot accept its boundary spikes stalls until the
  /// consumer drains room (backpressure); the batch-scope timeline itemizes
  /// those cycles in KernelStats::fifo_stall_cycles.
  int fifo_depth_spikes = 4096;
  /// Upper bound on the stage count (0 = min(clusters, layers)).
  int max_stages = 0;
  /// Assumed in-flight samples when amortizing fill/drain in the planner's
  /// cost query: per-sample cost = (fill + (B - 1) * steady) / B.
  int batch_lanes = 8;
};

/// One pipeline stage: layers [layer_lo, layer_hi) on clusters
/// [cluster_lo, cluster_hi).
struct PipelineStage {
  int layer_lo = 0, layer_hi = 0;
  int cluster_lo = 0, cluster_hi = 0;
  /// Planning-time per-sample service estimate (member layers at the
  /// group's cluster count, plus the boundary handoff + FIFO push).
  double est_service_cycles = 0;
  /// Estimated boundary spike payload handed to the next stage (0 for the
  /// last stage).
  double est_handoff_bytes = 0;
  int clusters() const { return cluster_hi - cluster_lo; }
  int layers() const { return layer_hi - layer_lo; }
};

struct StagePlan {
  /// The concrete mode of this plan (never kAuto).
  ExecMode mode = ExecMode::kDataParallel;
  std::vector<PipelineStage> stages;  ///< size 1 under kDataParallel
  /// Planning-time estimates: steady-state initiation interval (max stage
  /// service), first-sample fill latency (sum of services), and the
  /// data-parallel reference (every layer at the full cluster count).
  double est_steady_cycles = 0;
  double est_fill_cycles = 0;
  double est_dp_cycles = 0;

  int num_stages() const { return static_cast<int>(stages.size()); }
  /// Stage index owning layer `l` (-1 when out of range).
  int stage_of_layer(int l) const {
    for (int s = 0; s < num_stages(); ++s) {
      if (l >= stages[s].layer_lo && l < stages[s].layer_hi) return s;
    }
    return -1;
  }
};

class Partitioner {
 public:
  /// Assumed ifmap density at static plan time. Plans are computed once per
  /// network, before any input exists; the paper's workloads fire in the
  /// 10–30% range, and the axis ranking is insensitive to the exact value
  /// (it cancels out of every term that scales with occupancy).
  static constexpr double kDefaultDensity = 0.15;

  Partitioner(const RunOptions& opt, int clusters, PartitionStrategy strategy);

  PartitionStrategy strategy() const { return strategy_; }
  int clusters() const { return clusters_; }

  /// Plan one layer at `density` (the hybrid strategy ranks axes with it;
  /// the fixed strategies ignore it).
  LayerPlan plan_layer(const snn::LayerSpec& spec,
                       double density = kDefaultDensity) const;
  ShardPlan plan_network(const snn::Network& net,
                         double density = kDefaultDensity) const;

  /// Build the plan for a specific shard axis (occupancy-adaptive
  /// re-planning swaps axes explicitly instead of re-ranking through a
  /// strategy). Falls back to a single output-channel shard when the axis
  /// degenerates for this layer, exactly like plan_layer.
  LayerPlan make_axis_plan(const snn::LayerSpec& spec, ShardAxis axis) const;

  // --- shard range builders (exposed for tests) -----------------------------

  /// SIMD-group-aligned output channel ranges; fewer groups than clusters
  /// leaves trailing clusters unassigned (empty ranges are dropped).
  static std::vector<ShardRange> channel_slices(int out_c, int simd,
                                                int clusters);
  /// Contiguous output-row bands, at most one per cluster, balanced to within
  /// one row.
  static std::vector<ShardRange> row_stripes(int out_rows, int clusters);
  /// SIMD-aligned input-channel segments for FC partial-sum sharding.
  static std::vector<ShardRange> fanin_segments(int in_c, int simd,
                                                int clusters);

  // --- planning-time cost queries (exposed for tests / benches) -------------
  // Estimated layer cycles on `clusters()` clusters at planning density
  // `density`, using the mechanistic cost-model constants. These rank axes;
  // they are not predictions of any particular input's cycle count. All
  // three are allocation-free (shard extents are computed arithmetically,
  // no range vectors are built), so the adaptive re-planner can re-rank
  // axes on the steady-state hot path without touching the heap.

  double estimate_output_channel(const snn::LayerSpec& spec,
                                 double density = kDefaultDensity) const;
  double estimate_ifmap_stripe(const snn::LayerSpec& spec,
                               double density = kDefaultDensity) const;
  double estimate_fanin(const snn::LayerSpec& spec,
                        double density = kDefaultDensity) const;

  /// Estimated cycles of `axis` for this layer at `density` (dispatch over
  /// the three estimates above).
  double estimate_axis(const snn::LayerSpec& spec, ShardAxis axis,
                       double density) const;

  /// Estimated per-sample cycles of `spec` sharded across a `group`-cluster
  /// stage under this partitioner's strategy (the axis a group-sized
  /// partitioner would execute with). Allocation-free.
  double layer_cost(const snn::LayerSpec& spec, int group,
                    double density = kDefaultDensity) const;

  /// Choose between data-parallel sharding, stage-parallel pipelining and a
  /// hybrid for `net`: balance contiguous layer ranges across candidate
  /// stage counts (DP minimizing the max stage service, boundary handoffs
  /// priced via `noc`), then pick the mode with the lowest per-sample cost
  /// amortized over cfg.batch_lanes in-flight samples. cfg.mode != kAuto
  /// restricts the candidates to that mode's shape.
  StagePlan plan_pipeline(const snn::Network& net, const PipelineConfig& cfg,
                          const arch::NocParams& noc,
                          double density = kDefaultDensity) const;

  /// Same planning over a bare layer list. Degraded-mode re-planning uses
  /// this: the sharded backend keeps the prepared specs (not the Network)
  /// and re-balances the stage pipeline over the surviving cluster count
  /// after a fail-stop.
  StagePlan plan_pipeline(std::span<const snn::LayerSpec> layers,
                          const PipelineConfig& cfg,
                          const arch::NocParams& noc,
                          double density = kDefaultDensity) const;

 private:
  RunOptions opt_;
  int clusters_;
  PartitionStrategy strategy_;
};

}  // namespace spikestream::kernels
