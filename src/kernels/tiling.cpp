#include "kernels/tiling.hpp"

#include <algorithm>
#include <cmath>

#include "arch/dram/stream_reader.hpp"
#include "common/check.hpp"

namespace spikestream::kernels {

namespace {

constexpr double kIdxBytes = 2.0;  ///< 16-bit indices and counts (Fig. 3a)

/// One priced segment-major configuration (banked mode): a resident-lane
/// count plus whether one resident slot is repurposed as the spill/fill
/// bounce buffer that overlaps parked-lane spills with the band streams.
struct SmPricing {
  int resident = 0;
  bool double_buffered = false;
  double bytes = 0;
  double cycles = 0;        ///< net of hidden_cycles
  double spill_bytes = 0;
  double spill_cycles = 0;  ///< serial cost of the spill/fill streams alone
  double hidden_cycles = 0;
  double row_hits = 0;
  double row_misses = 0;
};

/// Segment-major batched FC schedule (see TilePlan). Evaluated against the
/// per-sample plan already in `plan`; fills the sm_* fields and sets
/// `segment_major` only when the amortized DMA timeline wins on both bytes
/// and cycles — i.e. the batch weight-stream saving is priced against the
/// spill/fill traffic of the partial sums parked between bands. Under the
/// banked DRAM model the query additionally prices a double-buffered
/// spill/fill variant (one resident lane traded for a bounce buffer, spill
/// first-beat overhead hidden under the concurrent band stream) and adopts
/// whichever regime's net timeline is cheaper.
void plan_fc_segment_major(TilePlan& plan, const snn::LayerSpec& spec,
                           common::FpFormat fmt, double ifmap_actual_bytes,
                           double ofmap_actual_bytes, const CostParams& p,
                           int lanes, double spm_bytes, bool double_buffer) {
  plan.sm_dma_bytes = plan.dma_bytes;
  plan.sm_dma_cycles = plan.dma_cycles;
  plan.sm_first_fill_cycles = plan.first_fill_cycles;
  const int bands = plan.weight_tiles * plan.in_segments;
  if (spec.kind != snn::LayerKind::kFc || lanes <= 1 || bands <= 1) return;

  (void)double_buffer;  // band/ifmap buffers keep the per-sample plan's shape
  const arch::DramConfig& d = p.dram;
  const double fb = common::fp_bytes(fmt);
  const double all_weights =
      static_cast<double>(spec.in_c) * spec.out_c * fb;
  const double B = static_cast<double>(lanes);
  const double tiles = static_cast<double>(plan.weight_tiles);
  const double segs = static_cast<double>(plan.in_segments);
  const double acc_bytes = static_cast<double>(plan.co_per_tile) * fb;

  // Resident partial-sum sets: the per-sample plan already reserves the
  // active lane's accumulator slice (its state bytes); SPM slack next to the
  // streaming buffers holds the other lanes' slices. Only the current
  // co-tile's slices are ever live (co-tiles are the outer band loop), so
  // one slice per lane suffices.
  const double slack = spm_bytes - plan.spm_resident_bytes;
  const int resident = std::min(
      lanes, 1 + static_cast<int>(std::max(0.0, slack) / acc_bytes));

  if (d.flat_legacy) {
    // Historical flat pricing, expression-for-expression (bit-exact).
    const double parked = B - static_cast<double>(resident);

    // A non-resident lane's accumulator slice spills to DRAM after each band
    // and refills at the next band of the same co-tile: (segs - 1)
    // transitions per co-tile, a write and a read each. The first band
    // zero-initializes in SPM and the last feeds the activation on-chip,
    // exactly like the per-sample schedule, so those ends carry no extra
    // traffic.
    const double spill_batch =
        2.0 * parked * (segs - 1.0) * tiles * acc_bytes;
    // Weights stream once per batch; each sample re-reads its compressed
    // ifmap segment at every band of every co-tile it participates in.
    const double sm_spill = spill_batch / B;
    const double sm_bytes = all_weights / B + tiles * ifmap_actual_bytes +
                            ofmap_actual_bytes + sm_spill;
    const double spill_transfers = 2.0 * parked * (segs - 1.0) * tiles / B;
    const double n_transfers =
        static_cast<double>(bands) / B  // weight bands, amortized
        + tiles * segs                  // per-sample ifmap segments
        + spill_transfers               // spill/fill, amortized
        + tiles;                        // fragmented ofmap write-back
    const double sm_cycles =
        sm_bytes / d.bytes_per_cycle + n_transfers * d.request_latency;

    // Only adopt the schedule when it beats the best per-sample regime (the
    // warm plan equals the cold one here — segmented weights cannot pin).
    if (sm_bytes <= plan.dma_bytes &&
        sm_cycles < std::min(plan.dma_cycles, plan.dma_cycles_warm)) {
      plan.segment_major = true;
      plan.sm_lanes = lanes;
      plan.sm_bands = bands;
      plan.sm_resident_lanes = resident;
      plan.sm_spill_bytes = sm_spill;
      plan.sm_spill_cycles =
          sm_spill / d.bytes_per_cycle + spill_transfers * d.request_latency;
      plan.sm_dma_bytes = sm_bytes;
      plan.sm_dma_cycles = sm_cycles;
      plan.sm_first_fill_cycles = std::min(
          plan.first_fill_cycles,
          (plan.weight_tile_bytes + plan.if_stripe_bytes) /
                  d.bytes_per_cycle +
              2.0 * d.request_latency);
    }
    return;
  }

  // --- banked mode -----------------------------------------------------------
  // Decompose the amortized per-sample timeline into its four access
  // sequences and price each by run shape: the weight bands are long
  // contiguous runs (near-peak bandwidth), the spill/fill slices are many
  // small runs that each pay a request latency plus a row activation.
  const auto price = [&](int res, bool ddb) {
    SmPricing c;
    c.resident = res;
    c.double_buffered = ddb;
    const double parked = B - static_cast<double>(res);
    const double spill_payload =
        2.0 * parked * (segs - 1.0) * tiles * acc_bytes / B;
    const double spill_runs = 2.0 * parked * (segs - 1.0) * tiles / B;
    c.spill_bytes =
        d.stored_bytes(d.payload_format, spill_payload, spill_runs);
    const double w_bytes =
        d.stored_bytes(d.weight_format, all_weights / B,
                       static_cast<double>(bands) / B);
    const arch::DramCost w = d.stream(w_bytes, static_cast<double>(bands) / B);
    const double if_bytes = d.stored_bytes(
        d.payload_format, tiles * ifmap_actual_bytes, tiles * segs);
    const arch::DramCost ifm = d.stream(if_bytes, tiles * segs);
    const double of_bytes =
        d.stored_bytes(d.payload_format, ofmap_actual_bytes, tiles);
    const arch::DramCost ofm = d.stream(of_bytes, tiles);
    const arch::DramCost sp = d.stream(c.spill_bytes, spill_runs);
    c.spill_cycles = sp.cycles;
    c.bytes = w.bytes + ifm.bytes + ofm.bytes + sp.bytes;
    c.row_hits = w.row_hits + ifm.row_hits + ofm.row_hits + sp.row_hits;
    c.row_misses =
        w.row_misses + ifm.row_misses + ofm.row_misses + sp.row_misses;
    const double serial = w.cycles + ifm.cycles + ofm.cycles + sp.cycles;
    if (ddb) {
      // Only the spill streams' first-beat overhead (request latencies +
      // row activations) can hide under the concurrent band stream — the
      // data beats share the one channel and stay charged. Bounded by the
      // band stream there is to hide behind.
      const double overhead =
          std::max(0.0, sp.cycles - sp.bytes / d.bytes_per_cycle);
      c.hidden_cycles = std::min(overhead, w.cycles);
    }
    c.cycles = serial - c.hidden_cycles;
    return c;
  };

  SmPricing best = price(resident, false);
  if (d.spill_double_buffer && resident >= 2 && resident < lanes) {
    // SPM slack never holds resident+1 accumulator slices when anything
    // spills (resident is exactly 1 + floor(slack / slice)), so the bounce
    // buffer must be carved out of the resident set: park one more lane and
    // overlap every parked lane's spill/fill with the band streams. Adopt
    // only when the extra spill traffic loses to the hidden overhead.
    const SmPricing ddb = price(resident - 1, true);
    if (ddb.cycles < best.cycles) best = ddb;
  }

  if (best.bytes <= plan.dma_bytes &&
      best.cycles < std::min(plan.dma_cycles, plan.dma_cycles_warm)) {
    plan.segment_major = true;
    plan.sm_lanes = lanes;
    plan.sm_bands = bands;
    plan.sm_resident_lanes = best.resident;
    plan.sm_double_buffered = best.double_buffered;
    plan.sm_spill_bytes = best.spill_bytes;
    plan.sm_spill_cycles = best.spill_cycles;
    plan.sm_hidden_cycles = best.hidden_cycles;
    plan.sm_row_hits = best.row_hits;
    plan.sm_row_misses = best.row_misses;
    plan.sm_dma_bytes = best.bytes;
    plan.sm_dma_cycles = best.cycles;
    plan.sm_first_fill_cycles = std::min(
        plan.first_fill_cycles,
        d.stream(plan.weight_tile_bytes + plan.if_stripe_bytes, 2.0).cycles);
  }
}

}  // namespace

TilePlan plan_layer(const snn::LayerSpec& spec, common::FpFormat fmt,
                    double ifmap_actual_bytes, double ofmap_actual_bytes,
                    const CostParams& p, double spm_bytes, bool double_buffer,
                    int batch_lanes) {
  const int simd = common::simd_lanes(fmt);
  const double fb = common::fp_bytes(fmt);
  const bool is_fc = spec.kind == snn::LayerKind::kFc;
  const int kk = is_fc ? 1 : spec.k * spec.k;
  const int out_rows = is_fc ? 1 : spec.out_h();
  const double buf_mult = double_buffer ? 2.0 : 1.0;
  const arch::DramConfig& d = p.dram;

  TilePlan plan;
  plan.in_segments = 1;

  // Search the largest configuration that fits the scratchpad. Preference
  // order: keep the whole (compressed, small) ifmap resident and shrink the
  // weight co-tile; only stripe the ifmap (convs) or segment the fan-in (FC)
  // if even the smallest co-tile does not fit. Ofmap buffers are sized for
  // the zero-sparsity worst case but only per co-tile — the paper accepts
  // fragmented c_idcs write-backs for exactly this reason.
  for (int co = std::max(spec.out_c, simd); co >= simd && !plan.fits_spm;
       co = co > simd ? std::max(co / 2, simd) : co - 1) {
    const int max_seg = is_fc ? 64 : 1;
    for (int seg = 1; seg <= max_seg && !plan.fits_spm; seg *= 2) {
      const int in_c_tile = (spec.in_c + seg - 1) / seg;
      const double w_bytes =
          static_cast<double>(kk) * in_c_tile * co * fb;
      for (int rows = out_rows; rows >= 1; rows = rows > 1 ? rows / 2 : 0) {
        const int in_rows = is_fc ? 1 : rows + spec.k - 1;
        // Compressed ifmap stripes have a known (measured) size.
        const double if_frac =
            is_fc ? 1.0 / seg
                  : static_cast<double>(in_rows) / std::max(spec.in_h, 1);
        const double if_bytes = std::max(ifmap_actual_bytes * if_frac, 64.0);
        const double positions =
            is_fc ? 1.0 : static_cast<double>(rows) * spec.out_w();
        const double of_bytes =
            positions * co * kIdxBytes + positions * kIdxBytes;
        const double state_bytes = positions * co * fb;
        const double resident = buf_mult * (w_bytes + if_bytes) + of_bytes +
                                state_bytes;
        if (resident <= spm_bytes) {
          plan.co_per_tile = co;
          plan.weight_tiles = (spec.out_c + co - 1) / co;
          plan.in_segments = seg;
          plan.rows_per_stripe = rows;
          plan.if_stripes = (out_rows + rows - 1) / rows;
          plan.weight_tile_bytes = w_bytes;
          plan.if_stripe_bytes = if_bytes;
          plan.ofmap_buf_bytes = of_bytes;
          plan.spm_resident_bytes = resident;
          plan.fits_spm = true;
          break;
        }
        if (rows == 1) break;
      }
    }
  }
  SPK_CHECK(plan.fits_spm, "layer " << spec.name
                                    << " does not fit SPM at any tile size");

  // Transfer volume. Ifmap stripes are the outer buffer, weight tiles cycle
  // inside (Section III-D): weights are re-streamed once per extra stripe.
  const double all_weights =
      static_cast<double>(kk) * spec.in_c * spec.out_c * fb;
  const double w_traffic =
      all_weights * static_cast<double>(plan.if_stripes);
  // The ifmap index list is re-read once per input segment (FC only).
  const double if_traffic =
      ifmap_actual_bytes * static_cast<double>(plan.in_segments);

  if (d.flat_legacy) {
    // Historical flat pricing, expression-for-expression (bit-exact).
    plan.dma_bytes = w_traffic + if_traffic + ofmap_actual_bytes;
    const double n_transfers =
        static_cast<double>(plan.if_stripes) * plan.weight_tiles *
            plan.in_segments +
        static_cast<double>(plan.if_stripes) +
        static_cast<double>(plan.weight_tiles);  // fragmented ofmap write-back
    plan.dma_cycles = plan.dma_bytes / d.bytes_per_cycle +
                      n_transfers * d.request_latency;
    plan.first_fill_cycles = (plan.weight_tile_bytes + plan.if_stripe_bytes) /
                                 d.bytes_per_cycle +
                             2.0 * d.request_latency;
  } else {
    // Banked mode: price each access sequence by its run shape. Weight
    // tiles stream as one contiguous run per fetch (near-sequential);
    // ifmap segments re-read per stripe and segment; the compressed ofmap
    // writes back fragmented, one run per co-tile.
    const double stripes_d = static_cast<double>(plan.if_stripes);
    const double tiles_d = static_cast<double>(plan.weight_tiles);
    const double segs_d = static_cast<double>(plan.in_segments);
    const double w_runs = stripes_d * tiles_d * segs_d;
    const double if_runs = stripes_d * segs_d;
    arch::DramCost c;
    c.accumulate(
        d.stream(d.stored_bytes(d.weight_format, w_traffic, w_runs), w_runs));
    c.accumulate(d.stream(
        d.stored_bytes(d.payload_format, if_traffic, if_runs), if_runs));
    c.accumulate(d.stream(
        d.stored_bytes(d.payload_format, ofmap_actual_bytes, tiles_d),
        tiles_d));
    plan.dma_bytes = c.bytes;
    plan.dma_cycles = c.cycles;
    plan.dma_row_hits = c.row_hits;
    plan.dma_row_misses = c.row_misses;
    plan.first_fill_cycles =
        d.stream(plan.weight_tile_bytes + plan.if_stripe_bytes, 2.0).cycles;
  }

  // --- batch-aware warm plan (batch-level weight-tile reuse) ----------------
  // Re-search the tiling for the *warm* regime: SPM capacity may be spent on
  // permanently pinned weight tiles (single-buffered — pinned tiles are
  // never streamed) instead of the biggest possible streaming buffers the
  // cold plan prefers. A warm batch sample then refetches only the
  // unpinned weight fraction; the pinned tiles survived from the previous
  // sample on the same cluster. The search minimizes warm DMA bytes over
  // (co tile, ifmap stripe rows, pinned tile count). Fan-in segmentation
  // cycles different weight bands through one tile and cannot pin, which
  // excludes the big segmented FC layers. Defaults (warm == cold) stand
  // when nothing beats them.
  plan.dma_bytes_warm = plan.dma_bytes;
  plan.dma_cycles_warm = plan.dma_cycles;
  plan.first_fill_cycles_warm = plan.first_fill_cycles;
  plan.dma_row_hits_warm = plan.dma_row_hits;
  plan.dma_row_misses_warm = plan.dma_row_misses;
  if (plan.in_segments == 1) {
    for (int co = std::max(spec.out_c, simd); co >= simd;
         co = co > simd ? std::max(co / 2, simd) : co - 1) {
      const int tiles = (spec.out_c + co - 1) / co;
      const double tile_bytes = static_cast<double>(kk) * spec.in_c * co * fb;
      for (int rows = out_rows; rows >= 1; rows = rows > 1 ? rows / 2 : 0) {
        const int in_rows = is_fc ? 1 : rows + spec.k - 1;
        const double if_frac =
            is_fc ? 1.0
                  : static_cast<double>(in_rows) / std::max(spec.in_h, 1);
        const double if_bytes = std::max(ifmap_actual_bytes * if_frac, 64.0);
        const double positions =
            is_fc ? 1.0 : static_cast<double>(rows) * spec.out_w();
        const double of_bytes =
            positions * co * kIdxBytes + positions * kIdxBytes;
        const double state_bytes = positions * co * fb;
        // Streaming working set; fully-pinned candidates drop the 2x
        // weight stream buffer entirely.
        double pinned_budget = 0;
        int pinned = 0;
        const double base_full =
            all_weights + buf_mult * if_bytes + of_bytes + state_bytes;
        if (base_full <= spm_bytes && co == spec.out_c) {
          pinned = tiles;  // whole set resident, no stream buffer needed
        } else {
          const double base =
              buf_mult * (tile_bytes + if_bytes) + of_bytes + state_bytes;
          if (base > spm_bytes) {
            if (rows == 1) break;
            continue;
          }
          pinned_budget = spm_bytes - base;
          pinned = std::min<int>(tiles - 1,
                                 static_cast<int>(pinned_budget / tile_bytes));
        }
        if (pinned <= 0) {
          if (rows == 1) break;
          continue;
        }
        const double stripes =
            static_cast<double>((out_rows + rows - 1) / rows);
        const double f =
            static_cast<double>(pinned) / static_cast<double>(tiles);
        const double w_warm = all_weights * stripes * (1.0 - f);
        double bytes_warm = 0;
        double cycles_warm = 0;
        double hits_warm = 0;
        double misses_warm = 0;
        if (d.flat_legacy) {
          bytes_warm = w_warm + ifmap_actual_bytes + ofmap_actual_bytes;
          const double n_warm = stripes * (tiles - pinned) + stripes + tiles;
          cycles_warm =
              bytes_warm / d.bytes_per_cycle + n_warm * d.request_latency;
        } else {
          const double w_runs = stripes * (tiles - pinned);
          arch::DramCost c;
          c.accumulate(d.stream(
              d.stored_bytes(d.weight_format, w_warm, w_runs), w_runs));
          c.accumulate(d.stream(
              d.stored_bytes(d.payload_format, ifmap_actual_bytes, stripes),
              stripes));
          c.accumulate(d.stream(
              d.stored_bytes(d.payload_format, ofmap_actual_bytes,
                             static_cast<double>(tiles)),
              static_cast<double>(tiles)));
          bytes_warm = c.bytes;
          cycles_warm = c.cycles;
          hits_warm = c.row_hits;
          misses_warm = c.row_misses;
        }
        // Minimize warm DMA *cycles*, never exceeding the cold plan on
        // either axis: a byte-minimal candidate with tiny tiles can pay
        // more per-transfer latency than it saves in volume.
        if (cycles_warm < plan.dma_cycles_warm &&
            bytes_warm <= plan.dma_bytes) {
          plan.pinned_weight_fraction = f;
          plan.weights_spm_resident = pinned == tiles;
          plan.dma_bytes_warm = bytes_warm;
          plan.dma_cycles_warm = cycles_warm;
          plan.dma_row_hits_warm = hits_warm;
          plan.dma_row_misses_warm = misses_warm;
          // A warm sample could always fall back to the cold first-fill
          // shape, so never report a worse exposed fill than cold.
          if (d.flat_legacy) {
            plan.first_fill_cycles_warm = std::min(
                plan.first_fill_cycles,
                ((pinned == tiles ? 0.0 : tile_bytes) + if_bytes) /
                        d.bytes_per_cycle +
                    (pinned == tiles ? 1.0 : 2.0) * d.request_latency);
          } else {
            plan.first_fill_cycles_warm = std::min(
                plan.first_fill_cycles,
                d.stream((pinned == tiles ? 0.0 : tile_bytes) + if_bytes,
                         pinned == tiles ? 1.0 : 2.0)
                    .cycles);
          }
        }
        if (rows == 1) break;
      }
    }
  }

  // --- segment-major batched FC schedule ------------------------------------
  plan_fc_segment_major(plan, spec, fmt, ifmap_actual_bytes,
                        ofmap_actual_bytes, p, batch_lanes, spm_bytes,
                        double_buffer);
  return plan;
}

TilePlan plan_encode_layer(const snn::LayerSpec& spec, common::FpFormat fmt,
                           const CostParams& p, double spm_bytes,
                           bool double_buffer) {
  const double fb = common::fp_bytes(fmt);
  const double buf_mult = double_buffer ? 2.0 : 1.0;
  const int kk = spec.k * spec.k;
  const arch::DramConfig& d = p.dram;

  TilePlan plan;
  plan.in_segments = 1;
  // The whole (small) first-layer weight set stays resident; the im2row
  // stream is tiled by output rows through the 2D DMA (Section III-F).
  const double w_bytes = static_cast<double>(kk) * spec.in_c * spec.out_c * fb;
  for (int rows = spec.out_h(); rows >= 1; rows = rows > 1 ? rows / 2 : 0) {
    const double im2row_bytes =
        static_cast<double>(rows) * spec.out_w() * kk * spec.in_c * fb;
    const double positions = static_cast<double>(rows) * spec.out_w();
    const double of_bytes =
        positions * spec.out_c * kIdxBytes + positions * kIdxBytes;
    const double resident = w_bytes + buf_mult * im2row_bytes + of_bytes;
    if (resident <= spm_bytes) {
      plan.co_per_tile = spec.out_c;
      plan.weight_tiles = 1;
      plan.rows_per_stripe = rows;
      plan.if_stripes = (spec.out_h() + rows - 1) / rows;
      plan.weight_tile_bytes = w_bytes;
      plan.if_stripe_bytes = im2row_bytes;
      plan.ofmap_buf_bytes = of_bytes;
      plan.spm_resident_bytes = resident;
      plan.fits_spm = true;
      break;
    }
    if (rows == 1) break;
  }
  SPK_CHECK(plan.fits_spm, "encode layer does not fit SPM");

  // im2row re-reads overlapping input rows: traffic is the expanded volume.
  const double im2row_total = static_cast<double>(spec.out_h()) *
                              spec.out_w() * kk * spec.in_c * fb;
  const double positions = static_cast<double>(spec.out_h()) * spec.out_w();
  const double of_traffic = positions * spec.out_c * kIdxBytes * 0.25;
  const double stripes_d = static_cast<double>(plan.if_stripes);
  if (d.flat_legacy) {
    // Historical flat pricing, expression-for-expression (bit-exact).
    plan.dma_bytes = w_bytes + im2row_total + of_traffic;
    const double n_transfers = 1.0 + 2.0 * plan.if_stripes;
    plan.dma_cycles = plan.dma_bytes / d.bytes_per_cycle +
                      n_transfers * d.request_latency;
    plan.first_fill_cycles =
        (w_bytes + plan.if_stripe_bytes) / d.bytes_per_cycle +
        2.0 * d.request_latency;
    plan.dma_bytes_warm = plan.dma_bytes - w_bytes;
    plan.dma_cycles_warm = plan.dma_bytes_warm / d.bytes_per_cycle +
                           2.0 * plan.if_stripes * d.request_latency;
    plan.first_fill_cycles_warm =
        plan.if_stripe_bytes / d.bytes_per_cycle + d.request_latency;
  } else {
    // Banked mode: the dense weight set loads as one long run; the im2row
    // expansion streams sequentially per stripe; the compressed ofmap
    // writes back once per stripe.
    arch::DramCost c;
    c.accumulate(
        d.stream(d.stored_bytes(d.weight_format, w_bytes, 1.0), 1.0));
    arch::DramCost warm;
    warm.accumulate(d.stream(
        d.stored_bytes(d.payload_format, im2row_total, stripes_d), stripes_d));
    warm.accumulate(d.stream(
        d.stored_bytes(d.payload_format, of_traffic, stripes_d), stripes_d));
    c.accumulate(warm);
    plan.dma_bytes = c.bytes;
    plan.dma_cycles = c.cycles;
    plan.dma_row_hits = c.row_hits;
    plan.dma_row_misses = c.row_misses;
    plan.first_fill_cycles =
        d.stream(w_bytes + plan.if_stripe_bytes, 2.0).cycles;
    plan.dma_bytes_warm = warm.bytes;
    plan.dma_cycles_warm = warm.cycles;
    plan.dma_row_hits_warm = warm.row_hits;
    plan.dma_row_misses_warm = warm.row_misses;
    plan.first_fill_cycles_warm = d.stream(plan.if_stripe_bytes, 1.0).cycles;
  }

  // The whole first-layer weight set is resident by construction, so every
  // warm batch sample streams only the im2row expansion + ofmap write-back.
  plan.weights_spm_resident = true;
  plan.pinned_weight_fraction = 1.0;
  return plan;
}

double overlap_cycles(const TilePlan& plan, double compute_cycles,
                      bool double_buffer, bool weights_warm) {
  // Segment-major plans charge the same amortized timeline on every sample
  // of the batch, overriding the warm/cold distinction.
  const double dma = plan.segment_major
                         ? plan.sm_dma_cycles
                         : (weights_warm ? plan.dma_cycles_warm
                                         : plan.dma_cycles);
  const double fill = plan.segment_major
                          ? plan.sm_first_fill_cycles
                          : (weights_warm ? plan.first_fill_cycles_warm
                                          : plan.first_fill_cycles);
  if (double_buffer) {
    return fill + std::max(compute_cycles, dma);
  }
  return dma + compute_cycles;
}

}  // namespace spikestream::kernels
