// Result statistics of one kernel execution (one layer, one image): cycle
// count from the timing model plus the activity counts the energy model
// consumes. Mirrors what the paper extracts from RTL simulation traces.
#pragma once

#include <algorithm>
#include <vector>

#include "arch/energy.hpp"

namespace spikestream::kernels {

struct KernelStats {
  double cycles = 0;        ///< wall-clock cycles (max over cores, incl. DMA)
  double compute_cycles = 0;  ///< compute-only critical path
  double dma_cycles = 0;      ///< DMA busy cycles
  double fpu_ops = 0;         ///< SIMD FPU ops issued (adds + macs)
  double fpu_mac_ops = 0;     ///< subset of fpu_ops that are fmadds
  double int_instrs = 0;
  double tcdm_words = 0;      ///< 64-bit words moved through the interconnect
  double ssr_elems = 0;
  double dma_bytes = 0;
  /// Weight-fetch DMA bytes this run skipped because the layer's weight tile
  /// was still SPM-resident from the previous batch sample (batch-level
  /// weight-tile reuse, RunOptions::batch_weight_reuse), or because the
  /// segment-major batched FC schedule streamed each weight band once for
  /// the whole batch (RunOptions::segment_major_lanes — already net of the
  /// spill traffic below). 0 otherwise; always excluded from `dma_bytes`.
  double dma_saved_bytes = 0;
  /// Partial-sum spill/fill DMA traffic of the segment-major batched FC
  /// schedule: accumulator slices of samples parked between weight bands
  /// written to and re-read from DRAM. Included in `dma_bytes` (it is real
  /// traffic, priced by the energy model like any DMA byte) and itemized
  /// here so the weight-stream saving can be judged net of its cost.
  double dma_bytes_spill = 0;
  /// Inter-cluster traffic (broadcast ifmap replicas, stripe halos, gathered
  /// ofmap slices, FC partial-sum reductions). 0 for single-cluster runs.
  double noc_bytes = 0;
  /// Row-buffer outcomes of the banked DRAM model (arch/dram/dram.hpp), at
  /// 64 B beat granularity. Sequential weight-band streams hit their open
  /// rows almost always; strided accumulator spills and fragmented
  /// write-backs pay one activation per run. Both 0 under flat legacy.
  double dma_row_hits = 0;
  double dma_row_misses = 0;
  /// DMA cycles of the segment-major spill/fill that the double-buffered
  /// schedule hid under the concurrent weight-band stream (banked model
  /// only). Excluded from `dma_cycles` (they do not occupy the exposed
  /// timeline); itemized so charged + hidden reconstructs the serial-spill
  /// pricing exactly.
  double dma_cycles_hidden = 0;
  /// Cycles NocParams::model_contention added to this layer's wall-clock
  /// (the fabric gate raising `cycles` above the compute/DMA timeline).
  /// Included in `cycles`; itemized so gated minus ungated runs reconstruct
  /// exactly. 0 with contention modeling off.
  double noc_contention_cycles = 0;
  /// Stage-pipeline backpressure: cycles a pipeline stage sat blocked on a
  /// full downstream spike FIFO. Produced by the batch-scope stage timeline
  /// (runtime/stage_pipeline.hpp) on per-stage summary stats — always 0 on
  /// individual layer runs, whose service time is what the timeline
  /// consumes. Included in the stage's window `cycles`.
  double fifo_stall_cycles = 0;
  /// SEC-DED ECC overlay (arch::EccConfig, applied by finish_timing when
  /// opt.cost.dram.ecc.enabled): codewords checked across DRAM beats + TCDM
  /// words, expected corrected / detected-uncorrectable counts, and the
  /// check+scrub cycles added to `cycles` (itemized here so protected minus
  /// unprotected runs reconstruct exactly). All zero with ECC off.
  double ecc_words = 0;
  double ecc_corrected = 0;
  double ecc_uncorrectable = 0;
  double ecc_cycles = 0;  ///< included in `cycles`
  int active_cores = 8;
  std::vector<double> core_cycles;  ///< per-core compute time (imbalance)

  double fpu_utilization() const {
    return cycles > 0 ? fpu_ops / (cycles * active_cores) : 0.0;
  }
  double ipc() const {
    return cycles > 0 ? (int_instrs + fpu_ops) / (cycles * active_cores) : 0.0;
  }

  arch::Activity to_activity() const {
    arch::Activity a;
    a.cycles = cycles;
    a.active_cores = active_cores;
    a.int_instrs = int_instrs;
    a.fpu_add_ops = fpu_ops - fpu_mac_ops;
    a.fpu_mac_ops = fpu_mac_ops;
    a.tcdm_words = tcdm_words;
    a.ssr_elems = ssr_elems;
    a.dma_bytes = dma_bytes;
    a.dma_saved_bytes = dma_saved_bytes;
    a.dma_spill_bytes = dma_bytes_spill;
    a.noc_bytes = noc_bytes;
    a.dram_row_hits = dma_row_hits;
    a.dram_row_misses = dma_row_misses;
    a.dma_hidden_cycles = dma_cycles_hidden;
    a.noc_contention_cycles = noc_contention_cycles;
    a.fifo_stall_cycles = fifo_stall_cycles;
    a.ecc_words = ecc_words;
    a.ecc_corrected = ecc_corrected;
    a.ecc_uncorrectable = ecc_uncorrectable;
    a.ecc_cycles = ecc_cycles;
    return a;
  }

  /// Reset to a default-constructed state while keeping the `core_cycles`
  /// capacity (scratch-arena reuse across layer executions).
  void reset() {
    cycles = compute_cycles = dma_cycles = 0;
    fpu_ops = fpu_mac_ops = int_instrs = tcdm_words = ssr_elems = dma_bytes = 0;
    dma_saved_bytes = 0;
    dma_bytes_spill = 0;
    noc_bytes = 0;
    dma_row_hits = dma_row_misses = 0;
    dma_cycles_hidden = 0;
    noc_contention_cycles = 0;
    fifo_stall_cycles = 0;
    ecc_words = ecc_corrected = ecc_uncorrectable = ecc_cycles = 0;
    active_cores = 8;
    core_cycles.clear();
  }

  void accumulate(const KernelStats& o) {
    cycles += o.cycles;
    compute_cycles += o.compute_cycles;
    dma_cycles += o.dma_cycles;
    fpu_ops += o.fpu_ops;
    fpu_mac_ops += o.fpu_mac_ops;
    int_instrs += o.int_instrs;
    tcdm_words += o.tcdm_words;
    ssr_elems += o.ssr_elems;
    dma_bytes += o.dma_bytes;
    dma_saved_bytes += o.dma_saved_bytes;
    dma_bytes_spill += o.dma_bytes_spill;
    noc_bytes += o.noc_bytes;
    dma_row_hits += o.dma_row_hits;
    dma_row_misses += o.dma_row_misses;
    dma_cycles_hidden += o.dma_cycles_hidden;
    noc_contention_cycles += o.noc_contention_cycles;
    fifo_stall_cycles += o.fifo_stall_cycles;
    ecc_words += o.ecc_words;
    ecc_corrected += o.ecc_corrected;
    ecc_uncorrectable += o.ecc_uncorrectable;
    ecc_cycles += o.ecc_cycles;
    active_cores = std::max(active_cores, o.active_cores);
  }

  /// Merge stats of a shard that executed *concurrently* on a separate
  /// cluster: timelines take the max (clusters run in parallel), activity
  /// counters and core counts sum, per-core breakdowns concatenate.
  void merge_parallel(const KernelStats& o) {
    cycles = std::max(cycles, o.cycles);
    compute_cycles = std::max(compute_cycles, o.compute_cycles);
    dma_cycles = std::max(dma_cycles, o.dma_cycles);
    fpu_ops += o.fpu_ops;
    fpu_mac_ops += o.fpu_mac_ops;
    int_instrs += o.int_instrs;
    tcdm_words += o.tcdm_words;
    ssr_elems += o.ssr_elems;
    dma_bytes += o.dma_bytes;
    dma_saved_bytes += o.dma_saved_bytes;
    dma_bytes_spill += o.dma_bytes_spill;
    noc_bytes += o.noc_bytes;
    // Row outcomes are activity counters (they sum across concurrent
    // clusters, each owning its own DRAM channel); the hidden-cycle
    // itemization follows the dma_cycles timeline semantics instead.
    dma_row_hits += o.dma_row_hits;
    dma_row_misses += o.dma_row_misses;
    dma_cycles_hidden = std::max(dma_cycles_hidden, o.dma_cycles_hidden);
    // Fabric-gate and FIFO-stall itemizations follow the wall-clock timeline
    // semantics (concurrent clusters overlap their waits).
    noc_contention_cycles = std::max(noc_contention_cycles,
                                     o.noc_contention_cycles);
    fifo_stall_cycles = std::max(fifo_stall_cycles, o.fifo_stall_cycles);
    // ECC words/outcomes are activity counters (each cluster checks its own
    // traffic); the cycle itemization follows the wall-clock timeline.
    ecc_words += o.ecc_words;
    ecc_corrected += o.ecc_corrected;
    ecc_uncorrectable += o.ecc_uncorrectable;
    ecc_cycles = std::max(ecc_cycles, o.ecc_cycles);
    active_cores += o.active_cores;
    core_cycles.insert(core_cycles.end(), o.core_cycles.begin(),
                       o.core_cycles.end());
  }
};

}  // namespace spikestream::kernels
