// The two code variants the paper compares, executed functionally (spikes are
// bit-exact vs. the dense golden reference) with cycle/energy statistics from
// the mechanistic cost model:
//
//  * Variant::kBaseline    — TC + TP + DP + DB (Sections III-A..D): compressed
//    ifmaps, workload stealing, SIMD over output channels, double-buffered
//    DMA, but the SpVA inner loop is the 8-instruction scalar gather of
//    Listing 1b.
//  * Variant::kSpikeStream — adds SA (Section III-E): indirect-SSR weight
//    streams + FREP decoupling for conv/FC, two affine SSRs for the dense
//    encode matmul.
//
// Each kernel is split into a *functional* pass (accumulate currents, run the
// LIF step — the math that must match the golden reference bit-for-bit) and a
// *timing* pass (the mechanistic cost model). Both write into a caller-owned
// KernelScratch so steady-state execution allocates nothing; backends may run
// the passes separately to memoize the timing (see runtime/backend.hpp).
#pragma once

#include <span>

#include "common/float_formats.hpp"
#include "compress/csr_ifmap.hpp"
#include "kernels/cost_model.hpp"
#include "kernels/kernel_stats.hpp"
#include "kernels/scratch.hpp"
#include "kernels/tiling.hpp"
#include "snn/network.hpp"
#include "snn/tensor.hpp"

namespace spikestream::kernels {

enum class Variant {
  kBaseline,     ///< TC+TP+DP+DB, scalar SpVA gather loop (Listing 1b)
  kSpikeStream,  ///< + SA: indirect/affine SSR streams + FREP (Listing 1c)
  kDenseNoTc,    ///< ablation: SSR streams but *uncompressed* ifmaps — every
                 ///< synapse is walked with an affine stream, spikes or not.
};

const char* variant_name(Variant v);

struct RunOptions {
  Variant variant = Variant::kSpikeStream;
  common::FpFormat fmt = common::FpFormat::FP16;
  int cores = 8;
  bool double_buffer = true;
  bool workload_stealing = true;  ///< false = static RF partition (ablation)
  /// Model the paper's proposed Section-VI extension: indirect streams whose
  /// indices are scaled by an arbitrary element stride. Removes the FC index
  /// pre-scaling pass (one index then addresses a whole weight row).
  bool strided_indirect_ext = false;
  /// Batch-level weight-tile reuse: when a layer's batch-aware warm plan
  /// pins weight tiles in SPM (TilePlan::pinned_weight_fraction > 0 — the
  /// whole set when it fits single-buffered, otherwise as many tiles as the
  /// warm tiling search affords), samples after the first on the same
  /// simulated cluster skip the pinned tiles' DMA refetch
  /// (KernelScratch::weights_warm tracks residency; the saving is itemized
  /// in KernelStats::dma_saved_bytes). Off by default, because warm/cold
  /// then depends on which execution lane a sample lands on: under a
  /// multithreaded BatchRunner that assignment is decided by the worker
  /// pool's racing claim order, making per-sample modeled DMA/cycles vary
  /// with thread scheduling. Use PipelinedBatchRunner (deterministic lane
  /// rotation) or a single-worker BatchRunner when reproducible modeled
  /// numbers matter.
  bool batch_weight_reuse = false;
  /// Segment-major batched FC execution: with >= 2 lanes, segmented FC
  /// layers (fan-in weight bands cycling through one SPM tile — pinning is
  /// impossible for them) are planned with the cross-sample segment-major
  /// schedule: each weight band streams into SPM once per batch of
  /// `segment_major_lanes` samples and is applied to every in-flight sample
  /// before advancing; partial sums of parked samples spill/fill through
  /// DRAM when they do not fit next to the streaming buffers (itemized in
  /// KernelStats::dma_bytes_spill). The planner adopts the schedule per
  /// layer only when it wins net of spill (TilePlan::segment_major). All
  /// charges are per-sample batch means, so modeled stats stay independent
  /// of lane assignment and execution order — a batch-scope run
  /// (ExecutionBackend::run_fc_batch) and the serial per-sample path produce
  /// bit-identical spikes *and* cycles. Set it to the steady batch width the
  /// runner actually drives (BatchRunner / PipelinedBatchRunner switch to
  /// lockstep waves of this many samples when it is >= 2).
  int segment_major_lanes = 1;
  CostParams cost;
};

// --- functional passes ------------------------------------------------------
// Accumulate synaptic currents and run one LIF step. Fills
// `scratch.run.out_spikes` / `scratch.run.out_nnz` and updates `membrane` in
// place. Bit-exact vs. snn::Reference (same accumulation order).

void conv_functional(const snn::LayerSpec& spec,
                     const snn::LayerWeights& weights,
                     const compress::CsrIfmap& ifmap, snn::Tensor& membrane,
                     KernelScratch& scratch);
void fc_functional(const snn::LayerSpec& spec, const snn::LayerWeights& weights,
                   const compress::CsrIfmap& ifmap, snn::Tensor& membrane,
                   KernelScratch& scratch);
void encode_functional(const snn::LayerSpec& spec,
                       const snn::LayerWeights& weights,
                       const snn::Tensor& padded_image, snn::Tensor& membrane,
                       KernelScratch& scratch);

/// One in-flight sample's borrowed buffers for a batch-scope FC call (see
/// fc_functional_batch and ExecutionBackend::run_fc_batch): its compressed
/// input, its persistent membrane, and the per-layer scratch arena its
/// results land in.
struct FcBatchLane {
  const compress::CsrIfmap* ifmap = nullptr;
  snn::Tensor* membrane = nullptr;
  LayerScratch* scratch = nullptr;
};

/// Batch-scope FC functional pass: one call executes the layer for every
/// lane in segment-major order — the fan-in row space is walked in
/// contiguous bands, and within each band every lane's spiking rows are
/// accumulated before advancing, so a weight band is hot (host caches /
/// modeled SPM) exactly once per batch. Per-lane accumulation order is
/// unchanged (bands partition the sorted CSR index space), so spikes are
/// bit-identical to per-lane serial fc_functional calls. Each lane uses its
/// own scratch/membrane; fills lane.scratch->main.run.out_spikes / out_nnz.
void fc_functional_batch(const snn::LayerSpec& spec,
                         const snn::LayerWeights& weights,
                         std::span<const FcBatchLane> lanes);

// --- timing passes ----------------------------------------------------------
// Mechanistic cost model over the spikes produced by the functional pass.
// Fills `scratch.run.stats` and `scratch.run.plan`; must be called after the
// matching functional pass on the same scratch.

void conv_timing(const snn::LayerSpec& spec, const compress::CsrIfmap& ifmap,
                 const RunOptions& opt, KernelScratch& scratch);
void fc_timing(const snn::LayerSpec& spec, const compress::CsrIfmap& ifmap,
               const RunOptions& opt, KernelScratch& scratch);
void encode_timing(const snn::LayerSpec& spec, const RunOptions& opt,
                   KernelScratch& scratch);

// --- fan-in shard timing (FC partial-sum sharding) ---------------------------
// An FC layer partitioned along its fan-in (kernels/partition.hpp, axis
// kFanIn) keeps its *functional* pass unsharded — partial-sum merges are not
// floating-point associative, and spikes must stay bit-exact across every
// plan — while the timing pass models what each cluster really does: stream
// the ifmap spikes of its input-channel band through all SIMD output groups,
// then ship the partial current vector to a merging cluster that reduces and
// thresholds once.

/// Timing of one fan-in shard owning input channels [c_lo, c_hi): the
/// cluster's accumulation work only, no activation (that runs once, on the
/// merging cluster — see fc_fanin_merge_cost). Fills scratch.run.stats/plan.
void fc_fanin_shard_timing(const snn::LayerSpec& spec,
                           const compress::CsrIfmap& ifmap, int c_lo, int c_hi,
                           const RunOptions& opt, KernelScratch& scratch);

/// Sequential merge tail of a fan-in-sharded FC layer: the merging cluster
/// streams in n_shards - 1 partial ofmap vectors over the NoC, reduces them
/// group-wise, and runs the activation exactly once (same accounting as
/// fc_timing's activation, so activity conservation holds by construction).
struct FcFanInMergeCost {
  double cycles = 0;      ///< serial tail after the slowest shard finishes
  double fpu_ops = 0;     ///< reduction adds (itemized, not hidden)
  double int_instrs = 0;
  double tcdm_words = 0;
  double noc_bytes = 0;   ///< partial vectors crossing the inter-cluster NoC
};
FcFanInMergeCost fc_fanin_merge_cost(const snn::LayerSpec& spec,
                                     const snn::SpikeMap& out_spikes,
                                     int n_shards, const RunOptions& opt);

// --- combined layer execution (functional + timing) -------------------------
// Results live in `scratch.run`; the returned reference aliases it.

/// Spiking convolution on a compressed ifmap (one timestep). `membrane` is
/// the layer's persistent neuron state and must have the output shape.
const LayerRun& run_conv_layer(const snn::LayerSpec& spec,
                               const snn::LayerWeights& weights,
                               const compress::CsrIfmap& ifmap,
                               snn::Tensor& membrane, const RunOptions& opt,
                               KernelScratch& scratch);

/// Spiking fully-connected layer on a flat (1x1xN) compressed input.
const LayerRun& run_fc_layer(const snn::LayerSpec& spec,
                             const snn::LayerWeights& weights,
                             const compress::CsrIfmap& ifmap,
                             snn::Tensor& membrane, const RunOptions& opt,
                             KernelScratch& scratch);

/// Spike-encoding first layer: dense conv-as-matmul on the padded image
/// (Section III-F). Parallelized over output channels, two affine SSRs.
const LayerRun& run_encode_layer(const snn::LayerSpec& spec,
                                 const snn::LayerWeights& weights,
                                 const snn::Tensor& padded_image,
                                 snn::Tensor& membrane, const RunOptions& opt,
                                 KernelScratch& scratch);

// --- allocating conveniences (tests / benches / one-shot callers) -----------

inline LayerRun run_conv_layer(const snn::LayerSpec& spec,
                               const snn::LayerWeights& weights,
                               const compress::CsrIfmap& ifmap,
                               snn::Tensor& membrane, const RunOptions& opt) {
  KernelScratch scratch;
  run_conv_layer(spec, weights, ifmap, membrane, opt, scratch);
  return std::move(scratch.run);
}

inline LayerRun run_fc_layer(const snn::LayerSpec& spec,
                             const snn::LayerWeights& weights,
                             const compress::CsrIfmap& ifmap,
                             snn::Tensor& membrane, const RunOptions& opt) {
  KernelScratch scratch;
  run_fc_layer(spec, weights, ifmap, membrane, opt, scratch);
  return std::move(scratch.run);
}

inline LayerRun run_encode_layer(const snn::LayerSpec& spec,
                                 const snn::LayerWeights& weights,
                                 const snn::Tensor& padded_image,
                                 snn::Tensor& membrane, const RunOptions& opt) {
  KernelScratch scratch;
  run_encode_layer(spec, weights, padded_image, membrane, opt, scratch);
  return std::move(scratch.run);
}

}  // namespace spikestream::kernels
