#include "kernels/layer_kernels.hpp"

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "kernels/scheduler.hpp"
#include "snn/lif.hpp"
#include "snn/reference.hpp"

namespace spikestream::kernels {

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kBaseline: return "baseline";
    case Variant::kSpikeStream: return "spikestream";
    case Variant::kDenseNoTc: return "dense-no-tc";
  }
  return "?";
}

namespace {

/// SIMD output-channel groups for a format (last group may be partial).
int n_groups(int out_c, common::FpFormat fmt) {
  const int simd = common::simd_lanes(fmt);
  return (out_c + simd - 1) / simd;
}

/// Spikes emitted at one output position within one SIMD group.
double group_spikes(const snn::SpikeMap& out, int oy, int ox, int g,
                    common::FpFormat fmt) {
  const int simd = common::simd_lanes(fmt);
  const int lo = g * simd;
  const int hi = std::min(lo + simd, out.c);
  double n = 0;
  for (int ch = lo; ch < hi; ++ch) n += out.at(oy, ox, ch);
  return n;
}

/// Average memory-port pressure per core per cycle for the conflict model.
double access_rate(Variant v, const CostParams& p) {
  if (v == Variant::kBaseline) {
    // Baseline: lw + fld per element over ~11 cycles.
    return 2.0 / p.baseline_elem_cycles;
  }
  // Streamed variants: one data word + 1/4 index word (or a second affine
  // stream) per element, one element per II cycles.
  return 1.25 / p.fadd_latency;
}

ScheduleResult schedule(const RunOptions& opt,
                        const std::vector<double>& tasks) {
  if (opt.workload_stealing) {
    return steal_schedule(tasks, opt.cores, opt.cost.steal_cost);
  }
  return static_schedule(tasks, opt.cores);
}

/// Shared activity bookkeeping for one sparse SpVA of length `s`.
void count_spva(KernelStats& st, Variant v, double s) {
  st.fpu_ops += s;
  if (v == Variant::kSpikeStream) {
    st.int_instrs += 14;          // setup + frep + loop control
    st.tcdm_words += s + s / 4.0; // data words + packed 16-bit index words
    st.ssr_elems += s;
  } else {
    st.int_instrs += 16 + 8 * s;  // outer bookkeeping + Listing 1b body
    st.tcdm_words += 2.0 * s;     // lw index + fld weight word
  }
}

void count_activation(KernelStats& st, const CostParams& p, int simd,
                      double spikes, bool fp8) {
  const double cyc = activation_cycles(p, simd, spikes, fp8);
  st.int_instrs += cyc;            // thresholding is integer-pipe work
  st.tcdm_words += 1.0 + spikes / 4.0;  // s_ptr update + packed c_idcs
}

}  // namespace

LayerRun run_conv_layer(const snn::LayerSpec& spec,
                        const snn::LayerWeights& weights,
                        const compress::CsrIfmap& ifmap, snn::Tensor& membrane,
                        const RunOptions& opt) {
  SPK_CHECK(ifmap.h() == spec.in_h && ifmap.w() == spec.in_w &&
                ifmap.c() == spec.in_c,
            "conv " << spec.name << ": ifmap shape mismatch");
  const CostParams& p = opt.cost;
  const common::FpFormat fmt = opt.fmt;
  const int simd = common::simd_lanes(fmt);
  const bool fp8 = fmt == common::FpFormat::FP8;
  const int k = spec.k;
  const int oh = spec.out_h(), ow = spec.out_w();

  // ---------------- functional pass (must match the golden reference) ------
  snn::Tensor currents(oh, ow, spec.out_c);
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      float* acc = &currents.at(oy, ox, 0);
      for (int kh = 0; kh < k; ++kh) {
        for (int kw = 0; kw < k; ++kw) {
          for (std::uint16_t ci : ifmap.at(oy + kh, ox + kw)) {
            const float* wrow = &weights.v[weights.index(kh, kw, ci, 0)];
            for (int co = 0; co < spec.out_c; ++co) acc[co] += wrow[co];
          }
        }
      }
    }
  }
  LayerRun run;
  run.out_spikes = snn::lif_step(spec.lif, currents, membrane);

  // ---------------- timing pass ---------------------------------------------
  const int groups = n_groups(spec.out_c, fmt);
  const double stretch =
      opt.variant == Variant::kBaseline
          ? 1.0
          : p.conflict_stretch(access_rate(opt.variant, p), opt.cores);

  KernelStats& st = run.stats;
  st.active_cores = opt.cores;
  std::vector<double> rf_costs;
  rf_costs.reserve(static_cast<std::size_t>(oh) * ow);
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      // Stream lengths of the k*k SpVAs of this receptive field. The same
      // streams repeat for every SIMD output-channel group.
      double elems = 0;
      double fpu_time = 0;   // FPU sequencer timeline (streams + residues)
      double int_time = 0;   // integer-core timeline (setup + activation)
      for (int kh = 0; kh < k; ++kh) {
        for (int kw = 0; kw < k; ++kw) {
          const double s = ifmap.stream_len(oy + kh, ox + kw);
          elems += s;
          fpu_time += p.fadd_latency * s * stretch + p.ss_residue;
        }
      }
      st.fpu_ops += elems * groups;

      double rf = 0;
      if (opt.variant == Variant::kSpikeStream) {
        fpu_time *= groups;
        int_time = p.steal_cost + p.ss_setup * k * k * groups;
        for (int g = 0; g < groups; ++g) {
          const double gs = group_spikes(run.out_spikes, oy, ox, g, fmt);
          int_time += activation_cycles(p, simd, gs, fp8);
          count_activation(st, p, simd, gs, fp8);
        }
        // Pseudo dual-issue: integer work overlaps the FPU streams.
        rf = std::max(fpu_time, int_time);
        st.int_instrs += 14.0 * k * k * groups;
        st.tcdm_words += (elems + elems / 4.0) * groups;
        st.ssr_elems += elems * groups;
      } else if (opt.variant == Variant::kDenseNoTc) {
        // Uncompressed ifmap: one affine weight stream per position walks
        // the *entire* fan-in; the dense activation vector streams alongside
        // (fmadd with the 0/1 spike value). No indices, no s_ptr.
        const double dense_elems = static_cast<double>(k) * k * spec.in_c;
        fpu_time = (p.fadd_latency * dense_elems * stretch +
                    p.ss_residue * k * k) * groups;
        int_time = p.steal_cost + p.dense_setup * k * k * groups;
        for (int g = 0; g < groups; ++g) {
          const double gs = group_spikes(run.out_spikes, oy, ox, g, fmt);
          int_time += activation_cycles(p, simd, gs, fp8);
          count_activation(st, p, simd, gs, fp8);
        }
        rf = std::max(fpu_time, int_time);
        st.fpu_ops += (dense_elems - elems) * groups;  // elems already added
        st.int_instrs += 10.0 * k * k * groups;
        st.tcdm_words += 2.0 * dense_elems * groups;
        st.ssr_elems += 2.0 * dense_elems * groups;
      } else {
        // Baseline: everything serializes through the integer pipe.
        rf = (elems * p.baseline_elem_cycles +
              p.baseline_spva_overhead * k * k) *
             groups;
        for (int g = 0; g < groups; ++g) {
          const double gs = group_spikes(run.out_spikes, oy, ox, g, fmt);
          rf += activation_cycles(p, simd, gs, fp8);
          count_activation(st, p, simd, gs, fp8);
        }
        st.int_instrs += (16.0 * k * k + 8.0 * elems) * groups;
        st.tcdm_words += 2.0 * elems * groups;
      }
      rf_costs.push_back(rf);
    }
  }

  const ScheduleResult sched = schedule(opt, rf_costs);
  st.core_cycles = sched.core_cycles;
  st.compute_cycles = sched.makespan + p.icache_layer_warmup;

  run.plan = plan_layer(
      spec, fmt, static_cast<double>(ifmap.footprint_bytes()),
      static_cast<double>(
          compress::CsrIfmap::encode(run.out_spikes).footprint_bytes()),
      p, 128.0 * 1024, opt.double_buffer);
  st.dma_cycles = run.plan.dma_cycles;
  st.dma_bytes = run.plan.dma_bytes;
  st.cycles = overlap_cycles(run.plan, st.compute_cycles, opt.double_buffer);
  return run;
}

LayerRun run_fc_layer(const snn::LayerSpec& spec,
                      const snn::LayerWeights& weights,
                      const compress::CsrIfmap& ifmap, snn::Tensor& membrane,
                      const RunOptions& opt) {
  SPK_CHECK(ifmap.h() == 1 && ifmap.w() == 1 && ifmap.c() == spec.in_c,
            "fc " << spec.name << ": input shape mismatch");
  const CostParams& p = opt.cost;
  const common::FpFormat fmt = opt.fmt;
  const int simd = common::simd_lanes(fmt);
  const bool fp8 = fmt == common::FpFormat::FP8;

  // ---------------- functional pass ----------------------------------------
  snn::Tensor currents(1, 1, spec.out_c);
  const auto idcs = ifmap.at(0, 0);
  for (std::uint16_t ci : idcs) {
    const float* wrow = &weights.v[weights.index(0, 0, ci, 0)];
    for (int co = 0; co < spec.out_c; ++co) {
      currents.v[static_cast<std::size_t>(co)] += wrow[co];
    }
  }
  LayerRun run;
  run.out_spikes = snn::lif_step(spec.lif, currents, membrane);

  // ---------------- timing pass ---------------------------------------------
  run.plan = plan_layer(
      spec, fmt, static_cast<double>(ifmap.footprint_bytes()),
      static_cast<double>(
          compress::CsrIfmap::encode(run.out_spikes).footprint_bytes()),
      p, 128.0 * 1024, opt.double_buffer);

  const int groups = n_groups(spec.out_c, fmt);
  const double s_total = static_cast<double>(idcs.size());
  const int segs = run.plan.in_segments;
  const double s_seg = s_total / segs;
  const double stretch =
      opt.variant == Variant::kBaseline
          ? 1.0
          : p.conflict_stretch(access_rate(opt.variant, p), opt.cores);

  KernelStats& st = run.stats;
  st.active_cores = opt.cores;
  std::vector<double> tasks;
  tasks.reserve(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    const double gs = group_spikes(run.out_spikes, 0, 0, g, fmt);
    double t = 0;
    if (opt.variant == Variant::kSpikeStream) {
      const double fpu_time =
          (p.fadd_latency * s_seg * stretch + p.ss_residue) * segs;
      const double int_time = p.ss_setup * segs +
                              activation_cycles(p, simd, gs, fp8);
      t = std::max(fpu_time, int_time);
    } else if (opt.variant == Variant::kDenseNoTc) {
      const double dense_seg = static_cast<double>(spec.in_c) / segs;
      const double fpu_time =
          (p.fadd_latency * dense_seg * stretch + p.ss_residue) * segs;
      const double int_time = p.dense_setup * segs +
                              activation_cycles(p, simd, gs, fp8);
      t = std::max(fpu_time, int_time);
    } else {
      t = (s_seg * p.baseline_elem_cycles + p.baseline_spva_overhead) * segs +
          activation_cycles(p, simd, gs, fp8);
    }
    if (opt.variant == Variant::kDenseNoTc) {
      // Dense activity: the full fan-in streams through two affine SSRs.
      st.fpu_ops += spec.in_c;
      st.int_instrs += 10.0 * segs;
      st.tcdm_words += 2.0 * spec.in_c;
      st.ssr_elems += 2.0 * spec.in_c;
    } else {
      for (int s = 0; s < segs; ++s) count_spva(st, opt.variant, s_seg);
    }
    count_activation(st, p, simd, gs, fp8);
    tasks.push_back(t);
  }
  ScheduleResult sched = schedule(opt, tasks);
  // Index pre-scaling pass (base ISA lacks strided indirect streams, Section
  // VI): performed once, split across cores, before the group streams start.
  // With the proposed extension an index addresses a weight row directly and
  // the pass disappears.
  double prescale = 0.0;
  if (opt.variant == Variant::kSpikeStream && !opt.strided_indirect_ext) {
    prescale = s_total * p.fc_prescale_per_spike / opt.cores;
    st.int_instrs += s_total * p.fc_prescale_per_spike;
  }
  for (double& c : sched.core_cycles) c += prescale;
  sched.makespan += prescale;

  st.core_cycles = sched.core_cycles;
  st.compute_cycles = sched.makespan + p.icache_layer_warmup;
  st.dma_cycles = run.plan.dma_cycles;
  st.dma_bytes = run.plan.dma_bytes;
  st.cycles = overlap_cycles(run.plan, st.compute_cycles, opt.double_buffer);
  return run;
}

LayerRun run_encode_layer(const snn::LayerSpec& spec,
                          const snn::LayerWeights& weights,
                          const snn::Tensor& padded_image,
                          snn::Tensor& membrane, const RunOptions& opt) {
  SPK_CHECK(padded_image.h == spec.in_h && padded_image.c == spec.in_c,
            "encode: input shape mismatch");
  const CostParams& p = opt.cost;
  const common::FpFormat fmt = opt.fmt;
  const int simd = common::simd_lanes(fmt);
  const bool fp8 = fmt == common::FpFormat::FP8;

  // ---------------- functional pass ----------------------------------------
  snn::Tensor currents =
      snn::Reference::conv_currents_dense(padded_image, weights);
  LayerRun run;
  run.out_spikes = snn::lif_step(spec.lif, currents, membrane);

  // ---------------- timing pass ---------------------------------------------
  // Conv-as-matmul over the im2row stream: each core owns a set of output-
  // channel groups (Section III-F) and walks all output positions.
  const int groups = n_groups(spec.out_c, fmt);
  const double dot_len = static_cast<double>(spec.k) * spec.k * spec.in_c;
  const int oh = spec.out_h(), ow = spec.out_w();
  const double stretch =
      opt.variant == Variant::kBaseline
          ? 1.0
          : p.conflict_stretch(2.0 / p.dense_ii(), opt.cores);

  KernelStats& st = run.stats;
  st.active_cores = opt.cores;
  std::vector<double> tasks;
  tasks.reserve(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    double fpu_time = 0, int_time = 0, t = 0;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        const double gs = group_spikes(run.out_spikes, oy, ox, g, fmt);
        const double act = activation_cycles(p, simd, gs, fp8);
        count_activation(st, p, simd, gs, fp8);
        st.fpu_ops += dot_len;
        st.fpu_mac_ops += dot_len;
        if (opt.variant != Variant::kBaseline) {
          fpu_time += p.dense_ii() * dot_len * stretch + p.dense_residue;
          int_time += p.dense_setup + act;
          st.int_instrs += 10;               // affine SSR setup per dot
          st.tcdm_words += 2.0 * dot_len;    // input + weight streams
          st.ssr_elems += 2.0 * dot_len;
        } else {
          t += baseline_dense_dot_cycles(p, dot_len) + act;
          st.int_instrs += 12 + 5.0 * dot_len;  // 2x-unrolled scalar loop
          st.tcdm_words += 2.0 * dot_len;
        }
      }
    }
    if (opt.variant != Variant::kBaseline) {
      t = std::max(fpu_time, int_time);  // decoupled pipelines overlap
    }
    tasks.push_back(t);
  }
  const ScheduleResult sched = schedule(opt, tasks);
  st.core_cycles = sched.core_cycles;
  st.compute_cycles = sched.makespan + p.icache_layer_warmup;

  run.plan = plan_encode_layer(spec, fmt, p, 128.0 * 1024, opt.double_buffer);
  st.dma_cycles = run.plan.dma_cycles;
  st.dma_bytes = run.plan.dma_bytes;
  st.cycles = overlap_cycles(run.plan, st.compute_cycles, opt.double_buffer);
  return run;
}

}  // namespace spikestream::kernels
