#include "kernels/layer_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#if defined(__AVX512F__) && defined(__F16C__)
#include <immintrin.h>
#endif

#include "common/check.hpp"
#include "common/simd.hpp"
#include "kernels/scheduler.hpp"
#include "snn/lif.hpp"
#include "snn/reference.hpp"

namespace spikestream::kernels {

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kBaseline: return "baseline";
    case Variant::kSpikeStream: return "spikestream";
    case Variant::kDenseNoTc: return "dense-no-tc";
  }
  return "?";
}

namespace {

/// SIMD output-channel groups for a format (last group may be partial).
int n_groups(int out_c, common::FpFormat fmt) {
  const int simd = common::simd_lanes(fmt);
  return (out_c + simd - 1) / simd;
}

/// One sweep over the spikes at output position (oy, ox): per-SIMD-group
/// spike counts into counts[0..groups). The counts are exact small-integer
/// sums in double, so the host-SIMD tiers of common/simd.hpp may reduce them
/// in any shape — every tier produces bit-identical counts.
void group_counts_at(const snn::SpikeMap& out, int oy, int ox, int simd,
                     int groups, double* counts) {
  common::simd::group_spike_counts(&out.at(oy, ox, 0), out.c, simd, groups,
                                   counts);
}

/// Average memory-port pressure per core per cycle for the conflict model.
double access_rate(Variant v, const CostParams& p) {
  if (v == Variant::kBaseline) {
    // Baseline: lw + fld per element over ~11 cycles.
    return 2.0 / p.baseline_elem_cycles;
  }
  // Streamed variants: one data word + 1/4 index word (or a second affine
  // stream) per element, one element per II cycles.
  return 1.25 / p.fadd_latency;
}

/// SEC-DED ECC overlay (arch::EccConfig): closed-form check/scrub cycles and
/// expected correction outcomes over the words this layer actually moved —
/// DRAM beats from the final dma_bytes, SPM words from tcdm_words. Applied
/// once per layer at the end of finish_timing so it composes with every DMA
/// schedule (cold/warm/segment-major) without re-threading the tile planner;
/// strictly a no-op when ECC is off, keeping historical numbers bit-exact.
void apply_ecc_overlay(const RunOptions& opt, KernelStats& st) {
  const arch::EccConfig& ecc = opt.cost.dram.ecc;
  if (!ecc.enabled) return;
  const double beats = st.dma_bytes / opt.cost.dram.bytes_per_cycle;
  const double dram_words = st.dma_bytes / 8.0;  // 64-bit codewords
  const double words = dram_words + st.tcdm_words;
  double cyc = beats * ecc.dram_cycles_per_beat +
               st.tcdm_words * ecc.spm_cycles_per_word;
  if (ecc.scrub_interval_cycles > 0) {
    // One re-read of the layer's DRAM-touched footprint per scrub period,
    // amortized over the layer's own window.
    cyc += st.cycles / ecc.scrub_interval_cycles * beats;
  }
  st.ecc_words = words;
  st.ecc_corrected = ecc.expected_corrected(words);
  st.ecc_uncorrectable = ecc.expected_uncorrectable(words);
  st.ecc_cycles = cyc;
  st.cycles += cyc;
}

/// Shared tail of every timing pass: apply the plan's DMA timeline to the
/// stats and derive wall-clock cycles. With batch-level weight-tile reuse on
/// and this scratch's simulated cluster still holding the layer's
/// (single-tile) weight set from the previous sample, the warm DMA timeline
/// is charged instead and the skipped weight traffic is itemized in
/// dma_saved_bytes. Marks the scratch warm for the next sample either way.
void finish_timing(const RunOptions& opt, KernelScratch& scratch) {
  LayerRun& run = scratch.run;
  KernelStats& st = run.stats;
  if (run.plan.segment_major) {
    // Segment-major batched FC schedule: every sample of the batch is
    // charged the same amortized DMA timeline (weight bands / lanes + its
    // own ifmap/ofmap/spill share), so the numbers do not depend on lane
    // history — there is no warm/cold split to track. The saving is the
    // per-sample weight re-stream the batch loop inversion removed, net of
    // the spill traffic (which stays inside dma_bytes and is itemized).
    st.dma_cycles = run.plan.sm_dma_cycles;
    st.dma_bytes = run.plan.sm_dma_bytes;
    st.dma_saved_bytes = run.plan.dma_bytes - run.plan.sm_dma_bytes;
    st.dma_bytes_spill = run.plan.sm_spill_bytes;
    // Banked DRAM itemization: row outcomes of the amortized streams, plus
    // the spill/fill cycles the double-buffered schedule hid under the
    // concurrent band streams (already net in sm_dma_cycles). All zero
    // under flat legacy.
    st.dma_row_hits = run.plan.sm_row_hits;
    st.dma_row_misses = run.plan.sm_row_misses;
    st.dma_cycles_hidden = run.plan.sm_hidden_cycles;
    st.cycles = overlap_cycles(run.plan, st.compute_cycles, opt.double_buffer);
    apply_ecc_overlay(opt, st);
    scratch.weights_warm = true;
    return;
  }
  const bool warm = opt.batch_weight_reuse && scratch.weights_warm &&
                    run.plan.pinned_weight_fraction > 0;
  st.dma_cycles = warm ? run.plan.dma_cycles_warm : run.plan.dma_cycles;
  st.dma_bytes = warm ? run.plan.dma_bytes_warm : run.plan.dma_bytes;
  st.dma_saved_bytes =
      warm ? run.plan.dma_bytes - run.plan.dma_bytes_warm : 0.0;
  st.dma_bytes_spill = 0.0;
  st.dma_row_hits = warm ? run.plan.dma_row_hits_warm : run.plan.dma_row_hits;
  st.dma_row_misses =
      warm ? run.plan.dma_row_misses_warm : run.plan.dma_row_misses;
  st.dma_cycles_hidden = 0.0;
  st.cycles =
      overlap_cycles(run.plan, st.compute_cycles, opt.double_buffer, warm);
  apply_ecc_overlay(opt, st);
  scratch.weights_warm = true;
}

void schedule_into(const RunOptions& opt, std::span<const double> tasks,
                   ScheduleResult& r) {
  if (opt.workload_stealing) {
    steal_schedule_into(tasks, opt.cores, opt.cost.steal_cost, r);
  } else {
    static_schedule_into(tasks, opt.cores, r);
  }
}

/// Shared activity bookkeeping for one sparse SpVA of length `s`.
void count_spva(KernelStats& st, Variant v, double s) {
  st.fpu_ops += s;
  if (v == Variant::kSpikeStream) {
    st.int_instrs += 14;          // setup + frep + loop control
    st.tcdm_words += s + s / 4.0; // data words + packed 16-bit index words
    st.ssr_elems += s;
  } else {
    st.int_instrs += 16 + 8 * s;  // outer bookkeeping + Listing 1b body
    st.tcdm_words += 2.0 * s;     // lw index + fld weight word
  }
}

void count_activation(KernelStats& st, const CostParams& p, int simd,
                      double spikes, bool fp8) {
  const double cyc = activation_cycles(p, simd, spikes, fp8);
  st.int_instrs += cyc;            // thresholding is integer-pipe work
  st.tcdm_words += 1.0 + spikes / 4.0;  // s_ptr update + packed c_idcs
}

/// Accumulate the gathered weight rows into `acc[0..out_c)`. Rows are added
/// strictly in gather order — `acc = (((acc + w0) + w1) + w2) + w3` — so the
/// result is bit-identical to the naive one-row-at-a-time loop (and to the
/// golden reference); processing four rows per sweep just amortizes the
/// accumulator loads/stores over four streamed row reads.
void add_rows(float* __restrict__ acc, const void* const* rows,
              std::size_t n_rows, int out_c) {
  std::size_t r = 0;
  for (; r + 4 <= n_rows; r += 4) {
    const float* __restrict__ w0 = static_cast<const float*>(rows[r]);
    const float* __restrict__ w1 = static_cast<const float*>(rows[r + 1]);
    const float* __restrict__ w2 = static_cast<const float*>(rows[r + 2]);
    const float* __restrict__ w3 = static_cast<const float*>(rows[r + 3]);
    for (int co = 0; co < out_c; ++co) {
      acc[co] = (((acc[co] + w0[co]) + w1[co]) + w2[co]) + w3[co];
    }
  }
  for (; r < n_rows; ++r) {
    const float* __restrict__ w0 = static_cast<const float*>(rows[r]);
    for (int co = 0; co < out_c; ++co) acc[co] += w0[co];
  }
}

#if defined(__AVX512F__) && defined(__F16C__)
#define SPIKESTREAM_HALF_ROWS 1

/// Half-precision weight streaming: rows hold IEEE binary16 bit patterns
/// (LayerWeights::half), converted to float32 by vcvtph2ps right before the
/// add. Lane-wise the accumulation order and the converted values are
/// exactly those of add_rows() on the float32 rows, so spikes stay
/// bit-identical — only the memory traffic is halved. Requires out_c to be a
/// multiple of 16 (callers fall back to add_rows otherwise).
void add_rows_half(float* acc, const void* const* rows, std::size_t n_rows,
                   int out_c) {
  std::size_t r = 0;
  for (; r + 4 <= n_rows; r += 4) {
    const auto* w0 = static_cast<const std::uint16_t*>(rows[r]);
    const auto* w1 = static_cast<const std::uint16_t*>(rows[r + 1]);
    const auto* w2 = static_cast<const std::uint16_t*>(rows[r + 2]);
    const auto* w3 = static_cast<const std::uint16_t*>(rows[r + 3]);
    for (int co = 0; co + 16 <= out_c; co += 16) {
      __m512 s = _mm512_loadu_ps(acc + co);
      s = _mm512_add_ps(s, _mm512_cvtph_ps(_mm256_loadu_si256(
                               reinterpret_cast<const __m256i*>(w0 + co))));
      s = _mm512_add_ps(s, _mm512_cvtph_ps(_mm256_loadu_si256(
                               reinterpret_cast<const __m256i*>(w1 + co))));
      s = _mm512_add_ps(s, _mm512_cvtph_ps(_mm256_loadu_si256(
                               reinterpret_cast<const __m256i*>(w2 + co))));
      s = _mm512_add_ps(s, _mm512_cvtph_ps(_mm256_loadu_si256(
                               reinterpret_cast<const __m256i*>(w3 + co))));
      _mm512_storeu_ps(acc + co, s);
    }
  }
  for (; r < n_rows; ++r) {
    const auto* w0 = static_cast<const std::uint16_t*>(rows[r]);
    for (int co = 0; co + 16 <= out_c; co += 16) {
      const __m512 s = _mm512_add_ps(
          _mm512_loadu_ps(acc + co),
          _mm512_cvtph_ps(_mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(w0 + co))));
      _mm512_storeu_ps(acc + co, s);
    }
  }
}
#endif  // __AVX512F__ && __F16C__

/// True when this layer's rows should stream as binary16.
bool use_half_rows(const snn::LayerWeights& w, int out_c) {
#ifdef SPIKESTREAM_HALF_ROWS
  return w.half_exact && out_c % 16 == 0;
#else
  (void)w;
  (void)out_c;
  return false;
#endif
}

void dispatch_add_rows(bool half, float* __restrict__ acc,
                       const void* const* rows, std::size_t n_rows,
                       int out_c) {
#ifdef SPIKESTREAM_HALF_ROWS
  if (half) {
    add_rows_half(acc, rows, n_rows, out_c);
    return;
  }
#else
  (void)half;
#endif
  add_rows(acc, rows, n_rows, out_c);
}

}  // namespace

// ---------------------------------------------------------------------------
// Functional passes
// ---------------------------------------------------------------------------

void conv_functional(const snn::LayerSpec& spec,
                     const snn::LayerWeights& weights,
                     const compress::CsrIfmap& ifmap, snn::Tensor& membrane,
                     KernelScratch& scratch) {
  SPK_CHECK(ifmap.h() == spec.in_h && ifmap.w() == spec.in_w &&
                ifmap.c() == spec.in_c,
            "conv " << spec.name << ": ifmap shape mismatch");
  const int k = spec.k;
  const int oh = spec.out_h(), ow = spec.out_w();
  const int out_c = spec.out_c;

  snn::Tensor& currents = scratch.currents;
  currents.reshape(oh, ow, out_c);
  std::fill(currents.v.begin(), currents.v.end(), 0.0f);

  const bool half = use_half_rows(weights, out_c);
  const char* wbase = half
                          ? reinterpret_cast<const char*>(weights.half.data())
                          : reinterpret_cast<const char*>(weights.v.data());
  const std::size_t row_bytes =
      static_cast<std::size_t>(out_c) *
      (half ? sizeof(std::uint16_t) : sizeof(float));
  const std::size_t in_c = static_cast<std::size_t>(weights.in_c);
  std::vector<const void*>& rows = scratch.rows;
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      // Hoist the weight-row pointers of this receptive field, in the same
      // (kh, kw, ci) order the reference walks them.
      rows.clear();
      for (int kh = 0; kh < k; ++kh) {
        for (int kw = 0; kw < k; ++kw) {
          const std::size_t base =
              (static_cast<std::size_t>(kh) * k + kw) * in_c;
          for (std::uint16_t ci : ifmap.at(oy + kh, ox + kw)) {
            rows.push_back(wbase + (base + ci) * row_bytes);
          }
        }
      }
      dispatch_add_rows(half, &currents.at(oy, ox, 0), rows.data(),
                        rows.size(), out_c);
    }
  }
  scratch.run.out_nnz =
      snn::lif_step_into(spec.lif, currents, membrane, scratch.run.out_spikes);
}

void fc_functional(const snn::LayerSpec& spec, const snn::LayerWeights& weights,
                   const compress::CsrIfmap& ifmap, snn::Tensor& membrane,
                   KernelScratch& scratch) {
  SPK_CHECK(ifmap.h() == 1 && ifmap.w() == 1 && ifmap.c() == spec.in_c,
            "fc " << spec.name << ": input shape mismatch");
  const int out_c = spec.out_c;
  snn::Tensor& currents = scratch.currents;
  currents.reshape(1, 1, out_c);
  std::fill(currents.v.begin(), currents.v.end(), 0.0f);

  const bool half = use_half_rows(weights, out_c);
  const char* wbase = half
                          ? reinterpret_cast<const char*>(weights.half.data())
                          : reinterpret_cast<const char*>(weights.v.data());
  const std::size_t row_bytes =
      static_cast<std::size_t>(out_c) *
      (half ? sizeof(std::uint16_t) : sizeof(float));
  std::vector<const void*>& rows = scratch.rows;
  rows.clear();
  for (std::uint16_t ci : ifmap.at(0, 0)) {
    rows.push_back(wbase + static_cast<std::size_t>(ci) * row_bytes);
  }
  dispatch_add_rows(half, currents.v.data(), rows.data(), rows.size(), out_c);
  scratch.run.out_nnz =
      snn::lif_step_into(spec.lif, currents, membrane, scratch.run.out_spikes);
}

void fc_functional_batch(const snn::LayerSpec& spec,
                         const snn::LayerWeights& weights,
                         std::span<const FcBatchLane> lanes) {
  const int out_c = spec.out_c;
  const bool half = use_half_rows(weights, out_c);
  const char* wbase = half
                          ? reinterpret_cast<const char*>(weights.half.data())
                          : reinterpret_cast<const char*>(weights.v.data());
  const std::size_t row_bytes =
      static_cast<std::size_t>(out_c) *
      (half ? sizeof(std::uint16_t) : sizeof(float));
  for (const FcBatchLane& lane : lanes) {
    SPK_CHECK(lane.ifmap->h() == 1 && lane.ifmap->w() == 1 &&
                  lane.ifmap->c() == spec.in_c,
              "fc " << spec.name << ": input shape mismatch");
    snn::Tensor& currents = lane.scratch->main.currents;
    currents.reshape(1, 1, out_c);
    std::fill(currents.v.begin(), currents.v.end(), 0.0f);
  }

  // Band width sized so one band's weight rows stay hot in the host cache
  // while every lane sweeps them (the host-side analogue of streaming the
  // band into SPM once per batch). Bands partition the sorted CSR index
  // space, so each lane's rows are still added in exactly the order its
  // serial fc_functional call would use — bit-identical currents.
  constexpr std::size_t kBandBytes = 32 * 1024;
  const int band_rows = std::max<int>(
      1, static_cast<int>(kBandBytes / std::max<std::size_t>(row_bytes, 1)));
  // Per-lane position in its sorted index span. thread_local so the steady
  // state reuses capacity (the batch call never nests or recurses); every
  // other buffer lives in the lanes' own scratch arenas.
  static thread_local std::vector<std::size_t> cursors;
  cursors.assign(lanes.size(), 0);
  for (int c_lo = 0; c_lo < spec.in_c; c_lo += band_rows) {
    const std::uint16_t c_hi = static_cast<std::uint16_t>(
        std::min<int>(spec.in_c, c_lo + band_rows));
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      const auto span = lanes[i].ifmap->at(0, 0);
      std::size_t& cur = cursors[i];
      std::vector<const void*>& rows = lanes[i].scratch->main.rows;
      rows.clear();
      while (cur < span.size() && span[cur] < c_hi) {
        rows.push_back(wbase +
                       static_cast<std::size_t>(span[cur]) * row_bytes);
        ++cur;
      }
      if (!rows.empty()) {
        dispatch_add_rows(half, lanes[i].scratch->main.currents.v.data(),
                          rows.data(), rows.size(), out_c);
      }
    }
  }

  for (const FcBatchLane& lane : lanes) {
    KernelScratch& ks = lane.scratch->main;
    ks.run.out_nnz = snn::lif_step_into(spec.lif, ks.currents, *lane.membrane,
                                        ks.run.out_spikes);
  }
}

void encode_functional(const snn::LayerSpec& spec,
                       const snn::LayerWeights& weights,
                       const snn::Tensor& padded_image, snn::Tensor& membrane,
                       KernelScratch& scratch) {
  SPK_CHECK(padded_image.h == spec.in_h && padded_image.c == spec.in_c,
            "encode: input shape mismatch");
  snn::Reference::conv_currents_dense_into(padded_image, weights,
                                           scratch.currents);
  scratch.run.out_nnz = snn::lif_step_into(spec.lif, scratch.currents,
                                           membrane, scratch.run.out_spikes);
}

// ---------------------------------------------------------------------------
// Timing passes
// ---------------------------------------------------------------------------

void conv_timing(const snn::LayerSpec& spec, const compress::CsrIfmap& ifmap,
                 const RunOptions& opt, KernelScratch& scratch) {
  const CostParams& p = opt.cost;
  const common::FpFormat fmt = opt.fmt;
  const int simd = common::simd_lanes(fmt);
  const bool fp8 = fmt == common::FpFormat::FP8;
  const int k = spec.k;
  const int oh = spec.out_h(), ow = spec.out_w();

  LayerRun& run = scratch.run;
  const snn::SpikeMap& out = run.out_spikes;
  const int groups = n_groups(spec.out_c, fmt);
  const double stretch =
      opt.variant == Variant::kBaseline
          ? 1.0
          : p.conflict_stretch(access_rate(opt.variant, p), opt.cores);

  KernelStats& st = run.stats;
  st.reset();
  st.active_cores = opt.cores;
  std::vector<double>& rf_costs = scratch.tasks;
  rf_costs.clear();
  rf_costs.reserve(static_cast<std::size_t>(oh) * ow);
  scratch.group_counts.resize(static_cast<std::size_t>(groups));
  double* gcounts = scratch.group_counts.data();
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      // Stream lengths of the k*k SpVAs of this receptive field. The same
      // streams repeat for every SIMD output-channel group.
      double elems = 0;
      double fpu_time = 0;   // FPU sequencer timeline (streams + residues)
      double int_time = 0;   // integer-core timeline (setup + activation)
      for (int kh = 0; kh < k; ++kh) {
        for (int kw = 0; kw < k; ++kw) {
          const double s = ifmap.stream_len(oy + kh, ox + kw);
          elems += s;
          fpu_time += p.fadd_latency * s * stretch + p.ss_residue;
        }
      }
      st.fpu_ops += elems * groups;
      group_counts_at(out, oy, ox, simd, groups, gcounts);

      double rf = 0;
      if (opt.variant == Variant::kSpikeStream) {
        fpu_time *= groups;
        int_time = p.steal_cost + p.ss_setup * k * k * groups;
        for (int g = 0; g < groups; ++g) {
          const double gs = gcounts[g];
          int_time += activation_cycles(p, simd, gs, fp8);
          count_activation(st, p, simd, gs, fp8);
        }
        // Pseudo dual-issue: integer work overlaps the FPU streams.
        rf = std::max(fpu_time, int_time);
        st.int_instrs += 14.0 * k * k * groups;
        st.tcdm_words += (elems + elems / 4.0) * groups;
        st.ssr_elems += elems * groups;
      } else if (opt.variant == Variant::kDenseNoTc) {
        // Uncompressed ifmap: one affine weight stream per position walks
        // the *entire* fan-in; the dense activation vector streams alongside
        // (fmadd with the 0/1 spike value). No indices, no s_ptr.
        const double dense_elems = static_cast<double>(k) * k * spec.in_c;
        fpu_time = (p.fadd_latency * dense_elems * stretch +
                    p.ss_residue * k * k) * groups;
        int_time = p.steal_cost + p.dense_setup * k * k * groups;
        for (int g = 0; g < groups; ++g) {
          const double gs = gcounts[g];
          int_time += activation_cycles(p, simd, gs, fp8);
          count_activation(st, p, simd, gs, fp8);
        }
        rf = std::max(fpu_time, int_time);
        st.fpu_ops += (dense_elems - elems) * groups;  // elems already added
        st.int_instrs += 10.0 * k * k * groups;
        st.tcdm_words += 2.0 * dense_elems * groups;
        st.ssr_elems += 2.0 * dense_elems * groups;
      } else {
        // Baseline: everything serializes through the integer pipe.
        rf = (elems * p.baseline_elem_cycles +
              p.baseline_spva_overhead * k * k) *
             groups;
        for (int g = 0; g < groups; ++g) {
          const double gs = gcounts[g];
          rf += activation_cycles(p, simd, gs, fp8);
          count_activation(st, p, simd, gs, fp8);
        }
        st.int_instrs += (16.0 * k * k + 8.0 * elems) * groups;
        st.tcdm_words += 2.0 * elems * groups;
      }
      rf_costs.push_back(rf);
    }
  }

  schedule_into(opt, rf_costs, scratch.sched);
  st.core_cycles = scratch.sched.core_cycles;
  st.compute_cycles = scratch.sched.makespan + p.icache_layer_warmup;

  run.plan = plan_layer(
      spec, fmt, static_cast<double>(ifmap.footprint_bytes()),
      static_cast<double>(
          compress::CsrIfmap::footprint_from_count(run.out_nnz, oh, ow)),
      p, 128.0 * 1024, opt.double_buffer);
  finish_timing(opt, scratch);
}

void fc_timing(const snn::LayerSpec& spec, const compress::CsrIfmap& ifmap,
               const RunOptions& opt, KernelScratch& scratch) {
  const CostParams& p = opt.cost;
  const common::FpFormat fmt = opt.fmt;
  const int simd = common::simd_lanes(fmt);
  const bool fp8 = fmt == common::FpFormat::FP8;

  LayerRun& run = scratch.run;
  run.plan = plan_layer(
      spec, fmt, static_cast<double>(ifmap.footprint_bytes()),
      static_cast<double>(
          compress::CsrIfmap::footprint_from_count(run.out_nnz, 1, 1)),
      p, 128.0 * 1024, opt.double_buffer, opt.segment_major_lanes);

  const int groups = n_groups(spec.out_c, fmt);
  const double s_total = static_cast<double>(ifmap.nnz());
  const int segs = run.plan.in_segments;
  const double s_seg = s_total / segs;
  const double stretch =
      opt.variant == Variant::kBaseline
          ? 1.0
          : p.conflict_stretch(access_rate(opt.variant, p), opt.cores);

  KernelStats& st = run.stats;
  st.reset();
  st.active_cores = opt.cores;
  std::vector<double>& tasks = scratch.tasks;
  tasks.clear();
  tasks.reserve(static_cast<std::size_t>(groups));
  scratch.group_counts.resize(static_cast<std::size_t>(groups));
  double* gcounts = scratch.group_counts.data();
  group_counts_at(run.out_spikes, 0, 0, simd, groups, gcounts);
  for (int g = 0; g < groups; ++g) {
    const double gs = gcounts[g];
    double t = 0;
    if (opt.variant == Variant::kSpikeStream) {
      const double fpu_time =
          (p.fadd_latency * s_seg * stretch + p.ss_residue) * segs;
      const double int_time = p.ss_setup * segs +
                              activation_cycles(p, simd, gs, fp8);
      t = std::max(fpu_time, int_time);
    } else if (opt.variant == Variant::kDenseNoTc) {
      const double dense_seg = static_cast<double>(spec.in_c) / segs;
      const double fpu_time =
          (p.fadd_latency * dense_seg * stretch + p.ss_residue) * segs;
      const double int_time = p.dense_setup * segs +
                              activation_cycles(p, simd, gs, fp8);
      t = std::max(fpu_time, int_time);
    } else {
      t = (s_seg * p.baseline_elem_cycles + p.baseline_spva_overhead) * segs +
          activation_cycles(p, simd, gs, fp8);
    }
    if (opt.variant == Variant::kDenseNoTc) {
      // Dense activity: the full fan-in streams through two affine SSRs.
      st.fpu_ops += spec.in_c;
      st.int_instrs += 10.0 * segs;
      st.tcdm_words += 2.0 * spec.in_c;
      st.ssr_elems += 2.0 * spec.in_c;
    } else {
      for (int s = 0; s < segs; ++s) count_spva(st, opt.variant, s_seg);
    }
    count_activation(st, p, simd, gs, fp8);
    tasks.push_back(t);
  }
  ScheduleResult& sched = scratch.sched;
  schedule_into(opt, tasks, sched);
  // Index pre-scaling pass (base ISA lacks strided indirect streams, Section
  // VI): performed once, split across cores, before the group streams start.
  // With the proposed extension an index addresses a weight row directly and
  // the pass disappears.
  double prescale = 0.0;
  if (opt.variant == Variant::kSpikeStream && !opt.strided_indirect_ext) {
    prescale = s_total * p.fc_prescale_per_spike / opt.cores;
    st.int_instrs += s_total * p.fc_prescale_per_spike;
  }
  for (double& c : sched.core_cycles) c += prescale;
  sched.makespan += prescale;

  st.core_cycles = sched.core_cycles;
  st.compute_cycles = sched.makespan + p.icache_layer_warmup;
  finish_timing(opt, scratch);
}

void encode_timing(const snn::LayerSpec& spec, const RunOptions& opt,
                   KernelScratch& scratch) {
  const CostParams& p = opt.cost;
  const common::FpFormat fmt = opt.fmt;
  const int simd = common::simd_lanes(fmt);
  const bool fp8 = fmt == common::FpFormat::FP8;

  // Conv-as-matmul over the im2row stream: each core owns a set of output-
  // channel groups (Section III-F) and walks all output positions.
  LayerRun& run = scratch.run;
  const int groups = n_groups(spec.out_c, fmt);
  const double dot_len = static_cast<double>(spec.k) * spec.k * spec.in_c;
  const int oh = spec.out_h(), ow = spec.out_w();
  const double stretch =
      opt.variant == Variant::kBaseline
          ? 1.0
          : p.conflict_stretch(2.0 / p.dense_ii(), opt.cores);

  KernelStats& st = run.stats;
  st.reset();
  st.active_cores = opt.cores;

  // One sweep over the output spikes fills the per-(position, group) counts
  // the group-major timing loops below consume.
  const std::size_t positions = static_cast<std::size_t>(oh) * ow;
  scratch.group_counts.resize(positions * static_cast<std::size_t>(groups));
  double* gcounts = scratch.group_counts.data();
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      const std::size_t pos = static_cast<std::size_t>(oy) * ow + ox;
      group_counts_at(run.out_spikes, oy, ox, simd, groups,
                      gcounts + pos * static_cast<std::size_t>(groups));
    }
  }

  std::vector<double>& tasks = scratch.tasks;
  tasks.clear();
  tasks.reserve(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    double fpu_time = 0, int_time = 0, t = 0;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        const std::size_t pos = static_cast<std::size_t>(oy) * ow + ox;
        const double gs =
            gcounts[pos * static_cast<std::size_t>(groups) + g];
        const double act = activation_cycles(p, simd, gs, fp8);
        count_activation(st, p, simd, gs, fp8);
        st.fpu_ops += dot_len;
        st.fpu_mac_ops += dot_len;
        if (opt.variant != Variant::kBaseline) {
          fpu_time += p.dense_ii() * dot_len * stretch + p.dense_residue;
          int_time += p.dense_setup + act;
          st.int_instrs += 10;               // affine SSR setup per dot
          st.tcdm_words += 2.0 * dot_len;    // input + weight streams
          st.ssr_elems += 2.0 * dot_len;
        } else {
          t += baseline_dense_dot_cycles(p, dot_len) + act;
          st.int_instrs += 12 + 5.0 * dot_len;  // 2x-unrolled scalar loop
          st.tcdm_words += 2.0 * dot_len;
        }
      }
    }
    if (opt.variant != Variant::kBaseline) {
      t = std::max(fpu_time, int_time);  // decoupled pipelines overlap
    }
    tasks.push_back(t);
  }
  schedule_into(opt, tasks, scratch.sched);
  st.core_cycles = scratch.sched.core_cycles;
  st.compute_cycles = scratch.sched.makespan + p.icache_layer_warmup;

  run.plan = plan_encode_layer(spec, fmt, p, 128.0 * 1024, opt.double_buffer);
  finish_timing(opt, scratch);
}

void fc_fanin_shard_timing(const snn::LayerSpec& spec,
                           const compress::CsrIfmap& ifmap, int c_lo, int c_hi,
                           const RunOptions& opt, KernelScratch& scratch) {
  SPK_CHECK(ifmap.h() == 1 && ifmap.w() == 1 && ifmap.c() == spec.in_c,
            "fc fan-in " << spec.name << ": input shape mismatch");
  const CostParams& p = opt.cost;
  const common::FpFormat fmt = opt.fmt;

  // CSR channel indices are sorted, so the spikes this cluster owns are one
  // contiguous run of the index array.
  const auto span = ifmap.at(0, 0);
  const auto lo_it = std::lower_bound(span.begin(), span.end(),
                                      static_cast<std::uint16_t>(c_lo));
  const auto hi_it = std::lower_bound(span.begin(), span.end(),
                                      static_cast<std::uint16_t>(c_hi));
  const double s_total = static_cast<double>(hi_it - lo_it);

  // This cluster's slice of the layer: its weight-row band plus its ifmap
  // share. Partial currents stay on chip (they cross the NoC, not the DMA),
  // so the ofmap transfer volume is zero.
  snn::LayerSpec sub = spec;
  sub.in_c = c_hi - c_lo;
  LayerRun& run = scratch.run;
  run.plan = plan_layer(
      sub, fmt,
      static_cast<double>(compress::CsrIfmap::footprint_from_count(
          static_cast<std::size_t>(s_total), 1, 1)),
      0.0, p, 128.0 * 1024, opt.double_buffer, opt.segment_major_lanes);

  const int groups = n_groups(spec.out_c, fmt);
  const int segs = run.plan.in_segments;
  const double s_seg = s_total / segs;
  const double stretch =
      opt.variant == Variant::kBaseline
          ? 1.0
          : p.conflict_stretch(access_rate(opt.variant, p), opt.cores);

  KernelStats& st = run.stats;
  st.reset();
  st.active_cores = opt.cores;
  std::vector<double>& tasks = scratch.tasks;
  tasks.clear();
  tasks.reserve(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    double t = 0;
    if (opt.variant == Variant::kSpikeStream) {
      const double fpu_time =
          (p.fadd_latency * s_seg * stretch + p.ss_residue) * segs;
      t = std::max(fpu_time, p.ss_setup * segs);
    } else if (opt.variant == Variant::kDenseNoTc) {
      const double dense_seg = static_cast<double>(sub.in_c) / segs;
      const double fpu_time =
          (p.fadd_latency * dense_seg * stretch + p.ss_residue) * segs;
      t = std::max(fpu_time, p.dense_setup * segs);
    } else {
      t = (s_seg * p.baseline_elem_cycles + p.baseline_spva_overhead) * segs;
    }
    if (opt.variant == Variant::kDenseNoTc) {
      st.fpu_ops += sub.in_c;
      st.int_instrs += 10.0 * segs;
      st.tcdm_words += 2.0 * sub.in_c;
      st.ssr_elems += 2.0 * sub.in_c;
    } else {
      for (int s = 0; s < segs; ++s) count_spva(st, opt.variant, s_seg);
    }
    tasks.push_back(t);
  }
  ScheduleResult& sched = scratch.sched;
  schedule_into(opt, tasks, sched);
  // Index pre-scaling covers only this cluster's own spikes (see fc_timing).
  double prescale = 0.0;
  if (opt.variant == Variant::kSpikeStream && !opt.strided_indirect_ext) {
    prescale = s_total * p.fc_prescale_per_spike / opt.cores;
    st.int_instrs += s_total * p.fc_prescale_per_spike;
  }
  for (double& c : sched.core_cycles) c += prescale;
  sched.makespan += prescale;

  st.core_cycles = sched.core_cycles;
  st.compute_cycles = sched.makespan + p.icache_layer_warmup;
  finish_timing(opt, scratch);
}

FcFanInMergeCost fc_fanin_merge_cost(const snn::LayerSpec& spec,
                                     const snn::SpikeMap& out_spikes,
                                     int n_shards, const RunOptions& opt) {
  const CostParams& p = opt.cost;
  const common::FpFormat fmt = opt.fmt;
  const int simd = common::simd_lanes(fmt);
  const bool fp8 = fmt == common::FpFormat::FP8;
  const int groups = n_groups(spec.out_c, fmt);

  FcFanInMergeCost m;
  // Reduction: stream each of the n-1 partial vectors in from the NoC and
  // add it group-wise into the resident accumulator (one affine stream per
  // partial, one SIMD fadd per group).
  const double partials = static_cast<double>(n_shards) - 1.0;
  m.cycles += partials * (p.dense_setup + p.fadd_latency * groups);
  m.fpu_ops += partials * groups;
  m.int_instrs += partials * 10.0;
  m.tcdm_words += 2.0 * partials * groups;  // partial read + accumulator rmw
  m.noc_bytes +=
      partials * spec.out_c * static_cast<double>(common::fp_bytes(fmt));
  // Activation runs exactly once, with the same accounting as fc_timing.
  const std::uint8_t* row = &out_spikes.at(0, 0, 0);
  for (int g = 0; g < groups; ++g) {
    const int lo = g * simd;
    const int hi = std::min(lo + simd, spec.out_c);
    double gs = 0;
    for (int ch = lo; ch < hi; ++ch) gs += row[ch];
    const double cyc = activation_cycles(p, simd, gs, fp8);
    m.cycles += cyc;
    m.int_instrs += cyc;
    m.tcdm_words += 1.0 + gs / 4.0;
  }
  return m;
}

// ---------------------------------------------------------------------------
// Combined layer execution
// ---------------------------------------------------------------------------

const LayerRun& run_conv_layer(const snn::LayerSpec& spec,
                               const snn::LayerWeights& weights,
                               const compress::CsrIfmap& ifmap,
                               snn::Tensor& membrane, const RunOptions& opt,
                               KernelScratch& scratch) {
  conv_functional(spec, weights, ifmap, membrane, scratch);
  conv_timing(spec, ifmap, opt, scratch);
  return scratch.run;
}

const LayerRun& run_fc_layer(const snn::LayerSpec& spec,
                             const snn::LayerWeights& weights,
                             const compress::CsrIfmap& ifmap,
                             snn::Tensor& membrane, const RunOptions& opt,
                             KernelScratch& scratch) {
  fc_functional(spec, weights, ifmap, membrane, scratch);
  fc_timing(spec, ifmap, opt, scratch);
  return scratch.run;
}

const LayerRun& run_encode_layer(const snn::LayerSpec& spec,
                                 const snn::LayerWeights& weights,
                                 const snn::Tensor& padded_image,
                                 snn::Tensor& membrane, const RunOptions& opt,
                                 KernelScratch& scratch) {
  encode_functional(spec, weights, padded_image, membrane, scratch);
  encode_timing(spec, opt, scratch);
  return scratch.run;
}

}  // namespace spikestream::kernels
