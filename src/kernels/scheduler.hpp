// Workload-stealing scheduler simulation (Section III-B): each core, on
// finishing its receptive field, atomically fetches the next unprocessed RF
// (`next_rf` tag). With per-task cycle costs known, this is equivalent to
// greedy list scheduling in task order onto the earliest-free core, plus the
// steal cost per task. A static round-robin variant backs the ablation bench.
#pragma once

#include <queue>
#include <span>
#include <vector>

namespace spikestream::kernels {

struct ScheduleResult {
  std::vector<double> core_cycles;  ///< finish time per core
  double makespan = 0;

  double imbalance() const {
    double lo = 1e300, hi = 0;
    for (double c : core_cycles) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    return core_cycles.empty() || hi == 0 ? 0.0 : (hi - lo) / hi;
  }
};

/// Dynamic workload stealing: tasks claimed in order by the earliest-free
/// core; each claim pays `steal_cost` cycles.
inline ScheduleResult steal_schedule(std::span<const double> task_cycles,
                                     int cores, double steal_cost) {
  ScheduleResult r;
  r.core_cycles.assign(static_cast<std::size_t>(cores), 0.0);
  using Entry = std::pair<double, int>;  // (time, core)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  for (int c = 0; c < cores; ++c) pq.push({0.0, c});
  for (double t : task_cycles) {
    auto [time, c] = pq.top();
    pq.pop();
    const double fin = time + steal_cost + t;
    r.core_cycles[static_cast<std::size_t>(c)] = fin;
    pq.push({fin, c});
  }
  for (double c : r.core_cycles) r.makespan = std::max(r.makespan, c);
  return r;
}

/// Static round-robin pre-assignment (ablation baseline): core i gets tasks
/// i, i+cores, i+2*cores, ... regardless of their dynamic cost.
inline ScheduleResult static_schedule(std::span<const double> task_cycles,
                                      int cores) {
  ScheduleResult r;
  r.core_cycles.assign(static_cast<std::size_t>(cores), 0.0);
  for (std::size_t i = 0; i < task_cycles.size(); ++i) {
    r.core_cycles[i % static_cast<std::size_t>(cores)] += task_cycles[i];
  }
  for (double c : r.core_cycles) r.makespan = std::max(r.makespan, c);
  return r;
}

}  // namespace spikestream::kernels
