// Workload-stealing scheduler simulation (Section III-B): each core, on
// finishing its receptive field, atomically fetches the next unprocessed RF
// (`next_rf` tag). With per-task cycle costs known, this is equivalent to
// greedy list scheduling in task order onto the earliest-free core, plus the
// steal cost per task. A static round-robin variant backs the ablation bench.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

namespace spikestream::kernels {

struct ScheduleResult {
  std::vector<double> core_cycles;  ///< finish time per core
  double makespan = 0;

  double imbalance() const {
    double lo = 1e300, hi = 0;
    for (double c : core_cycles) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    return core_cycles.empty() || hi == 0 ? 0.0 : (hi - lo) / hi;
  }
};

/// Dynamic workload stealing into a caller-owned result (scratch reuse, no
/// allocations once `core_cycles` capacity is warm): tasks claimed in order
/// by the earliest-free core (lowest index on ties, matching the atomic
/// next_rf fetch); each claim pays `steal_cost` cycles. Core counts are
/// single digits, so a linear min-scan beats a heap and needs no storage.
inline void steal_schedule_into(std::span<const double> task_cycles, int cores,
                                double steal_cost, ScheduleResult& r) {
  r.core_cycles.assign(static_cast<std::size_t>(cores), 0.0);
  r.makespan = 0;
  for (double t : task_cycles) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < r.core_cycles.size(); ++c) {
      if (r.core_cycles[c] < r.core_cycles[best]) best = c;
    }
    // Same evaluation order as `time + steal_cost + t` so results stay
    // bit-identical to the historical priority-queue implementation.
    r.core_cycles[best] = r.core_cycles[best] + steal_cost + t;
  }
  for (double c : r.core_cycles) r.makespan = std::max(r.makespan, c);
}

/// Dynamic workload stealing: tasks claimed in order by the earliest-free
/// core; each claim pays `steal_cost` cycles.
inline ScheduleResult steal_schedule(std::span<const double> task_cycles,
                                     int cores, double steal_cost) {
  ScheduleResult r;
  steal_schedule_into(task_cycles, cores, steal_cost, r);
  return r;
}

/// Static round-robin pre-assignment into a caller-owned result.
inline void static_schedule_into(std::span<const double> task_cycles,
                                 int cores, ScheduleResult& r) {
  r.core_cycles.assign(static_cast<std::size_t>(cores), 0.0);
  r.makespan = 0;
  for (std::size_t i = 0; i < task_cycles.size(); ++i) {
    r.core_cycles[i % static_cast<std::size_t>(cores)] += task_cycles[i];
  }
  for (double c : r.core_cycles) r.makespan = std::max(r.makespan, c);
}

/// Static round-robin pre-assignment (ablation baseline): core i gets tasks
/// i, i+cores, i+2*cores, ... regardless of their dynamic cost.
inline ScheduleResult static_schedule(std::span<const double> task_cycles,
                                      int cores) {
  ScheduleResult r;
  static_schedule_into(task_cycles, cores, r);
  return r;
}

}  // namespace spikestream::kernels
