// Scratch arenas for the simulation hot path. Every buffer a layer execution
// needs — accumulator planes, spike maps, CSR index/row buffers, timing-pass
// task vectors — lives in one of these structs, owned by snn::NetworkState
// (one LayerScratch per layer per state) and *borrowed* by the engine,
// backends and kernels for the duration of a call. Buffers are grown on first
// use and only ever reused after that, so steady-state inference performs
// zero heap allocations per layer (tests/test_scratch_reuse.cpp pins this
// down with an allocation-counting operator-new hook).
//
// Ownership rule: the state owns the memory, execution borrows it. A
// NetworkState must therefore not be used from two threads at once — which
// was already the per-sample contract — while engines/backends stay immutable
// and shareable.
#pragma once

#include <cstddef>
#include <vector>

#include "compress/csr_ifmap.hpp"
#include "kernels/kernel_stats.hpp"
#include "kernels/scheduler.hpp"
#include "kernels/tiling.hpp"
#include "snn/tensor.hpp"

namespace spikestream::kernels {

/// Result of one layer execution. Lives inside a KernelScratch so the spike
/// map, the per-core cycle vector and the plan are reused across calls.
struct LayerRun {
  snn::SpikeMap out_spikes;  ///< raw output spikes (pre-pool, pre-pad)
  std::size_t out_nnz = 0;   ///< spike_count(out_spikes), tracked by LIF
  KernelStats stats;
  TilePlan plan;
};

/// Everything one kernel invocation (conv / FC / encode) allocates: the
/// functional-pass accumulator plane, the hoisted weight-row pointer list,
/// the timing-pass task costs and group spike counts, and the schedule
/// simulation buffers. Reused verbatim across layers of compatible shape;
/// grown (never shrunk) otherwise.
struct KernelScratch {
  LayerRun run;                    ///< kernel output, reused across calls
  /// Batch-level weight-tile reuse: true once this (state, layer) lane — one
  /// simulated cluster's SPM — has executed its layer, so the next sample's
  /// run may treat the weight tile as resident (RunOptions::
  /// batch_weight_reuse). Deliberately survives NetworkState::clear(): the
  /// membrane reset between samples is exactly when the pin pays off.
  bool weights_warm = false;
  snn::Tensor currents;            ///< synaptic-current accumulator plane
  /// Hoisted weight-row pointers of one receptive field. Type-erased: they
  /// point at float32 rows or (on the half-precision fast path) binary16
  /// rows; the add loop that fills them knows which.
  std::vector<const void*> rows;
  std::vector<double> tasks;       ///< timing pass: per-RF / per-group costs
  std::vector<double> group_counts;  ///< per-position SIMD-group spike counts
  ScheduleResult sched;            ///< steal/static schedule simulation
};

/// Per-cluster lane of the sharded backend: the slice of state one simulated
/// cluster owns plus the scratch its kernel call runs in. Which members a
/// plan uses depends on its axis: output-channel shards compact a channel
/// slice of the membrane, ifmap stripes additionally carry the halo'd input
/// stripe (CSR rows or dense image rows), fan-in shards only run the timing
/// pass in `ks`. All buffers grow on first use and are reused afterwards.
struct ShardLane {
  KernelScratch ks;
  snn::Tensor membrane;     ///< channel- or row-slice of the full membrane
  compress::CsrIfmap csr;   ///< ifmap-stripe: halo'd CSR row slice
  snn::Tensor input;        ///< encode stripe: padded-image row slice
};

/// Per-(state, layer) arena: the main execution lane plus the engine-side
/// buffers (input compression, spike routing, image padding) and the sharded
/// backend's per-cluster lanes (created lazily on first sharded run).
struct LayerScratch {
  KernelScratch main;
  compress::CsrIfmap csr;   ///< engine: compressed input ifmap of this layer
  snn::SpikeMap routed;     ///< engine: pooled/padded/flattened output carry
  snn::SpikeMap pooled;     ///< engine: OR-pool intermediate
  snn::Tensor padded;       ///< engine: encode-layer padded image
  std::vector<ShardLane> lanes;  ///< ShardedBackend: one per cluster
};

}  // namespace spikestream::kernels
