// The paper's inner loops expressed as ISS programs:
//  * Listing 1b — the baseline scalar SpVA: 8 instructions per element, of
//    which only the fadd does useful work.
//  * Listing 1c — the SpikeStream SpVA: one indirect-SSR stream + FREP.
//  * the dense encode dot product with two affine SSRs (Section III-F).
//
// These anchor the layer-level cost model: tests/test_model_vs_iss.cpp runs
// them on the cycle-level cluster model and checks the measured
// cycles-per-element against cost_model.hpp within tight tolerances.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/cluster.hpp"

namespace spikestream::kernels {

struct IssRunResult {
  double value = 0;            ///< computed reduction result
  std::uint64_t cycles = 0;    ///< total kernel cycles
  arch::PerfCounters perf;     ///< aggregated worker-core counters
};

/// One baseline SpVA over `idcs` into `weights` (FP64 elements), one core.
IssRunResult iss_baseline_spva(arch::Cluster& cl,
                               const std::vector<double>& weights,
                               const std::vector<std::uint16_t>& idcs);

/// One SpikeStream SpVA (indirect SSR + FREP), one core.
IssRunResult iss_spikestream_spva(arch::Cluster& cl,
                                  const std::vector<double>& weights,
                                  const std::vector<std::uint16_t>& idcs);

/// A back-to-back sequence of SpikeStream SpVAs driven from an integer-core
/// loop, exercising the shadow-register overlap of Section III-E. `streams`
/// holds one index vector per SpVA; all accumulate into one scalar.
IssRunResult iss_spikestream_spva_sequence(
    arch::Cluster& cl, const std::vector<double>& weights,
    const std::vector<std::vector<std::uint16_t>>& streams);

/// Dense dot product a.b with two affine SSRs + FREP, `accumulators` in
/// {1, 2} interleaved registers, one core.
IssRunResult iss_dense_dot(arch::Cluster& cl, const std::vector<double>& a,
                           const std::vector<double>& b, int accumulators = 2);

/// The baseline's dense dot product: no SSRs, a 2x-unrolled scalar
/// fld/fld/fmadd loop with two interleaved accumulators (the encode layer's
/// Variant::kBaseline inner loop, modeled by baseline_dense_dot_cycles).
/// Even length required by the unroll.
IssRunResult iss_baseline_dense_dot(arch::Cluster& cl,
                                    const std::vector<double>& a,
                                    const std::vector<double>& b);

/// The same SpikeStream SpVA replicated SPMD on `n_cores` worker cores, each
/// with a private index/weight region — measures TCDM conflict stretch.
IssRunResult iss_spikestream_spva_multicore(
    arch::Cluster& cl, const std::vector<double>& weights,
    const std::vector<std::uint16_t>& idcs, int n_cores);

}  // namespace spikestream::kernels
