// SPM tile planner and DMA/double-buffering timeline (Section III-D).
// Chooses output-channel weight tiles and ifmap row stripes that fit the
// 128 KiB scratchpad (with double buffering and worst-case ofmap buffers),
// then derives the DMA traffic and its overlap with compute.
//
// Loop order follows the paper: the ifmap tile is the outer buffer and the
// weight tiles cycle inside it ("we first double-buffer the weights and then
// the ifmaps"), so weights are re-fetched once per ifmap stripe when they do
// not fit SPM entirely.
#pragma once

#include "common/float_formats.hpp"
#include "kernels/cost_model.hpp"
#include "snn/network.hpp"

namespace spikestream::kernels {

struct TilePlan {
  int co_per_tile = 0;    ///< output channels per weight tile
  int weight_tiles = 1;
  int rows_per_stripe = 0;  ///< *output* rows per ifmap stripe
  int if_stripes = 1;
  int in_segments = 1;  ///< FC fan-in segmentation (partial-sum tiles)
  bool fits_spm = false;

  double weight_tile_bytes = 0;
  double if_stripe_bytes = 0;   ///< worst-case (zero-sparsity) stripe buffer
  double ofmap_buf_bytes = 0;   ///< worst-case compressed output buffer
  double spm_resident_bytes = 0;

  double dma_bytes = 0;    ///< total bytes moved for the layer (one image)
  double dma_cycles = 0;   ///< total DMA busy cycles
  double first_fill_cycles = 0;  ///< initial load before compute can start

  // --- banked-DRAM row accounting (CostParams::dram, banked mode only) ------
  // Row-buffer outcomes of the plan's DMA streams at 64 B beat granularity
  // (arch/dram/dram.hpp). Sequential weight-band streams touch few rows per
  // transferred byte (hit rate near 1); many-small-run sequences (strided
  // accumulator spills, fragmented write-backs) pay one activation per run.
  // All zero in flat-legacy mode, which keeps the historical cycle
  // expressions bit-exactly.
  double dma_row_hits = 0;
  double dma_row_misses = 0;
  double dma_row_hits_warm = 0;
  double dma_row_misses_warm = 0;

  // --- batch-level weight-tile reuse (RunOptions::batch_weight_reuse) -------
  // Weight tiles pinned in SPM survive between consecutive batch samples on
  // the same cluster, so warm samples skip their DMA refetch. Two regimes:
  // fully resident (the whole set fits single-buffered — pinned tiles need
  // no double buffer — next to a re-searched ifmap stripe), or partially
  // pinned (the cold plan's SPM slack holds some of the streamed tiles).
  // The warm numbers below are the steady state of samples 2..B; cold
  // samples always use the plain ones.

  bool weights_spm_resident = false;   ///< whole weight set pinned
  double pinned_weight_fraction = 0;   ///< of the weight tiles, pinned part
  double dma_bytes_warm = 0;           ///< dma_bytes with pinned tiles warm
  double dma_cycles_warm = 0;
  double first_fill_cycles_warm = 0;

  // --- segment-major batched FC schedule (RunOptions::segment_major_lanes) --
  // Segmented FC layers cycle their fan-in weight bands through a single SPM
  // tile, so per-sample pinning is impossible (pinned_weight_fraction stays
  // 0) and every sample re-streams the whole weight set. The segment-major
  // schedule inverts the batch loop instead: each weight band is streamed
  // into SPM *once per batch* and applied to every in-flight sample before
  // advancing. Partial sums of samples parked between bands either stay
  // resident next to the streaming buffers (sm_resident_lanes of them fit)
  // or are spilled to DRAM and refilled at every band transition — that
  // traffic is itemized in sm_spill_bytes and priced into sm_dma_bytes, so
  // the cost query below only sets `segment_major` when the schedule wins
  // net of spill. All sm_* numbers are per-sample batch means: every sample
  // of the batch is charged identically (weight traffic / lanes + its own
  // ifmap/ofmap/spill share), which keeps modeled stats independent of lane
  // assignment and execution order.

  bool segment_major = false;  ///< schedule chosen (wins the cost query)
  int sm_lanes = 1;            ///< batch lanes B the schedule was planned for
  int sm_bands = 1;            ///< weight bands, each streamed once per batch
  int sm_resident_lanes = 0;   ///< lanes whose partial sums never spill
  double sm_dma_bytes = 0;     ///< per-sample amortized DMA bytes (incl. spill)
  double sm_dma_cycles = 0;    ///< amortized busy cycles, net of hidden ones
  double sm_first_fill_cycles = 0;
  double sm_spill_bytes = 0;   ///< per-sample amortized spill+fill traffic

  // --- double-buffered spill/fill (banked mode only) ------------------------
  // With the banked DRAM model on, the spill/fill of parked lanes' partial
  // sums can overlap the band-(b+1) weight stream: the schedule trades one
  // resident lane's accumulator slice for a bounce buffer (SPM slack never
  // holds resident+1 slices when anything spills, so the second buffer must
  // come from the resident set — the overlap condition is resident >= 2).
  // What hides is the spill streams' first-beat overhead (request latencies
  // + row activations): data beats still occupy the shared channel, so they
  // stay charged. The planner prices both regimes and adopts the
  // double-buffered one only when its net timeline wins; sm_hidden_cycles
  // itemizes the overlap so charged + hidden reconstructs the serial
  // pricing of the same configuration exactly.
  bool sm_double_buffered = false;
  double sm_spill_cycles = 0;   ///< serial cycles of the spill/fill streams
  double sm_hidden_cycles = 0;  ///< spill overhead hidden under band streams
  double sm_row_hits = 0;       ///< row accounting of the adopted sm schedule
  double sm_row_misses = 0;
};

/// Plan a conv/FC layer. `ifmap_actual_bytes` / `ofmap_actual_bytes` are the
/// measured compressed sizes (dynamic sparsity) used for transfer volume;
/// buffers are still sized for the zero-sparsity worst case.
/// `batch_lanes` > 1 additionally evaluates the segment-major batched
/// schedule for segmented FC layers (see TilePlan) against the per-sample
/// plan and fills the sm_* fields when it wins.
TilePlan plan_layer(const snn::LayerSpec& spec, common::FpFormat fmt,
                    double ifmap_actual_bytes, double ofmap_actual_bytes,
                    const CostParams& p, double spm_bytes = 128.0 * 1024,
                    bool double_buffer = true, int batch_lanes = 1);

/// Plan the dense encode layer (im2row over a 2D DMA, Section III-F).
TilePlan plan_encode_layer(const snn::LayerSpec& spec, common::FpFormat fmt,
                           const CostParams& p, double spm_bytes = 128.0 * 1024,
                           bool double_buffer = true);

/// Combine a compute-critical-path with the DMA timeline: with double
/// buffering only the first fill is exposed; without it, transfers serialize.
/// `weights_warm` selects the batch-reuse DMA timeline (weights already
/// resident in SPM from the previous sample — see TilePlan). A plan whose
/// segment-major schedule was chosen always uses the sm_* timeline: every
/// sample of the batch is charged the same amortized numbers, so there is no
/// warm/cold distinction to select.
double overlap_cycles(const TilePlan& plan, double compute_cycles,
                      bool double_buffer = true, bool weights_warm = false);

}  // namespace spikestream::kernels
