// SPM tile planner and DMA/double-buffering timeline (Section III-D).
// Chooses output-channel weight tiles and ifmap row stripes that fit the
// 128 KiB scratchpad (with double buffering and worst-case ofmap buffers),
// then derives the DMA traffic and its overlap with compute.
//
// Loop order follows the paper: the ifmap tile is the outer buffer and the
// weight tiles cycle inside it ("we first double-buffer the weights and then
// the ifmaps"), so weights are re-fetched once per ifmap stripe when they do
// not fit SPM entirely.
#pragma once

#include "common/float_formats.hpp"
#include "kernels/cost_model.hpp"
#include "snn/network.hpp"

namespace spikestream::kernels {

struct TilePlan {
  int co_per_tile = 0;    ///< output channels per weight tile
  int weight_tiles = 1;
  int rows_per_stripe = 0;  ///< *output* rows per ifmap stripe
  int if_stripes = 1;
  int in_segments = 1;  ///< FC fan-in segmentation (partial-sum tiles)
  bool fits_spm = false;

  double weight_tile_bytes = 0;
  double if_stripe_bytes = 0;   ///< worst-case (zero-sparsity) stripe buffer
  double ofmap_buf_bytes = 0;   ///< worst-case compressed output buffer
  double spm_resident_bytes = 0;

  double dma_bytes = 0;    ///< total bytes moved for the layer (one image)
  double dma_cycles = 0;   ///< total DMA busy cycles
  double first_fill_cycles = 0;  ///< initial load before compute can start
};

/// Plan a conv/FC layer. `ifmap_actual_bytes` / `ofmap_actual_bytes` are the
/// measured compressed sizes (dynamic sparsity) used for transfer volume;
/// buffers are still sized for the zero-sparsity worst case.
TilePlan plan_layer(const snn::LayerSpec& spec, common::FpFormat fmt,
                    double ifmap_actual_bytes, double ofmap_actual_bytes,
                    const CostParams& p, double spm_bytes = 128.0 * 1024,
                    bool double_buffer = true);

/// Plan the dense encode layer (im2row over a 2D DMA, Section III-F).
TilePlan plan_encode_layer(const snn::LayerSpec& spec, common::FpFormat fmt,
                           const CostParams& p, double spm_bytes = 128.0 * 1024,
                           bool double_buffer = true);

/// Combine a compute-critical-path with the DMA timeline: with double
/// buffering only the first fill is exposed; without it, transfers serialize.
double overlap_cycles(const TilePlan& plan, double compute_cycles,
                      bool double_buffer = true);

}  // namespace spikestream::kernels
