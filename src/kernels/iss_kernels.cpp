#include "kernels/iss_kernels.hpp"

#include "common/check.hpp"

namespace spikestream::kernels {

namespace arch = spikestream::arch;

namespace {

// Scratch integer registers used by the kernels (x0 is hardwired zero).
constexpr int kIdx = 5;    ///< c_idcs pointer
constexpr int kWBase = 6;  ///< weight base address
constexpr int kIter = 7;
constexpr int kLen = 8;
constexpr int kTmp = 9;
constexpr int kRes = 10;   ///< result store address
constexpr int kTmp2 = 11;
constexpr int kAcc = 3;    ///< f3 accumulator (f0..f2 are SSR-mapped)
constexpr int kAcc2 = 4;
constexpr int kWReg = 4;   ///< f4 scratch in the baseline loop

arch::Addr poke_weights(arch::Cluster& cl, const std::vector<double>& w) {
  const arch::Addr a =
      cl.tcdm_alloc(static_cast<std::uint32_t>(w.size() * 8));
  for (std::size_t i = 0; i < w.size(); ++i) {
    cl.mem().store<double>(a + static_cast<arch::Addr>(i * 8), w[i]);
  }
  return a;
}

arch::Addr poke_idcs(arch::Cluster& cl, const std::vector<std::uint16_t>& v) {
  // Pad to an 8-byte multiple: the SSR index fetcher reads 64-bit words.
  const auto bytes = static_cast<std::uint32_t>((v.size() * 2 + 7) & ~7u);
  const arch::Addr a = cl.tcdm_alloc(bytes);
  for (std::size_t i = 0; i < v.size(); ++i) {
    cl.mem().store<std::uint16_t>(a + static_cast<arch::Addr>(i * 2), v[i]);
  }
  return a;
}

IssRunResult finish(arch::Cluster& cl, arch::Addr result_addr) {
  IssRunResult r;
  r.cycles = cl.run();
  r.value = cl.mem().load<double>(result_addr);
  r.perf = cl.aggregate_worker_perf();
  return r;
}

}  // namespace

IssRunResult iss_baseline_spva(arch::Cluster& cl,
                               const std::vector<double>& weights,
                               const std::vector<std::uint16_t>& idcs) {
  cl.reset_allocators();
  const arch::Addr w = poke_weights(cl, weights);
  const arch::Addr ix = poke_idcs(cl, idcs);
  const arch::Addr res = cl.tcdm_alloc(8);

  // Listing 1b, one instruction per line.
  arch::Asm a;
  a.li(kIdx, ix);
  a.li(kWBase, w);
  a.li(kIter, 0);
  a.li(kLen, static_cast<std::int64_t>(idcs.size()));
  a.li(kRes, res);
  a.label("SpVA");
  a.lhu(kTmp, kIdx, 0);        // lw t0, 0(%c_idcs_i)  (16-bit indices)
  a.slli(kTmp, kTmp, 3);       // slli t0, t0, 3
  a.add(kTmp, kTmp, kWBase);   // add  t0, t0, %w
  a.fld(kWReg, kTmp, 0);       // fld  ft1, 0(t0)
  a.addi(kIdx, kIdx, 2);       // addi %c_idcs_i, %c_idcs_i, 2
  a.addi(kIter, kIter, 1);     // addi %iter, %iter, 1
  a.fadd(kAcc, kWReg, kAcc);   // fadd %ic, ft1, %ic
  a.bne(kIter, kLen, "SpVA");  // bne  %iter, %s_len, SpVA
  a.fpu_fence();
  a.fsd(kAcc, kRes, 0);
  a.halt();

  cl.load_program_on(0, a.finish());
  return finish(cl, res);
}

IssRunResult iss_spikestream_spva(arch::Cluster& cl,
                                  const std::vector<double>& weights,
                                  const std::vector<std::uint16_t>& idcs) {
  cl.reset_allocators();
  const arch::Addr w = poke_weights(cl, weights);
  const arch::Addr ix = poke_idcs(cl, idcs);
  const arch::Addr res = cl.tcdm_alloc(8);

  // Listing 1c: configure the indirect SSR, then a 1-instruction FREP body.
  arch::Asm a;
  a.li(kIdx, ix);
  a.li(kWBase, w);
  a.li(kLen, static_cast<std::int64_t>(idcs.size()));
  a.li(kRes, res);
  a.ssr_idx(0, kIdx, 1);  // sr_set_idcs(SR1, &c_idcs[s_baddr]), 16-bit
  a.ssr_base(0, kWBase);  // sr_set_indir(SR1, &w[w_baddr])
  a.ssr_len(0, kLen);     // sr_set_bound(SR1, s_len)
  a.ssr_commit(0, arch::SsrMode::kIndirectRead);
  a.ssr_enable();
  a.addi(kTmp, kLen, -1);
  a.frep(kTmp, 1);               // frep 1, %s_len
  a.fadd(kAcc, arch::kSsr0, kAcc);  // ic += sr_read(SR1)
  a.fpu_fence();
  a.ssr_disable();
  a.fsd(kAcc, kRes, 0);
  a.halt();

  cl.load_program_on(0, a.finish());
  return finish(cl, res);
}

IssRunResult iss_spikestream_spva_sequence(
    arch::Cluster& cl, const std::vector<double>& weights,
    const std::vector<std::vector<std::uint16_t>>& streams) {
  cl.reset_allocators();
  const arch::Addr w = poke_weights(cl, weights);
  // Faithful to Listing 1a: one contiguous c_idcs array plus an s_ptr array
  // of 32-bit prefix sums; the integer core derives each stream's base and
  // trip count from s_ptr, exactly like the conv kernel does per spatial
  // position of the receptive field.
  std::vector<std::uint16_t> all_idcs;
  std::vector<std::uint32_t> s_ptr{0};
  for (const auto& s : streams) {
    all_idcs.insert(all_idcs.end(), s.begin(), s.end());
    s_ptr.push_back(static_cast<std::uint32_t>(all_idcs.size()));
  }
  const arch::Addr cidcs = poke_idcs(cl, all_idcs);
  const arch::Addr sptr =
      cl.tcdm_alloc(static_cast<std::uint32_t>(s_ptr.size() * 4));
  for (std::size_t j = 0; j < s_ptr.size(); ++j) {
    cl.mem().store<std::uint32_t>(sptr + static_cast<arch::Addr>(j * 4),
                                  s_ptr[j]);
  }
  const arch::Addr res = cl.tcdm_alloc(8);

  constexpr int kP0 = 12, kP1 = 13;
  arch::Asm a;
  a.li(kIdx, sptr);
  a.li(kWBase, w);
  a.li(kIter, 0);
  a.li(kLen, static_cast<std::int64_t>(streams.size()));
  a.li(kRes, res);
  a.li(kTmp2, cidcs);
  a.ssr_enable();
  a.label("next_spva");
  a.lw(kP0, kIdx, 0);        // s_ptr[coo]
  a.lw(kP1, kIdx, 4);        // s_ptr[coo+1]
  a.slli(kTmp, kP0, 1);      // byte offset into c_idcs (16-bit entries)
  a.add(kTmp, kTmp, kTmp2);  // &c_idcs[s_baddr]
  a.sub(kP1, kP1, kP0);      // s_len
  a.beq(kP1, 0, "skip");     // if s_len != 0 (Listing 1c guard)
  a.ssr_idx(0, kTmp, 1);
  a.ssr_base(0, kWBase);
  a.ssr_len(0, kP1);
  a.ssr_commit(0, arch::SsrMode::kIndirectRead);
  a.addi(kP1, kP1, -1);
  a.frep(kP1, 1);
  a.fadd(kAcc, arch::kSsr0, kAcc);
  a.label("skip");
  a.addi(kIdx, kIdx, 4);
  a.addi(kIter, kIter, 1);
  a.bne(kIter, kLen, "next_spva");
  a.fpu_fence();
  a.ssr_disable();
  a.fsd(kAcc, kRes, 0);
  a.halt();

  cl.load_program_on(0, a.finish());
  return finish(cl, res);
}

IssRunResult iss_dense_dot(arch::Cluster& cl, const std::vector<double>& a_v,
                           const std::vector<double>& b_v, int accumulators) {
  SPK_CHECK(a_v.size() == b_v.size(), "dot operands must match");
  SPK_CHECK(accumulators == 1 || accumulators == 2, "1 or 2 accumulators");
  SPK_CHECK(accumulators == 1 || a_v.size() % 2 == 0,
            "2-accumulator dot needs an even length");
  cl.reset_allocators();
  const arch::Addr aa = poke_weights(cl, a_v);
  const arch::Addr bb = poke_weights(cl, b_v);
  const arch::Addr res = cl.tcdm_alloc(8);
  const auto n = static_cast<std::int64_t>(a_v.size());

  arch::Asm a;
  a.li(kTmp, aa);
  a.li(kTmp2, bb);
  a.li(kRes, res);
  a.li(kLen, 8);  // dim-0 byte stride
  // SSR0 <- a, SSR1 <- b, 1D affine streams.
  a.ssr_base(0, kTmp);
  a.ssr_stride(0, 0, kLen);
  a.li(kIter, n);
  a.ssr_len(0, kIter);
  a.ssr_commit(0, arch::SsrMode::kAffineRead);
  a.ssr_base(1, kTmp2);
  a.ssr_stride(1, 0, kLen);
  a.ssr_len(1, kIter);
  a.ssr_commit(1, arch::SsrMode::kAffineRead);
  a.ssr_enable();
  if (accumulators == 1) {
    a.li(kTmp, static_cast<std::int64_t>(n - 1));
    a.frep(kTmp, 1);
    a.fmadd(kAcc, arch::kSsr0, arch::kSsr1);
  } else {
    a.li(kTmp, static_cast<std::int64_t>(n / 2 - 1));
    a.frep(kTmp, 2);
    a.fmadd(kAcc, arch::kSsr0, arch::kSsr1);
    a.fmadd(kAcc2, arch::kSsr0, arch::kSsr1);
  }
  a.fpu_fence();
  a.ssr_disable();
  if (accumulators == 2) a.fadd(kAcc, kAcc, kAcc2);
  a.fpu_fence();
  a.fsd(kAcc, kRes, 0);
  a.halt();

  cl.load_program_on(0, a.finish());
  return finish(cl, res);
}

IssRunResult iss_baseline_dense_dot(arch::Cluster& cl,
                                    const std::vector<double>& a_v,
                                    const std::vector<double>& b_v) {
  SPK_CHECK(a_v.size() == b_v.size(), "dot operands must match");
  SPK_CHECK(a_v.size() % 2 == 0, "2x-unrolled dot needs an even length");
  cl.reset_allocators();
  const arch::Addr aa = poke_weights(cl, a_v);
  const arch::Addr bb = poke_weights(cl, b_v);
  const arch::Addr res = cl.tcdm_alloc(8);

  // The 2x-unrolled scalar loop of the baseline encode layer: two loads and
  // one fmadd per element, two interleaved accumulators hiding the fmadd
  // latency, pointer bumps and one branch per pair.
  constexpr int kFa0 = 5, kFb0 = 6, kFa1 = 7, kFb1 = 8;
  arch::Asm a;
  a.li(kIdx, aa);
  a.li(kWBase, bb);
  a.li(kIter, 0);
  a.li(kLen, static_cast<std::int64_t>(a_v.size() / 2));
  a.li(kRes, res);
  a.label("pair");
  a.fld(kFa0, kIdx, 0);
  a.fld(kFb0, kWBase, 0);
  a.fmadd(kAcc, kFa0, kFb0);
  a.fld(kFa1, kIdx, 8);
  a.fld(kFb1, kWBase, 8);
  a.fmadd(kAcc2, kFa1, kFb1);
  a.addi(kIdx, kIdx, 16);
  a.addi(kWBase, kWBase, 16);
  a.addi(kIter, kIter, 1);
  a.bne(kIter, kLen, "pair");
  a.fpu_fence();
  a.fadd(kAcc, kAcc, kAcc2);
  a.fpu_fence();
  a.fsd(kAcc, kRes, 0);
  a.halt();

  cl.load_program_on(0, a.finish());
  return finish(cl, res);
}

IssRunResult iss_spikestream_spva_multicore(
    arch::Cluster& cl, const std::vector<double>& weights,
    const std::vector<std::uint16_t>& idcs, int n_cores) {
  SPK_CHECK(n_cores >= 1 && n_cores <= cl.config().num_workers,
            "bad core count " << n_cores);
  cl.reset_allocators();
  // Private copies per core so every core streams the same length but from
  // its own region (conflicts come from bank interleaving, not sharing).
  std::vector<arch::Addr> w_addrs, i_addrs, r_addrs;
  for (int c = 0; c < n_cores; ++c) {
    w_addrs.push_back(poke_weights(cl, weights));
    i_addrs.push_back(poke_idcs(cl, idcs));
    r_addrs.push_back(cl.tcdm_alloc(8));
  }
  // Parameter block indexed by core id: [w, idx, res] words.
  const arch::Addr params =
      cl.tcdm_alloc(static_cast<std::uint32_t>(n_cores * 12));
  for (int c = 0; c < n_cores; ++c) {
    const auto base = params + static_cast<arch::Addr>(c * 12);
    cl.mem().store<std::uint32_t>(base, w_addrs[static_cast<std::size_t>(c)]);
    cl.mem().store<std::uint32_t>(base + 4,
                                  i_addrs[static_cast<std::size_t>(c)]);
    cl.mem().store<std::uint32_t>(base + 8,
                                  r_addrs[static_cast<std::size_t>(c)]);
  }

  arch::Asm a;
  a.csr_core_id(kTmp);
  a.li(kTmp2, n_cores);
  a.blt(kTmp, kTmp2, "work");
  a.halt();  // cores beyond n_cores (and the DMA core) exit immediately
  a.label("work");
  a.li(kTmp2, 12);
  a.mul(kTmp2, kTmp, kTmp2);
  a.li(kTmp, params);
  a.add(kTmp, kTmp, kTmp2);
  a.lw(kWBase, kTmp, 0);
  a.lw(kIdx, kTmp, 4);
  a.lw(kRes, kTmp, 8);
  a.li(kLen, static_cast<std::int64_t>(idcs.size()));
  a.ssr_idx(0, kIdx, 1);
  a.ssr_base(0, kWBase);
  a.ssr_len(0, kLen);
  a.ssr_commit(0, arch::SsrMode::kIndirectRead);
  a.ssr_enable();
  a.addi(kTmp, kLen, -1);
  a.frep(kTmp, 1);
  a.fadd(kAcc, arch::kSsr0, kAcc);
  a.fpu_fence();
  a.ssr_disable();
  a.fsd(kAcc, kRes, 0);
  a.halt();

  cl.load_program(a.finish());
  IssRunResult r;
  r.cycles = cl.run();
  r.value = cl.mem().load<double>(r_addrs[0]);
  r.perf = cl.aggregate_worker_perf();
  return r;
}

}  // namespace spikestream::kernels
